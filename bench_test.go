// Package repro holds the repository-level benchmark harness: one
// benchmark per table and figure of the Granula paper, plus ablation
// benchmarks for the design choices called out in DESIGN.md and
// micro-benchmarks of the hot engine paths.
//
// The figure benchmarks run the same pipeline as cmd/experiments at a
// reduced dataset size so a full -bench=. pass stays in the minutes range;
// cmd/experiments regenerates the paper-scale numbers (see
// EXPERIMENTS.md). Simulated durations are independent of the host: the
// benchmarks measure how fast the harness reproduces each experiment, and
// assert the paper's qualitative shape as they go.
package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dfs"
	"repro/internal/graph"
	"repro/internal/platforms"
	"repro/internal/pregel"
	"repro/internal/trace"
	"repro/internal/viz"
)

// benchDataset returns the reduced-size dg1000 stand-in shared by the
// figure benchmarks.
func benchDataset(b *testing.B) *datagen.Dataset {
	b.Helper()
	cfg := datagen.DG1000Shaped(42)
	cfg.Vertices = 20_000
	cfg.Edges = 100_000
	ds, err := datagen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func benchRun(b *testing.B, platform string, ds *datagen.Dataset) *platforms.Output {
	return benchRunParallel(b, platform, ds, 0)
}

func benchRunParallel(b *testing.B, platform string, ds *datagen.Dataset, par int) *platforms.Output {
	b.Helper()
	out, err := platforms.Run(platforms.Spec{
		Platform:        platform,
		Algorithm:       "BFS",
		Source:          datagen.PeripheralSource(ds.Graph),
		Dataset:         ds,
		HostParallelism: par,
	})
	if err != nil {
		b.Fatal(err)
	}
	if len(out.ModelErrors) != 0 {
		b.Fatalf("model errors: %v", out.ModelErrors)
	}
	return out
}

// benchPoolSizes returns the host pool sizes the parallel benchmarks
// sweep: 1/2/4/8 (the EXPERIMENTS.md table), plus the actual core count
// when distinct.
func benchPoolSizes() []int {
	sizes := []int{1, 2, 4, 8}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 && n != 8 {
		sizes = append(sizes, n)
	}
	return sizes
}

// BenchmarkTable1PlatformRegistry regenerates Table 1 (platform
// diversity).
func BenchmarkTable1PlatformRegistry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := platforms.Table1()
		if len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure3DomainModel regenerates Figure 3 (the domain-level job
// breakdown model).
func BenchmarkFigure3DomainModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := core.DomainModel("GraphProcessingJob")
		if err := m.Validate(); err != nil {
			b.Fatal(err)
		}
		_ = m.Render()
	}
}

// BenchmarkFigure4ModelConstruction regenerates Figure 4 (the 4-level
// Giraph performance model).
func BenchmarkFigure4ModelConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := core.GiraphModel()
		if err := m.Validate(); err != nil {
			b.Fatal(err)
		}
		_ = m.Render()
	}
}

// BenchmarkFigure5JobDecompositionGiraph regenerates the Giraph half of
// Figure 5: a full instrumented BFS run plus the domain-level breakdown.
func BenchmarkFigure5JobDecompositionGiraph(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := benchRun(b, "Giraph", ds)
		bd := out.Breakdown
		// The paper's shape: all three categories are substantial.
		if bd.SetupPercent() < 10 || bd.IOPercent() < 20 || bd.ProcessingPercent() < 10 {
			b.Fatalf("Giraph breakdown lost the paper's shape: %+v", bd)
		}
	}
}

// BenchmarkFigure5JobDecompositionPowerGraph regenerates the PowerGraph
// half of Figure 5.
func BenchmarkFigure5JobDecompositionPowerGraph(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := benchRun(b, "PowerGraph", ds)
		// The paper's headline: input/output dominates.
		if out.Breakdown.IOPercent() < 80 {
			b.Fatalf("PowerGraph breakdown lost the paper's shape: %+v", out.Breakdown)
		}
	}
}

// BenchmarkFigure6GiraphCPU regenerates Figure 6: the per-node CPU series
// mapped to Giraph operations.
func BenchmarkFigure6GiraphCPU(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := benchRun(b, "Giraph", ds)
		nodes, times, _ := viz.CPUSeries(out.Job)
		if len(nodes) != 8 || len(times) == 0 {
			b.Fatalf("series shape wrong: %d nodes, %d samples", len(nodes), len(times))
		}
		_ = viz.SVGCPUChart(out.Job)
	}
}

// BenchmarkFigure7PowerGraphCPU regenerates Figure 7 and asserts its
// defining observation: one node does (almost) all the LoadGraph work.
func BenchmarkFigure7PowerGraphCPU(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := benchRun(b, "PowerGraph", ds)
		// Sum each node's CPU during the job; the loader node dominates.
		perNode := map[string]float64{}
		for _, s := range out.Job.EnvSamples {
			perNode[s.Node] += s.CPUUsed()
		}
		var max, total float64
		for _, v := range perNode {
			total += v
			if v > max {
				max = v
			}
		}
		if max < total/2 {
			b.Fatalf("no dominant loader node: max %.1f of %.1f", max, total)
		}
		_ = viz.SVGCPUChart(out.Job)
	}
}

// BenchmarkFigure8SuperstepGantt regenerates Figure 8: the per-worker
// superstep breakdown.
func BenchmarkFigure8SuperstepGantt(b *testing.B) {
	ds := benchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := benchRun(b, "Giraph", ds)
		gantt := viz.WorkerGantt(out.Job, 96, 1, 0)
		if len(gantt) == 0 {
			b.Fatal("empty gantt")
		}
		if len(viz.SuperstepImbalance(out.Job)) < 3 {
			b.Fatal("too few supersteps for the figure")
		}
	}
}

// --- Host-parallelism benchmarks (deterministic fork/join) ---
//
// These sweep Config.HostParallelism over the figure workloads. The
// simulated results are byte-identical at every pool size — equivalence
// is enforced by internal/platforms TestArchiveBytesIdenticalAcrossPoolSizes
// — so the only thing that changes here is wall-clock time.

// BenchmarkFigure5ParallelGiraph measures the Figure 5 Giraph BFS run at
// each host pool size.
func BenchmarkFigure5ParallelGiraph(b *testing.B) {
	ds := benchDataset(b)
	for _, par := range benchPoolSizes() {
		b.Run(fmt.Sprintf("parallelism-%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchRunParallel(b, "Giraph", ds, par)
			}
		})
	}
}

// BenchmarkFigure5ParallelPowerGraph measures the Figure 5 PowerGraph
// BFS run at each host pool size.
func BenchmarkFigure5ParallelPowerGraph(b *testing.B) {
	ds := benchDataset(b)
	for _, par := range benchPoolSizes() {
		b.Run(fmt.Sprintf("parallelism-%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchRunParallel(b, "PowerGraph", ds, par)
			}
		})
	}
}

// BenchmarkFigure8ParallelGantt measures the Figure 8 workload (Giraph
// run plus per-worker gantt assembly) at each host pool size.
func BenchmarkFigure8ParallelGantt(b *testing.B) {
	ds := benchDataset(b)
	for _, par := range benchPoolSizes() {
		b.Run(fmt.Sprintf("parallelism-%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := benchRunParallel(b, "Giraph", ds, par)
				if len(viz.WorkerGantt(out.Job, 96, 1, 0)) == 0 {
					b.Fatal("empty gantt")
				}
			}
		})
	}
}

// TestEmitParallelBenchJSON writes BENCH_parallel.json — serial vs
// parallel wall-clock for the figure workloads — when BENCH_PARALLEL_OUT
// names the output path. CI runs it to archive the numbers; without the
// env var it is a no-op skip.
func TestEmitParallelBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_PARALLEL_OUT")
	if path == "" {
		t.Skip("BENCH_PARALLEL_OUT not set")
	}
	cfg := datagen.DG1000Shaped(42)
	cfg.Vertices = 20_000
	cfg.Edges = 100_000
	ds, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	time1 := func(platform string, par int) float64 {
		start := time.Now()
		out, err := platforms.Run(platforms.Spec{
			Platform:        platform,
			Algorithm:       "BFS",
			Source:          datagen.PeripheralSource(ds.Graph),
			Dataset:         ds,
			HostParallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(out.ModelErrors) != 0 {
			t.Fatalf("model errors: %v", out.ModelErrors)
		}
		return time.Since(start).Seconds() * 1e3
	}
	type row struct {
		Workload   string  `json:"workload"`
		SerialMs   float64 `json:"serial_ms"`
		ParallelMs float64 `json:"parallel_ms"`
		Speedup    float64 `json:"speedup"`
	}
	report := struct {
		Cores     int   `json:"cores"`
		Workloads []row `json:"workloads"`
	}{Cores: runtime.NumCPU()}
	for _, platform := range []string{"Giraph", "PowerGraph"} {
		time1(platform, 1) // warm caches before timing
		serial := time1(platform, 1)
		parallel := time1(platform, runtime.NumCPU())
		report.Workloads = append(report.Workloads, row{
			Workload:   "fig5-bfs-" + platform,
			SerialMs:   serial,
			ParallelMs: parallel,
			Speedup:    serial / parallel,
		})
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}

// TestEmitKernelsBenchJSON writes BENCH_kernels.json — the zero-alloc
// kernel numbers EXPERIMENTS.md's before/after table tracks: Figure-5
// end-to-end wall clock per platform, end-to-end allocations per
// superstep (runtime.MemStats delta across a full run, so it includes
// simulation and tracing overhead, not just the kernel), and the local
// CSR fragment memory footprint per edge. The kernel-only ns/allocs
// figures come from BenchmarkSuperstepKernel (internal/pregel) and
// BenchmarkGASIterationKernel (internal/gas). Set BENCH_KERNELS_OUT to
// the output path; without it this is a no-op skip.
func TestEmitKernelsBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_KERNELS_OUT")
	if path == "" {
		t.Skip("BENCH_KERNELS_OUT not set")
	}
	cfg := datagen.DG1000Shaped(42)
	cfg.Vertices = 20_000
	cfg.Edges = 100_000
	ds, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := func(platform string) *platforms.Output {
		out, err := platforms.Run(platforms.Spec{
			Platform:  platform,
			Algorithm: "BFS",
			Source:    datagen.PeripheralSource(ds.Graph),
			Dataset:   ds,
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	type row struct {
		Platform           string  `json:"platform"`
		Figure5Ms          float64 `json:"figure5_ms"`
		Supersteps         int     `json:"supersteps"`
		AllocsPerRun       uint64  `json:"allocs_per_run"`
		AllocsPerSuperstep float64 `json:"allocs_per_superstep"`
	}
	report := struct {
		Cores        int     `json:"cores"`
		BytesPerEdge float64 `json:"fragment_bytes_per_edge"`
		Workloads    []row   `json:"workloads"`
	}{Cores: runtime.NumCPU()}

	// Fragment footprint on the benchmark dataset, per placed edge.
	vc := graph.NewVertexCut(ds.Graph.NumVertices(), ds.Edges, 8, graph.VertexCutGreedy)
	var fragBytes int64
	for _, f := range graph.BuildFragments(ds.Graph.NumVertices(), ds.Edges, vc, !ds.Directed) {
		fragBytes += f.MemoryBytes()
	}
	report.BytesPerEdge = float64(fragBytes) / float64(len(ds.Edges))

	var m0, m1 runtime.MemStats
	for _, platform := range []string{"Giraph", "PowerGraph"} {
		run(platform) // warm caches before measuring
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		out := run(platform)
		wall := time.Since(start)
		runtime.ReadMemStats(&m1)
		allocs := m1.Mallocs - m0.Mallocs
		report.Workloads = append(report.Workloads, row{
			Platform:           platform,
			Figure5Ms:          wall.Seconds() * 1e3,
			Supersteps:         out.Supersteps,
			AllocsPerRun:       allocs,
			AllocsPerSuperstep: float64(allocs) / float64(out.Supersteps),
		})
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}

// --- Ablation benchmarks (design choices from DESIGN.md) ---

func ablationDataset(b *testing.B) *datagen.Dataset {
	b.Helper()
	ds, err := datagen.Generate(datagen.Config{
		Kind: datagen.SocialNetwork, Vertices: 10_000, Edges: 50_000,
		Seed: 7, Directed: true, Locality: 0.8,
	})
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// BenchmarkAblationCombiner compares Pregel message volume and runtime
// with and without sender-side combining.
func BenchmarkAblationCombiner(b *testing.B) {
	ds := ablationDataset(b)
	for _, combined := range []bool{true, false} {
		name := "off"
		if combined {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := platforms.GiraphPaperConfig(ds)
			cfg.Workers = 8
			if !combined {
				cfg.Combiner = nil
			}
			for i := 0; i < b.N; i++ {
				out, err := platforms.Run(platforms.Spec{
					Platform: "Giraph", Algorithm: "BFS",
					Source: datagen.PeripheralSource(ds.Graph), Dataset: ds,
					Pregel: &cfg,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(out.Runtime, "sim-seconds")
			}
		})
	}
}

// BenchmarkAblationPartitioner compares hash and range vertex
// partitioning in the Pregel engine (Figure 8's imbalance driver).
func BenchmarkAblationPartitioner(b *testing.B) {
	ds := ablationDataset(b)
	parts := map[string]graph.Partitioner{
		"hash":  graph.NewHashPartitioner(8),
		"range": graph.NewRangePartitioner(ds.Graph.NumVertices(), 8),
	}
	for name, part := range parts {
		b.Run(name, func(b *testing.B) {
			cfg := platforms.GiraphPaperConfig(ds)
			cfg.Workers = 8
			cfg.Partitioner = part
			for i := 0; i < b.N; i++ {
				out, err := platforms.Run(platforms.Spec{
					Platform: "Giraph", Algorithm: "BFS",
					Source: datagen.PeripheralSource(ds.Graph), Dataset: ds,
					Pregel: &cfg,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(out.Runtime, "sim-seconds")
			}
		})
	}
}

// BenchmarkAblationVertexCut compares hash and greedy edge placement in
// the GAS engine (replication factor and runtime).
func BenchmarkAblationVertexCut(b *testing.B) {
	ds := ablationDataset(b)
	for _, strategy := range []graph.VertexCutStrategy{graph.VertexCutHash, graph.VertexCutGreedy} {
		b.Run(strategy.String(), func(b *testing.B) {
			cfg := platforms.PowerGraphPaperConfig(ds)
			cfg.Machines = 8
			cfg.CutStrategy = strategy
			for i := 0; i < b.N; i++ {
				out, err := platforms.Run(platforms.Spec{
					Platform: "PowerGraph", Algorithm: "BFS",
					Source: datagen.PeripheralSource(ds.Graph), Dataset: ds,
					GAS: &cfg,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(out.ReplicationFactor, "replication")
				b.ReportMetric(out.Runtime, "sim-seconds")
			}
		})
	}
}

// BenchmarkAblationLoader compares PowerGraph's sequential loader with the
// what-if parallel loader (the paper's implied fix).
func BenchmarkAblationLoader(b *testing.B) {
	ds := ablationDataset(b)
	for _, parallel := range []bool{false, true} {
		name := "sequential"
		if parallel {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			cfg := platforms.PowerGraphPaperConfig(ds)
			cfg.Machines = 8
			cfg.ParallelLoad = parallel
			for i := 0; i < b.N; i++ {
				out, err := platforms.Run(platforms.Spec{
					Platform: "PowerGraph", Algorithm: "BFS",
					Source: datagen.PeripheralSource(ds.Graph), Dataset: ds,
					GAS: &cfg,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(out.Runtime, "sim-seconds")
				b.ReportMetric(out.Breakdown.IOPercent(), "io-percent")
			}
		})
	}
}

// BenchmarkAblationHDFSLocality compares locality-aware split reads
// against a replication-1 layout with mostly remote reads.
func BenchmarkAblationHDFSLocality(b *testing.B) {
	ds := ablationDataset(b)
	// Locality only matters when the network is scarcer than the disks;
	// run this ablation on a 1 Gbit/s fabric (the oversubscribed networks
	// HDFS's rack-locality design assumed), not DAS5's 10 Gbit/s.
	clusterCfg := platforms.DAS5Config()
	clusterCfg.NICBandwidth = 125e6
	for _, replication := range []int{3, 1} {
		b.Run(fmt.Sprintf("replication-%d", replication), func(b *testing.B) {
			// Replication-3 gives most workers a local replica; with
			// replication-1 most splits are remote. The effect shows in
			// simulated LoadGraph time.
			hcfg := dfs.DefaultHDFSConfig()
			hcfg.Replication = replication
			for i := 0; i < b.N; i++ {
				out, err := platforms.Run(platforms.Spec{
					Platform: "Giraph", Algorithm: "BFS",
					Source: datagen.PeripheralSource(ds.Graph), Dataset: ds,
					Cluster: clusterCfg, HDFS: &hcfg,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(out.Breakdown.IO, "io-sim-seconds")
			}
		})
	}
}

// BenchmarkAblationCheckpointing measures the overhead of Giraph's
// fault-tolerance checkpointing and the cost of one recovered failure.
func BenchmarkAblationCheckpointing(b *testing.B) {
	ds := ablationDataset(b)
	variants := []struct {
		name             string
		interval, failAt int
	}{
		{"off", 0, 0},
		{"every-2", 2, 0},
		{"every-2-with-failure", 2, 3},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			cfg := platforms.GiraphPaperConfig(ds)
			cfg.Workers = 8
			cfg.CheckpointInterval = v.interval
			cfg.FailAtSuperstep = v.failAt
			cfg.FailWorker = 2
			for i := 0; i < b.N; i++ {
				out, err := platforms.Run(platforms.Spec{
					Platform: "Giraph", Algorithm: "BFS",
					Source: datagen.PeripheralSource(ds.Graph), Dataset: ds,
					Pregel: &cfg,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(out.Runtime, "sim-seconds")
			}
		})
	}
}

// BenchmarkSingleNodePlatform measures the OpenG-like platform end to end.
func BenchmarkSingleNodePlatform(b *testing.B) {
	ds := ablationDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := platforms.Run(platforms.Spec{
			Platform: "OpenG", Algorithm: "BFS",
			Source: datagen.PeripheralSource(ds.Graph), Dataset: ds, WorkScale: 1000,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(out.Runtime, "sim-seconds")
	}
}

// --- Engine micro-benchmarks ---

// BenchmarkDatagenSocialNetwork measures graph generation throughput.
func BenchmarkDatagenSocialNetwork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := datagen.Generate(datagen.Config{
			Kind: datagen.SocialNetwork, Vertices: 50_000, Edges: 250_000,
			Seed: int64(i), Directed: true, Locality: 0.8,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVertexCutHash measures edge-placement throughput.
func BenchmarkVertexCutHash(b *testing.B) {
	ds := ablationDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vc := graph.NewVertexCut(ds.Graph.NumVertices(), ds.Edges, 8, graph.VertexCutHash)
		if vc.ReplicationFactor() < 1 {
			b.Fatal("bad cut")
		}
	}
}

// BenchmarkTraceEncodeParse measures the platform-log round trip that
// every monitored job pays.
func BenchmarkTraceEncodeParse(b *testing.B) {
	log := trace.NewLog()
	em := trace.NewEmitter(log, "bench", func() float64 { return 1 })
	root := em.Start(trace.Root, "Client", "Job")
	for i := 0; i < 2000; i++ {
		op := em.Start(root, "Worker", "Compute")
		em.Info(op, "Vertices", "12345")
		em.End(op)
	}
	em.End(root)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := trace.Encode(&buf, log.Records()); err != nil {
			b.Fatal(err)
		}
		recs, err := trace.Parse(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if len(recs) != log.Len() {
			b.Fatal("record count mismatch")
		}
	}
}

// BenchmarkArchiveQuery measures Find/FindAll over a realistic job tree.
func BenchmarkArchiveQuery(b *testing.B) {
	ds := benchDataset(b)
	out := benchRun(b, "Giraph", ds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		steps := out.Job.Find("GiraphJob", "ProcessGraph", "Superstep")
		computes := out.Job.FindAll("Compute")
		if len(steps) == 0 || len(computes) == 0 {
			b.Fatal("query returned nothing")
		}
	}
}

// BenchmarkArchiveSaveLoad measures archive persistence round trips.
func BenchmarkArchiveSaveLoad(b *testing.B) {
	ds := benchDataset(b)
	out := benchRun(b, "Giraph", ds)
	a := archive.New()
	a.Add(out.Job)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := a.Save(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := archive.Load(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPregelEngine measures the simulated Pregel platform end to end
// (BFS on the ablation graph, 8 workers).
func BenchmarkPregelEngine(b *testing.B) {
	ds := ablationDataset(b)
	cfg := platforms.GiraphPaperConfig(ds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := platforms.Run(platforms.Spec{
			Platform: "Giraph", Algorithm: "BFS",
			Source: datagen.PeripheralSource(ds.Graph), Dataset: ds, Pregel: &cfg,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = out
	}
}

// BenchmarkGASEngine measures the simulated GAS platform end to end.
func BenchmarkGASEngine(b *testing.B) {
	ds := ablationDataset(b)
	cfg := platforms.PowerGraphPaperConfig(ds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := platforms.Run(platforms.Spec{
			Platform: "PowerGraph", Algorithm: "BFS",
			Source: datagen.PeripheralSource(ds.Graph), Dataset: ds, GAS: &cfg,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = out
	}
}

// Compile-time interface check for the combiner used in the ablations.
var _ pregel.Combiner = pregel.MinCombiner{}
