// Package single implements an OpenG/GraphBIG-like single-machine
// graph-processing platform on the simulated cluster: no resource
// manager, no distributed filesystem, no coordination service — one
// process reads an edge list from local disk, builds an in-memory CSR,
// runs an iterative algorithm kernel with a thread pool, and writes
// results back to local disk.
//
// Its role in this repository mirrors the single-node platforms of the
// paper's Table 1 (OpenG, TOTEM): a third platform class for Granula to
// model and compare, and the baseline for the classic distributed-versus-
// single-machine crossover analysis (examples/crossover). Jobs emit the
// usual domain-level operations, so every Granula metric and visual works
// unchanged:
//
//	OpenGJob
//	├── Startup:      ProcessStart
//	├── LoadGraph:    ReadEdgeList, ParseEdges, BuildCSR
//	├── ProcessGraph: Iteration (repeated)
//	├── OffloadGraph: WriteResults
//	└── Cleanup:      ProcessExit
package single

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/trace"
)

// CostModel maps counted work to simulated seconds; counts are multiplied
// by Config.WorkScale first. Constants reflect an optimized C++ kernel.
type CostModel struct {
	ParseCPUPerByte      float64
	BuildCPUPerEdge      float64
	ComputeCPUPerVertex  float64
	ComputeCPUPerEdge    float64
	OutputBytesPerVertex float64
	// ProcessStartSeconds and ProcessExitSeconds are the fixed process
	// lifecycle costs — all the "provisioning" a single-node platform
	// needs.
	ProcessStartSeconds float64
	ProcessExitSeconds  float64
}

// DefaultCostModel returns C++-kernel constants.
func DefaultCostModel() CostModel {
	return CostModel{
		ParseCPUPerByte:      80e-9,
		BuildCPUPerEdge:      60e-9,
		ComputeCPUPerVertex:  40e-9,
		ComputeCPUPerEdge:    15e-9,
		OutputBytesPerVertex: 16,
		ProcessStartSeconds:  0.3,
		ProcessExitSeconds:   0.1,
	}
}

// Config parameterizes a job.
type Config struct {
	// NodeID selects the cluster node the process runs on.
	NodeID int
	// Threads is the kernel's parallelism.
	Threads int
	// WorkScale multiplies work-derived costs (see pregel.Config).
	WorkScale float64
	// Costs is the platform cost model.
	Costs CostModel
}

// DefaultConfig returns a 24-thread single-node configuration.
func DefaultConfig() Config {
	return Config{
		Threads:   24,
		WorkScale: 1,
		Costs:     DefaultCostModel(),
	}
}

// IterWork is the measured work of one algorithm iteration.
type IterWork struct {
	Vertices int64
	Edges    int64
}

// Kernel is a single-machine algorithm: it runs for real over the graph
// and reports per-iteration work counts for cost accounting.
type Kernel interface {
	// Name identifies the kernel for logs.
	Name() string
	// Run executes the algorithm and returns the vertex values plus the
	// work of each iteration.
	Run(g *graph.Graph) (values []float64, iterations []IterWork)
}

// Deps are the platform's (minimal) substrate dependencies.
type Deps struct {
	Cluster *cluster.Cluster
	// InputBytes is the scaled on-disk size of the edge list on the
	// node's local disk (use StageInput).
	InputBytes int64
	// OutputPath labels the result file in the trace.
	OutputPath string
}

// StageInput computes the scaled local-file size for the dataset.
func StageInput(ds *datagen.Dataset, workScale float64) int64 {
	return int64(float64(ds.SizeBytes()) * workScale)
}

// Result carries a completed job's output and counters.
type Result struct {
	Values     []float64
	Iterations int
	Runtime    float64
}

// RunJob executes the kernel over the dataset on the simulated
// single-node platform, blocking the calling process until done.
func RunJob(p *sim.Proc, deps Deps, cfg Config, kernel Kernel, ds *datagen.Dataset, em *trace.Emitter) (*Result, error) {
	if deps.Cluster == nil {
		return nil, fmt.Errorf("single: missing cluster")
	}
	if cfg.NodeID < 0 || cfg.NodeID >= deps.Cluster.Size() {
		return nil, fmt.Errorf("single: node %d out of range", cfg.NodeID)
	}
	if cfg.Threads <= 0 {
		return nil, fmt.Errorf("single: threads must be positive")
	}
	if cfg.WorkScale <= 0 {
		return nil, fmt.Errorf("single: work scale must be positive")
	}
	if deps.InputBytes <= 0 {
		return nil, fmt.Errorf("single: input not staged")
	}
	node := deps.Cluster.Node(cfg.NodeID)
	c := cfg.Costs
	scale := cfg.WorkScale
	start := p.Now()

	root := em.Start(trace.Root, "OpenGClient", "OpenGJob")
	em.Info(root, "Dataset", ds.Name)
	em.Info(root, "Kernel", kernel.Name())

	startup := em.Start(root, "OpenGClient", "Startup")
	ps := em.Start(startup, "OpenGClient", "ProcessStart")
	p.Sleep(c.ProcessStartSeconds)
	em.End(ps)
	em.End(startup)

	load := em.Start(root, "OpenGEngine", "LoadGraph")
	read := em.Start(load, "OpenGEngine", "ReadEdgeList")
	node.ReadLocal(p, float64(deps.InputBytes))
	em.Infof(read, "BytesRead", "%d", deps.InputBytes)
	em.End(read)
	parse := em.Start(load, "OpenGEngine", "ParseEdges")
	node.ExecParallel(p, float64(deps.InputBytes)*c.ParseCPUPerByte, cfg.Threads)
	em.End(parse)
	build := em.Start(load, "OpenGEngine", "BuildCSR")
	node.ExecParallel(p, float64(ds.Graph.NumArcs())*scale*c.BuildCPUPerEdge, cfg.Threads)
	em.End(build)
	em.End(load)

	// Semantic execution is instantaneous in simulated time; the counted
	// work is charged per iteration.
	values, iters := kernel.Run(ds.Graph)

	process := em.Start(root, "OpenGEngine", "ProcessGraph")
	for i, w := range iters {
		it := em.Start(process, "OpenGEngine", "Iteration")
		em.Infof(it, "Iteration", "%d", i)
		em.Infof(it, "Vertices", "%d", w.Vertices)
		em.Infof(it, "Edges", "%d", w.Edges)
		cpu := (float64(w.Vertices)*c.ComputeCPUPerVertex + float64(w.Edges)*c.ComputeCPUPerEdge) * scale
		node.ExecParallel(p, cpu, cfg.Threads)
		em.End(it)
	}
	em.End(process)

	offload := em.Start(root, "OpenGEngine", "OffloadGraph")
	write := em.Start(offload, "OpenGEngine", "WriteResults")
	outBytes := float64(ds.Graph.NumVertices()) * scale * c.OutputBytesPerVertex
	node.WriteLocal(p, outBytes)
	em.Infof(write, "BytesWritten", "%d", int64(outBytes))
	em.End(write)
	em.End(offload)

	cleanup := em.Start(root, "OpenGClient", "Cleanup")
	pe := em.Start(cleanup, "OpenGClient", "ProcessExit")
	p.Sleep(c.ProcessExitSeconds)
	em.End(pe)
	em.End(cleanup)
	em.End(root)

	return &Result{
		Values:     values,
		Iterations: len(iters),
		Runtime:    p.Now() - start,
	}, nil
}
