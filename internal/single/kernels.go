package single

import (
	"math"

	"repro/internal/algorithms"
	"repro/internal/graph"
)

// This file provides the algorithm kernels for the single-node platform.
// Each executes for real and reports per-iteration work; outputs match the
// sequential references in internal/algorithms exactly.

// BFSKernel is level-synchronous breadth-first search.
type BFSKernel struct {
	Source graph.VertexID
}

// Name implements Kernel.
func (BFSKernel) Name() string { return "BFS" }

// Run implements Kernel.
func (k BFSKernel) Run(g *graph.Graph) ([]float64, []IterWork) {
	n := g.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	var iters []IterWork
	if n == 0 {
		return dist, iters
	}
	dist[k.Source] = 0
	frontier := []graph.VertexID{k.Source}
	for len(frontier) > 0 {
		work := IterWork{Vertices: int64(len(frontier))}
		var next []graph.VertexID
		for _, v := range frontier {
			for _, w := range g.OutNeighbors(v) {
				work.Edges++
				if math.IsInf(dist[w], 1) {
					dist[w] = dist[v] + 1
					next = append(next, w)
				}
			}
		}
		iters = append(iters, work)
		frontier = next
	}
	return dist, iters
}

// SSSPKernel is round-synchronous Bellman-Ford with the shared EdgeWeight
// weights; results match algorithms.RefSSSP.
type SSSPKernel struct {
	Source graph.VertexID
}

// Name implements Kernel.
func (SSSPKernel) Name() string { return "SSSP" }

// Run implements Kernel.
func (k SSSPKernel) Run(g *graph.Graph) ([]float64, []IterWork) {
	n := g.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	var iters []IterWork
	if n == 0 {
		return dist, iters
	}
	dist[k.Source] = 0
	active := map[graph.VertexID]bool{k.Source: true}
	for len(active) > 0 {
		work := IterWork{Vertices: int64(len(active))}
		next := map[graph.VertexID]bool{}
		// Deterministic order: scan vertices ascending.
		for v := int64(0); v < n; v++ {
			if !active[graph.VertexID(v)] {
				continue
			}
			for _, w := range g.OutNeighbors(graph.VertexID(v)) {
				work.Edges++
				nd := dist[v] + algorithms.EdgeWeight(graph.VertexID(v), w)
				if nd < dist[w] {
					dist[w] = nd
					next[w] = true
				}
			}
		}
		iters = append(iters, work)
		active = next
	}
	return dist, iters
}

// PageRankKernel runs fixed-iteration PageRank with dangling-mass
// redistribution; results match algorithms.RefPageRank.
type PageRankKernel struct {
	Iterations int
	Damping    float64
}

// Name implements Kernel.
func (PageRankKernel) Name() string { return "PageRank" }

// Run implements Kernel.
func (k PageRankKernel) Run(g *graph.Graph) ([]float64, []IterWork) {
	values := algorithms.RefPageRank(g, k.Iterations, k.Damping)
	iters := make([]IterWork, k.Iterations)
	for i := range iters {
		iters[i] = IterWork{Vertices: g.NumVertices(), Edges: g.NumArcs()}
	}
	return values, iters
}

// WCCKernel is synchronous min-label propagation; results match
// algorithms.RefWCC.
type WCCKernel struct{}

// Name implements Kernel.
func (WCCKernel) Name() string { return "WCC" }

// Run implements Kernel.
func (WCCKernel) Run(g *graph.Graph) ([]float64, []IterWork) {
	n := g.NumVertices()
	label := make([]float64, n)
	for v := int64(0); v < n; v++ {
		label[v] = float64(v)
	}
	var iters []IterWork
	changed := true
	for changed {
		changed = false
		work := IterWork{Vertices: n, Edges: g.NumArcs()}
		for v := int64(0); v < n; v++ {
			for _, w := range g.OutNeighbors(graph.VertexID(v)) {
				if label[v] < label[w] {
					label[w] = label[v]
					changed = true
				}
			}
		}
		iters = append(iters, work)
	}
	return label, iters
}

// LCCKernel computes local clustering coefficients (the one Graphalytics
// algorithm the distributed engines here do not run; see README). Work is
// the sum over vertices of neighborhood-pair probes.
type LCCKernel struct{}

// Name implements Kernel.
func (LCCKernel) Name() string { return "LCC" }

// Run implements Kernel.
func (LCCKernel) Run(g *graph.Graph) ([]float64, []IterWork) {
	values := algorithms.RefLCC(g)
	var probes int64
	for v := int64(0); v < g.NumVertices(); v++ {
		d := g.OutDegree(graph.VertexID(v)) + g.InDegree(graph.VertexID(v))
		probes += d * d
	}
	return values, []IterWork{{Vertices: g.NumVertices(), Edges: probes}}
}

// CDLPKernel is fixed-iteration label propagation; results match
// algorithms.RefCDLP.
type CDLPKernel struct {
	Iterations int
}

// Name implements Kernel.
func (CDLPKernel) Name() string { return "CDLP" }

// Run implements Kernel.
func (k CDLPKernel) Run(g *graph.Graph) ([]float64, []IterWork) {
	values := algorithms.RefCDLP(g, k.Iterations)
	iters := make([]IterWork, k.Iterations)
	for i := range iters {
		iters[i] = IterWork{Vertices: g.NumVertices(), Edges: g.NumArcs()}
	}
	return values, iters
}
