package single

import (
	"math"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/trace"
)

func testDataset(t *testing.T) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Generate(datagen.Config{
		Kind: datagen.SocialNetwork, Vertices: 1000, Edges: 5000, Seed: 13, Directed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func runSingle(t *testing.T, ds *datagen.Dataset, kernel Kernel, scale float64) (*Result, *trace.Log) {
	t.Helper()
	eng := sim.NewEngine()
	c := cluster.New(eng, cluster.Config{
		Nodes: 1, CoresPerNode: 8,
		DiskBandwidth: 200e6, NICBandwidth: 1e9, SharedFSBandwidth: 1e9,
		NodeNamePrefix: "n",
	})
	log := trace.NewLog()
	em := trace.NewEmitter(log, "single-test", eng.Now)
	deps := Deps{Cluster: c, InputBytes: StageInput(ds, scale), OutputPath: "/out"}
	cfg := DefaultConfig()
	cfg.Threads = 8
	cfg.WorkScale = scale
	var res *Result
	var jobErr error
	eng.Spawn("client", func(p *sim.Proc) {
		res, jobErr = RunJob(p, deps, cfg, kernel, ds, em)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if jobErr != nil {
		t.Fatal(jobErr)
	}
	return res, log
}

func TestBFSKernelMatchesReference(t *testing.T) {
	ds := testDataset(t)
	res, _ := runSingle(t, ds, BFSKernel{Source: 0}, 1)
	want := algorithms.RefBFS(ds.Graph, 0)
	for v := range want {
		if res.Values[v] != want[v] {
			t.Fatalf("vertex %d: %v, want %v", v, res.Values[v], want[v])
		}
	}
	if res.Iterations < 2 || res.Runtime <= 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestSSSPKernelMatchesReference(t *testing.T) {
	ds := testDataset(t)
	res, _ := runSingle(t, ds, SSSPKernel{Source: 0}, 1)
	want := algorithms.RefSSSP(ds.Graph, 0)
	for v := range want {
		same := res.Values[v] == want[v] ||
			math.Abs(res.Values[v]-want[v]) < 1e-9 ||
			(math.IsInf(res.Values[v], 1) && math.IsInf(want[v], 1))
		if !same {
			t.Fatalf("vertex %d: %v, want %v", v, res.Values[v], want[v])
		}
	}
}

func TestPageRankKernelMatchesReference(t *testing.T) {
	ds := testDataset(t)
	res, _ := runSingle(t, ds, PageRankKernel{Iterations: 8, Damping: 0.85}, 1)
	want := algorithms.RefPageRank(ds.Graph, 8, 0.85)
	for v := range want {
		if math.Abs(res.Values[v]-want[v]) > 1e-12 {
			t.Fatalf("vertex %d: %v, want %v", v, res.Values[v], want[v])
		}
	}
	if res.Iterations != 8 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
}

func TestWCCAndCDLPAndLCCKernels(t *testing.T) {
	und, err := datagen.Generate(datagen.Config{
		Kind: datagen.Uniform, Vertices: 300, Edges: 900, Seed: 3, Directed: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, _ := runSingle(t, und, WCCKernel{}, 1)
	want := algorithms.RefWCC(und.Graph)
	for v := range want {
		if res.Values[v] != want[v] {
			t.Fatalf("WCC vertex %d: %v, want %v", v, res.Values[v], want[v])
		}
	}
	res, _ = runSingle(t, und, CDLPKernel{Iterations: 4}, 1)
	wantC := algorithms.RefCDLP(und.Graph, 4)
	for v := range wantC {
		if res.Values[v] != wantC[v] {
			t.Fatalf("CDLP vertex %d: %v, want %v", v, res.Values[v], wantC[v])
		}
	}
	res, _ = runSingle(t, und, LCCKernel{}, 1)
	wantL := algorithms.RefLCC(und.Graph)
	for v := range wantL {
		if math.Abs(res.Values[v]-wantL[v]) > 1e-12 {
			t.Fatalf("LCC vertex %d: %v, want %v", v, res.Values[v], wantL[v])
		}
	}
}

func TestTraceHasDomainOperations(t *testing.T) {
	ds := testDataset(t)
	_, log := runSingle(t, ds, BFSKernel{Source: 0}, 1)
	missions := map[string]int{}
	for _, r := range log.Records() {
		if r.Event == trace.EventStart {
			missions[r.Mission]++
		}
	}
	for _, m := range []string{"OpenGJob", "Startup", "LoadGraph", "ProcessGraph", "OffloadGraph", "Cleanup", "ReadEdgeList", "BuildCSR", "WriteResults"} {
		if missions[m] != 1 {
			t.Fatalf("mission %s count = %d, want 1 (all: %v)", m, missions[m], missions)
		}
	}
	if missions["Iteration"] < 2 {
		t.Fatalf("iterations = %d", missions["Iteration"])
	}
}

func TestWorkScaleStretchesRuntime(t *testing.T) {
	ds := testDataset(t)
	r1, _ := runSingle(t, ds, BFSKernel{Source: 0}, 1)
	r100, _ := runSingle(t, ds, BFSKernel{Source: 0}, 100)
	if r100.Runtime <= r1.Runtime {
		t.Fatalf("scaled runtime %v not above %v", r100.Runtime, r1.Runtime)
	}
	for v := range r1.Values {
		if r1.Values[v] != r100.Values[v] {
			t.Fatalf("vertex %d differs under scaling", v)
		}
	}
}

func TestRunJobValidation(t *testing.T) {
	ds := testDataset(t)
	eng := sim.NewEngine()
	c := cluster.New(eng, cluster.Config{
		Nodes: 1, CoresPerNode: 4,
		DiskBandwidth: 1e6, NICBandwidth: 1e6, SharedFSBandwidth: 1e6,
		NodeNamePrefix: "n",
	})
	em := trace.NewEmitter(trace.NewLog(), "v", eng.Now)
	eng.Spawn("client", func(p *sim.Proc) {
		good := Deps{Cluster: c, InputBytes: 100}
		cases := []struct {
			deps Deps
			cfg  Config
		}{
			{Deps{}, DefaultConfig()}, // no cluster
			{good, Config{NodeID: 5, Threads: 1, WorkScale: 1, Costs: DefaultCostModel()}},  // bad node
			{good, Config{Threads: 0, WorkScale: 1, Costs: DefaultCostModel()}},             // bad threads
			{good, Config{Threads: 1, WorkScale: 0, Costs: DefaultCostModel()}},             // bad scale
			{Deps{Cluster: c}, Config{Threads: 1, WorkScale: 1, Costs: DefaultCostModel()}}, // no input
		}
		for i, tc := range cases {
			if _, err := RunJob(p, tc.deps, tc.cfg, BFSKernel{}, ds, em); err == nil {
				t.Errorf("case %d: expected error", i)
			}
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestKernelNames(t *testing.T) {
	kernels := []Kernel{
		BFSKernel{}, SSSPKernel{}, PageRankKernel{}, WCCKernel{}, LCCKernel{}, CDLPKernel{},
	}
	want := []string{"BFS", "SSSP", "PageRank", "WCC", "LCC", "CDLP"}
	for i, k := range kernels {
		if k.Name() != want[i] {
			t.Fatalf("kernel %d name = %q, want %q", i, k.Name(), want[i])
		}
	}
}

func TestBFSKernelEmptyGraph(t *testing.T) {
	g, err := graph.FromEdges(0, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	values, iters := BFSKernel{}.Run(g)
	if len(values) != 0 || len(iters) != 0 {
		t.Fatalf("empty graph: %v %v", values, iters)
	}
	values, iters = SSSPKernel{}.Run(g)
	if len(values) != 0 || len(iters) != 0 {
		t.Fatalf("empty graph SSSP: %v %v", values, iters)
	}
}
