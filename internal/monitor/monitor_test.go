package monitor

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/envmon"
	"repro/internal/sim"
	"repro/internal/trace"
)

func rec(t float64, job, op, parent, actor, mission string, ev trace.EventType) trace.Record {
	return trace.Record{Time: t, Job: job, Op: op, Parent: parent, Actor: actor, Mission: mission, Event: ev}
}

func TestAssembleBuildsTree(t *testing.T) {
	records := []trace.Record{
		rec(0, "j", "a", "", "Client", "Job", trace.EventStart),
		rec(1, "j", "b", "a", "Worker-1", "Load", trace.EventStart),
		{Time: 1.5, Job: "j", Op: "b", Event: trace.EventInfo, Key: "Bytes", Value: "10"},
		rec(2, "j", "b", "", "", "", trace.EventEnd),
		rec(3, "j", "a", "", "", "", trace.EventEnd),
		// Records of a different job must be ignored.
		rec(0, "other", "x", "", "c", "m", trace.EventStart),
		rec(1, "other", "x", "", "", "", trace.EventEnd),
	}
	samples := []envmon.Sample{
		{Time: 2, Node: "n1", Kind: envmon.KindCPU, Used: 1},
		{Time: 1, Node: "n0", Kind: envmon.KindCPU, Used: 2},
	}
	job, err := Assemble("j", "Giraph", records, samples)
	if err != nil {
		t.Fatal(err)
	}
	if job.Root.Mission != "Job" || len(job.Root.Children) != 1 {
		t.Fatalf("root = %+v", job.Root)
	}
	child := job.Root.Children[0]
	if child.Mission != "Load" || child.Infos["Bytes"] != "10" {
		t.Fatalf("child = %+v", child)
	}
	if child.Start != 1 || child.End != 2 {
		t.Fatalf("child interval = [%v,%v]", child.Start, child.End)
	}
	// Samples sorted by time.
	if len(job.EnvSamples) != 2 || job.EnvSamples[0].Time != 1 {
		t.Fatalf("samples = %+v", job.EnvSamples)
	}
	if err := job.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name    string
		records []trace.Record
		wantErr string
	}{
		{"no records", nil, "no records"},
		{"duplicate start", []trace.Record{
			rec(0, "j", "a", "", "c", "m", trace.EventStart),
			rec(1, "j", "a", "", "c", "m", trace.EventStart),
		}, "duplicate start"},
		{"end before start", []trace.Record{
			rec(0, "j", "a", "", "", "", trace.EventEnd),
		}, "end before start"},
		{"duplicate end", []trace.Record{
			rec(0, "j", "a", "", "c", "m", trace.EventStart),
			rec(1, "j", "a", "", "", "", trace.EventEnd),
			rec(2, "j", "a", "", "", "", trace.EventEnd),
		}, "duplicate end"},
		{"info before start", []trace.Record{
			{Time: 0, Job: "j", Op: "a", Event: trace.EventInfo, Key: "k", Value: "v"},
		}, "info before start"},
		{"never ended", []trace.Record{
			rec(0, "j", "a", "", "c", "m", trace.EventStart),
		}, "never ended"},
		{"unknown parent", []trace.Record{
			rec(0, "j", "a", "ghost", "c", "m", trace.EventStart),
			rec(1, "j", "a", "", "", "", trace.EventEnd),
		}, "unknown parent"},
		{"multiple roots", []trace.Record{
			rec(0, "j", "a", "", "c", "m", trace.EventStart),
			rec(1, "j", "a", "", "", "", trace.EventEnd),
			rec(0, "j", "b", "", "c", "m", trace.EventStart),
			rec(1, "j", "b", "", "", "", trace.EventEnd),
		}, "multiple root"},
	}
	for _, c := range cases {
		_, err := Assemble("j", "p", c.records, nil)
		if err == nil {
			t.Fatalf("%s: expected error", c.name)
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Fatalf("%s: error %q does not contain %q", c.name, err, c.wantErr)
		}
	}
}

func TestSessionRunsEndToEnd(t *testing.T) {
	eng := sim.NewEngine()
	c := cluster.New(eng, cluster.Config{
		Nodes: 2, CoresPerNode: 4,
		DiskBandwidth: 100, NICBandwidth: 100, SharedFSBandwidth: 100,
		NodeNamePrefix: "n",
	})
	s := &Session{Cluster: c, SampleInterval: 0.5, JobID: "sess-1", Platform: "Test"}
	job, err := s.Run(func(p *sim.Proc, em *trace.Emitter) error {
		root := em.Start(trace.Root, "Client", "Job")
		work := em.Start(root, "Worker", "Work")
		c.Node(0).Exec(p, 2) // 2 cpu-seconds
		em.End(work)
		em.End(root)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if job.ID != "sess-1" || job.Platform != "Test" {
		t.Fatalf("job meta = %s/%s", job.ID, job.Platform)
	}
	if job.Root.Mission != "Job" || len(job.Root.Children) != 1 {
		t.Fatalf("tree wrong: %+v", job.Root)
	}
	if job.Root.Duration() < 2 {
		t.Fatalf("root duration = %v, want >= 2", job.Root.Duration())
	}
	// The environment monitor must have recorded the CPU work.
	total := 0.0
	for _, s := range job.EnvSamples {
		total += s.CPUUsed()
	}
	if total < 2-1e-6 {
		t.Fatalf("sampled CPU = %v, want ~2", total)
	}
	if eng.LiveProcs() != 0 {
		t.Fatalf("leaked %d processes", eng.LiveProcs())
	}
}

func TestSessionPropagatesBodyError(t *testing.T) {
	eng := sim.NewEngine()
	c := cluster.New(eng, cluster.Config{
		Nodes: 1, CoresPerNode: 1,
		DiskBandwidth: 1, NICBandwidth: 1, SharedFSBandwidth: 1,
		NodeNamePrefix: "n",
	})
	s := &Session{Cluster: c, JobID: "fail", Platform: "Test"}
	_, err := s.Run(func(p *sim.Proc, em *trace.Emitter) error {
		return strings.NewReader("").UnreadByte() // any error
	})
	if err == nil {
		t.Fatal("expected body error to propagate")
	}
}

func TestSessionDefaultInterval(t *testing.T) {
	eng := sim.NewEngine()
	c := cluster.New(eng, cluster.Config{
		Nodes: 1, CoresPerNode: 1,
		DiskBandwidth: 1, NICBandwidth: 1, SharedFSBandwidth: 1,
		NodeNamePrefix: "n",
	})
	s := &Session{Cluster: c, JobID: "d", Platform: "Test"}
	job, err := s.Run(func(p *sim.Proc, em *trace.Emitter) error {
		op := em.Start(trace.Root, "c", "Job")
		p.Sleep(2.5)
		em.End(op)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(job.EnvSamples) < 2 {
		t.Fatalf("samples = %d, want >= 2 at default 1s interval", len(job.EnvSamples))
	}
	_ = eng
}
