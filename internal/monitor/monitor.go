// Package monitor implements Granula's monitoring sub-process (P2): it
// takes the two kinds of performance data a job run produces — platform
// logs (operation records) and environment logs (resource samples) — and
// assembles them into the operation tree of a performance archive. It
// also provides Session, the end-to-end harness that runs a job on the
// simulated cluster with the environment monitor attached and returns the
// assembled archive job.
package monitor

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/archive"
	"repro/internal/cluster"
	"repro/internal/envmon"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Assemble builds an archive job from platform-log records and
// environment samples. Records belonging to other jobs are ignored. The
// records must describe a single rooted tree of completed operations.
func Assemble(jobID, platform string, records []trace.Record, samples []envmon.Sample) (*archive.Job, error) {
	type building struct {
		op      *archive.Operation
		parent  string
		started bool
		ended   bool
	}
	ops := map[string]*building{}
	var order []string

	get := func(id string) *building {
		b, ok := ops[id]
		if !ok {
			b = &building{op: &archive.Operation{ID: id}}
			ops[id] = b
			order = append(order, id)
		}
		return b
	}

	for _, r := range records {
		if r.Job != jobID {
			continue
		}
		switch r.Event {
		case trace.EventStart:
			b := get(r.Op)
			if b.started {
				return nil, fmt.Errorf("monitor: duplicate start for operation %s", r.Op)
			}
			b.started = true
			b.parent = r.Parent
			b.op.Actor = r.Actor
			b.op.Mission = r.Mission
			b.op.Start = r.Time
		case trace.EventEnd:
			b := get(r.Op)
			if !b.started {
				return nil, fmt.Errorf("monitor: end before start for operation %s", r.Op)
			}
			if b.ended {
				return nil, fmt.Errorf("monitor: duplicate end for operation %s", r.Op)
			}
			b.ended = true
			b.op.End = r.Time
		case trace.EventInfo:
			b := get(r.Op)
			if !b.started {
				return nil, fmt.Errorf("monitor: info before start for operation %s", r.Op)
			}
			if b.op.Infos == nil {
				b.op.Infos = map[string]string{}
			}
			b.op.Infos[r.Key] = r.Value
		default:
			return nil, fmt.Errorf("monitor: unknown event %q", r.Event)
		}
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("monitor: no records for job %q", jobID)
	}

	var root *archive.Operation
	for _, id := range order {
		b := ops[id]
		if !b.started {
			return nil, fmt.Errorf("monitor: operation %s never started", id)
		}
		if !b.ended {
			return nil, fmt.Errorf("monitor: operation %s never ended", id)
		}
		if b.parent == "" {
			if root != nil {
				return nil, fmt.Errorf("monitor: multiple root operations (%s and %s)", root.ID, id)
			}
			root = b.op
			continue
		}
		pb, ok := ops[b.parent]
		if !ok {
			return nil, fmt.Errorf("monitor: operation %s references unknown parent %s", id, b.parent)
		}
		pb.op.Children = append(pb.op.Children, b.op)
	}
	if root == nil {
		return nil, fmt.Errorf("monitor: no root operation for job %q", jobID)
	}

	job := &archive.Job{ID: jobID, Platform: platform, Root: root}
	sort.SliceStable(samples, func(i, k int) bool {
		if samples[i].Time != samples[k].Time {
			return samples[i].Time < samples[k].Time
		}
		return samples[i].Node < samples[k].Node
	})
	for _, s := range samples {
		job.EnvSamples = append(job.EnvSamples, archive.EnvSample{
			Time: s.Time, Node: s.Node, Kind: s.Kind, Used: s.Used,
		})
	}
	return job, nil
}

// Session runs one instrumented job end to end: it starts the environment
// monitor, executes the job body, serializes the platform log through the
// text format (exercising the same parse path a real deployment uses),
// and assembles the archive job.
type Session struct {
	// Cluster is the environment to monitor.
	Cluster *cluster.Cluster
	// SampleInterval is the environment monitor's period in simulated
	// seconds (1.0 reproduces the paper's per-second CPU figures).
	SampleInterval float64
	// JobID and Platform label the archive job.
	JobID    string
	Platform string
	// RecordSink, when non-nil, observes every platform-log record as it
	// is emitted during Run, before assembly. SampleSink likewise
	// observes every environment sample. Both are invoked synchronously
	// from the simulation; they let live observers tail a running job
	// without altering what Run assembles.
	RecordSink func(trace.Record)
	SampleSink func(envmon.Sample)
}

// Run executes body as a simulated process with an emitter bound to this
// session's job, then assembles and returns the archive job. The
// simulation engine is run to completion; Run must therefore be called
// with an idle engine.
func (s *Session) Run(body func(p *sim.Proc, em *trace.Emitter) error) (*archive.Job, error) {
	if s.SampleInterval <= 0 {
		s.SampleInterval = 1.0
	}
	eng := s.Cluster.Engine()
	log := trace.NewLog()
	if s.RecordSink != nil {
		log.SetSink(s.RecordSink)
	}
	em := trace.NewEmitter(log, s.JobID, eng.Now)
	mon := envmon.Start(s.Cluster, s.SampleInterval)
	if s.SampleSink != nil {
		mon.SetSink(s.SampleSink)
	}
	var bodyErr error
	eng.Spawn("granula-session", func(p *sim.Proc) {
		bodyErr = body(p, em)
		mon.Stop()
	})
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("monitor: simulation failed: %w", err)
	}
	if bodyErr != nil {
		return nil, bodyErr
	}
	// Round-trip the platform log through its text encoding: platforms
	// write log files; Granula parses them.
	var buf bytes.Buffer
	if err := trace.Encode(&buf, log.Records()); err != nil {
		return nil, fmt.Errorf("monitor: encode platform log: %w", err)
	}
	records, err := trace.Parse(&buf)
	if err != nil {
		return nil, fmt.Errorf("monitor: parse platform log: %w", err)
	}
	return Assemble(s.JobID, s.Platform, records, mon.Samples())
}
