package monitor

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/archive"
	"repro/internal/trace"
)

// emitRandomTree emits a random well-nested operation tree through an
// emitter, returning the number of operations emitted.
func emitRandomTree(rng *rand.Rand, em *trace.Emitter, clock *float64, parent trace.OpRef, depth int) int {
	count := 0
	n := 1 + rng.Intn(3)
	if depth >= 3 {
		n = 0
	}
	for i := 0; i < n; i++ {
		*clock += rng.Float64()
		op := em.Start(parent, fmt.Sprintf("A%d", rng.Intn(3)), fmt.Sprintf("M%d", rng.Intn(5)))
		count++
		if rng.Intn(2) == 0 {
			em.Info(op, "k", fmt.Sprint(rng.Intn(10)))
		}
		count += emitRandomTree(rng, em, clock, op, depth+1)
		*clock += rng.Float64()
		em.End(op)
	}
	return count
}

// TestAssembleRandomTreesProperty: any well-nested emitted tree assembles
// into a valid archive job with the same operation count, and survives
// the text encode/parse round trip.
func TestAssembleRandomTreesProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		clock := 0.0
		log := trace.NewLog()
		em := trace.NewEmitter(log, "prop", func() float64 { return clock })
		root := em.Start(trace.Root, "Client", "Job")
		count := 1 + emitRandomTree(rng, em, &clock, root, 0)
		clock += 1
		em.End(root)

		job, err := Assemble("prop", "X", log.Records(), nil)
		if err != nil {
			return false
		}
		if err := job.Validate(); err != nil {
			return false
		}
		got := 0
		job.Root.Walk(func(*archive.Operation) { got++ })
		return got == count
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
