package shard

import (
	"context"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// HealthPath is the lightweight cluster-internal liveness probe served
// by every shard (and consumed by the failure detector). Unlike
// /healthz it carries no load information — it exists to answer "is
// this process reachable" as cheaply as possible, so detector traffic
// stays negligible at any probe rate.
const HealthPath = "/internal/health"

// NodeState is the failure detector's verdict on one node.
type NodeState int

const (
	// NodeUp: the node answers probes; route to it normally.
	NodeUp NodeState = iota
	// NodeSuspect: consecutive misses crossed SuspectAfter but not yet
	// DownAfter. Suspects keep their ring position (a latency spike must
	// not reorder owners) but operators can see the wobble.
	NodeSuspect
	// NodeDown: consecutive misses crossed DownAfter. The router demotes
	// the node to the tail of every replica set (promotion) and writers
	// journal hints for it instead of waiting on its timeout.
	NodeDown
)

func (s NodeState) String() string {
	switch s {
	case NodeSuspect:
		return "suspect"
	case NodeDown:
		return "down"
	default:
		return "up"
	}
}

// NodeStatus is one node's row in a detector snapshot.
type NodeStatus struct {
	ID     string    `json:"id"`
	State  NodeState `json:"-"`
	Status string    `json:"status"`
	Misses int       `json:"misses,omitempty"`
}

// DetectorOptions tunes NewDetector; zero values select defaults.
type DetectorOptions struct {
	// Client issues the health probes; nil selects a short-timeout
	// client (probes must fail fast, not queue behind slow requests).
	Client *http.Client
	// Interval is the probe period; 0 selects 500 ms.
	Interval time.Duration
	// Timeout bounds one probe; 0 selects min(Interval, 1 s).
	Timeout time.Duration
	// SuspectAfter is the consecutive misses before Up -> Suspect;
	// < 1 selects 2.
	SuspectAfter int
	// DownAfter is the consecutive misses before -> Down; < 1 selects 4.
	// Hysteresis lives in the gap: a single dropped probe (GC pause,
	// latency spike) moves a node at most to Suspect, which does not
	// change routing.
	DownAfter int
	// UpAfter is the consecutive hits before Suspect/Down -> Up;
	// < 1 selects 2, so one lucky probe does not flap a dead node back.
	UpAfter int
	// OnTransition observes state changes (for logs/tests); may be nil.
	// Called outside the detector lock.
	OnTransition func(node string, from, to NodeState)
	// Metrics receives transition counters; may be nil.
	Metrics *SelfHealMetrics
}

// Detector is the heartbeat-based failure detector shared by the router
// and the shard nodes: a probe loop GETs every peer's /internal/health
// on a fixed interval and turns consecutive outcomes into Up / Suspect
// / Down verdicts with hysteresis on both edges. Transport-level
// failures observed by the request path can be fed in passively via
// Observe, so a dead node is noticed between probe ticks too. It is
// safe for concurrent use.
type Detector struct {
	m            *Map
	self         string
	client       *http.Client
	interval     time.Duration
	timeout      time.Duration
	suspectAfter int
	downAfter    int
	upAfter      int
	onTransition func(node string, from, to NodeState)
	metrics      *SelfHealMetrics

	mu    sync.Mutex
	nodes map[string]*nodeHealth

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// nodeHealth is one node's hysteresis state.
type nodeHealth struct {
	state  NodeState
	misses int // consecutive failed observations
	hits   int // consecutive successful observations while not Up
}

// NewDetector builds a detector over the map. self, when non-empty,
// names the local node (never probed — a node does not suspect itself);
// the router passes "".
func NewDetector(m *Map, self string, opts DetectorOptions) *Detector {
	interval := opts.Interval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = interval
		if timeout > time.Second {
			timeout = time.Second
		}
	}
	c := opts.Client
	if c == nil {
		c = &http.Client{Timeout: timeout}
	}
	sa, da, ua := opts.SuspectAfter, opts.DownAfter, opts.UpAfter
	if sa < 1 {
		sa = 2
	}
	if da < 1 {
		da = 4
	}
	if da < sa {
		da = sa
	}
	if ua < 1 {
		ua = 2
	}
	d := &Detector{
		m: m, self: self, client: c,
		interval: interval, timeout: timeout,
		suspectAfter: sa, downAfter: da, upAfter: ua,
		onTransition: opts.OnTransition, metrics: opts.Metrics,
		nodes: map[string]*nodeHealth{},
		stop:  make(chan struct{}), done: make(chan struct{}),
	}
	for _, n := range m.Shards {
		d.nodes[n.ID] = &nodeHealth{state: NodeUp}
	}
	return d
}

// Start launches the probe loop. Idempotent.
func (d *Detector) Start() {
	d.startOnce.Do(func() { go d.loop() })
}

// Close stops the probe loop and waits for it. Safe without Start and
// safe to call multiple times.
func (d *Detector) Close() {
	d.stopOnce.Do(func() { close(d.stop) })
	d.startOnce.Do(func() { close(d.done) }) // never started: unblock the wait
	<-d.done
}

func (d *Detector) loop() {
	defer close(d.done)
	t := time.NewTicker(d.interval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			d.probeAll()
		}
	}
}

// probeAll probes every peer concurrently and feeds the outcomes in.
func (d *Detector) probeAll() {
	var wg sync.WaitGroup
	for _, n := range d.m.Shards {
		if n.ID == d.self {
			continue
		}
		wg.Add(1)
		go func(n Node) {
			defer wg.Done()
			d.Observe(n.ID, d.probe(n))
		}(n)
	}
	wg.Wait()
}

// probe issues one health GET; any 2xx answer counts as alive — even a
// degraded (breaker-open) shard is reachable and must not be promoted
// around, it still serves reads and replica applies.
func (d *Detector) probe(n Node) bool {
	// The probe carries its own deadline: a caller-supplied client (e.g.
	// a test's partition transport) may have no timeout, and a hanging
	// probe must count as a miss, not stall the loop.
	ctx, cancel := context.WithTimeout(context.Background(), d.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.URL+HealthPath, nil)
	if err != nil {
		return false
	}
	resp, err := d.client.Do(req)
	if err != nil {
		if d.metrics != nil {
			d.metrics.countProbe(false)
		}
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	ok := resp.StatusCode >= 200 && resp.StatusCode < 300
	if d.metrics != nil {
		d.metrics.countProbe(ok)
	}
	return ok
}

// Observe feeds one observation of a node — a probe outcome, or a
// passive signal from the request path (the router reports transport
// errors here; HTTP error statuses do NOT count as misses, a process
// answering 5xx is alive). Unknown nodes are ignored.
func (d *Detector) Observe(nodeID string, ok bool) {
	d.mu.Lock()
	h, known := d.nodes[nodeID]
	if !known {
		d.mu.Unlock()
		return
	}
	from := h.state
	if ok {
		h.misses = 0
		if h.state != NodeUp {
			h.hits++
			if h.hits >= d.upAfter {
				h.state = NodeUp
				h.hits = 0
			}
		}
	} else {
		h.hits = 0
		h.misses++
		switch {
		case h.misses >= d.downAfter:
			h.state = NodeDown
		case h.misses >= d.suspectAfter && h.state == NodeUp:
			h.state = NodeSuspect
		}
	}
	to := h.state
	d.mu.Unlock()
	if from != to {
		if d.metrics != nil {
			d.metrics.countTransition(to)
		}
		if d.onTransition != nil {
			d.onTransition(nodeID, from, to)
		}
	}
}

// State returns the detector's verdict on a node; unknown nodes report
// Up (an unknown node is not evidence of failure).
func (d *Detector) State(nodeID string) NodeState {
	d.mu.Lock()
	defer d.mu.Unlock()
	if h, ok := d.nodes[nodeID]; ok {
		return h.state
	}
	return NodeUp
}

// Down reports whether a node is marked down.
func (d *Detector) Down(nodeID string) bool { return d.State(nodeID) == NodeDown }

// Snapshot returns every node's status, sorted by ID, for /cluster and
// the metrics exposition.
func (d *Detector) Snapshot() []NodeStatus {
	d.mu.Lock()
	out := make([]NodeStatus, 0, len(d.nodes))
	for id, h := range d.nodes {
		out = append(out, NodeStatus{ID: id, State: h.state, Status: h.state.String(), Misses: h.misses})
	}
	d.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
