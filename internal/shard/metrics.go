package shard

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// histBuckets are the fixed latency-bucket upper bounds (seconds) shared
// by the router and replication histograms — the same spans as the
// service's request histogram so dashboards line up.
var histBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// fixedHistogram is a cumulative fixed-bucket histogram. Callers
// synchronize access.
type fixedHistogram struct {
	counts []uint64
	sum    float64
	count  uint64
}

func newFixedHistogram() *fixedHistogram {
	return &fixedHistogram{counts: make([]uint64, len(histBuckets))}
}

func (h *fixedHistogram) observe(v float64) {
	for i, ub := range histBuckets {
		if v <= ub {
			h.counts[i]++
		}
	}
	h.sum += v
	h.count++
}

// write renders the histogram under name. labels, when non-empty, is a
// rendered label-pair prefix (e.g. `shard="s1",`) merged into every
// sample's label set. The # HELP/# TYPE header is the caller's job when
// the same metric name is written for several label values.
func (h *fixedHistogram) write(w io.Writer, name, labels string) {
	for i, ub := range histBuckets {
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, labels, strconv.FormatFloat(ub, 'g', -1, 64), h.counts[i])
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, h.count)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %s\n", name, strconv.FormatFloat(h.sum, 'g', -1, 64))
		fmt.Fprintf(w, "%s_count %d\n", name, h.count)
	} else {
		trimmed := labels[:len(labels)-1] // drop the trailing comma
		fmt.Fprintf(w, "%s_sum{%s} %s\n", name, trimmed, strconv.FormatFloat(h.sum, 'g', -1, 64))
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, trimmed, h.count)
	}
}

// RouterMetrics is the router's operational counter set, exposed on the
// router's own /metrics as the granula_router_* family.
type RouterMetrics struct {
	mu         sync.Mutex
	requests   map[string]uint64          // proxied requests by shard
	failovers  map[string]uint64          // requests failed away from a shard
	latency    map[string]*fixedHistogram // proxy latency by shard
	repairs    uint64                     // read-repairs dispatched
	probes     uint64                     // divergence probes issued
	divergent  uint64                     // probes that found divergent ETags
	exhausted  uint64                     // requests that ran out of replicas
	promotions uint64                     // writes routed past a Down primary
}

// NewRouterMetrics returns an empty router metrics set.
func NewRouterMetrics() *RouterMetrics {
	return &RouterMetrics{
		requests:  map[string]uint64{},
		failovers: map[string]uint64{},
		latency:   map[string]*fixedHistogram{},
	}
}

func (m *RouterMetrics) countRequest(shard string, seconds float64) {
	m.mu.Lock()
	m.requests[shard]++
	h, ok := m.latency[shard]
	if !ok {
		h = newFixedHistogram()
		m.latency[shard] = h
	}
	h.observe(seconds)
	m.mu.Unlock()
}

func (m *RouterMetrics) countFailover(shard string) {
	m.mu.Lock()
	m.failovers[shard]++
	m.mu.Unlock()
}

func (m *RouterMetrics) countRepair() {
	m.mu.Lock()
	m.repairs++
	m.mu.Unlock()
}

func (m *RouterMetrics) countProbe(divergent bool) {
	m.mu.Lock()
	m.probes++
	if divergent {
		m.divergent++
	}
	m.mu.Unlock()
}

func (m *RouterMetrics) countExhausted() {
	m.mu.Lock()
	m.exhausted++
	m.mu.Unlock()
}

func (m *RouterMetrics) countPromotion() {
	m.mu.Lock()
	m.promotions++
	m.mu.Unlock()
}

// Promotions returns how many writes were routed past a Down primary to
// the next ring owner.
func (m *RouterMetrics) Promotions() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.promotions
}

// Failovers returns the total requests failed away from any shard.
func (m *RouterMetrics) Failovers() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n uint64
	for _, v := range m.failovers {
		n += v
	}
	return n
}

// Repairs returns the read-repairs dispatched.
func (m *RouterMetrics) Repairs() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.repairs
}

// Divergences returns (probes issued, divergent ETags found).
func (m *RouterMetrics) Divergences() (probes, divergent uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.probes, m.divergent
}

// WritePrometheus renders the router family in Prometheus text format,
// shards sorted so the output is byte-deterministic for a given state.
func (m *RouterMetrics) WritePrometheus(w io.Writer, mapVersion uint64, shards int) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP granula_router_shards Shards in the active map.")
	fmt.Fprintln(w, "# TYPE granula_router_shards gauge")
	fmt.Fprintf(w, "granula_router_shards %d\n", shards)
	fmt.Fprintln(w, "# HELP granula_router_map_version Active shard-map version.")
	fmt.Fprintln(w, "# TYPE granula_router_map_version gauge")
	fmt.Fprintf(w, "granula_router_map_version %d\n", mapVersion)

	fmt.Fprintln(w, "# HELP granula_router_requests_total Requests proxied to each shard.")
	fmt.Fprintln(w, "# TYPE granula_router_requests_total counter")
	for _, id := range sortedKeys(m.requests) {
		fmt.Fprintf(w, "granula_router_requests_total{shard=%q} %d\n", id, m.requests[id])
	}

	fmt.Fprintln(w, "# HELP granula_router_failovers_total Requests failed away from a shard to the next replica.")
	fmt.Fprintln(w, "# TYPE granula_router_failovers_total counter")
	for _, id := range sortedKeys(m.failovers) {
		fmt.Fprintf(w, "granula_router_failovers_total{shard=%q} %d\n", id, m.failovers[id])
	}

	fmt.Fprintln(w, "# HELP granula_router_read_repairs_total Read-repairs dispatched to stale or missing replicas.")
	fmt.Fprintln(w, "# TYPE granula_router_read_repairs_total counter")
	fmt.Fprintf(w, "granula_router_read_repairs_total %d\n", m.repairs)

	fmt.Fprintln(w, "# HELP granula_router_divergence_probes_total Background replica ETag comparisons (and how many diverged).")
	fmt.Fprintln(w, "# TYPE granula_router_divergence_probes_total counter")
	fmt.Fprintf(w, "granula_router_divergence_probes_total{outcome=\"clean\"} %d\n", m.probes-m.divergent)
	fmt.Fprintf(w, "granula_router_divergence_probes_total{outcome=\"divergent\"} %d\n", m.divergent)

	fmt.Fprintln(w, "# HELP granula_router_exhausted_total Requests that failed on every replica.")
	fmt.Fprintln(w, "# TYPE granula_router_exhausted_total counter")
	fmt.Fprintf(w, "granula_router_exhausted_total %d\n", m.exhausted)

	fmt.Fprintln(w, "# HELP granula_router_promotions_total Writes routed past a Down primary to the next ring owner.")
	fmt.Fprintln(w, "# TYPE granula_router_promotions_total counter")
	fmt.Fprintf(w, "granula_router_promotions_total %d\n", m.promotions)

	shardsSorted := make([]string, 0, len(m.latency))
	for id := range m.latency {
		shardsSorted = append(shardsSorted, id)
	}
	sort.Strings(shardsSorted)
	fmt.Fprintln(w, "# HELP granula_router_request_seconds Proxy latency by shard.")
	fmt.Fprintln(w, "# TYPE granula_router_request_seconds histogram")
	for _, id := range shardsSorted {
		m.latency[id].write(w, "granula_router_request_seconds", fmt.Sprintf("shard=%q,", id))
	}
}
