package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeJob is one record on a fake shard.
type fakeJob struct {
	body    string
	etag    string
	version uint64
}

// fakeShard is a minimal granula-serve stand-in: just enough of the
// public API plus the cluster-internal endpoints for the router to talk
// to, with switchable failure and full visibility into what arrived.
type fakeShard struct {
	id      string
	srv     *httptest.Server
	failing atomic.Bool  // every request answers 500
	delay   atomic.Int64 // per-request latency in nanoseconds
	hits    atomic.Int64 // API requests received (probes excluded)

	mu        sync.Mutex
	jobs      map[string]fakeJob
	submits   []string        // job IDs POSTed to /jobs
	applied   []ReplicaRecord // records POSTed to /internal/replicate
	deadlines []string        // X-Granula-Deadline values seen on reads
}

func (fs *fakeShard) setJob(id string, j fakeJob) {
	fs.mu.Lock()
	fs.jobs[id] = j
	fs.mu.Unlock()
}

func (fs *fakeShard) appliedRecords() []ReplicaRecord {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return append([]ReplicaRecord(nil), fs.applied...)
}

func (fs *fakeShard) submittedIDs() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return append([]string(nil), fs.submits...)
}

func newFakeShard(id string) *fakeShard {
	fs := &fakeShard{id: id, jobs: map[string]fakeJob{}}
	mux := http.NewServeMux()
	fail := func(w http.ResponseWriter) bool {
		fs.hits.Add(1)
		if d := fs.delay.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		if fs.failing.Load() {
			http.Error(w, "injected shard failure", http.StatusInternalServerError)
			return true
		}
		return false
	}
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		if fail(w) {
			return
		}
		body, _ := io.ReadAll(r.Body)
		var req struct {
			ID string `json:"id"`
		}
		json.Unmarshal(body, &req)
		fs.mu.Lock()
		fs.submits = append(fs.submits, req.ID)
		fs.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, "{\n  \"id\": %q,\n  \"status\": \"queued\"\n}\n", req.ID)
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		if fail(w) {
			return
		}
		fs.mu.Lock()
		ids := make([]string, 0, len(fs.jobs))
		for id := range fs.jobs {
			ids = append(ids, id)
		}
		fs.mu.Unlock()
		entries := make([]string, 0, len(ids))
		for _, id := range ids {
			entries = append(entries, fmt.Sprintf("{\"id\": %q, \"status\": \"done\"}", id))
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"count\": %d, \"jobs\": [%s]}\n", len(entries), strings.Join(entries, ", "))
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if h := r.Header.Get(DeadlineHeader); h != "" {
			fs.mu.Lock()
			fs.deadlines = append(fs.deadlines, h)
			fs.mu.Unlock()
		}
		if fail(w) {
			return
		}
		id := r.PathValue("id")
		fs.mu.Lock()
		_, ok := fs.jobs[id]
		fs.mu.Unlock()
		if !ok {
			http.Error(w, fmt.Sprintf("{\"error\": \"no job %q\"}", id), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"id\": %q, \"status\": \"done\"}\n", id)
	})
	mux.HandleFunc("GET /jobs/{id}/archive", func(w http.ResponseWriter, r *http.Request) {
		if fail(w) {
			return
		}
		id := r.PathValue("id")
		fs.mu.Lock()
		j, ok := fs.jobs[id]
		fs.mu.Unlock()
		if !ok {
			http.Error(w, fmt.Sprintf("{\"error\": \"no job %q\"}", id), http.StatusNotFound)
			return
		}
		if j.etag != "" {
			w.Header().Set("ETag", j.etag)
			if r.Header.Get("If-None-Match") == j.etag {
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, j.body)
	})
	mux.HandleFunc("POST "+ReplicatePath, func(w http.ResponseWriter, r *http.Request) {
		if fail(w) {
			return
		}
		var rec ReplicaRecord
		if err := json.NewDecoder(r.Body).Decode(&rec); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fs.mu.Lock()
		fs.applied = append(fs.applied, rec)
		if cur, ok := fs.jobs[rec.ID]; !ok || rec.Version > cur.version {
			fs.jobs[rec.ID] = fakeJob{body: string(rec.Payload), etag: fmt.Sprintf("%q", fmt.Sprintf("v%d", rec.Version)), version: rec.Version}
		}
		fs.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"id\": %q, \"version\": %d}\n", rec.ID, rec.Version)
	})
	mux.HandleFunc("GET "+ExportPathPrefix+"{id}", func(w http.ResponseWriter, r *http.Request) {
		if fail(w) {
			return
		}
		id := r.PathValue("id")
		fs.mu.Lock()
		j, ok := fs.jobs[id]
		fs.mu.Unlock()
		if !ok {
			http.Error(w, fmt.Sprintf("{\"error\": \"no job %q\"}", id), http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(ReplicaRecord{ID: id, Version: j.version, Payload: json.RawMessage(j.body)})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if fail(w) {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, "{\"status\": \"ok\"}\n")
	})
	mux.HandleFunc("GET "+HealthPath, func(w http.ResponseWriter, r *http.Request) {
		// The probe target answers instantly even when the shard is
		// "slow" (delay simulates overload, not death), but a failing
		// shard misses probes — that is how tests kill a node.
		if fs.failing.Load() {
			http.Error(w, "injected shard failure", http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(w, "{\"shardId\":%q,\"status\":\"ok\"}\n", fs.id)
	})
	mux.HandleFunc("GET "+DigestPath, func(w http.ResponseWriter, r *http.Request) {
		if fail(w) {
			return
		}
		fs.mu.Lock()
		entries := make([]DigestEntry, 0, len(fs.jobs))
		for id, j := range fs.jobs {
			v := j.version
			if v == 0 {
				v = 1
			}
			entries = append(entries, DigestEntry{ID: id, Version: v})
		}
		fs.mu.Unlock()
		sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
		buf, err := EncodeDigest(entries)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(buf)
	})
	fs.srv = httptest.NewServer(mux)
	return fs
}

// newFakeCluster starts n fake shards and a router over them.
func newFakeCluster(t *testing.T, n, repl, quorum, repairEvery int) ([]*fakeShard, *Map, *Router) {
	t.Helper()
	shards := make([]*fakeShard, n)
	nodes := make([]Node, n)
	for i := range shards {
		fs := newFakeShard(fmt.Sprintf("s%d", i+1))
		t.Cleanup(fs.srv.Close)
		shards[i] = fs
		nodes[i] = Node{ID: fs.id, URL: fs.srv.URL}
	}
	m, err := NewMap(1, nodes, repl, quorum, 0)
	if err != nil {
		t.Fatal(err)
	}
	return shards, m, NewRouter(m, RouterOptions{RepairEvery: repairEvery})
}

func byID(shards []*fakeShard, id string) *fakeShard {
	for _, fs := range shards {
		if fs.id == id {
			return fs
		}
	}
	return nil
}

func routerGet(t *testing.T, rt *Router, path string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, req)
	return w
}

func TestRouterSubmitRoutesToPrimary(t *testing.T) {
	shards, m, rt := newFakeCluster(t, 3, 1, 1, 0)
	const id = "job-routing-check"
	primary := m.Ring().Primary(id)

	body := fmt.Sprintf(`{"platform":"Giraph","algorithm":"BFS","id":%q}`, id)
	req := httptest.NewRequest(http.MethodPost, "/jobs", bytes.NewReader([]byte(body)))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, req)

	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", w.Code, w.Body)
	}
	if got := w.Header().Get(ShardHeader); got != primary {
		t.Fatalf("served by %q, want primary %q", got, primary)
	}
	if got := byID(shards, primary).submittedIDs(); len(got) != 1 || got[0] != id {
		t.Fatalf("primary %s saw submits %v, want [%s]", primary, got, id)
	}
	for _, fs := range shards {
		if fs.id != primary && len(fs.submittedIDs()) != 0 {
			t.Fatalf("non-primary %s saw submits %v", fs.id, fs.submittedIDs())
		}
	}
}

func TestRouterSubmitAssignsID(t *testing.T) {
	shards, m, rt := newFakeCluster(t, 3, 1, 1, 0)
	req := httptest.NewRequest(http.MethodPost, "/jobs",
		bytes.NewReader([]byte(`{"platform":"Giraph","algorithm":"BFS"}`)))
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", w.Code, w.Body)
	}
	var resp struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID == "" {
		t.Fatal("router did not assign a job ID")
	}
	primary := m.Ring().Primary(resp.ID)
	if got := byID(shards, primary).submittedIDs(); len(got) != 1 || got[0] != resp.ID {
		t.Fatalf("assigned ID %q did not land on its primary %s (saw %v)", resp.ID, primary, got)
	}
}

func TestRouterReadPassesBytesAndETag(t *testing.T) {
	shards, m, rt := newFakeCluster(t, 3, 2, 1, 0)
	const id, body, etag = "job-etag", "{\n  \"jobs\": [1]\n}\n", `"abc123"`
	for _, n := range m.Owners(id) {
		byID(shards, n.ID).setJob(id, fakeJob{body: body, etag: etag, version: 1})
	}

	w := routerGet(t, rt, "/jobs/"+id+"/archive", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("read = %d: %s", w.Code, w.Body)
	}
	if got := w.Body.String(); got != body {
		t.Fatalf("proxied body %q != shard body %q", got, body)
	}
	if got := w.Header().Get("ETag"); got != etag {
		t.Fatalf("ETag %q not passed through (want %q)", got, etag)
	}
	if w.Header().Get(ShardHeader) == "" {
		t.Fatal("response missing the serving-shard header")
	}

	// Conditional revalidation passes through as a 304.
	w = routerGet(t, rt, "/jobs/"+id+"/archive", map[string]string{"If-None-Match": etag})
	if w.Code != http.StatusNotModified {
		t.Fatalf("conditional read = %d, want 304", w.Code)
	}
	if w.Body.Len() != 0 {
		t.Fatalf("304 carried a body: %q", w.Body)
	}
}

func TestRouterFailoverOnDownShard(t *testing.T) {
	shards, m, rt := newFakeCluster(t, 3, 2, 1, 0)
	const id, body = "job-failover", "archive-bytes\n"
	owners := m.Owners(id)
	for _, n := range owners {
		byID(shards, n.ID).setJob(id, fakeJob{body: body, etag: `"e1"`, version: 1})
	}
	byID(shards, owners[0].ID).failing.Store(true)

	// Reads rotate, so hit the endpoint a few times: every response must
	// come from the healthy replica with the right bytes.
	for i := 0; i < 4; i++ {
		w := routerGet(t, rt, "/jobs/"+id+"/archive", nil)
		if w.Code != http.StatusOK {
			t.Fatalf("read %d = %d: %s", i, w.Code, w.Body)
		}
		if got := w.Header().Get(ShardHeader); got != owners[1].ID {
			t.Fatalf("read %d served by %q, want healthy replica %q", i, got, owners[1].ID)
		}
		if w.Body.String() != body {
			t.Fatalf("read %d body %q", i, w.Body)
		}
	}
	if got := rt.Metrics().Failovers(); got == 0 {
		t.Fatal("failovers counter did not move")
	}

	// Status also fails over (the replica's store fallback answers).
	w := routerGet(t, rt, "/jobs/"+id, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status through failover = %d: %s", w.Code, w.Body)
	}

	// With every owner down the request exhausts and reports 502+.
	byID(shards, owners[1].ID).failing.Store(true)
	w = routerGet(t, rt, "/jobs/"+id+"/archive", nil)
	if w.Code < 500 {
		t.Fatalf("read with all owners down = %d, want 5xx", w.Code)
	}
}

func TestRouterRepairsMissingReplica(t *testing.T) {
	shards, m, rt := newFakeCluster(t, 3, 2, 1, 0)
	const id, body = "job-repair", `{"summary":1}`
	owners := m.Owners(id)
	has, missing := byID(shards, owners[0].ID), byID(shards, owners[1].ID)
	has.setJob(id, fakeJob{body: body, etag: `"e1"`, version: 3})

	// Drive reads until the rotation hits the empty replica first; its
	// 404 fails over to the full one and triggers a repair.
	for i := 0; i < 2; i++ {
		w := routerGet(t, rt, "/jobs/"+id+"/archive", nil)
		if w.Code != http.StatusOK {
			t.Fatalf("read = %d: %s", w.Code, w.Body)
		}
		if w.Body.String() != body {
			t.Fatalf("read body %q", w.Body)
		}
	}
	rt.WaitRepairs()

	applied := missing.appliedRecords()
	if len(applied) == 0 {
		t.Fatal("missing replica received no repair push")
	}
	if applied[0].ID != id || applied[0].Version != 3 || string(applied[0].Payload) != body {
		t.Fatalf("repair pushed %+v, want id=%s v=3 payload=%s", applied[0], id, body)
	}
	if got := rt.Metrics().Repairs(); got == 0 {
		t.Fatal("repairs counter did not move")
	}
	// The repaired replica now serves the record itself.
	missing.mu.Lock()
	_, installed := missing.jobs[id]
	missing.mu.Unlock()
	if !installed {
		t.Fatal("repair did not install the record")
	}
}

func TestRouterDivergenceProbeRepairsStaleReplica(t *testing.T) {
	shards, m, rt := newFakeCluster(t, 3, 2, 1, 1) // probe on every read
	const id = "job-diverge"
	owners := m.Owners(id)
	fresh, stale := byID(shards, owners[0].ID), byID(shards, owners[1].ID)
	fresh.setJob(id, fakeJob{body: `{"v":2}`, etag: `"new"`, version: 2})
	stale.setJob(id, fakeJob{body: `{"v":1}`, etag: `"old"`, version: 1})

	// Keep reading until a probe catches the divergence; rotation means
	// either replica can serve, both directions detect the ETag mismatch.
	for i := 0; i < 4; i++ {
		if w := routerGet(t, rt, "/jobs/"+id+"/archive", nil); w.Code != http.StatusOK {
			t.Fatalf("read = %d: %s", w.Code, w.Body)
		}
	}
	rt.WaitRepairs()

	probes, divergent := rt.Metrics().Divergences()
	if probes == 0 || divergent == 0 {
		t.Fatalf("probes=%d divergent=%d, want both > 0", probes, divergent)
	}
	// The stale side must have been repaired up to version 2, and the
	// repair must never run backwards (fresh stays at 2).
	stale.mu.Lock()
	staleVer := stale.jobs[id].version
	stale.mu.Unlock()
	fresh.mu.Lock()
	freshVer := fresh.jobs[id].version
	fresh.mu.Unlock()
	if staleVer != 2 {
		t.Fatalf("stale replica at version %d after repair, want 2", staleVer)
	}
	if freshVer != 2 {
		t.Fatalf("fresh replica moved to version %d, want 2", freshVer)
	}
}

func TestRouterListMergesShards(t *testing.T) {
	shards, m, rt := newFakeCluster(t, 3, 1, 1, 0)
	// R=1: each job exists on exactly its primary, so the merged listing
	// is a disjoint union.
	perShard := map[string][]string{}
	for i := 0; i < 9; i++ {
		id := fmt.Sprintf("job-%04d", i)
		p := m.Ring().Primary(id)
		byID(shards, p).setJob(id, fakeJob{body: "{}", version: 1})
		perShard[p] = append(perShard[p], id)
	}

	w := routerGet(t, rt, "/jobs", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("list = %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Count int `json:"count"`
		Jobs  []struct {
			ID string `json:"id"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 9 || len(resp.Jobs) != 9 {
		t.Fatalf("merged %d jobs, want 9: %s", resp.Count, w.Body)
	}
	for i := 1; i < len(resp.Jobs); i++ {
		if resp.Jobs[i-1].ID >= resp.Jobs[i].ID {
			t.Fatalf("merged listing not sorted: %q >= %q", resp.Jobs[i-1].ID, resp.Jobs[i].ID)
		}
	}

	// A down shard is skipped and named in the down header.
	shards[0].failing.Store(true)
	w = routerGet(t, rt, "/jobs", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("list with down shard = %d", w.Code)
	}
	if got := w.Header().Get("X-Granula-Shards-Down"); !strings.Contains(got, shards[0].id) {
		t.Fatalf("down header %q does not name %s", got, shards[0].id)
	}
}

func TestRouterClusterAndHealth(t *testing.T) {
	shards, _, rt := newFakeCluster(t, 3, 2, 2, 0)
	w := routerGet(t, rt, "/cluster", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("/cluster = %d", w.Code)
	}
	var view struct {
		Mode   string `json:"mode"`
		Shards []struct {
			ID     string `json:"id"`
			Status string `json:"status"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if view.Mode != "router" || len(view.Shards) != 3 {
		t.Fatalf("cluster view wrong: %s", w.Body)
	}
	for _, s := range view.Shards {
		if s.Status != "up" {
			t.Fatalf("shard %s reported %q, want up", s.ID, s.Status)
		}
	}

	w = routerGet(t, rt, "/healthz", nil)
	var hz struct {
		Status    string `json:"status"`
		Reachable int    `json:"reachable"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Reachable != 3 {
		t.Fatalf("healthz = %s", w.Body)
	}

	shards[1].failing.Store(true)
	w = routerGet(t, rt, "/healthz", nil)
	if err := json.Unmarshal(w.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "degraded" || hz.Reachable != 2 {
		t.Fatalf("healthz with a down shard = %s", w.Body)
	}
}

func TestRouterMetricsExposition(t *testing.T) {
	shards, m, rt := newFakeCluster(t, 3, 2, 1, 0)
	const id = "job-metrics"
	for _, n := range m.Owners(id) {
		byID(shards, n.ID).setJob(id, fakeJob{body: "{}", etag: `"m"`, version: 1})
	}
	routerGet(t, rt, "/jobs/"+id+"/archive", nil)

	w := routerGet(t, rt, "/metrics", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", w.Code)
	}
	text := w.Body.String()
	for _, want := range []string{
		"granula_router_shards 3",
		"granula_router_map_version 1",
		"granula_router_requests_total{shard=",
		"granula_router_read_repairs_total",
		"granula_router_request_seconds_bucket{shard=",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

func TestReplicatorQuorum(t *testing.T) {
	shards, m, _ := newFakeCluster(t, 3, 3, 2, 0)
	self := shards[0]
	rep, err := NewReplicator(self.id, m, ReplicatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Pick a job whose primary IS shard 0 so the fan-out targets the
	// other two shards.
	jobID := "job-q"
	for i := 0; m.Ring().Primary(jobID) != self.id; i++ {
		jobID = fmt.Sprintf("job-q%d", i)
	}
	if err := rep.ReplicateJob(context.Background(), jobID, 1, []byte(`{"p":1}`)); err != nil {
		t.Fatalf("quorum replicate: %v", err)
	}
	reached, missed := rep.Metrics().Quorums()
	if reached != 1 || missed != 0 {
		t.Fatalf("quorum counters = (%d, %d), want (1, 0)", reached, missed)
	}

	// One follower down: 2/3 acks (local + one follower) still meets W=2.
	shards[1].failing.Store(true)
	shards[2].failing.Store(false)
	if err := rep.ReplicateJob(context.Background(), jobID, 2, []byte(`{"p":2}`)); err != nil {
		t.Fatalf("replicate with one follower down: %v", err)
	}

	// Both followers down: only the local ack remains, quorum fails.
	shards[1].failing.Store(true)
	shards[2].failing.Store(true)
	err = rep.ReplicateJob(context.Background(), jobID, 3, []byte(`{"p":3}`))
	qe, ok := err.(*QuorumError)
	if !ok {
		t.Fatalf("replicate with all followers down = %v, want *QuorumError", err)
	}
	if qe.Acks != 1 || qe.Quorum != 2 || len(qe.Errs) != 2 {
		t.Fatalf("quorum error = %+v", qe)
	}
}

func TestReplicatorRejectsUnknownSelf(t *testing.T) {
	_, m, _ := newFakeCluster(t, 2, 2, 1, 0)
	if _, err := NewReplicator("ghost", m, ReplicatorOptions{}); err == nil {
		t.Fatal("NewReplicator accepted a self outside the map")
	}
}

func TestPartitionTransport(t *testing.T) {
	shards, m, _ := newFakeCluster(t, 2, 2, 2, 0)
	p := NewPartition()
	rep, err := NewReplicator(shards[0].id, m, ReplicatorOptions{Client: p.Client()})
	if err != nil {
		t.Fatal(err)
	}
	jobID := "job-p"
	for i := 0; m.Ring().Primary(jobID) != shards[0].id; i++ {
		jobID = fmt.Sprintf("job-p%d", i)
	}

	p.Block(shards[1].srv.URL)
	if err := rep.ReplicateJob(context.Background(), jobID, 1, []byte("{}")); err == nil {
		t.Fatal("replication crossed a partition")
	}
	if p.Dropped() == 0 {
		t.Fatal("partition dropped no requests")
	}

	p.Unblock(shards[1].srv.URL)
	if err := rep.ReplicateJob(context.Background(), jobID, 2, []byte("{}")); err != nil {
		t.Fatalf("replication after heal: %v", err)
	}
}
