package shard

// Router scatter-gather for the analytical query engine v2. The
// router parses and validates the query once (a bad query fails fast
// without touching the cluster), fans GET /internal/query2 out to
// every shard concurrently, and merges the per-job partial aggregates
// with query.MergePartials — the same canonical fold a single node
// uses. MergePartials sorts partials by job ID and dedupes replicas
// (replicas hold byte-identical records, so their partials are
// byte-identical and keeping the first is well-defined), which makes
// the merged body independent of shard count, replication factor, and
// arrival order: byte-for-byte what one granula-serve holding every
// job would have written.
//
// Percentiles stay exact under distribution: partials carry the
// matched values, not a sketch, so the router computes the same
// nearest-rank percentile over the same sorted multiset as a single
// node. The trade-off is partial size ~ matched rows; a future sketch
// (t-digest) would cap it at the cost of exactness, and would need
// its own determinism argument. Sum/avg stay exact because merge
// order is fixed by the canonical fold, not because FP addition is
// associative (it is not).
//
// Unreachable shards are skipped and named in X-Granula-Shards-Down —
// the merged result is the union of live shards' views, same contract
// as GET /jobs. Scanned/pruned counts are summed post-dedupe, so they
// too match the single-node answer.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"

	"repro/internal/query"
)

// handleQuery2 serves GET /query2 on the router.
func (rt *Router) handleQuery2(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("q")
	if raw == "" {
		writeRouterError(w, http.StatusBadRequest, "need a q= query parameter")
		return
	}
	q, err := query.Parse(raw)
	if err != nil {
		writeRouterError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !q.IsAggregate() || !q.FromJobs() {
		writeRouterError(w, http.StatusBadRequest,
			"query2 needs a cross-job aggregate query: from jobs [where ...] group by ... (or top k ... by ...)")
		return
	}
	if q.NeedsOps() {
		writeRouterError(w, http.StatusBadRequest,
			"info./derived. fields require operation details not stored in columnar segments; use /jobs/{id}/query")
		return
	}

	ctx, cancel := rt.boundCtx(r)
	defer cancel()
	pathq := InternalQuery2Path + "?q=" + url.QueryEscape(raw)

	type shardPartials struct {
		node     Node
		partials []query.JobPartial
		err      error
	}
	results := make([]shardPartials, len(rt.m.Shards))
	var wg sync.WaitGroup
	for i, n := range rt.m.Shards {
		wg.Add(1)
		go func(i int, n Node) {
			defer wg.Done()
			res := rt.forward(ctx, n, http.MethodGet, pathq, nil, r.Header)
			rt.observe(n, res)
			if res.err != nil || res.status != http.StatusOK {
				results[i] = shardPartials{node: n, err: fmt.Errorf("unreachable")}
				return
			}
			var sr struct {
				Partials []query.JobPartial `json:"partials"`
			}
			if err := json.Unmarshal(res.body, &sr); err != nil {
				results[i] = shardPartials{node: n, err: err}
				return
			}
			results[i] = shardPartials{node: n, partials: sr.Partials}
		}(i, n)
	}
	wg.Wait()

	var all []query.JobPartial
	var down []string
	for _, res := range results {
		if res.err != nil {
			down = append(down, res.node.ID)
			continue
		}
		all = append(all, res.partials...)
	}
	resp, err := q.MergePartials(raw, "jobs", "", all)
	if err != nil {
		writeRouterError(w, http.StatusInternalServerError, "merge partials: %v", err)
		return
	}
	body, err := query.RenderAggResponse(resp)
	if err != nil {
		writeRouterError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if len(down) > 0 {
		sort.Strings(down)
		w.Header()["X-Granula-Shards-Down"] = []string{fmt.Sprint(down)}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(ScannedHeader, strconv.Itoa(resp.Scanned))
	w.Header().Set(PrunedHeader, strconv.Itoa(resp.Pruned))
	w.Write(body)
}
