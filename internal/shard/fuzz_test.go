package shard

import (
	"bytes"
	"testing"
)

// FuzzHintRecord drives the hinted-handoff journal format: any input
// the decoder accepts must satisfy the hint invariants, re-encode, and
// reach a byte-stable fixed point — a journaled hint read back after a
// crash is exactly the hint that was written.
func FuzzHintRecord(f *testing.F) {
	f.Add([]byte(`{"target":"s2","id":"job-1","version":1,"payload":{"state":"done"}}`))
	f.Add([]byte(`{"target":"s1","id":"j","version":18446744073709551615,"payload":[1,2,3]}`))
	f.Add([]byte(`{"target":"","id":"j","version":1,"payload":{}}`)) // invalid: no target
	f.Add([]byte(`{"target":"s1","id":"j","version":0,"payload":{}}`))
	f.Add([]byte(`{"target":"s1","id":"j","version":1,"payload":"quoted"}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHintRecord(data)
		if err != nil {
			return // rejected input: nothing else to check
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("decoder accepted a hint that fails validation: %v", err)
		}
		buf, err := EncodeHintRecord(h)
		if err != nil {
			t.Fatalf("decoded hint does not re-encode: %v", err)
		}
		h2, err := DecodeHintRecord(buf)
		if err != nil {
			t.Fatalf("re-encoded hint does not decode: %v", err)
		}
		if h2.Target != h.Target || h2.ID != h.ID || h2.Version != h.Version {
			t.Fatalf("round trip changed the hint: %+v != %+v", h2, h)
		}
		// One encode pass normalizes the payload; after that the bytes
		// are a fixed point.
		buf2, err := EncodeHintRecord(h2)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(buf, buf2) {
			t.Fatalf("encoding is not a fixed point: %q != %q", buf, buf2)
		}
	})
}

// FuzzDigest drives the anti-entropy digest exchange format: accepted
// digests must be strictly sorted with valid versions, and must round
// trip byte-identically (the exchange depends on deterministic
// encoding to compare cheaply).
func FuzzDigest(f *testing.F) {
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"id":"a","version":1}]`))
	f.Add([]byte(`[{"id":"a","version":1},{"id":"b","version":7}]`))
	f.Add([]byte(`[{"id":"b","version":1},{"id":"a","version":1}]`)) // invalid: unsorted
	f.Add([]byte(`[{"id":"a","version":0}]`))
	f.Add([]byte(`[{"id":"","version":1}]`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"id":"a"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := DecodeDigest(data)
		if err != nil {
			return
		}
		for i := 1; i < len(entries); i++ {
			if entries[i-1].ID >= entries[i].ID {
				t.Fatalf("decoder accepted an unsorted digest at %d: %+v", i, entries)
			}
		}
		for _, e := range entries {
			if e.ID == "" || e.Version == 0 {
				t.Fatalf("decoder accepted an invalid entry: %+v", e)
			}
		}
		buf, err := EncodeDigest(entries)
		if err != nil {
			t.Fatalf("decoded digest does not re-encode: %v", err)
		}
		entries2, err := DecodeDigest(buf)
		if err != nil {
			t.Fatalf("re-encoded digest does not decode: %v", err)
		}
		if len(entries2) != len(entries) {
			t.Fatalf("round trip changed length: %d != %d", len(entries2), len(entries))
		}
		for i := range entries {
			if entries2[i] != entries[i] {
				t.Fatalf("round trip changed entry %d: %+v != %+v", i, entries2[i], entries[i])
			}
		}
		buf2, err := EncodeDigest(entries2)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(buf, buf2) {
			t.Fatalf("encoding is not a fixed point: %q != %q", buf, buf2)
		}
	})
}
