package shard

import (
	"fmt"
	"io"
	"sync"
)

// SelfHealMetrics is the shared counter set for the self-healing
// machinery — failure detector, hinted handoff, anti-entropy — exposed
// on a shard's /metrics as the granula_selfheal_* family. One instance
// is threaded through the detector, replicator, drainer, and sweep so
// operators see the whole convergence story in one place.
type SelfHealMetrics struct {
	mu            sync.Mutex
	transitions   map[string]uint64 // detector transitions by target state
	probes        uint64
	probeMisses   uint64
	hintsRecorded uint64
	hintsDrained  uint64
	hintFailures  uint64
	sweeps        uint64
	sweepPushed   uint64
	sweepPulled   uint64
	sweepErrors   uint64

	// gauge hooks, set once at wiring time
	hintGauge func() int
	detector  *Detector
}

// NewSelfHealMetrics returns an empty self-heal metrics set.
func NewSelfHealMetrics() *SelfHealMetrics {
	return &SelfHealMetrics{transitions: map[string]uint64{}}
}

// SetHintGauge wires the pending-hint gauge (typically the journal's
// HintCount).
func (m *SelfHealMetrics) SetHintGauge(f func() int) {
	m.mu.Lock()
	m.hintGauge = f
	m.mu.Unlock()
}

// SetDetector wires the per-node state gauge.
func (m *SelfHealMetrics) SetDetector(d *Detector) {
	m.mu.Lock()
	m.detector = d
	m.mu.Unlock()
}

func (m *SelfHealMetrics) countTransition(to NodeState) {
	m.mu.Lock()
	m.transitions[to.String()]++
	m.mu.Unlock()
}

func (m *SelfHealMetrics) countProbe(ok bool) {
	m.mu.Lock()
	m.probes++
	if !ok {
		m.probeMisses++
	}
	m.mu.Unlock()
}

func (m *SelfHealMetrics) countHintRecorded() {
	m.mu.Lock()
	m.hintsRecorded++
	m.mu.Unlock()
}

func (m *SelfHealMetrics) countHintDrain(ok bool) {
	m.mu.Lock()
	if ok {
		m.hintsDrained++
	} else {
		m.hintFailures++
	}
	m.mu.Unlock()
}

func (m *SelfHealMetrics) countSweep(pushed, pulled int) {
	m.mu.Lock()
	m.sweeps++
	m.sweepPushed += uint64(pushed)
	m.sweepPulled += uint64(pulled)
	m.mu.Unlock()
}

func (m *SelfHealMetrics) countSweepError() {
	m.mu.Lock()
	m.sweepErrors++
	m.mu.Unlock()
}

// Hints returns (recorded, drained) hint counters, for tests.
func (m *SelfHealMetrics) Hints() (recorded, drained uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hintsRecorded, m.hintsDrained
}

// Sweeps returns (sweeps, pushed, pulled) anti-entropy counters.
func (m *SelfHealMetrics) Sweeps() (sweeps, pushed, pulled uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sweeps, m.sweepPushed, m.sweepPulled
}

// Transitions returns the detector transition count into a state.
func (m *SelfHealMetrics) Transitions(to NodeState) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.transitions[to.String()]
}

// WritePrometheus renders the self-heal family in Prometheus text
// format, deterministic for a given state.
func (m *SelfHealMetrics) WritePrometheus(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fmt.Fprintln(w, "# HELP granula_selfheal_detector_transitions_total Failure-detector state transitions by target state.")
	fmt.Fprintln(w, "# TYPE granula_selfheal_detector_transitions_total counter")
	for _, state := range []string{"up", "suspect", "down"} {
		fmt.Fprintf(w, "granula_selfheal_detector_transitions_total{to=%q} %d\n", state, m.transitions[state])
	}
	fmt.Fprintln(w, "# HELP granula_selfheal_probes_total Health probes issued (and how many missed).")
	fmt.Fprintln(w, "# TYPE granula_selfheal_probes_total counter")
	fmt.Fprintf(w, "granula_selfheal_probes_total{outcome=\"ok\"} %d\n", m.probes-m.probeMisses)
	fmt.Fprintf(w, "granula_selfheal_probes_total{outcome=\"miss\"} %d\n", m.probeMisses)
	fmt.Fprintln(w, "# HELP granula_selfheal_hints_total Hinted-handoff lifecycle counters.")
	fmt.Fprintln(w, "# TYPE granula_selfheal_hints_total counter")
	fmt.Fprintf(w, "granula_selfheal_hints_total{event=\"recorded\"} %d\n", m.hintsRecorded)
	fmt.Fprintf(w, "granula_selfheal_hints_total{event=\"drained\"} %d\n", m.hintsDrained)
	fmt.Fprintf(w, "granula_selfheal_hints_total{event=\"drain_failed\"} %d\n", m.hintFailures)
	if m.hintGauge != nil {
		fmt.Fprintln(w, "# HELP granula_selfheal_hints_pending Hints journaled and not yet delivered.")
		fmt.Fprintln(w, "# TYPE granula_selfheal_hints_pending gauge")
		fmt.Fprintf(w, "granula_selfheal_hints_pending %d\n", m.hintGauge())
	}
	fmt.Fprintln(w, "# HELP granula_selfheal_antientropy_total Anti-entropy sweep outcomes.")
	fmt.Fprintln(w, "# TYPE granula_selfheal_antientropy_total counter")
	fmt.Fprintf(w, "granula_selfheal_antientropy_total{event=\"sweeps\"} %d\n", m.sweeps)
	fmt.Fprintf(w, "granula_selfheal_antientropy_total{event=\"pushed\"} %d\n", m.sweepPushed)
	fmt.Fprintf(w, "granula_selfheal_antientropy_total{event=\"pulled\"} %d\n", m.sweepPulled)
	fmt.Fprintf(w, "granula_selfheal_antientropy_total{event=\"errors\"} %d\n", m.sweepErrors)
	if m.detector != nil {
		fmt.Fprintln(w, "# HELP granula_selfheal_node_state Failure-detector verdict per node (0=up, 1=suspect, 2=down).")
		fmt.Fprintln(w, "# TYPE granula_selfheal_node_state gauge")
		for _, ns := range m.detector.Snapshot() {
			fmt.Fprintf(w, "granula_selfheal_node_state{node=%q} %d\n", ns.ID, int(ns.State))
		}
	}
}
