package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
	"unicode/utf8"
)

// HintRecord is the durable unit of hinted handoff: a replica write
// that could not reach its target within the quorum window, journaled
// by the acking node (under archivedb's `~hint/` namespace, see
// internal/service) and replayed by the drainer when the target
// returns. Payload is the exact persisted bytes of the job — replaying
// a hint is the same POST /internal/replicate the original fan-out
// would have issued, so a drained replica is byte-identical to one
// that never missed the write.
type HintRecord struct {
	Target  string          `json:"target"`
	ID      string          `json:"id"`
	Version uint64          `json:"version"`
	Payload json.RawMessage `json:"payload"`
}

// Validate checks the structural invariants every hint must hold
// before it is journaled or replayed. Fuzzed via FuzzHintRecord.
func (h HintRecord) Validate() error {
	switch {
	case h.Target == "":
		return fmt.Errorf("shard: hint has no target")
	case !utf8.ValidString(h.Target):
		return fmt.Errorf("shard: hint target is not valid UTF-8")
	case h.ID == "":
		return fmt.Errorf("shard: hint has no job id")
	case !utf8.ValidString(h.ID):
		return fmt.Errorf("shard: hint job id is not valid UTF-8")
	case h.Version == 0:
		return fmt.Errorf("shard: hint for %q has version 0", h.ID)
	case len(h.Payload) == 0:
		return fmt.Errorf("shard: hint for %q has no payload", h.ID)
	case !json.Valid(h.Payload):
		return fmt.Errorf("shard: hint for %q has a non-JSON payload", h.ID)
	}
	return nil
}

// EncodeHintRecord validates and marshals one hint for the journal.
func EncodeHintRecord(h HintRecord) ([]byte, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	buf, err := json.Marshal(h)
	if err != nil {
		return nil, fmt.Errorf("shard: encode hint for %q: %w", h.ID, err)
	}
	return buf, nil
}

// DecodeHintRecord unmarshals and validates one journaled hint.
func DecodeHintRecord(buf []byte) (HintRecord, error) {
	var h HintRecord
	if err := json.Unmarshal(buf, &h); err != nil {
		return HintRecord{}, fmt.Errorf("shard: decode hint: %w", err)
	}
	if err := h.Validate(); err != nil {
		return HintRecord{}, err
	}
	return h, nil
}

// HintJournal is the durable hint store a shard node provides (the
// service layer implements it over the same archivedb WAL archives
// use, so an acked hint survives a crash). All methods must be safe
// for concurrent use.
type HintJournal interface {
	// AppendHint journals one missed replica write durably. A hint for
	// the same (target, id) at an equal-or-newer version may supersede
	// the old one — only the newest version ever needs replaying.
	AppendHint(rec HintRecord) error
	// HintTargets lists the peers with pending hints, sorted.
	HintTargets() []string
	// PendingHints returns the journaled hints for one target, sorted
	// by job ID.
	PendingHints(target string) ([]HintRecord, error)
	// DeleteHint removes a delivered hint. A journaled version newer
	// than the delivered one is kept (it still needs replaying).
	DeleteHint(target, id string, version uint64) error
	// HintCount returns the total pending hints across targets.
	HintCount() int
}

// DrainerOptions tunes NewDrainer; zero values select defaults.
type DrainerOptions struct {
	// Client issues the replay POSTs; nil selects a 30 s timeout client.
	Client *http.Client
	// Interval is the background drain period; 0 selects 1 s.
	Interval time.Duration
	// Detector, when set, gates replay: targets marked Down are skipped
	// without an attempt (the journal is durable, there is no hurry).
	// Without a detector every target is attempted each tick.
	Detector *Detector
	// Metrics receives drain counters; may be nil.
	Metrics *SelfHealMetrics
}

// Drainer is the background half of hinted handoff: it watches the
// journal and replays pending hints to their targets once they are
// reachable again, deleting each hint on a successful ack. Combined
// with the journal's durability this is what converges "done implies W
// durable copies" back to full replication after a dead replica
// returns — without operator action and without waiting for a read.
type Drainer struct {
	m        *Map
	journal  HintJournal
	client   *http.Client
	interval time.Duration
	det      *Detector
	metrics  *SelfHealMetrics

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewDrainer builds a drainer over the map and journal.
func NewDrainer(m *Map, journal HintJournal, opts DrainerOptions) *Drainer {
	c := opts.Client
	if c == nil {
		c = &http.Client{Timeout: 30 * time.Second}
	}
	interval := opts.Interval
	if interval <= 0 {
		interval = time.Second
	}
	return &Drainer{
		m: m, journal: journal, client: c, interval: interval,
		det: opts.Detector, metrics: opts.Metrics,
		stop: make(chan struct{}), done: make(chan struct{}),
	}
}

// Start launches the background drain loop. Idempotent.
func (d *Drainer) Start() {
	d.startOnce.Do(func() { go d.loop() })
}

// Close stops the loop and waits for it; safe without Start.
func (d *Drainer) Close() {
	d.stopOnce.Do(func() { close(d.stop) })
	d.startOnce.Do(func() { close(d.done) })
	<-d.done
}

func (d *Drainer) loop() {
	defer close(d.done)
	t := time.NewTicker(d.interval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), d.interval*4+30*time.Second)
			d.DrainOnce(ctx)
			cancel()
		}
	}
}

// DrainOnce attempts one replay pass over every pending target and
// returns how many hints were delivered (and deleted). Targets the
// detector marks Down are skipped; a replay failure abandons that
// target for this pass (the peer is still unreachable) but other
// targets keep draining.
func (d *Drainer) DrainOnce(ctx context.Context) int {
	drained := 0
	for _, target := range d.journal.HintTargets() {
		if d.det != nil && d.det.Down(target) {
			continue
		}
		node, ok := d.m.Node(target)
		if !ok {
			continue // target left the map; hints are unreachable garbage
		}
		hints, err := d.journal.PendingHints(target)
		if err != nil {
			continue
		}
		for _, h := range hints {
			if ctx.Err() != nil {
				return drained
			}
			if err := d.replay(ctx, node, h); err != nil {
				if d.metrics != nil {
					d.metrics.countHintDrain(false)
				}
				break // peer still unreachable; retry next tick
			}
			if d.metrics != nil {
				d.metrics.countHintDrain(true)
			}
			d.journal.DeleteHint(target, h.ID, h.Version) //nolint:errcheck
			drained++
		}
	}
	return drained
}

// replay POSTs one hint to its target's replicate endpoint. The
// endpoint is idempotent by (ID, version), so replaying a hint that a
// repair or anti-entropy sweep already delivered is a harmless ack.
func (d *Drainer) replay(ctx context.Context, n Node, h HintRecord) error {
	rec, err := json.Marshal(ReplicaRecord{ID: h.ID, Version: h.Version, Payload: h.Payload})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.URL+ReplicatePath, bytes.NewReader(rec))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := d.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shard: hint replay to %s: %s", n.ID, resp.Status)
	}
	return nil
}
