package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
	"unicode/utf8"
)

// DigestPath is the cluster-internal digest exchange: a shard answers
// GET with its full (jobID, version) digest, the anti-entropy sweep's
// unit of comparison. Versions make the exchange cheap — divergence is
// a version mismatch, and only divergent records ship bytes.
const DigestPath = "/internal/digest"

// DigestEntry is one job's row in a shard digest.
type DigestEntry struct {
	ID      string `json:"id"`
	Version uint64 `json:"version"`
}

// validateDigest checks the invariants every digest must hold: IDs
// non-empty valid UTF-8, versions >= 1, strictly sorted by ID (sorted
// order is what makes the exchange deterministic and duplicate-free).
// Fuzzed via FuzzDigest.
func validateDigest(entries []DigestEntry) error {
	for i, e := range entries {
		switch {
		case e.ID == "":
			return fmt.Errorf("shard: digest entry %d has no id", i)
		case !utf8.ValidString(e.ID):
			return fmt.Errorf("shard: digest entry %d id is not valid UTF-8", i)
		case e.Version == 0:
			return fmt.Errorf("shard: digest entry %q has version 0", e.ID)
		case i > 0 && entries[i-1].ID >= e.ID:
			return fmt.Errorf("shard: digest not strictly sorted at %q", e.ID)
		}
	}
	return nil
}

// EncodeDigest validates and marshals a digest for the wire.
func EncodeDigest(entries []DigestEntry) ([]byte, error) {
	if err := validateDigest(entries); err != nil {
		return nil, err
	}
	if entries == nil {
		entries = []DigestEntry{}
	}
	buf, err := json.Marshal(entries)
	if err != nil {
		return nil, fmt.Errorf("shard: encode digest: %w", err)
	}
	return buf, nil
}

// DecodeDigest unmarshals and validates a wire digest.
func DecodeDigest(buf []byte) ([]DigestEntry, error) {
	var entries []DigestEntry
	if err := json.Unmarshal(buf, &entries); err != nil {
		return nil, fmt.Errorf("shard: decode digest: %w", err)
	}
	if err := validateDigest(entries); err != nil {
		return nil, err
	}
	return entries, nil
}

// LocalReplicaStore is the shard-local state the anti-entropy sweep
// reads and writes; internal/service.Store implements it. The shard
// package defines the interface (not the service type) to keep the
// dependency direction honest — shard must not import service.
type LocalReplicaStore interface {
	// Digest returns the local (jobID, version) set, sorted by ID.
	Digest() []DigestEntry
	// ExportRecord returns the exact persisted bytes for one job.
	ExportRecord(id string) (ReplicaRecord, bool, error)
	// ApplyRecord applies a record idempotently by (ID, version).
	ApplyRecord(rec ReplicaRecord) error
}

// AntiEntropyOptions tunes NewAntiEntropy; zero values select defaults.
type AntiEntropyOptions struct {
	// Client issues the digest/export/replicate exchange; nil selects a
	// 30 s timeout client.
	Client *http.Client
	// Interval is the background sweep period; 0 selects 5 s.
	Interval time.Duration
	// Detector, when set, skips peers marked Down (they cannot answer;
	// the sweep catches them up after they return).
	Detector *Detector
	// Metrics receives sweep counters; may be nil.
	Metrics *SelfHealMetrics
}

// AntiEntropy is the read-independent convergence loop: each shard
// periodically exchanges digests with the peers it shares replica sets
// with, pushes its exported bytes for records where it is newer, and
// pulls where the peer is newer. Together with hinted handoff this
// generalizes the router's read-triggered repair into a guarantee —
// replicas converge to byte-identical archives even if no client ever
// reads them.
type AntiEntropy struct {
	m        *Map
	self     string
	store    LocalReplicaStore
	client   *http.Client
	interval time.Duration
	det      *Detector
	metrics  *SelfHealMetrics

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewAntiEntropy builds the sweep for one shard (self) over the map.
func NewAntiEntropy(self string, m *Map, store LocalReplicaStore, opts AntiEntropyOptions) (*AntiEntropy, error) {
	if _, ok := m.Node(self); !ok {
		return nil, fmt.Errorf("shard: anti-entropy self %q is not in the map", self)
	}
	c := opts.Client
	if c == nil {
		c = &http.Client{Timeout: 30 * time.Second}
	}
	interval := opts.Interval
	if interval <= 0 {
		interval = 5 * time.Second
	}
	return &AntiEntropy{
		m: m, self: self, store: store, client: c, interval: interval,
		det: opts.Detector, metrics: opts.Metrics,
		stop: make(chan struct{}), done: make(chan struct{}),
	}, nil
}

// Start launches the background sweep loop. Idempotent.
func (ae *AntiEntropy) Start() {
	ae.startOnce.Do(func() { go ae.loop() })
}

// Close stops the loop and waits for it; safe without Start.
func (ae *AntiEntropy) Close() {
	ae.stopOnce.Do(func() { close(ae.stop) })
	ae.startOnce.Do(func() { close(ae.done) })
	<-ae.done
}

func (ae *AntiEntropy) loop() {
	defer close(ae.done)
	t := time.NewTicker(ae.interval)
	defer t.Stop()
	for {
		select {
		case <-ae.stop:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), ae.interval*4+30*time.Second)
			ae.SweepOnce(ctx)
			cancel()
		}
	}
}

// SweepOnce runs one full digest exchange against every reachable peer
// and returns how many records were pushed to and pulled from peers.
// Only records both sides own (per the ring) are exchanged — a digest
// names everything a shard holds, but convergence is defined over
// replica sets, not over the union of all shards.
func (ae *AntiEntropy) SweepOnce(ctx context.Context) (pushed, pulled int) {
	local := map[string]uint64{}
	for _, e := range ae.store.Digest() {
		local[e.ID] = e.Version
	}
	for _, peer := range ae.m.Shards {
		if peer.ID == ae.self {
			continue
		}
		if ae.det != nil && ae.det.Down(peer.ID) {
			continue
		}
		if ctx.Err() != nil {
			return pushed, pulled
		}
		p, q := ae.sweepPeer(ctx, peer, local)
		pushed += p
		pulled += q
	}
	if ae.metrics != nil {
		ae.metrics.countSweep(pushed, pulled)
	}
	return pushed, pulled
}

// sweepPeer reconciles the local store against one peer's digest.
func (ae *AntiEntropy) sweepPeer(ctx context.Context, peer Node, local map[string]uint64) (pushed, pulled int) {
	remote, err := ae.fetchDigest(ctx, peer)
	if err != nil {
		if ae.metrics != nil {
			ae.metrics.countSweepError()
		}
		return 0, 0
	}
	remoteV := map[string]uint64{}
	for _, e := range remote {
		remoteV[e.ID] = e.Version
	}
	// Union of both key sets, deduplicated via the maps themselves.
	seen := map[string]bool{}
	consider := func(id string) {
		if seen[id] {
			return
		}
		seen[id] = true
		if !ae.coOwned(id, peer.ID) {
			return
		}
		lv, rv := local[id], remoteV[id]
		switch {
		case lv > rv:
			if ae.pushRecord(ctx, peer, id) {
				pushed++
			}
		case rv > lv:
			if ae.pullRecord(ctx, peer, id) {
				pulled++
			}
		}
	}
	for id := range local {
		consider(id)
	}
	for id := range remoteV {
		consider(id)
	}
	return pushed, pulled
}

// coOwned reports whether both self and the peer are ring owners of id
// — the only pairs with a convergence obligation.
func (ae *AntiEntropy) coOwned(id, peerID string) bool {
	selfOwns, peerOwns := false, false
	for _, n := range ae.m.Owners(id) {
		if n.ID == ae.self {
			selfOwns = true
		}
		if n.ID == peerID {
			peerOwns = true
		}
	}
	return selfOwns && peerOwns
}

// fetchDigest GETs and validates one peer's digest.
func (ae *AntiEntropy) fetchDigest(ctx context.Context, n Node) ([]DigestEntry, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.URL+DigestPath, nil)
	if err != nil {
		return nil, err
	}
	resp, err := ae.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("shard: digest from %s: %s", n.ID, resp.Status)
	}
	buf, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	return DecodeDigest(buf)
}

// pushRecord ships the local bytes for id to the peer's replicate
// endpoint (idempotent by version, so races with hints and read-repair
// are harmless).
func (ae *AntiEntropy) pushRecord(ctx context.Context, n Node, id string) bool {
	rec, ok, err := ae.store.ExportRecord(id)
	if err != nil || !ok {
		return false
	}
	buf, err := json.Marshal(rec)
	if err != nil {
		return false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.URL+ReplicatePath, bytes.NewReader(buf))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := ae.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// pullRecord fetches the peer's bytes for id and applies them locally.
func (ae *AntiEntropy) pullRecord(ctx context.Context, n Node, id string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.URL+ExportPathPrefix+id, nil)
	if err != nil {
		return false
	}
	resp, err := ae.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return false
	}
	buf, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return false
	}
	var rec ReplicaRecord
	if err := json.Unmarshal(buf, &rec); err != nil {
		return false
	}
	if rec.ID != id || rec.Version == 0 || len(rec.Payload) == 0 {
		return false
	}
	return ae.store.ApplyRecord(rec) == nil
}
