package shard

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("job-%06d", i)
	}
	return keys
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("NewRing accepted an empty shard list")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("NewRing accepted an empty shard ID")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Fatal("NewRing accepted a duplicate shard ID")
	}
}

func TestRingDeterministicPlacement(t *testing.T) {
	r1, err := NewRing([]string{"s1", "s2", "s3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing([]string{"s3", "s1", "s2"}, 0) // order must not matter
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ringKeys(500) {
		if r1.Primary(k) != r2.Primary(k) {
			t.Fatalf("placement of %q depends on construction order: %q vs %q",
				k, r1.Primary(k), r2.Primary(k))
		}
		owners := r1.Owners(k, 2)
		if len(owners) != 2 || owners[0] == owners[1] {
			t.Fatalf("Owners(%q, 2) = %v, want 2 distinct shards", k, owners)
		}
		if owners[0] != r1.Primary(k) {
			t.Fatalf("Owners(%q)[0] = %q, but Primary = %q", k, owners[0], r1.Primary(k))
		}
	}
}

// TestRingDistribution checks the load balance the virtual nodes buy:
// across 3, 5, and 8 shards, every shard's share of a large key space
// must stay within ±35% of the fair share. With 160 vnodes the observed
// imbalance is far smaller; the bound is where the test fails only if
// the hashing or vnode placement actually breaks.
func TestRingDistribution(t *testing.T) {
	const keys = 20000
	for _, shards := range []int{3, 5, 8} {
		ids := make([]string, shards)
		for i := range ids {
			ids[i] = fmt.Sprintf("shard-%d", i)
		}
		r, err := NewRing(ids, 0)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[string]int{}
		for _, k := range ringKeys(keys) {
			counts[r.Primary(k)]++
		}
		fair := float64(keys) / float64(shards)
		for _, id := range ids {
			got := float64(counts[id])
			if got < fair*0.65 || got > fair*1.35 {
				t.Errorf("%d shards: %s owns %.0f keys, outside [%.0f, %.0f] around fair %.0f",
					shards, id, got, fair*0.65, fair*1.35, fair)
			}
		}
		if len(counts) != shards {
			t.Errorf("%d shards: only %d received any keys", shards, len(counts))
		}
	}
}

// TestRingMinimalMovement checks consistent hashing's defining
// property: adding or removing one shard moves only the keys that had
// to move — about 1/n of the space — instead of reshuffling everything
// the way mod-N hashing would.
func TestRingMinimalMovement(t *testing.T) {
	keys := ringKeys(20000)
	ids := []string{"s1", "s2", "s3", "s4", "s5"}
	base, err := NewRing(ids, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Add a sixth shard: keys may only move TO the new shard; at most
	// ~1/6 of them (with slack for vnode variance) may move at all.
	grown, err := NewRing(append(append([]string{}, ids...), "s6"), 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, k := range keys {
		before, after := base.Primary(k), grown.Primary(k)
		if before != after {
			moved++
			if after != "s6" {
				t.Fatalf("adding s6 moved %q from %q to %q (not to the new shard)", k, before, after)
			}
		}
	}
	if max := len(keys) / 6 * 3 / 2; moved > max {
		t.Errorf("adding 1 of 6 shards moved %d/%d keys, want <= %d", moved, len(keys), max)
	}
	if moved == 0 {
		t.Error("adding a shard moved no keys at all")
	}

	// Remove a shard: only its keys may move.
	shrunk, err := NewRing([]string{"s1", "s2", "s4", "s5"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved = 0
	for _, k := range keys {
		before, after := base.Primary(k), shrunk.Primary(k)
		if before != after {
			moved++
			if before != "s3" {
				t.Fatalf("removing s3 moved %q owned by %q", k, before)
			}
		}
	}
	if max := len(keys) / 5 * 3 / 2; moved > max {
		t.Errorf("removing 1 of 5 shards moved %d/%d keys, want <= %d", moved, len(keys), max)
	}
}

func TestRingOwnersClamp(t *testing.T) {
	r, err := NewRing([]string{"a", "b"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Owners("k", 5); len(got) != 2 {
		t.Fatalf("Owners with n > shards = %v, want both shards", got)
	}
	if got := r.Owners("k", 0); len(got) != 1 {
		t.Fatalf("Owners with n = 0 = %v, want the primary alone", got)
	}
	if got := r.Shards(); len(got) != 2 {
		t.Fatalf("Shards() = %v", got)
	}
}
