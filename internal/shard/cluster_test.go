// Cluster end-to-end tests: real granula-serve stacks — archivedb WAL,
// store, executor with replication fan-out, HTTP server — behind a real
// router, in one process. The external test package keeps the
// dependency direction honest (shard itself must not import service)
// while exercising the same wiring cmd/granula-serve and
// cmd/granula-router perform.
package shard_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"sync"
	"testing"
	"time"

	"context"

	"repro/internal/archivedb"
	"repro/internal/service"
	"repro/internal/shard"
	"repro/internal/stream"
)

// clusterShard is one in-process granula-serve shard: its own WAL
// directory, store, executor, and HTTP server on a real listener whose
// address stays stable across kill and restart — the shard map names
// that address, so a restarted shard must come back on it.
type clusterShard struct {
	id        string
	url       string
	addr      string
	dir       string
	m         *shard.Map
	workers   int
	nosync    bool
	commitWin time.Duration

	// Self-healing wiring (when the cluster runs with selfHeal): the
	// shard-side detector, hint drainer, and anti-entropy sweep, all
	// sharing the partition-aware client so network faults injected at
	// the transport affect shard-to-shard traffic too.
	selfHeal   bool
	client     *http.Client
	probeEvery time.Duration
	drainEvery time.Duration
	sweepEvery time.Duration
	downAfter  int

	httpSrv *http.Server
	db      *archivedb.DB
	store   *service.Store
	exec    *service.Executor
	det     *shard.Detector
	drainer *shard.Drainer
	ae      *shard.AntiEntropy
	heal    *shard.SelfHealMetrics
	up      bool
}

func (cs *clusterShard) start(t *testing.T, ln net.Listener) {
	t.Helper()
	db, err := archivedb.Open(cs.dir, archivedb.Options{NoSync: cs.nosync, GroupCommitWindow: cs.commitWin})
	if err != nil {
		t.Fatal(err)
	}
	metrics := service.NewMetrics()
	store, err := service.NewStoreWithOptions(db, service.StoreOptions{Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	repOpts := shard.ReplicatorOptions{Client: cs.client}
	if cs.selfHeal {
		cs.heal = shard.NewSelfHealMetrics()
		cs.det = shard.NewDetector(cs.m, cs.id, shard.DetectorOptions{
			Client: cs.client, Interval: cs.probeEvery, DownAfter: cs.downAfter, Metrics: cs.heal,
		})
		cs.heal.SetDetector(cs.det)
		cs.heal.SetHintGauge(store.HintCount)
		repOpts.Hints = store
		repOpts.Detector = cs.det
		repOpts.SelfHeal = cs.heal
	}
	rep, err := shard.NewReplicator(cs.id, cs.m, repOpts)
	if err != nil {
		t.Fatal(err)
	}
	exec := service.NewExecutorWith(cs.workers, 64, store, metrics, service.ExecutorOptions{
		Replicator:      rep,
		HostParallelism: 1, // parallelism never changes bytes; 1 keeps N shards from oversubscribing the host
	})
	srv := service.NewServerWith(exec, store, metrics, service.ServerOptions{
		ShardID:      cs.id,
		Cluster:      cs.m,
		ExtraMetrics: rep.Metrics().WritePrometheus,
	})
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	cs.httpSrv, cs.db, cs.store, cs.exec = hs, db, store, exec
	if cs.selfHeal {
		cs.drainer = shard.NewDrainer(cs.m, store, shard.DrainerOptions{
			Client: cs.client, Interval: cs.drainEvery, Detector: cs.det, Metrics: cs.heal,
		})
		cs.ae, err = shard.NewAntiEntropy(cs.id, cs.m, store, shard.AntiEntropyOptions{
			Client: cs.client, Interval: cs.sweepEvery, Detector: cs.det, Metrics: cs.heal,
		})
		if err != nil {
			t.Fatal(err)
		}
		cs.det.Start()
		cs.drainer.Start()
		cs.ae.Start()
	}
	cs.up = true
}

// kill tears the shard down: HTTP first (the address goes dark), then
// the executor with a short deadline so in-flight jobs abort rather
// than drain, then storage. Safe to call from non-test goroutines.
func (cs *clusterShard) kill() {
	if !cs.up {
		return
	}
	cs.up = false
	cs.httpSrv.Close()
	if cs.selfHeal {
		cs.det.Close()
		cs.drainer.Close()
		cs.ae.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	cs.exec.Shutdown(ctx)
	cancel()
	cs.store.Close()
	cs.db.Close()
}

// restart brings the shard back on its original address, recovering
// its state from the WAL like a restarted process would.
func (cs *clusterShard) restart(t *testing.T) {
	t.Helper()
	var ln net.Listener
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err = net.Listen("tcp", cs.addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", cs.addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	cs.start(t, ln)
}

type cluster struct {
	m      *shard.Map
	shards []*clusterShard
	part   *shard.Partition
	router *shard.Router
	rts    *httptest.Server
	det    *shard.Detector        // router-side failure detector (selfHeal)
	heal   *shard.SelfHealMetrics // router-side detector counters (selfHeal)
}

type clusterConfig struct {
	shards      int
	replication int
	quorum      int
	repairEvery int
	workers     int
	nosync      bool
	commitWin   time.Duration // WAL group-commit window per shard

	// selfHeal wires the full self-healing stack: per-shard detector +
	// hint journal + drainer + anti-entropy, and a detector on the
	// router. All heartbeat/drain/sweep traffic goes through the same
	// partition transport as the router's, so injected network faults
	// hit every path.
	selfHeal    bool
	probeEvery  time.Duration // detector probe period; 0 selects 20ms
	drainEvery  time.Duration // hint drain period; 0 selects 50ms
	sweepEvery  time.Duration // anti-entropy period; 0 selects 100ms
	downAfter   int           // detector DownAfter override
	retryBudget int           // router retry budget (0 = default)
}

func startCluster(t *testing.T, cfg clusterConfig) *cluster {
	t.Helper()
	if cfg.workers == 0 {
		cfg.workers = 2
	}
	lns := make([]net.Listener, cfg.shards)
	nodes := make([]shard.Node, cfg.shards)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		nodes[i] = shard.Node{
			ID:  fmt.Sprintf("s%d", i+1),
			URL: "http://" + ln.Addr().String(),
		}
	}
	m, err := shard.NewMap(1, nodes, cfg.replication, cfg.quorum, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{m: m, part: shard.NewPartition()}
	if cfg.probeEvery == 0 {
		cfg.probeEvery = 20 * time.Millisecond
	}
	if cfg.drainEvery == 0 {
		cfg.drainEvery = 50 * time.Millisecond
	}
	if cfg.sweepEvery == 0 {
		cfg.sweepEvery = 100 * time.Millisecond
	}
	for i, node := range nodes {
		cs := &clusterShard{
			id: node.ID, url: node.URL, addr: lns[i].Addr().String(),
			dir: t.TempDir(), m: m, workers: cfg.workers, nosync: cfg.nosync,
			commitWin: cfg.commitWin,
			selfHeal:  cfg.selfHeal, client: c.part.Client(),
			probeEvery: cfg.probeEvery, drainEvery: cfg.drainEvery,
			sweepEvery: cfg.sweepEvery, downAfter: cfg.downAfter,
		}
		cs.start(t, lns[i])
		c.shards = append(c.shards, cs)
	}
	if cfg.selfHeal {
		c.heal = shard.NewSelfHealMetrics()
		c.det = shard.NewDetector(m, "", shard.DetectorOptions{
			Client: c.part.Client(), Interval: cfg.probeEvery,
			DownAfter: cfg.downAfter, Metrics: c.heal,
		})
		c.heal.SetDetector(c.det)
		c.det.Start()
	}
	c.router = shard.NewRouter(m, shard.RouterOptions{
		Client:        c.part.Client(),
		RepairEvery:   cfg.repairEvery,
		HealthTimeout: 500 * time.Millisecond,
		Detector:      c.det,
		RetryBudget:   cfg.retryBudget,
	})
	c.rts = httptest.NewServer(c.router.Handler())
	t.Cleanup(func() {
		c.rts.Close()
		if c.det != nil {
			c.det.Close()
		}
		c.router.WaitRepairs()
		for _, cs := range c.shards {
			cs.kill()
		}
	})
	return c
}

func clusterJob(id string, seed int64) service.JobRequest {
	return service.JobRequest{
		ID: id, Platform: "Giraph", Algorithm: "BFS",
		Vertices: 120, Edges: 480, Seed: seed,
	}
}

// postJob submits without failing the test, so storms can ride out a
// dying shard; the bool reports acceptance.
func postJob(base string, req service.JobRequest) bool {
	buf, err := json.Marshal(req)
	if err != nil {
		return false
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(buf))
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusAccepted
}

// pollDone polls a job through the router until it reaches done (true)
// or fails, vanishes with its shard, or times out (false). Transport
// and 5xx errors are tolerated: polling rides through failovers.
func pollDone(base, id string, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/jobs/" + id)
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				var st service.JobState
				if json.Unmarshal(body, &st) == nil {
					switch st.Status {
					case service.StatusDone:
						return true
					case service.StatusFailed, service.StatusCanceled:
						return false
					}
				}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	return false
}

// mustGet fetches a router URL and fails the test on any 5xx — the
// no-client-visible-5xx-on-reads contract of the chaos scenarios.
func mustGet(t *testing.T, rawurl string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(rawurl)
	if err != nil {
		t.Fatalf("GET %s: %v", rawurl, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 500 {
		t.Fatalf("GET %s: %s: %s", rawurl, resp.Status, body)
	}
	return resp.StatusCode, body, resp.Header
}

// TestClusterRouterByteEquivalence pins the determinism contract of the
// whole cluster: for a fixed shard map, /archive and /query bytes
// served through the router equal the bytes a single granula-serve
// node produces for the same jobs. Clients must not be able to tell
// sharding happened.
func TestClusterRouterByteEquivalence(t *testing.T) {
	metrics := service.NewMetrics()
	store := service.NewStore()
	exec := service.NewExecutorWith(2, 64, store, metrics, service.ExecutorOptions{HostParallelism: 1})
	defer exec.Shutdown(context.Background())
	single := httptest.NewServer(service.NewServerWith(exec, store, metrics, service.ServerOptions{}).Handler())
	defer single.Close()

	c := startCluster(t, clusterConfig{shards: 3, replication: 3, quorum: 2, repairEvery: 4, nosync: true})

	reqs := []service.JobRequest{
		{ID: "eq-001", Platform: "Giraph", Algorithm: "BFS", Vertices: 150, Edges: 600, Seed: 1},
		{ID: "eq-002", Platform: "PowerGraph", Algorithm: "PageRank", Vertices: 150, Edges: 600, Seed: 2, Iterations: 4},
		{ID: "eq-003", Platform: "OpenG", Algorithm: "BFS", Vertices: 150, Edges: 600, Seed: 3},
		{ID: "eq-004", Platform: "Giraph", Algorithm: "SSSP", Vertices: 150, Edges: 600, Seed: 4},
		{ID: "eq-005", Platform: "PowerGraph", Algorithm: "WCC", Vertices: 150, Edges: 600, Seed: 5},
		{ID: "eq-006", Platform: "Giraph", Algorithm: "PageRank", Vertices: 150, Edges: 600, Seed: 6, Iterations: 4},
	}
	// The explicit IDs must not all land on one shard, or the test
	// would not exercise routing at all.
	primaries := map[string]bool{}
	for _, req := range reqs {
		primaries[c.m.Owners(req.ID)[0].ID] = true
		if !postJob(single.URL, req) {
			t.Fatalf("single node rejected %s", req.ID)
		}
		if !postJob(c.rts.URL, req) {
			t.Fatalf("router rejected %s", req.ID)
		}
	}
	if len(primaries) < 2 {
		t.Fatalf("all equivalence jobs hash to one shard (%v); pick different IDs", primaries)
	}
	for _, req := range reqs {
		if !pollDone(single.URL, req.ID, 60*time.Second) {
			t.Fatalf("single node did not finish %s", req.ID)
		}
		if !pollDone(c.rts.URL, req.ID, 60*time.Second) {
			t.Fatalf("cluster did not finish %s", req.ID)
		}
	}

	q := url.Values{"q": {`actor ~ "Worker" and duration > 0.0001 order by duration desc limit 10`}}.Encode()
	for _, req := range reqs {
		for _, path := range []string{
			"/jobs/" + req.ID + "/archive",
			"/jobs/" + req.ID + "/query?" + q,
		} {
			wantCode, want, wantHdr := mustGet(t, single.URL+path)
			gotCode, got, gotHdr := mustGet(t, c.rts.URL+path)
			if wantCode != http.StatusOK || gotCode != http.StatusOK {
				t.Fatalf("%s: single %d, routed %d", path, wantCode, gotCode)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: routed bytes differ from single-node bytes (%d vs %d bytes)",
					path, len(got), len(want))
			}
			if g, w := gotHdr.Get("ETag"), wantHdr.Get("ETag"); g != w {
				t.Fatalf("%s: ETag %q through the router, %q single-node", path, g, w)
			}
			if gotHdr.Get(shard.ShardHeader) == "" {
				t.Errorf("%s: routed response is missing %s", path, shard.ShardHeader)
			}
		}
	}
}

// TestClusterChaos is the cluster durability scenario the subsystem
// exists for: a 3-shard cluster (R=3, W=2) takes a concurrent write
// storm through the router while one shard is killed mid-storm. Every
// job the client saw reach done must stay readable with the shard
// down, with no client-visible 5xx; after the shard restarts from its
// WAL, reads repair it back to convergence; a network partition of a
// second shard must also leave every acked job readable.
func TestClusterChaos(t *testing.T) {
	c := startCluster(t, clusterConfig{shards: 3, replication: 3, quorum: 2, repairEvery: 1, nosync: true})
	base := c.rts.URL
	victim := c.shards[1]

	const clients, perClient = 3, 8
	killAt := make(chan struct{})
	var killOnce sync.Once
	killed := make(chan struct{})
	go func() {
		<-killAt
		victim.kill()
		close(killed)
	}()

	var mu sync.Mutex
	var acked []string
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				id := fmt.Sprintf("chaos-%d-%02d", cl, j)
				if !postJob(base, clusterJob(id, int64(cl*100+j))) {
					continue
				}
				if cl == 0 && j == 2 {
					killOnce.Do(func() { close(killAt) })
				}
				if pollDone(base, id, 30*time.Second) {
					mu.Lock()
					acked = append(acked, id)
					mu.Unlock()
				}
			}
		}(cl)
	}
	wg.Wait()
	killOnce.Do(func() { close(killAt) }) // storm too fast for the trigger? kill anyway
	<-killed

	// The cluster must have made real progress through the kill: jobs
	// whose primary died fail over, jobs running on the victim may be
	// lost (the client never saw done for those).
	if len(acked) < clients*perClient/2 {
		t.Fatalf("only %d/%d jobs reached done through the kill", len(acked), clients*perClient)
	}

	// One shard down: every acked job must still be readable through
	// the router. W=2 of 3 guarantees at least one live replica holds
	// each acked job; mustGet fails the test on any 5xx.
	for _, id := range acked {
		if code, body, _ := mustGet(t, base+"/jobs/"+id+"/archive"); code != http.StatusOK {
			t.Fatalf("acked %s unreadable with one shard down: %d %s", id, code, body)
		}
	}
	if c.router.Metrics().Failovers() == 0 {
		t.Fatal("a killed shard produced no failovers")
	}

	// Aggregate health must degrade, not die.
	_, body, _ := mustGet(t, base+"/healthz")
	var health struct {
		Status    string `json:"status"`
		Reachable int    `json:"reachable"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" || health.Reachable != 2 {
		t.Fatalf("healthz with one shard down = %s", body)
	}

	// Restart the victim from its WAL and let reads repair it: with
	// RepairEvery=1 every read probes a replica, and 404 failovers push
	// the newest copy back. Convergence = the victim exports every
	// acked job.
	victim.restart(t)
	waitShardHealthy(t, victim.url)
	deadline := time.Now().Add(30 * time.Second)
	for {
		// Read each job once per replica: the follower-read rotation
		// advances per request, so three consecutive reads of one job
		// cover every rotation start, including the one that hits the
		// restarted shard's 404 (which is what triggers its repair).
		for _, id := range acked {
			for range c.shards {
				mustGet(t, base+"/jobs/"+id+"/archive")
			}
		}
		c.router.WaitRepairs()
		if missing := missingOn(victim, acked); len(missing) == 0 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("victim still missing %d jobs after repair sweeps: %v", len(missing), missing)
		}
	}
	if c.router.Metrics().Repairs() == 0 {
		t.Fatal("restart convergence happened without a single read-repair")
	}

	// Partition a different shard at the router (transport-level, the
	// shard itself stays healthy): reads must fail over around it.
	c.part.Block(c.shards[0].url)
	defer c.part.Heal()
	for _, id := range acked {
		if code, body, _ := mustGet(t, base+"/jobs/"+id+"/archive"); code != http.StatusOK {
			t.Fatalf("acked %s unreadable during partition: %d %s", id, code, body)
		}
	}
	if c.part.Dropped() == 0 {
		t.Fatal("partition dropped no requests — reads never touched the blocked shard")
	}
}

// waitShardHealthy polls a shard's own /healthz until it answers.
func waitShardHealthy(t *testing.T, shardURL string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(shardURL + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("shard %s did not come back", shardURL)
}

// missingOn lists the acked jobs a shard cannot export locally.
func missingOn(cs *clusterShard, ids []string) []string {
	var missing []string
	for _, id := range ids {
		resp, err := http.Get(cs.url + shard.ExportPathPrefix + id)
		if err != nil {
			missing = append(missing, id)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			missing = append(missing, id)
		}
	}
	return missing
}

// TestEmitClusterBenchJSON compares mixed-workload loadtest throughput
// through the router at 1 shard vs 3 shards and writes the numbers as
// JSON when BENCH_CLUSTER_OUT names a path. Each shard runs one
// executor worker over a durable (fsynced) WAL, so per-job service
// time is commit-latency-bound — the resource sharding actually
// multiplies — rather than bound by this host's CPU count. CI uploads
// the file as the BENCH_cluster artifact; EXPERIMENTS.md quotes it.
func TestEmitClusterBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_CLUSTER_OUT")
	if path == "" {
		t.Skip("BENCH_CLUSTER_OUT not set")
	}

	run := func(shards int) *service.LoadTestResult {
		c := startCluster(t, clusterConfig{
			shards: shards, replication: 1, quorum: 1,
			workers: 1, nosync: false, commitWin: 50 * time.Millisecond,
		})
		res, err := service.RunLoadTest(service.LoadTestConfig{
			BaseURL: c.rts.URL, Jobs: 60, Concurrency: 15,
			Vertices: 80, Edges: 320, Nodes: 2, ReadRatio: 0.5, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed > 0 {
			t.Fatalf("%d shards: %d jobs failed during the bench", shards, res.Failed)
		}
		return res
	}
	one := run(1)
	three := run(3)

	type point struct {
		Jobs       int     `json:"jobs"`
		JobsPerSec float64 `json:"jobs_per_sec"`
		ReqPerSec  float64 `json:"req_per_sec"`
		P50Ms      float64 `json:"p50_ms"`
		P99Ms      float64 `json:"p99_ms"`
	}
	mk := func(r *service.LoadTestResult) point {
		return point{
			Jobs: r.Jobs, JobsPerSec: r.JobsPerSec, ReqPerSec: r.ReqPerSec,
			P50Ms: float64(r.P50.Microseconds()) / 1000,
			P99Ms: float64(r.P99.Microseconds()) / 1000,
		}
	}
	report := struct {
		Shards1  point                  `json:"shards_1"`
		Shards3  point                  `json:"shards_3"`
		Speedup  float64                `json:"jobs_per_sec_speedup"`
		PerShard []service.ShardLatency `json:"per_shard_3"`
	}{
		Shards1: mk(one), Shards3: mk(three),
		Speedup:  three.JobsPerSec / one.JobsPerSec,
		PerShard: three.PerShard,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s\n%s", path, data)
}

// clusterStreamEvents is a tiny well-formed live stream: a root with
// one child operation and an env sample, sealed done at t=4.
func clusterStreamEvents() []stream.Event {
	return []stream.Event{
		{Seq: 1, Type: stream.TypeStart, Time: 0, Op: "op-1", Actor: "Client", Mission: "Job"},
		{Seq: 2, Type: stream.TypeStart, Time: 1, Op: "op-2", Parent: "op-1", Actor: "Worker-0", Mission: "Load"},
		{Seq: 3, Type: stream.TypeInfo, Time: 1.5, Op: "op-2", Key: "Bytes", Value: "4096"},
		{Seq: 4, Type: stream.TypeEnv, Time: 2, Node: "node-0", Kind: "cpu", Used: 0.8},
		{Seq: 5, Type: stream.TypeEnd, Time: 3, Op: "op-2"},
		{Seq: 6, Type: stream.TypeEnd, Time: 4, Op: "op-1"},
		{Seq: 7, Type: stream.TypeSeal, Time: 4, Platform: "Giraph", Algorithm: "BFS", State: stream.StateDone},
	}
}

// ingestVia POSTs an event batch through the given base URL and returns
// the status, decoded ack, and response headers.
func ingestVia(t *testing.T, base, id string, events []stream.Event) (int, map[string]any, http.Header) {
	t.Helper()
	body, err := stream.EncodeEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/ingest/"+id, "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	ack := map[string]any{}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(payload, &ack); err != nil {
			t.Fatalf("bad ack: %v: %s", err, payload)
		}
	}
	return resp.StatusCode, ack, resp.Header
}

// TestClusterStreamTailThroughRouter pins satellite coverage for the
// router's SSE pass-through: a live job ingested through the router is
// tailed through the router, frames arrive incrementally with the
// owning shard stamped, and the sealed archive is readable afterwards.
func TestClusterStreamTailThroughRouter(t *testing.T) {
	c := startCluster(t, clusterConfig{shards: 3, replication: 2, quorum: 1, nosync: true})
	events := clusterStreamEvents()
	const id = "live-tail"

	code, ack, _ := ingestVia(t, c.rts.URL, id, events[:4])
	if code != http.StatusOK || ack["state"] != "streaming" {
		t.Fatalf("open stream via router: %d %v", code, ack)
	}
	if st, _, _ := mustGet(t, c.rts.URL+"/jobs/"+id); st != http.StatusOK {
		t.Fatalf("status via router: %d", st)
	}

	go func() {
		time.Sleep(150 * time.Millisecond)
		body, _ := stream.EncodeEvents(events)
		resp, err := http.Post(c.rts.URL+"/ingest/"+id, "application/x-ndjson", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	}()
	req, err := http.NewRequest(http.MethodGet, c.rts.URL+"/watch/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	tc := &http.Client{} // no timeout: the tail closes at the seal frame
	resp, err := tc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("watch via router: %d %v: %s", resp.StatusCode, err, text)
	}
	if resp.Header.Get(shard.ShardHeader) == "" {
		t.Fatal("watch response lacks owning-shard header")
	}
	for _, want := range []string{"id: 1\nevent: op\n", "id: 4\nevent: env\n", "id: 7\nevent: seal\n"} {
		if !bytes.Contains(text, []byte(want)) {
			t.Fatalf("router tail missing %q:\n%s", want, text)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if st, _, _ := mustGet(t, c.rts.URL+"/jobs/"+id+"/archive"); st == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sealed archive never became readable through the router")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterStreamFailoverReplay pins the mid-stream failover
// contract: when the primary dies with a half-streamed job, the next
// batch lands on a follower that answers 409 with expected seq 1, and
// the client's idempotent replay from the start rebuilds the stream
// there — no acked event is lost to the client's view.
func TestClusterStreamFailoverReplay(t *testing.T) {
	c := startCluster(t, clusterConfig{shards: 3, replication: 2, quorum: 1, nosync: true})
	events := clusterStreamEvents()
	const id = "live-failover"

	if code, _, _ := ingestVia(t, c.rts.URL, id, events[:4]); code != http.StatusOK {
		t.Fatalf("open stream: %d", code)
	}
	primary := c.m.Owners(id)[0].ID
	for _, cs := range c.shards {
		if cs.id == primary {
			cs.kill()
		}
	}

	// The router fails over the next batch to a follower with no stream
	// state; the 409 names the sequence the client must rewind to.
	code, _, hdr := ingestVia(t, c.rts.URL, id, events[4:])
	if code != http.StatusConflict {
		t.Fatalf("post-kill batch: %d, want 409", code)
	}
	if got := hdr.Get("X-Granula-Expected-Seq"); got != "1" {
		t.Fatalf("expected-seq after failover = %q, want 1", got)
	}

	code, ack, _ := ingestVia(t, c.rts.URL, id, events)
	if code != http.StatusOK || ack["state"] != "archived" {
		t.Fatalf("replay after failover: %d %v", code, ack)
	}
	if st, body, _ := mustGet(t, c.rts.URL+"/jobs/"+id+"/archive"); st != http.StatusOK || !bytes.Contains(body, []byte("op-2")) {
		t.Fatalf("archive after failover replay: %d: %s", st, body)
	}
}
