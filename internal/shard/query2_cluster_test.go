package shard_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/shard"
)

// TestClusterQuery2ByteEquivalence extends the determinism contract to
// cross-job aggregation: for the same jobs, /query2 bytes served by the
// router's scatter-gather (R=2, so every partial arrives twice and must
// be deduped) equal the bytes a single granula-serve node renders.
// Sharding, replication, and shard arrival order must be invisible in
// the body.
func TestClusterQuery2ByteEquivalence(t *testing.T) {
	metrics := service.NewMetrics()
	store := service.NewStore()
	exec := service.NewExecutorWith(2, 64, store, metrics, service.ExecutorOptions{HostParallelism: 1})
	defer exec.Shutdown(context.Background())
	single := httptest.NewServer(service.NewServerWith(exec, store, metrics, service.ServerOptions{}).Handler())
	defer single.Close()

	c := startCluster(t, clusterConfig{shards: 3, replication: 2, quorum: 2, nosync: true})

	reqs := []service.JobRequest{
		{ID: "q2-001", Platform: "Giraph", Algorithm: "BFS", Vertices: 150, Edges: 600, Seed: 1},
		{ID: "q2-002", Platform: "PowerGraph", Algorithm: "PageRank", Vertices: 150, Edges: 600, Seed: 2, Iterations: 4},
		{ID: "q2-003", Platform: "OpenG", Algorithm: "BFS", Vertices: 150, Edges: 600, Seed: 3},
		{ID: "q2-004", Platform: "Giraph", Algorithm: "SSSP", Vertices: 150, Edges: 600, Seed: 4},
		{ID: "q2-005", Platform: "PowerGraph", Algorithm: "WCC", Vertices: 150, Edges: 600, Seed: 5},
		{ID: "q2-006", Platform: "Giraph", Algorithm: "PageRank", Vertices: 150, Edges: 600, Seed: 6, Iterations: 4},
	}
	primaries := map[string]bool{}
	for _, req := range reqs {
		primaries[c.m.Owners(req.ID)[0].ID] = true
		if !postJob(single.URL, req) {
			t.Fatalf("single node rejected %s", req.ID)
		}
		if !postJob(c.rts.URL, req) {
			t.Fatalf("router rejected %s", req.ID)
		}
	}
	if len(primaries) < 2 {
		t.Fatalf("all jobs hash to one shard (%v); pick different IDs", primaries)
	}
	for _, req := range reqs {
		if !pollDone(single.URL, req.ID, 60*time.Second) {
			t.Fatalf("single node did not finish %s", req.ID)
		}
		if !pollDone(c.rts.URL, req.ID, 60*time.Second) {
			t.Fatalf("cluster did not finish %s", req.ID)
		}
	}

	queries := []string{
		`from jobs group by mission agg count, sum(duration), avg(duration), p95(duration)`,
		`from jobs where job.platform = Giraph group by job.algorithm agg count, max(job.runtime)`,
		`from jobs where mission = Superstep group by actor agg count, sum(duration) order by sum(duration) desc limit 5`,
		`from jobs top 3 job.platform by count`,
		`from jobs where start > 1000000000 group by mission`, // prunable everywhere
	}
	for _, raw := range queries {
		path := shard.Query2Path + "?" + url.Values{"q": {raw}}.Encode()
		wantCode, want, _ := mustGet(t, single.URL+path)
		gotCode, got, hdr := mustGet(t, c.rts.URL+path)
		if wantCode != http.StatusOK || gotCode != http.StatusOK {
			t.Fatalf("%q: single %d, routed %d: %s", raw, wantCode, gotCode, got)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%q: routed bytes differ from single-node bytes:\n%s\nvs\n%s", raw, got, want)
		}
		if down := hdr.Get("X-Granula-Shards-Down"); down != "" {
			t.Fatalf("%q: shards down: %s", raw, down)
		}
		// Post-dedupe accounting: R=2 delivers ~2N partials, but the
		// merged counts must describe the N distinct jobs, same as the
		// single node would report.
		scanned, _ := strconv.Atoi(hdr.Get(shard.ScannedHeader))
		pruned, _ := strconv.Atoi(hdr.Get(shard.PrunedHeader))
		if scanned+pruned != len(reqs) {
			t.Fatalf("%q: scanned %d + pruned %d != %d distinct jobs", raw, scanned, pruned, len(reqs))
		}
	}

	// Validation parity: the router rejects what a shard would reject,
	// without fanning out garbage.
	for _, raw := range []string{``, `mission = X`, `group by mission`, `from jobs where (`} {
		path := shard.Query2Path + "?" + url.Values{"q": {raw}}.Encode()
		code, body, _ := mustGet(t, c.rts.URL+path)
		if code != http.StatusBadRequest {
			t.Fatalf("%q through router: %d: %s", raw, code, body)
		}
	}
}
