package shard

import (
	"fmt"
	"net/http"
	"net/url"
	"sync"
)

// Partition is the cluster chaos harness's network-partition switch: a
// concurrent set of blocked hosts consulted by Transport-wrapped HTTP
// clients. Blocking a shard's URL makes every request to it fail at the
// transport layer — indistinguishable, to the router and replicators,
// from a severed link — without touching the shard process, so the
// partition can heal instantly. It extends the PR 3 fault-injection
// harness from single-process sites to whole-shard topology faults.
type Partition struct {
	mu      sync.RWMutex
	blocked map[string]bool // by URL host
	dropped uint64
}

// NewPartition returns a partition with no blocked hosts.
func NewPartition() *Partition {
	return &Partition{blocked: map[string]bool{}}
}

// hostOf extracts the host:port a URL dials.
func hostOf(rawurl string) string {
	u, err := url.Parse(rawurl)
	if err != nil {
		return rawurl
	}
	return u.Host
}

// Block severs the link to every given shard base URL.
func (p *Partition) Block(urls ...string) {
	p.mu.Lock()
	for _, u := range urls {
		p.blocked[hostOf(u)] = true
	}
	p.mu.Unlock()
}

// Unblock heals the link to the given shard base URLs.
func (p *Partition) Unblock(urls ...string) {
	p.mu.Lock()
	for _, u := range urls {
		delete(p.blocked, hostOf(u))
	}
	p.mu.Unlock()
}

// Heal removes every block.
func (p *Partition) Heal() {
	p.mu.Lock()
	p.blocked = map[string]bool{}
	p.mu.Unlock()
}

// Dropped returns how many requests the partition has refused.
func (p *Partition) Dropped() uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.dropped
}

// Transport wraps base (nil selects http.DefaultTransport) so requests
// to blocked hosts fail with a connection-style error before dialing.
func (p *Partition) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &partitionTransport{base: base, p: p}
}

// Client returns an http.Client whose transport honors the partition.
func (p *Partition) Client() *http.Client {
	return &http.Client{Transport: p.Transport(nil)}
}

type partitionTransport struct {
	base http.RoundTripper
	p    *Partition
}

func (t *partitionTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.p.mu.Lock()
	blocked := t.p.blocked[req.URL.Host]
	if blocked {
		t.p.dropped++
	}
	t.p.mu.Unlock()
	if blocked {
		return nil, fmt.Errorf("shard: partition: host %s unreachable", req.URL.Host)
	}
	return t.base.RoundTrip(req)
}
