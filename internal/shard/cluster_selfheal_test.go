// Self-healing chaos scenarios: the failure-detector / hinted-handoff /
// anti-entropy stack under real faults — a primary killed mid-storm, a
// network partition healed, a flapping (slow but alive) shard — against
// real granula-serve stacks behind a real router. These are the
// acceptance proofs for the robustness tentpole: zero quorum-acked
// archives lost, byte-identical convergence after heal, and no
// promotion on latency flaps.
package shard_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/shard"
)

// selfHealConfig is the canonical chaos topology from ISSUE: 3 shards,
// R=2, W=2 — every write needs both replicas (or a durable hint), so a
// dead shard forces the sloppy-quorum path on every job it co-owns.
func selfHealConfig() clusterConfig {
	return clusterConfig{
		shards: 3, replication: 2, quorum: 2, repairEvery: 0,
		nosync: true, selfHeal: true,
	}
}

// waitCond polls cond until it holds or the deadline passes.
func waitCond(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// exportBytes fetches one shard's raw /internal/export bytes for a job.
func exportBytes(cs *clusterShard, id string) ([]byte, bool) {
	resp, err := http.Get(cs.url + shard.ExportPathPrefix + id)
	if err != nil {
		return nil, false
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	return body, true
}

// shardByID finds a cluster shard by its map ID.
func shardByID(c *cluster, id string) *clusterShard {
	for _, cs := range c.shards {
		if cs.id == id {
			return cs
		}
	}
	return nil
}

// drainedHints sums delivered-hint counters across the live shards.
func drainedHints(c *cluster) uint64 {
	var total uint64
	for _, cs := range c.shards {
		if cs.heal != nil {
			_, drained := cs.heal.Hints()
			total += drained
		}
	}
	return total
}

// TestClusterFailoverPromotion kills a primary mid-write-storm on the
// R=2/W=2 topology and proves the self-healing contract end to end:
// the storm keeps acking through sloppy quorum, every quorum-acked
// archive stays readable with the shard dead (zero lost), writes to
// the dead primary's jobs promote to the next ring owner, and after
// the victim restarts the journaled hints (plus anti-entropy) converge
// it — with read-repair disabled, so the convergence is the new
// machinery's alone.
func TestClusterFailoverPromotion(t *testing.T) {
	c := startCluster(t, selfHealConfig())
	base := c.rts.URL
	victim := c.shards[1]

	const clients, perClient = 3, 8
	killAt := make(chan struct{})
	var killOnce sync.Once
	killed := make(chan struct{})
	var killedAt time.Time
	go func() {
		<-killAt
		killedAt = time.Now()
		victim.kill()
		close(killed)
	}()

	var mu sync.Mutex
	var acked []string
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				id := fmt.Sprintf("heal-%d-%02d", cl, j)
				if !postJob(base, clusterJob(id, int64(cl*100+j))) {
					continue
				}
				if cl == 0 && j == 2 {
					killOnce.Do(func() { close(killAt) })
				}
				if pollDone(base, id, 30*time.Second) {
					mu.Lock()
					acked = append(acked, id)
					mu.Unlock()
				}
			}
		}(cl)
	}
	wg.Wait()
	killOnce.Do(func() { close(killAt) })
	<-killed

	if len(acked) < clients*perClient/2 {
		t.Fatalf("only %d/%d jobs reached done through the kill", len(acked), clients*perClient)
	}

	// Time-to-recovery: how long until the router's detector confirmed
	// the death. After that point writes stop paying the corpse tax.
	waitCond(t, 10*time.Second, "router detector marks victim down", func() bool {
		return c.det.Down(victim.id)
	})
	ttr := time.Since(killedAt)
	t.Logf("TTR kill -> detector down: %v", ttr)

	// Zero lost: every quorum-acked archive is readable with the shard
	// dead. W=2 means each acked job has a durable copy (or a durable
	// hint holding its bytes) outside the victim.
	for _, id := range acked {
		if code, body, _ := mustGet(t, base+"/jobs/"+id+"/archive"); code != http.StatusOK {
			t.Fatalf("acked %s unreadable with the primary dead: %d %s", id, code, body)
		}
	}

	// Writes whose primary is the corpse promote to the next ring owner
	// without an attempt at the dead node — and keep acking at W=2 via
	// the hint the new head journals for the corpse.
	promoted := 0
	for i := 0; promoted < 2 && i < 50; i++ {
		id := fmt.Sprintf("promote-%02d", i)
		if c.m.Owners(id)[0].ID != victim.id {
			continue
		}
		before := c.router.Metrics().Promotions()
		if !postJob(base, clusterJob(id, int64(1000+i))) {
			t.Fatalf("write with dead primary rejected: %s", id)
		}
		if c.router.Metrics().Promotions() <= before {
			t.Fatalf("write %s did not count a promotion", id)
		}
		if !pollDone(base, id, 30*time.Second) {
			t.Fatalf("promoted write %s never reached done", id)
		}
		acked = append(acked, id)
		promoted++
	}
	if promoted == 0 {
		t.Fatal("no test ID hashed to the dead primary; widen the ID search")
	}

	// Restart the victim. Hints drain to it and anti-entropy fills any
	// gap; with repairEvery=0 and no reads against the victim, read
	// repair contributes nothing. Convergence: the victim exports every
	// acked job it co-owns.
	victim.restart(t)
	waitShardHealthy(t, victim.url)
	// Storm-phase reads may have triggered failover repairs between the
	// live shards; what must hold is that the victim's convergence
	// needs none — no router reads run during this window, so any new
	// repair would be a contamination of the hints/anti-entropy proof.
	c.router.WaitRepairs()
	repairsBefore := c.router.Metrics().Repairs()
	var owed []string
	for _, id := range acked {
		for _, n := range c.m.Owners(id) {
			if n.ID == victim.id {
				owed = append(owed, id)
			}
		}
	}
	if len(owed) == 0 {
		t.Fatal("victim co-owns none of the acked jobs; the convergence check is vacuous")
	}
	waitCond(t, 30*time.Second, "victim converged via hints/anti-entropy", func() bool {
		return len(missingOn(victim, owed)) == 0
	})
	if drainedHints(c) == 0 {
		t.Fatal("victim converged without a single hint draining — sloppy quorum never engaged")
	}
	if got := c.router.Metrics().Repairs(); got != repairsBefore {
		t.Fatalf("read-repair ran %d more times during convergence — the hints/anti-entropy proof is contaminated", got-repairsBefore)
	}
}

// TestClusterPartitionHealConvergence partitions one shard at the
// transport (the process stays healthy but unreachable — for the
// router AND its peers), runs writes that must sloppy-ack with hints
// for the unreachable replica, heals the partition, and requires every
// replica set to converge to byte-identical /internal/export bytes.
func TestClusterPartitionHealConvergence(t *testing.T) {
	c := startCluster(t, selfHealConfig())
	base := c.rts.URL
	victim := c.shards[2]

	// Let the detectors confirm the partition before the storm so the
	// write path hints immediately instead of paying timeouts.
	c.part.Block(victim.url)
	waitCond(t, 10*time.Second, "detectors see the partition", func() bool {
		if !c.det.Down(victim.id) {
			return false
		}
		for _, cs := range c.shards {
			if cs != victim && !cs.det.Down(victim.id) {
				return false
			}
		}
		return true
	})

	var acked []string
	for i := 0; len(acked) < 8 && i < 40; i++ {
		id := fmt.Sprintf("part-%02d", i)
		owners := c.m.Owners(id)
		coOwned := false
		for _, n := range owners {
			if n.ID == victim.id {
				coOwned = true
			}
		}
		if !coOwned {
			continue // only jobs that owe the victim a replica prove anything
		}
		if !postJob(base, clusterJob(id, int64(i))) {
			t.Fatalf("write during partition rejected: %s", id)
		}
		if !pollDone(base, id, 30*time.Second) {
			t.Fatalf("write during partition never reached done: %s", id)
		}
		acked = append(acked, id)
	}
	if len(acked) < 8 {
		t.Fatalf("only %d victim-co-owned jobs acked during the partition", len(acked))
	}
	if c.part.Dropped() == 0 {
		t.Fatal("partition dropped nothing — the victim was never actually cut off")
	}

	// Heal. Hints drain, anti-entropy reconciles, detectors mark the
	// victim up again — no restart, no operator action, no reads.
	c.part.Heal()
	waitCond(t, 30*time.Second, "every replica set byte-identical", func() bool {
		for _, id := range acked {
			var want []byte
			for _, n := range c.m.Owners(id) {
				got, ok := exportBytes(shardByID(c, n.ID), id)
				if !ok {
					return false
				}
				if want == nil {
					want = got
				} else if !bytes.Equal(got, want) {
					return false
				}
			}
		}
		return true
	})
	waitCond(t, 10*time.Second, "detector marks the victim up", func() bool {
		return !c.det.Down(victim.id)
	})
	if drainedHints(c) == 0 {
		t.Fatal("partition healed without a single hint draining")
	}
	// Sanity: convergence produced real bytes, not matching 404s.
	for _, id := range acked {
		buf, ok := exportBytes(victim, id)
		if !ok || !json.Valid(buf) {
			t.Fatalf("victim export for %s missing or invalid after heal", id)
		}
	}
}

// TestClusterDetectorFlap injects short network blips — latency-spike
// stand-ins far shorter than the Down threshold — and requires the
// hysteresis to hold: the flapping shard may reach Suspect but never
// Down, the router never promotes around it, and writes keep landing
// on their true primaries throughout.
func TestClusterDetectorFlap(t *testing.T) {
	cfg := selfHealConfig()
	cfg.probeEvery = 25 * time.Millisecond
	cfg.downAfter = 10 // a blip of 1-3 missed probes must stay far from Down
	c := startCluster(t, cfg)
	flapper := c.shards[0]

	for round := 0; round < 5; round++ {
		c.part.Block(flapper.url)
		time.Sleep(60 * time.Millisecond) // ~2 missed probes: Suspect territory
		c.part.Unblock(flapper.url)
		time.Sleep(150 * time.Millisecond) // plenty of hits to recover
		if c.det.Down(flapper.id) {
			t.Fatalf("round %d: a latency blip was promoted to death", round)
		}
	}
	if got := c.heal.Transitions(shard.NodeDown); got != 0 {
		t.Fatalf("router detector counted %d down transitions during flapping, want 0", got)
	}
	if got := c.router.Metrics().Promotions(); got != 0 {
		t.Fatalf("router promoted %d writes around a flapping shard, want 0", got)
	}

	// Writes still route to the flapping shard's primaries: ring order
	// was never disturbed.
	landed := false
	for i := 0; i < 40 && !landed; i++ {
		id := fmt.Sprintf("flap-%02d", i)
		if c.m.Owners(id)[0].ID != flapper.id {
			continue
		}
		buf, _ := json.Marshal(clusterJob(id, int64(i)))
		resp, err := http.Post(c.rts.URL+"/jobs", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		served := resp.Header.Get(shard.ShardHeader)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s = %d", id, resp.StatusCode)
		}
		if served != flapper.id {
			t.Fatalf("write for %s served by %s, want its primary %s", id, served, flapper.id)
		}
		landed = true
	}
	if !landed {
		t.Fatal("no test ID hashed to the flapping shard")
	}
}

// TestEmitFailoverBenchJSON measures the self-healing numbers the
// operator cares about — detection time, promotion latency, and
// hint-drain throughput after a dead shard returns — and writes them
// as JSON when BENCH_FAILOVER_OUT names a path. CI uploads the file as
// the BENCH_failover artifact.
func TestEmitFailoverBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_FAILOVER_OUT")
	if path == "" {
		t.Skip("BENCH_FAILOVER_OUT not set")
	}
	c := startCluster(t, selfHealConfig())
	base := c.rts.URL
	victim := c.shards[1]

	// Seed a working set so the victim owes replicas after the kill.
	var acked []string
	for i := 0; i < 24; i++ {
		id := fmt.Sprintf("bench-%02d", i)
		if postJob(base, clusterJob(id, int64(i))) && pollDone(base, id, 30*time.Second) {
			acked = append(acked, id)
		}
	}
	if len(acked) < 12 {
		t.Fatalf("only %d/24 seed jobs acked", len(acked))
	}

	killedAt := time.Now()
	victim.kill()
	waitCond(t, 10*time.Second, "detector down", func() bool { return c.det.Down(victim.id) })
	detectMs := float64(time.Since(killedAt).Microseconds()) / 1000

	// First promoted write latency, detector already converged.
	var promoteMs float64
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("bench-promote-%02d", i)
		if c.m.Owners(id)[0].ID != victim.id {
			continue
		}
		start := time.Now()
		if !postJob(base, clusterJob(id, int64(100+i))) || !pollDone(base, id, 30*time.Second) {
			t.Fatalf("promoted bench write failed: %s", id)
		}
		promoteMs = float64(time.Since(start).Microseconds()) / 1000
		acked = append(acked, id)
		break
	}

	// Drain throughput: restart and time the convergence window.
	var owed []string
	for _, id := range acked {
		for _, n := range c.m.Owners(id) {
			if n.ID == victim.id {
				owed = append(owed, id)
			}
		}
	}
	restartAt := time.Now()
	victim.restart(t)
	waitShardHealthy(t, victim.url)
	waitCond(t, 60*time.Second, "victim converged", func() bool {
		return len(missingOn(victim, owed)) == 0
	})
	drainSecs := time.Since(restartAt).Seconds()
	drained := drainedHints(c)

	report := struct {
		Shards        int     `json:"shards"`
		Replication   int     `json:"replication"`
		WriteQuorum   int     `json:"write_quorum"`
		AckedJobs     int     `json:"acked_jobs"`
		DetectMs      float64 `json:"detect_ms"`
		PromoteMs     float64 `json:"first_promoted_write_ms"`
		OwedReplicas  int     `json:"owed_replicas"`
		HintsDrained  uint64  `json:"hints_drained"`
		ConvergeSecs  float64 `json:"converge_secs"`
		DrainPerSec   float64 `json:"hints_drained_per_sec"`
		RouterPromote uint64  `json:"router_promotions"`
	}{
		Shards: 3, Replication: 2, WriteQuorum: 2,
		AckedJobs: len(acked), DetectMs: detectMs, PromoteMs: promoteMs,
		OwedReplicas: len(owed), HintsDrained: drained, ConvergeSecs: drainSecs,
		DrainPerSec:   float64(drained) / drainSecs,
		RouterPromote: c.router.Metrics().Promotions(),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s\n%s", path, data)
}
