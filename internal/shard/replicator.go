package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Cluster-internal wire protocol. These paths are served by every
// granula-serve shard (see internal/service) and consumed by the
// replicator and the router's read-repair; they are not part of the
// public API.
const (
	// ReplicatePath accepts a ReplicaRecord POST and applies it
	// idempotently (by job ID + version) to the shard's store.
	ReplicatePath = "/internal/replicate"
	// ExportPathPrefix + {id} returns the ReplicaRecord for a stored
	// job, the unit of replication and read-repair.
	ExportPathPrefix = "/internal/export/"
	// ClusterPath reports a node's shard identity and map version (on
	// shards) or the full membership with live health (on the router).
	ClusterPath = "/cluster"
	// ShardHeader names the shard that served a proxied response, so
	// clients (and the loadtest driver's per-shard latency split) can
	// attribute a response without parsing bodies.
	ShardHeader = "X-Granula-Shard"

	// Query2Path is the public analytical endpoint (?q= holds a v2
	// aggregate query); InternalQuery2Path returns the per-job partial
	// aggregates the router's scatter-gather merges.
	Query2Path         = "/query2"
	InternalQuery2Path = "/internal/query2"

	// ScannedHeader/PrunedHeader report how many columnar segments a
	// v2 query read vs skipped via zone maps. Execution detail, so it
	// travels in headers — response bodies stay byte-identical across
	// the segment path, the tree-walk oracle, and the router merge.
	ScannedHeader = "X-Granula-Scanned"
	PrunedHeader  = "X-Granula-Pruned"
)

// ReplicaRecord is the unit of replication: one job's persisted payload
// (the exact bytes the primary wrote to its archivedb, so every replica
// stores byte-identical records) plus the version that makes replays
// idempotent — a receiver at version >= Version acks without rewriting.
type ReplicaRecord struct {
	ID      string          `json:"id"`
	Version uint64          `json:"version"`
	Payload json.RawMessage `json:"payload"`
}

// Replicator is the shard-side write fan-out: after a job's archive is
// durable locally, ReplicateJob pushes the record to the job's other
// replicas and blocks until the write quorum is met. It is safe for
// concurrent use.
type Replicator struct {
	self     string
	m        *Map
	client   *http.Client
	metrics  *ReplMetrics
	hints    HintJournal
	det      *Detector
	selfheal *SelfHealMetrics
}

// ReplicatorOptions tunes NewReplicator; zero values select defaults.
type ReplicatorOptions struct {
	// Client issues the replication POSTs; nil selects a client with a
	// 30 s timeout. Tests swap in partitioned transports here.
	Client *http.Client
	// Metrics receives replication counters; nil creates a private set
	// (still reachable via Metrics()).
	Metrics *ReplMetrics
	// Hints, when set, enables hinted handoff (sloppy quorum): a
	// follower push that fails is journaled durably, the journaled hint
	// counts as an ack toward the write quorum, and the drainer replays
	// it when the peer returns. Without a journal the replicator keeps
	// the strict quorum semantics — a missed follower is just a miss.
	Hints HintJournal
	// Detector, when set, short-circuits pushes to followers already
	// marked Down: the write goes straight to the hint journal instead
	// of waiting out a connection timeout on a corpse.
	Detector *Detector
	// SelfHeal receives hint-recording counters; may be nil.
	SelfHeal *SelfHealMetrics
}

// NewReplicator builds the fan-out for one shard (self) over the map.
func NewReplicator(self string, m *Map, opts ReplicatorOptions) (*Replicator, error) {
	if _, ok := m.Node(self); !ok {
		return nil, fmt.Errorf("shard: replicator self %q is not in the map", self)
	}
	c := opts.Client
	if c == nil {
		c = &http.Client{Timeout: 30 * time.Second}
	}
	mt := opts.Metrics
	if mt == nil {
		mt = NewReplMetrics()
	}
	return &Replicator{
		self: self, m: m, client: c, metrics: mt,
		hints: opts.Hints, det: opts.Detector, selfheal: opts.SelfHeal,
	}, nil
}

// Metrics returns the replicator's counters.
func (r *Replicator) Metrics() *ReplMetrics { return r.metrics }

// QuorumError reports a write that could not reach its quorum: how many
// acks were collected (the local durable write counts as one), how many
// durable hints were journaled toward it, and the per-shard failures.
type QuorumError struct {
	Acks   int
	Hinted int
	Quorum int
	Errs   []string
}

func (e *QuorumError) Error() string {
	return fmt.Sprintf("shard: write quorum not reached: %d/%d acks (%d hinted) (%s)",
		e.Acks, e.Quorum, e.Hinted, strings.Join(e.Errs, "; "))
}

// ReplicateJob fans one durable job out to its replica set and returns
// nil once WriteQuorum acks exist (the caller's local persist is the
// first ack). Every follower is attempted even after the quorum is met
// — a healthy cluster converges to R full copies on the write path, not
// just W — but the call returns as soon as the quorum outcome is known.
//
// With a hint journal configured the quorum is sloppy: a follower push
// that fails (or is skipped because the detector marked the follower
// Down) journals the record as a durable hint instead, and the hint
// counts as an ack — "done implies W durable copies" still holds, with
// the hint as the W-th copy until the drainer delivers it. Without a
// journal, followers that miss the write are caught up later by
// read-repair and anti-entropy but do not count toward the quorum.
func (r *Replicator) ReplicateJob(ctx context.Context, id string, version uint64, payload []byte) error {
	start := time.Now()
	owners := r.m.Owners(id)
	followers := make([]Node, 0, len(owners))
	acks := 1 // the local fsynced persist
	for _, n := range owners {
		if n.ID != r.self {
			followers = append(followers, n)
		}
	}
	need := r.m.WriteQuorum - acks
	if need <= 0 && len(followers) == 0 {
		r.metrics.observeQuorum(time.Since(start).Seconds(), true)
		return nil
	}

	rec, err := json.Marshal(ReplicaRecord{ID: id, Version: version, Payload: payload})
	if err != nil {
		return fmt.Errorf("shard: encode replica %q: %w", id, err)
	}

	type result struct {
		node   Node
		hinted bool
		err    error
	}
	results := make(chan result, len(followers))
	for _, n := range followers {
		go func(n Node) {
			var err error
			if r.det != nil && r.det.Down(n.ID) {
				// Known corpse: don't wait out a transport timeout, go
				// straight to the hint path below.
				err = fmt.Errorf("detector marks %s down", n.ID)
			} else {
				err = r.push(ctx, n, rec)
			}
			r.metrics.countAck(n.ID, err == nil)
			hinted := false
			if err != nil && r.hints != nil {
				// The hint is journaled on the push goroutine itself, not
				// the collector — so followers that fail after the quorum
				// already returned still get their hints recorded.
				if herr := r.hints.AppendHint(HintRecord{
					Target: n.ID, ID: id, Version: version, Payload: payload,
				}); herr == nil {
					hinted = true
					if r.selfheal != nil {
						r.selfheal.countHintRecorded()
					}
				} else {
					err = fmt.Errorf("%v (hint journal: %v)", err, herr)
				}
			}
			results <- result{node: n, hinted: hinted, err: err}
		}(n)
	}

	hinted := 0
	var errs []string
	for range followers {
		res := <-results
		switch {
		case res.err == nil:
			acks++
		case res.hinted:
			hinted++
		default:
			errs = append(errs, fmt.Sprintf("%s: %v", res.node.ID, res.err))
		}
		if acks+hinted >= r.m.WriteQuorum {
			// Quorum met (durable copies plus durable hints). The remaining
			// pushes keep running on their own goroutines (results is
			// buffered) so healthy followers still converge; the ack
			// returns now.
			r.metrics.observeQuorum(time.Since(start).Seconds(), true)
			return nil
		}
	}
	sort.Strings(errs)
	r.metrics.observeQuorum(time.Since(start).Seconds(), false)
	return &QuorumError{Acks: acks, Hinted: hinted, Quorum: r.m.WriteQuorum, Errs: errs}
}

// push sends one replica record to one follower, retrying once on
// transport errors (a connection blip is common during shard restarts;
// anything longer is the quorum's problem).
func (r *Replicator) push(ctx context.Context, n Node, rec []byte) error {
	var last error
	for attempt := 0; attempt < 2; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(50 * time.Millisecond):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.URL+ReplicatePath, bytes.NewReader(rec))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := r.client.Do(req)
		if err != nil {
			last = err
			continue
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return nil
		}
		last = fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(body))
		if resp.StatusCode >= 500 || resp.StatusCode == http.StatusServiceUnavailable {
			continue // the follower may be mid-recovery; one more try
		}
		return last // 4xx is definitive
	}
	return last
}

// ReplMetrics counts the shard-side replication work; granula-serve
// appends it to /metrics as the granula_replication_* family.
type ReplMetrics struct {
	mu      sync.Mutex
	acks    map[string]uint64 // follower acks by shard
	fails   map[string]uint64 // follower failures by shard
	quorum  *fixedHistogram   // quorum wait in seconds
	reached uint64
	missed  uint64
}

// NewReplMetrics returns an empty replication metrics set.
func NewReplMetrics() *ReplMetrics {
	return &ReplMetrics{
		acks:   map[string]uint64{},
		fails:  map[string]uint64{},
		quorum: newFixedHistogram(),
	}
}

func (m *ReplMetrics) countAck(shard string, ok bool) {
	m.mu.Lock()
	if ok {
		m.acks[shard]++
	} else {
		m.fails[shard]++
	}
	m.mu.Unlock()
}

func (m *ReplMetrics) observeQuorum(seconds float64, reached bool) {
	m.mu.Lock()
	m.quorum.observe(seconds)
	if reached {
		m.reached++
	} else {
		m.missed++
	}
	m.mu.Unlock()
}

// Quorums returns the (reached, missed) quorum outcome counters.
func (m *ReplMetrics) Quorums() (reached, missed uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reached, m.missed
}

// WritePrometheus renders the replication family in Prometheus text
// format, shards sorted so the output is byte-deterministic.
func (m *ReplMetrics) WritePrometheus(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fmt.Fprintln(w, "# HELP granula_replication_acks_total Follower replication acks by shard and outcome.")
	fmt.Fprintln(w, "# TYPE granula_replication_acks_total counter")
	for _, id := range sortedKeys(m.acks, m.fails) {
		fmt.Fprintf(w, "granula_replication_acks_total{shard=%q,outcome=\"ok\"} %d\n", id, m.acks[id])
		fmt.Fprintf(w, "granula_replication_acks_total{shard=%q,outcome=\"error\"} %d\n", id, m.fails[id])
	}
	fmt.Fprintln(w, "# HELP granula_replication_quorum_total Write-quorum outcomes.")
	fmt.Fprintln(w, "# TYPE granula_replication_quorum_total counter")
	fmt.Fprintf(w, "granula_replication_quorum_total{outcome=\"reached\"} %d\n", m.reached)
	fmt.Fprintf(w, "granula_replication_quorum_total{outcome=\"missed\"} %d\n", m.missed)
	fmt.Fprintln(w, "# HELP granula_replication_quorum_seconds Wall-clock from local persist to quorum outcome.")
	fmt.Fprintln(w, "# TYPE granula_replication_quorum_seconds histogram")
	m.quorum.write(w, "granula_replication_quorum_seconds", "")
}

// sortedKeys merges the key sets of both maps, sorted.
func sortedKeys(ms ...map[string]uint64) []string {
	set := map[string]bool{}
	for _, m := range ms {
		for k := range m {
			set[k] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
