package shard

import (
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"sort"
	"strings"
)

// Node is one granula-serve shard in the cluster map.
type Node struct {
	// ID is the stable shard name used for ring placement. It must not
	// change across restarts: placement hashes the ID, not the URL.
	ID string `json:"id"`
	// URL is the shard's base HTTP endpoint, e.g. "http://10.0.0.3:8081".
	URL string `json:"url"`
}

// Map is the cluster's static, versioned shard map: the full membership
// plus the replication and quorum parameters every node must agree on.
// The map is propagated as configuration (a -peers flag or a JSON file)
// and echoed by every node's /cluster endpoint with its version, so an
// operator can confirm the whole cluster converged on the same map
// before and after a change.
type Map struct {
	// Version is bumped by the operator on every map change. Nodes and
	// the router only compare it for visibility; placement is derived
	// from the shard IDs alone.
	Version uint64 `json:"version"`
	// Shards is the membership, sorted by ID.
	Shards []Node `json:"shards"`
	// Replication R is how many shards hold each job (primary included).
	// Clamped to the shard count.
	Replication int `json:"replication"`
	// WriteQuorum W is how many replica acks (the writing shard counts
	// as one) a job needs before it may be acked done. 1 <= W <= R.
	WriteQuorum int `json:"writeQuorum"`
	// VirtualNodes per shard on the ring; 0 selects DefaultVirtualNodes.
	VirtualNodes int `json:"virtualNodes,omitempty"`

	ring *Ring
}

// ParseNodes parses the -peers / -shards flag grammar: a comma-separated
// list of id=url pairs, e.g. "s1=http://h1:8081,s2=http://h2:8081".
func ParseNodes(spec string) ([]Node, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("shard: empty shard spec")
	}
	var nodes []Node
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, u, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("shard: bad shard %q (want id=url)", part)
		}
		nodes = append(nodes, Node{ID: strings.TrimSpace(id), URL: strings.TrimSpace(u)})
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("shard: empty shard spec")
	}
	return nodes, nil
}

// NewMap builds and validates a map over nodes. replication < 1 selects
// len(nodes); writeQuorum < 1 selects a majority of the replica set
// (R/2+1), the classic quorum that tolerates (R-W) replica failures
// without losing an acked write.
func NewMap(version uint64, nodes []Node, replication, writeQuorum, vnodes int) (*Map, error) {
	m := &Map{
		Version:      version,
		Shards:       append([]Node(nil), nodes...),
		Replication:  replication,
		WriteQuorum:  writeQuorum,
		VirtualNodes: vnodes,
	}
	if m.Replication < 1 || m.Replication > len(nodes) {
		m.Replication = len(nodes)
	}
	if m.WriteQuorum < 1 {
		m.WriteQuorum = m.Replication/2 + 1
	}
	if err := m.init(); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadMap reads a shard map from a JSON file (the durable form of the
// -peers flag, for maps too big or too precious for a command line).
func LoadMap(path string) (*Map, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	var m Map
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("shard: parse map %s: %w", path, err)
	}
	if m.Replication < 1 || m.Replication > len(m.Shards) {
		m.Replication = len(m.Shards)
	}
	if m.WriteQuorum < 1 {
		m.WriteQuorum = m.Replication/2 + 1
	}
	if err := m.init(); err != nil {
		return nil, err
	}
	return &m, nil
}

// init validates the map and builds its ring.
func (m *Map) init() error {
	if len(m.Shards) == 0 {
		return fmt.Errorf("shard: map has no shards")
	}
	sort.Slice(m.Shards, func(i, j int) bool { return m.Shards[i].ID < m.Shards[j].ID })
	ids := make([]string, 0, len(m.Shards))
	for _, n := range m.Shards {
		if n.URL == "" {
			return fmt.Errorf("shard: shard %q has no URL", n.ID)
		}
		u, err := url.Parse(n.URL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return fmt.Errorf("shard: shard %q has unusable URL %q", n.ID, n.URL)
		}
		ids = append(ids, n.ID)
	}
	if m.WriteQuorum > m.Replication {
		return fmt.Errorf("shard: write quorum %d exceeds replication %d", m.WriteQuorum, m.Replication)
	}
	ring, err := NewRing(ids, m.VirtualNodes)
	if err != nil {
		return err
	}
	m.ring = ring
	return nil
}

// Ring returns the map's consistent-hash ring.
func (m *Map) Ring() *Ring { return m.ring }

// Owners returns the replica set (primary first) for a job ID.
func (m *Map) Owners(jobID string) []Node {
	ids := m.ring.Owners(jobID, m.Replication)
	out := make([]Node, 0, len(ids))
	for _, id := range ids {
		out = append(out, m.node(id))
	}
	return out
}

// node returns the Node for a shard ID (which init guaranteed exists).
func (m *Map) node(id string) Node {
	i := sort.Search(len(m.Shards), func(i int) bool { return m.Shards[i].ID >= id })
	return m.Shards[i]
}

// Node returns the shard with the given ID.
func (m *Map) Node(id string) (Node, bool) {
	i := sort.Search(len(m.Shards), func(i int) bool { return m.Shards[i].ID >= id })
	if i < len(m.Shards) && m.Shards[i].ID == id {
		return m.Shards[i], true
	}
	return Node{}, false
}
