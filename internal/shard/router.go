package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// maxProxyBytes caps proxied request bodies, matching the shards' own
// submit cap so the router rejects oversized bodies before buffering
// them toward a shard that would 413 anyway.
const maxProxyBytes = 1 << 20

// maxIngestProxyBytes caps proxied /ingest batches, matching the
// shards' own ingest cap (larger than submit bodies — a batch carries
// many events).
const maxIngestProxyBytes = 4 << 20

// DeadlineHeader carries the client's absolute deadline (Unix
// milliseconds) from the router to the shards: the router stamps it on
// every forwarded request so a shard stops working on an answer nobody
// is waiting for, and clients may set it themselves to bound a whole
// routed request including failover. See Router.boundCtx.
const DeadlineHeader = "X-Granula-Deadline"

// defaultRetryBudget bounds failover attempts per routed request when
// RouterOptions.RetryBudget is 0: the first attempt plus this many
// retries. It caps retry storms — with every owner slow, a request
// costs at most 1+budget shard timeouts, not R of them.
const defaultRetryBudget = 3

// RouterOptions tunes NewRouter; zero values select defaults.
type RouterOptions struct {
	// Client issues the proxied requests; nil selects a 60 s timeout
	// client. Tests swap in partitioned transports here.
	Client *http.Client
	// Metrics receives the granula_router_* counters; nil creates a
	// private set (still reachable via Metrics()).
	Metrics *RouterMetrics
	// RepairEvery issues a background replica-divergence probe on every
	// Nth successful job read: the served ETag is revalidated against
	// another replica and divergent or missing records are repaired from
	// the newer side. 0 disables probing (failover-triggered repair
	// still runs).
	RepairEvery int
	// HealthTimeout bounds the per-shard /healthz probes behind /cluster
	// and /healthz; 0 selects 1 s.
	HealthTimeout time.Duration
	// Detector, when set, makes routing failure-aware: owners the
	// detector marks Down are demoted to the tail of every replica set
	// (writes promote the next ring owner, reads route around the
	// corpse), and transport errors seen by the proxy feed the detector
	// passively. The router does not start or stop the detector.
	Detector *Detector
	// RetryBudget caps failover retries per routed request: the first
	// attempt is free, each further owner costs one retry. 0 selects
	// defaultRetryBudget; < 0 removes the cap (every owner is tried, the
	// pre-budget behavior).
	RetryBudget int
}

// Router is the thin stateless front of a granula-serve cluster: it
// consistent-hashes job IDs onto the shard map's replica sets, proxies
// submits to the primary (failing over down the replica list), spreads
// job reads across replicas (follower reads, so each shard's
// generation-keyed response cache keeps its hit rate), and repairs
// replicas that miss records or diverge. All routing state is derived
// from the static map — the router holds no per-job state and any
// number of router instances can front the same shards.
type Router struct {
	m      *Map
	client *http.Client
	// streamClient carries the long-lived /watch pass-throughs: same
	// transport as client, but no overall timeout — a healthy SSE tail
	// legitimately outlives any request deadline.
	streamClient *http.Client
	metrics      *RouterMetrics
	repairN      int
	healthT      time.Duration
	repairT      time.Duration // background probe/repair deadline
	det          *Detector
	budget       int // failover retries per request; < 0 = unlimited
	handler      http.Handler

	rr    atomic.Uint64 // follower-read rotation
	seq   atomic.Uint64 // router-assigned job IDs
	reads atomic.Uint64 // successful job reads, for RepairEvery

	repairWG sync.WaitGroup
}

// NewRouter builds a router over a validated shard map.
func NewRouter(m *Map, opts RouterOptions) *Router {
	c := opts.Client
	if c == nil {
		c = &http.Client{Timeout: 60 * time.Second}
	}
	mt := opts.Metrics
	if mt == nil {
		mt = NewRouterMetrics()
	}
	ht := opts.HealthTimeout
	if ht <= 0 {
		ht = time.Second
	}
	// Background probes and repairs run without a request context, so
	// they need their own deadline. The client's Timeout is the natural
	// bound, but a caller-supplied client may leave it 0 (unbounded) —
	// which must not become a zero-length repair deadline.
	repairT := c.Timeout
	if repairT <= 0 {
		repairT = 60 * time.Second
	}
	budget := opts.RetryBudget
	if budget == 0 {
		budget = defaultRetryBudget
	}
	rt := &Router{
		m: m, client: c,
		streamClient: &http.Client{Transport: c.Transport},
		metrics:      mt, repairN: opts.RepairEvery, healthT: ht, repairT: repairT,
		det: opts.Detector, budget: budget,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", rt.handleSubmit)
	mux.HandleFunc("GET /jobs", rt.handleList)
	mux.HandleFunc("GET /jobs/{id}", rt.handleStatus)
	mux.HandleFunc("DELETE /jobs/{id}", rt.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/archive", rt.handleRead)
	mux.HandleFunc("GET /jobs/{id}/query", rt.handleRead)
	mux.HandleFunc("GET /jobs/{id}/viz/{kind}", rt.handleRead)
	mux.HandleFunc("GET "+Query2Path, rt.handleQuery2)
	mux.HandleFunc("POST /ingest/{id}", rt.handleIngest)
	mux.HandleFunc("GET /watch/{id}", rt.handleWatch)
	mux.HandleFunc("POST /diff", rt.handleDiff)
	mux.HandleFunc("GET "+ClusterPath, rt.handleCluster)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.handler = mux
	return rt
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.handler }

// Metrics returns the router's counters.
func (rt *Router) Metrics() *RouterMetrics { return rt.metrics }

// Map returns the active shard map.
func (rt *Router) Map() *Map { return rt.m }

// WaitRepairs blocks until every dispatched background repair and
// divergence probe has finished; tests use it to assert repair effects
// deterministically.
func (rt *Router) WaitRepairs() { rt.repairWG.Wait() }

// writeRouterError emits the same JSON error envelope the shards use.
func writeRouterError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\n  \"error\": %q\n}\n", fmt.Sprintf(format, args...))
}

// proxyResult is one shard's answer to a forwarded request.
type proxyResult struct {
	node   Node
	status int
	header http.Header
	body   []byte
	err    error // transport-level failure; status/header/body are unset
}

// forward issues one proxied request to one shard and buffers the
// response. Request latency is recorded against the shard either way.
func (rt *Router) forward(ctx context.Context, n Node, method, pathq string, body []byte, hdr http.Header) proxyResult {
	start := time.Now()
	defer func() { rt.metrics.countRequest(n.ID, time.Since(start).Seconds()) }()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, n.URL+pathq, rd)
	if err != nil {
		return proxyResult{node: n, err: err}
	}
	for _, k := range []string{"Content-Type", "If-None-Match", "Accept", "Last-Event-ID"} {
		if v := hdr.Get(k); v != "" {
			req.Header.Set(k, v)
		}
	}
	// Deadline propagation: the shard sees the same absolute deadline
	// the router is working under, so it stops serving an answer the
	// client has already given up on.
	if dl, ok := ctx.Deadline(); ok {
		req.Header.Set(DeadlineHeader, strconv.FormatInt(dl.UnixMilli(), 10))
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return proxyResult{node: n, err: err}
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return proxyResult{node: n, err: err}
	}
	return proxyResult{node: n, status: resp.StatusCode, header: resp.Header, body: buf}
}

// writeProxied relays one shard response to the client, stamping the
// serving shard. Bodies pass through untouched — the cluster's
// byte-determinism contract is that these are exactly the bytes a
// single-node granula-serve would have written.
func (rt *Router) writeProxied(w http.ResponseWriter, res proxyResult) {
	for _, k := range []string{"Content-Type", "ETag", "Retry-After", "X-Granula-Expected-Seq"} {
		if v := res.header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.Header().Set(ShardHeader, res.node.ID)
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// definitive reports whether a result should be returned to the client
// as-is rather than failed over: any HTTP response below 500 that is
// not a 404/409 miss, plus — pastMisses — the misses themselves.
func retriableStatus(status int) bool {
	return status >= 500 || status == http.StatusNotFound || status == http.StatusConflict
}

// boundCtx derives the request context the whole routed attempt chain
// runs under. A client-supplied X-Granula-Deadline (absolute Unix
// milliseconds) becomes a real context deadline, so failover attempts
// stop the moment the client's budget is spent — a slow shard cannot
// make the router exceed the client's timeout by retrying elsewhere.
func (rt *Router) boundCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if h := r.Header.Get(DeadlineHeader); h != "" {
		if ms, err := strconv.ParseInt(h, 10, 64); err == nil && ms > 0 {
			return context.WithDeadline(r.Context(), time.UnixMilli(ms))
		}
	}
	return context.WithCancel(r.Context())
}

// routeOrder applies the failure detector's verdicts to a replica set:
// owners marked Down are demoted to the tail (kept as last resorts —
// the detector can be wrong), everything else keeps its ring order.
// For writes this is automatic promotion — with the primary down, the
// next ring owner becomes the first (and under hinted handoff,
// quorum-satisfying) target. Suspect nodes keep their position: a
// latency spike must not reorder routing, only confirmed death does.
// countPromotions, when true, counts a demoted former head.
func (rt *Router) routeOrder(owners []Node, countPromotions bool) []Node {
	if rt.det == nil || len(owners) < 2 {
		return owners
	}
	live := make([]Node, 0, len(owners))
	var dead []Node
	for _, n := range owners {
		if rt.det.Down(n.ID) {
			dead = append(dead, n)
		} else {
			live = append(live, n)
		}
	}
	if len(dead) == 0 || len(live) == 0 {
		return owners
	}
	if countPromotions && dead[0].ID == owners[0].ID {
		rt.metrics.countPromotion()
	}
	return append(live, dead...)
}

// observe feeds a proxy outcome to the failure detector, passively.
// Only transport-level failures count as misses — a shard answering
// any HTTP status, even 5xx, is alive (it may be degraded read-only,
// which is not death and must not trigger promotion).
func (rt *Router) observe(n Node, res proxyResult) {
	if rt.det == nil {
		return
	}
	rt.det.Observe(n.ID, res.err == nil)
}

// tryOwners forwards the request to owners in order until one returns a
// non-retriable response. Retriable results (transport errors, 5xx, and
// — when failoverMisses — 404/409 from replicas that may simply not
// hold the record yet) fail over to the next owner and are counted
// against the shard that failed, bounded by the per-request retry
// budget and the request deadline (see boundCtx). When a later owner
// serves a 2xx after an earlier one answered 404, the missing replica
// is queued for read-repair. If every attempted owner fails, the
// least-bad response is returned: a definitive client error beats a
// 5xx beats a transport error; a spent deadline answers 504.
// onServe, when non-nil, observes the result that was served
// successfully.
func (rt *Router) tryOwners(w http.ResponseWriter, r *http.Request, owners []Node, method, pathq string, body []byte, failoverMisses bool, onServe func(proxyResult)) {
	ctx, cancel := rt.boundCtx(r)
	defer cancel()
	var (
		best      *proxyResult // least-bad failed answer
		missed404 []Node       // owners that answered 404, repair targets
	)
	rank := func(res proxyResult) int {
		switch {
		case res.err != nil:
			return 0
		case res.status >= 500:
			return 1
		default:
			return 2 // definitive HTTP answer (e.g. 404 everywhere)
		}
	}
	for i, n := range owners {
		if i > 0 && rt.budget >= 0 && i > rt.budget {
			break // retry budget spent; answer with the least-bad result
		}
		if ctx.Err() != nil {
			rt.metrics.countExhausted()
			writeRouterError(w, http.StatusGatewayTimeout,
				"deadline exceeded after %d attempts for %s %s", i, method, pathq)
			return
		}
		res := rt.forward(ctx, n, method, pathq, body, r.Header)
		rt.observe(n, res)
		retry := res.err != nil || res.status >= 500 ||
			(failoverMisses && retriableStatus(res.status))
		if res.err == nil && res.status == http.StatusNotModified {
			// 304 is a success: the shard validated the client's ETag.
			retry = false
		}
		if retry && res.err != nil && ctx.Err() != nil {
			// The transport error is (or masks) the deadline expiring;
			// report the timeout rather than a misleading 502.
			rt.metrics.countFailover(n.ID)
			rt.metrics.countExhausted()
			writeRouterError(w, http.StatusGatewayTimeout,
				"deadline exceeded after %d attempts for %s %s", i+1, method, pathq)
			return
		}
		if !retry {
			if res.status < 300 && len(missed404) > 0 {
				rt.scheduleRepairs(r.PathValue("id"), res.node, missed404)
			}
			if onServe != nil {
				onServe(res)
			}
			rt.writeProxied(w, res)
			return
		}
		if res.err == nil && res.status == http.StatusNotFound {
			missed404 = append(missed404, n)
		}
		rt.metrics.countFailover(n.ID)
		if best == nil || rank(res) > rank(*best) {
			cp := res
			best = &cp
		}
	}
	rt.metrics.countExhausted()
	if best == nil || best.err != nil {
		writeRouterError(w, http.StatusBadGateway, "no shard reachable for %s %s", method, pathq)
		return
	}
	rt.writeProxied(w, *best)
}

// handleSubmit routes POST /jobs to the job's primary, failing over
// down the replica set when the primary is unreachable or degraded. A
// request without an ID gets a router-assigned one first — placement
// needs the ID before any shard sees the request.
func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxProxyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if ok := isMaxBytes(err, &tooBig); ok {
			writeRouterError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeRouterError(w, http.StatusBadRequest, "read request: %v", err)
		return
	}
	var peek struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &peek); err != nil {
		writeRouterError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if peek.ID == "" {
		// Rewrite the body with an assigned ID. The roundtrip through a
		// generic map keeps every client field; the shards re-validate.
		var fields map[string]any
		if err := json.Unmarshal(body, &fields); err != nil {
			writeRouterError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		peek.ID = fmt.Sprintf("job-r%06d", rt.seq.Add(1))
		fields["id"] = peek.ID
		if body, err = json.Marshal(fields); err != nil {
			writeRouterError(w, http.StatusInternalServerError, "rewrite request: %v", err)
			return
		}
	}
	owners := rt.routeOrder(rt.m.Owners(peek.ID), true)
	rt.tryOwners(w, r, owners, http.MethodPost, "/jobs", body, false, nil)
}

func isMaxBytes(err error, target **http.MaxBytesError) bool {
	mbe, ok := err.(*http.MaxBytesError)
	if ok {
		*target = mbe
	}
	return ok
}

// handleStatus routes GET /jobs/{id} primary-first: the primary's
// executor holds the authoritative lifecycle state; replicas answer
// from their store fallback when the primary is down.
func (rt *Router) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rt.tryOwners(w, r, rt.routeOrder(rt.m.Owners(id), false), http.MethodGet, "/jobs/"+id, nil, true, nil)
}

// handleCancel routes DELETE /jobs/{id} primary-first; only the shard
// whose executor queued the job can cancel it.
func (rt *Router) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rt.tryOwners(w, r, rt.routeOrder(rt.m.Owners(id), false), http.MethodDelete, "/jobs/"+id, nil, true, nil)
}

// handleRead serves the job-scoped read endpoints (/archive, /query,
// /viz/*) with follower reads: the replica set is rotated per request
// so every replica's response cache stays warm and read throughput
// scales with R, with failover (and repair of 404 replicas) when the
// chosen follower misses. Every RepairEvery-th successful read also
// revalidates the served ETag against another replica in the
// background, catching divergence that failover alone would not
// surface.
func (rt *Router) handleRead(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	owners := rt.m.Owners(id)
	if len(owners) > 1 {
		start := int(rt.rr.Add(1)) % len(owners)
		rotated := make([]Node, 0, len(owners))
		rotated = append(rotated, owners[start:]...)
		rotated = append(rotated, owners[:start]...)
		owners = rotated
	}
	// Detector demotion applies after rotation: follower reads still
	// spread across the live replicas, but a Down node never takes the
	// first attempt.
	owners = rt.routeOrder(owners, false)
	pathq := r.URL.Path
	if r.URL.RawQuery != "" {
		pathq += "?" + r.URL.RawQuery
	}

	// Divergence probe bookkeeping happens before the response is
	// written so the probe sees exactly what was served.
	probe := rt.repairN > 0 && len(owners) > 1 && rt.reads.Add(1)%uint64(rt.repairN) == 0

	var served *proxyResult
	rt.tryOwners(w, r, owners, http.MethodGet, pathq, nil, true, func(res proxyResult) { served = &res })
	if probe && served != nil && served.status == http.StatusOK {
		etag := served.header.Get("ETag")
		if etag != "" {
			other := rt.otherOwner(owners, served.node)
			if other.ID != "" {
				rt.repairWG.Add(1)
				go rt.probeDivergence(id, pathq, etag, served.node, other)
			}
		}
	}
}

// otherOwner picks the replica after served in the set, for probing.
func (rt *Router) otherOwner(owners []Node, served Node) Node {
	for i, n := range owners {
		if n.ID == served.ID {
			return owners[(i+1)%len(owners)]
		}
	}
	if len(owners) > 0 {
		return owners[0]
	}
	return Node{}
}

// probeDivergence revalidates a served ETag against another replica. A
// 304 means the replicas agree byte-for-byte. A 200 with a different
// ETag, or a 404, means the replica diverged (stale version or missing
// record) and a version-directed repair is dispatched.
func (rt *Router) probeDivergence(id, pathq, etag string, served, other Node) {
	defer rt.repairWG.Done()
	ctx, cancel := context.WithTimeout(context.Background(), rt.repairT)
	defer cancel()
	hdr := http.Header{}
	hdr.Set("If-None-Match", etag)
	res := rt.forward(ctx, other, http.MethodGet, pathq, nil, hdr)
	if res.err != nil {
		rt.metrics.countProbe(false)
		return
	}
	divergent := res.status == http.StatusNotFound ||
		(res.status == http.StatusOK && res.header.Get("ETag") != etag)
	rt.metrics.countProbe(divergent)
	if divergent {
		rt.repairPair(id, served, other)
	}
}

// scheduleRepairs queues background repairs pushing id's record from
// the shard that served it to every replica that answered 404.
func (rt *Router) scheduleRepairs(id string, from Node, missing []Node) {
	if id == "" {
		return
	}
	for _, n := range missing {
		rt.repairWG.Add(1)
		go func(n Node) {
			defer rt.repairWG.Done()
			rt.repairPair(id, from, n)
		}(n)
	}
}

// repairPair converges two replicas on a job record: it exports the
// record from both sides and pushes the newer version to the older (or
// the only copy to the empty side). The replicate endpoint is
// idempotent by (ID, version), so racing repairs and replication
// retries are harmless.
func (rt *Router) repairPair(id string, a, b Node) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.repairT)
	defer cancel()
	exA, okA := rt.export(ctx, a, id)
	exB, okB := rt.export(ctx, b, id)
	switch {
	case okA && (!okB || exA.Version > exB.Version):
		rt.pushRepair(ctx, b, exA)
	case okB && (!okA || exB.Version > exA.Version):
		rt.pushRepair(ctx, a, exB)
	}
}

// export fetches a shard's replica record for id.
func (rt *Router) export(ctx context.Context, n Node, id string) (ReplicaRecord, bool) {
	res := rt.forward(ctx, n, http.MethodGet, ExportPathPrefix+id, nil, http.Header{})
	if res.err != nil || res.status != http.StatusOK {
		return ReplicaRecord{}, false
	}
	var rec ReplicaRecord
	if err := json.Unmarshal(res.body, &rec); err != nil {
		return ReplicaRecord{}, false
	}
	return rec, true
}

// pushRepair replicates a record onto a shard and counts the repair.
func (rt *Router) pushRepair(ctx context.Context, n Node, rec ReplicaRecord) {
	buf, err := json.Marshal(rec)
	if err != nil {
		return
	}
	hdr := http.Header{}
	hdr.Set("Content-Type", "application/json")
	res := rt.forward(ctx, n, http.MethodPost, ReplicatePath, buf, hdr)
	if res.err == nil && res.status == http.StatusOK {
		rt.metrics.countRepair()
	}
}

// handleList fans GET /jobs out to every shard and merges the states
// sorted by job ID. Unreachable shards are skipped — the merged listing
// is the union of the live shards' views and carries a header naming
// any shard that did not answer.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	type shardList struct {
		node Node
		jobs []json.RawMessage
		err  error
	}
	results := make([]shardList, len(rt.m.Shards))
	var wg sync.WaitGroup
	for i, n := range rt.m.Shards {
		wg.Add(1)
		go func(i int, n Node) {
			defer wg.Done()
			res := rt.forward(r.Context(), n, http.MethodGet, "/jobs", nil, r.Header)
			if res.err != nil || res.status != http.StatusOK {
				results[i] = shardList{node: n, err: fmt.Errorf("unreachable")}
				return
			}
			var lr struct {
				Jobs []json.RawMessage `json:"jobs"`
			}
			if err := json.Unmarshal(res.body, &lr); err != nil {
				results[i] = shardList{node: n, err: err}
				return
			}
			results[i] = shardList{node: n, jobs: lr.Jobs}
		}(i, n)
	}
	wg.Wait()

	type keyed struct {
		id  string
		raw json.RawMessage
	}
	var all []keyed
	var down []string
	for _, res := range results {
		if res.err != nil {
			down = append(down, res.node.ID)
			continue
		}
		for _, raw := range res.jobs {
			var peek struct {
				ID string `json:"id"`
			}
			json.Unmarshal(raw, &peek)
			all = append(all, keyed{id: peek.ID, raw: raw})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })
	jobs := make([]json.RawMessage, 0, len(all))
	for _, k := range all {
		jobs = append(jobs, k.raw)
	}
	if len(down) > 0 {
		sort.Strings(down)
		w.Header()["X-Granula-Shards-Down"] = []string{fmt.Sprint(down)}
	}
	out := struct {
		Count int               `json:"count"`
		Jobs  []json.RawMessage `json:"jobs"`
	}{Count: len(jobs), Jobs: jobs}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		writeRouterError(w, http.StatusInternalServerError, "merge listings: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(buf, '\n'))
}

// handleIngest routes POST /ingest/{id} to the job's primary, failing
// over only on transport errors and 5xx — a live stream is stateful on
// whichever shard accepted its first batch, so 404/409 answers are
// definitive, not misses to retry elsewhere. If the primary dies
// mid-stream a failed-over batch lands on a replica with no stream
// state and answers 409 with the expected sequence 1; the client's
// replay from the start is idempotent and rebuilds the stream there.
func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxIngestProxyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if isMaxBytes(err, &tooBig) {
			writeRouterError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeRouterError(w, http.StatusBadRequest, "read request: %v", err)
		return
	}
	rt.tryOwners(w, r, rt.routeOrder(rt.m.Owners(id), true), http.MethodPost, "/ingest/"+id, body, false, nil)
}

// handleWatch passes GET /watch/{id} through as a live SSE stream:
// frames are relayed to the client with an immediate flush per chunk,
// never buffered. Failover is connect-time only — owners are tried in
// order until one accepts the tail (the stream usually lives on the
// primary; 404/409 from a shard without it fails over to the next) —
// because switching shards mid-stream could replay or skip frames. A
// dropped tail is resumed by the client reconnecting with
// Last-Event-ID, which is forwarded.
func (rt *Router) handleWatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	pathq := r.URL.Path
	if r.URL.RawQuery != "" {
		pathq += "?" + r.URL.RawQuery
	}
	if r.URL.Query().Get("poll") == "1" {
		// Long-poll fallback: the shard answers one buffered JSON batch,
		// so the ordinary failover path applies — no streaming relay.
		rt.tryOwners(w, r, rt.routeOrder(rt.m.Owners(id), false), http.MethodGet, pathq, nil, false, nil)
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeRouterError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	var best *proxyResult
	for _, n := range rt.routeOrder(rt.m.Owners(id), false) {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, n.URL+pathq, nil)
		if err != nil {
			writeRouterError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		for _, k := range []string{"Last-Event-ID", "Accept"} {
			if v := r.Header.Get(k); v != "" {
				req.Header.Set(k, v)
			}
		}
		start := time.Now()
		resp, err := rt.streamClient.Do(req)
		rt.metrics.countRequest(n.ID, time.Since(start).Seconds())
		if rt.det != nil {
			rt.det.Observe(n.ID, err == nil)
		}
		if err != nil {
			rt.metrics.countFailover(n.ID)
			if best == nil {
				best = &proxyResult{node: n, err: err}
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			// Buffered relay candidate; retriable answers fail over.
			buf, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			res := proxyResult{node: n, status: resp.StatusCode, header: resp.Header, body: buf}
			if resp.StatusCode >= 500 || retriableStatus(resp.StatusCode) {
				rt.metrics.countFailover(n.ID)
				if best == nil || best.err != nil || best.status >= 500 {
					best = &res
				}
				continue
			}
			rt.writeProxied(w, res)
			return
		}
		// Connected: relay the event stream chunk by chunk, flushing
		// each so frames reach the client the moment the shard emits
		// them. No failover past this point.
		defer resp.Body.Close()
		h := w.Header()
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			h.Set("Content-Type", ct)
		}
		h.Set("Cache-Control", "no-store")
		h.Set(ShardHeader, n.ID)
		w.WriteHeader(http.StatusOK)
		flusher.Flush()
		buf := make([]byte, 4096)
		for {
			nr, rerr := resp.Body.Read(buf)
			if nr > 0 {
				if _, werr := w.Write(buf[:nr]); werr != nil {
					return
				}
				flusher.Flush()
			}
			if rerr != nil {
				return
			}
		}
	}
	rt.metrics.countExhausted()
	if best == nil || best.err != nil {
		writeRouterError(w, http.StatusBadGateway, "no shard reachable for GET %s", pathq)
		return
	}
	rt.writeProxied(w, *best)
}

// handleDiff routes POST /diff to the baseline job's primary. Both jobs
// must live on that shard's replica set — with R >= 2 most pairs do;
// cross-shard pairs answer 404 from the owning shard and are documented
// as a router limitation.
func (rt *Router) handleDiff(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxProxyBytes))
	if err != nil {
		writeRouterError(w, http.StatusBadRequest, "read request: %v", err)
		return
	}
	var peek struct {
		BaselineID string `json:"baselineId"`
	}
	if err := json.Unmarshal(body, &peek); err != nil {
		writeRouterError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if peek.BaselineID == "" {
		writeRouterError(w, http.StatusBadRequest, "diff request needs a baselineId")
		return
	}
	rt.tryOwners(w, r, rt.routeOrder(rt.m.Owners(peek.BaselineID), false), http.MethodPost, "/diff", body, false, nil)
}

// shardHealth is one shard's row in the router's /cluster view.
type shardHealth struct {
	ID       string          `json:"id"`
	URL      string          `json:"url"`
	Status   string          `json:"status"`             // up | down (this probe)
	Detector string          `json:"detector,omitempty"` // up | suspect | down (hysteresis verdict)
	Health   json.RawMessage `json:"health,omitempty"`
}

// clusterView is the router's /cluster response: the full map plus live
// per-shard health.
type clusterView struct {
	Mode   string        `json:"mode"`
	Map    *Map          `json:"map"`
	Shards []shardHealth `json:"shards"`
}

// probeShards polls every shard's /healthz concurrently.
func (rt *Router) probeShards(ctx context.Context) []shardHealth {
	ctx, cancel := context.WithTimeout(ctx, rt.healthT)
	defer cancel()
	out := make([]shardHealth, len(rt.m.Shards))
	var wg sync.WaitGroup
	for i, n := range rt.m.Shards {
		wg.Add(1)
		go func(i int, n Node) {
			defer wg.Done()
			sh := shardHealth{ID: n.ID, URL: n.URL, Status: "down"}
			if rt.det != nil {
				sh.Detector = rt.det.State(n.ID).String()
			}
			res := rt.forward(ctx, n, http.MethodGet, "/healthz", nil, http.Header{})
			if res.err == nil && res.status == http.StatusOK && json.Valid(res.body) {
				sh.Status = "up"
				sh.Health = res.body
			}
			out[i] = sh
		}(i, n)
	}
	wg.Wait()
	return out
}

func (rt *Router) handleCluster(w http.ResponseWriter, r *http.Request) {
	view := clusterView{Mode: "router", Map: rt.m, Shards: rt.probeShards(r.Context())}
	buf, err := json.MarshalIndent(view, "", "  ")
	if err != nil {
		writeRouterError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(buf, '\n'))
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	shards := rt.probeShards(r.Context())
	up := 0
	for _, s := range shards {
		if s.Status == "up" {
			up++
		}
	}
	status := "ok"
	if up < len(shards) {
		status = "degraded"
	}
	if up == 0 {
		status = "down"
	}
	out := struct {
		Status     string `json:"status"`
		Shards     int    `json:"shards"`
		Reachable  int    `json:"reachable"`
		MapVersion uint64 `json:"mapVersion"`
	}{Status: status, Shards: len(shards), Reachable: up, MapVersion: rt.m.Version}
	buf, _ := json.MarshalIndent(out, "", "  ")
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(buf, '\n'))
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.metrics.WritePrometheus(w, rt.m.Version, len(rt.m.Shards))
}
