package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// ---------------------------------------------------------------------
// In-memory test doubles for the durable interfaces.

// memJournal is an in-memory HintJournal with the same supersede
// semantics the service-layer journal implements.
type memJournal struct {
	mu    sync.Mutex
	hints map[string]map[string]HintRecord // target -> job ID -> newest hint
}

func newMemJournal() *memJournal {
	return &memJournal{hints: map[string]map[string]HintRecord{}}
}

func (j *memJournal) AppendHint(rec HintRecord) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	byID := j.hints[rec.Target]
	if byID == nil {
		byID = map[string]HintRecord{}
		j.hints[rec.Target] = byID
	}
	if cur, ok := byID[rec.ID]; !ok || rec.Version >= cur.Version {
		byID[rec.ID] = rec
	}
	return nil
}

func (j *memJournal) HintTargets() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]string, 0, len(j.hints))
	for t, byID := range j.hints {
		if len(byID) > 0 {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

func (j *memJournal) PendingHints(target string) ([]HintRecord, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]HintRecord, 0, len(j.hints[target]))
	for _, h := range j.hints[target] {
		out = append(out, h)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out, nil
}

func (j *memJournal) DeleteHint(target, id string, version uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if cur, ok := j.hints[target][id]; ok && cur.Version <= version {
		delete(j.hints[target], id)
	}
	return nil
}

func (j *memJournal) HintCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for _, byID := range j.hints {
		n += len(byID)
	}
	return n
}

// memStore is an in-memory LocalReplicaStore for anti-entropy tests.
type memStore struct {
	mu   sync.Mutex
	recs map[string]ReplicaRecord
}

func newMemStore() *memStore { return &memStore{recs: map[string]ReplicaRecord{}} }

func (s *memStore) Digest() []DigestEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DigestEntry, 0, len(s.recs))
	for id, r := range s.recs {
		out = append(out, DigestEntry{ID: id, Version: r.Version})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (s *memStore) ExportRecord(id string) (ReplicaRecord, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.recs[id]
	return r, ok, nil
}

func (s *memStore) ApplyRecord(rec ReplicaRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.recs[rec.ID]; !ok || rec.Version > cur.Version {
		s.recs[rec.ID] = rec
	}
	return nil
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// detectorMap builds a map whose node URLs are never dialed — for tests
// that drive the detector purely through Observe.
func detectorMap(t *testing.T, ids ...string) *Map {
	t.Helper()
	nodes := make([]Node, len(ids))
	for i, id := range ids {
		nodes[i] = Node{ID: id, URL: "http://127.0.0.1:1"}
	}
	m, err := NewMap(1, nodes, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// ---------------------------------------------------------------------
// Failure detector.

func TestDetectorHysteresis(t *testing.T) {
	m := detectorMap(t, "s1", "s2")
	met := NewSelfHealMetrics()
	d := NewDetector(m, "", DetectorOptions{Metrics: met})
	defer d.Close() // safe without Start

	// One miss is noise: still Up.
	d.Observe("s1", false)
	if got := d.State("s1"); got != NodeUp {
		t.Fatalf("after 1 miss: %v, want up", got)
	}
	// Second consecutive miss crosses SuspectAfter.
	d.Observe("s1", false)
	if got := d.State("s1"); got != NodeSuspect {
		t.Fatalf("after 2 misses: %v, want suspect", got)
	}
	// Third miss: still only suspect — Down needs DownAfter.
	d.Observe("s1", false)
	if got := d.State("s1"); got != NodeSuspect {
		t.Fatalf("after 3 misses: %v, want suspect", got)
	}
	d.Observe("s1", false)
	if !d.Down("s1") {
		t.Fatalf("after 4 misses: %v, want down", d.State("s1"))
	}
	// One lucky probe must not resurrect a confirmed corpse.
	d.Observe("s1", true)
	if got := d.State("s1"); got != NodeDown {
		t.Fatalf("after 1 hit: %v, want still down", got)
	}
	d.Observe("s1", true)
	if got := d.State("s1"); got != NodeUp {
		t.Fatalf("after 2 hits: %v, want up", got)
	}

	if got := met.Transitions(NodeSuspect); got != 1 {
		t.Fatalf("suspect transitions = %d, want 1", got)
	}
	if got := met.Transitions(NodeDown); got != 1 {
		t.Fatalf("down transitions = %d, want 1", got)
	}
	if got := met.Transitions(NodeUp); got != 1 {
		t.Fatalf("up transitions = %d, want 1", got)
	}

	// A success between misses resets the consecutive count: three
	// misses broken by an ack never reach Down.
	for i := 0; i < 6; i++ {
		d.Observe("s2", false)
		d.Observe("s2", false)
		d.Observe("s2", false)
		d.Observe("s2", true)
		d.Observe("s2", true)
	}
	if d.Down("s2") {
		t.Fatal("interrupted miss runs must not reach down")
	}

	// Unknown nodes are ignored, not tracked.
	d.Observe("ghost", false)
	if got := d.State("ghost"); got != NodeUp {
		t.Fatalf("unknown node state = %v, want up", got)
	}
}

func TestDetectorProbeLoopMarksDownAndRecovers(t *testing.T) {
	shards, m, _ := newFakeCluster(t, 3, 2, 1, 0)
	d := NewDetector(m, "", DetectorOptions{Interval: 5 * time.Millisecond})
	d.Start()
	defer d.Close()

	shards[1].failing.Store(true)
	waitFor(t, 5*time.Second, "s2 marked down", func() bool { return d.Down(shards[1].id) })

	// The healthy shards never degraded.
	for _, fs := range []*fakeShard{shards[0], shards[2]} {
		if got := d.State(fs.id); got != NodeUp {
			t.Fatalf("%s = %v, want up", fs.id, got)
		}
	}
	snap := d.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d rows, want 3", len(snap))
	}
	for _, ns := range snap {
		want := "up"
		if ns.ID == shards[1].id {
			want = "down"
		}
		if ns.Status != want {
			t.Fatalf("snapshot %s = %q, want %q", ns.ID, ns.Status, want)
		}
	}

	// Recovery: the node answers again and climbs back to Up.
	shards[1].failing.Store(false)
	waitFor(t, 5*time.Second, "s2 back up", func() bool { return d.State(shards[1].id) == NodeUp })
}

func TestDetectorSelfIsNeverProbed(t *testing.T) {
	shards, m, _ := newFakeCluster(t, 2, 2, 1, 0)
	// The shard-side detector passes its own ID; even with the local
	// process "failing" it must never mark itself down.
	d := NewDetector(m, shards[0].id, DetectorOptions{Interval: 5 * time.Millisecond})
	d.Start()
	defer d.Close()
	shards[0].failing.Store(true)
	shards[1].failing.Store(true)
	waitFor(t, 5*time.Second, "peer marked down", func() bool { return d.Down(shards[1].id) })
	if got := d.State(shards[0].id); got != NodeUp {
		t.Fatalf("self state = %v, want up (a node does not suspect itself)", got)
	}
}

func TestDetectorFlapNeverReachesDown(t *testing.T) {
	// A flapping node — bursts of misses shorter than DownAfter,
	// interleaved with successes — oscillates Up <-> Suspect but must
	// never be promoted around. This is the hysteresis contract: only
	// sustained silence is death.
	m := detectorMap(t, "s1", "s2", "s3")
	met := NewSelfHealMetrics()
	d := NewDetector(m, "", DetectorOptions{Metrics: met})
	defer d.Close()
	rt := NewRouter(m, RouterOptions{Detector: d})

	owners := m.Owners("job-flap")
	for round := 0; round < 20; round++ {
		// Three misses: Suspect (DownAfter is 4).
		for i := 0; i < 3; i++ {
			d.Observe(owners[0].ID, false)
		}
		if d.Down(owners[0].ID) {
			t.Fatalf("round %d: flapping node marked down", round)
		}
		// Suspect keeps ring order — no promotion, no reorder.
		ordered := rt.routeOrder(owners, true)
		for i := range owners {
			if ordered[i].ID != owners[i].ID {
				t.Fatalf("round %d: suspect node reordered routing: %v", round, ordered)
			}
		}
		d.Observe(owners[0].ID, true)
		d.Observe(owners[0].ID, true)
		if got := d.State(owners[0].ID); got != NodeUp {
			t.Fatalf("round %d: state after recovery = %v, want up", round, got)
		}
	}
	if got := met.Transitions(NodeDown); got != 0 {
		t.Fatalf("down transitions during flapping = %d, want 0", got)
	}
	if got := rt.Metrics().Promotions(); got != 0 {
		t.Fatalf("promotions during flapping = %d, want 0", got)
	}
}

// ---------------------------------------------------------------------
// Hint records and digests (the fuzzed wire formats).

func TestHintRecordRoundTrip(t *testing.T) {
	h := HintRecord{Target: "s2", ID: "job-1", Version: 3, Payload: json.RawMessage(`{"id":"job-1","state":"done"}`)}
	buf, err := EncodeHintRecord(h)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeHintRecord(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Target != h.Target || got.ID != h.ID || got.Version != h.Version || !bytes.Equal(got.Payload, h.Payload) {
		t.Fatalf("round trip mismatch: %+v != %+v", got, h)
	}
}

func TestHintRecordInvalid(t *testing.T) {
	cases := map[string]HintRecord{
		"no target":   {ID: "j", Version: 1, Payload: json.RawMessage(`{}`)},
		"no id":       {Target: "s2", Version: 1, Payload: json.RawMessage(`{}`)},
		"version 0":   {Target: "s2", ID: "j", Payload: json.RawMessage(`{}`)},
		"no payload":  {Target: "s2", ID: "j", Version: 1},
		"bad payload": {Target: "s2", ID: "j", Version: 1, Payload: json.RawMessage(`{`)},
		"bad utf8":    {Target: "\xff", ID: "j", Version: 1, Payload: json.RawMessage(`{}`)},
	}
	for name, h := range cases {
		if _, err := EncodeHintRecord(h); err == nil {
			t.Errorf("%s: encode accepted invalid hint %+v", name, h)
		}
	}
	if _, err := DecodeHintRecord([]byte(`not json`)); err == nil {
		t.Error("decode accepted non-JSON input")
	}
}

func TestDigestRoundTrip(t *testing.T) {
	entries := []DigestEntry{{ID: "a", Version: 1}, {ID: "b", Version: 7}, {ID: "c", Version: 2}}
	buf, err := EncodeDigest(entries)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDigest(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("round trip length %d != %d", len(got), len(entries))
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], entries[i])
		}
	}
	// An empty digest is valid and encodes as [] (not null).
	buf, err = EncodeDigest(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != "[]" {
		t.Fatalf("empty digest encodes as %q, want []", buf)
	}
}

func TestDigestInvalid(t *testing.T) {
	cases := map[string][]DigestEntry{
		"empty id":  {{ID: "", Version: 1}},
		"version 0": {{ID: "a", Version: 0}},
		"unsorted":  {{ID: "b", Version: 1}, {ID: "a", Version: 1}},
		"duplicate": {{ID: "a", Version: 1}, {ID: "a", Version: 2}},
		"bad utf8":  {{ID: "\xff", Version: 1}},
	}
	for name, entries := range cases {
		if _, err := EncodeDigest(entries); err == nil {
			t.Errorf("%s: encode accepted invalid digest %+v", name, entries)
		}
	}
}

// ---------------------------------------------------------------------
// Sloppy quorum (replicator + hint journal).

func TestReplicatorSloppyQuorum(t *testing.T) {
	shards, m, _ := newFakeCluster(t, 3, 3, 2, 0)
	const id = "job-sloppy"
	owners := m.Owners(id)
	self := owners[0].ID
	journal := newMemJournal()
	sh := NewSelfHealMetrics()
	rep, err := NewReplicator(self, m, ReplicatorOptions{Hints: journal, SelfHeal: sh})
	if err != nil {
		t.Fatal(err)
	}

	// Both followers dead. Strict quorum would fail (1 ack < W=2);
	// sloppy quorum journals durable hints that count toward W.
	for _, n := range owners[1:] {
		byID(shards, n.ID).failing.Store(true)
	}
	payload := []byte(`{"id":"job-sloppy","state":"done"}`)
	if err := rep.ReplicateJob(context.Background(), id, 1, payload); err != nil {
		t.Fatalf("sloppy quorum write failed: %v", err)
	}
	// The call returns at quorum (1 ack + 1 hint); the second follower's
	// hint is journaled by its push goroutine moments later.
	waitFor(t, 5*time.Second, "both hints journaled", func() bool { return journal.HintCount() == 2 })
	wantTargets := []string{owners[1].ID, owners[2].ID}
	sort.Strings(wantTargets)
	if got := journal.HintTargets(); !equalStrings(got, wantTargets) {
		t.Fatalf("hint targets = %v, want %v", got, wantTargets)
	}
	for _, target := range wantTargets {
		hints, _ := journal.PendingHints(target)
		if len(hints) != 1 || hints[0].ID != id || hints[0].Version != 1 || !bytes.Equal(hints[0].Payload, payload) {
			t.Fatalf("hints for %s = %+v, want the missed write verbatim", target, hints)
		}
	}
	waitFor(t, 5*time.Second, "recorded hint counters", func() bool {
		recorded, _ := sh.Hints()
		return recorded == 2
	})
	if reached, missed := rep.Metrics().Quorums(); reached != 1 || missed != 0 {
		t.Fatalf("quorum outcomes = (%d reached, %d missed), want (1, 0)", reached, missed)
	}
}

func TestReplicatorDetectorShortCircuitsToHint(t *testing.T) {
	shards, m, _ := newFakeCluster(t, 3, 3, 2, 0)
	const id = "job-short-circuit"
	owners := m.Owners(id)
	self := owners[0].ID
	corpse := owners[2].ID

	d := NewDetector(m, self, DetectorOptions{})
	defer d.Close()
	for i := 0; i < 4; i++ {
		d.Observe(corpse, false)
	}
	journal := newMemJournal()
	rep, err := NewReplicator(self, m, ReplicatorOptions{Hints: journal, Detector: d})
	if err != nil {
		t.Fatal(err)
	}

	before := byID(shards, corpse).hits.Load()
	if err := rep.ReplicateJob(context.Background(), id, 1, []byte(`{"x":1}`)); err != nil {
		t.Fatalf("replicate: %v", err)
	}
	// The write never waited on the corpse: no HTTP attempt, straight
	// to the journal. (The corpse is actually healthy here — the point
	// is the detector's verdict short-circuits, not reachability.)
	if got := byID(shards, corpse).hits.Load(); got != before {
		t.Fatalf("down-marked follower was contacted (%d requests)", got-before)
	}
	hints, _ := journal.PendingHints(corpse)
	if len(hints) != 1 || hints[0].ID != id {
		t.Fatalf("hints for down follower = %+v, want 1 for %s", hints, id)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------
// Hint drainer.

func TestDrainerReplaysHints(t *testing.T) {
	shards, m, _ := newFakeCluster(t, 3, 3, 2, 0)
	journal := newMemJournal()
	sh := NewSelfHealMetrics()
	payload := func(i int) json.RawMessage {
		return json.RawMessage(fmt.Sprintf(`{"id":"job-%d","state":"done"}`, i))
	}
	for i, target := range []string{shards[1].id, shards[1].id, shards[2].id} {
		if err := journal.AppendHint(HintRecord{
			Target: target, ID: fmt.Sprintf("job-%d", i), Version: uint64(i + 1), Payload: payload(i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	// A hint whose target left the map is unreachable garbage: skipped,
	// never delivered, never an error.
	journal.AppendHint(HintRecord{Target: "ghost", ID: "job-x", Version: 1, Payload: json.RawMessage(`{}`)})

	dr := NewDrainer(m, journal, DrainerOptions{Metrics: sh})
	if got := dr.DrainOnce(context.Background()); got != 3 {
		t.Fatalf("drained = %d, want 3", got)
	}
	if got := journal.HintCount(); got != 1 { // the ghost hint remains
		t.Fatalf("pending after drain = %d, want 1 (the unroutable ghost)", got)
	}
	if _, drained := sh.Hints(); drained != 3 {
		t.Fatalf("drained counter = %d, want 3", drained)
	}
	// The replayed bytes are the journaled payloads verbatim.
	applied := byID(shards, shards[1].id).appliedRecords()
	if len(applied) != 2 {
		t.Fatalf("target got %d replays, want 2", len(applied))
	}
	for _, rec := range applied {
		if rec.Version == 0 || !json.Valid(rec.Payload) {
			t.Fatalf("replayed record malformed: %+v", rec)
		}
	}
	// A second pass finds nothing to do.
	if got := dr.DrainOnce(context.Background()); got != 0 {
		t.Fatalf("second drain delivered %d, want 0", got)
	}
}

func TestDrainerSkipsDownTargetsAndKeepsHints(t *testing.T) {
	shards, m, _ := newFakeCluster(t, 3, 3, 2, 0)
	journal := newMemJournal()
	journal.AppendHint(HintRecord{Target: shards[1].id, ID: "job-keep", Version: 1, Payload: json.RawMessage(`{"x":1}`)})

	d := NewDetector(m, "", DetectorOptions{})
	defer d.Close()
	for i := 0; i < 4; i++ {
		d.Observe(shards[1].id, false)
	}
	dr := NewDrainer(m, journal, DrainerOptions{Detector: d})
	before := shards[1].hits.Load()
	if got := dr.DrainOnce(context.Background()); got != 0 {
		t.Fatalf("drained to a down target: %d", got)
	}
	if got := shards[1].hits.Load(); got != before {
		t.Fatal("drainer contacted a down target")
	}
	if journal.HintCount() != 1 {
		t.Fatal("hint for a down target was dropped")
	}

	// The target recovers; the next pass delivers and clears.
	d.Observe(shards[1].id, true)
	d.Observe(shards[1].id, true)
	if got := dr.DrainOnce(context.Background()); got != 1 {
		t.Fatalf("post-recovery drain = %d, want 1", got)
	}
	if journal.HintCount() != 0 {
		t.Fatal("delivered hint not deleted")
	}
}

func TestDrainerKeepsHintOnFailedReplay(t *testing.T) {
	shards, m, _ := newFakeCluster(t, 2, 2, 1, 0)
	journal := newMemJournal()
	sh := NewSelfHealMetrics()
	journal.AppendHint(HintRecord{Target: shards[1].id, ID: "job-retry", Version: 1, Payload: json.RawMessage(`{"x":1}`)})
	shards[1].failing.Store(true)

	dr := NewDrainer(m, journal, DrainerOptions{Metrics: sh})
	if got := dr.DrainOnce(context.Background()); got != 0 {
		t.Fatalf("drained through a 500: %d", got)
	}
	if journal.HintCount() != 1 {
		t.Fatal("hint dropped on failed replay")
	}
	// Durable until delivered: the peer comes back, the hint drains.
	shards[1].failing.Store(false)
	if got := dr.DrainOnce(context.Background()); got != 1 {
		t.Fatalf("post-recovery drain = %d, want 1", got)
	}
	if applied := shards[1].appliedRecords(); len(applied) != 1 || applied[0].ID != "job-retry" {
		t.Fatalf("target applied %+v, want job-retry", applied)
	}
}

// ---------------------------------------------------------------------
// Anti-entropy.

func TestAntiEntropyConverges(t *testing.T) {
	peer := newFakeShard("s2")
	t.Cleanup(peer.srv.Close)
	nodes := []Node{{ID: "s1", URL: "http://127.0.0.1:1"}, {ID: "s2", URL: peer.srv.URL}}
	m, err := NewMap(1, nodes, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	store := newMemStore()
	// Local is newer on job-a, only local holds job-c, only the peer
	// holds job-b. R=2 over two nodes: everything is co-owned.
	store.ApplyRecord(ReplicaRecord{ID: "job-a", Version: 2, Payload: json.RawMessage(`{"v":2}`)})
	store.ApplyRecord(ReplicaRecord{ID: "job-c", Version: 1, Payload: json.RawMessage(`{"v":1}`)})
	peer.setJob("job-a", fakeJob{body: `{"v":1}`, version: 1})
	peer.setJob("job-b", fakeJob{body: `{"peer":true}`, version: 1})

	sh := NewSelfHealMetrics()
	ae, err := NewAntiEntropy("s1", m, store, AntiEntropyOptions{Metrics: sh})
	if err != nil {
		t.Fatal(err)
	}
	pushed, pulled := ae.SweepOnce(context.Background())
	if pushed != 2 || pulled != 1 {
		t.Fatalf("sweep = (%d pushed, %d pulled), want (2, 1)", pushed, pulled)
	}

	// The peer converged to the local versions, byte for byte.
	peer.mu.Lock()
	a, b, c := peer.jobs["job-a"], peer.jobs["job-b"], peer.jobs["job-c"]
	peer.mu.Unlock()
	if a.version != 2 || a.body != `{"v":2}` {
		t.Fatalf("peer job-a = %+v, want v2 bytes", a)
	}
	if c.version != 1 || c.body != `{"v":1}` {
		t.Fatalf("peer job-c = %+v, want pushed copy", c)
	}
	if b.version != 1 {
		t.Fatalf("peer job-b disturbed: %+v", b)
	}
	// And the local store pulled the peer-only record verbatim.
	rec, ok, _ := store.ExportRecord("job-b")
	if !ok || rec.Version != 1 || string(rec.Payload) != `{"peer":true}` {
		t.Fatalf("local job-b = %+v (ok=%v), want the peer's bytes", rec, ok)
	}

	// Convergence is a fixed point: the next sweep moves nothing.
	if p, q := ae.SweepOnce(context.Background()); p != 0 || q != 0 {
		t.Fatalf("second sweep = (%d, %d), want (0, 0)", p, q)
	}
	if sweeps, _, _ := sh.Sweeps(); sweeps != 2 {
		t.Fatalf("sweep counter = %d, want 2", sweeps)
	}
}

func TestAntiEntropyOnlyExchangesCoOwnedRecords(t *testing.T) {
	// With R=1 no two shards share a replica set, so even wildly
	// divergent digests exchange nothing: convergence is defined over
	// replica sets, not the union of all shards.
	peer := newFakeShard("s2")
	t.Cleanup(peer.srv.Close)
	nodes := []Node{{ID: "s1", URL: "http://127.0.0.1:1"}, {ID: "s2", URL: peer.srv.URL}}
	m, err := NewMap(1, nodes, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	store := newMemStore()
	store.ApplyRecord(ReplicaRecord{ID: "job-mine", Version: 5, Payload: json.RawMessage(`{}`)})
	peer.setJob("job-theirs", fakeJob{body: `{}`, version: 3})

	ae, err := NewAntiEntropy("s1", m, store, AntiEntropyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p, q := ae.SweepOnce(context.Background()); p != 0 || q != 0 {
		t.Fatalf("R=1 sweep exchanged (%d, %d), want (0, 0)", p, q)
	}
	if _, ok, _ := store.ExportRecord("job-theirs"); ok {
		t.Fatal("pulled a record the local shard does not own")
	}
}

func TestAntiEntropySkipsDownPeers(t *testing.T) {
	peer := newFakeShard("s2")
	t.Cleanup(peer.srv.Close)
	nodes := []Node{{ID: "s1", URL: "http://127.0.0.1:1"}, {ID: "s2", URL: peer.srv.URL}}
	m, err := NewMap(1, nodes, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDetector(m, "s1", DetectorOptions{})
	defer d.Close()
	for i := 0; i < 4; i++ {
		d.Observe("s2", false)
	}
	store := newMemStore()
	store.ApplyRecord(ReplicaRecord{ID: "job-a", Version: 1, Payload: json.RawMessage(`{}`)})

	ae, err := NewAntiEntropy("s1", m, store, AntiEntropyOptions{Detector: d})
	if err != nil {
		t.Fatal(err)
	}
	before := peer.hits.Load()
	if p, q := ae.SweepOnce(context.Background()); p != 0 || q != 0 {
		t.Fatalf("sweep against a down peer = (%d, %d), want (0, 0)", p, q)
	}
	if got := peer.hits.Load(); got != before {
		t.Fatal("anti-entropy contacted a down peer")
	}
}

func TestAntiEntropyRejectsUnknownSelf(t *testing.T) {
	m := detectorMap(t, "s1", "s2")
	if _, err := NewAntiEntropy("ghost", m, newMemStore(), AntiEntropyOptions{}); err == nil {
		t.Fatal("anti-entropy accepted a self outside the map")
	}
}

// ---------------------------------------------------------------------
// Router: retry budget, deadline propagation, promotion.

func TestRouterRetryBudgetBoundsFailover(t *testing.T) {
	cases := []struct {
		budget   int
		attempts int64
	}{
		{budget: 0, attempts: 4},  // default: first try + 3 retries
		{budget: 1, attempts: 2},  // first try + 1 retry
		{budget: -1, attempts: 5}, // unlimited: every owner
	}
	for _, tc := range cases {
		shards, m, _ := newFakeCluster(t, 5, 5, 1, 0)
		rt := NewRouter(m, RouterOptions{RetryBudget: tc.budget})
		for _, fs := range shards {
			fs.failing.Store(true)
		}
		w := routerGet(t, rt, "/jobs/job-budget", nil)
		if w.Code != http.StatusInternalServerError {
			t.Fatalf("budget %d: answered %d, want the shards' 500 relayed", tc.budget, w.Code)
		}
		var total int64
		for _, fs := range shards {
			total += fs.hits.Load()
		}
		if total != tc.attempts {
			t.Fatalf("budget %d: %d shard attempts, want %d", tc.budget, total, tc.attempts)
		}
		if got := rt.Metrics().Failovers(); got != uint64(tc.attempts) {
			t.Fatalf("budget %d: failover counter = %d, want %d", tc.budget, got, tc.attempts)
		}
	}
}

func TestRouterDeadlineBoundsSlowShards(t *testing.T) {
	// Every owner is slow (400 ms per attempt) and the client allows
	// 120 ms. Without deadline propagation the router would burn
	// budget+1 shard timeouts; with it the request answers 504 within
	// the client's budget — a slow shard cannot make failover exceed
	// the client timeout.
	shards, m, _ := newFakeCluster(t, 3, 3, 1, 0)
	rt := NewRouter(m, RouterOptions{RetryBudget: -1})
	for _, fs := range shards {
		fs.delay.Store(int64(400 * time.Millisecond))
	}
	deadline := time.Now().Add(120 * time.Millisecond)
	start := time.Now()
	w := routerGet(t, rt, "/jobs/job-deadline", map[string]string{
		DeadlineHeader: strconv.FormatInt(deadline.UnixMilli(), 10),
	})
	elapsed := time.Since(start)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("slow cluster answered %d, want 504: %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "deadline exceeded") {
		t.Fatalf("504 body %q does not name the deadline", w.Body)
	}
	// Generous bound: well under even a single full shard delay chain,
	// and in the same order as the client budget.
	if elapsed > 350*time.Millisecond {
		t.Fatalf("router took %v, want ~the 120ms client budget", elapsed)
	}
}

func TestRouterPropagatesDeadlineToShards(t *testing.T) {
	shards, m, _ := newFakeCluster(t, 3, 2, 1, 0)
	rt := NewRouter(m, RouterOptions{})
	const id = "job-deadline-header"
	for _, n := range m.Owners(id) {
		byID(shards, n.ID).setJob(id, fakeJob{body: "{}", version: 1})
	}
	deadline := time.Now().Add(5 * time.Second).UnixMilli()
	w := routerGet(t, rt, "/jobs/"+id, map[string]string{
		DeadlineHeader: strconv.FormatInt(deadline, 10),
	})
	if w.Code != http.StatusOK {
		t.Fatalf("read = %d: %s", w.Code, w.Body)
	}
	var seen []string
	for _, fs := range shards {
		fs.mu.Lock()
		seen = append(seen, fs.deadlines...)
		fs.mu.Unlock()
	}
	if len(seen) == 0 {
		t.Fatal("no shard saw the propagated deadline header")
	}
	ms, err := strconv.ParseInt(seen[0], 10, 64)
	if err != nil {
		t.Fatalf("propagated deadline %q is not unix millis", seen[0])
	}
	// The shard sees (about) the client's absolute deadline, not a
	// router-invented one.
	if diff := ms - deadline; diff < -1000 || diff > 1000 {
		t.Fatalf("propagated deadline %d drifted %dms from the client's %d", ms, diff, deadline)
	}
}

func TestRouterPromotesPastDownPrimary(t *testing.T) {
	shards, m, _ := newFakeCluster(t, 3, 2, 1, 0)
	d := NewDetector(m, "", DetectorOptions{})
	defer d.Close()
	rt := NewRouter(m, RouterOptions{Detector: d})

	const id = "job-promote"
	owners := m.Owners(id)
	primary, secondary := owners[0], owners[1]
	for i := 0; i < 4; i++ {
		d.Observe(primary.ID, false)
	}

	body := fmt.Sprintf(`{"platform":"Giraph","algorithm":"BFS","id":%q}`, id)
	req := httptest.NewRequest(http.MethodPost, "/jobs", bytes.NewReader([]byte(body)))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, req)

	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", w.Code, w.Body)
	}
	if got := w.Header().Get(ShardHeader); got != secondary.ID {
		t.Fatalf("write served by %q, want promoted owner %q", got, secondary.ID)
	}
	// The corpse was never attempted — promotion, not failover.
	if got := byID(shards, primary.ID).submittedIDs(); len(got) != 0 {
		t.Fatalf("down primary still saw submits %v", got)
	}
	if got := rt.Metrics().Promotions(); got != 1 {
		t.Fatalf("promotions = %d, want 1", got)
	}

	// Reads route around the corpse too.
	byID(shards, secondary.ID).setJob(id, fakeJob{body: "{}", version: 1})
	for i := 0; i < 4; i++ {
		w := routerGet(t, rt, "/jobs/"+id+"/archive", nil)
		if w.Code != http.StatusOK {
			t.Fatalf("read %d = %d: %s", i, w.Code, w.Body)
		}
		if got := w.Header().Get(ShardHeader); got == primary.ID {
			t.Fatalf("read %d served by the down primary", i)
		}
	}

	// The primary recovers; writes return to it.
	d.Observe(primary.ID, true)
	d.Observe(primary.ID, true)
	req = httptest.NewRequest(http.MethodPost, "/jobs", bytes.NewReader([]byte(body)))
	req.Header.Set("Content-Type", "application/json")
	w = httptest.NewRecorder()
	rt.Handler().ServeHTTP(w, req)
	if got := w.Header().Get(ShardHeader); got != primary.ID {
		t.Fatalf("post-recovery write served by %q, want primary %q", got, primary.ID)
	}
}

// ---------------------------------------------------------------------
// Metrics exposition.

func TestSelfHealMetricsExposition(t *testing.T) {
	m := detectorMap(t, "s1", "s2")
	sh := NewSelfHealMetrics()
	d := NewDetector(m, "", DetectorOptions{Metrics: sh})
	defer d.Close()
	sh.SetDetector(d)
	sh.SetHintGauge(func() int { return 7 })
	for i := 0; i < 4; i++ {
		d.Observe("s2", false)
	}
	sh.countHintRecorded()
	sh.countHintDrain(true)
	sh.countSweep(2, 1)

	var buf bytes.Buffer
	sh.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`granula_selfheal_detector_transitions_total{to="down"} 1`,
		`granula_selfheal_hints_total{event="recorded"} 1`,
		`granula_selfheal_hints_total{event="drained"} 1`,
		`granula_selfheal_hints_pending 7`,
		`granula_selfheal_antientropy_total{event="sweeps"} 1`,
		`granula_selfheal_antientropy_total{event="pushed"} 2`,
		`granula_selfheal_node_state{node="s1"} 0`,
		`granula_selfheal_node_state{node="s2"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
