// Package shard turns granula-serve into a horizontally scaled cluster:
// a consistent-hash ring places job IDs onto N shard nodes, a versioned
// shard map describes the membership, a replicator fans acked archives
// out to R replicas with quorum (W) acks, and a thin stateless router
// (cmd/granula-router) proxies the public API onto the shards with
// follower reads, failover, and read-repair.
//
// The package deliberately depends on nothing in internal/service: the
// router speaks raw HTTP/JSON so the byte-determinism of the shard
// responses passes through untouched, and internal/service imports this
// package (Map, Ring, Replicator) for the shard-side write path.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the per-shard virtual-node count when a Map
// does not set one. 160 points per shard keeps the max/mean key load
// within ~1.25x on small clusters while the ring stays tiny (a few KiB).
const DefaultVirtualNodes = 160

// Ring is an immutable consistent-hash ring with virtual nodes. Every
// shard contributes vnodes points; a key is owned by the first point at
// or clockwise after its hash. Replicas are the next distinct shards in
// ring order, so adding or removing one shard only moves the keys
// adjacent to its points (the minimal-movement property the ring tests
// pin).
type Ring struct {
	points []ringPoint // sorted by hash
	shards []string    // distinct shard IDs, sorted
}

type ringPoint struct {
	hash  uint64
	shard string
}

// hashKey is the ring's hash function: FNV-1a 64 followed by a 64-bit
// avalanche finalizer (the MurmurHash3 fmix64 constants). Raw FNV-1a
// leaves the high bits of similar short strings poorly dispersed, and
// ring order sorts on exactly those bits — without the finalizer the
// vnode points cluster and shard loads spread as much as 0.4x–2x fair;
// with it they stay within a few percent. The function is stable across
// processes and platforms, which the cluster depends on — the router
// and every shard must agree on key placement from the map alone.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// NewRing builds a ring over the given shard IDs with vnodes virtual
// nodes per shard (< 1 selects DefaultVirtualNodes). Duplicate IDs are
// an error: a duplicated shard would silently double its key share.
func NewRing(ids []string, vnodes int) (*Ring, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("shard: ring needs at least one shard")
	}
	if vnodes < 1 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(ids))
	r := &Ring{points: make([]ringPoint, 0, len(ids)*vnodes)}
	for _, id := range ids {
		if id == "" {
			return nil, fmt.Errorf("shard: empty shard ID")
		}
		if seen[id] {
			return nil, fmt.Errorf("shard: duplicate shard ID %q", id)
		}
		seen[id] = true
		r.shards = append(r.shards, id)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hashKey(fmt.Sprintf("%s#%d", id, v)),
				shard: id,
			})
		}
	}
	sort.Strings(r.shards)
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Hash ties (astronomically rare with 64-bit FNV) break by shard
		// ID so the ring order is still deterministic everywhere.
		return a.shard < b.shard
	})
	return r, nil
}

// Shards returns the distinct shard IDs on the ring, sorted.
func (r *Ring) Shards() []string {
	out := make([]string, len(r.shards))
	copy(out, r.shards)
	return out
}

// Owners returns the n distinct shards responsible for key, in ring
// order starting at the key's successor point. The first owner is the
// key's primary; the rest are its replicas. n is clamped to the shard
// count.
func (r *Ring) Owners(key string, n int) []string {
	if n < 1 {
		n = 1
	}
	if n > len(r.shards) {
		n = len(r.shards)
	}
	h := hashKey(key)
	// First point with hash >= h, wrapping to 0.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for j := 0; len(out) < n && j < len(r.points); j++ {
		p := r.points[(i+j)%len(r.points)]
		if seen[p.shard] {
			continue
		}
		seen[p.shard] = true
		out = append(out, p.shard)
	}
	return out
}

// Primary returns the shard that owns key.
func (r *Ring) Primary(key string) string {
	return r.Owners(key, 1)[0]
}
