package query

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/archive"
)

// flattenDFS returns (op, depth) pairs in the depth-first order
// BuildColumns uses.
type opDepth struct {
	op    *archive.Operation
	depth int
}

func flattenDFS(job *archive.Job) []opDepth {
	var out []opDepth
	var walk func(op *archive.Operation, d int)
	walk = func(op *archive.Operation, d int) {
		out = append(out, opDepth{op, d})
		for _, ch := range op.Children {
			walk(ch, d+1)
		}
	}
	if job != nil && job.Root != nil {
		walk(job.Root, 0)
	}
	return out
}

// requireColumnsIdentical asserts two column sets are byte-identical:
// same rows (pointer-identical ops), same typed values, and the same
// interned symbol table.
func requireColumnsIdentical(t *testing.T, want, got *Columns) {
	t.Helper()
	if len(want.ops) != len(got.ops) {
		t.Fatalf("rows: want %d, got %d", len(want.ops), len(got.ops))
	}
	for i := range want.ops {
		if want.ops[i] != got.ops[i] {
			t.Fatalf("row %d: different operation (%q vs %q)", i, want.ops[i].ID, got.ops[i].ID)
		}
		if want.depth[i] != got.depth[i] || want.start[i] != got.start[i] ||
			want.end[i] != got.end[i] || want.dur[i] != got.dur[i] ||
			want.mission[i] != got.mission[i] || want.actor[i] != got.actor[i] ||
			want.id[i] != got.id[i] {
			t.Fatalf("row %d: column values differ", i)
		}
	}
	if len(want.syms.strs) != len(got.syms.strs) {
		t.Fatalf("symtab: want %d symbols, got %d", len(want.syms.strs), len(got.syms.strs))
	}
	for s := range want.syms.strs {
		if want.syms.strs[s] != got.syms.strs[s] || want.syms.finite[s] != got.syms.finite[s] {
			t.Fatalf("symbol %d differs: %q vs %q", s, want.syms.strs[s], got.syms.strs[s])
		}
		if want.syms.finite[s] && want.syms.floats[s] != got.syms.floats[s] {
			t.Fatalf("symbol %d float differs", s)
		}
	}
}

// TestAppendColumnsDFSOrderEqualsBuild pins the seal-equivalence
// property at the column layer: appending a finished tree's operations
// in depth-first order produces columns identical — rows, typed values,
// and symbol table — to a from-scratch BuildColumns.
func TestAppendColumnsDFSOrderEqualsBuild(t *testing.T) {
	jobs := []*archive.Job{testJob(), weirdJob(), randomJob(rand.New(rand.NewSource(7)), 300)}
	for _, job := range jobs {
		ac := NewAppendColumns()
		for _, od := range flattenDFS(job) {
			ac.Append(od.op, od.depth)
		}
		requireColumnsIdentical(t, BuildColumns(job), ac.Snapshot())
	}
}

// appendOracleSelect mirrors the tree walker's semantics over an
// explicit (op, depth) arrival order: filter with the parsed predicate,
// stable-sort with fieldValue/compareValues, truncate to the limit.
func appendOracleSelect(q *Query, rows []opDepth) []*archive.Operation {
	var kept []opDepth
	for _, od := range rows {
		if q.where == nil || q.where.eval(od.op, od.depth) {
			kept = append(kept, od)
		}
	}
	if q.orderBy != "" {
		key := func(od opDepth) string {
			s, _ := fieldValue(od.op, od.depth, q.orderBy)
			return s
		}
		sort.SliceStable(kept, func(i, j int) bool {
			c := compareValues(key(kept[i]), key(kept[j]))
			if q.desc {
				return c > 0
			}
			return c < 0
		})
	}
	out := make([]*archive.Operation, len(kept))
	for i, od := range kept {
		out[i] = od.op
	}
	if q.limit >= 0 && len(out) > q.limit {
		out = out[:q.limit]
	}
	return out
}

// TestAppendColumnsCompletionOrderOracle runs every oracle query over
// columns appended in a shuffled (completion-like) order and checks
// SelectColumns against an independent reimplementation of the tree
// walker's semantics over that same arrival order. This is the live
// /query contract: completed operations, arrival order, identical
// predicate and sort semantics.
func TestAppendColumnsCompletionOrderOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, job := range []*archive.Job{testJob(), weirdJob(), randomJob(rng, 200)} {
		rows := flattenDFS(job)
		rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
		ac := NewAppendColumns()
		for _, od := range rows {
			ac.Append(od.op, od.depth)
		}
		snap := ac.Snapshot()
		for _, qs := range oracleQueries {
			q, err := Parse(qs)
			if err != nil {
				t.Fatalf("parse %q: %v", qs, err)
			}
			assertSameOps(t, qs, appendOracleSelect(q, rows), q.SelectColumns(snap))
		}
	}
}

// TestAppendColumnsSnapshotIsolation proves a snapshot never observes
// rows appended after it was taken, and that concurrent appenders and
// queriers are race-free (run under -race).
func TestAppendColumnsSnapshotIsolation(t *testing.T) {
	job := randomJob(rand.New(rand.NewSource(3)), 500)
	rows := flattenDFS(job)
	ac := NewAppendColumns()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			queries := []string{`mission = Compute`, `duration > 5 order by start`, `actor ~ Worker limit 9`}
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := ac.Snapshot()
				n := snap.Rows()
				for _, qs := range queries {
					q, err := Parse(qs)
					if err != nil {
						t.Errorf("parse: %v", err)
						return
					}
					got := q.SelectColumns(snap)
					if len(got) > n {
						t.Errorf("snapshot of %d rows returned %d ops", n, len(got))
						return
					}
				}
				if snap.Rows() != n {
					t.Errorf("snapshot grew from %d to %d rows", n, snap.Rows())
					return
				}
			}
		}(int64(r))
	}
	for _, od := range rows {
		ac.Append(od.op, od.depth)
	}
	close(stop)
	wg.Wait()
	if ac.Rows() != len(rows) {
		t.Fatalf("appended %d rows, have %d", len(rows), ac.Rows())
	}
}

// BenchmarkAppendVsRebuild measures the point of the incremental index:
// per-event cost of append+snapshot+query versus rebuilding the full
// columns before each query, at a growing archive size.
func BenchmarkAppendVsRebuild(b *testing.B) {
	job := randomJob(rand.New(rand.NewSource(11)), 2000)
	rows := flattenDFS(job)
	q, err := Parse(`mission = Compute and duration > 1`)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ac := NewAppendColumns()
			for _, od := range rows {
				ac.Append(od.op, od.depth)
			}
			if got := q.SelectColumns(ac.Snapshot()); len(got) == 0 {
				b.Fatal("no rows matched")
			}
		}
	})
	b.Run("rebuild-per-batch", func(b *testing.B) {
		// Rebuild the columns once per 64-op ingest batch — the cost the
		// live /query path would pay without append mode.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var cols *Columns
			for n := 0; n < len(rows); n += 64 {
				cols = BuildColumns(job)
			}
			if got := q.SelectColumns(cols); len(got) == 0 {
				b.Fatal("no rows matched")
			}
		}
	})
}
