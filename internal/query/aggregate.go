// Aggregate execution: per-job partial aggregates, a canonical merge
// across jobs, and byte-deterministic rendering.
//
// Float sums are not associative, so the result of a distributed
// aggregation is DEFINED as the following canonical fold, and every
// execution path implements exactly it:
//
//  1. Per job, accumulators fold matching rows in depth-first row
//     order (the order the archive tree walks).
//  2. Across jobs, per-job partials fold in ascending job-ID order.
//
// The naive tree-walk oracle, the single-node segment scan, and the
// router's scatter-gather merge all produce the same fold, which is
// what makes their rendered bytes identical. Percentiles are EXACT,
// not sketched: partials carry the matching values themselves and the
// merge sorts the concatenation — see DESIGN.md for the contract and
// the sketch trade-off. Partials serialize floats as shortest
// round-trip strings ('g', -1), which survive JSON exactly (including
// NaN/Inf, which encoding/json would reject as numbers).
package query

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/archive"
)

// AggPartial is one aggregate's per-job partial state. Which fields
// are set depends on the function: sum/avg carry Sum, min/max carry
// Min or Max (the winning value's string form), percentiles carry the
// matched values, and count needs nothing beyond the group's row count.
type AggPartial struct {
	Sum  string   `json:"sum,omitempty"`
	Min  *string  `json:"min,omitempty"`
	Max  *string  `json:"max,omitempty"`
	Vals []string `json:"vals,omitempty"`
}

// GroupPartial is one group's per-job partial: the group key, the
// number of matching rows, and one partial per aggregate in the
// query's agg list.
type GroupPartial struct {
	Key  []string     `json:"key"`
	N    uint64       `json:"n"`
	Aggs []AggPartial `json:"aggs"`
}

// JobPartial is one job's contribution to a cross-job aggregation —
// the unit the router's scatter-gather ships between nodes.
type JobPartial struct {
	Job    string         `json:"job"`
	Pruned bool           `json:"pruned,omitempty"`
	Rows   int            `json:"rows"`
	Groups []GroupPartial `json:"groups,omitempty"`
}

// PrunedPartial is the contribution of a job whose segment the zone
// maps proved cannot contain a matching row.
func PrunedPartial(jobID string) JobPartial {
	return JobPartial{Job: jobID, Pruned: true}
}

// formatFloatWire is the exact-round-trip wire form for floats in
// partials ('g' keeps NaN/±Inf representable; -1 precision round-trips
// every float64 bit pattern except the NaN payload, which compareValues
// semantics never observe).
func formatFloatWire(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// --- per-frame execution ---

// aggregate accumulator modes; chosen per (function, field, frame).
const (
	amCount  = iota
	amSum    // sum and avg: fold a float sum in row order
	amMinNum // min over an all-finite numeric column
	amMaxNum // max over an all-finite numeric column
	amMinSym // min over an interned symbol column
	amMaxSym // max over an interned symbol column
	amMinStr // min via per-row string forms (job.*, info., non-finite numeric)
	amMaxStr // max via per-row string forms
	amPerc   // percentile: collect matching values
)

type frameAgg struct {
	mode int
	num  func(r int) float64
	str  func(r int) (string, bool)
	col  []uint32
}

type frameAcc struct {
	set  bool
	sum  float64
	numv float64
	sym  uint32
	strv string
	vals []float64
}

// allFinite reports whether every value in col is finite.
func allFinite(col []float64) bool {
	for _, v := range col {
		if !isFinite(v) {
			return false
		}
	}
	return true
}

// frameAggs resolves the query's agg list against a concrete frame.
func (q *Query) frameAggs(f *Frame) ([]frameAgg, error) {
	out := make([]frameAgg, len(q.aggs))
	for i, a := range q.aggs {
		switch a.fn {
		case "count":
			out[i] = frameAgg{mode: amCount}
		case "sum", "avg", "p50", "p95", "p99":
			num, err := f.numExtractor(a.field)
			if err != nil {
				return nil, err
			}
			mode := amSum
			if _, ok := percentileRank(a.fn); ok {
				mode = amPerc
			}
			out[i] = frameAgg{mode: mode, num: num}
		case "min", "max":
			ag, err := f.minMaxAgg(a)
			if err != nil {
				return nil, err
			}
			out[i] = ag
		default:
			return nil, fmt.Errorf("query: unknown aggregate %q", a.fn)
		}
	}
	return out, nil
}

// minMaxAgg picks the fastest sound representation for min/max on this
// frame: symbol-ID compare for interned columns, float compare for
// all-finite numeric columns, per-row string forms otherwise (the
// fallback has exactly compareValues semantics, like the others).
func (f *Frame) minMaxAgg(a aggSpec) (frameAgg, error) {
	isMin := a.fn == "min"
	lf := strings.ToLower(a.field)
	switch lf {
	case "mission":
		return symMinMax(isMin, f.Mission), nil
	case "actor":
		return symMinMax(isMin, f.Actor), nil
	case "id":
		return symMinMax(isMin, f.ID), nil
	case "duration", "start", "end", "depth":
		num, err := f.numExtractor(lf)
		if err != nil {
			return frameAgg{}, err
		}
		finite := true
		switch lf {
		case "duration":
			finite = allFinite(f.Dur)
		case "start":
			finite = allFinite(f.Start)
		case "end":
			finite = allFinite(f.End)
		}
		if finite {
			mode := amMaxNum
			if isMin {
				mode = amMinNum
			}
			return frameAgg{mode: mode, num: num}, nil
		}
	}
	if opsOnlyField(a.field) && f.Ops == nil {
		return frameAgg{}, fmt.Errorf("query: field %q requires operation details not stored in columnar segments", a.field)
	}
	field := a.field
	str := func(r int) (string, bool) { return f.fieldString(r, field) }
	mode := amMaxStr
	if isMin {
		mode = amMinStr
	}
	return frameAgg{mode: mode, str: str}, nil
}

func symMinMax(isMin bool, col []uint32) frameAgg {
	mode := amMaxSym
	if isMin {
		mode = amMinSym
	}
	return frameAgg{mode: mode, col: col}
}

// groupKeyer packs one row's group-by values into a comparable key.
// When the per-field value domains fit, the key is a packed uint64 of
// symbol IDs / depths — no per-row allocation; otherwise it falls back
// to a composite string.
type groupKeyer struct {
	packed bool
	cols   []keyCol
}

type keyCol struct {
	sym   []uint32 // symbol column, or
	depth []int32  // depth column; neither set for per-frame constants
	width uint
}

func buildKeyer(q *Query, f *Frame) groupKeyer {
	k := groupKeyer{packed: true}
	total := uint(0)
	for _, gf := range q.groupBy {
		lf := strings.ToLower(gf)
		var kc keyCol
		switch lf {
		case "mission":
			kc = keyCol{sym: f.Mission, width: bitsFor(len(f.Syms))}
		case "actor":
			kc = keyCol{sym: f.Actor, width: bitsFor(len(f.Syms))}
		case "id":
			kc = keyCol{sym: f.ID, width: bitsFor(len(f.Syms))}
		case "depth":
			max := int32(0)
			for _, d := range f.Depth {
				if d > max {
					max = d
				}
			}
			kc = keyCol{depth: f.Depth, width: bitsFor(int(max) + 1)}
		default:
			// job.* (constant per frame) contributes nothing to the
			// key; info./derived. force the string fallback.
			if opsOnlyField(gf) {
				k.packed = false
			}
			kc = keyCol{}
		}
		total += kc.width
		k.cols = append(k.cols, kc)
	}
	if total > 63 {
		k.packed = false
	}
	return k
}

// bitsFor returns the bits needed to represent values in [0, n).
func bitsFor(n int) uint {
	w := uint(0)
	for (1 << w) < n {
		w++
	}
	return w
}

func (k *groupKeyer) pack(r int) uint64 {
	key := uint64(0)
	for i := range k.cols {
		kc := &k.cols[i]
		key <<= kc.width
		switch {
		case kc.sym != nil:
			key |= uint64(kc.sym[r])
		case kc.depth != nil:
			key |= uint64(kc.depth[r])
		}
	}
	return key
}

// joinKey builds an unambiguous composite string key (length-prefixed
// components, so no separator collision).
func joinKey(parts []string) string {
	var sb strings.Builder
	for _, p := range parts {
		sb.WriteString(strconv.Itoa(len(p)))
		sb.WriteByte(':')
		sb.WriteString(p)
	}
	return sb.String()
}

// AggregateFrame scans one frame and returns the job's partial
// aggregate. The hot loop allocates O(distinct groups), not O(rows):
// group slots live in flat slices keyed by a packed integer key
// (percentile aggregates are the documented exception — they retain
// matching values, which is what makes the merge exact).
func (q *Query) AggregateFrame(f *Frame) (JobPartial, error) {
	jp := JobPartial{Job: f.Meta.ID}
	var ev rowEval
	if q.where != nil {
		var err error
		ev, err = compileFrameExpr(q.where, f)
		if err != nil {
			return jp, err
		}
	}
	aggs, err := q.frameAggs(f)
	if err != nil {
		return jp, err
	}
	keyer := buildKeyer(q, f)
	na := len(aggs)

	type slot struct {
		first int32
		n     uint64
	}
	var slots []slot
	var accs []frameAcc
	var lookupU map[uint64]int32
	var lookupS map[string]int32
	if keyer.packed {
		lookupU = make(map[uint64]int32)
	} else {
		lookupS = make(map[string]int32)
	}
	keyBuf := make([]string, len(q.groupBy))

	rows := f.Rows()
	for r := 0; r < rows; r++ {
		if ev != nil && !ev(r) {
			continue
		}
		jp.Rows++
		var si int32
		if keyer.packed {
			k := keyer.pack(r)
			s, ok := lookupU[k]
			if !ok {
				s = int32(len(slots))
				lookupU[k] = s
				slots = append(slots, slot{first: int32(r)})
				accs = append(accs, make([]frameAcc, na)...)
			}
			si = s
		} else {
			for gi, gf := range q.groupBy {
				keyBuf[gi], _ = f.fieldString(r, gf)
			}
			k := joinKey(keyBuf)
			s, ok := lookupS[k]
			if !ok {
				s = int32(len(slots))
				lookupS[k] = s
				slots = append(slots, slot{first: int32(r)})
				accs = append(accs, make([]frameAcc, na)...)
			}
			si = s
		}
		slots[si].n++
		base := int(si) * na
		for ai := range aggs {
			ag := &aggs[ai]
			acc := &accs[base+ai]
			switch ag.mode {
			case amCount:
			case amSum:
				acc.sum += ag.num(r)
			case amPerc:
				acc.vals = append(acc.vals, ag.num(r))
			case amMinNum:
				v := ag.num(r)
				if !acc.set || v < acc.numv {
					acc.set, acc.numv = true, v
				}
			case amMaxNum:
				v := ag.num(r)
				if !acc.set || v > acc.numv {
					acc.set, acc.numv = true, v
				}
			case amMinSym:
				id := ag.col[r]
				if !acc.set {
					acc.set, acc.sym = true, id
				} else if f.symCompare(id, acc.sym) < 0 {
					acc.sym = id
				}
			case amMaxSym:
				id := ag.col[r]
				if !acc.set {
					acc.set, acc.sym = true, id
				} else if f.symCompare(id, acc.sym) > 0 {
					acc.sym = id
				}
			case amMinStr:
				if v, ok := ag.str(r); ok && (!acc.set || compareValues(v, acc.strv) < 0) {
					acc.set, acc.strv = true, v
				}
			case amMaxStr:
				if v, ok := ag.str(r); ok && (!acc.set || compareValues(v, acc.strv) > 0) {
					acc.set, acc.strv = true, v
				}
			}
		}
	}

	jp.Groups = make([]GroupPartial, 0, len(slots))
	for si := range slots {
		key := make([]string, len(q.groupBy))
		for gi, gf := range q.groupBy {
			key[gi], _ = f.fieldString(int(slots[si].first), gf)
		}
		gp := GroupPartial{Key: key, N: slots[si].n, Aggs: make([]AggPartial, na)}
		for ai := range aggs {
			gp.Aggs[ai] = finalizePartial(f, &aggs[ai], &accs[si*na+ai])
		}
		jp.Groups = append(jp.Groups, gp)
	}
	sortGroupPartials(jp.Groups)
	return jp, nil
}

func finalizePartial(f *Frame, ag *frameAgg, acc *frameAcc) AggPartial {
	switch ag.mode {
	case amSum:
		return AggPartial{Sum: formatFloatWire(acc.sum)}
	case amPerc:
		vals := make([]string, len(acc.vals))
		for i, v := range acc.vals {
			vals[i] = formatFloatWire(v)
		}
		return AggPartial{Vals: vals}
	case amMinNum:
		if acc.set {
			s := formatNumField(acc.numv)
			return AggPartial{Min: &s}
		}
	case amMaxNum:
		if acc.set {
			s := formatNumField(acc.numv)
			return AggPartial{Max: &s}
		}
	case amMinSym:
		if acc.set {
			s := f.Syms[acc.sym]
			return AggPartial{Min: &s}
		}
	case amMaxSym:
		if acc.set {
			s := f.Syms[acc.sym]
			return AggPartial{Max: &s}
		}
	case amMinStr:
		if acc.set {
			s := acc.strv
			return AggPartial{Min: &s}
		}
	case amMaxStr:
		if acc.set {
			s := acc.strv
			return AggPartial{Max: &s}
		}
	}
	return AggPartial{}
}

// cmpKeyComponent is the total order on group-key components:
// compareValues first (numeric when both sides are finite numbers),
// raw string compare to break compareValues ties between distinct
// strings ("1" vs "1.0").
func cmpKeyComponent(a, b string) int {
	if c := compareValues(a, b); c != 0 {
		return c
	}
	return strings.Compare(a, b)
}

func cmpKey(a, b []string) int {
	for i := range a {
		if i >= len(b) {
			return 1
		}
		if c := cmpKeyComponent(a[i], b[i]); c != 0 {
			return c
		}
	}
	if len(a) < len(b) {
		return -1
	}
	return 0
}

func sortGroupPartials(gs []GroupPartial) {
	sort.Slice(gs, func(i, j int) bool { return cmpKey(gs[i].Key, gs[j].Key) < 0 })
}

// --- tree-walk oracle ---

// AggregateTree computes the same partial as AggregateFrame by walking
// the archive tree with per-row string conversions — the slow,
// obviously-correct oracle the randomized equivalence suites compare
// the columnar path against.
func (q *Query) AggregateTree(job *archive.Job, meta JobMeta) (JobPartial, error) {
	jp := JobPartial{Job: meta.ID}
	type acc struct {
		set  bool
		sum  float64
		strv string
		vals []float64
	}
	type group struct {
		key  []string
		n    uint64
		accs []acc
	}
	groups := map[string]*group{}
	var order []*group

	fieldStr := func(op *archive.Operation, d int, field string) (string, bool) {
		lf := strings.ToLower(field)
		if strings.HasPrefix(lf, "job.") {
			return meta.Field(lf)
		}
		return fieldValue(op, d, field)
	}
	numVal := func(op *archive.Operation, d int, field string) float64 {
		switch strings.ToLower(field) {
		case "duration":
			return op.Duration()
		case "start":
			return op.Start
		case "end":
			return op.End
		case "depth":
			return float64(d)
		}
		v, _ := meta.numField(strings.ToLower(field))
		return v
	}
	var evalWhere func(e expr, op *archive.Operation, d int) bool
	evalWhere = func(e expr, op *archive.Operation, d int) bool {
		switch t := e.(type) {
		case orExpr:
			return evalWhere(t.a, op, d) || evalWhere(t.b, op, d)
		case andExpr:
			return evalWhere(t.a, op, d) && evalWhere(t.b, op, d)
		case notExpr:
			return !evalWhere(t.a, op, d)
		case predicate:
			if strings.HasPrefix(strings.ToLower(t.field), "job.") {
				v, ok := meta.Field(strings.ToLower(t.field))
				return ok && evalStringPredicate(v, t.op, t.value)
			}
			return t.eval(op, d)
		}
		return false
	}

	if job != nil && job.Root != nil {
		var walk func(op *archive.Operation, d int)
		walk = func(op *archive.Operation, d int) {
			if q.where == nil || evalWhere(q.where, op, d) {
				jp.Rows++
				key := make([]string, len(q.groupBy))
				for gi, gf := range q.groupBy {
					key[gi], _ = fieldStr(op, d, gf)
				}
				jk := joinKey(key)
				g, ok := groups[jk]
				if !ok {
					g = &group{key: key, accs: make([]acc, len(q.aggs))}
					groups[jk] = g
					order = append(order, g)
				}
				g.n++
				for ai, a := range q.aggs {
					ac := &g.accs[ai]
					switch a.fn {
					case "count":
					case "sum", "avg":
						ac.sum += numVal(op, d, a.field)
					case "p50", "p95", "p99":
						ac.vals = append(ac.vals, numVal(op, d, a.field))
					case "min":
						if v, ok := fieldStr(op, d, a.field); ok && (!ac.set || compareValues(v, ac.strv) < 0) {
							ac.set, ac.strv = true, v
						}
					case "max":
						if v, ok := fieldStr(op, d, a.field); ok && (!ac.set || compareValues(v, ac.strv) > 0) {
							ac.set, ac.strv = true, v
						}
					}
				}
			}
			for _, c := range op.Children {
				walk(c, d+1)
			}
		}
		walk(job.Root, 0)
	}

	jp.Groups = make([]GroupPartial, 0, len(order))
	for _, g := range order {
		gp := GroupPartial{Key: g.key, N: g.n, Aggs: make([]AggPartial, len(q.aggs))}
		for ai, a := range q.aggs {
			ac := &g.accs[ai]
			switch a.fn {
			case "sum", "avg":
				gp.Aggs[ai] = AggPartial{Sum: formatFloatWire(ac.sum)}
			case "p50", "p95", "p99":
				vals := make([]string, len(ac.vals))
				for i, v := range ac.vals {
					vals[i] = formatFloatWire(v)
				}
				gp.Aggs[ai] = AggPartial{Vals: vals}
			case "min":
				if ac.set {
					s := ac.strv
					gp.Aggs[ai] = AggPartial{Min: &s}
				}
			case "max":
				if ac.set {
					s := ac.strv
					gp.Aggs[ai] = AggPartial{Max: &s}
				}
			}
		}
		jp.Groups = append(jp.Groups, gp)
	}
	sortGroupPartials(jp.Groups)
	return jp, nil
}

// --- merge + render ---

// AggGroupView is one rendered result group.
type AggGroupView struct {
	Key        []string          `json:"key"`
	Rows       uint64            `json:"rows"`
	Aggregates map[string]string `json:"aggregates"`
}

// AggResponse is the rendered aggregation result. Every JSON field is
// a function of the data alone: groups are ordered by the query's
// order-by (group key ascending by default), aggregate maps render
// with sorted keys, and all numbers format through the fixed rules the
// row queries already use. Scanned/Pruned describe how the engine got
// there (zone-map pruning is an execution detail the tree-walk oracle
// doesn't share), so they are excluded from the body and surface as
// response headers instead — keeping oracle and segment-path bodies
// byte-identical.
type AggResponse struct {
	Query      string         `json:"query"`
	Scope      string         `json:"scope"`
	Job        string         `json:"job,omitempty"`
	GroupBy    []string       `json:"groupBy"`
	Aggregates []string       `json:"aggregates"`
	Jobs       int            `json:"jobs"`
	Rows       int            `json:"rows"`
	Groups     []AggGroupView `json:"groups"`

	Scanned int `json:"-"`
	Pruned  int `json:"-"`
}

type mergedAgg struct {
	sum  float64
	mm   *string
	vals []float64
}

type mergedGroup struct {
	key  []string
	n    uint64
	aggs []mergedAgg
}

// MergePartials folds per-job partials into the final response value.
// Partials are first sorted by job ID and deduplicated (replicas of a
// job produce byte-identical partials, so keeping the first is
// well-defined) — that gives every caller, single-node or scatter-
// gather, the same canonical fold order.
func (q *Query) MergePartials(raw, scope, jobID string, partials []JobPartial) (*AggResponse, error) {
	sort.SliceStable(partials, func(i, j int) bool { return partials[i].Job < partials[j].Job })
	deduped := partials[:0:0]
	for i, jp := range partials {
		if i > 0 && jp.Job == partials[i-1].Job {
			continue
		}
		deduped = append(deduped, jp)
	}

	resp := &AggResponse{
		Query:      raw,
		Scope:      scope,
		Job:        jobID,
		GroupBy:    q.GroupFields(),
		Aggregates: q.AggNames(),
		Jobs:       len(deduped),
	}
	groups := map[string]*mergedGroup{}
	var order []*mergedGroup
	for _, jp := range deduped {
		if jp.Pruned {
			resp.Pruned++
			continue
		}
		resp.Scanned++
		resp.Rows += jp.Rows
		for _, gp := range jp.Groups {
			if len(gp.Key) != len(q.groupBy) || len(gp.Aggs) != len(q.aggs) {
				return nil, fmt.Errorf("query: malformed partial from job %q", jp.Job)
			}
			jk := joinKey(gp.Key)
			g, ok := groups[jk]
			if !ok {
				g = &mergedGroup{key: gp.Key, aggs: make([]mergedAgg, len(q.aggs))}
				groups[jk] = g
				order = append(order, g)
			}
			g.n += gp.N
			for ai, a := range q.aggs {
				ma := &g.aggs[ai]
				ap := gp.Aggs[ai]
				switch a.fn {
				case "count":
				case "sum", "avg":
					v, err := strconv.ParseFloat(ap.Sum, 64)
					if err != nil {
						return nil, fmt.Errorf("query: malformed sum partial %q", ap.Sum)
					}
					ma.sum += v
				case "p50", "p95", "p99":
					for _, vs := range ap.Vals {
						v, err := strconv.ParseFloat(vs, 64)
						if err != nil {
							return nil, fmt.Errorf("query: malformed percentile partial %q", vs)
						}
						ma.vals = append(ma.vals, v)
					}
				case "min":
					if ap.Min != nil && (ma.mm == nil || compareValues(*ap.Min, *ma.mm) < 0) {
						ma.mm = ap.Min
					}
				case "max":
					if ap.Max != nil && (ma.mm == nil || compareValues(*ap.Max, *ma.mm) > 0) {
						ma.mm = ap.Max
					}
				}
			}
		}
	}

	resp.Groups = make([]AggGroupView, 0, len(order))
	for _, g := range order {
		view := AggGroupView{Key: g.key, Rows: g.n, Aggregates: map[string]string{}}
		for ai, a := range q.aggs {
			ma := &g.aggs[ai]
			switch a.fn {
			case "count":
				view.Aggregates[a.name()] = strconv.FormatUint(g.n, 10)
			case "sum":
				view.Aggregates[a.name()] = formatNumField(ma.sum)
			case "avg":
				view.Aggregates[a.name()] = formatNumField(ma.sum / float64(g.n))
			case "p50", "p95", "p99":
				if len(ma.vals) > 0 {
					rank, _ := percentileRank(a.fn)
					view.Aggregates[a.name()] = formatNumField(percentile(ma.vals, rank))
				}
			case "min", "max":
				if ma.mm != nil {
					view.Aggregates[a.name()] = *ma.mm
				}
			}
		}
		resp.Groups = append(resp.Groups, view)
	}
	q.orderGroups(resp.Groups)
	if q.limit >= 0 && len(resp.Groups) > q.limit {
		resp.Groups = resp.Groups[:q.limit]
	}
	return resp, nil
}

// RenderAggregate merges partials and renders the response with the
// exact byte format the service's JSON writer produces (two-space
// indent plus trailing newline), so the router can reproduce a
// single-node response byte for byte.
func (q *Query) RenderAggregate(raw, scope, jobID string, partials []JobPartial) ([]byte, error) {
	resp, err := q.MergePartials(raw, scope, jobID, partials)
	if err != nil {
		return nil, err
	}
	return RenderAggResponse(resp)
}

// RenderAggResponse renders an already-merged response with the same
// byte format. Callers that need the response value (for the scanned/
// pruned headers) merge first and render second; the bytes are
// identical to RenderAggregate's.
func RenderAggResponse(resp *AggResponse) ([]byte, error) {
	b, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// percentile is the exact nearest-rank percentile: the value at rank
// ceil(p/100*n) of the sorted values. Sorting uses a deterministic
// total order (NaN first, then -0 before +0, then ascending).
func percentile(vals []float64, rank int) float64 {
	sortFloatsDet(vals)
	idx := int(math.Ceil(float64(rank) / 100 * float64(len(vals))))
	if idx < 1 {
		idx = 1
	}
	if idx > len(vals) {
		idx = len(vals)
	}
	return vals[idx-1]
}

func sortFloatsDet(vals []float64) {
	sort.Slice(vals, func(i, j int) bool {
		a, b := vals[i], vals[j]
		an, bn := math.IsNaN(a), math.IsNaN(b)
		if an || bn {
			return an && !bn
		}
		if a == 0 && b == 0 {
			return math.Signbit(a) && !math.Signbit(b)
		}
		return a < b
	})
}

// orderGroups applies the query's ordering: by default the group key
// ascending; `order by <group field>` orders by that component;
// `order by <agg>` orders by the aggregate's value with compareValues
// semantics. Ties (and the default) always fall back to the full group
// key ascending, which is a total order — so the result order is fully
// determined by the data, never by map iteration or sort internals.
func (q *Query) orderGroups(groups []AggGroupView) {
	cmp := func(a, b AggGroupView) int { return 0 }
	switch {
	case q.orderAgg != nil:
		name := q.orderAgg.name()
		cmp = func(a, b AggGroupView) int {
			va, oka := a.Aggregates[name]
			vb, okb := b.Aggregates[name]
			if oka != okb {
				// Groups with the aggregate present order before
				// groups where it is absent (e.g. min over a field no
				// row carries).
				if oka {
					return -1
				}
				return 1
			}
			if !oka {
				return 0
			}
			return compareValues(va, vb)
		}
	case q.orderBy != "":
		gi := 0
		for i, f := range q.groupBy {
			if strings.EqualFold(f, q.orderBy) {
				gi = i
			}
		}
		cmp = func(a, b AggGroupView) int { return cmpKeyComponent(a.Key[gi], b.Key[gi]) }
	}
	sort.Slice(groups, func(i, j int) bool {
		c := cmp(groups[i], groups[j])
		if q.desc {
			c = -c
		}
		if c != 0 {
			return c < 0
		}
		return cmpKey(groups[i].Key, groups[j].Key) < 0
	})
}
