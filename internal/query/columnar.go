package query

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/archive"
)

// Columns is the columnar projection of one job's operation tree: the
// tree flattened into typed parallel arrays in depth-first order, with
// mission, actor, and ID strings interned into a symbol table. It is
// built once when a job enters the store and treated as immutable, so
// repeated queries evaluate predicates against typed columns — an
// integer compare or a precomputed per-symbol bitmap per row — instead
// of converting fields to strings per operation the way the tree walker
// does. The tree walker (Query.Select) remains the oracle:
// Query.SelectColumns returns exactly the same operations in the same
// order.
type Columns struct {
	ops     []*archive.Operation
	depth   []int32
	start   []float64
	end     []float64
	dur     []float64
	mission []uint32
	actor   []uint32
	id      []uint32
	syms    symtab
}

// symtab interns strings to dense IDs. Alongside each symbol it keeps
// the numeric interpretation compareValues would give it (value and
// whether it parses as a finite float), so compiled predicates and sort
// keys never re-parse a symbol.
type symtab struct {
	ids    map[string]uint32
	strs   []string
	floats []float64
	finite []bool
}

func (st *symtab) intern(s string) uint32 {
	if id, ok := st.ids[s]; ok {
		return id
	}
	id := uint32(len(st.strs))
	st.ids[s] = id
	st.strs = append(st.strs, s)
	f, err := strconv.ParseFloat(s, 64)
	ok := err == nil && isFinite(f)
	st.floats = append(st.floats, f)
	st.finite = append(st.finite, ok)
	return id
}

// BuildColumns flattens job's operation tree into columns. A nil or
// empty job yields zero rows.
func BuildColumns(job *archive.Job) *Columns {
	c := &Columns{syms: symtab{ids: map[string]uint32{}}}
	if job == nil || job.Root == nil {
		return c
	}
	var walk func(op *archive.Operation, d int32)
	walk = func(op *archive.Operation, d int32) {
		c.ops = append(c.ops, op)
		c.depth = append(c.depth, d)
		c.start = append(c.start, op.Start)
		c.end = append(c.end, op.End)
		c.dur = append(c.dur, op.Duration())
		c.mission = append(c.mission, c.syms.intern(op.Mission))
		c.actor = append(c.actor, c.syms.intern(op.Actor))
		c.id = append(c.id, c.syms.intern(op.ID))
		for _, ch := range op.Children {
			walk(ch, d+1)
		}
	}
	walk(job.Root, 0)
	return c
}

// Rows returns the number of operations in the columns.
func (c *Columns) Rows() int { return len(c.ops) }

// SelectColumns runs the query against the columnar projection and
// returns exactly what Select(job) would return for the job the columns
// were built from: the same operations, in the same order. The
// predicate tree is compiled once per call into row evaluators (cheap —
// a bitmap over the symbol table per string predicate), after which
// evaluation does no per-row string conversion on the built-in fields.
func (q *Query) SelectColumns(c *Columns) []*archive.Operation {
	if c == nil || len(c.ops) == 0 {
		return nil
	}
	var ev rowEval
	if q.where != nil {
		ev = compileExpr(q.where, c)
	}
	var out []*archive.Operation
	var rows []int32
	needRows := q.orderBy != ""
	for r := range c.ops {
		if ev == nil || ev(r) {
			out = append(out, c.ops[r])
			if needRows {
				rows = append(rows, int32(r))
			}
		}
	}
	if q.orderBy != "" && len(out) > 1 {
		q.sortByColumns(c, out, rows)
	}
	if q.limit >= 0 && len(out) > q.limit {
		out = out[:q.limit]
	}
	return out
}

// sortKey is one selected row's precomputed order-by key: the string
// form fieldValue would produce plus its numeric interpretation, so the
// comparator applies compareValues semantics (numeric when both sides
// are finite, lexical otherwise) without re-converting per comparison.
type sortKey struct {
	str string
	num float64
	ok  bool
}

func makeSortKey(c *Columns, row int32, field string) sortKey {
	// fieldValue is the oracle for the string form (including "" for an
	// absent info key, which the tree path sorts on as well).
	s, _ := fieldValue(c.ops[row], int(c.depth[row]), field)
	f, err := strconv.ParseFloat(s, 64)
	return sortKey{str: s, num: f, ok: err == nil && isFinite(f)}
}

func (q *Query) sortByColumns(c *Columns, out []*archive.Operation, rows []int32) {
	type pair struct {
		op  *archive.Operation
		key sortKey
	}
	pairs := make([]pair, len(out))
	for i := range out {
		pairs[i] = pair{op: out[i], key: makeSortKey(c, rows[i], q.orderBy)}
	}
	cmp := func(a, b sortKey) int {
		if a.ok && b.ok {
			switch {
			case a.num < b.num:
				return -1
			case a.num > b.num:
				return 1
			default:
				return 0
			}
		}
		return strings.Compare(a.str, b.str)
	}
	// The tree path's desc branch is `!less && compare != 0`, i.e.
	// compare > 0; stable sort preserves depth-first order on ties in
	// both directions, exactly like the oracle.
	if q.desc {
		sort.SliceStable(pairs, func(i, j int) bool { return cmp(pairs[i].key, pairs[j].key) > 0 })
	} else {
		sort.SliceStable(pairs, func(i, j int) bool { return cmp(pairs[i].key, pairs[j].key) < 0 })
	}
	for i := range pairs {
		out[i] = pairs[i].op
	}
}

// rowEval is a compiled predicate over one columns row.
type rowEval func(row int) bool

func compileExpr(e expr, c *Columns) rowEval {
	switch t := e.(type) {
	case orExpr:
		a, b := compileExpr(t.a, c), compileExpr(t.b, c)
		return func(r int) bool { return a(r) || b(r) }
	case andExpr:
		a, b := compileExpr(t.a, c), compileExpr(t.b, c)
		return func(r int) bool { return a(r) && b(r) }
	case notExpr:
		a := compileExpr(t.a, c)
		return func(r int) bool { return !a(r) }
	case predicate:
		return compilePredicate(t, c)
	}
	// Unreachable: the parser produces only the four expr kinds above.
	return func(r int) bool { return false }
}

func compilePredicate(pr predicate, c *Columns) rowEval {
	switch strings.ToLower(pr.field) {
	case "mission":
		return symbolPredicate(pr, c.syms.strs, c.syms.floats, c.syms.finite, c.mission)
	case "actor":
		return symbolPredicate(pr, c.syms.strs, c.syms.floats, c.syms.finite, c.actor)
	case "id":
		return symbolPredicate(pr, c.syms.strs, c.syms.floats, c.syms.finite, c.id)
	case "depth":
		return depthPredicate(pr, c.depth)
	case "duration":
		return compileNumericPredicate(pr, c.dur)
	case "start":
		return compileNumericPredicate(pr, c.start)
	case "end":
		return compileNumericPredicate(pr, c.end)
	}
	// info./derived. fields need a per-row map lookup either way, but
	// the prefix is stripped at compile time (fieldValue re-lowercases
	// the field name per call, which allocates). The prefix match is
	// case-sensitive exactly like fieldValue's.
	if key, ok := strings.CutPrefix(pr.field, "info."); ok {
		op, value := pr.op, pr.value
		return func(r int) bool {
			v, present := c.ops[r].Infos[key]
			return present && evalStringPredicate(v, op, value)
		}
	}
	if key, ok := strings.CutPrefix(pr.field, "derived."); ok {
		op, value := pr.op, pr.value
		return func(r int) bool {
			v, present := c.ops[r].Derived[key]
			return present && evalStringPredicate(v, op, value)
		}
	}
	// Unreachable for parsed queries (validateField admits only the
	// fields above, and a case-mismatched prefix like "Info.X" fails
	// both CutPrefixes on the tree path too); defer to the oracle.
	return func(r int) bool { return pr.eval(c.ops[r], int(c.depth[r])) }
}

// evalStringPredicate applies pr's operator to one candidate string,
// with exactly the semantics of predicate.eval over fieldValue output.
func evalStringPredicate(actual, op, value string) bool {
	switch op {
	case "~":
		return strings.Contains(actual, value)
	case "=":
		return compareValues(actual, value) == 0
	case "!=":
		return compareValues(actual, value) != 0
	case ">":
		return compareValues(actual, value) > 0
	case ">=":
		return compareValues(actual, value) >= 0
	case "<":
		return compareValues(actual, value) < 0
	case "<=":
		return compareValues(actual, value) <= 0
	}
	return false
}

// symbolPredicate evaluates pr once per distinct symbol into a bitmap;
// row evaluation is then a single indexed load. Exact by construction:
// every row with symbol s has fieldValue == strs[s], and the
// precomputed (float, finite) per symbol mirrors what compareValues
// would decide per comparison — without re-parsing. Shared between the
// in-memory Columns path and decoded segment Frames.
func symbolPredicate(pr predicate, strs []string, floats []float64, finite []bool, col []uint32) rowEval {
	match := make([]bool, len(strs))
	if pr.op == "~" {
		for s, str := range strs {
			match[s] = strings.Contains(str, pr.value)
		}
		return func(r int) bool { return match[col[r]] }
	}
	vf, err := strconv.ParseFloat(pr.value, 64)
	vOK := err == nil && isFinite(vf)
	for s, str := range strs {
		var cmp int
		if vOK && finite[s] {
			switch {
			case floats[s] < vf:
				cmp = -1
			case floats[s] > vf:
				cmp = 1
			}
		} else {
			cmp = strings.Compare(str, pr.value)
		}
		match[s] = opHolds(pr.op, cmp)
	}
	return func(r int) bool { return match[col[r]] }
}

// opHolds applies a comparison operator to a compareValues result.
func opHolds(op string, cmp int) bool {
	switch op {
	case "=":
		return cmp == 0
	case "!=":
		return cmp != 0
	case ">":
		return cmp > 0
	case ">=":
		return cmp >= 0
	case "<":
		return cmp < 0
	case "<=":
		return cmp <= 0
	}
	return false
}

// depthPredicate evaluates pr once per distinct depth (depths are
// dense 0..max) into a bitmap.
func depthPredicate(pr predicate, depth []int32) rowEval {
	max := int32(0)
	for _, d := range depth {
		if d > max {
			max = d
		}
	}
	match := make([]bool, max+1)
	for d := range match {
		match[d] = evalStringPredicate(strconv.Itoa(d), pr.op, pr.value)
	}
	return func(r int) bool { return match[depth[r]] }
}

// compileNumericPredicate compiles pr against a float64 column. The hot
// path — finite column value, finite constant — is a float compare with
// no conversion. Non-finite values and non-numeric constants fall back
// to comparing the exact string form fieldValue would produce, which is
// what compareValues does on the tree path.
func compileNumericPredicate(pr predicate, col []float64) rowEval {
	value := pr.value
	if pr.op == "~" {
		// Substring match over the decimal form; rare, so the per-row
		// format cost is acceptable.
		return func(r int) bool {
			return strings.Contains(formatNumField(col[r]), value)
		}
	}
	vf, err := strconv.ParseFloat(value, 64)
	vOK := err == nil && isFinite(vf)
	cmp := func(v float64) int {
		if vOK && isFinite(v) {
			switch {
			case v < vf:
				return -1
			case v > vf:
				return 1
			default:
				return 0
			}
		}
		return strings.Compare(formatNumField(v), value)
	}
	switch pr.op {
	case "=":
		return func(r int) bool { return cmp(col[r]) == 0 }
	case "!=":
		return func(r int) bool { return cmp(col[r]) != 0 }
	case ">":
		return func(r int) bool { return cmp(col[r]) > 0 }
	case ">=":
		return func(r int) bool { return cmp(col[r]) >= 0 }
	case "<":
		return func(r int) bool { return cmp(col[r]) < 0 }
	case "<=":
		return func(r int) bool { return cmp(col[r]) <= 0 }
	}
	return func(r int) bool { return false }
}

// formatNumField is the exact string form fieldValue produces for the
// numeric built-in fields.
func formatNumField(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}
