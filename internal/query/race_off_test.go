//go:build !race

package query

// raceEnabled reports whether this binary was built with -race.
const raceEnabled = false
