package query

import (
	"strings"
	"sync"
)

// Cache is a bounded LRU of compiled queries keyed on the normalized
// query string, so the lexer and parser run once per distinct query no
// matter how many times clients repeat it. A *Query is immutable after
// Parse (Select only reads it), so one compiled query is safely shared
// by concurrent callers. The hit path performs no allocations: one map
// lookup plus an intrusive-list move.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*cacheEntry
	// Intrusive LRU list: head is most recent, tail is the eviction
	// candidate.
	head, tail *cacheEntry
	hits       uint64
	misses     uint64
}

type cacheEntry struct {
	key        string
	q          *Query
	prev, next *cacheEntry
}

// NewCache returns a compiled-query cache holding at most capacity
// queries; capacity < 1 selects 256.
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 256
	}
	return &Cache{cap: capacity, entries: make(map[string]*cacheEntry)}
}

// Parse returns the compiled form of input, from cache when the
// normalized string has been parsed before. Parse errors are returned
// uncached (they are cheap to rediscover and would otherwise occupy
// slots real queries want).
func (c *Cache) Parse(input string) (*Query, error) {
	key := Normalize(input)
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.moveToFront(e)
		q := e.q
		c.mu.Unlock()
		return q, nil
	}
	c.misses++
	c.mu.Unlock()

	// Parse outside the lock: a slow parse must not block hits.
	q, err := Parse(input)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		// A concurrent miss beat us to it; keep the first compile.
		c.moveToFront(e)
		q = e.q
	} else {
		e := &cacheEntry{key: key, q: q}
		c.entries[key] = e
		c.pushFront(e)
		if len(c.entries) > c.cap {
			c.evictTail()
		}
	}
	c.mu.Unlock()
	return q, nil
}

// Stats returns the lifetime hit/miss counters and the current size.
func (c *Cache) Stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}

func (c *Cache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) moveToFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	// Unlink.
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if c.tail == e {
		c.tail = e.prev
	}
	c.pushFront(e)
}

func (c *Cache) evictTail() {
	e := c.tail
	if e == nil {
		return
	}
	if e.prev != nil {
		e.prev.next = nil
	}
	c.tail = e.prev
	if c.head == e {
		c.head = nil
	}
	delete(c.entries, e.key)
}

// Normalize canonicalizes a query string for cache keying: runs of
// whitespace outside quoted strings collapse to one space and leading or
// trailing whitespace is dropped, while quoted strings (including their
// backslash escapes) are preserved byte-for-byte. Two inputs with the
// same normalization tokenize identically, so they compile to the same
// query.
func Normalize(input string) string {
	if isNormalized(input) {
		// Repeated queries from clients are usually byte-identical;
		// returning the input unchanged keeps the cache hit path
		// allocation-free.
		return input
	}
	var sb strings.Builder
	sb.Grow(len(input))
	pendingSpace := false
	i := 0
	for i < len(input) {
		ch := input[i]
		switch {
		case ch == ' ' || ch == '\t' || ch == '\n':
			if sb.Len() > 0 {
				pendingSpace = true
			}
			i++
		case ch == '"':
			if pendingSpace {
				sb.WriteByte(' ')
				pendingSpace = false
			}
			// Copy the quoted region verbatim, honoring the lexer's
			// backslash escapes; an unterminated string copies to the
			// end (Parse will reject it either way).
			j := i + 1
			for j < len(input) && input[j] != '"' {
				if input[j] == '\\' && j+1 < len(input) {
					j++
				}
				j++
			}
			if j < len(input) {
				j++ // include the closing quote
			}
			sb.WriteString(input[i:j])
			i = j
		default:
			if pendingSpace {
				sb.WriteByte(' ')
				pendingSpace = false
			}
			sb.WriteByte(ch)
			i++
		}
	}
	return sb.String()
}

// isNormalized reports whether Normalize would return input unchanged:
// no tabs or newlines outside quotes, no leading/trailing space, and no
// space runs outside quotes.
func isNormalized(s string) bool {
	if s == "" {
		return true
	}
	if s[0] == ' ' || s[len(s)-1] == ' ' {
		return false
	}
	prevSpace := false
	i := 0
	for i < len(s) {
		switch ch := s[i]; {
		case ch == '\t' || ch == '\n':
			return false
		case ch == ' ':
			if prevSpace {
				return false
			}
			prevSpace = true
			i++
		case ch == '"':
			prevSpace = false
			j := i + 1
			for j < len(s) && s[j] != '"' {
				if s[j] == '\\' && j+1 < len(s) {
					j++
				}
				j++
			}
			if j < len(s) {
				j++
			}
			i = j
		default:
			prevSpace = false
			i++
		}
	}
	return true
}
