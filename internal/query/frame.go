package query

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/archive"
)

// Frame is one job's rows in columnar form plus its job-level metadata
// — the unit the aggregate executor scans. Two sources produce frames:
// the in-memory Columns built when a job enters the store (Ops
// populated, so info./derived. fields work), and decoded on-disk
// segments (Ops nil; the engine never materializes the archive tree).
// Both yield byte-identical aggregation results for queries that stay
// on the columnar fields.
type Frame struct {
	Meta JobMeta

	Depth   []int32
	Start   []float64
	End     []float64
	Dur     []float64
	Mission []uint32
	Actor   []uint32
	ID      []uint32

	Syms      []string
	SymFloat  []float64
	SymFinite []bool

	// Ops is the depth-first operation list when the source retains the
	// tree; nil for frames decoded from segments.
	Ops []*archive.Operation
}

// Rows returns the number of operation rows in the frame.
func (f *Frame) Rows() int { return len(f.Depth) }

// Frame adapts the in-memory columns to a Frame, sharing the column
// slices. The frame is immutable, like the columns it wraps.
func (c *Columns) Frame(meta JobMeta) *Frame {
	return &Frame{
		Meta:      meta,
		Depth:     c.depth,
		Start:     c.start,
		End:       c.end,
		Dur:       c.dur,
		Mission:   c.mission,
		Actor:     c.actor,
		ID:        c.id,
		Syms:      c.syms.strs,
		SymFloat:  c.syms.floats,
		SymFinite: c.syms.finite,
		Ops:       c.ops,
	}
}

// symCompare orders two interned symbols with compareValues semantics,
// using the precomputed numeric interpretations.
func (f *Frame) symCompare(a, b uint32) int {
	if a == b {
		return 0
	}
	if f.SymFinite[a] && f.SymFinite[b] {
		switch {
		case f.SymFloat[a] < f.SymFloat[b]:
			return -1
		case f.SymFloat[a] > f.SymFloat[b]:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(f.Syms[a], f.Syms[b])
}

// fieldString returns the string form of a field on one frame row —
// the frame analogue of fieldValue, extended with job.* fields.
func (f *Frame) fieldString(r int, field string) (string, bool) {
	lf := strings.ToLower(field)
	switch lf {
	case "mission":
		return f.Syms[f.Mission[r]], true
	case "actor":
		return f.Syms[f.Actor[r]], true
	case "id":
		return f.Syms[f.ID[r]], true
	case "duration":
		return formatNumField(f.Dur[r]), true
	case "start":
		return formatNumField(f.Start[r]), true
	case "end":
		return formatNumField(f.End[r]), true
	case "depth":
		return strconv.Itoa(int(f.Depth[r])), true
	}
	if strings.HasPrefix(lf, "job.") {
		return f.Meta.Field(lf)
	}
	if f.Ops != nil {
		if key, ok := strings.CutPrefix(field, "info."); ok {
			v, present := f.Ops[r].Infos[key]
			return v, present
		}
		if key, ok := strings.CutPrefix(field, "derived."); ok {
			v, present := f.Ops[r].Derived[key]
			return v, present
		}
	}
	return "", false
}

// numExtractor returns a per-row numeric extractor for the numeric
// fields (the ones numericAggField admits).
func (f *Frame) numExtractor(field string) (func(r int) float64, error) {
	lf := strings.ToLower(field)
	switch lf {
	case "duration":
		col := f.Dur
		return func(r int) float64 { return col[r] }, nil
	case "start":
		col := f.Start
		return func(r int) float64 { return col[r] }, nil
	case "end":
		col := f.End
		return func(r int) float64 { return col[r] }, nil
	case "depth":
		col := f.Depth
		return func(r int) float64 { return float64(col[r]) }, nil
	}
	if v, ok := f.Meta.numField(lf); ok {
		return func(int) float64 { return v }, nil
	}
	return nil, fmt.Errorf("query: %q is not a numeric field", field)
}

// compileFrameExpr compiles the where tree against a frame. It extends
// the Columns compiler with job.* fields (constant per frame) and
// errors on info./derived. fields when the frame has no operation tree.
func compileFrameExpr(e expr, f *Frame) (rowEval, error) {
	switch t := e.(type) {
	case orExpr:
		a, err := compileFrameExpr(t.a, f)
		if err != nil {
			return nil, err
		}
		b, err := compileFrameExpr(t.b, f)
		if err != nil {
			return nil, err
		}
		return func(r int) bool { return a(r) || b(r) }, nil
	case andExpr:
		a, err := compileFrameExpr(t.a, f)
		if err != nil {
			return nil, err
		}
		b, err := compileFrameExpr(t.b, f)
		if err != nil {
			return nil, err
		}
		return func(r int) bool { return a(r) && b(r) }, nil
	case notExpr:
		a, err := compileFrameExpr(t.a, f)
		if err != nil {
			return nil, err
		}
		return func(r int) bool { return !a(r) }, nil
	case predicate:
		return compileFramePredicate(t, f)
	}
	return nil, fmt.Errorf("query: unknown expression")
}

func compileFramePredicate(pr predicate, f *Frame) (rowEval, error) {
	lf := strings.ToLower(pr.field)
	switch lf {
	case "mission":
		return symbolPredicate(pr, f.Syms, f.SymFloat, f.SymFinite, f.Mission), nil
	case "actor":
		return symbolPredicate(pr, f.Syms, f.SymFloat, f.SymFinite, f.Actor), nil
	case "id":
		return symbolPredicate(pr, f.Syms, f.SymFloat, f.SymFinite, f.ID), nil
	case "depth":
		return depthPredicate(pr, f.Depth), nil
	case "duration":
		return compileNumericPredicate(pr, f.Dur), nil
	case "start":
		return compileNumericPredicate(pr, f.Start), nil
	case "end":
		return compileNumericPredicate(pr, f.End), nil
	}
	if strings.HasPrefix(lf, "job.") {
		// Constant per frame: fold to a constant evaluator, mirroring
		// what the zone-map pruner decides for whole segments.
		v, ok := f.Meta.Field(lf)
		res := ok && evalStringPredicate(v, pr.op, pr.value)
		return func(int) bool { return res }, nil
	}
	if opsOnlyField(pr.field) {
		if f.Ops == nil {
			return nil, fmt.Errorf("query: field %q requires operation details not stored in columnar segments", pr.field)
		}
		if key, ok := strings.CutPrefix(pr.field, "info."); ok {
			op, value := pr.op, pr.value
			ops := f.Ops
			return func(r int) bool {
				v, present := ops[r].Infos[key]
				return present && evalStringPredicate(v, op, value)
			}, nil
		}
		if key, ok := strings.CutPrefix(pr.field, "derived."); ok {
			op, value := pr.op, pr.value
			ops := f.Ops
			return func(r int) bool {
				v, present := ops[r].Derived[key]
				return present && evalStringPredicate(v, op, value)
			}, nil
		}
		// Case-mismatched prefix (e.g. "Info.X"): absent on every row,
		// exactly like fieldValue on the tree path.
		return func(int) bool { return false }, nil
	}
	return nil, fmt.Errorf("query: unknown field %q", pr.field)
}
