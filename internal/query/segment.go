// On-disk columnar segment format.
//
// A segment is one job's Frame serialized as per-column typed blocks
// plus a zone-map stats footer, CRC-framed in the WAL's style
// (little-endian u32 length + u32 CRC32C per frame):
//
//	magic "GRNLCOL1"                     (8 bytes)
//	u32 bodyLen | u32 crc32c(body)       body frame header
//	body:
//	  u32 rows | u32 nsyms
//	  depth   int32   × rows
//	  start   float64 × rows   (IEEE bits)
//	  end     float64 × rows
//	  dur     float64 × rows
//	  mission uint32  × rows   (symbol IDs)
//	  actor   uint32  × rows
//	  id      uint32  × rows
//	  syms:   nsyms × (u32 len | bytes)
//	u32 statsLen | u32 crc32c(stats)     stats frame (JSON SegStats)
//	u32 statsFrameLen | magic "GCT1"     trailer (8 bytes)
//
// Columns are contiguous fixed-stride blocks at computable offsets —
// an mmap of the body could serve the typed slices directly; the
// current reader copies, which keeps segments independent of the file
// lifetime. The stats footer is reachable from the file tail alone
// (read the 8-byte trailer, then the stats frame), so zone-map pruning
// decides whether to touch the body without reading any column bytes —
// that is what the "pruned segments are never read" test measures.
package query

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"strconv"
	"strings"
)

const (
	segMagic        = "GRNLCOL1"
	segTrailerMagic = "GCT1"
	// SegmentVersion stamps encoded segments; bump it when the layout
	// or the stats semantics change so stale segments rebuild lazily.
	SegmentVersion = 1
	// SegmentTailHint is how many trailing bytes of a segment file are
	// enough to recover the stats footer in one read for any realistic
	// stats size.
	SegmentTailHint = 64 << 10

	maxSegRows = 1 << 28
	maxSegSyms = 1 << 26
)

// ErrSegmentTail reports that the provided tail window was too small
// to contain the stats footer; callers fall back to a full read.
var ErrSegmentTail = errors.New("query: segment stats footer exceeds tail window")

var segCRC = crc32.MakeTable(crc32.Castagnoli)

// NumRange is a numeric column's zone map. Finite reports that every
// value in the column is finite; Min/Max cover the finite values.
type NumRange struct {
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Finite bool    `json:"finite"`
}

// SymRange is a symbol column's zone map: the lexicographically
// smallest and largest strings appearing in the column.
type SymRange struct {
	Min string `json:"min"`
	Max string `json:"max"`
}

// SegStats is the segment's stats footer: the job metadata, a version
// for staleness detection, and per-column zone maps. It is all a
// planner needs to prune the segment without reading the body.
type SegStats struct {
	FormatVersion int     `json:"format"`
	JobVersion    uint64  `json:"jobVersion"`
	Meta          JobMeta `json:"meta"`
	Rows          int     `json:"rows"`

	Depth   NumRange `json:"depth"`
	Start   NumRange `json:"start"`
	End     NumRange `json:"end"`
	Dur     NumRange `json:"dur"`
	Mission SymRange `json:"mission"`
	Actor   SymRange `json:"actor"`
	ID      SymRange `json:"id"`
}

func numRangeOf(col []float64) NumRange {
	r := NumRange{Finite: true}
	first := true
	for _, v := range col {
		if !isFinite(v) {
			r.Finite = false
			continue
		}
		if first || v < r.Min {
			r.Min = v
		}
		if first || v > r.Max {
			r.Max = v
		}
		first = false
	}
	return r
}

func numRangeOfInt32(col []int32) NumRange {
	r := NumRange{Finite: true}
	for i, v := range col {
		f := float64(v)
		if i == 0 || f < r.Min {
			r.Min = f
		}
		if i == 0 || f > r.Max {
			r.Max = f
		}
	}
	return r
}

func symRangeOf(col []uint32, syms []string) SymRange {
	var r SymRange
	first := true
	for _, id := range col {
		s := syms[id]
		if first || s < r.Min {
			r.Min = s
		}
		if first || s > r.Max {
			r.Max = s
		}
		first = false
	}
	return r
}

// BuildSegStats computes the zone-map footer for a frame.
func BuildSegStats(f *Frame, jobVersion uint64) *SegStats {
	return &SegStats{
		FormatVersion: SegmentVersion,
		JobVersion:    jobVersion,
		Meta:          f.Meta,
		Rows:          f.Rows(),
		Depth:         numRangeOfInt32(f.Depth),
		Start:         numRangeOf(f.Start),
		End:           numRangeOf(f.End),
		Dur:           numRangeOf(f.Dur),
		Mission:       symRangeOf(f.Mission, f.Syms),
		Actor:         symRangeOf(f.Actor, f.Syms),
		ID:            symRangeOf(f.ID, f.Syms),
	}
}

// EncodeSegment serializes a frame (and its zone-map stats) into the
// segment file format.
func EncodeSegment(f *Frame, jobVersion uint64) ([]byte, error) {
	rows := f.Rows()
	body := make([]byte, 0, 8+rows*(4+8*3+4*3)+len(f.Syms)*8)
	body = binary.LittleEndian.AppendUint32(body, uint32(rows))
	body = binary.LittleEndian.AppendUint32(body, uint32(len(f.Syms)))
	for _, v := range f.Depth {
		body = binary.LittleEndian.AppendUint32(body, uint32(v))
	}
	for _, col := range [][]float64{f.Start, f.End, f.Dur} {
		for _, v := range col {
			body = binary.LittleEndian.AppendUint64(body, math.Float64bits(v))
		}
	}
	for _, col := range [][]uint32{f.Mission, f.Actor, f.ID} {
		for _, v := range col {
			body = binary.LittleEndian.AppendUint32(body, v)
		}
	}
	for _, s := range f.Syms {
		body = binary.LittleEndian.AppendUint32(body, uint32(len(s)))
		body = append(body, s...)
	}

	stats, err := json.Marshal(BuildSegStats(f, jobVersion))
	if err != nil {
		return nil, err
	}

	out := make([]byte, 0, len(segMagic)+8+len(body)+8+len(stats)+8)
	out = append(out, segMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(body, segCRC))
	out = append(out, body...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(stats)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(stats, segCRC))
	out = append(out, stats...)
	out = binary.LittleEndian.AppendUint32(out, uint32(8+len(stats)))
	out = append(out, segTrailerMagic...)
	return out, nil
}

// DecodeSegmentStats recovers the stats footer from the tail of a
// segment file without the body: tail holds the file's last len(tail)
// bytes and fileSize the full size. Returns ErrSegmentTail when the
// window is too small (caller re-reads with a bigger one).
func DecodeSegmentStats(tail []byte, fileSize int64) (*SegStats, error) {
	if int64(len(tail)) > fileSize {
		return nil, fmt.Errorf("query: segment tail larger than file")
	}
	if len(tail) < 8 || fileSize < int64(len(segMagic))+16 {
		return nil, fmt.Errorf("query: segment too small")
	}
	tr := tail[len(tail)-8:]
	if string(tr[4:]) != segTrailerMagic {
		return nil, fmt.Errorf("query: bad segment trailer")
	}
	frameLen := int64(binary.LittleEndian.Uint32(tr[:4]))
	if frameLen < 8 || frameLen > fileSize-8 {
		return nil, fmt.Errorf("query: bad segment stats length")
	}
	if frameLen+8 > int64(len(tail)) {
		return nil, ErrSegmentTail
	}
	frame := tail[int64(len(tail))-8-frameLen : len(tail)-8]
	statsLen := binary.LittleEndian.Uint32(frame[:4])
	if int64(statsLen) != frameLen-8 {
		return nil, fmt.Errorf("query: segment stats frame length mismatch")
	}
	crc := binary.LittleEndian.Uint32(frame[4:8])
	payload := frame[8:]
	if crc32.Checksum(payload, segCRC) != crc {
		return nil, fmt.Errorf("query: segment stats checksum mismatch")
	}
	var st SegStats
	if err := json.Unmarshal(payload, &st); err != nil {
		return nil, fmt.Errorf("query: segment stats: %w", err)
	}
	return &st, nil
}

// DecodeSegment deserializes a full segment file into a Frame (Ops is
// nil — segments do not carry info/derived maps) and its stats.
func DecodeSegment(blob []byte) (*Frame, *SegStats, error) {
	if len(blob) < len(segMagic)+8 || string(blob[:len(segMagic)]) != segMagic {
		return nil, nil, fmt.Errorf("query: bad segment magic")
	}
	off := len(segMagic)
	bodyLen := int(binary.LittleEndian.Uint32(blob[off : off+4]))
	bodyCRC := binary.LittleEndian.Uint32(blob[off+4 : off+8])
	off += 8
	if bodyLen < 8 || off+bodyLen > len(blob) {
		return nil, nil, fmt.Errorf("query: bad segment body length")
	}
	body := blob[off : off+bodyLen]
	if crc32.Checksum(body, segCRC) != bodyCRC {
		return nil, nil, fmt.Errorf("query: segment body checksum mismatch")
	}
	st, err := DecodeSegmentStats(blob, int64(len(blob)))
	if err != nil {
		return nil, nil, err
	}

	rows := int(binary.LittleEndian.Uint32(body[:4]))
	nsyms := int(binary.LittleEndian.Uint32(body[4:8]))
	if rows < 0 || rows > maxSegRows || nsyms < 0 || nsyms > maxSegSyms {
		return nil, nil, fmt.Errorf("query: implausible segment dimensions")
	}
	need := 8 + rows*(4+8*3+4*3)
	if len(body) < need {
		return nil, nil, fmt.Errorf("query: truncated segment body")
	}
	f := &Frame{
		Meta:      st.Meta,
		Depth:     make([]int32, rows),
		Start:     make([]float64, rows),
		End:       make([]float64, rows),
		Dur:       make([]float64, rows),
		Mission:   make([]uint32, rows),
		Actor:     make([]uint32, rows),
		ID:        make([]uint32, rows),
		Syms:      make([]string, nsyms),
		SymFloat:  make([]float64, nsyms),
		SymFinite: make([]bool, nsyms),
	}
	p := 8
	for i := 0; i < rows; i++ {
		f.Depth[i] = int32(binary.LittleEndian.Uint32(body[p:]))
		p += 4
	}
	for _, col := range [][]float64{f.Start, f.End, f.Dur} {
		for i := 0; i < rows; i++ {
			col[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[p:]))
			p += 8
		}
	}
	for _, col := range [][]uint32{f.Mission, f.Actor, f.ID} {
		for i := 0; i < rows; i++ {
			v := binary.LittleEndian.Uint32(body[p:])
			p += 4
			if int(v) >= nsyms {
				return nil, nil, fmt.Errorf("query: segment symbol id out of range")
			}
			col[i] = v
		}
	}
	// One backing string for the whole dictionary region; each symbol
	// is a zero-copy substring of it. The few length-prefix bytes kept
	// alive are nothing next to one allocation per symbol.
	region := string(body[p:])
	q := 0
	for i := 0; i < nsyms; i++ {
		if q+4 > len(region) {
			return nil, nil, fmt.Errorf("query: truncated segment symbols")
		}
		n := int(binary.LittleEndian.Uint32(body[p+q:]))
		q += 4
		if n < 0 || q+n > len(region) {
			return nil, nil, fmt.Errorf("query: truncated segment symbols")
		}
		s := region[q : q+n]
		q += n
		f.Syms[i] = s
		if canStartNumber(s) {
			fv, err := strconv.ParseFloat(s, 64)
			f.SymFloat[i] = fv
			f.SymFinite[i] = err == nil && isFinite(fv)
		}
	}
	return f, st, nil
}

// canStartNumber is a cheap pre-filter for the symbol-as-number cache:
// strconv.ParseFloat cannot succeed unless the string starts with a
// digit, sign, dot, or an inf/NaN spelling.
func canStartNumber(s string) bool {
	if s == "" {
		return false
	}
	switch c := s[0]; {
	case c >= '0' && c <= '9':
		return true
	case c == '+' || c == '-' || c == '.':
		return true
	case c == 'i' || c == 'I' || c == 'n' || c == 'N': // inf / NaN
		return true
	}
	return false
}

// --- zone-map pruning ---

// PruneAgainst reports whether the zone maps prove no row of the
// segment can satisfy the where clause — in which case the segment
// body need not be read at all. The analysis is conservative: any
// uncertainty (non-finite values in a column, numeric-looking
// constants against symbol columns, `not`/`~` operators) keeps the
// segment scannable, so pruning never changes a result, only skips
// provably-empty work.
func (q *Query) PruneAgainst(st *SegStats) bool {
	if st.Rows == 0 {
		return true
	}
	if q.where == nil {
		return false
	}
	return !prunePossible(q.where, st)
}

// prunePossible reports whether some row in a segment with these stats
// could satisfy e (conservatively: true when unsure).
func prunePossible(e expr, st *SegStats) bool {
	switch t := e.(type) {
	case orExpr:
		return prunePossible(t.a, st) || prunePossible(t.b, st)
	case andExpr:
		return prunePossible(t.a, st) && prunePossible(t.b, st)
	case notExpr:
		// `not x` can hold even when x holds somewhere in the range;
		// bounding it would need "x holds for ALL rows" reasoning.
		return true
	case predicate:
		return predPossible(t, st)
	}
	return true
}

func predPossible(pr predicate, st *SegStats) bool {
	if pr.op == "~" {
		return true
	}
	lf := strings.ToLower(pr.field)
	if strings.HasPrefix(lf, "job.") {
		// Constant per job: the zone "range" is exact.
		v, ok := st.Meta.Field(lf)
		return ok && evalStringPredicate(v, pr.op, pr.value)
	}
	switch lf {
	case "mission":
		return symRangePossible(pr, st.Mission)
	case "actor":
		return symRangePossible(pr, st.Actor)
	case "id":
		return symRangePossible(pr, st.ID)
	case "depth":
		return numRangePossible(pr, st.Depth)
	case "duration":
		return numRangePossible(pr, st.Dur)
	case "start":
		return numRangePossible(pr, st.Start)
	case "end":
		return numRangePossible(pr, st.End)
	}
	// info./derived. (and anything else): no zone information.
	return true
}

// symRangePossible bounds a symbol-column predicate with the column's
// lexicographic range. compareValues switches to numeric comparison
// when both sides parse as finite numbers, and a lexicographic range
// does not bound numeric order — so pruning only applies to constants
// that do NOT parse as numbers, where every per-row comparison is the
// string compare the range was built with.
func symRangePossible(pr predicate, r SymRange) bool {
	if v, err := strconv.ParseFloat(pr.value, 64); err == nil && isFinite(v) {
		return true
	}
	return rangePossible(pr.op,
		strings.Compare(r.Min, pr.value),
		strings.Compare(r.Max, pr.value))
}

// numRangePossible bounds a numeric-column predicate with the column's
// [min,max]. Only sound when every column value is finite and the
// constant parses as a finite number — otherwise per-row comparisons
// fall back to string compares the range says nothing about.
func numRangePossible(pr predicate, r NumRange) bool {
	if !r.Finite {
		return true
	}
	v, err := strconv.ParseFloat(pr.value, 64)
	if err != nil || !isFinite(v) {
		return true
	}
	cmp := func(a float64) int {
		switch {
		case a < v:
			return -1
		case a > v:
			return 1
		default:
			return 0
		}
	}
	return rangePossible(pr.op, cmp(r.Min), cmp(r.Max))
}

// rangePossible decides `∃ x in [min,max] : x op value` from the
// comparisons of the range endpoints against the value.
func rangePossible(op string, cmpMin, cmpMax int) bool {
	switch op {
	case "=":
		return cmpMin <= 0 && cmpMax >= 0
	case "!=":
		return !(cmpMin == 0 && cmpMax == 0)
	case ">":
		return cmpMax > 0
	case ">=":
		return cmpMax >= 0
	case "<":
		return cmpMin < 0
	case "<=":
		return cmpMin <= 0
	}
	return true
}
