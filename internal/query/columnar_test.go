package query

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/archive"
)

// oracleQueries exercises every field kind, operator, combinator, and
// ordering the language supports, including the adversarial cases:
// numeric-looking strings, NaN/Inf values, substring matches on numeric
// fields, and order-by over absent info keys.
var oracleQueries = []string{
	``,
	`limit 3`,
	`order by start`,
	`order by duration desc`,
	`order by actor`,
	`order by actor desc limit 4`,
	`order by info.Vertices desc`,
	`order by info.Nope`,
	`order by depth desc limit 7`,
	`mission = Compute`,
	`mission != Compute`,
	`mission ~ o`,
	`mission > Compute`,
	`mission <= LocalLoad`,
	`mission = 123`,
	`mission >= 123`,
	`actor = Worker-1`,
	`actor ~ Worker`,
	`actor != Master`,
	`id = b1`,
	`id ~ 1`,
	`depth = 2`,
	`depth >= 1`,
	`depth < 2`,
	`depth != 1`,
	`depth ~ 1`,
	`duration > 1.5`,
	`duration >= 4`,
	`duration < 2`,
	`duration <= 0`,
	`duration = 4`,
	`duration != 4`,
	`duration ~ 5`,
	`start >= 8`,
	`end < 12`,
	`info.Vertices >= 1000`,
	`info.Vertices < 1000`,
	`info.Bytes = 1000`,
	`info.Bytes ~ 00`,
	`info.Nope = 1`,
	`not info.Nope = 1`,
	`info.Weird > 10`,
	`info.Weird <= 10`,
	`derived.PercentOfJob > 10`,
	`mission = Compute and duration > 1`,
	`mission = Compute or mission = Cleanup`,
	`not mission = Compute`,
	`(mission = Compute or actor = Client) and depth > 0`,
	`not (duration > 2 and actor ~ Worker)`,
	`mission ~ o and depth > 0 order by duration desc limit 3`,
	`actor ~ Worker order by info.Vertices desc limit 2`,
	`duration > 0 order by end desc`,
	`mission != Job order by mission`,
	`order by id desc`,
}

// weirdJob stresses the typed fast paths: missions that parse as
// numbers, NaN and Inf info values, zero-duration operations, deep
// chains, and duplicate IDs across actors.
func weirdJob() *archive.Job {
	root := &archive.Operation{
		ID: "r", Mission: "123", Actor: "9", Start: 0, End: 50,
		Infos: map[string]string{"Weird": "NaN", "Bytes": "1e3"},
	}
	cur := root
	for i := 0; i < 5; i++ {
		child := &archive.Operation{
			ID:      fmt.Sprintf("chain-%d", i),
			Mission: []string{"123", "124", "Compute", "+Inf", "00123"}[i],
			Actor:   fmt.Sprintf("Worker-%d", i%2),
			Start:   float64(i), End: float64(i) + 0.5,
			Infos: map[string]string{"Vertices": strconv.Itoa(i * 100), "Weird": "Inf"},
		}
		cur.Children = append(cur.Children, child)
		cur = child
	}
	return &archive.Job{ID: "weird", Root: root}
}

// randomJob builds a random operation tree: rng-driven shape, missions
// and actors drawn from pools that include numeric-looking strings.
func randomJob(rng *rand.Rand, nOps int) *archive.Job {
	missions := []string{"Job", "LoadGraph", "Compute", "Superstep", "42", "0042", "Cleanup"}
	actors := []string{"Master", "Client", "Worker-0", "Worker-1", "Worker-2", "7"}
	root := &archive.Operation{ID: "op-0", Mission: "Job", Actor: "Client", Start: 0, End: 1000}
	all := []*archive.Operation{root}
	for i := 1; i < nOps; i++ {
		parent := all[rng.Intn(len(all))]
		start := parent.Start + rng.Float64()*10
		op := &archive.Operation{
			ID:      fmt.Sprintf("op-%d", i),
			Mission: missions[rng.Intn(len(missions))],
			Actor:   actors[rng.Intn(len(actors))],
			Start:   start,
			End:     start + rng.Float64()*20,
		}
		if rng.Intn(3) == 0 {
			op.Infos = map[string]string{"Vertices": strconv.Itoa(rng.Intn(5000))}
		}
		if rng.Intn(5) == 0 {
			op.SetDerived("PercentOfJob", strconv.FormatFloat(rng.Float64()*100, 'f', 3, 64))
		}
		parent.Children = append(parent.Children, op)
		all = append(all, op)
	}
	return &archive.Job{ID: "rand", Root: root}
}

func assertSameOps(t *testing.T, qs string, tree, col []*archive.Operation) {
	t.Helper()
	if len(tree) != len(col) {
		t.Fatalf("query %q: tree returned %d ops, columnar %d", qs, len(tree), len(col))
	}
	for i := range tree {
		if tree[i] != col[i] {
			t.Fatalf("query %q: row %d differs: tree %q, columnar %q", qs, i, tree[i].ID, col[i].ID)
		}
	}
}

// TestSelectColumnarOracle asserts SelectColumns returns pointer-
// identical results, in identical order, to the tree-walking Select on
// every oracle query over the standard, weird, and random jobs.
func TestSelectColumnarOracle(t *testing.T) {
	jobs := []*archive.Job{testJob(), weirdJob(), {ID: "empty"}}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5; i++ {
		jobs = append(jobs, randomJob(rng, 50+rng.Intn(200)))
	}
	for ji, job := range jobs {
		cols := BuildColumns(job)
		if job.Root != nil {
			n := 0
			job.Root.Walk(func(*archive.Operation) { n++ })
			if cols.Rows() != n {
				t.Fatalf("job %d: columns have %d rows, tree has %d ops", ji, cols.Rows(), n)
			}
		}
		for _, qs := range oracleQueries {
			q, err := Parse(qs)
			if err != nil {
				t.Fatalf("parse %q: %v", qs, err)
			}
			assertSameOps(t, qs, q.Select(job), q.SelectColumns(cols))
		}
	}
}

// TestSelectColumnarRandomQueries fuzzes predicate combinations against
// the oracle over a larger random job.
func TestSelectColumnarRandomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	job := randomJob(rng, 400)
	cols := BuildColumns(job)
	fields := []string{"mission", "actor", "id", "depth", "duration", "start", "end", "info.Vertices", "derived.PercentOfJob"}
	ops := []string{"=", "!=", "~", ">", ">=", "<", "<="}
	values := []string{"Compute", "42", "Worker-1", "0", "3", "10.5", "op-17", "2", "NaN", "1e2"}
	orders := []string{"", " order by duration desc", " order by mission", " order by info.Vertices", " order by id desc limit 9"}
	for i := 0; i < 300; i++ {
		qs := fmt.Sprintf("%s %s %s", fields[rng.Intn(len(fields))], ops[rng.Intn(len(ops))], values[rng.Intn(len(values))])
		if rng.Intn(2) == 0 {
			qs = fmt.Sprintf("%s and %s %s %s", qs, fields[rng.Intn(len(fields))], ops[rng.Intn(len(ops))], values[rng.Intn(len(values))])
		}
		if rng.Intn(3) == 0 {
			qs = "not (" + qs + ")"
		}
		qs += orders[rng.Intn(len(orders))]
		q, err := Parse(qs)
		if err != nil {
			t.Fatalf("parse %q: %v", qs, err)
		}
		assertSameOps(t, qs, q.Select(job), q.SelectColumns(cols))
	}
}

func TestCacheHitReturnsSameCompiledQuery(t *testing.T) {
	c := NewCache(8)
	q1, err := c.Parse(`mission = Compute and duration > 1`)
	if err != nil {
		t.Fatal(err)
	}
	// Whitespace differences normalize to the same key; quoted strings
	// do not lose their internal spacing.
	q2, err := c.Parse("  mission   =\tCompute and\nduration > 1 ")
	if err != nil {
		t.Fatal(err)
	}
	if q1 != q2 {
		t.Fatal("normalized re-parse missed the cache")
	}
	hits, misses, size := c.Stats()
	if hits != 1 || misses != 1 || size != 1 {
		t.Fatalf("stats = %d hits, %d misses, %d entries; want 1, 1, 1", hits, misses, size)
	}
}

func TestCacheQuotedNormalization(t *testing.T) {
	if Normalize(`actor = "a  b"`) != `actor = "a  b"` {
		t.Fatalf("quoted whitespace was collapsed: %q", Normalize(`actor = "a  b"`))
	}
	if Normalize("actor   =  \"a  b\"") != `actor = "a  b"` {
		t.Fatalf("outer whitespace not collapsed: %q", Normalize("actor   =  \"a  b\""))
	}
	if Normalize(`actor ~ "x\"  y"`) != `actor ~ "x\"  y"` {
		t.Fatalf("escaped quote mishandled: %q", Normalize(`actor ~ "x\"  y"`))
	}
	// Distinct quoted contents must not collide.
	if Normalize(`actor = "a b"`) == Normalize(`actor = "a  b"`) {
		t.Fatal("distinct quoted strings normalized to the same key")
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := NewCache(2)
	mustParse := func(qs string) {
		t.Helper()
		if _, err := c.Parse(qs); err != nil {
			t.Fatal(err)
		}
	}
	mustParse(`mission = A`)
	mustParse(`mission = B`)
	mustParse(`mission = A`) // refresh A
	mustParse(`mission = C`) // evicts B
	hits, misses, size := c.Stats()
	if size != 2 {
		t.Fatalf("size = %d, want 2", size)
	}
	if hits != 1 || misses != 3 {
		t.Fatalf("hits/misses = %d/%d, want 1/3", hits, misses)
	}
	mustParse(`mission = A`) // must still be cached
	if h, _, _ := c.Stats(); h != 2 {
		t.Fatalf("A was evicted out of LRU order (hits = %d)", h)
	}
	mustParse(`mission = B`) // miss: was evicted
	if _, m, _ := c.Stats(); m != 4 {
		t.Fatalf("B should have been evicted (misses = %d)", m)
	}
}

func TestCacheDoesNotCacheErrors(t *testing.T) {
	c := NewCache(4)
	for i := 0; i < 3; i++ {
		if _, err := c.Parse(`mission =`); err == nil {
			t.Fatal("expected parse error")
		}
	}
	_, misses, size := c.Stats()
	if size != 0 {
		t.Fatalf("error query was cached (size %d)", size)
	}
	if misses != 3 {
		t.Fatalf("misses = %d, want 3", misses)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(16)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 500; i++ {
				qs := fmt.Sprintf("mission = M%d", i%20)
				if _, err := c.Parse(qs); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	hits, misses, size := c.Stats()
	if size > 16 {
		t.Fatalf("cache overflowed its capacity: %d entries", size)
	}
	if hits+misses != 8*500 {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, 8*500)
	}
}

// --- allocation gates (the perf-correctness contract) ---

// TestColumnarEvalAllocs pins the columnar evaluation hot path at zero
// allocations per evaluated operation: evaluating a compiled typed
// predicate over every row of a Figure-5-scale archive must not
// allocate at all.
func TestColumnarEvalAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	cols := BuildColumns(figureScaleJob(32, 24))
	for _, qs := range []string{
		`mission = Superstep and duration > 0.5`,
		`actor ~ Worker-1 or depth = 2`,
		`not mission = Compute and start >= 10`,
		`info.Vertices >= 1000`,
	} {
		q, err := Parse(qs)
		if err != nil {
			t.Fatal(err)
		}
		ev := compileExpr(q.where, cols)
		matched := 0
		allocs := testing.AllocsPerRun(20, func() {
			for r := 0; r < cols.Rows(); r++ {
				if ev(r) {
					matched++
				}
			}
		})
		if allocs != 0 {
			t.Errorf("query %q: %.1f allocs per full-column evaluation, want 0", qs, allocs)
		}
		if matched == 0 {
			t.Fatalf("query %q matched nothing; the gate measured an empty loop", qs)
		}
	}
}

// TestCacheHitAllocs pins the compiled-query cache hit path at zero
// allocations.
func TestCacheHitAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	c := NewCache(8)
	const qs = `mission = Superstep and duration > 0.5 order by duration desc limit 10`
	if _, err := c.Parse(qs); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := c.Parse(qs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("cache hit allocates %.1f times, want 0", allocs)
	}
}

// figureScaleJob synthesizes an archive shaped like the paper's Figure 5
// subject: one job, W workers, S supersteps, with per-worker compute and
// communicate operations under each superstep.
func figureScaleJob(workers, supersteps int) *archive.Job {
	root := &archive.Operation{ID: "job", Mission: "Job", Actor: "Client", Start: 0, End: float64(supersteps * 2)}
	load := &archive.Operation{ID: "load", Mission: "LoadGraph", Actor: "Master", Start: 0, End: 1}
	root.Children = append(root.Children, load)
	for w := 0; w < workers; w++ {
		load.Children = append(load.Children, &archive.Operation{
			ID: fmt.Sprintf("load-%d", w), Mission: "LocalLoad",
			Actor: fmt.Sprintf("Worker-%d", w), Start: 0, End: 0.5 + float64(w%7)/13,
		})
	}
	proc := &archive.Operation{ID: "proc", Mission: "ProcessGraph", Actor: "Master", Start: 1, End: float64(supersteps*2) - 1}
	root.Children = append(root.Children, proc)
	for s := 0; s < supersteps; s++ {
		ss := &archive.Operation{
			ID: fmt.Sprintf("ss-%d", s), Mission: "Superstep", Actor: "Master",
			Start: float64(1 + s*2), End: float64(3 + s*2),
		}
		proc.Children = append(proc.Children, ss)
		for w := 0; w < workers; w++ {
			start := ss.Start
			ss.Children = append(ss.Children,
				&archive.Operation{
					ID: fmt.Sprintf("c-%d-%d", s, w), Mission: "Compute",
					Actor: fmt.Sprintf("Worker-%d", w), Start: start, End: start + 0.3 + float64((s+w)%11)/10,
					Infos: map[string]string{"Vertices": strconv.Itoa(500 + 37*w)},
				},
				&archive.Operation{
					ID: fmt.Sprintf("m-%d-%d", s, w), Mission: "Communicate",
					Actor: fmt.Sprintf("Worker-%d", w), Start: start + 1, End: start + 1.2 + float64((s*w)%5)/10,
				})
		}
	}
	return &archive.Job{ID: "fig5", Root: root}
}

// --- benchmarks ---

// BenchmarkQueryCompileCached compares a cold Parse per request against
// a cache hit, the repeated-query serving path.
func BenchmarkQueryCompileCached(b *testing.B) {
	const qs = `mission = Superstep and duration > 0.5 order by duration desc limit 10`
	b.Run("parse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Parse(qs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		c := NewCache(8)
		if _, err := c.Parse(qs); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Parse(qs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSelectColumnarVsTree compares the tree-walking oracle with
// columnar evaluation on a Figure-5-scale archive.
func BenchmarkSelectColumnarVsTree(b *testing.B) {
	job := figureScaleJob(32, 24)
	cols := BuildColumns(job)
	for _, tc := range []struct{ name, qs string }{
		{"filter", `mission = Compute and duration > 0.5`},
		{"filter-order", `actor ~ Worker and duration > 0.3 order by duration desc limit 20`},
		{"scan-all", `duration >= 0`},
	} {
		q, err := Parse(tc.qs)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(tc.name+"/tree", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q.Select(job)
			}
		})
		b.Run(tc.name+"/columnar", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q.SelectColumns(cols)
			}
		})
	}
}
