package query

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"testing"

	"repro/internal/archive"
)

// genJob builds a random operation tree with missions, actors, and
// timings drawn from vocabularies that exercise the tricky corners:
// numeric-looking symbols ("5", "5.0", "-1"), negative and zero
// durations, occasional infos for tree-only fields.
func genJob(rng *rand.Rand, id string) *archive.Job {
	missions := []string{"Load", "Compute", "Superstep", "Cleanup", "5", "5.0", "-1", "Zed"}
	actors := []string{"Master", "Worker-0", "Worker-1", "Worker-10", "client"}
	opSeq := 0
	var build func(depth int, lo, hi float64) *archive.Operation
	build = func(depth int, lo, hi float64) *archive.Operation {
		opSeq++
		start := lo + rng.Float64()*(hi-lo)
		end := start + rng.Float64()*(hi-start)
		if rng.Intn(10) == 0 {
			end = start // zero duration
		}
		op := &archive.Operation{
			ID:      fmt.Sprintf("%s-op%d", id, opSeq),
			Mission: missions[rng.Intn(len(missions))],
			Actor:   actors[rng.Intn(len(actors))],
			Start:   start,
			End:     end,
		}
		if rng.Intn(4) == 0 {
			op.Infos = map[string]string{"Vertices": fmt.Sprint(rng.Intn(2000))}
		}
		if rng.Intn(6) == 0 {
			op.Derived = map[string]string{"PercentOfJob": fmt.Sprint(rng.Intn(100))}
		}
		if depth < 3 {
			for i, n := 0, rng.Intn(4); i < n; i++ {
				op.Children = append(op.Children, build(depth+1, start, end))
			}
		}
		return op
	}
	lo := -10 + rng.Float64()*20
	return &archive.Job{
		ID:       id,
		Platform: []string{"Giraph", "GraphX", "PGX.D", "PowerGraph"}[rng.Intn(4)],
		Root:     build(0, lo, lo+rng.Float64()*100),
	}
}

func genMeta(rng *rand.Rand, j *archive.Job) JobMeta {
	ops := 0
	j.Root.Walk(func(*archive.Operation) { ops++ })
	return JobMeta{
		ID:         j.ID,
		Platform:   j.Platform,
		Algorithm:  []string{"BFS", "PageRank", "WCC"}[rng.Intn(3)],
		Runtime:    j.Root.Duration(),
		Supersteps: rng.Intn(30),
		Operations: ops,
	}
}

// genAggQuery emits a random valid v2 aggregate query.
func genAggQuery(rng *rand.Rand) string {
	preds := []string{
		`mission = Compute`, `mission != Superstep`, `mission = "5"`, `mission > Load`,
		`actor ~ Worker`, `actor = Master`, `duration > 1`, `duration <= 0`,
		`depth >= 1`, `depth < 2`, `start > 5`, `end <= 40`,
		`job.platform = Giraph`, `job.runtime > 20`, `job.supersteps >= 10`,
		`id ~ op1`,
	}
	var where string
	switch rng.Intn(4) {
	case 0:
	case 1:
		where = "where " + preds[rng.Intn(len(preds))] + " "
	case 2:
		where = fmt.Sprintf("where %s and %s ", preds[rng.Intn(len(preds))], preds[rng.Intn(len(preds))])
	case 3:
		where = fmt.Sprintf("where not (%s or %s) ", preds[rng.Intn(len(preds))], preds[rng.Intn(len(preds))])
	}
	groupSets := [][]string{
		{"mission"}, {"actor"}, {"depth"}, {"mission", "actor"},
		{"job.platform"}, {"job.platform", "mission"}, {"depth", "job.algorithm"},
	}
	group := groupSets[rng.Intn(len(groupSets))]
	aggPool := []string{
		"count", "sum(duration)", "avg(duration)", "min(duration)", "max(duration)",
		"p50(duration)", "p95(duration)", "p99(duration)", "min(start)", "max(end)",
		"min(mission)", "max(actor)", "min(id)", "max(job.runtime)", "sum(depth)",
	}
	rng.Shuffle(len(aggPool), func(i, j int) { aggPool[i], aggPool[j] = aggPool[j], aggPool[i] })
	aggs := aggPool[:1+rng.Intn(4)]

	if rng.Intn(6) == 0 {
		// top-k form.
		byAgg := aggs[0]
		if byAgg == "count" && rng.Intn(2) == 0 {
			byAgg = "sum(duration)"
		}
		return fmt.Sprintf("from jobs %stop %d %s by %s", where, 1+rng.Intn(4), join(group), byAgg)
	}
	q := fmt.Sprintf("from jobs %sgroup by %s agg %s", where, join(group), join(aggs))
	switch rng.Intn(3) {
	case 1:
		q += " order by " + aggs[rng.Intn(len(aggs))]
		if rng.Intn(2) == 0 {
			q += " desc"
		}
	case 2:
		q += " order by " + group[rng.Intn(len(group))] + " desc"
	}
	if rng.Intn(3) == 0 {
		q += fmt.Sprintf(" limit %d", rng.Intn(5))
	}
	return q
}

func join(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}

func marshalPartial(t *testing.T, jp JobPartial) []byte {
	t.Helper()
	b, err := json.Marshal(jp)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestAggregateFrameTreeEquivalence is the core oracle suite: for
// random jobs and random queries, the columnar frame scan and the
// tree walk must produce byte-identical partials.
func TestAggregateFrameTreeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 400; i++ {
		job := genJob(rng, fmt.Sprintf("job-%03d", i))
		meta := genMeta(rng, job)
		raw := genAggQuery(rng)
		q, err := Parse(raw)
		if err != nil {
			t.Fatalf("generated query %q does not parse: %v", raw, err)
		}
		f := BuildColumns(job).Frame(meta)
		jpF, errF := q.AggregateFrame(f)
		jpT, errT := q.AggregateTree(job, meta)
		if (errF != nil) != (errT != nil) {
			t.Fatalf("%q: frame err=%v tree err=%v", raw, errF, errT)
		}
		if errF != nil {
			continue
		}
		bf, bt := marshalPartial(t, jpF), marshalPartial(t, jpT)
		if !bytes.Equal(bf, bt) {
			t.Fatalf("%q diverged on %s:\nframe: %s\ntree:  %s", raw, job.ID, bf, bt)
		}
	}
}

// TestCrossJobOracleByteEquivalence renders a full cross-job response
// through the frame path and the tree-walk oracle: byte-identical.
func TestCrossJobOracleByteEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var jobs []*archive.Job
	var metas []JobMeta
	for i := 0; i < 25; i++ {
		j := genJob(rng, fmt.Sprintf("job-%03d", i))
		jobs = append(jobs, j)
		metas = append(metas, genMeta(rng, j))
	}
	for iter := 0; iter < 60; iter++ {
		raw := genAggQuery(rng)
		q, err := Parse(raw)
		if err != nil {
			t.Fatalf("generated query %q does not parse: %v", raw, err)
		}
		var fp, tp []JobPartial
		for i, j := range jobs {
			a, err := q.AggregateFrame(BuildColumns(j).Frame(metas[i]))
			if err != nil {
				t.Fatalf("%q: %v", raw, err)
			}
			b, err := q.AggregateTree(j, metas[i])
			if err != nil {
				t.Fatalf("%q: %v", raw, err)
			}
			fp, tp = append(fp, a), append(tp, b)
		}
		bf, err := q.RenderAggregate(raw, "jobs", "", fp)
		if err != nil {
			t.Fatal(err)
		}
		bt, err := q.RenderAggregate(raw, "jobs", "", tp)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bf, bt) {
			t.Fatalf("%q cross-job render diverged:\n%s\nvs\n%s", raw, bf, bt)
		}
	}
}

// TestMergeOrderAndReplicaInvariance: shuffling partials and
// duplicating some (replicas) must not change a byte of the merge.
func TestMergeOrderAndReplicaInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var jobs []*archive.Job
	var metas []JobMeta
	for i := 0; i < 12; i++ {
		j := genJob(rng, fmt.Sprintf("job-%03d", i))
		jobs = append(jobs, j)
		metas = append(metas, genMeta(rng, j))
	}
	for iter := 0; iter < 40; iter++ {
		raw := genAggQuery(rng)
		q, err := Parse(raw)
		if err != nil {
			t.Fatalf("generated query %q does not parse: %v", raw, err)
		}
		var partials []JobPartial
		for i, j := range jobs {
			jp, err := q.AggregateFrame(BuildColumns(j).Frame(metas[i]))
			if err != nil {
				t.Fatalf("%q: %v", raw, err)
			}
			partials = append(partials, jp)
		}
		want, err := q.RenderAggregate(raw, "jobs", "", append([]JobPartial(nil), partials...))
		if err != nil {
			t.Fatal(err)
		}
		shuffled := append([]JobPartial(nil), partials...)
		// Replicas: every job appears 1-3 times.
		for _, jp := range partials {
			for r, n := 0, rng.Intn(3); r < n; r++ {
				shuffled = append(shuffled, jp)
			}
		}
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got, err := q.RenderAggregate(raw, "jobs", "", shuffled)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("%q merge depends on partial order/replication:\n%s\nvs\n%s", raw, want, got)
		}
	}
}

// TestAggregateRepeatDeterminism runs the same query 50 times from a
// fresh parse and requires identical bytes every run.
func TestAggregateRepeatDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var jobs []*archive.Job
	var metas []JobMeta
	for i := 0; i < 10; i++ {
		j := genJob(rng, fmt.Sprintf("job-%03d", i))
		jobs = append(jobs, j)
		metas = append(metas, genMeta(rng, j))
	}
	raw := `from jobs where duration > 0 group by mission, actor agg count, sum(duration), avg(duration), p95(duration), min(actor), max(end) order by sum(duration) desc`
	var first []byte
	for run := 0; run < 50; run++ {
		q, err := Parse(raw)
		if err != nil {
			t.Fatal(err)
		}
		var partials []JobPartial
		for i, j := range jobs {
			jp, err := q.AggregateFrame(BuildColumns(j).Frame(metas[i]))
			if err != nil {
				t.Fatal(err)
			}
			partials = append(partials, jp)
		}
		body, err := q.RenderAggregate(raw, "jobs", "", partials)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = body
		} else if !bytes.Equal(first, body) {
			t.Fatalf("run %d produced different bytes:\n%s\nvs\n%s", run, first, body)
		}
	}
}

// TestAggregateNonFiniteValues pins the NaN/Inf rules: non-finite
// sums and percentiles render as their fixed strings, min/max on a
// column containing NaN falls back to deterministic string order, and
// both engines agree.
func TestAggregateNonFiniteValues(t *testing.T) {
	job := &archive.Job{
		ID: "nf",
		Root: &archive.Operation{
			ID: "r", Mission: "Job", Actor: "M", Start: 0, End: 10,
			Children: []*archive.Operation{
				{ID: "a", Mission: "X", Actor: "W", Start: 0, End: math.Inf(1)},
				{ID: "b", Mission: "X", Actor: "W", Start: math.NaN(), End: 5},
				{ID: "c", Mission: "X", Actor: "W", Start: 2, End: 4},
			},
		},
	}
	meta := JobMeta{ID: "nf", Platform: "Giraph"}
	for _, raw := range []string{
		`group by mission agg sum(duration), min(duration), max(duration), p50(duration)`,
		`group by mission agg min(start), max(start), avg(duration)`,
	} {
		q, err := Parse(raw)
		if err != nil {
			t.Fatal(err)
		}
		jpF, errF := q.AggregateFrame(BuildColumns(job).Frame(meta))
		jpT, errT := q.AggregateTree(job, meta)
		if errF != nil || errT != nil {
			t.Fatalf("%q: frame err=%v tree err=%v", raw, errF, errT)
		}
		bf, bt := marshalPartial(t, jpF), marshalPartial(t, jpT)
		if !bytes.Equal(bf, bt) {
			t.Fatalf("%q diverged on non-finite data:\n%s\nvs\n%s", raw, bf, bt)
		}
		if _, err := q.RenderAggregate(raw, "job", "nf", []JobPartial{jpF}); err != nil {
			t.Fatalf("%q: render: %v", raw, err)
		}
	}
}

// bigFrame builds a frame with rows spread over a fixed set of groups
// so the alloc gate can compare different row counts at equal group
// counts.
func bigFrame(rows int) *Frame {
	rng := rand.New(rand.NewSource(23))
	root := &archive.Operation{ID: "r", Mission: "Job", Actor: "M", Start: 0, End: 1e6}
	for i := 0; i < rows-1; i++ {
		start := rng.Float64() * 1000
		root.Children = append(root.Children, &archive.Operation{
			ID:      fmt.Sprintf("op%d", i),
			Mission: []string{"Load", "Compute", "Superstep", "Cleanup"}[i%4],
			Actor:   fmt.Sprintf("Worker-%d", i%8),
			Start:   start,
			End:     start + rng.Float64()*10,
		})
	}
	job := &archive.Job{ID: "big", Platform: "Giraph", Root: root}
	return BuildColumns(job).Frame(JobMeta{ID: "big", Platform: "Giraph", Runtime: 100})
}

// TestAggregateFrameAllocsScaleWithGroups gates the hot loop: for a
// non-percentile query, allocations are O(distinct groups), so the
// per-run alloc count must not grow with the row count.
func TestAggregateFrameAllocsScaleWithGroups(t *testing.T) {
	q, err := Parse(`from jobs where duration >= 0 group by mission, actor agg count, sum(duration), min(duration), max(actor)`)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(f *Frame) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, err := q.AggregateFrame(f); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := bigFrame(1000), bigFrame(8000)
	a1, a8 := measure(small), measure(large)
	// Same group structure at 8x the rows: identical allocations, with
	// a tiny slack for map-growth nondeterminism.
	if a8 > a1+8 {
		t.Fatalf("hot loop allocates per row: %.0f allocs at 1k rows, %.0f at 8k", a1, a8)
	}
	t.Logf("allocs: %.0f at 1k rows, %.0f at 8k rows", a1, a8)
}

// --- benchmarks: segment scan vs deserialize-and-tree-walk ---

// benchJob builds an archive shaped like a real Granula capture: a
// Job root, graph load/offload phases, and a processing phase of ~60
// supersteps each fanned out over 4 workers — ~300 operations per job.
// 1 job in 20 is a straggler with a long runtime, so zone maps on
// job.runtime can prune the other 95%.
func benchJob(rng *rand.Rand, id string, i int) (*archive.Job, JobMeta) {
	platform := []string{"Giraph", "PowerGraph", "OpenG"}[i%3]
	runtime := 50 + rng.Float64()*50
	if i%20 == 0 {
		runtime = 150 + rng.Float64()*50
	}
	root := &archive.Operation{ID: id + "-r", Mission: "Job", Actor: "Client", Start: 0, End: runtime}
	root.Children = append(root.Children,
		&archive.Operation{ID: id + "-l", Mission: "LoadGraph", Actor: "Master", Start: 0, End: runtime * 0.1})
	proc := &archive.Operation{ID: id + "-p", Mission: "ProcessGraph", Actor: "Master",
		Start: runtime * 0.1, End: runtime * 0.95}
	const steps, workers = 60, 4
	span := (proc.End - proc.Start) / steps
	for s := 0; s < steps; s++ {
		ss := &archive.Operation{
			ID: fmt.Sprintf("%s-s%d", id, s), Mission: "Superstep", Actor: "Master",
			Start: proc.Start + float64(s)*span, End: proc.Start + float64(s+1)*span,
		}
		for w := 0; w < workers; w++ {
			ss.Children = append(ss.Children, &archive.Operation{
				ID: fmt.Sprintf("%s-s%d-w%d", id, s, w), Mission: "Compute",
				Actor: fmt.Sprintf("Worker-%d", w),
				Start: ss.Start, End: ss.Start + rng.Float64()*span,
			})
		}
		proc.Children = append(proc.Children, ss)
	}
	root.Children = append(root.Children, proc,
		&archive.Operation{ID: id + "-c", Mission: "Cleanup", Actor: "Master", Start: runtime * 0.95, End: runtime})
	job := &archive.Job{ID: id, Platform: platform, Root: root}
	meta := JobMeta{
		ID: id, Platform: platform, Algorithm: []string{"BFS", "PageRank"}[i%2],
		Runtime: runtime, Supersteps: steps, Operations: 3 + steps*(workers+1),
	}
	return job, meta
}

// benchCorpus is a frozen corpus of jobs in both representations: the
// encoded columnar segments the v2 engine scans, and the persisted
// JSON records the v1 path would deserialize and walk.
type benchCorpus struct {
	segs  [][]byte
	blobs [][]byte
	metas []JobMeta
	query *Query
	raw   string
}

func buildBenchCorpus(tb testing.TB, jobs int, raw string) *benchCorpus {
	tb.Helper()
	rng := rand.New(rand.NewSource(29))
	q, err := Parse(raw)
	if err != nil {
		tb.Fatal(err)
	}
	c := &benchCorpus{query: q, raw: raw}
	for i := 0; i < jobs; i++ {
		j, meta := benchJob(rng, fmt.Sprintf("job-%04d", i), i)
		seg, err := EncodeSegment(BuildColumns(j).Frame(meta), 1)
		if err != nil {
			tb.Fatal(err)
		}
		blob, err := json.Marshal(j)
		if err != nil {
			tb.Fatal(err)
		}
		c.segs = append(c.segs, seg)
		c.blobs = append(c.blobs, blob)
		c.metas = append(c.metas, meta)
	}
	return c
}

const benchQuery = `from jobs where mission = Compute group by job.platform, actor agg count, sum(duration), max(duration)`
const benchPrunedQuery = `from jobs where job.runtime > 120 group by job.platform agg count, max(job.runtime)`

// runSegments is the production read path in miniature: decode the
// zone-map footer from the segment tail, prune if the stats prove no
// row can match, and only decode the body of surviving segments.
func (c *benchCorpus) runSegments(tb testing.TB) ([]byte, int) {
	partials := make([]JobPartial, 0, len(c.segs))
	pruned := 0
	for _, seg := range c.segs {
		tail := seg
		if len(tail) > SegmentTailHint {
			tail = seg[len(seg)-SegmentTailHint:]
		}
		st, err := DecodeSegmentStats(tail, int64(len(seg)))
		if err != nil {
			tb.Fatal(err)
		}
		if c.query.PruneAgainst(st) {
			pruned++
			partials = append(partials, PrunedPartial(st.Meta.ID))
			continue
		}
		f, _, err := DecodeSegment(seg)
		if err != nil {
			tb.Fatal(err)
		}
		jp, err := c.query.AggregateFrame(f)
		if err != nil {
			tb.Fatal(err)
		}
		partials = append(partials, jp)
	}
	body, err := c.query.RenderAggregate(c.raw, "jobs", "", partials)
	if err != nil {
		tb.Fatal(err)
	}
	return body, pruned
}

func (c *benchCorpus) runTreeWalk(tb testing.TB) []byte {
	partials := make([]JobPartial, 0, len(c.blobs))
	for i, blob := range c.blobs {
		var j archive.Job
		if err := json.Unmarshal(blob, &j); err != nil {
			tb.Fatal(err)
		}
		jp, err := c.query.AggregateTree(&j, c.metas[i])
		if err != nil {
			tb.Fatal(err)
		}
		partials = append(partials, jp)
	}
	body, err := c.query.RenderAggregate(c.raw, "jobs", "", partials)
	if err != nil {
		tb.Fatal(err)
	}
	return body
}

// BenchmarkAggregateSegments is the v2 path: decode columnar segments
// and scan them. Compare with BenchmarkAggregateTreeWalkBaseline —
// the v1 way to answer the same question (deserialize every archived
// job, walk its tree).
func BenchmarkAggregateSegments(b *testing.B) {
	c := buildBenchCorpus(b, 1000, benchQuery)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.runSegments(b)
	}
}

// BenchmarkAggregateSegmentsPruned is the zone-map payoff case: the
// predicate folds exactly against per-segment stats, so ~95% of the
// corpus is answered from footers without decoding a body.
func BenchmarkAggregateSegmentsPruned(b *testing.B) {
	c := buildBenchCorpus(b, 1000, benchPrunedQuery)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.runSegments(b)
	}
}

func BenchmarkAggregateTreeWalkBaseline(b *testing.B) {
	c := buildBenchCorpus(b, 1000, benchQuery)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.runTreeWalk(b)
	}
}

func BenchmarkAggregateTreeWalkPrunedBaseline(b *testing.B) {
	c := buildBenchCorpus(b, 1000, benchPrunedQuery)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.runTreeWalk(b)
	}
}

// TestBenchPathsAgree pins that the benchmark paths answer the same
// bytes — with and without pruning in play — so the speedups are
// apples-to-apples.
func TestBenchPathsAgree(t *testing.T) {
	for _, raw := range []string{benchQuery, benchPrunedQuery} {
		c := buildBenchCorpus(t, 50, raw)
		got, pruned := c.runSegments(t)
		want := c.runTreeWalk(t)
		if !bytes.Equal(got, want) {
			t.Fatalf("%q: bench paths disagree:\n%s\nvs\n%s", raw, got, want)
		}
		if raw == benchPrunedQuery && pruned == 0 {
			t.Fatalf("%q: pruning benchmark prunes nothing", raw)
		}
	}
}

// TestEmitQuery2BenchJSON records the cross-job aggregation numbers
// (segment scan vs deserialize-and-tree-walk over 1000 jobs) as JSON
// when BENCH_QUERY2_OUT names a path. CI uploads the file as the
// BENCH_query2 artifact; EXPERIMENTS.md quotes it.
func TestEmitQuery2BenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_QUERY2_OUT")
	if path == "" {
		t.Skip("BENCH_QUERY2_OUT not set")
	}
	seg := testing.Benchmark(BenchmarkAggregateSegments)
	tree := testing.Benchmark(BenchmarkAggregateTreeWalkBaseline)
	segP := testing.Benchmark(BenchmarkAggregateSegmentsPruned)
	treeP := testing.Benchmark(BenchmarkAggregateTreeWalkPrunedBaseline)
	_, prunedCount := buildBenchCorpus(t, 1000, benchPrunedQuery).runSegments(t)
	report := struct {
		Jobs                 int     `json:"jobs"`
		Query                string  `json:"query"`
		SegmentsNsOp         int64   `json:"segments_ns_per_op"`
		TreeWalkNsOp         int64   `json:"tree_walk_ns_per_op"`
		Speedup              float64 `json:"speedup"`
		SegmentsAllocs       int64   `json:"segments_allocs_per_op"`
		TreeWalkAllocs       int64   `json:"tree_walk_allocs_per_op"`
		PrunedQuery          string  `json:"pruned_query"`
		PrunedSegmentsNsOp   int64   `json:"pruned_segments_ns_per_op"`
		PrunedTreeWalkNsOp   int64   `json:"pruned_tree_walk_ns_per_op"`
		PrunedSpeedup        float64 `json:"pruned_speedup"`
		PrunedSegmentsOf1000 int     `json:"pruned_segments_of_1000"`
	}{
		Jobs:                 1000,
		Query:                benchQuery,
		SegmentsNsOp:         seg.NsPerOp(),
		TreeWalkNsOp:         tree.NsPerOp(),
		Speedup:              float64(tree.NsPerOp()) / float64(seg.NsPerOp()),
		SegmentsAllocs:       seg.AllocsPerOp(),
		TreeWalkAllocs:       tree.AllocsPerOp(),
		PrunedQuery:          benchPrunedQuery,
		PrunedSegmentsNsOp:   segP.NsPerOp(),
		PrunedTreeWalkNsOp:   treeP.NsPerOp(),
		PrunedSpeedup:        float64(treeP.NsPerOp()) / float64(segP.NsPerOp()),
		PrunedSegmentsOf1000: prunedCount,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s\n%s", path, data)
}
