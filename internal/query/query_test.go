package query

import (
	"testing"

	"repro/internal/archive"
)

func testJob() *archive.Job {
	return &archive.Job{
		ID: "q",
		Root: &archive.Operation{
			ID: "r", Mission: "Job", Actor: "Client", Start: 0, End: 20,
			Children: []*archive.Operation{
				{ID: "a", Mission: "LoadGraph", Actor: "Master", Start: 0, End: 8,
					Infos: map[string]string{"Bytes": "1000"},
					Children: []*archive.Operation{
						{ID: "a1", Mission: "LocalLoad", Actor: "Worker-0", Start: 0, End: 7},
						{ID: "a2", Mission: "LocalLoad", Actor: "Worker-1", Start: 0, End: 8},
					}},
				{ID: "b", Mission: "ProcessGraph", Actor: "Master", Start: 8, End: 18,
					Children: []*archive.Operation{
						{ID: "b1", Mission: "Compute", Actor: "Worker-0", Start: 8, End: 12,
							Infos: map[string]string{"Vertices": "500"}},
						{ID: "b2", Mission: "Compute", Actor: "Worker-1", Start: 8, End: 18,
							Infos:   map[string]string{"Vertices": "1500"},
							Derived: map[string]string{"PercentOfJob": "50"}},
					}},
				{ID: "c", Mission: "Cleanup", Actor: "Client", Start: 18, End: 20},
			},
		},
	}
}

func ids(ops []*archive.Operation) []string {
	var out []string
	for _, op := range ops {
		out = append(out, op.ID)
	}
	return out
}

func selectIDs(t *testing.T, q string) []string {
	t.Helper()
	parsed, err := Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	return ids(parsed.Select(testJob()))
}

func eq(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSimplePredicates(t *testing.T) {
	eq(t, selectIDs(t, `mission = Compute`), []string{"b1", "b2"})
	eq(t, selectIDs(t, `actor = Worker-1`), []string{"a2", "b2"})
	eq(t, selectIDs(t, `actor ~ Worker`), []string{"a1", "a2", "b1", "b2"})
	eq(t, selectIDs(t, `duration > 9`), []string{"r", "b", "b2"})
	eq(t, selectIDs(t, `start >= 18`), []string{"c"})
	eq(t, selectIDs(t, `depth = 0`), []string{"r"})
	eq(t, selectIDs(t, `id = b1`), []string{"b1"})
	eq(t, selectIDs(t, `end <= 8`), []string{"a", "a1", "a2"})
}

func TestInfoAndDerivedFields(t *testing.T) {
	eq(t, selectIDs(t, `info.Vertices >= 1000`), []string{"b2"})
	eq(t, selectIDs(t, `info.Bytes = 1000`), []string{"a"})
	eq(t, selectIDs(t, `derived.PercentOfJob > 10`), []string{"b2"})
	// Missing keys never match.
	eq(t, selectIDs(t, `info.Nope = 1`), nil)
}

func TestBooleanCombinators(t *testing.T) {
	eq(t, selectIDs(t, `mission = Compute and duration > 5`), []string{"b2"})
	eq(t, selectIDs(t, `mission = Cleanup or mission = LoadGraph`), []string{"a", "c"})
	eq(t, selectIDs(t, `not mission = Compute and depth = 2`), []string{"a1", "a2"})
	eq(t, selectIDs(t, `(mission = Compute or mission = LocalLoad) and actor = Worker-0`),
		[]string{"a1", "b1"})
	eq(t, selectIDs(t, `mission != Job and depth < 2`), []string{"a", "b", "c"})
}

func TestOrderByAndLimit(t *testing.T) {
	eq(t, selectIDs(t, `mission ~ o and depth > 0 order by duration desc limit 3`),
		[]string{"b", "b2", "a"})
	eq(t, selectIDs(t, `depth = 2 order by duration asc`),
		[]string{"b1", "a1", "a2", "b2"})
	eq(t, selectIDs(t, `depth = 2 order by actor desc limit 2`),
		[]string{"a2", "b2"})
	eq(t, selectIDs(t, `limit 2`), []string{"r", "a"})
}

func TestEmptyQueryMatchesEverything(t *testing.T) {
	got := selectIDs(t, `order by start`)
	if len(got) != 8 {
		t.Fatalf("got %d ops, want 8", len(got))
	}
}

func TestQuotedValues(t *testing.T) {
	eq(t, selectIDs(t, `actor = "Worker-1"`), []string{"a2", "b2"})
	eq(t, selectIDs(t, `mission ~ "Gr"`), []string{"a", "b"})
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`mission =`,                // missing value
		`mission`,                  // missing operator
		`bogusfield = 1`,           // unknown field
		`mission == Compute extra`, // trailing junk... actually == parses as = then =; see below
		`(mission = Compute`,       // missing paren
		`mission = "unterminated`,  // bad string
		`order by`,                 // missing field
		`limit abc`,                // bad limit
		`limit -1`,                 // negative limit... lexes as token "-1"? Atoi parses -1, n<0 rejected
		`mission ? x`,              // bad operator
		`"mission" = x`,            // quoted field
		`and mission = x`,          // dangling combinator
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("expected parse error for %q", q)
		}
	}
}

func TestSelectOnEmptyJob(t *testing.T) {
	q, err := Parse(`mission = X`)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Select(&archive.Job{ID: "empty"}); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestNumericVsStringComparison(t *testing.T) {
	// "1000" as number: 1000 > 200 numerically, but "1000" < "200"
	// lexically — the numeric path must win when both parse.
	eq(t, selectIDs(t, `info.Bytes > 200`), []string{"a"})
	// String comparison for non-numeric values.
	eq(t, selectIDs(t, `mission > ProcessGraph and depth = 1`), nil)
}

func TestCompareValuesEdgeCases(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		// Plain numerics: "10" vs "9" must compare numerically (10 > 9),
		// not lexically ("10" < "9").
		{"10", "9", 1},
		{"9", "10", -1},
		{"10", "10", 0},
		// NaN is unordered as a float; string compare keeps a total order.
		{"NaN", "10", 1}, // "NaN" > "10" lexically
		{"10", "NaN", -1},
		{"NaN", "NaN", 0},
		// Infinities likewise fall back to string compare.
		{"Inf", "10", 1},
		{"+Inf", "-Inf", -1}, // lexical: '+' sorts before '-'
		{"-Inf", "10", -1},   // "-Inf" < "10" lexically
		{"Inf", "Inf", 0},
	}
	for _, c := range cases {
		if got := compareValues(c.a, c.b); got != c.want {
			t.Errorf("compareValues(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestNonFinitePredicateKeepsTotalOrder(t *testing.T) {
	// A NaN info value must land on exactly one side of every comparison
	// split: with float semantics, both `> 10` and `<= 10` would be false
	// and the operation would vanish from both result sets.
	job := &archive.Job{
		ID: "nan",
		Root: &archive.Operation{
			ID: "r", Mission: "Job", Actor: "Client", Start: 0, End: 1,
			Infos: map[string]string{"Bytes": "NaN"},
		},
	}
	sel := func(qs string) []*archive.Operation {
		t.Helper()
		q, err := Parse(qs)
		if err != nil {
			t.Fatalf("parse %q: %v", qs, err)
		}
		return q.Select(job)
	}
	gt := sel(`info.Bytes > 10`)
	le := sel(`info.Bytes <= 10`)
	if len(gt)+len(le) != 1 {
		t.Fatalf("NaN info matched %d of the {>, <=} split, want exactly 1", len(gt)+len(le))
	}
}
