// Query language v2: aggregation and cross-job scope.
//
// The v1 grammar filters, orders, and limits the operations of a single
// job. v2 adds three clauses that turn a query into an aggregation:
//
//	[from jobs] [<where>] group by <field>[, <field>...]
//	            [agg <fn>[, <fn>...]] [order by <field>|<fn> [asc|desc]]
//	            [limit N]
//	[from jobs] [<where>] top <k> <field>[, <field>...] by <fn>
//
// Aggregate functions: count, sum(f), avg(f), min(f), max(f), p50(f),
// p95(f), p99(f). sum/avg/percentiles require a numeric field
// (duration, start, end, depth, job.runtime, job.supersteps,
// job.operations); min/max accept any field. Group-by fields must be
// discrete: mission, actor, id, depth, or a job.* field.
//
// `from jobs` widens the scope from one job to every archived job and
// is only meaningful for aggregations (a cross-job row query would have
// no stable row identity), so it requires group by / top. The job.*
// fields — job.id, job.platform, job.algorithm, job.runtime,
// job.supersteps, job.operations — are constant per job and usable in
// the where clause and aggregates of aggregate queries.
//
// `top k f by fn` is sugar for
// `group by f agg fn order by fn desc limit k`.
package query

import (
	"fmt"
	"strconv"
	"strings"
)

// JobMeta is the job-level metadata queryable through the job.* fields.
// It rides along with every columnar frame and segment so aggregate
// queries can filter and group on job identity without loading the
// archive tree.
type JobMeta struct {
	ID         string  `json:"id"`
	Platform   string  `json:"platform"`
	Algorithm  string  `json:"algorithm"`
	Runtime    float64 `json:"runtime"`
	Supersteps int     `json:"supersteps"`
	Operations int     `json:"operations"`
}

// Field resolves a (lower-cased) job.* field to the string form the
// query engine compares and groups on.
func (m *JobMeta) Field(lf string) (string, bool) {
	switch lf {
	case "job.id":
		return m.ID, true
	case "job.platform":
		return m.Platform, true
	case "job.algorithm":
		return m.Algorithm, true
	case "job.runtime":
		return formatNumField(m.Runtime), true
	case "job.supersteps":
		return strconv.Itoa(m.Supersteps), true
	case "job.operations":
		return strconv.Itoa(m.Operations), true
	}
	return "", false
}

// numField resolves the numeric job.* fields.
func (m *JobMeta) numField(lf string) (float64, bool) {
	switch lf {
	case "job.runtime":
		return m.Runtime, true
	case "job.supersteps":
		return float64(m.Supersteps), true
	case "job.operations":
		return float64(m.Operations), true
	}
	return 0, false
}

func jobFieldKnown(lf string) bool {
	switch lf {
	case "job.id", "job.platform", "job.algorithm", "job.runtime", "job.supersteps", "job.operations":
		return true
	}
	return false
}

// aggSpec is one aggregate in the agg list: a function and, except for
// count, the field it aggregates.
type aggSpec struct {
	fn    string // count sum avg min max p50 p95 p99
	field string // "" for count
}

// name is the aggregate's stable display name, used as the key in
// rendered results and for order-by-aggregate matching.
func (a aggSpec) name() string {
	if a.fn == "count" {
		return "count"
	}
	return a.fn + "(" + a.field + ")"
}

func (a aggSpec) equal(b aggSpec) bool {
	return a.fn == b.fn && strings.EqualFold(a.field, b.field)
}

var aggFns = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
	"p50": true, "p95": true, "p99": true,
}

// percentileRank returns the percentile (50, 95, 99) for pXX functions.
func percentileRank(fn string) (int, bool) {
	switch fn {
	case "p50":
		return 50, true
	case "p95":
		return 95, true
	case "p99":
		return 99, true
	}
	return 0, false
}

// IsAggregate reports whether the query has a group by / top clause.
func (q *Query) IsAggregate() bool { return len(q.groupBy) > 0 }

// FromJobs reports whether the query scans every archived job.
func (q *Query) FromJobs() bool { return q.fromJobs }

// GroupFields returns the group-by field list as written.
func (q *Query) GroupFields() []string {
	return append([]string(nil), q.groupBy...)
}

// AggNames returns the display names of the aggregate list.
func (q *Query) AggNames() []string {
	out := make([]string, len(q.aggs))
	for i, a := range q.aggs {
		out[i] = a.name()
	}
	return out
}

// NeedsOps reports whether evaluating the query requires per-operation
// info/derived maps, which columnar segments do not carry. Such queries
// run only against sources that retain the operation tree.
func (q *Query) NeedsOps() bool {
	needs := false
	walkPredicates(q.where, func(pr predicate) {
		if opsOnlyField(pr.field) {
			needs = true
		}
	})
	for _, a := range q.aggs {
		if a.field != "" && opsOnlyField(a.field) {
			needs = true
		}
	}
	for _, f := range q.groupBy {
		if opsOnlyField(f) {
			needs = true
		}
	}
	return needs
}

func opsOnlyField(f string) bool {
	lf := strings.ToLower(f)
	return strings.HasPrefix(lf, "info.") || strings.HasPrefix(lf, "derived.")
}

func walkPredicates(e expr, fn func(pr predicate)) {
	switch t := e.(type) {
	case orExpr:
		walkPredicates(t.a, fn)
		walkPredicates(t.b, fn)
	case andExpr:
		walkPredicates(t.a, fn)
		walkPredicates(t.b, fn)
	case notExpr:
		walkPredicates(t.a, fn)
	case predicate:
		fn(t)
	}
}

// --- parsing ---

// symIs reports whether the next token is the unquoted punctuation s.
func (p *parser) symIs(s string) bool {
	return p.pos < len(p.toks) && !p.toks[p.pos].quoted && p.toks[p.pos].text == s
}

// parseAggClause parses an optional `group by ...` or `top k ...`
// clause into q.
func (p *parser) parseAggClause(q *Query) error {
	switch {
	case p.peekIs("group"):
		p.next()
		if !p.peekIs("by") {
			return fmt.Errorf("query: expected 'by' after 'group'")
		}
		p.next()
		fields, err := p.parseFieldList()
		if err != nil {
			return err
		}
		q.groupBy = fields
		if p.peekIs("agg") {
			p.next()
			aggs, err := p.parseAggList()
			if err != nil {
				return err
			}
			q.aggs = aggs
		} else {
			q.aggs = []aggSpec{{fn: "count"}}
		}
		return nil
	case p.peekIs("top"):
		p.next()
		if p.done() {
			return fmt.Errorf("query: expected count after 'top'")
		}
		ntok := p.next()
		n, err := strconv.Atoi(ntok.text)
		if err != nil || ntok.quoted || n <= 0 {
			return fmt.Errorf("query: bad top count %q", ntok.text)
		}
		fields, err := p.parseFieldList()
		if err != nil {
			return err
		}
		if !p.peekIs("by") {
			return fmt.Errorf("query: expected 'by' after top fields")
		}
		p.next()
		spec, err := p.parseAggSpec()
		if err != nil {
			return err
		}
		q.groupBy = fields
		q.aggs = []aggSpec{spec}
		q.orderAgg = &spec
		q.desc = true
		q.limit = n
		q.top = true
		return nil
	}
	return nil
}

// parseFieldList parses one or more comma-separated field names.
func (p *parser) parseFieldList() ([]string, error) {
	var out []string
	for {
		if p.done() {
			return nil, fmt.Errorf("query: expected field name")
		}
		t := p.next()
		if t.quoted {
			return nil, fmt.Errorf("query: field name cannot be quoted")
		}
		out = append(out, t.text)
		if !p.symIs(",") {
			return out, nil
		}
		p.next()
	}
}

// parseAggList parses one or more comma-separated aggregate specs.
func (p *parser) parseAggList() ([]aggSpec, error) {
	var out []aggSpec
	for {
		spec, err := p.parseAggSpec()
		if err != nil {
			return nil, err
		}
		out = append(out, spec)
		if !p.symIs(",") {
			return out, nil
		}
		p.next()
	}
}

// parseAggSpec parses `count`, `count()`, or `fn(field)`.
func (p *parser) parseAggSpec() (aggSpec, error) {
	if p.done() {
		return aggSpec{}, fmt.Errorf("query: expected aggregate")
	}
	t := p.next()
	fn := strings.ToLower(t.text)
	if t.quoted || !aggFns[fn] {
		return aggSpec{}, fmt.Errorf("query: unknown aggregate %q", t.text)
	}
	if fn == "count" {
		if p.symIs("(") {
			p.next()
			if !p.symIs(")") {
				return aggSpec{}, fmt.Errorf("query: count takes no field")
			}
			p.next()
		}
		return aggSpec{fn: "count"}, nil
	}
	if !p.symIs("(") {
		return aggSpec{}, fmt.Errorf("query: expected '(' after %q", t.text)
	}
	p.next()
	if p.done() {
		return aggSpec{}, fmt.Errorf("query: expected field in %s()", fn)
	}
	ft := p.next()
	if ft.quoted {
		return aggSpec{}, fmt.Errorf("query: field name cannot be quoted")
	}
	if !p.symIs(")") {
		return aggSpec{}, fmt.Errorf("query: expected ')' after %s(%s", fn, ft.text)
	}
	p.next()
	return aggSpec{fn: fn, field: ft.text}, nil
}

// parseAggOrderTarget parses the order-by target of an aggregate query:
// either a group-by field or one of the declared aggregates.
func (p *parser) parseAggOrderTarget(q *Query) error {
	t := p.toks[p.pos]
	if !t.quoted && aggFns[strings.ToLower(t.text)] {
		spec, err := p.parseAggSpec()
		if err != nil {
			return err
		}
		q.orderAgg = &spec
		return nil
	}
	q.orderBy = p.next().text
	return nil
}

// --- validation ---

func validGroupField(f string) bool {
	lf := strings.ToLower(f)
	switch lf {
	case "mission", "actor", "id", "depth":
		return true
	}
	if strings.HasPrefix(lf, "job.") {
		return jobFieldKnown(lf)
	}
	// info./derived. keys are discrete too; they aggregate only on
	// sources that retain the operation tree (enforced at plan time).
	return strings.HasPrefix(lf, "info.") || strings.HasPrefix(lf, "derived.")
}

func numericAggField(f string) bool {
	lf := strings.ToLower(f)
	switch lf {
	case "duration", "start", "end", "depth", "job.runtime", "job.supersteps", "job.operations":
		return true
	}
	return false
}

func (a aggSpec) validate() error {
	switch a.fn {
	case "count":
		return nil
	case "sum", "avg", "p50", "p95", "p99":
		if !numericAggField(a.field) {
			return fmt.Errorf("query: %s requires a numeric field, got %q", a.fn, a.field)
		}
		return nil
	case "min", "max":
		if err := validateField(a.field); err != nil {
			return fmt.Errorf("query: bad field in %s(): %v", a.fn, err)
		}
		return nil
	}
	return fmt.Errorf("query: unknown aggregate %q", a.fn)
}

func firstJobField(e expr) string {
	found := ""
	walkPredicates(e, func(pr predicate) {
		if found == "" && strings.HasPrefix(strings.ToLower(pr.field), "job.") {
			found = pr.field
		}
	})
	return found
}

// validate enforces the cross-clause rules the recursive-descent parser
// cannot express locally.
func (q *Query) validate() error {
	if !q.IsAggregate() {
		if q.fromJobs {
			return fmt.Errorf("query: 'from jobs' requires 'group by' or 'top'")
		}
		if q.where != nil {
			if f := firstJobField(q.where); f != "" {
				return fmt.Errorf("query: field %q is only available in aggregate queries", f)
			}
		}
		return nil
	}
	seen := map[string]bool{}
	for _, f := range q.groupBy {
		if !validGroupField(f) {
			return fmt.Errorf("query: cannot group by %q", f)
		}
		lf := strings.ToLower(f)
		if seen[lf] {
			return fmt.Errorf("query: duplicate group field %q", f)
		}
		seen[lf] = true
	}
	names := map[string]bool{}
	for _, a := range q.aggs {
		if err := a.validate(); err != nil {
			return err
		}
		n := strings.ToLower(a.name())
		if names[n] {
			return fmt.Errorf("query: duplicate aggregate %q", a.name())
		}
		names[n] = true
	}
	if q.orderAgg != nil {
		found := false
		for i := range q.aggs {
			if q.aggs[i].equal(*q.orderAgg) {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("query: order by %s is not in the agg list", q.orderAgg.name())
		}
	} else if q.orderBy != "" {
		found := false
		for _, f := range q.groupBy {
			if strings.EqualFold(f, q.orderBy) {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("query: order by %q is not a group field; use an aggregate", q.orderBy)
		}
	}
	return nil
}
