//go:build race

package query

// raceEnabled reports that this binary was built with -race; allocation
// gates skip themselves because the race runtime adds bookkeeping
// allocations the gate would misattribute to the hot path.
const raceEnabled = true
