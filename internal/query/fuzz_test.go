package query

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/archive"
)

// TestParseNeverPanicsProperty feeds the parser random byte soup and
// random near-grammatical strings: it must return an error or a query,
// never panic, and any query it returns must Select without panicking.
func TestParseNeverPanicsProperty(t *testing.T) {
	job := &archive.Job{
		ID: "f",
		Root: &archive.Operation{
			ID: "r", Mission: "Job", Start: 0, End: 10,
			Children: []*archive.Operation{
				{ID: "a", Mission: "A", Actor: "x", Start: 0, End: 5,
					Infos: map[string]string{"K": "1"}},
			},
		},
	}
	words := []string{
		"mission", "actor", "duration", "depth", "info.K", "derived.D",
		"=", "!=", "~", ">", ">=", "<", "<=", "and", "or", "not", "(", ")",
		"order", "by", "limit", "asc", "desc", "Compute", "1.5", `"quo ted"`,
		"bogus", "", "==", "<>",
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var input string
		if rng.Intn(2) == 0 {
			// Random word salad from the token vocabulary.
			n := rng.Intn(12)
			for i := 0; i < n; i++ {
				input += words[rng.Intn(len(words))] + " "
			}
		} else {
			// Random bytes.
			b := make([]byte, rng.Intn(40))
			for i := range b {
				b[i] = byte(rng.Intn(128))
			}
			input = string(b)
		}
		q, err := Parse(input)
		if err != nil {
			return true
		}
		_ = q.Select(job)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// FuzzQueryV2 drives the whole v2 pipeline with arbitrary input: any
// string that parses must plan and execute over both the columnar
// frame and the tree walker without panicking, the two engines must
// produce identical partials, and rendering must succeed. Segment
// encode/decode of the fuzz job must also round-trip to the same
// aggregation.
func FuzzQueryV2(f *testing.F) {
	seeds := []string{
		`from jobs group by mission`,
		`from jobs where mission = Compute group by mission, actor agg count, sum(duration), p95(duration)`,
		`from jobs where job.runtime > 1 group by job.platform agg max(job.runtime) order by max(job.runtime) desc`,
		`from jobs top 3 mission by sum(duration)`,
		`group by depth agg count, min(mission), max(actor) order by count desc limit 2`,
		`from jobs where not (duration <= 0 or mission = "5.0") group by actor agg avg(duration)`,
		`mission = Compute order by duration desc limit 5`,
		`from jobs where`, `group by`, `top`, `agg`, `from jobs top 99999999 mission by count`,
		"from jobs group by mission agg \x00", `from jobs group by mission limit 99`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	job := &archive.Job{
		ID: "fz", Platform: "Giraph",
		Root: &archive.Operation{
			ID: "r", Mission: "Job", Actor: "Client", Start: -1, End: 20,
			Children: []*archive.Operation{
				{ID: "a", Mission: "5", Actor: "Worker-0", Start: 0, End: 5,
					Infos: map[string]string{"K": "1"}},
				{ID: "b", Mission: "5.0", Actor: "Worker-1", Start: 0, End: 0},
				{ID: "c", Mission: "Compute", Actor: "Worker-0", Start: 2, End: 9,
					Derived: map[string]string{"D": "x"}},
			},
		},
	}
	meta := JobMeta{ID: "fz", Platform: "Giraph", Algorithm: "BFS", Runtime: 21, Supersteps: 2, Operations: 4}
	frame := BuildColumns(job).Frame(meta)
	seg, err := EncodeSegment(frame, 1)
	if err != nil {
		f.Fatal(err)
	}
	decoded, stats, err := DecodeSegment(seg)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		if !q.IsAggregate() {
			_ = q.Select(job)
			_ = q.SelectColumns(BuildColumns(job))
			return
		}
		jpF, errF := q.AggregateFrame(frame)
		jpT, errT := q.AggregateTree(job, meta)
		if (errF != nil) != (errT != nil) {
			t.Fatalf("%q: frame err=%v, tree err=%v", input, errF, errT)
		}
		if errF != nil {
			return
		}
		bf, _ := json.Marshal(jpF)
		bt, _ := json.Marshal(jpT)
		if string(bf) != string(bt) {
			t.Fatalf("%q: frame and tree partials diverge:\n%s\nvs\n%s", input, bf, bt)
		}
		// The decoded segment agrees too, unless the query needs
		// operation details segments do not store.
		jpS, errS := q.AggregateFrame(decoded)
		if q.NeedsOps() {
			if errS == nil {
				t.Fatalf("%q needs ops but ran on a segment frame", input)
			}
		} else if errS != nil {
			t.Fatalf("%q: segment frame: %v", input, errS)
		} else {
			bs, _ := json.Marshal(jpS)
			if string(bs) != string(bf) {
				t.Fatalf("%q: segment partial diverges:\n%s\nvs\n%s", input, bs, bf)
			}
			// Pruning must be sound for whatever predicate came in.
			if q.PruneAgainst(stats) && jpF.Rows != 0 {
				t.Fatalf("%q: pruned a segment with %d matching rows", input, jpF.Rows)
			}
		}
		if _, err := q.RenderAggregate(input, "jobs", "", []JobPartial{jpF}); err != nil {
			t.Fatalf("%q: render: %v", input, err)
		}
	})
}
