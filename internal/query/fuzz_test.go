package query

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/archive"
)

// TestParseNeverPanicsProperty feeds the parser random byte soup and
// random near-grammatical strings: it must return an error or a query,
// never panic, and any query it returns must Select without panicking.
func TestParseNeverPanicsProperty(t *testing.T) {
	job := &archive.Job{
		ID: "f",
		Root: &archive.Operation{
			ID: "r", Mission: "Job", Start: 0, End: 10,
			Children: []*archive.Operation{
				{ID: "a", Mission: "A", Actor: "x", Start: 0, End: 5,
					Infos: map[string]string{"K": "1"}},
			},
		},
	}
	words := []string{
		"mission", "actor", "duration", "depth", "info.K", "derived.D",
		"=", "!=", "~", ">", ">=", "<", "<=", "and", "or", "not", "(", ")",
		"order", "by", "limit", "asc", "desc", "Compute", "1.5", `"quo ted"`,
		"bogus", "", "==", "<>",
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var input string
		if rng.Intn(2) == 0 {
			// Random word salad from the token vocabulary.
			n := rng.Intn(12)
			for i := 0; i < n; i++ {
				input += words[rng.Intn(len(words))] + " "
			}
		} else {
			// Random bytes.
			b := make([]byte, rng.Intn(40))
			for i := range b {
				b[i] = byte(rng.Intn(128))
			}
			input = string(b)
		}
		q, err := Parse(input)
		if err != nil {
			return true
		}
		_ = q.Select(job)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
