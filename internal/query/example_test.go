package query_test

import (
	"fmt"

	"repro/internal/archive"
	"repro/internal/query"
)

// Select the slowest compute operations from an archived job.
func ExampleParse() {
	job := &archive.Job{
		ID: "demo",
		Root: &archive.Operation{
			ID: "r", Mission: "Job", Start: 0, End: 10,
			Children: []*archive.Operation{
				{ID: "c1", Mission: "Compute", Actor: "Worker-0", Start: 0, End: 4},
				{ID: "c2", Mission: "Compute", Actor: "Worker-1", Start: 0, End: 7},
				{ID: "s", Mission: "Sync", Actor: "Worker-0", Start: 7, End: 8},
			},
		},
	}
	q, err := query.Parse(`mission = Compute order by duration desc limit 1`)
	if err != nil {
		fmt.Println("parse error:", err)
		return
	}
	for _, op := range q.Select(job) {
		fmt.Printf("%s by %s: %.0fs\n", op.Mission, op.Actor, op.Duration())
	}
	// Output:
	// Compute by Worker-1: 7s
}
