package query

import (
	"encoding/json"
	"strings"
	"testing"
)

func parseOK(t *testing.T, input string) *Query {
	t.Helper()
	q, err := Parse(input)
	if err != nil {
		t.Fatalf("parse %q: %v", input, err)
	}
	return q
}

func TestParseV2GroupBy(t *testing.T) {
	q := parseOK(t, `from jobs where mission = Compute group by mission, actor agg count, avg(duration) order by avg(duration) desc limit 3`)
	if !q.IsAggregate() || !q.FromJobs() {
		t.Fatalf("expected cross-job aggregate, got aggregate=%v fromJobs=%v", q.IsAggregate(), q.FromJobs())
	}
	if got := strings.Join(q.GroupFields(), ","); got != "mission,actor" {
		t.Fatalf("group fields = %q", got)
	}
	if got := strings.Join(q.AggNames(), ","); got != "count,avg(duration)" {
		t.Fatalf("agg names = %q", got)
	}
}

func TestParseV2DefaultAggIsCount(t *testing.T) {
	q := parseOK(t, `group by mission`)
	if q.FromJobs() {
		t.Fatal("no 'from jobs' prefix, but FromJobs() is true")
	}
	if got := strings.Join(q.AggNames(), ","); got != "count" {
		t.Fatalf("agg names = %q, want count", got)
	}
}

func TestParseV2JobFieldsAndNeedsOps(t *testing.T) {
	q := parseOK(t, `from jobs where job.runtime > 1 group by job.platform agg count, max(job.runtime)`)
	if q.NeedsOps() {
		t.Fatal("job.* query should not need operation details")
	}
	q = parseOK(t, `from jobs group by info.Vertices`)
	if !q.NeedsOps() {
		t.Fatal("info.* group field must report NeedsOps")
	}
	q = parseOK(t, `from jobs where info.Vertices > 10 group by mission`)
	if !q.NeedsOps() {
		t.Fatal("info.* predicate must report NeedsOps")
	}
}

func TestParseV2Rejects(t *testing.T) {
	bad := []string{
		`from jobs`,                                         // aggregation required
		`from jobs where mission = Compute`,                 // row query across jobs
		`from jobs mission = Compute`,                       // missing where
		`job.platform = Giraph`,                             // job.* needs aggregation
		`group by duration`,                                 // not a group field
		`group by start`,                                    // not a group field
		`group by mission, mission`,                         // duplicate group field
		`group by mission agg sum(mission)`,                 // sum needs numeric field
		`group by mission agg avg(actor)`,                   // avg needs numeric field
		`group by mission agg p95(mission)`,                 // percentile needs numeric field
		`group by mission agg count, count`,                 // duplicate agg name
		`group by mission agg sum(duration), sum(duration)`, // duplicate agg name
		`group by mission agg bogus(duration)`,              // unknown aggregate
		`group by mission order by duration`,                // order target not in group by
		`group by mission order by sum(duration)`,           // order agg not declared
		`group by mission agg count limit x`,                // bad limit
		`top 0 mission by count`,                            // top needs k >= 1
		`top mission by count`,                              // top needs a count
		`top 2 mission by sum(duration) limit 3`,            // top owns order/limit
		`top 2 mission by sum(duration) order by count`,     // top owns order/limit
		`group by`,                   // empty field list
		`group by mission agg`,       // empty agg list
		`group by mission agg sum()`, // missing field
		`group by mission,`,          // trailing comma
	}
	for _, input := range bad {
		if _, err := Parse(input); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", input)
		}
	}
}

func TestTopDesugarsToGroupOrderLimit(t *testing.T) {
	job := testJob()
	meta := JobMeta{ID: "q", Platform: "Giraph", Runtime: 20}
	run := func(input string) string {
		q := parseOK(t, input)
		jp, err := q.AggregateFrame(BuildColumns(job).Frame(meta))
		if err != nil {
			t.Fatalf("%q: %v", input, err)
		}
		// Render under a fixed raw string so only the semantics differ.
		b, err := q.RenderAggregate("X", "job", "q", []JobPartial{jp})
		if err != nil {
			t.Fatalf("%q: %v", input, err)
		}
		return string(b)
	}
	top := run(`from jobs top 2 mission by sum(duration)`)
	long := run(`from jobs group by mission agg sum(duration) order by sum(duration) desc limit 2`)
	if top != long {
		t.Fatalf("top-k result differs from its desugared form:\n%s\nvs\n%s", top, long)
	}
}

func TestSingleJobAggregateSemantics(t *testing.T) {
	job := testJob()
	meta := JobMeta{ID: "q", Platform: "Giraph", Algorithm: "BFS", Runtime: 20, Operations: 8}
	q := parseOK(t, `group by mission agg count, sum(duration)`)
	jp, err := q.AggregateFrame(BuildColumns(job).Frame(meta))
	if err != nil {
		t.Fatal(err)
	}
	body, err := q.RenderAggregate(`group by mission agg count, sum(duration)`, "job", "q", []JobPartial{jp})
	if err != nil {
		t.Fatal(err)
	}
	var resp AggResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, body)
	}
	if resp.Scope != "job" || resp.Job != "q" || resp.Jobs != 1 || resp.Rows != 8 {
		t.Fatalf("header fields wrong: %+v", resp)
	}
	want := map[string][2]string{
		"Cleanup":      {"1", "2"},
		"Compute":      {"2", "14"},
		"Job":          {"1", "20"},
		"LoadGraph":    {"1", "8"},
		"LocalLoad":    {"2", "15"},
		"ProcessGraph": {"1", "10"},
	}
	if len(resp.Groups) != len(want) {
		t.Fatalf("got %d groups, want %d:\n%s", len(resp.Groups), len(want), body)
	}
	prev := ""
	for _, g := range resp.Groups {
		if len(g.Key) != 1 {
			t.Fatalf("bad key %v", g.Key)
		}
		k := g.Key[0]
		if prev != "" && !(prev < k) {
			t.Fatalf("groups not sorted: %q before %q", prev, k)
		}
		prev = k
		w, ok := want[k]
		if !ok {
			t.Fatalf("unexpected group %q", k)
		}
		if g.Aggregates["count"] != w[0] || g.Aggregates["sum(duration)"] != w[1] {
			t.Fatalf("group %q = %v, want count=%s sum=%s", k, g.Aggregates, w[0], w[1])
		}
	}
}

func TestJobMetaFieldsInAggregates(t *testing.T) {
	job := testJob()
	meta := JobMeta{ID: "q", Platform: "Giraph", Algorithm: "BFS", Runtime: 12.5, Supersteps: 4, Operations: 8}
	q := parseOK(t, `from jobs where job.platform = Giraph group by job.platform, job.algorithm agg count, max(job.runtime)`)
	jp, err := q.AggregateFrame(BuildColumns(job).Frame(meta))
	if err != nil {
		t.Fatal(err)
	}
	body, err := q.RenderAggregate("raw", "jobs", "", []JobPartial{jp})
	if err != nil {
		t.Fatal(err)
	}
	var resp AggResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Groups) != 1 {
		t.Fatalf("got %d groups:\n%s", len(resp.Groups), body)
	}
	g := resp.Groups[0]
	if g.Key[0] != "Giraph" || g.Key[1] != "BFS" {
		t.Fatalf("key = %v", g.Key)
	}
	if g.Aggregates["max(job.runtime)"] != "12.5" {
		t.Fatalf("max(job.runtime) = %q", g.Aggregates["max(job.runtime)"])
	}
	// A job whose platform differs contributes no rows.
	q2 := parseOK(t, `from jobs where job.platform = GraphX group by mission`)
	jp2, err := q2.AggregateFrame(BuildColumns(job).Frame(meta))
	if err != nil {
		t.Fatal(err)
	}
	if jp2.Rows != 0 || len(jp2.Groups) != 0 {
		t.Fatalf("non-matching job.* filter matched rows: %+v", jp2)
	}
}

func TestV1QueriesStillParse(t *testing.T) {
	for _, input := range []string{
		`mission = Compute`,
		`duration > 1 and actor ~ Worker order by duration desc limit 5`,
		`not (mission = Load or mission = Cleanup)`,
		`info.Vertices >= 1000`,
	} {
		q := parseOK(t, input)
		if q.IsAggregate() || q.FromJobs() {
			t.Fatalf("%q parsed as aggregate", input)
		}
		_ = q.Select(testJob())
	}
}
