package query

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/archive"
)

func TestSegmentRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 50; i++ {
		job := genJob(rng, fmt.Sprintf("seg-%03d", i))
		meta := genMeta(rng, job)
		f := BuildColumns(job).Frame(meta)
		blob, err := EncodeSegment(f, uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := DecodeSegment(blob)
		if err != nil {
			t.Fatal(err)
		}
		if st.JobVersion != uint64(i+1) || st.FormatVersion != SegmentVersion {
			t.Fatalf("stats header wrong: %+v", st)
		}
		if got.Rows() != f.Rows() {
			t.Fatalf("rows %d != %d", got.Rows(), f.Rows())
		}
		if got.Meta != f.Meta {
			t.Fatalf("meta %+v != %+v", got.Meta, f.Meta)
		}
		// A decoded frame must aggregate byte-identically to the source
		// frame for any segment-compatible query.
		for iter := 0; iter < 5; iter++ {
			raw := genAggQuery(rng)
			q, err := Parse(raw)
			if err != nil {
				t.Fatal(err)
			}
			a, errA := q.AggregateFrame(f)
			b, errB := q.AggregateFrame(got)
			if (errA != nil) != (errB != nil) {
				t.Fatalf("%q: src err=%v decoded err=%v", raw, errA, errB)
			}
			if errA != nil {
				continue
			}
			if !bytes.Equal(marshalPartial(t, a), marshalPartial(t, b)) {
				t.Fatalf("%q: decoded frame aggregates differently", raw)
			}
		}
	}
}

func TestSegmentStatsFromTail(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	job := genJob(rng, "tail-job")
	f := BuildColumns(job).Frame(genMeta(rng, job))
	blob, err := EncodeSegment(f, 7)
	if err != nil {
		t.Fatal(err)
	}
	full, err := DecodeSegmentStats(blob, int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	// Any tail window that holds the whole stats frame decodes the
	// same stats; the constant-size hint must always be enough here.
	win := SegmentTailHint
	if win > len(blob) {
		win = len(blob)
	}
	tail := blob[len(blob)-win:]
	st, err := DecodeSegmentStats(tail, int64(len(blob)))
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != full.Rows || st.JobVersion != full.JobVersion || st.Dur != full.Dur || st.Mission != full.Mission {
		t.Fatalf("tail stats %+v != full stats %+v", st, full)
	}
	// A window too small for the footer reports ErrSegmentTail, not
	// garbage.
	if _, err := DecodeSegmentStats(blob[len(blob)-8:], int64(len(blob))); err != ErrSegmentTail {
		t.Fatalf("tiny window: got %v, want ErrSegmentTail", err)
	}
}

func TestSegmentCorruptionDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	job := genJob(rng, "corrupt-job")
	f := BuildColumns(job).Frame(genMeta(rng, job))
	blob, err := EncodeSegment(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte at a sample of offsets: decode must error (or, for
	// stats-only damage, the stats decode must error) — never panic,
	// never return silently wrong data without failing a checksum.
	for off := 0; off < len(blob); off += 97 {
		bad := append([]byte(nil), blob...)
		bad[off] ^= 0x40
		_, _, bodyErr := DecodeSegment(bad)
		_, statsErr := DecodeSegmentStats(bad, int64(len(bad)))
		if bodyErr == nil && statsErr == nil {
			t.Fatalf("flip at %d: both body and stats decoded clean", off)
		}
	}
	// Truncations must error too.
	for _, n := range []int{0, 1, 7, 16, len(blob) / 2, len(blob) - 1} {
		if _, _, err := DecodeSegment(blob[:n]); err == nil {
			t.Fatalf("truncation to %d decoded clean", n)
		}
	}
}

// TestZoneMapPruningSound is the soundness property: whenever
// PruneAgainst says a segment cannot match, running the query over
// that segment must match zero rows. (Completeness — pruning often —
// is a performance property; soundness is correctness.)
func TestZoneMapPruningSound(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pruned, scanned := 0, 0
	for i := 0; i < 300; i++ {
		job := genJob(rng, fmt.Sprintf("prune-%03d", i))
		meta := genMeta(rng, job)
		f := BuildColumns(job).Frame(meta)
		st := BuildSegStats(f, 1)
		raw := genAggQuery(rng)
		q, err := Parse(raw)
		if err != nil {
			t.Fatal(err)
		}
		if q.PruneAgainst(st) {
			pruned++
			jp, err := q.AggregateFrame(f)
			if err != nil {
				t.Fatal(err)
			}
			if jp.Rows != 0 || len(jp.Groups) != 0 {
				t.Fatalf("%q pruned a segment with %d matching rows (stats %+v)", raw, jp.Rows, st)
			}
		} else {
			scanned++
		}
	}
	if pruned == 0 {
		t.Fatal("generator never produced a prunable (query, segment) pair — the property was not exercised")
	}
	t.Logf("pruned %d / scanned %d", pruned, scanned)
}

// TestZoneMapPruningEffective pins that an obviously-cold segment is
// actually pruned — the numeric, symbol, and job.* range checks all
// fire on clear misses.
func TestZoneMapPruningEffective(t *testing.T) {
	job := testJob() // starts 0..20, missions Cleanup..ProcessGraph
	meta := JobMeta{ID: "q", Platform: "Giraph", Runtime: 20, Supersteps: 3}
	st := BuildSegStats(BuildColumns(job).Frame(meta), 1)
	prunable := []string{
		`from jobs where start > 100 group by mission`,
		`from jobs where duration < 0 group by mission`,
		`from jobs where mission = Zzz group by actor`,
		`from jobs where mission < Aaa group by actor`,
		`from jobs where job.platform = GraphX group by mission`,
		`from jobs where job.runtime > 100 group by mission`,
		`from jobs where depth > 10 group by mission`,
		`from jobs where start > 100 and mission = Compute group by mission`,
		`from jobs where start > 100 or mission = Zzz group by mission`,
	}
	for _, raw := range prunable {
		q, err := Parse(raw)
		if err != nil {
			t.Fatal(err)
		}
		if !q.PruneAgainst(st) {
			t.Errorf("%q not pruned against %+v", raw, st)
		}
	}
	kept := []string{
		`from jobs where start > 5 group by mission`,
		`from jobs where mission = Compute group by actor`,
		`from jobs where not (start > 100) group by mission`,                // `not` never prunes
		`from jobs where start > 100 or mission = Compute group by mission`, // one arm possible
		`from jobs where actor ~ Zzz group by mission`,                      // substring never prunes
		`from jobs group by mission`,                                        // no predicate
	}
	for _, raw := range kept {
		q, err := Parse(raw)
		if err != nil {
			t.Fatal(err)
		}
		if q.PruneAgainst(st) {
			t.Errorf("%q wrongly pruned against %+v", raw, st)
		}
	}
}

// TestPruneNumericLookalikeSymbols pins the subtle soundness rule: a
// symbol column may only be lex-range-pruned when the constant does
// not parse as a number, because "5" and "5.0" are equal under the
// language's numeric compare but not under the lexicographic range
// the zone map stores.
func TestPruneNumericLookalikeSymbols(t *testing.T) {
	job := &archive.Job{
		ID: "numsym",
		Root: &archive.Operation{
			ID: "r", Mission: "5", Actor: "W", Start: 0, End: 10,
		},
	}
	f := BuildColumns(job).Frame(JobMeta{ID: "numsym"})
	st := BuildSegStats(f, 1)

	// "5.0" is lexicographically outside the ["5","5"] range but
	// numerically equal to every value in it: pruning would be wrong.
	q, err := Parse(`from jobs where mission = "5.0" group by mission`)
	if err != nil {
		t.Fatal(err)
	}
	if q.PruneAgainst(st) {
		t.Fatal(`mission = "5.0" pruned a segment whose only mission is "5"`)
	}
	jp, err := q.AggregateFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	if jp.Rows != 1 {
		t.Fatalf("mission = \"5.0\" matched %d rows, want 1", jp.Rows)
	}

	// A non-numeric constant uses the same string compare the range
	// was built with, so the lex range is sound and prunes.
	q2, err := Parse(`from jobs where mission = Zzz group by mission`)
	if err != nil {
		t.Fatal(err)
	}
	if !q2.PruneAgainst(st) {
		t.Fatal("mission = Zzz not pruned against an all-numeric mission column")
	}
}
