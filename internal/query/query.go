// Package query implements a small query language over performance
// archives — the systematic querying the archive format exists for (paper
// Section 3.3, P3). A query filters a job's operations with boolean
// predicates over their fields and infos, optionally ordered and limited:
//
//	mission = Compute and duration > 1.5 order by duration desc limit 5
//	actor ~ "Worker-3" and not mission = PreStep
//	info.Vertices >= 1000 or derived.PercentOfJob > 10
//
// Fields: mission, actor, id, duration, start, end, depth, plus
// info.<Key> and derived.<Key>. Operators: = != ~ (substring) > >= < <=.
// Values: bare words, quoted strings, or numbers. Comparisons are numeric
// when both sides parse as numbers, string otherwise.
package query

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/archive"
)

// Query is a parsed query. The v1 form filters, orders, and limits the
// rows of one job. The v2 extensions (group by / top / from jobs) turn
// it into an aggregate query, optionally spanning every archived job;
// see v2.go for the aggregate grammar.
type Query struct {
	where   expr
	orderBy string
	desc    bool
	limit   int

	fromJobs bool
	groupBy  []string
	aggs     []aggSpec
	orderAgg *aggSpec
	top      bool
}

// Parse compiles a query string.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q := &Query{limit: -1}
	if p.peekIs("from") {
		p.next()
		if !p.peekIs("jobs") {
			return nil, fmt.Errorf("query: expected 'jobs' after 'from'")
		}
		p.next()
		q.fromJobs = true
	}
	if p.peekIs("where") {
		// `where` belongs to the cross-job form; the v1 single-job
		// grammar starts with the bare expression.
		if !q.fromJobs {
			return nil, fmt.Errorf("query: 'where' is only used after 'from jobs'")
		}
		p.next()
		if p.done() || p.peekIs("group") || p.peekIs("top") {
			return nil, fmt.Errorf("query: expected expression after 'where'")
		}
		q.where, err = p.parseOr()
		if err != nil {
			return nil, err
		}
	} else if !p.peekIs("order") && !p.peekIs("limit") && !p.peekIs("group") && !p.peekIs("top") && !p.done() {
		if q.fromJobs {
			return nil, fmt.Errorf("query: expected 'where', 'group by', or 'top' after 'from jobs'")
		}
		q.where, err = p.parseOr()
		if err != nil {
			return nil, err
		}
	}
	if err := p.parseAggClause(q); err != nil {
		return nil, err
	}
	// A `top` clause defines its own ordering and limit; trailing
	// order/limit clauses fall through to the trailing-input error.
	if !q.top && p.peekIs("order") {
		p.next()
		if !p.peekIs("by") {
			return nil, fmt.Errorf("query: expected 'by' after 'order'")
		}
		p.next()
		if p.done() {
			return nil, fmt.Errorf("query: expected field after 'order by'")
		}
		if q.IsAggregate() {
			if err := p.parseAggOrderTarget(q); err != nil {
				return nil, err
			}
		} else {
			q.orderBy = p.next().text
		}
		if p.peekIs("desc") {
			q.desc = true
			p.next()
		} else if p.peekIs("asc") {
			p.next()
		}
	}
	if !q.top && p.peekIs("limit") {
		p.next()
		if p.done() {
			return nil, fmt.Errorf("query: expected number after 'limit'")
		}
		n, err := strconv.Atoi(p.next().text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("query: bad limit")
		}
		q.limit = n
	}
	if !p.done() {
		return nil, fmt.Errorf("query: unexpected trailing input near %q", p.next().text)
	}
	if err := q.validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// Select runs the query over a job's operation tree.
func (q *Query) Select(job *archive.Job) []*archive.Operation {
	var out []*archive.Operation
	if job.Root == nil {
		return out
	}
	depths := map[*archive.Operation]int{}
	var walk func(op *archive.Operation, d int)
	walk = func(op *archive.Operation, d int) {
		depths[op] = d
		if q.where == nil || q.where.eval(op, d) {
			out = append(out, op)
		}
		for _, c := range op.Children {
			walk(c, d+1)
		}
	}
	walk(job.Root, 0)
	if q.orderBy != "" {
		field := q.orderBy
		sort.SliceStable(out, func(i, j int) bool {
			vi, _ := fieldValue(out[i], depths[out[i]], field)
			vj, _ := fieldValue(out[j], depths[out[j]], field)
			less := compareValues(vi, vj) < 0
			if q.desc {
				return !less && compareValues(vi, vj) != 0
			}
			return less
		})
	}
	if q.limit >= 0 && len(out) > q.limit {
		out = out[:q.limit]
	}
	return out
}

// --- lexer ---

type token struct {
	text   string
	quoted bool
}

func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		ch := input[i]
		switch {
		case ch == ' ' || ch == '\t' || ch == '\n':
			i++
		case ch == '(' || ch == ')' || ch == ',':
			toks = append(toks, token{text: string(ch)})
			i++
		case ch == '"':
			j := i + 1
			var sb strings.Builder
			for j < len(input) && input[j] != '"' {
				if input[j] == '\\' && j+1 < len(input) {
					j++
				}
				sb.WriteByte(input[j])
				j++
			}
			if j >= len(input) {
				return nil, fmt.Errorf("query: unterminated string")
			}
			toks = append(toks, token{text: sb.String(), quoted: true})
			i = j + 1
		case strings.ContainsRune("=!<>~", rune(ch)):
			j := i + 1
			if j < len(input) && input[j] == '=' {
				j++
			}
			toks = append(toks, token{text: input[i:j]})
			i = j
		default:
			j := i
			for j < len(input) && !strings.ContainsRune(" \t\n(),=!<>~\"", rune(input[j])) {
				j++
			}
			toks = append(toks, token{text: input[i:j]})
			i = j
		}
	}
	return toks, nil
}

// --- parser ---

type parser struct {
	toks []token
	pos  int
}

func (p *parser) done() bool { return p.pos >= len(p.toks) }

func (p *parser) peekIs(word string) bool {
	return p.pos < len(p.toks) && !p.toks[p.pos].quoted &&
		strings.EqualFold(p.toks[p.pos].text, word)
}

func (p *parser) next() token {
	t := p.toks[p.pos]
	p.pos++
	return t
}

type expr interface {
	eval(op *archive.Operation, depth int) bool
}

type orExpr struct{ a, b expr }

func (e orExpr) eval(op *archive.Operation, d int) bool { return e.a.eval(op, d) || e.b.eval(op, d) }

type andExpr struct{ a, b expr }

func (e andExpr) eval(op *archive.Operation, d int) bool { return e.a.eval(op, d) && e.b.eval(op, d) }

type notExpr struct{ a expr }

func (e notExpr) eval(op *archive.Operation, d int) bool { return !e.a.eval(op, d) }

type predicate struct {
	field string
	op    string
	value string
}

func (p *parser) parseOr() (expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peekIs("or") {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = orExpr{a: left, b: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peekIs("and") {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = andExpr{a: left, b: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (expr, error) {
	if p.peekIs("not") {
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notExpr{a: inner}, nil
	}
	if !p.done() && p.toks[p.pos].text == "(" && !p.toks[p.pos].quoted {
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.done() || p.toks[p.pos].text != ")" {
			return nil, fmt.Errorf("query: missing closing parenthesis")
		}
		p.next()
		return inner, nil
	}
	return p.parsePredicate()
}

var validOps = map[string]bool{"=": true, "!=": true, "~": true, ">": true, ">=": true, "<": true, "<=": true}

func (p *parser) parsePredicate() (expr, error) {
	if p.done() {
		return nil, fmt.Errorf("query: expected predicate")
	}
	field := p.next()
	if field.quoted {
		return nil, fmt.Errorf("query: field name cannot be quoted")
	}
	if err := validateField(field.text); err != nil {
		return nil, err
	}
	if p.done() {
		return nil, fmt.Errorf("query: expected operator after %q", field.text)
	}
	opTok := p.next()
	if opTok.quoted || !validOps[opTok.text] {
		return nil, fmt.Errorf("query: bad operator %q", opTok.text)
	}
	if p.done() {
		return nil, fmt.Errorf("query: expected value after %q %s", field.text, opTok.text)
	}
	val := p.next()
	// Keep the field's original case: info./derived. keys are
	// case-sensitive (only built-in field names are case-folded).
	return predicate{field: field.text, op: opTok.text, value: val.text}, nil
}

func validateField(f string) error {
	lf := strings.ToLower(f)
	switch lf {
	case "mission", "actor", "id", "duration", "start", "end", "depth":
		return nil
	}
	if strings.HasPrefix(lf, "info.") || strings.HasPrefix(lf, "derived.") {
		return nil
	}
	if strings.HasPrefix(lf, "job.") {
		if jobFieldKnown(lf) {
			return nil
		}
		return fmt.Errorf("query: unknown job field %q", f)
	}
	return fmt.Errorf("query: unknown field %q", f)
}

// fieldValue returns the string form of a field on an operation; ok is
// false when the field (e.g. an info key) is absent.
func fieldValue(op *archive.Operation, depth int, field string) (string, bool) {
	lf := strings.ToLower(field)
	switch lf {
	case "mission":
		return op.Mission, true
	case "actor":
		return op.Actor, true
	case "id":
		return op.ID, true
	case "duration":
		return strconv.FormatFloat(op.Duration(), 'f', -1, 64), true
	case "start":
		return strconv.FormatFloat(op.Start, 'f', -1, 64), true
	case "end":
		return strconv.FormatFloat(op.End, 'f', -1, 64), true
	case "depth":
		return strconv.Itoa(depth), true
	}
	if key, ok := strings.CutPrefix(field, "info."); ok {
		v, present := op.Infos[key]
		return v, present
	}
	if key, ok := strings.CutPrefix(field, "derived."); ok {
		v, present := op.Derived[key]
		return v, present
	}
	return "", false
}

func (pr predicate) eval(op *archive.Operation, depth int) bool {
	actual, present := fieldValue(op, depth, pr.field)
	if !present {
		return false
	}
	switch pr.op {
	case "~":
		return strings.Contains(actual, pr.value)
	case "=":
		return compareValues(actual, pr.value) == 0
	case "!=":
		return compareValues(actual, pr.value) != 0
	case ">":
		return compareValues(actual, pr.value) > 0
	case ">=":
		return compareValues(actual, pr.value) >= 0
	case "<":
		return compareValues(actual, pr.value) < 0
	case "<=":
		return compareValues(actual, pr.value) <= 0
	}
	return false
}

// compareValues compares numerically when both sides parse as finite
// numbers, lexically otherwise. ParseFloat accepts "NaN" and "Inf", but
// NaN is unordered — every float comparison against it is false, which
// would make both `> x` and `<= x` fail and leave a total order the
// sorter relies on broken — so non-finite operands fall back to the
// string comparison, which is total.
func compareValues(a, b string) int {
	fa, errA := strconv.ParseFloat(a, 64)
	fb, errB := strconv.ParseFloat(b, 64)
	if errA == nil && errB == nil && isFinite(fa) && isFinite(fb) {
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a, b)
}

func isFinite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}
