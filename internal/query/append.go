package query

import (
	"sync"

	"repro/internal/archive"
)

// AppendColumns is the incremental counterpart of BuildColumns for live
// jobs: completed operations are appended one at a time as a streaming
// job runs, and Snapshot hands out an immutable point-in-time Columns
// view that Query.SelectColumns evaluates without rebuilding anything.
//
// Row order is arrival (completion) order, not the depth-first order
// BuildColumns produces — a live job's tree is still growing, so there
// is no final DFS order to use yet. Live query results therefore come
// back in completion order; the sealed archive entering the store is
// re-indexed with BuildColumns, which restores the canonical DFS order
// (the seal-equivalence suite pins that the two agree byte for byte on
// the finished tree).
//
// Concurrency: Append and Snapshot are safe to call concurrently. A
// snapshot copies only slice headers (O(1)); appends after the snapshot
// either write past the snapshot's length or reallocate the backing
// array, so rows a snapshot can reach are never rewritten. The symbol
// table's intern map is touched only under the writer lock.
type AppendColumns struct {
	mu   sync.Mutex
	cols Columns
}

// NewAppendColumns returns an empty incremental column set.
func NewAppendColumns() *AppendColumns {
	return &AppendColumns{cols: Columns{syms: symtab{ids: map[string]uint32{}}}}
}

// Append adds one completed operation at the given tree depth.
func (a *AppendColumns) Append(op *archive.Operation, depth int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	c := &a.cols
	c.ops = append(c.ops, op)
	c.depth = append(c.depth, int32(depth))
	c.start = append(c.start, op.Start)
	c.end = append(c.end, op.End)
	c.dur = append(c.dur, op.Duration())
	c.mission = append(c.mission, c.syms.intern(op.Mission))
	c.actor = append(c.actor, c.syms.intern(op.Actor))
	c.id = append(c.id, c.syms.intern(op.ID))
}

// Rows returns the number of operations appended so far.
func (a *AppendColumns) Rows() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.cols.ops)
}

// Snapshot returns an immutable view of the columns appended so far.
// The view is safe to query concurrently with further appends; it never
// observes rows appended after the call.
func (a *AppendColumns) Snapshot() *Columns {
	a.mu.Lock()
	defer a.mu.Unlock()
	// Copy the struct: slice headers are value copies pinned at the
	// current length, so later appends (in place past len, or after a
	// reallocation) are invisible to the snapshot. Symbol IDs referenced
	// by the copied rows all precede the copied symtab lengths.
	snap := a.cols
	snap.syms.ids = nil // readers never consult the intern map
	return &snap
}
