// Package trace is the platform-log substrate shared by the simulated
// graph-processing platforms. Platforms emit structured operation records
// — start/end events annotated with an actor and a mission, plus free-form
// info records — into a Log. Granula's monitor (internal/monitor) parses
// these logs and assembles them into the operation tree defined by a
// performance model, exactly as the real Granula parses Giraph's log4j
// output.
//
// Records have a stable line-oriented text encoding so that the full
// pipeline (platform writes logs, monitor parses them) is exercised rather
// than short-circuited through shared memory.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// EventType distinguishes record kinds.
type EventType string

// Record event kinds.
const (
	EventStart EventType = "start"
	EventEnd   EventType = "end"
	EventInfo  EventType = "info"
)

// Record is one platform-log line.
type Record struct {
	// Time is the simulated timestamp in seconds.
	Time float64
	// Job identifies the job run.
	Job string
	// Op is the operation's unique ID within the job.
	Op string
	// Parent is the parent operation's ID; empty for the root operation.
	// Only meaningful on start records.
	Parent string
	// Actor names who performs the operation (e.g. "GiraphWorker-3").
	// Only meaningful on start records.
	Actor string
	// Mission names what is being done (e.g. "Compute"). Only meaningful
	// on start records.
	Mission string
	// Event is the record kind.
	Event EventType
	// Key/Value carry one info pair on info records.
	Key   string
	Value string
}

// Log is an append-only record sink.
type Log struct {
	records []Record
	sink    func(Record)
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// SetSink registers a callback invoked synchronously for every record
// appended after the call, in append order. It exists so live observers
// (the streaming subsystem) can tail a job's platform log while the job
// runs; the log itself remains the source of truth for assembly. A nil
// sink disables the callback.
func (l *Log) SetSink(sink func(Record)) { l.sink = sink }

// Append adds a record.
func (l *Log) Append(r Record) {
	l.records = append(l.records, r)
	if l.sink != nil {
		l.sink(r)
	}
}

// Records returns all records in append order. The slice must not be
// modified.
func (l *Log) Records() []Record { return l.records }

// Len returns the number of records.
func (l *Log) Len() int { return len(l.records) }

// OpRef identifies a started operation for an Emitter's End/Info calls.
type OpRef struct {
	id string
}

// ID returns the operation ID.
func (o OpRef) ID() string { return o.id }

// Valid reports whether the reference identifies an operation.
func (o OpRef) Valid() bool { return o.id != "" }

// Root is the OpRef used as the parent of a job's top-level operation.
var Root = OpRef{}

// Emitter provides platforms with a convenient instrumentation API on top
// of a Log. Operation IDs are deterministic sequence numbers within the
// job, keeping archives byte-stable across runs.
type Emitter struct {
	log *Log
	job string
	now func() float64
	seq int
}

// NewEmitter creates an emitter for one job. now supplies the current
// simulated time.
func NewEmitter(log *Log, job string, now func() float64) *Emitter {
	if log == nil || now == nil {
		panic("trace: nil log or clock")
	}
	return &Emitter{log: log, job: job, now: now}
}

// Job returns the job ID the emitter writes under.
func (e *Emitter) Job() string { return e.job }

// Start emits a start record for a new operation under parent and returns
// its reference.
func (e *Emitter) Start(parent OpRef, actor, mission string) OpRef {
	e.seq++
	op := OpRef{id: fmt.Sprintf("op-%06d", e.seq)}
	e.log.Append(Record{
		Time:    e.now(),
		Job:     e.job,
		Op:      op.id,
		Parent:  parent.id,
		Actor:   actor,
		Mission: mission,
		Event:   EventStart,
	})
	return op
}

// End emits the end record for op.
func (e *Emitter) End(op OpRef) {
	if !op.Valid() {
		panic("trace: End of invalid OpRef")
	}
	e.log.Append(Record{
		Time:  e.now(),
		Job:   e.job,
		Op:    op.id,
		Event: EventEnd,
	})
}

// Info attaches a key/value observation to op.
func (e *Emitter) Info(op OpRef, key, value string) {
	if !op.Valid() {
		panic("trace: Info on invalid OpRef")
	}
	e.log.Append(Record{
		Time:  e.now(),
		Job:   e.job,
		Op:    op.id,
		Event: EventInfo,
		Key:   key,
		Value: value,
	})
}

// Infof attaches a formatted observation to op.
func (e *Emitter) Infof(op OpRef, key, format string, args ...any) {
	e.Info(op, key, fmt.Sprintf(format, args...))
}

// Encode writes records to w in the line format, one record per line.
func Encode(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range records {
		var sb strings.Builder
		sb.WriteString("GRANULA")
		writeField(&sb, "t", strconv.FormatFloat(r.Time, 'f', -1, 64))
		writeField(&sb, "job", r.Job)
		writeField(&sb, "op", r.Op)
		writeField(&sb, "event", string(r.Event))
		if r.Event == EventStart {
			writeField(&sb, "parent", r.Parent)
			writeField(&sb, "actor", r.Actor)
			writeField(&sb, "mission", r.Mission)
		}
		if r.Event == EventInfo {
			writeField(&sb, "key", r.Key)
			writeField(&sb, "value", r.Value)
		}
		sb.WriteByte('\n')
		if _, err := bw.WriteString(sb.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeField(sb *strings.Builder, key, value string) {
	sb.WriteByte(' ')
	sb.WriteString(key)
	sb.WriteByte('=')
	sb.WriteString(strconv.Quote(value))
}

// Parse reads records in the line format, ignoring blank lines and lines
// not starting with the GRANULA marker (platforms interleave ordinary log
// output).
func Parse(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "GRANULA ") {
			continue
		}
		rec, err := parseLine(line[len("GRANULA "):])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseLine(line string) (Record, error) {
	var rec Record
	fields, err := splitFields(line)
	if err != nil {
		return rec, err
	}
	for key, value := range fields {
		switch key {
		case "t":
			t, err := strconv.ParseFloat(value, 64)
			if err != nil {
				return rec, fmt.Errorf("bad timestamp %q", value)
			}
			rec.Time = t
		case "job":
			rec.Job = value
		case "op":
			rec.Op = value
		case "parent":
			rec.Parent = value
		case "actor":
			rec.Actor = value
		case "mission":
			rec.Mission = value
		case "event":
			rec.Event = EventType(value)
		case "key":
			rec.Key = value
		case "value":
			rec.Value = value
		default:
			return rec, fmt.Errorf("unknown field %q", key)
		}
	}
	switch rec.Event {
	case EventStart, EventEnd, EventInfo:
	default:
		return rec, fmt.Errorf("bad event %q", rec.Event)
	}
	if rec.Op == "" {
		return rec, fmt.Errorf("missing op")
	}
	return rec, nil
}

// splitFields parses `key="quoted value"` pairs separated by spaces.
func splitFields(line string) (map[string]string, error) {
	out := map[string]string{}
	i := 0
	for i < len(line) {
		for i < len(line) && line[i] == ' ' {
			i++
		}
		if i >= len(line) {
			break
		}
		eq := strings.IndexByte(line[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed field at %q", line[i:])
		}
		key := line[i : i+eq]
		i += eq + 1
		if i >= len(line) || line[i] != '"' {
			return nil, fmt.Errorf("unquoted value for %q", key)
		}
		// Find the closing quote, respecting escapes.
		j := i + 1
		for j < len(line) {
			if line[j] == '\\' {
				j += 2
				continue
			}
			if line[j] == '"' {
				break
			}
			j++
		}
		if j >= len(line) {
			return nil, fmt.Errorf("unterminated value for %q", key)
		}
		value, err := strconv.Unquote(line[i : j+1])
		if err != nil {
			return nil, fmt.Errorf("bad value for %q: %w", key, err)
		}
		out[key] = value
		i = j + 1
	}
	return out, nil
}

// JobIDs returns the distinct job IDs present in records, sorted.
func JobIDs(records []Record) []string {
	set := map[string]struct{}{}
	for _, r := range records {
		set[r.Job] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for j := range set {
		out = append(out, j)
	}
	sort.Strings(out)
	return out
}
