// Package trace is the platform-log substrate shared by the simulated
// graph-processing platforms. Platforms emit structured operation records
// — start/end events annotated with an actor and a mission, plus free-form
// info records — into a Log. Granula's monitor (internal/monitor) parses
// these logs and assembles them into the operation tree defined by a
// performance model, exactly as the real Granula parses Giraph's log4j
// output.
//
// Records have a stable line-oriented text encoding so that the full
// pipeline (platform writes logs, monitor parses them) is exercised rather
// than short-circuited through shared memory.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// EventType distinguishes record kinds.
type EventType string

// Record event kinds.
const (
	EventStart EventType = "start"
	EventEnd   EventType = "end"
	EventInfo  EventType = "info"
)

// Record is one platform-log line.
type Record struct {
	// Time is the simulated timestamp in seconds.
	Time float64
	// Job identifies the job run.
	Job string
	// Op is the operation's unique ID within the job.
	Op string
	// Parent is the parent operation's ID; empty for the root operation.
	// Only meaningful on start records.
	Parent string
	// Actor names who performs the operation (e.g. "GiraphWorker-3").
	// Only meaningful on start records.
	Actor string
	// Mission names what is being done (e.g. "Compute"). Only meaningful
	// on start records.
	Mission string
	// Event is the record kind.
	Event EventType
	// Key/Value carry one info pair on info records.
	Key   string
	Value string
}

// Log is an append-only record sink.
type Log struct {
	records []Record
	sink    func(Record)
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// SetSink registers a callback invoked synchronously for every record
// appended after the call, in append order. It exists so live observers
// (the streaming subsystem) can tail a job's platform log while the job
// runs; the log itself remains the source of truth for assembly. A nil
// sink disables the callback.
func (l *Log) SetSink(sink func(Record)) { l.sink = sink }

// Append adds a record.
func (l *Log) Append(r Record) {
	l.records = append(l.records, r)
	if l.sink != nil {
		l.sink(r)
	}
}

// Records returns all records in append order. The slice must not be
// modified.
func (l *Log) Records() []Record { return l.records }

// Len returns the number of records.
func (l *Log) Len() int { return len(l.records) }

// OpRef identifies a started operation for an Emitter's End/Info calls.
type OpRef struct {
	id string
}

// ID returns the operation ID.
func (o OpRef) ID() string { return o.id }

// Valid reports whether the reference identifies an operation.
func (o OpRef) Valid() bool { return o.id != "" }

// Root is the OpRef used as the parent of a job's top-level operation.
var Root = OpRef{}

// Emitter provides platforms with a convenient instrumentation API on top
// of a Log. Operation IDs are deterministic sequence numbers within the
// job, keeping archives byte-stable across runs.
type Emitter struct {
	log *Log
	job string
	now func() float64
	seq int
}

// NewEmitter creates an emitter for one job. now supplies the current
// simulated time.
func NewEmitter(log *Log, job string, now func() float64) *Emitter {
	if log == nil || now == nil {
		panic("trace: nil log or clock")
	}
	return &Emitter{log: log, job: job, now: now}
}

// Job returns the job ID the emitter writes under.
func (e *Emitter) Job() string { return e.job }

// Start emits a start record for a new operation under parent and returns
// its reference.
func (e *Emitter) Start(parent OpRef, actor, mission string) OpRef {
	e.seq++
	op := OpRef{id: fmt.Sprintf("op-%06d", e.seq)}
	e.log.Append(Record{
		Time:    e.now(),
		Job:     e.job,
		Op:      op.id,
		Parent:  parent.id,
		Actor:   actor,
		Mission: mission,
		Event:   EventStart,
	})
	return op
}

// End emits the end record for op.
func (e *Emitter) End(op OpRef) {
	if !op.Valid() {
		panic("trace: End of invalid OpRef")
	}
	e.log.Append(Record{
		Time:  e.now(),
		Job:   e.job,
		Op:    op.id,
		Event: EventEnd,
	})
}

// Info attaches a key/value observation to op.
func (e *Emitter) Info(op OpRef, key, value string) {
	if !op.Valid() {
		panic("trace: Info on invalid OpRef")
	}
	e.log.Append(Record{
		Time:  e.now(),
		Job:   e.job,
		Op:    op.id,
		Event: EventInfo,
		Key:   key,
		Value: value,
	})
}

// Infof attaches a formatted observation to op.
func (e *Emitter) Infof(op OpRef, key, format string, args ...any) {
	e.Info(op, key, fmt.Sprintf(format, args...))
}

// Encode writes records to w in the line format, one record per line.
func Encode(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	var tbuf [32]byte
	for _, r := range records {
		bw.WriteString("GRANULA t=\"")
		// Float formatting never produces characters that need escaping,
		// so the quoted form is the bare digits.
		bw.Write(strconv.AppendFloat(tbuf[:0], r.Time, 'f', -1, 64))
		bw.WriteByte('"')
		writeField(bw, "job", r.Job)
		writeField(bw, "op", r.Op)
		writeField(bw, "event", string(r.Event))
		if r.Event == EventStart {
			writeField(bw, "parent", r.Parent)
			writeField(bw, "actor", r.Actor)
			writeField(bw, "mission", r.Mission)
		}
		if r.Event == EventInfo {
			writeField(bw, "key", r.Key)
			writeField(bw, "value", r.Value)
		}
		bw.WriteByte('\n')
	}
	// bufio's error is sticky; one check at flush covers every write above.
	return bw.Flush()
}

func writeField(bw *bufio.Writer, key, value string) {
	bw.WriteByte(' ')
	bw.WriteString(key)
	bw.WriteByte('=')
	// For printable ASCII without quote or backslash — every value the
	// simulated platforms emit — strconv.Quote is the identity plus
	// surrounding quotes; skip its rune-by-rune escape walk.
	if plainASCII(value) {
		bw.WriteByte('"')
		bw.WriteString(value)
		bw.WriteByte('"')
		return
	}
	bw.WriteString(strconv.Quote(value))
}

func plainASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c > 0x7e || c == '"' || c == '\\' {
			return false
		}
	}
	return true
}

// Parse reads records in the line format, ignoring blank lines and lines
// not starting with the GRANULA marker (platforms interleave ordinary log
// output).
func Parse(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "GRANULA ") {
			continue
		}
		rec, err := parseLine(line[len("GRANULA "):])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseLine parses `key="quoted value"` pairs separated by spaces,
// dispatching each field into the record as it is scanned — no
// intermediate map, and unescaped values alias the line (Parse runs once
// per job log line, so this path carries the whole assembly pipeline).
func parseLine(line string) (Record, error) {
	var rec Record
	i := 0
	for i < len(line) {
		for i < len(line) && line[i] == ' ' {
			i++
		}
		if i >= len(line) {
			break
		}
		eq := strings.IndexByte(line[i:], '=')
		if eq < 0 {
			return rec, fmt.Errorf("malformed field at %q", line[i:])
		}
		key := line[i : i+eq]
		i += eq + 1
		if i >= len(line) || line[i] != '"' {
			return rec, fmt.Errorf("unquoted value for %q", key)
		}
		// Find the closing quote, respecting escapes.
		j := i + 1
		for j < len(line) {
			if line[j] == '\\' {
				j += 2
				continue
			}
			if line[j] == '"' {
				break
			}
			j++
		}
		if j >= len(line) {
			return rec, fmt.Errorf("unterminated value for %q", key)
		}
		value, err := unquoteField(line[i : j+1])
		if err != nil {
			return rec, fmt.Errorf("bad value for %q: %w", key, err)
		}
		i = j + 1
		switch key {
		case "t":
			t, err := strconv.ParseFloat(value, 64)
			if err != nil {
				return rec, fmt.Errorf("bad timestamp %q", value)
			}
			rec.Time = t
		case "job":
			rec.Job = value
		case "op":
			rec.Op = value
		case "parent":
			rec.Parent = value
		case "actor":
			rec.Actor = value
		case "mission":
			rec.Mission = value
		case "event":
			rec.Event = EventType(value)
		case "key":
			rec.Key = value
		case "value":
			rec.Value = value
		default:
			return rec, fmt.Errorf("unknown field %q", key)
		}
	}
	switch rec.Event {
	case EventStart, EventEnd, EventInfo:
	default:
		return rec, fmt.Errorf("bad event %q", rec.Event)
	}
	if rec.Op == "" {
		return rec, fmt.Errorf("missing op")
	}
	return rec, nil
}

// unquoteField undoes writeField's quoting. Values of printable ASCII
// without escapes — everything Encode's fast path emits — unquote to the
// interior substring with no allocation; anything else goes through
// strconv.Unquote for full escape handling.
func unquoteField(q string) (string, error) {
	if inner := q[1 : len(q)-1]; plainASCII(inner) {
		return inner, nil
	}
	return strconv.Unquote(q)
}

// JobIDs returns the distinct job IDs present in records, sorted.
func JobIDs(records []Record) []string {
	set := map[string]struct{}{}
	for _, r := range records {
		set[r.Job] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for j := range set {
		out = append(out, j)
	}
	sort.Strings(out)
	return out
}
