package trace_test

import (
	"bytes"
	"fmt"

	"repro/internal/trace"
)

// A platform instruments one operation with a nested child, then the log
// is serialized and parsed back — the path every monitored job takes.
func ExampleEmitter() {
	clock := 0.0
	log := trace.NewLog()
	em := trace.NewEmitter(log, "job-1", func() float64 { return clock })

	job := em.Start(trace.Root, "Client", "Job")
	clock = 1
	load := em.Start(job, "Worker-0", "LoadGraph")
	em.Info(load, "Bytes", "4096")
	clock = 3
	em.End(load)
	clock = 4
	em.End(job)

	var buf bytes.Buffer
	if err := trace.Encode(&buf, log.Records()); err != nil {
		fmt.Println("encode error:", err)
		return
	}
	records, err := trace.Parse(&buf)
	if err != nil {
		fmt.Println("parse error:", err)
		return
	}
	for _, r := range records {
		switch r.Event {
		case trace.EventStart:
			fmt.Printf("start %s (%s) at t=%.0f\n", r.Mission, r.Actor, r.Time)
		case trace.EventInfo:
			fmt.Printf("info  %s=%s\n", r.Key, r.Value)
		case trace.EventEnd:
			fmt.Printf("end   %s at t=%.0f\n", r.Op, r.Time)
		}
	}
	// Output:
	// start Job (Client) at t=0
	// start LoadGraph (Worker-0) at t=1
	// info  Bytes=4096
	// end   op-000002 at t=3
	// end   op-000001 at t=4
}
