package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestEmitterProducesWellFormedRecords(t *testing.T) {
	log := NewLog()
	now := 0.0
	em := NewEmitter(log, "job-1", func() float64 { return now })
	root := em.Start(Root, "Client", "GiraphJob")
	now = 1
	child := em.Start(root, "Worker-1", "Compute")
	em.Info(child, "Vertices", "1000")
	now = 2
	em.End(child)
	now = 3
	em.End(root)

	recs := log.Records()
	if len(recs) != 5 {
		t.Fatalf("records = %d, want 5", len(recs))
	}
	if recs[0].Event != EventStart || recs[0].Parent != "" || recs[0].Mission != "GiraphJob" {
		t.Fatalf("root start record wrong: %+v", recs[0])
	}
	if recs[1].Parent != recs[0].Op {
		t.Fatalf("child parent = %q, want %q", recs[1].Parent, recs[0].Op)
	}
	if recs[2].Event != EventInfo || recs[2].Key != "Vertices" || recs[2].Value != "1000" {
		t.Fatalf("info record wrong: %+v", recs[2])
	}
	if recs[3].Event != EventEnd || recs[3].Time != 2 {
		t.Fatalf("end record wrong: %+v", recs[3])
	}
	if log.Len() != 5 {
		t.Fatalf("Len = %d", log.Len())
	}
}

func TestEmitterDeterministicIDs(t *testing.T) {
	build := func() []string {
		log := NewLog()
		em := NewEmitter(log, "j", func() float64 { return 0 })
		a := em.Start(Root, "x", "A")
		b := em.Start(a, "x", "B")
		em.End(b)
		em.End(a)
		var ids []string
		for _, r := range log.Records() {
			ids = append(ids, r.Op)
		}
		return ids
	}
	if !reflect.DeepEqual(build(), build()) {
		t.Fatal("operation IDs are not deterministic")
	}
}

func TestEndOrInfoOnInvalidRefPanics(t *testing.T) {
	log := NewLog()
	em := NewEmitter(log, "j", func() float64 { return 0 })
	for _, fn := range []func(){
		func() { em.End(Root) },
		func() { em.Info(Root, "k", "v") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestEncodeParseRoundTrip(t *testing.T) {
	records := []Record{
		{Time: 0.5, Job: "j1", Op: "op-1", Event: EventStart, Actor: "Client", Mission: "Job"},
		{Time: 1.25, Job: "j1", Op: "op-2", Parent: "op-1", Event: EventStart, Actor: "Worker \"7\"", Mission: "Load Graph"},
		{Time: 1.5, Job: "j1", Op: "op-2", Event: EventInfo, Key: "Bytes", Value: "123\n456"},
		{Time: 2, Job: "j1", Op: "op-2", Event: EventEnd},
		{Time: 3, Job: "j1", Op: "op-1", Event: EventEnd},
	}
	var buf bytes.Buffer
	if err := Encode(&buf, records); err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(records, parsed) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", parsed, records)
	}
}

func TestParseIgnoresForeignLines(t *testing.T) {
	input := strings.Join([]string{
		"2026-07-04 12:00:00 INFO master started",
		`GRANULA t="1" job="j" op="op-1" event="start" parent="" actor="a" mission="m"`,
		"",
		"random noise",
		`GRANULA t="2" job="j" op="op-1" event="end"`,
	}, "\n")
	recs, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`GRANULA t="x" job="j" op="o" event="start"`,   // bad time
		`GRANULA t="1" job="j" op="o" event="bogus"`,   // bad event
		`GRANULA t="1" job="j" event="start"`,          // missing op
		`GRANULA t="1" job="j" op="o" event=start`,     // unquoted value
		`GRANULA t="1" job="j" op="o" event="start" x`, // malformed field
		`GRANULA t="1" zz="1" op="o" event="start"`,    // unknown field
		`GRANULA t="1" job="j" op="o" event="start" actor="unterminated`,
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("expected parse error for %q", c)
		}
	}
}

func TestJobIDs(t *testing.T) {
	records := []Record{
		{Job: "b", Op: "1", Event: EventStart},
		{Job: "a", Op: "2", Event: EventStart},
		{Job: "b", Op: "1", Event: EventEnd},
	}
	ids := JobIDs(records)
	if !reflect.DeepEqual(ids, []string{"a", "b"}) {
		t.Fatalf("JobIDs = %v", ids)
	}
}

func TestNewEmitterValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil log")
		}
	}()
	NewEmitter(nil, "j", func() float64 { return 0 })
}

// Property: any record content (including hostile strings) survives an
// encode/parse round trip.
func TestRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		randStr := func() string {
			n := rng.Intn(12)
			b := make([]byte, n)
			for i := range b {
				b[i] = byte(rng.Intn(128))
			}
			return string(b)
		}
		n := 1 + rng.Intn(10)
		records := make([]Record, n)
		for i := range records {
			ev := []EventType{EventStart, EventEnd, EventInfo}[rng.Intn(3)]
			r := Record{
				Time:  float64(rng.Intn(1000)) / 7,
				Job:   randStr(),
				Op:    "op-" + randStr() + "x", // non-empty
				Event: ev,
			}
			switch ev {
			case EventStart:
				r.Parent = randStr()
				r.Actor = randStr()
				r.Mission = randStr()
			case EventInfo:
				r.Key = randStr()
				r.Value = randStr()
			}
			records[i] = r
		}
		var buf bytes.Buffer
		if err := Encode(&buf, records); err != nil {
			return false
		}
		parsed, err := Parse(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(records, parsed)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
