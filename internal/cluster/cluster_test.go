package cluster

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func testConfig() Config {
	return Config{
		Nodes:             4,
		CoresPerNode:      2,
		DiskBandwidth:     100,
		NICBandwidth:      1000,
		NetLatency:        0.001,
		SharedFSBandwidth: 200,
		NodeNamePrefix:    "node",
		NodeNameStart:     100,
	}
}

func TestClusterConstruction(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, testConfig())
	if c.Size() != 4 {
		t.Fatalf("Size = %d, want 4", c.Size())
	}
	if got := c.Node(0).Name; got != "node100" {
		t.Fatalf("node 0 name = %q, want node100", got)
	}
	if got := c.Node(3).Name; got != "node103" {
		t.Fatalf("node 3 name = %q, want node103", got)
	}
	if n := c.NodeByName("node102"); n == nil || n.ID != 2 {
		t.Fatalf("NodeByName(node102) = %v", n)
	}
	if n := c.NodeByName("nope"); n != nil {
		t.Fatalf("NodeByName(nope) = %v, want nil", n)
	}
	if len(c.Nodes()) != 4 {
		t.Fatalf("Nodes() returned %d", len(c.Nodes()))
	}
}

func TestDefaultConfigIsPaperScale(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Nodes != 8 {
		t.Fatalf("default Nodes = %d, want 8 (the paper uses 8 DAS5 nodes)", cfg.Nodes)
	}
	if cfg.CoresPerNode <= 0 || cfg.DiskBandwidth <= 0 || cfg.NICBandwidth <= 0 {
		t.Fatal("default config has non-positive capacities")
	}
}

func TestExecConsumesCPU(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, testConfig())
	n := c.Node(0)
	var end float64
	e.Spawn("task", func(p *sim.Proc) {
		n.Exec(p, 3)
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(end, 3) {
		t.Fatalf("end = %v, want 3", end)
	}
	if !almostEqual(n.CPU.Consumed(), 3) {
		t.Fatalf("consumed = %v, want 3", n.CPU.Consumed())
	}
}

func TestExecParallelUsesCores(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, testConfig()) // 2 cores/node
	n := c.Node(1)
	var end float64
	e.Spawn("task", func(p *sim.Proc) {
		n.ExecParallel(p, 6, 2) // 6 cpu-s on 2 cores -> 3 s
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(end, 3) {
		t.Fatalf("end = %v, want 3", end)
	}
}

func TestExecParallelClampsThreads(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, testConfig())
	n := c.Node(0)
	var end float64
	e.Spawn("task", func(p *sim.Proc) {
		n.ExecParallel(p, 2, 0) // invalid threads treated as 1
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(end, 2) {
		t.Fatalf("end = %v, want 2", end)
	}
}

func TestLocalDiskIsPerNode(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, testConfig()) // 100 B/s per disk
	var end0, end1 float64
	e.Spawn("r0", func(p *sim.Proc) {
		c.Node(0).ReadLocal(p, 100)
		end0 = p.Now()
	})
	e.Spawn("r1", func(p *sim.Proc) {
		c.Node(1).WriteLocal(p, 100)
		end1 = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Different disks: no contention, both take 1s.
	if !almostEqual(end0, 1) || !almostEqual(end1, 1) {
		t.Fatalf("ends = %v,%v, want 1,1", end0, end1)
	}
}

func TestSharedFSContention(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, testConfig()) // shared 200 B/s
	ends := make([]float64, 2)
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn("reader", func(p *sim.Proc) {
			c.Node(i).ReadShared(p, 200)
			ends[i] = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Two readers share 200 B/s: 200 B each at 100 B/s ≈ 2s (+latency).
	for i, end := range ends {
		if math.Abs(end-2.001) > 1e-3 {
			t.Fatalf("reader %d end = %v, want ≈2.001", i, end)
		}
	}
}

func TestTransferChargesSenderNIC(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, testConfig()) // NIC 1000 B/s, latency 1ms
	var end float64
	e.Spawn("sender", func(p *sim.Proc) {
		c.Transfer(p, c.Node(0), c.Node(1), 1000)
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(end-1.001) > 1e-6 {
		t.Fatalf("end = %v, want 1.001", end)
	}
	if !almostEqual(c.Node(0).NIC.Consumed(), 1000) {
		t.Fatalf("sender NIC consumed = %v, want 1000", c.Node(0).NIC.Consumed())
	}
	if !almostEqual(c.Node(1).NIC.Consumed(), 0) {
		t.Fatalf("receiver NIC consumed = %v, want 0", c.Node(1).NIC.Consumed())
	}
}

func TestTransferWithinNodeIsFree(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, testConfig())
	var end float64
	e.Spawn("sender", func(p *sim.Proc) {
		c.Transfer(p, c.Node(0), c.Node(0), 1e9)
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 0 {
		t.Fatalf("intra-node transfer took %v, want 0", end)
	}
}

func TestWriteSharedAndAccessors(t *testing.T) {
	e := sim.NewEngine()
	cfg := testConfig()
	c := New(e, cfg)
	if c.Engine() != e {
		t.Fatal("Engine accessor wrong")
	}
	if c.Config().Nodes != cfg.Nodes {
		t.Fatal("Config accessor wrong")
	}
	if c.SharedFS() == nil {
		t.Fatal("SharedFS accessor wrong")
	}
	var end float64
	e.Spawn("writer", func(p *sim.Proc) {
		c.Node(0).WriteShared(p, 200) // 200 B at 200 B/s shared
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(end-1.001) > 1e-3 {
		t.Fatalf("write end = %v, want ≈1.001", end)
	}
	if !almostEqual(c.SharedFS().Consumed(), 200) {
		t.Fatalf("shared consumed = %v", c.SharedFS().Consumed())
	}
}

func TestTransferZeroBytesIsFree(t *testing.T) {
	e := sim.NewEngine()
	c := New(e, testConfig())
	e.Spawn("s", func(p *sim.Proc) {
		c.Transfer(p, c.Node(0), c.Node(1), 0)
		c.Transfer(p, c.Node(0), c.Node(1), -5)
		if p.Now() != 0 {
			t.Errorf("zero-byte transfer advanced clock to %v", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanicsOnZeroCores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero cores")
		}
	}()
	New(sim.NewEngine(), Config{Nodes: 1, CoresPerNode: 0, DiskBandwidth: 1, NICBandwidth: 1, SharedFSBandwidth: 1})
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero nodes")
		}
	}()
	New(sim.NewEngine(), Config{Nodes: 0, CoresPerNode: 1, DiskBandwidth: 1, NICBandwidth: 1, SharedFSBandwidth: 1})
}
