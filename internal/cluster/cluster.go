// Package cluster models a compute cluster on top of the sim kernel: a set
// of nodes with CPU cores, a local disk and a NIC each, plus a shared
// storage service reachable from every node. It is the stand-in for the
// DAS5 cluster used in the Granula paper's experiments.
package cluster

import (
	"fmt"

	"repro/internal/sim"
)

// Config describes the simulated cluster hardware.
type Config struct {
	// Nodes is the number of compute nodes.
	Nodes int
	// CoresPerNode is the CPU capacity of each node, in cpu-seconds per
	// second. A single-threaded task consumes at most 1 of these.
	CoresPerNode int
	// DiskBandwidth is each node's local-disk bandwidth in bytes/second.
	DiskBandwidth float64
	// NICBandwidth is each node's network bandwidth in bytes/second.
	NICBandwidth float64
	// NetLatency is the one-way message latency in seconds.
	NetLatency float64
	// SharedFSBandwidth is the aggregate bandwidth of the shared storage
	// service (e.g. an NFS server) in bytes/second.
	SharedFSBandwidth float64
	// NodeNamePrefix and NodeNameStart control node naming; names are
	// prefix + (start + i), matching the paper's "node340"-style names.
	NodeNamePrefix string
	NodeNameStart  int
}

// DefaultConfig returns a DAS5-like 8-node cluster: 24 cores per node,
// 500 MB/s local disks, 10 Gbit/s NICs, and a shared filesystem server.
func DefaultConfig() Config {
	return Config{
		Nodes:             8,
		CoresPerNode:      24,
		DiskBandwidth:     500e6,
		NICBandwidth:      1.25e9, // 10 Gbit/s
		NetLatency:        50e-6,
		SharedFSBandwidth: 1.0e9,
		NodeNamePrefix:    "node",
		NodeNameStart:     339,
	}
}

// Cluster is a set of simulated nodes sharing a network fabric and a
// shared storage service.
type Cluster struct {
	eng    *sim.Engine
	cfg    Config
	nodes  []*Node
	shared *sim.Resource
}

// Node is one simulated compute node.
type Node struct {
	ID   int
	Name string

	CPU  *sim.Resource
	Disk *sim.Resource
	NIC  *sim.Resource

	cluster *Cluster
}

// New builds a cluster from cfg on engine e.
func New(e *sim.Engine, cfg Config) *Cluster {
	if cfg.Nodes <= 0 {
		panic("cluster: need at least one node")
	}
	if cfg.CoresPerNode <= 0 {
		panic("cluster: need at least one core per node")
	}
	c := &Cluster{
		eng:    e,
		cfg:    cfg,
		shared: sim.NewResource(e, "sharedfs", cfg.SharedFSBandwidth, cfg.SharedFSBandwidth),
	}
	for i := 0; i < cfg.Nodes; i++ {
		name := fmt.Sprintf("%s%d", cfg.NodeNamePrefix, cfg.NodeNameStart+i)
		n := &Node{
			ID:      i,
			Name:    name,
			CPU:     sim.NewResource(e, name+".cpu", float64(cfg.CoresPerNode), 1),
			Disk:    sim.NewResource(e, name+".disk", cfg.DiskBandwidth, cfg.DiskBandwidth),
			NIC:     sim.NewResource(e, name+".nic", cfg.NICBandwidth, cfg.NICBandwidth),
			cluster: c,
		}
		c.nodes = append(c.nodes, n)
	}
	return c
}

// Engine returns the underlying simulation engine.
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Node returns node i; it panics on an out-of-range index.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Nodes returns all nodes in ID order. The returned slice must not be
// modified.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// NodeByName returns the node with the given name, or nil.
func (c *Cluster) NodeByName(name string) *Node {
	for _, n := range c.nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// Exec consumes cpuSeconds of single-threaded CPU work on the node,
// blocking p until it completes under fair sharing.
func (n *Node) Exec(p *sim.Proc, cpuSeconds float64) {
	n.CPU.Use(p, cpuSeconds)
}

// ExecParallel consumes cpuSeconds of CPU work that can use up to threads
// cores concurrently (an ideally parallel region).
func (n *Node) ExecParallel(p *sim.Proc, cpuSeconds float64, threads int) {
	if threads < 1 {
		threads = 1
	}
	n.CPU.UseWidth(p, cpuSeconds, float64(threads))
}

// ReadLocal reads bytes from the node's local disk.
func (n *Node) ReadLocal(p *sim.Proc, bytes float64) {
	n.Disk.Use(p, bytes)
}

// WriteLocal writes bytes to the node's local disk.
func (n *Node) WriteLocal(p *sim.Proc, bytes float64) {
	n.Disk.Use(p, bytes)
}

// ReadShared reads bytes from the shared storage service on behalf of a
// process running on this node. The shared server's aggregate bandwidth is
// the contended resource; the local NIC also carries the bytes.
func (n *Node) ReadShared(p *sim.Proc, bytes float64) {
	p.Sleep(n.cluster.cfg.NetLatency)
	n.cluster.shared.Use(p, bytes)
}

// WriteShared writes bytes to the shared storage service.
func (n *Node) WriteShared(p *sim.Proc, bytes float64) {
	p.Sleep(n.cluster.cfg.NetLatency)
	n.cluster.shared.Use(p, bytes)
}

// SharedFS exposes the shared storage resource, mainly for monitoring.
func (c *Cluster) SharedFS() *sim.Resource { return c.shared }

// Transfer moves bytes from node src to node dst, charging the sender's
// NIC bandwidth plus one network latency. Transfers within a node are
// free. The model charges only the sending NIC: for the bulk-synchronous
// traffic patterns of the platforms in this repository, send-side
// contention is the binding constraint, and charging both ends would
// double-count bytes that traverse a non-blocking fabric.
func (c *Cluster) Transfer(p *sim.Proc, src, dst *Node, bytes float64) {
	if src == dst || bytes <= 0 {
		return
	}
	src.NIC.Use(p, bytes)
	p.Sleep(c.cfg.NetLatency)
}
