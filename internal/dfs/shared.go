package dfs

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// SharedStore models a shared network filesystem (NFS-style): one file
// table, all traffic funneled through the cluster's shared-storage
// service. This is what the PowerGraph-like platform loads from, and its
// single contended server is what makes sequential loading so visible in
// the paper's Figure 7.
type SharedStore struct {
	cluster *cluster.Cluster
	files   map[string]int64
}

// NewSharedStore returns an empty shared filesystem over the cluster.
func NewSharedStore(c *cluster.Cluster) *SharedStore {
	return &SharedStore{cluster: c, files: map[string]int64{}}
}

// Create registers a file of the given size without charging I/O time.
func (s *SharedStore) Create(path string, size int64) error {
	if size < 0 {
		return fmt.Errorf("dfs: negative size for %q", path)
	}
	if _, ok := s.files[path]; ok {
		return fmt.Errorf("dfs: file %q already exists", path)
	}
	s.files[path] = size
	return nil
}

// Exists reports whether path is present.
func (s *SharedStore) Exists(path string) bool {
	_, ok := s.files[path]
	return ok
}

// Size returns the file size, or an error if absent.
func (s *SharedStore) Size(path string) (int64, error) {
	sz, ok := s.files[path]
	if !ok {
		return 0, fmt.Errorf("dfs: no such file %q", path)
	}
	return sz, nil
}

// Files returns all paths in sorted order.
func (s *SharedStore) Files() []string {
	out := make([]string, 0, len(s.files))
	for p := range s.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Delete removes a file.
func (s *SharedStore) Delete(path string) error {
	if _, ok := s.files[path]; !ok {
		return fmt.Errorf("dfs: no such file %q", path)
	}
	delete(s.files, path)
	return nil
}

// Read reads length bytes of path from node at, contending on the shared
// server's aggregate bandwidth.
func (s *SharedStore) Read(p *sim.Proc, at *cluster.Node, path string, length int64) error {
	sz, ok := s.files[path]
	if !ok {
		return fmt.Errorf("dfs: no such file %q", path)
	}
	if length < 0 || length > sz {
		return fmt.Errorf("dfs: read of %d bytes beyond size %d of %q", length, sz, path)
	}
	at.ReadShared(p, float64(length))
	return nil
}

// Write writes a new file of the given size from node at.
func (s *SharedStore) Write(p *sim.Proc, at *cluster.Node, path string, size int64) error {
	if err := s.Create(path, size); err != nil {
		return err
	}
	at.WriteShared(p, float64(size))
	return nil
}
