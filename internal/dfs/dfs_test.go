package dfs

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func testCluster(e *sim.Engine) *cluster.Cluster {
	return cluster.New(e, cluster.Config{
		Nodes:             4,
		CoresPerNode:      2,
		DiskBandwidth:     1000,
		NICBandwidth:      2000,
		NetLatency:        0.001,
		SharedFSBandwidth: 500,
		NodeNamePrefix:    "n",
	})
}

func testHDFS(e *sim.Engine) (*cluster.Cluster, *HDFS) {
	c := testCluster(e)
	h := NewHDFS(c, HDFSConfig{BlockSize: 100, Replication: 2, NameNodeLatency: 0.001})
	return c, h
}

func TestHDFSCreateAndMetadata(t *testing.T) {
	e := sim.NewEngine()
	_, h := testHDFS(e)
	if err := h.Create("/data/g.e", 250); err != nil {
		t.Fatal(err)
	}
	if !h.Exists("/data/g.e") {
		t.Fatal("file missing after create")
	}
	size, err := h.Size("/data/g.e")
	if err != nil || size != 250 {
		t.Fatalf("Size = %d,%v", size, err)
	}
	if err := h.Create("/data/g.e", 1); err == nil {
		t.Fatal("duplicate create should fail")
	}
	if _, err := h.Size("/nope"); err == nil {
		t.Fatal("size of missing file should fail")
	}
	files := h.Files()
	if len(files) != 1 || files[0] != "/data/g.e" {
		t.Fatalf("Files = %v", files)
	}
	if err := h.Delete("/data/g.e"); err != nil {
		t.Fatal(err)
	}
	if err := h.Delete("/data/g.e"); err == nil {
		t.Fatal("double delete should fail")
	}
}

func TestHDFSReplicationClamped(t *testing.T) {
	e := sim.NewEngine()
	c := testCluster(e)
	h := NewHDFS(c, HDFSConfig{BlockSize: 10, Replication: 99, NameNodeLatency: 0})
	if h.Config().Replication != c.Size() {
		t.Fatalf("replication = %d, want clamped to %d", h.Config().Replication, c.Size())
	}
}

func TestHDFSSplitsCoverFile(t *testing.T) {
	e := sim.NewEngine()
	_, h := testHDFS(e)
	if err := h.Create("/f", 1003); err != nil {
		t.Fatal(err)
	}
	splits, err := h.Splits("/f", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 4 {
		t.Fatalf("splits = %d, want 4", len(splits))
	}
	var total int64
	offset := int64(0)
	for _, s := range splits {
		if s.Offset != offset {
			t.Fatalf("split offset %d, want %d", s.Offset, offset)
		}
		total += s.Length
		offset += s.Length
	}
	if total != 1003 {
		t.Fatalf("splits cover %d bytes, want 1003", total)
	}
	if _, err := h.Splits("/missing", 2); err == nil {
		t.Fatal("splits of missing file should fail")
	}
	if _, err := h.Splits("/f", 0); err == nil {
		t.Fatal("zero splits should fail")
	}
}

func TestHDFSLocalReadIsFasterThanRemote(t *testing.T) {
	// One block replicated on nodes 0 and 1; reading from node 0 is local,
	// from node 2 remote (extra transfer time).
	timeRead := func(readerNode int) float64 {
		e := sim.NewEngine()
		c, h := testHDFS(e)
		if err := h.Create("/f", 100); err != nil {
			t.Fatal(err)
		}
		splits, err := h.Splits("/f", 1)
		if err != nil {
			t.Fatal(err)
		}
		var end float64
		e.Spawn("reader", func(p *sim.Proc) {
			if _, err := h.ReadSplit(p, c.Node(readerNode), splits[0]); err != nil {
				t.Error(err)
			}
			end = p.Now()
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	local := timeRead(0)
	remote := timeRead(2)
	if local >= remote {
		t.Fatalf("local read %.4fs not faster than remote %.4fs", local, remote)
	}
}

func TestHDFSReadSplitReportsLocality(t *testing.T) {
	e := sim.NewEngine()
	c, h := testHDFS(e)
	if err := h.Create("/f", 100); err != nil {
		t.Fatal(err)
	}
	splits, _ := h.Splits("/f", 1)
	var localAt0, localAt2 int64
	e.Spawn("r", func(p *sim.Proc) {
		localAt0, _ = h.ReadSplit(p, c.Node(0), splits[0])
		localAt2, _ = h.ReadSplit(p, c.Node(2), splits[0])
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if localAt0 != 100 {
		t.Fatalf("local bytes at replica node = %d, want 100", localAt0)
	}
	if localAt2 != 0 {
		t.Fatalf("local bytes at non-replica node = %d, want 0", localAt2)
	}
}

func TestHDFSWriteChargesPipeline(t *testing.T) {
	e := sim.NewEngine()
	c, h := testHDFS(e)
	var end float64
	e.Spawn("writer", func(p *sim.Proc) {
		if err := h.Write(p, c.Node(0), "/out", 200); err != nil {
			t.Error(err)
		}
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end <= 0 {
		t.Fatal("write took no simulated time")
	}
	if !h.Exists("/out") {
		t.Fatal("file missing after write")
	}
	// 2 blocks x 2 replicas x 100 bytes at disk rate 1000 = 0.4s disk
	// minimum; end must be at least that.
	if end < 0.4 {
		t.Fatalf("write end = %v, want >= 0.4", end)
	}
}

func TestHDFSSplitHostsIntersectReplicas(t *testing.T) {
	e := sim.NewEngine()
	_, h := testHDFS(e)
	if err := h.Create("/f", 100); err != nil { // single block, 2 replicas
		t.Fatal(err)
	}
	splits, _ := h.Splits("/f", 1)
	if len(splits[0].Hosts) != 2 {
		t.Fatalf("hosts = %v, want 2 replica hosts", splits[0].Hosts)
	}
}

func TestSharedStoreReadWrite(t *testing.T) {
	e := sim.NewEngine()
	c := testCluster(e)
	s := NewSharedStore(c)
	var end float64
	e.Spawn("rw", func(p *sim.Proc) {
		if err := s.Write(p, c.Node(0), "/g", 500); err != nil {
			t.Error(err)
		}
		if err := s.Read(p, c.Node(1), "/g", 500); err != nil {
			t.Error(err)
		}
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// 1000 bytes total at 500 B/s shared = 2s (+2 latencies).
	if math.Abs(end-2.002) > 1e-3 {
		t.Fatalf("end = %v, want ≈2.002", end)
	}
	if sz, err := s.Size("/g"); err != nil || sz != 500 {
		t.Fatalf("Size = %d,%v", sz, err)
	}
	if files := s.Files(); len(files) != 1 || files[0] != "/g" {
		t.Fatalf("Files = %v", files)
	}
}

func TestSharedStoreErrors(t *testing.T) {
	e := sim.NewEngine()
	c := testCluster(e)
	s := NewSharedStore(c)
	if err := s.Create("/g", -1); err == nil {
		t.Fatal("negative size should fail")
	}
	if err := s.Create("/g", 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Create("/g", 10); err != nil {
		if !s.Exists("/g") {
			t.Fatal("file should exist")
		}
	} else {
		t.Fatal("duplicate create should fail")
	}
	e.Spawn("r", func(p *sim.Proc) {
		if err := s.Read(p, c.Node(0), "/missing", 1); err == nil {
			t.Error("read of missing file should fail")
		}
		if err := s.Read(p, c.Node(0), "/g", 11); err == nil {
			t.Error("read beyond size should fail")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("/g"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("/g"); err == nil {
		t.Fatal("double delete should fail")
	}
}
