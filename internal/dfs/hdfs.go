// Package dfs models the storage systems the simulated platforms load
// graphs from: an HDFS-like block-replicated distributed filesystem with
// locality-aware reads (used by the Giraph-like platform), and a shared
// network filesystem with a single contended server (used by the
// PowerGraph-like platform). Files carry sizes, not contents — the
// platforms hold real graph data in memory and use the filesystems only to
// account for I/O time, exactly the quantity Granula measures.
package dfs

import (
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// DefaultBlockSize is the HDFS block size in bytes (128 MB).
const DefaultBlockSize = 128 << 20

// HDFSConfig parameterizes the distributed filesystem.
type HDFSConfig struct {
	BlockSize   int64
	Replication int
	// NameNodeLatency is the metadata round-trip cost per namenode
	// operation, in seconds.
	NameNodeLatency float64
}

// DefaultHDFSConfig mirrors a stock HDFS deployment.
func DefaultHDFSConfig() HDFSConfig {
	return HDFSConfig{
		BlockSize:       DefaultBlockSize,
		Replication:     3,
		NameNodeLatency: 0.002,
	}
}

// Block is one replicated chunk of a file.
type Block struct {
	Index    int
	Size     int64
	Replicas []int // node IDs holding a replica, primary first
}

// fileMeta is the namenode's record of one file.
type fileMeta struct {
	size   int64
	blocks []Block
}

// HDFS is the distributed filesystem: block placement metadata plus
// accounting against the cluster's disks and NICs.
type HDFS struct {
	cluster *cluster.Cluster
	cfg     HDFSConfig
	files   map[string]*fileMeta
	// nextDN rotates block placement across datanodes.
	nextDN int
}

// NewHDFS creates an empty filesystem over the cluster's nodes (every node
// is a datanode).
func NewHDFS(c *cluster.Cluster, cfg HDFSConfig) *HDFS {
	if cfg.BlockSize <= 0 {
		panic("dfs: block size must be positive")
	}
	if cfg.Replication <= 0 {
		panic("dfs: replication must be positive")
	}
	if cfg.Replication > c.Size() {
		cfg.Replication = c.Size()
	}
	return &HDFS{cluster: c, cfg: cfg, files: map[string]*fileMeta{}}
}

// Config returns the filesystem configuration.
func (h *HDFS) Config() HDFSConfig { return h.cfg }

// Exists reports whether path is present.
func (h *HDFS) Exists(path string) bool {
	_, ok := h.files[path]
	return ok
}

// Size returns the file size, or an error if absent.
func (h *HDFS) Size(path string) (int64, error) {
	f, ok := h.files[path]
	if !ok {
		return 0, fmt.Errorf("dfs: no such file %q", path)
	}
	return f.size, nil
}

// Files returns all paths in sorted order.
func (h *HDFS) Files() []string {
	out := make([]string, 0, len(h.files))
	for p := range h.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Create registers a file of the given size without charging I/O time —
// used to seed datasets that exist before the measured job starts. Block
// replicas are placed round-robin.
func (h *HDFS) Create(path string, size int64) error {
	if size < 0 {
		return fmt.Errorf("dfs: negative size for %q", path)
	}
	if _, ok := h.files[path]; ok {
		return fmt.Errorf("dfs: file %q already exists", path)
	}
	meta := &fileMeta{size: size}
	remaining := size
	idx := 0
	for remaining > 0 || (size == 0 && idx == 0) {
		bs := h.cfg.BlockSize
		if remaining < bs {
			bs = remaining
		}
		replicas := make([]int, 0, h.cfg.Replication)
		for r := 0; r < h.cfg.Replication; r++ {
			replicas = append(replicas, (h.nextDN+r)%h.cluster.Size())
		}
		h.nextDN = (h.nextDN + 1) % h.cluster.Size()
		meta.blocks = append(meta.blocks, Block{Index: idx, Size: bs, Replicas: replicas})
		remaining -= bs
		idx++
		if size == 0 {
			break
		}
	}
	h.files[path] = meta
	return nil
}

// Delete removes a file's metadata.
func (h *HDFS) Delete(path string) error {
	if _, ok := h.files[path]; !ok {
		return fmt.Errorf("dfs: no such file %q", path)
	}
	delete(h.files, path)
	return nil
}

// Write writes a new file of the given size from the given node, charging
// the namenode round-trip, the local or remote transfer of every block,
// and the disk write on each replica in the pipeline.
func (h *HDFS) Write(p *sim.Proc, from *cluster.Node, path string, size int64) error {
	p.Sleep(h.cfg.NameNodeLatency)
	if err := h.Create(path, size); err != nil {
		return err
	}
	meta := h.files[path]
	for _, b := range meta.blocks {
		for _, nodeID := range b.Replicas {
			dst := h.cluster.Node(nodeID)
			h.cluster.Transfer(p, from, dst, float64(b.Size))
			dst.WriteLocal(p, float64(b.Size))
		}
	}
	return nil
}

// Split is a byte range of a file with the nodes that hold its blocks
// locally — the unit handed to one input-loading worker.
type Split struct {
	Path   string
	Offset int64
	Length int64
	// Hosts are node IDs holding all blocks of the split (intersection of
	// block replica sets; may be empty for multi-block splits).
	Hosts []int
}

// Splits partitions the file into k contiguous splits along block
// boundaries where possible, mimicking Hadoop's FileInputFormat.
func (h *HDFS) Splits(path string, k int) ([]Split, error) {
	f, ok := h.files[path]
	if !ok {
		return nil, fmt.Errorf("dfs: no such file %q", path)
	}
	if k <= 0 {
		return nil, fmt.Errorf("dfs: split count must be positive, got %d", k)
	}
	splits := make([]Split, 0, k)
	per := f.size / int64(k)
	rem := f.size % int64(k)
	offset := int64(0)
	for i := 0; i < k; i++ {
		length := per
		if int64(i) < rem {
			length++
		}
		s := Split{Path: path, Offset: offset, Length: length}
		s.Hosts = h.hostsFor(f, offset, length)
		splits = append(splits, s)
		offset += length
	}
	return splits, nil
}

// hostsFor intersects the replica sets of all blocks covering the range.
func (h *HDFS) hostsFor(f *fileMeta, offset, length int64) []int {
	if length == 0 {
		return nil
	}
	var hosts map[int]bool
	blockStart := int64(0)
	for _, b := range f.blocks {
		blockEnd := blockStart + b.Size
		if blockEnd > offset && blockStart < offset+length {
			set := map[int]bool{}
			for _, r := range b.Replicas {
				set[r] = true
			}
			if hosts == nil {
				hosts = set
			} else {
				for n := range hosts {
					if !set[n] {
						delete(hosts, n)
					}
				}
			}
		}
		blockStart = blockEnd
	}
	out := make([]int, 0, len(hosts))
	for n := range hosts {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// ReadSplit reads a split from the given node: local disk reads for
// locally-replicated blocks, remote disk + network transfer otherwise.
// It returns the number of bytes that were read locally, so callers can
// report data locality.
func (h *HDFS) ReadSplit(p *sim.Proc, at *cluster.Node, s Split) (localBytes int64, err error) {
	f, ok := h.files[s.Path]
	if !ok {
		return 0, fmt.Errorf("dfs: no such file %q", s.Path)
	}
	p.Sleep(h.cfg.NameNodeLatency)
	blockStart := int64(0)
	for _, b := range f.blocks {
		blockEnd := blockStart + b.Size
		lo := max64(blockStart, s.Offset)
		hi := min64(blockEnd, s.Offset+s.Length)
		if hi > lo {
			n := hi - lo
			if containsInt(b.Replicas, at.ID) {
				at.ReadLocal(p, float64(n))
				localBytes += n
			} else {
				src := h.cluster.Node(b.Replicas[0])
				src.ReadLocal(p, float64(n))
				h.cluster.Transfer(p, src, at, float64(n))
			}
		}
		blockStart = blockEnd
	}
	return localBytes, nil
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
