package stream

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/archive"
	"repro/internal/envmon"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/query"
	"repro/internal/trace"
)

// Ingest failure modes. Gap errors carry the expected sequence number
// so clients can resynchronize.
var (
	// ErrSealed rejects events for a job whose seal event was already
	// accepted.
	ErrSealed = errors.New("stream: job already sealed")
	// ErrOverflow is backpressure: the per-job live buffer is full.
	// Callers map it to 429 + Retry-After.
	ErrOverflow = errors.New("stream: per-job event buffer full")
	// ErrTooManyJobs is backpressure on the number of concurrently live
	// jobs.
	ErrTooManyJobs = errors.New("stream: too many live jobs")
)

// GapError reports a batch that is not contiguous with the accepted
// stream.
type GapError struct {
	Expected, Got uint64
}

func (e *GapError) Error() string {
	return fmt.Sprintf("stream: sequence gap: expected %d, got %d", e.Expected, e.Got)
}

// Config bounds a Manager.
type Config struct {
	// MaxEventsPerJob caps one live job's buffered events (externally
	// ingested jobs only); 0 selects 1<<18.
	MaxEventsPerJob int
	// MaxLiveJobs caps concurrently live jobs; 0 selects 256.
	MaxLiveJobs int
}

func (c *Config) defaults() {
	if c.MaxEventsPerJob <= 0 {
		c.MaxEventsPerJob = 1 << 18
	}
	if c.MaxLiveJobs <= 0 {
		c.MaxLiveJobs = 256
	}
}

// Manager holds every live (in-flight) job's stream state.
type Manager struct {
	cfg  Config
	mu   sync.Mutex
	jobs map[string]*Job
}

// NewManager returns an empty manager.
func NewManager(cfg Config) *Manager {
	cfg.defaults()
	return &Manager{cfg: cfg, jobs: map[string]*Job{}}
}

// Get returns the live job, if any.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Live returns the number of live jobs.
func (m *Manager) Live() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.jobs)
}

// IDs returns the live job IDs, sorted.
func (m *Manager) IDs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.jobs))
	for id := range m.jobs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Remove drops a job's live state (after its sealed archive has been
// published, or to abandon it).
func (m *Manager) Remove(id string) {
	m.mu.Lock()
	j := m.jobs[id]
	delete(m.jobs, id)
	m.mu.Unlock()
	if j != nil {
		j.mu.Lock()
		j.notifyLocked()
		j.mu.Unlock()
	}
}

func (m *Manager) open(id string, internal bool) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[id]; ok {
		if j.internal != internal {
			return nil, fmt.Errorf("stream: job %q already live", id)
		}
		return j, nil
	}
	if len(m.jobs) >= m.cfg.MaxLiveJobs {
		return nil, ErrTooManyJobs
	}
	j := &Job{
		id:       id,
		internal: internal,
		ops:      map[string]*liveOp{},
		cols:     query.NewAppendColumns(),
		subs:     map[chan struct{}]struct{}{},
	}
	m.jobs[id] = j
	return j, nil
}

// OpenInternal registers a live job fed by the in-process engines via
// PublishRecord/PublishSample rather than external ingest.
func (m *Manager) OpenInternal(id string) (*Job, error) {
	return m.open(id, true)
}

// Result summarizes one accepted ingest batch.
type Result struct {
	// Accepted counts newly applied events; Duplicates counts events at
	// or below the already-accepted sequence, skipped idempotently.
	Accepted   int
	Duplicates int
	// LastSeq is the job's high-water sequence after the batch.
	LastSeq uint64
	// Sealed reports whether the batch contained the accepted seal.
	Sealed bool
	// NewEvents are the applied events, in order — what a caller must
	// persist before acknowledging the batch.
	NewEvents []Event
}

// Ingest applies one externally submitted batch to a job, creating the
// live job on its first batch (which must start at seq 1). Batches are
// all-or-nothing: the whole batch is checked for sequence continuity
// and tree validity before any event is applied, so a failed batch
// leaves the job state untouched.
func (m *Manager) Ingest(id string, events []Event) (Result, error) {
	j, err := m.open(id, false)
	if err != nil {
		return Result{}, err
	}
	res, err := j.ingest(events, m.cfg.MaxEventsPerJob)
	if res.LastSeq == 0 {
		// A job that never accepted anything (failed or empty first
		// batch) should not hold a live slot.
		m.mu.Lock()
		if cur, ok := m.jobs[id]; ok && cur == j && j.LastSeq() == 0 {
			delete(m.jobs, id)
		}
		m.mu.Unlock()
	}
	return res, err
}

// liveOp is the in-flight state of one operation.
type liveOp struct {
	op    *archive.Operation // staging copy, mutated until end
	view  *archive.Operation // immutable clone taken at end
	depth int
	path  string // mission path, PathKey form
	ended bool
}

// Job is one live job's stream state: the dense event log, the
// incrementally assembled operation tree, the append-mode columnar
// index over completed operations, and the subscriber set for /watch
// tails.
type Job struct {
	id       string
	internal bool

	mu      sync.Mutex
	events  []Event
	lastSeq uint64

	ops       map[string]*liveOp
	root      *liveOp
	open      int // started, not yet ended
	completed []*liveOp
	cols      *query.AppendColumns
	samples   []envmon.Sample

	sealed    bool
	sealState string
	platform  string
	algorithm string

	subs map[chan struct{}]struct{}
}

// ID returns the job ID.
func (j *Job) ID() string { return j.id }

// Internal reports whether the job is fed by in-process engines.
func (j *Job) Internal() bool { return j.internal }

// LastSeq returns the accepted high-water sequence number.
func (j *Job) LastSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lastSeq
}

// Sealed returns whether the seal event was accepted, and the terminal
// state it carried.
func (j *Job) Sealed() (bool, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sealed, j.sealState
}

// Meta returns the platform and algorithm labels from the seal event
// (empty before seal for external jobs).
func (j *Job) Meta() (platform, algorithm string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.platform, j.algorithm
}

// Progress returns counts for status reporting: accepted events,
// completed operations, operations still open.
func (j *Job) Progress() (events, completedOps, openOps int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.events), len(j.completed), j.open
}

func (j *Job) ingest(events []Event, maxEvents int) (Result, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var res Result
	res.LastSeq = j.lastSeq

	// Skip the idempotent-replay prefix.
	i := 0
	for i < len(events) && events[i].Seq <= j.lastSeq {
		i++
	}
	res.Duplicates = i
	fresh := events[i:]
	if len(fresh) == 0 {
		return res, nil
	}
	if j.sealed {
		return res, ErrSealed
	}
	for k := range fresh {
		want := j.lastSeq + 1 + uint64(k)
		if fresh[k].Seq != want {
			return res, &GapError{Expected: want, Got: fresh[k].Seq}
		}
	}
	if maxEvents > 0 && len(j.events)+len(fresh) > maxEvents {
		return res, ErrOverflow
	}
	if err := j.dryRun(fresh); err != nil {
		return res, err
	}
	for _, e := range fresh {
		j.apply(e)
	}
	res.Accepted = len(fresh)
	res.LastSeq = j.lastSeq
	res.Sealed = j.sealed
	res.NewEvents = fresh
	j.notifyLocked()
	return res, nil
}

// dryRun validates a contiguous batch against the current tree without
// mutating it, so a rejected batch has no effect.
func (j *Job) dryRun(events []Event) error {
	type opState struct {
		exists, ended bool
	}
	overlay := map[string]opState{}
	state := func(id string) (opState, bool) {
		if s, ok := overlay[id]; ok {
			return s, true
		}
		if lo, ok := j.ops[id]; ok {
			return opState{exists: true, ended: lo.ended}, true
		}
		return opState{}, false
	}
	rootSeen := j.root != nil
	open := j.open
	for _, e := range events {
		switch e.Type {
		case TypeStart:
			if _, ok := state(e.Op); ok {
				return fmt.Errorf("stream: event %d: duplicate start for op %q", e.Seq, e.Op)
			}
			if e.Parent == "" {
				if rootSeen {
					return fmt.Errorf("stream: event %d: multiple root operations", e.Seq)
				}
				rootSeen = true
			} else if _, ok := state(e.Parent); !ok {
				return fmt.Errorf("stream: event %d: unknown parent %q", e.Seq, e.Parent)
			}
			overlay[e.Op] = opState{exists: true}
			open++
		case TypeEnd:
			s, ok := state(e.Op)
			if !ok {
				return fmt.Errorf("stream: event %d: end before start for op %q", e.Seq, e.Op)
			}
			if s.ended {
				return fmt.Errorf("stream: event %d: duplicate end for op %q", e.Seq, e.Op)
			}
			overlay[e.Op] = opState{exists: true, ended: true}
			open--
		case TypeInfo:
			if _, ok := state(e.Op); !ok {
				return fmt.Errorf("stream: event %d: info before start for op %q", e.Seq, e.Op)
			}
		case TypeEnv:
			// No tree state.
		case TypeSeal:
			if !rootSeen {
				return fmt.Errorf("stream: event %d: seal before any root operation", e.Seq)
			}
			if open != 0 {
				return fmt.Errorf("stream: event %d: seal with %d operations still open", e.Seq, open)
			}
		}
	}
	return nil
}

// apply installs one pre-validated event. Called with j.mu held; cannot
// fail after dryRun.
func (j *Job) apply(e Event) {
	j.events = append(j.events, e)
	j.lastSeq = e.Seq
	switch e.Type {
	case TypeStart:
		lo := &liveOp{op: &archive.Operation{
			ID: e.Op, Actor: e.Actor, Mission: e.Mission, Start: e.Time,
		}}
		if e.Parent == "" {
			lo.path = e.Mission
			j.root = lo
		} else {
			p := j.ops[e.Parent]
			lo.depth = p.depth + 1
			lo.path = p.path + "/" + e.Mission
		}
		j.ops[e.Op] = lo
		j.open++
	case TypeEnd:
		lo := j.ops[e.Op]
		lo.op.End = e.Time
		lo.ended = true
		j.open--
		// Freeze an immutable view for the live indexes: info events may
		// still arrive for an ended op (the archive assembly sees them),
		// but live readers must never race a map write.
		view := *lo.op
		if lo.op.Infos != nil {
			view.Infos = make(map[string]string, len(lo.op.Infos))
			for k, v := range lo.op.Infos {
				view.Infos[k] = v
			}
		}
		lo.view = &view
		j.cols.Append(lo.view, lo.depth)
		j.completed = append(j.completed, lo)
	case TypeInfo:
		lo := j.ops[e.Op]
		if lo.op.Infos == nil {
			lo.op.Infos = map[string]string{}
		}
		lo.op.Infos[e.Key] = e.Value
	case TypeEnv:
		j.samples = append(j.samples, envmon.Sample{
			Time: e.Time, Node: e.Node, Kind: e.Kind, Used: e.Used,
		})
	case TypeSeal:
		j.sealed = true
		j.sealState = e.State
		j.platform = e.Platform
		j.algorithm = e.Algorithm
	}
}

// publish appends one event from a trusted in-process source, assigning
// the next sequence number.
func (j *Job) publish(e Event) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.sealed {
		return ErrSealed
	}
	e.Seq = j.lastSeq + 1
	if err := j.dryRun([]Event{e}); err != nil {
		return err
	}
	j.apply(e)
	j.notifyLocked()
	return nil
}

// PublishRecord streams one platform-log record from an in-process
// engine (wired through trace.Log's sink).
func (j *Job) PublishRecord(r trace.Record) error {
	return j.publish(Event{
		Type: string(r.Event), Time: r.Time,
		Op: r.Op, Parent: r.Parent, Actor: r.Actor, Mission: r.Mission,
		Key: r.Key, Value: r.Value,
	})
}

// PublishSample streams one environment sample from the in-process
// monitor.
func (j *Job) PublishSample(s envmon.Sample) error {
	return j.publish(Event{
		Type: TypeEnv, Time: s.Time,
		Node: s.Node, Kind: s.Kind, Used: s.Used,
	})
}

// Seal appends the terminal seal event for an in-process job. For
// non-done states the open-operation check is waived — a failed or
// canceled run legitimately leaves operations unfinished.
func (j *Job) Seal(platform, algorithm, state string, at float64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.sealed {
		return ErrSealed
	}
	e := Event{
		Seq: j.lastSeq + 1, Type: TypeSeal, Time: at,
		Platform: platform, Algorithm: algorithm, State: state,
	}
	if state == StateDone {
		if err := j.dryRun([]Event{e}); err != nil {
			return err
		}
	}
	j.apply(e)
	j.notifyLocked()
	return nil
}

// EventsAfter returns accepted events with sequence numbers greater
// than seq. The returned slice is immutable (events are dense and
// append-only); callers must not modify it.
func (j *Job) EventsAfter(seq uint64) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	if seq >= j.lastSeq {
		return nil
	}
	return j.events[seq:len(j.events):len(j.events)]
}

// Subscribe registers a notification channel signaled (non-blocking,
// capacity 1) whenever the job accepts events, seals, or is removed.
func (j *Job) Subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch
}

// Unsubscribe removes a channel registered with Subscribe.
func (j *Job) Unsubscribe(ch chan struct{}) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

func (j *Job) notifyLocked() {
	for ch := range j.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// Columns returns a point-in-time snapshot of the incremental columnar
// index over completed operations (completion order).
func (j *Job) Columns() *query.Columns {
	return j.cols.Snapshot()
}

// Lookup returns completed operations matching one secondary-index key
// — kind is "mission", "actor", or "path" (mission path joined by "/")
// — in completion order. Live jobs are scanned; the sealed archive gets
// the store's real indexes.
func (j *Job) Lookup(kind, value string) []*archive.Operation {
	j.mu.Lock()
	completed := j.completed[:len(j.completed):len(j.completed)]
	j.mu.Unlock()
	var out []*archive.Operation
	for _, lo := range completed {
		match := false
		switch kind {
		case "mission":
			match = lo.view.Mission == value
		case "actor":
			match = lo.view.Actor == value
		case "path":
			match = lo.path == value
		}
		if match {
			out = append(out, lo.view)
		}
	}
	return out
}

// BuildArchive assembles the sealed stream into a finished archive job
// through the exact pipeline the batch path uses — monitor.Assemble
// over the trace records, the standard derivation rules, the domain
// breakdown, and validation — so a streamed-then-sealed job is
// byte-identical to the same job run batch-mode.
func (j *Job) BuildArchive() (*archive.Job, error) {
	j.mu.Lock()
	if !j.sealed {
		j.mu.Unlock()
		return nil, fmt.Errorf("stream: job %q not sealed", j.id)
	}
	events := j.events[:len(j.events):len(j.events)]
	platform := j.platform
	j.mu.Unlock()

	var records []trace.Record
	var samples []envmon.Sample
	for _, e := range events {
		switch e.Type {
		case TypeStart, TypeEnd, TypeInfo:
			records = append(records, trace.Record{
				Time: e.Time, Job: j.id, Op: e.Op, Parent: e.Parent,
				Actor: e.Actor, Mission: e.Mission,
				Event: trace.EventType(e.Type), Key: e.Key, Value: e.Value,
			})
		case TypeEnv:
			samples = append(samples, envmon.Sample{
				Time: e.Time, Node: e.Node, Kind: e.Kind, Used: e.Used,
			})
		}
	}
	job, err := monitor.Assemble(j.id, platform, records, samples)
	if err != nil {
		return nil, err
	}
	metrics.StandardRules().Apply(job)
	// The domain breakdown needs a model-conforming tree (Startup /
	// load / processing domains). Batch-pipeline jobs always have one,
	// and annotating them here is what makes the sealed bytes identical
	// to the batch path; external jobs with free-form trees simply skip
	// the annotation (DomainBreakdown mutates nothing on failure).
	metrics.AnnotateDomainBreakdown(job) //nolint:errcheck
	if err := job.Validate(); err != nil {
		return nil, err
	}
	return job, nil
}
