package stream

import (
	"encoding/json"
	"fmt"
	"io"
)

// SSE framing for /watch: one frame per event (or per closed window in
// windowed mode), with the frame ID carrying the stream sequence number
// so Last-Event-ID resumes are exact.

// WriteFrame writes one SSE frame: id, event name, and the JSON-encoded
// payload on a single data line.
func WriteFrame(w io.Writer, id uint64, event string, data any) error {
	b, err := json.Marshal(data)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", id, event, b)
	return err
}

// WriteHeartbeat writes an SSE comment frame that keeps idle
// connections alive without disturbing event IDs.
func WriteHeartbeat(w io.Writer) error {
	_, err := io.WriteString(w, ": heartbeat\n\n")
	return err
}

// EventFrameName maps an event to its SSE event name ("op" for the
// operation-record kinds, "env", "seal").
func EventFrameName(e Event) string {
	switch e.Type {
	case TypeStart, TypeEnd, TypeInfo:
		return "op"
	case TypeEnv:
		return "env"
	case TypeSeal:
		return "seal"
	}
	return e.Type
}
