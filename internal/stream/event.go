// Package stream turns the Granula archive into a live stream. Batch
// Granula runs a job, archives it, then analyzes; this package holds
// the in-flight state of jobs that are still running — their platform
// -log records and environment samples arriving as sequenced events —
// so the serving layer can ingest events from external runners
// (POST /ingest/{jobID}), answer /query over the growing partial
// archive through an incremental columnar index, and tail jobs over
// SSE (GET /watch/{jobID}) with resumable offsets and windowed
// aggregation.
//
// Consistency model: every event carries a per-job sequence number.
// A job's accepted events are dense (seq 1..lastSeq); a batch whose
// first new event is not lastSeq+1 is rejected with a gap error, and
// events at or below lastSeq are idempotently skipped, so replaying an
// acked batch is always safe. When the terminal "seal" event is
// accepted the live state is assembled into a normal archive job —
// byte-identical to what the batch pipeline would have produced from
// the same records — and handed to the durable store.
package stream

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Event types. The start/end/info kinds mirror trace.Record events;
// env carries one envmon sample; seal terminates the stream.
const (
	TypeStart = "start"
	TypeEnd   = "end"
	TypeInfo  = "info"
	TypeEnv   = "env"
	TypeSeal  = "seal"
)

// Terminal job states carried by a seal event.
const (
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Event is one sequenced observation in a job's live stream. Exactly
// the fields for its type are meaningful; the wire format is one JSON
// object per line.
type Event struct {
	// Seq is the 1-based, per-job, dense sequence number.
	Seq uint64 `json:"seq"`
	// Type is one of start, end, info, env, seal.
	Type string `json:"type"`
	// Time is the event's timestamp in job (simulated) seconds.
	Time float64 `json:"time"`

	// Operation fields (start/end/info), mirroring trace.Record.
	Op      string `json:"op,omitempty"`
	Parent  string `json:"parent,omitempty"`
	Actor   string `json:"actor,omitempty"`
	Mission string `json:"mission,omitempty"`
	Key     string `json:"key,omitempty"`
	Value   string `json:"value,omitempty"`

	// Environment-sample fields (env).
	Node string  `json:"node,omitempty"`
	Kind string  `json:"kind,omitempty"`
	Used float64 `json:"used,omitempty"`

	// Seal fields.
	Platform  string `json:"platform,omitempty"`
	Algorithm string `json:"algorithm,omitempty"`
	State     string `json:"state,omitempty"`
}

// MaxLineBytes bounds one encoded event line on the ingest path.
const MaxLineBytes = 1 << 20

// Validate checks the event's shape independent of any job state (the
// sequence-continuity and tree checks happen at apply time).
func (e *Event) Validate() error {
	if e.Seq == 0 {
		return fmt.Errorf("stream: event needs seq >= 1")
	}
	if math.IsNaN(e.Time) || math.IsInf(e.Time, 0) || e.Time < 0 {
		return fmt.Errorf("stream: event %d: bad time %v", e.Seq, e.Time)
	}
	switch e.Type {
	case TypeStart:
		if e.Op == "" {
			return fmt.Errorf("stream: event %d: start needs op", e.Seq)
		}
	case TypeEnd:
		if e.Op == "" {
			return fmt.Errorf("stream: event %d: end needs op", e.Seq)
		}
	case TypeInfo:
		if e.Op == "" || e.Key == "" {
			return fmt.Errorf("stream: event %d: info needs op and key", e.Seq)
		}
	case TypeEnv:
		if e.Node == "" || e.Kind == "" {
			return fmt.Errorf("stream: event %d: env needs node and kind", e.Seq)
		}
		if math.IsNaN(e.Used) || math.IsInf(e.Used, 0) {
			return fmt.Errorf("stream: event %d: bad used %v", e.Seq, e.Used)
		}
	case TypeSeal:
		if e.Platform == "" {
			return fmt.Errorf("stream: event %d: seal needs platform", e.Seq)
		}
		switch e.State {
		case StateDone, StateFailed, StateCanceled:
		default:
			return fmt.Errorf("stream: event %d: seal needs state done|failed|canceled, got %q", e.Seq, e.State)
		}
	default:
		return fmt.Errorf("stream: event %d: unknown type %q", e.Seq, e.Type)
	}
	return nil
}

// DecodeEvents parses a JSON-lines ingest body: one event object per
// line, blank lines skipped, unknown fields rejected. Every decoded
// event is validated.
func DecodeEvents(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), MaxLineBytes)
	var out []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		var e Event
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("stream: line %d: %w", lineNo, err)
		}
		// Trailing garbage after the object is malformed input, not a
		// second event (events are line-delimited).
		if dec.More() {
			return nil, fmt.Errorf("stream: line %d: trailing data after event", lineNo)
		}
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("stream: line %d: %w", lineNo, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	return out, nil
}

// EncodeEvents renders events as a JSON-lines body, the inverse of
// DecodeEvents. It is used both by ingest clients and to persist
// accepted batches through the WAL.
func EncodeEvents(events []Event) ([]byte, error) {
	var buf bytes.Buffer
	for i := range events {
		b, err := json.Marshal(&events[i])
		if err != nil {
			return nil, err
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}
