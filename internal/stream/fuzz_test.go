package stream

import (
	"bytes"
	"testing"
)

// FuzzIngestEvent drives the full external ingest path — JSON-lines
// decode, per-event validation, sequence check, and tree apply — with
// arbitrary bodies. Invariants: no panics; whatever decodes cleanly
// either ingests or fails without mutating job state; accepted events
// are dense from 1 and re-encode/re-decode to themselves; replaying an
// accepted body is always a no-op success.
func FuzzIngestEvent(f *testing.F) {
	if seed, err := EncodeEvents(simpleJobEvents()); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(`{"seq":1,"type":"start","op":"a","mission":"Job","actor":"c","time":0}`))
	f.Add([]byte(`{"seq":1,"type":"start","op":"a"}` + "\n" + `{"seq":3,"type":"end","op":"a"}`))
	f.Add([]byte(`{"seq":1,"type":"env","node":"n","kind":"cpu","used":1e300}`))
	f.Add([]byte(`{"seq":1,"type":"seal","platform":"p","state":"done"}`))
	f.Add([]byte("not json\n\n{\"seq\":2}"))
	f.Add([]byte(`{"seq":18446744073709551615,"type":"end","op":"x"}`))

	f.Fuzz(func(t *testing.T, body []byte) {
		events, err := DecodeEvents(bytes.NewReader(body))
		if err != nil {
			return
		}
		for i := range events {
			if verr := events[i].Validate(); verr != nil {
				t.Fatalf("DecodeEvents returned invalid event %d: %v", i, verr)
			}
		}
		// Round-trip: encode must re-decode to the same events.
		enc, err := EncodeEvents(events)
		if err != nil {
			t.Fatalf("encode decoded events: %v", err)
		}
		back, err := DecodeEvents(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("re-decode encoded events: %v", err)
		}
		if len(back) != len(events) {
			t.Fatalf("round trip changed count: %d vs %d", len(back), len(events))
		}
		for i := range back {
			if back[i] != events[i] {
				t.Fatalf("round trip changed event %d: %+v vs %+v", i, back[i], events[i])
			}
		}

		m := NewManager(Config{MaxEventsPerJob: 1 << 12})
		res, err := m.Ingest("fuzz", events)
		if err != nil {
			// A rejected first batch must not leave live state behind.
			if res.LastSeq == 0 && m.Live() != 0 {
				t.Fatalf("failed first batch leaked a live job")
			}
			return
		}
		j, ok := m.Get("fuzz")
		if len(events) == 0 {
			if ok {
				t.Fatal("empty batch created a live job")
			}
			return
		}
		if !ok {
			t.Fatal("accepted batch has no live job")
		}
		// Accepted events are dense from 1.
		got := j.EventsAfter(0)
		if len(got) != res.Accepted {
			t.Fatalf("accepted %d but buffered %d", res.Accepted, len(got))
		}
		for i := range got {
			if got[i].Seq != uint64(i+1) {
				t.Fatalf("event %d has seq %d", i, got[i].Seq)
			}
		}
		// Idempotent replay of the same body.
		res2, err := m.Ingest("fuzz", events)
		if err != nil {
			t.Fatalf("replay of accepted batch failed: %v", err)
		}
		if res2.Accepted != 0 || res2.LastSeq != res.LastSeq {
			t.Fatalf("replay was not a no-op: %+v vs %+v", res2, res)
		}
	})
}
