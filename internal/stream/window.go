package stream

// Window is one aggregation bucket over a live job's event-time axis:
// [Start, End) in job seconds. It counts operations started and
// completed in the window and sums completed-operation durations per
// mission ("phase durations" for dashboards). LastSeq is the sequence
// number of the last event folded in, so a watcher resuming from a
// window frame's ID re-enters the stream exactly after it.
type Window struct {
	Index     int                `json:"window"`
	Start     float64            `json:"start"`
	End       float64            `json:"end"`
	Started   int                `json:"started"`
	Completed int                `json:"completed"`
	Phases    map[string]float64 `json:"phases,omitempty"`
	LastSeq   uint64             `json:"lastSeq"`
}

// WindowAgg folds a job's event stream into fixed-width event-time
// windows incrementally. Feed returns the windows that the new event
// closed (zero or more — an event far in the future closes every
// intervening non-empty window); Flush returns the trailing partial
// window, used at seal.
type WindowAgg struct {
	width  float64
	starts map[string]opStart // open ops: start time + mission
	cur    *Window
}

type opStart struct {
	time    float64
	mission string
}

// NewWindowAgg returns an aggregator with the given window width in
// job seconds (must be positive).
func NewWindowAgg(width float64) *WindowAgg {
	return &WindowAgg{width: width, starts: map[string]opStart{}}
}

func (w *WindowAgg) windowFor(t float64) int {
	if t < 0 {
		return 0
	}
	return int(t / w.width)
}

// Feed folds one event and returns any windows it closed, in order.
// Empty intermediate windows are skipped rather than emitted.
func (w *WindowAgg) Feed(e Event) []Window {
	idx := w.windowFor(e.Time)
	var closed []Window
	if w.cur != nil && idx > w.cur.Index {
		w.cur.LastSeq = lastSeqBefore(e.Seq)
		closed = append(closed, *w.cur)
		w.cur = nil
	}
	switch e.Type {
	case TypeStart:
		w.starts[e.Op] = opStart{time: e.Time, mission: e.Mission}
		w.bucket(idx).Started++
	case TypeEnd:
		b := w.bucket(idx)
		b.Completed++
		if st, ok := w.starts[e.Op]; ok {
			if b.Phases == nil {
				b.Phases = map[string]float64{}
			}
			b.Phases[st.mission] += e.Time - st.time
			delete(w.starts, e.Op)
		}
	case TypeInfo, TypeEnv, TypeSeal:
		// Counted toward no bucket, but they advance LastSeq for the
		// window they fall into if one is open.
	}
	if w.cur != nil && e.Seq > w.cur.LastSeq {
		w.cur.LastSeq = e.Seq
	}
	return closed
}

// lastSeqBefore returns the sequence number preceding seq (events are
// dense, so the previous event has seq-1).
func lastSeqBefore(seq uint64) uint64 {
	if seq == 0 {
		return 0
	}
	return seq - 1
}

func (w *WindowAgg) bucket(idx int) *Window {
	if w.cur == nil {
		w.cur = &Window{
			Index: idx,
			Start: float64(idx) * w.width,
			End:   float64(idx+1) * w.width,
		}
	}
	return w.cur
}

// Flush returns the trailing partial window, if any, and resets it.
func (w *WindowAgg) Flush() *Window {
	out := w.cur
	w.cur = nil
	return out
}
