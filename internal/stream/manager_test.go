package stream

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/archive"
	"repro/internal/datagen"
	"repro/internal/envmon"
	"repro/internal/platforms"
	"repro/internal/query"
	"repro/internal/trace"
)

// simpleJobEvents builds a well-formed event stream for a tiny job:
// root with two sequential children, one info, env samples, seal.
func simpleJobEvents() []Event {
	return []Event{
		{Seq: 1, Type: TypeStart, Time: 0, Op: "op-1", Actor: "Client", Mission: "Job"},
		{Seq: 2, Type: TypeStart, Time: 1, Op: "op-2", Parent: "op-1", Actor: "Worker-0", Mission: "Load"},
		{Seq: 3, Type: TypeInfo, Time: 1.5, Op: "op-2", Key: "Bytes", Value: "1000"},
		{Seq: 4, Type: TypeEnd, Time: 2, Op: "op-2"},
		{Seq: 5, Type: TypeEnv, Time: 2, Node: "node-0", Kind: "cpu", Used: 1.5},
		{Seq: 6, Type: TypeStart, Time: 2, Op: "op-3", Parent: "op-1", Actor: "Worker-1", Mission: "Compute"},
		{Seq: 7, Type: TypeEnd, Time: 5, Op: "op-3"},
		{Seq: 8, Type: TypeEnd, Time: 6, Op: "op-1"},
		{Seq: 9, Type: TypeSeal, Time: 6, Platform: "Giraph", Algorithm: "BFS", State: StateDone},
	}
}

func TestIngestHappyPathAndIdempotentReplay(t *testing.T) {
	m := NewManager(Config{})
	events := simpleJobEvents()

	res, err := m.Ingest("j1", events[:4])
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 4 || res.Duplicates != 0 || res.LastSeq != 4 || res.Sealed {
		t.Fatalf("bad result: %+v", res)
	}

	// Replay the same batch plus the rest: the prefix is skipped.
	res, err = m.Ingest("j1", events)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 5 || res.Duplicates != 4 || res.LastSeq != 9 || !res.Sealed {
		t.Fatalf("bad replay result: %+v", res)
	}

	j, ok := m.Get("j1")
	if !ok {
		t.Fatal("job not live")
	}
	if sealed, state := j.Sealed(); !sealed || state != StateDone {
		t.Fatalf("sealed=%v state=%q", sealed, state)
	}
	if ev, comp, open := j.Progress(); ev != 9 || comp != 3 || open != 0 {
		t.Fatalf("progress: events=%d completed=%d open=%d", ev, comp, open)
	}

	// Full replay after seal is still idempotent (all duplicates).
	res, err = m.Ingest("j1", events)
	if err != nil || res.Accepted != 0 || res.Duplicates != 9 {
		t.Fatalf("post-seal replay: res=%+v err=%v", res, err)
	}
}

func TestIngestGapRejected(t *testing.T) {
	m := NewManager(Config{})
	events := simpleJobEvents()
	if _, err := m.Ingest("j1", events[:2]); err != nil {
		t.Fatal(err)
	}
	_, err := m.Ingest("j1", events[3:5]) // skips seq 3
	var gap *GapError
	if !errors.As(err, &gap) {
		t.Fatalf("want GapError, got %v", err)
	}
	if gap.Expected != 3 || gap.Got != 4 {
		t.Fatalf("gap: %+v", gap)
	}
	// State untouched: the valid continuation still applies.
	if _, err := m.Ingest("j1", events[2:]); err != nil {
		t.Fatal(err)
	}
}

func TestIngestBatchIsAtomic(t *testing.T) {
	m := NewManager(Config{})
	events := simpleJobEvents()
	if _, err := m.Ingest("j1", events[:4]); err != nil {
		t.Fatal(err)
	}
	// A batch that is sequence-contiguous but tree-invalid late in the
	// batch (duplicate end for op-2) must be rejected without applying
	// its valid prefix.
	bad := []Event{
		events[4],
		{Seq: 6, Type: TypeEnd, Time: 3, Op: "op-2"},
	}
	if _, err := m.Ingest("j1", bad); err == nil || !strings.Contains(err.Error(), "duplicate end") {
		t.Fatalf("want duplicate-end rejection, got %v", err)
	}
	j, _ := m.Get("j1")
	if j.LastSeq() != 4 {
		t.Fatalf("partial apply: lastSeq=%d, want 4", j.LastSeq())
	}
	// The correct continuation still fits.
	if _, err := m.Ingest("j1", events[4:]); err != nil {
		t.Fatal(err)
	}
}

func TestIngestBackpressure(t *testing.T) {
	m := NewManager(Config{MaxEventsPerJob: 4, MaxLiveJobs: 1})
	events := simpleJobEvents()
	if _, err := m.Ingest("j1", events[:4]); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Ingest("j1", events[4:6]); !errors.Is(err, ErrOverflow) {
		t.Fatalf("want ErrOverflow, got %v", err)
	}
	if _, err := m.Ingest("j2", events[:1]); !errors.Is(err, ErrTooManyJobs) {
		t.Fatalf("want ErrTooManyJobs, got %v", err)
	}
	// The rejected second job must not leak a live slot.
	if got := m.Live(); got != 1 {
		t.Fatalf("live jobs: %d, want 1", got)
	}
}

func TestIngestRejectsInvalidTreeShapes(t *testing.T) {
	cases := []struct {
		name string
		evs  []Event
		want string
	}{
		{"duplicate start", []Event{
			{Seq: 1, Type: TypeStart, Time: 0, Op: "a", Mission: "Job"},
			{Seq: 2, Type: TypeStart, Time: 0, Op: "a", Parent: "a", Mission: "X"},
		}, "duplicate start"},
		{"end before start", []Event{
			{Seq: 1, Type: TypeEnd, Time: 0, Op: "a"},
		}, "end before start"},
		{"info before start", []Event{
			{Seq: 1, Type: TypeInfo, Time: 0, Op: "a", Key: "k"},
		}, "info before start"},
		{"unknown parent", []Event{
			{Seq: 1, Type: TypeStart, Time: 0, Op: "a", Parent: "nope", Mission: "X"},
		}, "unknown parent"},
		{"second root", []Event{
			{Seq: 1, Type: TypeStart, Time: 0, Op: "a", Mission: "Job"},
			{Seq: 2, Type: TypeStart, Time: 0, Op: "b", Mission: "Job"},
		}, "multiple root"},
		{"seal with open ops", []Event{
			{Seq: 1, Type: TypeStart, Time: 0, Op: "a", Mission: "Job"},
			{Seq: 2, Type: TypeSeal, Time: 1, Platform: "Giraph", State: StateDone},
		}, "still open"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewManager(Config{})
			_, err := m.Ingest("j", tc.evs)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want %q error, got %v", tc.want, err)
			}
		})
	}
}

func TestEventsAfterAndSubscribe(t *testing.T) {
	m := NewManager(Config{})
	events := simpleJobEvents()
	if _, err := m.Ingest("j1", events[:4]); err != nil {
		t.Fatal(err)
	}
	j, _ := m.Get("j1")
	ch := j.Subscribe()
	defer j.Unsubscribe(ch)

	got := j.EventsAfter(2)
	if len(got) != 2 || got[0].Seq != 3 || got[1].Seq != 4 {
		t.Fatalf("EventsAfter(2): %+v", got)
	}
	if j.EventsAfter(9) != nil {
		t.Fatal("EventsAfter past the end should be nil")
	}

	if _, err := m.Ingest("j1", events[4:]); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	default:
		t.Fatal("subscriber not notified")
	}
	if got := j.EventsAfter(4); len(got) != 5 {
		t.Fatalf("EventsAfter(4) after second batch: %d events", len(got))
	}
}

func TestLiveQueryOverPartialJob(t *testing.T) {
	m := NewManager(Config{})
	events := simpleJobEvents()
	// Ingest through op-2's completion only: one completed op.
	if _, err := m.Ingest("j1", events[:5]); err != nil {
		t.Fatal(err)
	}
	j, _ := m.Get("j1")

	q, err := query.Parse(`mission = Load`)
	if err != nil {
		t.Fatal(err)
	}
	got := q.SelectColumns(j.Columns())
	if len(got) != 1 || got[0].ID != "op-2" {
		t.Fatalf("live query: %+v", got)
	}
	if ops := j.Lookup("mission", "Load"); len(ops) != 1 || ops[0].Infos["Bytes"] != "1000" {
		t.Fatalf("mission lookup: %+v", ops)
	}
	if ops := j.Lookup("actor", "Worker-0"); len(ops) != 1 {
		t.Fatalf("actor lookup: %+v", ops)
	}
	if ops := j.Lookup("path", "Job/Load"); len(ops) != 1 {
		t.Fatalf("path lookup: %+v", ops)
	}
	// The still-open root is invisible to the live index.
	if ops := j.Lookup("mission", "Job"); len(ops) != 0 {
		t.Fatalf("open op leaked into live index: %+v", ops)
	}
}

// streamedArchiveBytes runs a platform job batch-mode while capturing
// its records and samples through the live sinks, replays the capture
// as an external event stream into a fresh Manager, seals it, and
// returns both serializations.
func streamedArchiveBytes(t *testing.T, platform, algorithm string) (batch, streamed []byte) {
	t.Helper()
	ds, err := datagen.Generate(datagen.Config{
		Kind: datagen.SocialNetwork, Vertices: 1500, Edges: 8000, Seed: 21, Directed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := platforms.DAS5Config()
	cfg.Nodes = 4
	cfg.CoresPerNode = 8

	var mu sync.Mutex
	var events []Event
	seq := uint64(0)
	push := func(e Event) {
		mu.Lock()
		seq++
		e.Seq = seq
		events = append(events, e)
		mu.Unlock()
	}
	out, err := platforms.Run(platforms.Spec{
		Platform:  platform,
		Algorithm: algorithm,
		Dataset:   ds,
		Cluster:   cfg,
		WorkScale: 1, Iterations: 3, HostParallelism: 1,
		RecordSink: func(r trace.Record) {
			push(Event{Type: string(r.Event), Time: r.Time, Op: r.Op, Parent: r.Parent,
				Actor: r.Actor, Mission: r.Mission, Key: r.Key, Value: r.Value})
		},
		SampleSink: func(s envmon.Sample) {
			push(Event{Type: TypeEnv, Time: s.Time, Node: s.Node, Kind: s.Kind, Used: s.Used})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	push(Event{Type: TypeSeal, Time: out.Runtime, Platform: platform, Algorithm: algorithm, State: StateDone})

	m := NewManager(Config{MaxEventsPerJob: len(events) + 1})
	jobID := out.Job.ID
	// Replay in client-sized batches, duplicating one mid-stream batch to
	// exercise idempotent replay on the equivalence path too.
	const batchSize = 64
	for i := 0; i < len(events); i += batchSize {
		end := i + batchSize
		if end > len(events) {
			end = len(events)
		}
		if _, err := m.Ingest(jobID, events[i:end]); err != nil {
			t.Fatalf("ingest batch at %d: %v", i, err)
		}
		if i == batchSize {
			if _, err := m.Ingest(jobID, events[i:end]); err != nil {
				t.Fatalf("replay batch at %d: %v", i, err)
			}
		}
	}
	j, ok := m.Get(jobID)
	if !ok {
		t.Fatal("job not live")
	}
	sealedJob, err := j.BuildArchive()
	if err != nil {
		t.Fatal(err)
	}

	marshal := func(job *archive.Job) []byte {
		a := archive.New()
		a.Add(job)
		var buf bytes.Buffer
		if err := a.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	return marshal(out.Job), marshal(sealedJob)
}

// TestSealEquivalenceArchiveBytes is the tentpole oracle at the stream
// layer: a job streamed event-by-event and sealed must serialize to
// exactly the bytes the batch pipeline produces, and its sealed columns
// must be identical to a from-scratch BuildColumns.
func TestSealEquivalenceArchiveBytes(t *testing.T) {
	for _, tc := range []struct{ platform, algorithm string }{
		{"Giraph", "BFS"},
		{"PowerGraph", "PageRank"},
	} {
		t.Run(tc.platform+"/"+tc.algorithm, func(t *testing.T) {
			batch, streamed := streamedArchiveBytes(t, tc.platform, tc.algorithm)
			if !bytes.Equal(batch, streamed) {
				t.Fatalf("streamed archive differs from batch: %d vs %d bytes (first diff at %d)",
					len(streamed), len(batch), firstDiff(streamed, batch))
			}
		})
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func TestEncodeDecodeEventsRoundTrip(t *testing.T) {
	events := simpleJobEvents()
	b, err := EncodeEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEvents(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round trip: %d events, want %d", len(got), len(events))
	}
	for i := range got {
		if got[i] != events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, got[i], events[i])
		}
	}
}

func TestDecodeEventsRejectsMalformed(t *testing.T) {
	bad := []string{
		`{"seq":0,"type":"start","op":"a"}`,              // seq 0
		`{"seq":1,"type":"bogus"}`,                       // unknown type
		`{"seq":1,"type":"start"}`,                       // missing op
		`{"seq":1,"type":"info","op":"a"}`,               // missing key
		`{"seq":1,"type":"env","node":"n"}`,              // missing kind
		`{"seq":1,"type":"seal","platform":"p"}`,         // missing state
		`{"seq":1,"type":"seal","state":"done"}`,         // missing platform
		`{"seq":1,"type":"start","op":"a","bogus":true}`, // unknown field
		`{"seq":1,"type":"start","op":"a"} trailing`,     // trailing data
		`not json at all`,
		`{"seq":1,"type":"start","op":"a","time":-5}`, // negative time
	}
	for _, line := range bad {
		if _, err := DecodeEvents(strings.NewReader(line)); err == nil {
			t.Errorf("decode accepted %q", line)
		}
	}
}

func TestWindowAggregation(t *testing.T) {
	agg := NewWindowAgg(2.0)
	var closed []Window
	for _, e := range simpleJobEvents() {
		closed = append(closed, agg.Feed(e)...)
	}
	tail := agg.Flush()
	if tail != nil {
		closed = append(closed, *tail)
	}
	if len(closed) != 4 {
		t.Fatalf("windows: %d, want 4 (%+v)", len(closed), closed)
	}
	// Window 0 covers [0,2): root + Load start there; Load's end lands
	// at t=2 in window 1.
	w0 := closed[0]
	if w0.Index != 0 || w0.Started != 2 || w0.Completed != 0 {
		t.Fatalf("w0: %+v", w0)
	}
	w1 := closed[1]
	if w1.Index != 1 || w1.Started != 1 || w1.Completed != 1 || w1.Phases["Load"] != 1.0 {
		t.Fatalf("w1: %+v", w1)
	}
	w2 := closed[2]
	if w2.Index != 2 || w2.Completed != 1 || w2.Phases["Compute"] != 3.0 {
		t.Fatalf("w2: %+v", w2)
	}
	w3 := closed[3]
	if w3.Index != 3 || w3.Completed != 1 || w3.Phases["Job"] != 6.0 {
		t.Fatalf("w3: %+v", w3)
	}
	// Resumability: each closed window's LastSeq points at the last
	// event folded into it.
	if w0.LastSeq != 3 || w1.LastSeq != 6 || w2.LastSeq != 7 || w3.LastSeq != 9 {
		t.Fatalf("window LastSeqs: %d %d %d %d", w0.LastSeq, w1.LastSeq, w2.LastSeq, w3.LastSeq)
	}
}

func TestInternalPublishAndSeal(t *testing.T) {
	m := NewManager(Config{})
	j, err := m.OpenInternal("int-1")
	if err != nil {
		t.Fatal(err)
	}
	recs := []trace.Record{
		{Time: 0, Job: "int-1", Op: "op-1", Actor: "Client", Mission: "Job", Event: trace.EventStart},
		{Time: 1, Job: "int-1", Op: "op-2", Parent: "op-1", Actor: "W", Mission: "Load", Event: trace.EventStart},
		{Time: 2, Job: "int-1", Op: "op-2", Event: trace.EventEnd},
		{Time: 3, Job: "int-1", Op: "op-1", Event: trace.EventEnd},
	}
	for _, r := range recs {
		if err := j.PublishRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.PublishSample(envmon.Sample{Time: 1, Node: "n0", Kind: "cpu", Used: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := j.Seal("Giraph", "BFS", StateDone, 3); err != nil {
		t.Fatal(err)
	}
	if err := j.Seal("Giraph", "BFS", StateDone, 3); !errors.Is(err, ErrSealed) {
		t.Fatalf("double seal: %v", err)
	}
	if j.LastSeq() != 6 {
		t.Fatalf("lastSeq=%d, want 6", j.LastSeq())
	}
	job, err := j.BuildArchive()
	if err != nil {
		t.Fatal(err)
	}
	if job.Root == nil || job.Root.ID != "op-1" || len(job.EnvSamples) != 1 {
		t.Fatalf("assembled job: %+v", job)
	}
	// A failed run can seal with operations still open.
	j2, err := m.OpenInternal("int-2")
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.PublishRecord(recs[0]); err != nil {
		t.Fatal(err)
	}
	if err := j2.Seal("Giraph", "BFS", StateFailed, 1); err != nil {
		t.Fatalf("failed-state seal: %v", err)
	}
}

func TestConcurrentIngestAndTail(t *testing.T) {
	// Many writers racing batches (only contiguous ones land), readers
	// tailing and querying concurrently — run under -race.
	m := NewManager(Config{})
	var events []Event
	for i := 0; i < 400; i++ {
		op := fmt.Sprintf("op-%d", i+1)
		parent := ""
		mission := "Job"
		if i > 0 {
			parent = "op-1"
			mission = "Step"
		}
		events = append(events,
			Event{Seq: uint64(2*i + 1), Type: TypeStart, Time: float64(i), Op: op, Parent: parent, Actor: "W", Mission: mission})
		if i > 0 {
			events = append(events,
				Event{Seq: uint64(2*i + 2), Type: TypeEnd, Time: float64(i) + 0.5, Op: op})
		} else {
			events = append(events,
				Event{Seq: uint64(2*i + 2), Type: TypeInfo, Time: float64(i), Op: op, Key: "k", Value: "v"})
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q, _ := query.Parse(`mission = Step`)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if j, ok := m.Get("race"); ok {
					_ = j.EventsAfter(0)
					_ = q.SelectColumns(j.Columns())
					_ = j.Lookup("actor", "W")
				}
			}
		}()
	}
	// Two writers race identical batch sequences; duplicates are skipped.
	var ww sync.WaitGroup
	for w := 0; w < 2; w++ {
		ww.Add(1)
		go func() {
			defer ww.Done()
			for i := 0; i < len(events); i += 20 {
				end := i + 20
				if end > len(events) {
					end = len(events)
				}
				for {
					_, err := m.Ingest("race", events[:end])
					if err == nil {
						break
					}
					t.Errorf("ingest: %v", err)
					return
				}
			}
		}()
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	j, _ := m.Get("race")
	if j.LastSeq() != uint64(len(events)) {
		t.Fatalf("lastSeq=%d, want %d", j.LastSeq(), len(events))
	}
}
