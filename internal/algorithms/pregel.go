// Package algorithms provides the Graphalytics core algorithms for both
// simulated platforms — vertex programs for the Pregel (Giraph-like) model
// and vertex programs for the GAS (PowerGraph-like) model — together with
// sequential reference implementations used to verify platform output.
// BFS is the algorithm the Granula paper evaluates; the others round out
// the Graphalytics suite the paper's benchmarking work builds on.
package algorithms

import (
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/pregel"
)

// Unreached is the vertex value of vertices not reached by a traversal.
var Unreached = math.Inf(1)

// PregelBFS is breadth-first search from Source: the vertex value becomes
// the hop distance from the source, or +Inf if unreached. Use
// pregel.MinCombiner.
type PregelBFS struct {
	Source graph.VertexID
}

// Compute implements pregel.Program.
func (b PregelBFS) Compute(ctx *pregel.Context, msgs []float64) {
	if ctx.Superstep() == 0 {
		if ctx.ID() == b.Source {
			ctx.SetValue(0)
			ctx.SendToAllNeighbors(1)
		} else {
			ctx.SetValue(Unreached)
		}
		ctx.VoteToHalt()
		return
	}
	best := ctx.Value()
	for _, m := range msgs {
		if m < best {
			best = m
		}
	}
	if best < ctx.Value() {
		ctx.SetValue(best)
		ctx.SendToAllNeighbors(best + 1)
	}
	ctx.VoteToHalt()
}

// EdgeWeight returns the deterministic weight of edge (u,v) used by SSSP:
// an integer in [1, 8] derived from a hash of the endpoints, standing in
// for the property weights of a real dataset.
func EdgeWeight(u, v graph.VertexID) float64 {
	x := uint64(u)*0x9e3779b97f4a7c15 ^ uint64(v)*0xc2b2ae3d27d4eb4f
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return float64(1 + x%8)
}

// PregelSSSP is single-source shortest paths with EdgeWeight weights. Use
// pregel.MinCombiner.
type PregelSSSP struct {
	Source graph.VertexID
}

// Compute implements pregel.Program.
func (s PregelSSSP) Compute(ctx *pregel.Context, msgs []float64) {
	relax := func(dist float64) {
		for _, dst := range ctx.OutNeighbors() {
			ctx.SendTo(dst, dist+EdgeWeight(ctx.ID(), dst))
		}
	}
	if ctx.Superstep() == 0 {
		if ctx.ID() == s.Source {
			ctx.SetValue(0)
			relax(0)
		} else {
			ctx.SetValue(Unreached)
		}
		ctx.VoteToHalt()
		return
	}
	best := ctx.Value()
	for _, m := range msgs {
		if m < best {
			best = m
		}
	}
	if best < ctx.Value() {
		ctx.SetValue(best)
		relax(best)
	}
	ctx.VoteToHalt()
}

// PregelPageRank runs a fixed number of PageRank iterations with damping
// factor Damping (0.85 in Graphalytics). Dangling-vertex mass is
// redistributed through the "dangling" aggregator. Use pregel.SumCombiner.
type PregelPageRank struct {
	Iterations int
	Damping    float64
}

// Compute implements pregel.Program.
func (pr PregelPageRank) Compute(ctx *pregel.Context, msgs []float64) {
	n := float64(ctx.NumVertices())
	d := pr.Damping
	switch {
	case ctx.Superstep() == 0:
		ctx.SetValue(1 / n)
	case ctx.Superstep() <= pr.Iterations:
		sum := 0.0
		for _, m := range msgs {
			sum += m
		}
		dangling := ctx.AggregatedValue("dangling")
		ctx.SetValue((1-d)/n + d*(sum+dangling/n))
	}
	if ctx.Superstep() < pr.Iterations {
		if deg := ctx.OutDegree(); deg > 0 {
			ctx.SendToAllNeighbors(ctx.Value() / float64(deg))
		} else {
			ctx.Aggregate("dangling", ctx.Value())
		}
		return // stay active for the next iteration
	}
	ctx.VoteToHalt()
}

// PregelWCC labels every vertex with the smallest vertex ID in its
// connected component. Run it on graphs loaded as undirected (the
// Graphalytics definition); on a directed graph it propagates along
// out-edges only. Use pregel.MinCombiner.
type PregelWCC struct{}

// Compute implements pregel.Program.
func (PregelWCC) Compute(ctx *pregel.Context, msgs []float64) {
	if ctx.Superstep() == 0 {
		ctx.SetValue(float64(ctx.ID()))
		ctx.SendToAllNeighbors(float64(ctx.ID()))
		ctx.VoteToHalt()
		return
	}
	best := ctx.Value()
	for _, m := range msgs {
		if m < best {
			best = m
		}
	}
	if best < ctx.Value() {
		ctx.SetValue(best)
		ctx.SendToAllNeighbors(best)
	}
	ctx.VoteToHalt()
}

// PregelCDLP is community detection by label propagation, run for a fixed
// number of iterations; the value is the final community label. It must
// run without a combiner (it needs label frequencies).
type PregelCDLP struct {
	Iterations int
}

// Compute implements pregel.Program.
func (c PregelCDLP) Compute(ctx *pregel.Context, msgs []float64) {
	if ctx.Superstep() == 0 {
		ctx.SetValue(float64(ctx.ID()))
		if c.Iterations > 0 {
			ctx.SendToAllNeighbors(ctx.Value())
			return
		}
		ctx.VoteToHalt()
		return
	}
	if ctx.Superstep() <= c.Iterations {
		if label, ok := mostFrequent(msgs); ok {
			ctx.SetValue(label)
		}
	}
	if ctx.Superstep() < c.Iterations {
		ctx.SendToAllNeighbors(ctx.Value())
		return
	}
	ctx.VoteToHalt()
}

// mostFrequent returns the most frequent value, breaking ties toward the
// smallest value (the Graphalytics CDLP rule). It sorts msgs in place and
// counts runs — no per-call map, so a CDLP superstep allocates nothing per
// active vertex. Mutating msgs is safe: the engine delivers each vertex a
// private inbox slice read only by that vertex's Compute call, and the
// result is order-independent by construction (sorting discards delivery
// order; equal counts resolve to the smallest label, which a sorted scan
// visits first).
func mostFrequent(msgs []float64) (float64, bool) {
	if len(msgs) == 0 {
		return 0, false
	}
	sort.Float64s(msgs)
	best, bestCount := msgs[0], 1
	runVal, runCount := msgs[0], 1
	for _, m := range msgs[1:] {
		if m == runVal {
			runCount++
		} else {
			runVal, runCount = m, 1
		}
		// Strict > keeps the smallest label on ties: values arrive in
		// ascending order, so an equal count never displaces best.
		if runCount > bestCount {
			best, bestCount = runVal, runCount
		}
	}
	return best, true
}
