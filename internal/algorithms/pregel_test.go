package algorithms

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/dfs"
	"repro/internal/pregel"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/yarn"
	"repro/internal/zookeeper"
)

// runPregel executes a program over ds on a small simulated deployment and
// returns the vertex values.
func runPregel(t *testing.T, ds *datagen.Dataset, prog pregel.Program, combiner pregel.Combiner) []float64 {
	t.Helper()
	eng := sim.NewEngine()
	c := cluster.New(eng, cluster.Config{
		Nodes: 4, CoresPerNode: 8,
		DiskBandwidth: 200e6, NICBandwidth: 500e6, NetLatency: 1e-4,
		SharedFSBandwidth: 300e6, NodeNamePrefix: "node",
	})
	h := dfs.NewHDFS(c, dfs.HDFSConfig{BlockSize: 1 << 20, Replication: 2, NameNodeLatency: 0.001})
	deps := pregel.Deps{
		Cluster:    c,
		RM:         yarn.NewResourceManager(c, yarn.Config{SubmitLatency: 0.1, AllocLatency: 0.01, LaunchLatency: 0.1, LaunchCPUSeconds: 0.05, ReleaseLatency: 0.05}),
		HDFS:       h,
		ZK:         zookeeper.NewService(c.Node(0), zookeeper.DefaultConfig()),
		InputPath:  "/in",
		OutputPath: "/out",
	}
	if err := pregel.StageInput(h, "/in", ds, 1); err != nil {
		t.Fatal(err)
	}
	cfg := pregel.Config{
		Workers: 4, ComputeThreads: 4, ParseThreads: 4,
		Combiner: combiner, MaxSupersteps: 500, WorkScale: 1,
		Costs: pregel.DefaultCostModel(),
	}
	em := trace.NewEmitter(trace.NewLog(), "alg-test", eng.Now)
	var values []float64
	eng.Spawn("client", func(p *sim.Proc) {
		res, err := pregel.RunJob(p, deps, cfg, prog, ds, em)
		if err != nil {
			t.Error(err)
			return
		}
		values = res.Values
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return values
}

func directedDataset(t *testing.T) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Generate(datagen.Config{
		Kind: datagen.SocialNetwork, Vertices: 800, Edges: 4000, Seed: 5, Directed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func undirectedDataset(t *testing.T) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Generate(datagen.Config{
		Kind: datagen.Uniform, Vertices: 400, Edges: 1200, Seed: 9, Directed: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestPregelBFSMatchesReference(t *testing.T) {
	ds := directedDataset(t)
	got := runPregel(t, ds, PregelBFS{Source: 0}, pregel.MinCombiner{})
	want := RefBFS(ds.Graph, 0)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: %v, want %v", v, got[v], want[v])
		}
	}
	// Some vertices should be reached beyond the source.
	reached := 0
	for _, d := range want {
		if !math.IsInf(d, 1) {
			reached++
		}
	}
	if reached < 10 {
		t.Fatalf("only %d vertices reached; test graph too disconnected", reached)
	}
}

func TestPregelSSSPMatchesDijkstra(t *testing.T) {
	ds := directedDataset(t)
	got := runPregel(t, ds, PregelSSSP{Source: 0}, pregel.MinCombiner{})
	want := RefSSSP(ds.Graph, 0)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9 && !(math.IsInf(got[v], 1) && math.IsInf(want[v], 1)) {
			t.Fatalf("vertex %d: %v, want %v", v, got[v], want[v])
		}
	}
}

func TestPregelPageRankMatchesReference(t *testing.T) {
	ds := directedDataset(t)
	got := runPregel(t, ds, PregelPageRank{Iterations: 10, Damping: 0.85}, pregel.SumCombiner{})
	want := RefPageRank(ds.Graph, 10, 0.85)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9 {
			t.Fatalf("vertex %d: %v, want %v", v, got[v], want[v])
		}
	}
	// Ranks must sum to ~1 (dangling mass redistributed).
	sum := 0.0
	for _, r := range got {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("ranks sum to %v, want 1", sum)
	}
}

func TestPregelWCCMatchesReference(t *testing.T) {
	ds := undirectedDataset(t)
	got := runPregel(t, ds, PregelWCC{}, pregel.MinCombiner{})
	want := RefWCC(ds.Graph)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: component %v, want %v", v, got[v], want[v])
		}
	}
}

func TestPregelCDLPMatchesReference(t *testing.T) {
	ds := undirectedDataset(t)
	got := runPregel(t, ds, PregelCDLP{Iterations: 5}, nil)
	want := RefCDLP(ds.Graph, 5)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: label %v, want %v", v, got[v], want[v])
		}
	}
}

func TestEdgeWeightDeterministicAndBounded(t *testing.T) {
	for u := int64(0); u < 50; u++ {
		for v := int64(0); v < 50; v++ {
			w := EdgeWeight(0+graphVertex(u), graphVertex(v))
			if w < 1 || w > 8 {
				t.Fatalf("weight(%d,%d) = %v out of [1,8]", u, v, w)
			}
			if w != EdgeWeight(graphVertex(u), graphVertex(v)) {
				t.Fatalf("weight(%d,%d) not deterministic", u, v)
			}
		}
	}
}

func TestMostFrequentTieBreak(t *testing.T) {
	if v, ok := mostFrequent([]float64{3, 1, 3, 1}); !ok || v != 1 {
		t.Fatalf("mostFrequent = %v,%v, want 1 (smallest on tie)", v, ok)
	}
	if v, ok := mostFrequent([]float64{2, 2, 5}); !ok || v != 2 {
		t.Fatalf("mostFrequent = %v,%v, want 2", v, ok)
	}
	if _, ok := mostFrequent(nil); ok {
		t.Fatal("mostFrequent(nil) should report not-ok")
	}
}
