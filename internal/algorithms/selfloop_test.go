package algorithms

import (
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/pregel"
)

// selfLoopDataset is a small undirected graph with self-loops at 0 and 4:
// two triangles {0,1,2} and {3,4,5} bridged by edge 2-3.
func selfLoopDataset(t *testing.T) *datagen.Dataset {
	t.Helper()
	edges := []graph.Edge{
		{Src: 0, Dst: 0}, {Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0},
		{Src: 3, Dst: 4}, {Src: 4, Dst: 4}, {Src: 4, Dst: 5}, {Src: 5, Dst: 3},
		{Src: 2, Dst: 3},
	}
	g, err := graph.FromEdges(6, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	return &datagen.Dataset{
		Name: "selfloop", Graph: g, Edges: edges, Directed: false,
		EdgeBytes: datagen.DefaultEdgeBytes,
	}
}

// TestSelfLoopDegreeConvention pins the Graphalytics convention: an
// undirected self-loop contributes 1 to the degree, not 2.
func TestSelfLoopDegreeConvention(t *testing.T) {
	ds := selfLoopDataset(t)
	g := ds.Graph
	// Vertex 0: self-loop + edges to 1 and 2 -> degree 3.
	if got := g.OutDegree(0); got != 3 {
		t.Fatalf("degree(0) = %d, want 3 (self-loop counted once)", got)
	}
	// Vertex 1: edges to 0 and 2 -> degree 2.
	if got := g.OutDegree(1); got != 2 {
		t.Fatalf("degree(1) = %d, want 2", got)
	}
	// 9 input edges, 2 of them self-loops: 2*7 + 2 = 16 arcs.
	if got := g.NumArcs(); got != 16 {
		t.Fatalf("arcs = %d, want 16", got)
	}
}

// TestSelfLoopEnginesAgree runs both engines and the references on the
// self-loop graph and requires full agreement — the regression pinned
// here is the former double materialization of undirected self-loops,
// which skewed degrees (and so CDLP frequencies) between the references
// and the engines.
func TestSelfLoopEnginesAgree(t *testing.T) {
	ds := selfLoopDataset(t)

	wccRef := RefWCC(ds.Graph)
	wccPregel := runPregel(t, ds, PregelWCC{}, pregel.MinCombiner{})
	wccGAS := runGAS(t, ds, GASWCC{})
	for v := range wccRef {
		if wccPregel[v] != wccRef[v] {
			t.Fatalf("WCC vertex %d: pregel %v, ref %v", v, wccPregel[v], wccRef[v])
		}
		if wccGAS[v] != wccRef[v] {
			t.Fatalf("WCC vertex %d: gas %v, ref %v", v, wccGAS[v], wccRef[v])
		}
	}

	cdlpRef := RefCDLP(ds.Graph, 4)
	cdlpPregel := runPregel(t, ds, PregelCDLP{Iterations: 4}, nil)
	for v := range cdlpRef {
		if cdlpPregel[v] != cdlpRef[v] {
			t.Fatalf("CDLP vertex %d: pregel %v, ref %v", v, cdlpPregel[v], cdlpRef[v])
		}
	}

	// LCC excludes self-loops from neighbor sets: vertices 1 and 5 sit in
	// a closed triangle (coefficient 1), and the self-loops at 0 and 4
	// must not dilute their coefficients below their triangle value.
	lcc := RefLCC(ds.Graph)
	if lcc[1] != 1 {
		t.Fatalf("LCC(1) = %v, want 1 (triangle closed, self-loop ignored)", lcc[1])
	}
	for v, c := range lcc {
		if c < 0 || c > 1 || math.IsNaN(c) {
			t.Fatalf("LCC(%d) = %v out of [0,1]", v, c)
		}
	}
}
