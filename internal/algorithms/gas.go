package algorithms

import (
	"math"

	"repro/internal/gas"
	"repro/internal/graph"
)

// GASBFS is breadth-first search in the GAS model: pull the minimum
// neighbor distance over in-edges, apply the minimum, and signal
// out-neighbors that can improve. Matches RefBFS on any directed graph.
type GASBFS struct {
	Source graph.VertexID
}

// Init implements gas.Program.
func (b GASBFS) Init(v graph.VertexID, _ *graph.Graph) (float64, bool) {
	if v == b.Source {
		return 0, true
	}
	return Unreached, false
}

// GatherDir implements gas.Program.
func (GASBFS) GatherDir() gas.Direction { return gas.In }

// Gather implements gas.Program.
func (GASBFS) Gather(_ int, _, _ graph.VertexID, otherValue float64) float64 {
	return otherValue + 1
}

// Sum implements gas.Program.
func (GASBFS) Sum(a, b float64) float64 { return math.Min(a, b) }

// Apply implements gas.Program.
func (GASBFS) Apply(_ int, _ graph.VertexID, old, acc float64, hasAcc bool) float64 {
	if hasAcc && acc < old {
		return acc
	}
	return old
}

// ScatterDir implements gas.Program.
func (GASBFS) ScatterDir() gas.Direction { return gas.Out }

// Scatter implements gas.Program.
func (GASBFS) Scatter(_ int, _, _ graph.VertexID, value, otherValue float64) bool {
	return value+1 < otherValue
}

// GASSSSP is single-source shortest paths with EdgeWeight weights in the
// GAS model. Matches RefSSSP.
type GASSSSP struct {
	Source graph.VertexID
}

// Init implements gas.Program.
func (s GASSSSP) Init(v graph.VertexID, _ *graph.Graph) (float64, bool) {
	if v == s.Source {
		return 0, true
	}
	return Unreached, false
}

// GatherDir implements gas.Program.
func (GASSSSP) GatherDir() gas.Direction { return gas.In }

// Gather implements gas.Program.
func (GASSSSP) Gather(_ int, v, other graph.VertexID, otherValue float64) float64 {
	return otherValue + EdgeWeight(other, v)
}

// Sum implements gas.Program.
func (GASSSSP) Sum(a, b float64) float64 { return math.Min(a, b) }

// Apply implements gas.Program.
func (GASSSSP) Apply(_ int, _ graph.VertexID, old, acc float64, hasAcc bool) float64 {
	if hasAcc && acc < old {
		return acc
	}
	return old
}

// ScatterDir implements gas.Program.
func (GASSSSP) ScatterDir() gas.Direction { return gas.Out }

// Scatter implements gas.Program.
func (GASSSSP) Scatter(_ int, v, other graph.VertexID, value, otherValue float64) bool {
	return value+EdgeWeight(v, other) < otherValue
}

// GASWCC labels vertices with the smallest ID in their component,
// propagating over both edge directions. Run on undirected graphs for the
// Graphalytics WCC semantics; gathering In suffices there because the
// stored adjacency is symmetric.
type GASWCC struct{}

// Init implements gas.Program.
func (GASWCC) Init(v graph.VertexID, _ *graph.Graph) (float64, bool) {
	return float64(v), true
}

// GatherDir implements gas.Program.
func (GASWCC) GatherDir() gas.Direction { return gas.In }

// Gather implements gas.Program.
func (GASWCC) Gather(_ int, _, _ graph.VertexID, otherValue float64) float64 {
	return otherValue
}

// Sum implements gas.Program.
func (GASWCC) Sum(a, b float64) float64 { return math.Min(a, b) }

// Apply implements gas.Program.
func (GASWCC) Apply(_ int, _ graph.VertexID, old, acc float64, hasAcc bool) float64 {
	if hasAcc && acc < old {
		return acc
	}
	return old
}

// ScatterDir implements gas.Program.
func (GASWCC) ScatterDir() gas.Direction { return gas.Out }

// Scatter implements gas.Program.
func (GASWCC) Scatter(_ int, _, _ graph.VertexID, value, otherValue float64) bool {
	return value < otherValue
}

// gasPageRank runs a fixed number of PageRank iterations in the GAS
// model, reading neighbor out-degrees from the captured graph. As in
// PowerGraph's canonical implementation, dangling-vertex mass is NOT
// redistributed (compare RefPageRankPlain, not RefPageRank).
type gasPageRank struct {
	iterations int
	damping    float64
	g          *graph.Graph
	n          float64
}

// NewGASPageRank returns a GAS PageRank program over g with the given
// fixed iteration count and damping factor.
func NewGASPageRank(g *graph.Graph, iterations int, damping float64) gas.Program {
	return &gasPageRank{
		iterations: iterations,
		damping:    damping,
		g:          g,
		n:          float64(g.NumVertices()),
	}
}

// Init implements gas.Program.
func (pr *gasPageRank) Init(graph.VertexID, *graph.Graph) (float64, bool) {
	return 1 / pr.n, true
}

// GatherDir implements gas.Program.
func (*gasPageRank) GatherDir() gas.Direction { return gas.In }

// Gather implements gas.Program.
func (pr *gasPageRank) Gather(_ int, _, other graph.VertexID, otherValue float64) float64 {
	deg := pr.g.OutDegree(other)
	if deg == 0 {
		return 0
	}
	return otherValue / float64(deg)
}

// Sum implements gas.Program.
func (*gasPageRank) Sum(a, b float64) float64 { return a + b }

// Apply implements gas.Program.
func (pr *gasPageRank) Apply(_ int, _ graph.VertexID, _, acc float64, hasAcc bool) float64 {
	sum := 0.0
	if hasAcc {
		sum = acc
	}
	return (1-pr.damping)/pr.n + pr.damping*sum
}

// ScatterDir implements gas.Program.
func (*gasPageRank) ScatterDir() gas.Direction { return gas.Out }

// Scatter implements gas.Program.
func (pr *gasPageRank) Scatter(iter int, _, _ graph.VertexID, _, _ float64) bool {
	return iter < pr.iterations-1
}

// RefPageRankPlain is RefPageRank without dangling-mass redistribution,
// matching the GAS PageRank semantics.
func RefPageRankPlain(g *graph.Graph, iterations int, damping float64) []float64 {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for it := 0; it < iterations; it++ {
		for i := range next {
			next[i] = 0
		}
		for v := int64(0); v < n; v++ {
			deg := g.OutDegree(graph.VertexID(v))
			if deg == 0 {
				continue
			}
			share := rank[v] / float64(deg)
			for _, w := range g.OutNeighbors(graph.VertexID(v)) {
				next[w] += share
			}
		}
		for i := range next {
			next[i] = (1-damping)/float64(n) + damping*next[i]
		}
		rank, next = next, rank
	}
	return rank
}
