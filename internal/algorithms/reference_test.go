package algorithms

import (
	"math"
	"testing"

	"repro/internal/graph"
)

// graphVertex converts for readability in tests.
func graphVertex(v int64) graph.VertexID { return graph.VertexID(v) }

func lineGraph(t *testing.T, n int64) *graph.Graph {
	t.Helper()
	var edges []graph.Edge
	for v := int64(0); v+1 < n; v++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(v), Dst: graph.VertexID(v + 1)})
	}
	g, err := graph.FromEdges(n, edges, true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRefBFSLine(t *testing.T) {
	g := lineGraph(t, 5)
	dist := RefBFS(g, 0)
	for v := int64(0); v < 5; v++ {
		if dist[v] != float64(v) {
			t.Fatalf("dist = %v", dist)
		}
	}
	// From the tail, everything upstream is unreachable.
	dist = RefBFS(g, 4)
	for v := int64(0); v < 4; v++ {
		if !math.IsInf(dist[v], 1) {
			t.Fatalf("dist from tail = %v, want Inf upstream", dist)
		}
	}
}

func TestRefSSSPTriangleShortcut(t *testing.T) {
	// 0->1->2 plus direct 0->2; whichever is shorter by hash weights must
	// win.
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}}
	g, err := graph.FromEdges(3, edges, true)
	if err != nil {
		t.Fatal(err)
	}
	dist := RefSSSP(g, 0)
	viaPath := EdgeWeight(0, 1) + EdgeWeight(1, 2)
	direct := EdgeWeight(0, 2)
	want := math.Min(viaPath, direct)
	if dist[2] != want {
		t.Fatalf("dist[2] = %v, want %v", dist[2], want)
	}
}

func TestRefPageRankUniformOnRegularGraph(t *testing.T) {
	// Directed cycle: perfectly regular, so ranks stay uniform.
	n := int64(10)
	var edges []graph.Edge
	for v := int64(0); v < n; v++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(v), Dst: graph.VertexID((v + 1) % n)})
	}
	g, err := graph.FromEdges(n, edges, true)
	if err != nil {
		t.Fatal(err)
	}
	ranks := RefPageRank(g, 20, 0.85)
	for v, r := range ranks {
		if math.Abs(r-0.1) > 1e-12 {
			t.Fatalf("rank[%d] = %v, want 0.1", v, r)
		}
	}
}

func TestRefPageRankMassConserved(t *testing.T) {
	g := lineGraph(t, 6) // vertex 5 is dangling
	ranks := RefPageRank(g, 15, 0.85)
	sum := 0.0
	for _, r := range ranks {
		sum += r
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("mass = %v, want 1", sum)
	}
}

func TestRefWCCTwoComponents(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 3, Dst: 4}}
	g, err := graph.FromEdges(5, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	label := RefWCC(g)
	if label[0] != 0 || label[1] != 0 || label[2] != 0 {
		t.Fatalf("component A labels = %v", label[:3])
	}
	if label[3] != 3 || label[4] != 3 {
		t.Fatalf("component B labels = %v", label[3:])
	}
}

func TestRefCDLPStableOnClique(t *testing.T) {
	// A 4-clique converges to everyone holding the smallest ID.
	var edges []graph.Edge
	for u := int64(0); u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			edges = append(edges, graph.Edge{Src: graph.VertexID(u), Dst: graph.VertexID(v)})
		}
	}
	g, err := graph.FromEdges(4, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	label := RefCDLP(g, 10)
	for v, l := range label {
		if l != 0 {
			t.Fatalf("label[%d] = %v, want 0", v, l)
		}
	}
}

func TestRefLCCTriangle(t *testing.T) {
	// Triangle: every vertex has LCC 1. Path: middle vertex has LCC 0.
	tri, err := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}}, false)
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range RefLCC(tri) {
		if c != 1 {
			t.Fatalf("triangle LCC[%d] = %v, want 1", v, c)
		}
	}
	path, err := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}, false)
	if err != nil {
		t.Fatal(err)
	}
	lcc := RefLCC(path)
	if lcc[1] != 0 {
		t.Fatalf("path LCC[1] = %v, want 0", lcc[1])
	}
	if lcc[0] != 0 || lcc[2] != 0 { // degree-1 vertices
		t.Fatalf("degree-1 LCC = %v, want 0", lcc)
	}
}

func TestRefLCCSquareWithDiagonal(t *testing.T) {
	// Square 0-1-2-3 with diagonal 0-2: vertices 1 and 3 have neighbors
	// {0,2} which are connected -> LCC 1; vertices 0 and 2 have neighbors
	// {1,3, other-corner} with 2 of 6 ordered pairs linked -> 2/3... let's
	// verify the exact value: neighbors of 0 = {1,2,3}; links among them:
	// 1-2 and 2-3 (each counted both directions) = 4 ordered; LCC = 4/6.
	edges := []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0}, {Src: 0, Dst: 2}}
	g, err := graph.FromEdges(4, edges, false)
	if err != nil {
		t.Fatal(err)
	}
	lcc := RefLCC(g)
	if math.Abs(lcc[1]-1) > 1e-12 || math.Abs(lcc[3]-1) > 1e-12 {
		t.Fatalf("LCC = %v, want corners 1 and 3 at 1.0", lcc)
	}
	if math.Abs(lcc[0]-4.0/6.0) > 1e-12 || math.Abs(lcc[2]-4.0/6.0) > 1e-12 {
		t.Fatalf("LCC = %v, want hubs at 2/3", lcc)
	}
}

func TestRefEmptyGraphs(t *testing.T) {
	g, err := graph.FromEdges(0, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := RefPageRank(g, 5, 0.85); got != nil {
		t.Fatalf("PageRank on empty graph = %v", got)
	}
	if got := RefWCC(g); len(got) != 0 {
		t.Fatalf("WCC on empty graph = %v", got)
	}
	if got := RefLCC(g); len(got) != 0 {
		t.Fatalf("LCC on empty graph = %v", got)
	}
}
