package algorithms

import (
	"container/heap"
	"math"

	"repro/internal/graph"
)

// This file holds sequential reference implementations. They serve two
// purposes: verifying platform output in tests (the platforms must produce
// exactly these results), and acting as the single-machine baseline the
// distributed platforms are compared against.

// RefBFS returns hop distances from src over out-edges; unreached vertices
// get +Inf.
func RefBFS(g *graph.Graph, src graph.VertexID) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = Unreached
	}
	if n == 0 {
		return dist
	}
	dist[src] = 0
	queue := []graph.VertexID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.OutNeighbors(v) {
			if math.IsInf(dist[w], 1) {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// RefSSSP returns shortest-path distances from src using EdgeWeight
// weights (Dijkstra); unreached vertices get +Inf.
func RefSSSP(g *graph.Graph, src graph.VertexID) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = Unreached
	}
	if n == 0 {
		return dist
	}
	dist[src] = 0
	pq := &vertexHeap{{v: src, d: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(vertexDist)
		if item.d > dist[item.v] {
			continue
		}
		for _, w := range g.OutNeighbors(item.v) {
			nd := item.d + EdgeWeight(item.v, w)
			if nd < dist[w] {
				dist[w] = nd
				heap.Push(pq, vertexDist{v: w, d: nd})
			}
		}
	}
	return dist
}

type vertexDist struct {
	v graph.VertexID
	d float64
}

type vertexHeap []vertexDist

func (h vertexHeap) Len() int           { return len(h) }
func (h vertexHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h vertexHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *vertexHeap) Push(x any)        { *h = append(*h, x.(vertexDist)) }
func (h *vertexHeap) Pop() (out any) {
	old := *h
	n := len(old)
	out = old[n-1]
	*h = old[:n-1]
	return out
}

// RefPageRank runs the same fixed-iteration PageRank as PregelPageRank:
// dangling mass is redistributed uniformly each iteration.
func RefPageRank(g *graph.Graph, iterations int, damping float64) []float64 {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for it := 0; it < iterations; it++ {
		dangling := 0.0
		for i := range next {
			next[i] = 0
		}
		for v := int64(0); v < n; v++ {
			deg := g.OutDegree(graph.VertexID(v))
			if deg == 0 {
				dangling += rank[v]
				continue
			}
			share := rank[v] / float64(deg)
			for _, w := range g.OutNeighbors(graph.VertexID(v)) {
				next[w] += share
			}
		}
		for i := range next {
			next[i] = (1-damping)/float64(n) + damping*(next[i]+dangling/float64(n))
		}
		rank, next = next, rank
	}
	return rank
}

// RefWCC labels every vertex with the smallest vertex ID reachable along
// out-edges treated per the graph's stored adjacency. On an undirected
// graph this is the weakly-connected-component label.
func RefWCC(g *graph.Graph) []float64 {
	n := g.NumVertices()
	label := make([]float64, n)
	for v := int64(0); v < n; v++ {
		label[v] = float64(v)
	}
	// Iterate min-label propagation to a fixed point; O(n·diam) worst
	// case, fine at test scale.
	changed := true
	for changed {
		changed = false
		for v := int64(0); v < n; v++ {
			for _, w := range g.OutNeighbors(graph.VertexID(v)) {
				if label[v] < label[w] {
					label[w] = label[v]
					changed = true
				}
			}
		}
	}
	return label
}

// RefCDLP runs synchronous label propagation for the given iterations with
// the smallest-label tie-break, matching PregelCDLP on undirected graphs.
func RefCDLP(g *graph.Graph, iterations int) []float64 {
	n := g.NumVertices()
	label := make([]float64, n)
	next := make([]float64, n)
	for v := int64(0); v < n; v++ {
		label[v] = float64(v)
	}
	for it := 0; it < iterations; it++ {
		for v := int64(0); v < n; v++ {
			counts := map[float64]int{}
			for _, w := range g.InNeighbors(graph.VertexID(v)) {
				counts[label[w]]++
			}
			if len(counts) == 0 {
				next[v] = label[v]
				continue
			}
			best, bestCount := 0.0, -1
			for l, c := range counts {
				if c > bestCount || (c == bestCount && l < best) {
					best, bestCount = l, c
				}
			}
			next[v] = best
		}
		label, next = next, label
	}
	return label
}

// RefLCC returns each vertex's local clustering coefficient, treating the
// graph as undirected: the fraction of pairs of distinct neighbors that
// are themselves connected (in either direction). Vertices with fewer than
// two neighbors get 0.
func RefLCC(g *graph.Graph) []float64 {
	n := g.NumVertices()
	out := make([]float64, n)
	// neighbor sets combining in- and out-adjacency, deduplicated
	nbrs := make([]map[graph.VertexID]bool, n)
	for v := int64(0); v < n; v++ {
		set := map[graph.VertexID]bool{}
		for _, w := range g.OutNeighbors(graph.VertexID(v)) {
			if w != graph.VertexID(v) {
				set[w] = true
			}
		}
		for _, w := range g.InNeighbors(graph.VertexID(v)) {
			if w != graph.VertexID(v) {
				set[w] = true
			}
		}
		nbrs[v] = set
	}
	for v := int64(0); v < n; v++ {
		k := len(nbrs[v])
		if k < 2 {
			continue
		}
		links := 0
		for a := range nbrs[v] {
			for b := range nbrs[v] {
				if a != b && nbrs[a][b] {
					links++
				}
			}
		}
		out[v] = float64(links) / float64(k*(k-1))
	}
	return out
}
