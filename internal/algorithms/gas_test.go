package algorithms

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/dfs"
	"repro/internal/gas"
	"repro/internal/graph"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/trace"
)

// runGAS executes a GAS program over ds on a small simulated deployment.
func runGAS(t *testing.T, ds *datagen.Dataset, prog gas.Program) []float64 {
	t.Helper()
	eng := sim.NewEngine()
	c := cluster.New(eng, cluster.Config{
		Nodes: 4, CoresPerNode: 8,
		DiskBandwidth: 200e6, NICBandwidth: 500e6, NetLatency: 1e-4,
		SharedFSBandwidth: 300e6, NodeNamePrefix: "node",
	})
	store := dfs.NewSharedStore(c)
	deps := gas.Deps{
		Cluster:    c,
		Store:      store,
		MPI:        mpi.DefaultConfig(),
		InputPath:  "/in",
		OutputPath: "/out",
	}
	if err := gas.StageInput(store, "/in", ds, 1); err != nil {
		t.Fatal(err)
	}
	cfg := gas.Config{
		Machines: 4, LoadThreads: 4, ComputeThreads: 4,
		CutStrategy: graph.VertexCutHash, MaxIterations: 500,
		ChunkBytes: 64 << 10, WorkScale: 1, Costs: gas.DefaultCostModel(),
	}
	em := trace.NewEmitter(trace.NewLog(), "gas-alg-test", eng.Now)
	var values []float64
	eng.Spawn("client", func(p *sim.Proc) {
		res, err := gas.RunJob(p, deps, cfg, prog, ds, em)
		if err != nil {
			t.Error(err)
			return
		}
		values = res.Values
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	return values
}

func TestGASBFSMatchesReference(t *testing.T) {
	ds := directedDataset(t)
	got := runGAS(t, ds, GASBFS{Source: 0})
	want := RefBFS(ds.Graph, 0)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: %v, want %v", v, got[v], want[v])
		}
	}
}

func TestGASSSSPMatchesDijkstra(t *testing.T) {
	ds := directedDataset(t)
	got := runGAS(t, ds, GASSSSP{Source: 0})
	want := RefSSSP(ds.Graph, 0)
	for v := range want {
		same := got[v] == want[v] ||
			math.Abs(got[v]-want[v]) < 1e-9 ||
			(math.IsInf(got[v], 1) && math.IsInf(want[v], 1))
		if !same {
			t.Fatalf("vertex %d: %v, want %v", v, got[v], want[v])
		}
	}
}

func TestGASWCCMatchesReference(t *testing.T) {
	ds := undirectedDataset(t)
	got := runGAS(t, ds, GASWCC{})
	want := RefWCC(ds.Graph)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("vertex %d: component %v, want %v", v, got[v], want[v])
		}
	}
}

func TestGASPageRankMatchesPlainReference(t *testing.T) {
	ds := directedDataset(t)
	got := runGAS(t, ds, NewGASPageRank(ds.Graph, 10, 0.85))
	want := RefPageRankPlain(ds.Graph, 10, 0.85)
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-9 {
			t.Fatalf("vertex %d: %v, want %v", v, got[v], want[v])
		}
	}
}

func TestPregelAndGASBFSAgree(t *testing.T) {
	ds := directedDataset(t)
	fromGAS := runGAS(t, ds, GASBFS{Source: 3})
	fromPregel := runPregel(t, ds, PregelBFS{Source: 3}, nil)
	for v := range fromGAS {
		if fromGAS[v] != fromPregel[v] {
			t.Fatalf("vertex %d: GAS %v vs Pregel %v", v, fromGAS[v], fromPregel[v])
		}
	}
}
