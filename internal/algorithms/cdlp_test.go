package algorithms

import (
	"math/rand"
	"testing"
)

// TestMostFrequentOrderIndependent feeds mostFrequent random shuffles of
// the same multiset and requires the same winner every time: the result
// must depend only on label frequencies (ties to the smallest label),
// never on message delivery order.
func TestMostFrequentOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		base := make([]float64, 1+rng.Intn(12))
		for i := range base {
			base[i] = float64(rng.Intn(5))
		}
		want, wantOK := mostFrequent(append([]float64(nil), base...))
		if !wantOK {
			t.Fatalf("trial %d: non-empty input reported not-ok", trial)
		}
		for p := 0; p < 10; p++ {
			perm := append([]float64(nil), base...)
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			if got, ok := mostFrequent(perm); !ok || got != want {
				t.Fatalf("trial %d: shuffle changed winner: %v, want %v (input %v)", trial, got, want, base)
			}
		}
	}
}

func TestMostFrequentSmallestLabelOnTies(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3, 1, 3, 1}, 1},
		{[]float64{9, 7, 5}, 5},
		{[]float64{2, 2, 5, 5, 5}, 5},
		{[]float64{4}, 4},
		{[]float64{8, 8, 1, 1, 8}, 8},
	}
	for _, c := range cases {
		in := append([]float64(nil), c.in...)
		if got, ok := mostFrequent(in); !ok || got != c.want {
			t.Fatalf("mostFrequent(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestMostFrequentAllocs is the satellite alloc gate: the sort-based
// counter must not allocate per call (the old map-based version allocated
// a map per active vertex per CDLP superstep).
func TestMostFrequentAllocs(t *testing.T) {
	msgs := []float64{5, 3, 3, 9, 1, 3, 9, 9, 2, 2, 7, 7, 7, 0}
	allocs := testing.AllocsPerRun(100, func() {
		mostFrequent(msgs)
	})
	if allocs != 0 {
		t.Errorf("mostFrequent allocates %v times per call, want 0", allocs)
	}
}
