package service

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"repro/internal/archivedb"
)

// latencyBuckets are the fixed histogram bucket upper bounds in
// seconds. They span sub-millisecond JSON handlers to multi-second
// simulation submissions.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram.
type histogram struct {
	counts []uint64
	sum    float64
	count  uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]uint64, len(latencyBuckets))}
}

func (h *histogram) observe(v float64) {
	for i, ub := range latencyBuckets {
		if v <= ub {
			h.counts[i]++
		}
	}
	h.sum += v
	h.count++
}

// quantile returns an upper-bound estimate of the q-quantile from the
// cumulative bucket counts (the bucket boundary at which the
// cumulative count crosses q·total).
func (h *histogram) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := q * float64(h.count)
	for i, c := range h.counts {
		if float64(c) >= target {
			return latencyBuckets[i]
		}
	}
	return latencyBuckets[len(latencyBuckets)-1]
}

// Metrics aggregates the service's operational counters: per-route
// request-latency histograms, job lifecycle counters, and gauges
// sampled at scrape time (executor queue depth, store size). Output is
// Prometheus text exposition format with routes sorted, so /metrics is
// byte-deterministic for a given state.
type Metrics struct {
	mu         sync.Mutex
	requests   map[string]*histogram
	jobsStart  uint64
	jobsDone   uint64
	jobsFailed uint64

	// Robustness counters. Every method on Metrics is nil-receiver
	// safe, so instrumented code paths do not guard their hooks.
	retries     uint64
	panics      uint64
	shed        uint64
	transitions map[BreakerState]uint64

	// Live-streaming counters (POST /ingest, GET /watch).
	ingestBatches  uint64
	ingestEvents   uint64
	ingestRejected uint64
	watchConns     uint64

	// Analytical-query (v2) counters: queries served, and segments
	// scanned vs pruned by zone maps across all of them.
	query2Queries uint64
	query2Scanned uint64
	query2Pruned  uint64
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		requests:    map[string]*histogram{},
		transitions: map[BreakerState]uint64{},
	}
}

// CountRetry counts one archive-persistence retry.
func (m *Metrics) CountRetry() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.retries++
	m.mu.Unlock()
}

// CountPanicRecovered counts one panic caught by a worker or handler.
func (m *Metrics) CountPanicRecovered() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.panics++
	m.mu.Unlock()
}

// CountShed counts one request shed by admission control (429) or
// degraded read-only mode (503).
func (m *Metrics) CountShed() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.shed++
	m.mu.Unlock()
}

// CountQuery2 counts one served analytical (v2) query and how many
// per-job segments it scanned vs pruned via zone maps.
func (m *Metrics) CountQuery2(scanned, pruned int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.query2Queries++
	m.query2Scanned += uint64(scanned)
	m.query2Pruned += uint64(pruned)
	m.mu.Unlock()
}

// CountIngestBatch counts one accepted ingest batch and its newly
// applied events.
func (m *Metrics) CountIngestBatch(events int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.ingestBatches++
	m.ingestEvents += uint64(events)
	m.mu.Unlock()
}

// CountIngestRejected counts one rejected ingest batch (gap, overflow,
// bad shape, or sealed job).
func (m *Metrics) CountIngestRejected() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.ingestRejected++
	m.mu.Unlock()
}

// CountWatch counts one accepted /watch connection.
func (m *Metrics) CountWatch() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.watchConns++
	m.mu.Unlock()
}

// BreakerTransition counts one circuit-breaker transition into state.
func (m *Metrics) BreakerTransition(state BreakerState) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.transitions[state]++
	m.mu.Unlock()
}

// Robustness returns the (retries, panics recovered, shed) counters.
func (m *Metrics) Robustness() (retries, panics, shed uint64) {
	if m == nil {
		return 0, 0, 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.retries, m.panics, m.shed
}

// BreakerTransitions returns the per-state transition counts.
func (m *Metrics) BreakerTransitions() map[BreakerState]uint64 {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[BreakerState]uint64, len(m.transitions))
	for k, v := range m.transitions {
		out[k] = v
	}
	return out
}

// ObserveRequest records one served request's latency under its route
// pattern (e.g. "GET /jobs/{id}").
func (m *Metrics) ObserveRequest(route string, seconds float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	h, ok := m.requests[route]
	if !ok {
		h = newHistogram()
		m.requests[route] = h
	}
	h.observe(seconds)
	m.mu.Unlock()
}

// JobStarted counts a job leaving the queue for a worker.
func (m *Metrics) JobStarted() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.jobsStart++
	m.mu.Unlock()
}

// JobFinished counts a completed job.
func (m *Metrics) JobFinished(ok bool) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if ok {
		m.jobsDone++
	} else {
		m.jobsFailed++
	}
	m.mu.Unlock()
}

// RequestQuantile estimates the q-quantile request latency across all
// routes, in seconds.
func (m *Metrics) RequestQuantile(q float64) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	merged := newHistogram()
	for _, h := range m.requests {
		for i, c := range h.counts {
			merged.counts[i] += c
		}
		merged.count += h.count
		merged.sum += h.sum
	}
	return merged.quantile(q)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// CacheStats bundles the read-path cache counters sampled at scrape
// time: the compiled-query LRU and the HTTP response cache.
type CacheStats struct {
	QueryHits   uint64
	QueryMisses uint64
	QuerySize   int
	Resp        RespCacheStats
}

// WritePrometheus renders the registry in Prometheus text exposition
// format. queueDepth, storeJobs, and breaker are gauges sampled by the
// caller at scrape time; storage is the archivedb engine's counters,
// nil when the store runs without durability (the storage family is
// then omitted entirely); caches is the read-path cache counters, nil
// when both caches are disabled.
func (m *Metrics) WritePrometheus(w io.Writer, queueDepth, storeJobs int, storage *archivedb.Stats, breaker BreakerState, caches *CacheStats) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP granula_http_request_duration_seconds HTTP request latency by route.")
	fmt.Fprintln(w, "# TYPE granula_http_request_duration_seconds histogram")
	routes := make([]string, 0, len(m.requests))
	for r := range m.requests {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, route := range routes {
		h := m.requests[route]
		for i, ub := range latencyBuckets {
			fmt.Fprintf(w, "granula_http_request_duration_seconds_bucket{route=%q,le=%q} %d\n",
				route, formatFloat(ub), h.counts[i])
		}
		fmt.Fprintf(w, "granula_http_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", route, h.count)
		fmt.Fprintf(w, "granula_http_request_duration_seconds_sum{route=%q} %s\n", route, formatFloat(h.sum))
		fmt.Fprintf(w, "granula_http_request_duration_seconds_count{route=%q} %d\n", route, h.count)
	}

	fmt.Fprintln(w, "# HELP granula_executor_jobs_total Jobs by terminal state.")
	fmt.Fprintln(w, "# TYPE granula_executor_jobs_total counter")
	fmt.Fprintf(w, "granula_executor_jobs_total{state=\"started\"} %d\n", m.jobsStart)
	fmt.Fprintf(w, "granula_executor_jobs_total{state=\"done\"} %d\n", m.jobsDone)
	fmt.Fprintf(w, "granula_executor_jobs_total{state=\"failed\"} %d\n", m.jobsFailed)

	fmt.Fprintln(w, "# HELP granula_executor_queue_depth Jobs waiting for a worker.")
	fmt.Fprintln(w, "# TYPE granula_executor_queue_depth gauge")
	fmt.Fprintf(w, "granula_executor_queue_depth %d\n", queueDepth)

	fmt.Fprintln(w, "# HELP granula_store_jobs Archived jobs held in the store.")
	fmt.Fprintln(w, "# TYPE granula_store_jobs gauge")
	fmt.Fprintf(w, "granula_store_jobs %d\n", storeJobs)

	fmt.Fprintln(w, "# HELP granula_breaker_state Archive-persistence circuit breaker (0=closed, 1=half-open, 2=open).")
	fmt.Fprintln(w, "# TYPE granula_breaker_state gauge")
	fmt.Fprintf(w, "granula_breaker_state %d\n", int(breaker))

	fmt.Fprintln(w, "# HELP granula_breaker_transitions_total Circuit-breaker transitions by target state.")
	fmt.Fprintln(w, "# TYPE granula_breaker_transitions_total counter")
	for _, st := range []BreakerState{BreakerClosed, BreakerHalfOpen, BreakerOpen} {
		fmt.Fprintf(w, "granula_breaker_transitions_total{state=%q} %d\n", st.String(), m.transitions[st])
	}

	fmt.Fprintln(w, "# HELP granula_retries_total Archive-persistence retries.")
	fmt.Fprintln(w, "# TYPE granula_retries_total counter")
	fmt.Fprintf(w, "granula_retries_total %d\n", m.retries)

	fmt.Fprintln(w, "# HELP granula_panics_recovered_total Panics caught by worker and handler isolation.")
	fmt.Fprintln(w, "# TYPE granula_panics_recovered_total counter")
	fmt.Fprintf(w, "granula_panics_recovered_total %d\n", m.panics)

	fmt.Fprintln(w, "# HELP granula_shed_total Requests shed by admission control (429) or degraded mode (503).")
	fmt.Fprintln(w, "# TYPE granula_shed_total counter")
	fmt.Fprintf(w, "granula_shed_total %d\n", m.shed)

	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("granula_stream_ingest_batches_total", "Accepted live-stream ingest batches.", m.ingestBatches)
	counter("granula_stream_ingest_events_total", "Events applied through live-stream ingest.", m.ingestEvents)
	counter("granula_stream_ingest_rejected_total", "Rejected live-stream ingest batches.", m.ingestRejected)
	counter("granula_watch_connections_total", "Accepted /watch SSE connections.", m.watchConns)
	counter("granula_query2_queries_total", "Analytical (v2) aggregate queries served.", m.query2Queries)
	counter("granula_query2_segments_scanned_total", "Columnar segments scanned by v2 queries.", m.query2Scanned)
	counter("granula_query2_segments_pruned_total", "Columnar segments skipped by zone-map pruning.", m.query2Pruned)
	if caches != nil {
		counter("granula_querycache_hits_total", "Compiled-query cache hits.", caches.QueryHits)
		counter("granula_querycache_misses_total", "Compiled-query cache misses (full parses).", caches.QueryMisses)
		gauge("granula_querycache_entries", "Compiled queries held in the cache.", int64(caches.QuerySize))
		counter("granula_respcache_hits_total", "HTTP response cache hits.", caches.Resp.Hits)
		counter("granula_respcache_misses_total", "HTTP response cache misses (handler renders).", caches.Resp.Misses)
		counter("granula_respcache_not_modified_total", "Conditional requests answered 304 Not Modified.", caches.Resp.NotModified)
		counter("granula_respcache_evictions_total", "Responses evicted by LRU pressure.", caches.Resp.Evictions)
		gauge("granula_respcache_entries", "Responses held in the cache.", int64(caches.Resp.Size))
	}
	if storage == nil {
		return
	}
	counter("granula_groupcommit_batches_total", "WAL group-commit batches flushed.", storage.GroupCommits)
	counter("granula_groupcommit_records_total", "Records appended through group commit.", storage.GroupCommitRecords)
	counter("granula_groupcommit_fsyncs_total", "Shared fsyncs issued by the committer.", storage.GroupCommitFsyncs)
	gauge("granula_groupcommit_max_batch", "Largest batch flushed in one group commit.", int64(storage.GroupCommitMaxBatch))
	gauge("granula_storage_segments", "WAL segment files on disk.", int64(storage.Segments))
	gauge("granula_storage_live_jobs", "Live records in the storage engine.", int64(storage.LiveJobs))
	gauge("granula_storage_live_bytes", "WAL bytes referenced by live records.", storage.LiveBytes)
	gauge("granula_storage_dead_bytes", "WAL bytes reclaimable by compaction.", storage.DeadBytes)
	gauge("granula_storage_wal_bytes", "Total WAL bytes on disk.", storage.WALBytes)
	counter("granula_storage_compactions_total", "Completed compactions.", storage.Compactions)
	counter("granula_storage_reclaimed_bytes_total", "Bytes reclaimed by compaction.", uint64(storage.ReclaimedBytes))
	counter("granula_storage_snapshots_total", "Index snapshots written.", storage.Snapshots)
	gauge("granula_storage_recovery_replayed_records", "WAL records replayed at the last open.", int64(storage.RecoveredRecords))
	gauge("granula_storage_recovery_snapshot_records", "Index entries restored from the snapshot at the last open.", int64(storage.RecoveredFromSnapshot))
	gauge("granula_storage_recovery_truncated_bytes", "Torn-tail bytes truncated at the last open.", storage.TruncatedBytes)
	counter("granula_storage_colseg_writes_total", "Columnar segments written.", storage.ColSegWrites)
	counter("granula_storage_colseg_deletes_total", "Columnar segments deleted with their job.", storage.ColSegDeletes)
	counter("granula_storage_colseg_full_reads_total", "Columnar segment body reads (scans).", storage.ColSegFullReads)
	counter("granula_storage_colseg_tail_reads_total", "Columnar segment stats-footer reads (prune checks).", storage.ColSegTailReads)
	counter("granula_storage_colseg_sweeps_total", "Orphaned columnar segments removed by compaction sweeps.", storage.ColSegSweeps)
}
