package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/archivedb"
	"repro/internal/shard"
)

// exportedJob archives one real job in a throwaway store and returns
// its exported wire form, the raw material of every replication test.
func exportedJob(t *testing.T) (id string, payload []byte, version uint64) {
	t.Helper()
	out := testOutput(t, "Giraph", "BFS")
	src := NewStore()
	if err := src.Put(out.Job, summarize(JobRequest{Algorithm: "BFS"}, out)); err != nil {
		t.Fatal(err)
	}
	payload, version, ok, err := src.Export(out.Job.ID)
	if err != nil || !ok {
		t.Fatalf("Export: ok=%v err=%v", ok, err)
	}
	return out.Job.ID, payload, version
}

func TestStoreVersionTracksPuts(t *testing.T) {
	out := testOutput(t, "Giraph", "BFS")
	s := NewStore()
	id := out.Job.ID
	if got := s.Version(id); got != 0 {
		t.Fatalf("Version of an unknown job = %d, want 0", got)
	}
	sum := summarize(JobRequest{Algorithm: "BFS"}, out)
	for want := uint64(1); want <= 3; want++ {
		if err := s.Put(out.Job, sum); err != nil {
			t.Fatal(err)
		}
		if got := s.Version(id); got != want {
			t.Fatalf("after %d puts Version = %d", want, got)
		}
	}
	payload, version, ok, err := s.Export(id)
	if err != nil || !ok || version != 3 {
		t.Fatalf("Export: ok=%v version=%d err=%v", ok, version, err)
	}
	var pj persistedJob
	if err := json.Unmarshal(payload, &pj); err != nil {
		t.Fatalf("export payload is not a persisted job: %v", err)
	}
	if pj.Version != 3 || pj.Summary.ID != id {
		t.Fatalf("export payload carries version %d id %q", pj.Version, pj.Summary.ID)
	}
	if _, _, ok, _ := s.Export("nope"); ok {
		t.Fatal("Export(nope) should miss")
	}
}

// TestStoreApplyReplicaIdempotent pins the replication write contract:
// applying a record installs it exactly once, replays and stale
// versions are acked no-ops (so replication retries are safe), and
// newer versions replace older ones.
func TestStoreApplyReplicaIdempotent(t *testing.T) {
	id, payload, version := exportedJob(t)

	dst := NewStore()
	if err := dst.ApplyReplica(id, version, payload); err != nil {
		t.Fatal(err)
	}
	if got := dst.Version(id); got != version {
		t.Fatalf("replica version = %d, want %d", got, version)
	}
	if _, ok := dst.Get(id); !ok {
		t.Fatal("applied replica is not readable")
	}
	gen := dst.Generation()

	// Replaying the same record must ack without republishing: a
	// generation bump here would invalidate response caches on every
	// replication retry.
	if err := dst.ApplyReplica(id, version, payload); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if dst.Generation() != gen {
		t.Fatalf("replay bumped generation %d -> %d", gen, dst.Generation())
	}

	// A stale version is also an acked no-op (the pusher is behind).
	if err := dst.ApplyReplica(id, 0, []byte("garbage — must not even be decoded")); err != nil {
		t.Fatalf("stale version: %v", err)
	}
	if dst.Version(id) != version || dst.Generation() != gen {
		t.Fatal("stale version changed the store")
	}

	// A newer version replaces the record.
	if err := dst.ApplyReplica(id, version+5, payload); err != nil {
		t.Fatal(err)
	}
	if got := dst.Version(id); got != version+5 {
		t.Fatalf("newer version = %d, want %d", got, version+5)
	}
	if dst.Generation() == gen {
		t.Fatal("installing a newer version must bump the generation")
	}

	// Undecodable payloads are rejected, not installed.
	if err := dst.ApplyReplica("other", 1, []byte("{")); err == nil {
		t.Fatal("ApplyReplica accepted a truncated payload")
	}
}

// TestStoreApplyReplicaDurable checks that a replicated record is
// byte-identical on the replica and survives a restart with its
// version, which is what makes read-repair comparisons meaningful.
func TestStoreApplyReplicaDurable(t *testing.T) {
	id, payload, version := exportedJob(t)
	dir := t.TempDir()

	db, err := archivedb.Open(dir, archivedb.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewStoreWithDB(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.ApplyReplica(id, version, payload); err != nil {
		t.Fatal(err)
	}
	got, gotV, ok, err := dst.Export(id)
	if err != nil || !ok {
		t.Fatalf("Export: ok=%v err=%v", ok, err)
	}
	if gotV != version || !bytes.Equal(got, payload) {
		t.Fatal("replica bytes differ from the primary's export")
	}
	dst.Close()
	db.Close()

	db2, err := archivedb.Open(dir, archivedb.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	re, err := NewStoreWithDB(db2)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Version(id); got != version {
		t.Fatalf("restart lost the version: %d, want %d", got, version)
	}
	got2, _, ok, err := re.Export(id)
	if err != nil || !ok || !bytes.Equal(got2, payload) {
		t.Fatalf("restart changed the replica bytes (ok=%v err=%v)", ok, err)
	}
}

// replicateFunc adapts a function to the executor's JobReplicator hook.
type replicateFunc func(ctx context.Context, id string, version uint64, payload []byte) error

func (f replicateFunc) ReplicateJob(ctx context.Context, id string, version uint64, payload []byte) error {
	return f(ctx, id, version, payload)
}

// TestExecutorReplicationGate pins the cluster durability contract at
// the executor: a job only reaches done after the replicator acks, it
// replicates the exact persisted bytes, and a quorum failure fails the
// job — the client must never see done with fewer than W copies.
func TestExecutorReplicationGate(t *testing.T) {
	store := NewStore()
	var gotID string
	var gotVersion uint64
	var gotPayload []byte
	ok := NewExecutorWith(1, 4, store, nil, ExecutorOptions{
		Replicator: replicateFunc(func(_ context.Context, id string, version uint64, payload []byte) error {
			gotID, gotVersion, gotPayload = id, version, payload
			return nil
		}),
	})
	defer ok.Shutdown(context.Background())
	id, err := ok.Submit(smallRequest("Giraph", "BFS"))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, ok, id); st.Status != StatusDone {
		t.Fatalf("job with an acking replicator = %s (%s)", st.Status, st.Error)
	}
	wantPayload, wantVersion, _, err := store.Export(id)
	if err != nil {
		t.Fatal(err)
	}
	if gotID != id || gotVersion != wantVersion || !bytes.Equal(gotPayload, wantPayload) {
		t.Fatalf("replicator saw (%s, v%d, %d bytes), store has (%s, v%d, %d bytes)",
			gotID, gotVersion, len(gotPayload), id, wantVersion, len(wantPayload))
	}

	fail := NewExecutorWith(1, 4, NewStore(), nil, ExecutorOptions{
		Replicator: replicateFunc(func(context.Context, string, uint64, []byte) error {
			return errors.New("2 of 3 replicas unreachable")
		}),
	})
	defer fail.Shutdown(context.Background())
	id2, err := fail.Submit(smallRequest("Giraph", "BFS"))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, fail, id2)
	if st.Status != StatusFailed {
		t.Fatalf("job with a failing replicator = %s, want failed", st.Status)
	}
	if !strings.Contains(st.Error, "replicate") {
		t.Fatalf("failure reason %q does not mention replication", st.Error)
	}
}

// TestServerReplicationEndpoints drives the shard-side HTTP surface:
// POST /internal/replicate installs a record the public API then
// serves (including a synthesized done status for jobs this node never
// executed), GET /internal/export returns the exact record, and
// /cluster reports single-node mode without a map.
func TestServerReplicationEndpoints(t *testing.T) {
	id, payload, version := exportedJob(t)

	store := NewStore()
	exec := NewExecutor(1, 4, store, nil)
	defer exec.Shutdown(context.Background())
	ts := httptest.NewServer(NewServer(exec, store, nil).Handler())
	defer ts.Close()

	rec, err := json.Marshal(shard.ReplicaRecord{ID: id, Version: version, Payload: payload})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+shard.ReplicatePath, "application/json", bytes.NewReader(rec))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replicate: %s: %s", resp.Status, body)
	}

	// The job was never submitted here, yet its status must read done:
	// the store fallback is what lets any replica answer for a job its
	// executor never ran.
	resp, err = http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status of replicated job: %s: %s", resp.Status, body)
	}
	var st JobState
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Status != StatusDone || st.Summary == nil {
		t.Fatalf("replicated job status = %+v, want done with a summary", st)
	}

	resp, err = http.Get(ts.URL + shard.ExportPathPrefix + id)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export: %s: %s", resp.Status, body)
	}
	var got shard.ReplicaRecord
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != id || got.Version != version || !bytes.Equal(got.Payload, payload) {
		t.Fatalf("export returned (%s, v%d, %d bytes), want (%s, v%d, %d bytes)",
			got.ID, got.Version, len(got.Payload), id, version, len(payload))
	}

	resp, err = http.Get(ts.URL + shard.ClusterPath)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var info struct {
		Mode       string `json:"mode"`
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Mode != "single" || info.Generation == 0 {
		t.Fatalf("single-node /cluster = %s", body)
	}

	// Malformed replication pushes are rejected.
	resp, err = http.Post(ts.URL+shard.ReplicatePath, "application/json", strings.NewReader(`{"id":""}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("replicate without id/payload = %s, want 400", resp.Status)
	}
}
