package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/archive"
)

// revJob builds a tiny synthetic job whose content is fully determined
// by rev, so cache tests can tell exactly which version of a job a
// response was rendered from.
func revJob(id string, rev int) *archive.Job {
	return &archive.Job{
		ID:       id,
		Platform: "Giraph",
		Root: &archive.Operation{
			ID: "R", Actor: "Master", Mission: "Run",
			Start: 0, End: float64(rev),
			Infos: map[string]string{"rev": strconv.Itoa(rev)},
		},
	}
}

// cacheTestServer wires a server over a plain in-memory store with the
// given cache options, plus a tiny executor the handlers require.
func cacheTestServer(t *testing.T, store *Store, opts ServerOptions) *httptest.Server {
	t.Helper()
	exec := NewExecutor(1, 1, store, nil)
	srv := NewServerWith(exec, store, nil, opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		exec.Shutdown(context.Background())
	})
	return ts
}

func getWithETag(t *testing.T, url, ifNoneMatch string) (int, string, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("ETag"), body
}

// TestETagRoundTrip pins the conditional-request lifecycle: a 200 with
// a validator, a 304 on revalidation, a fresh 200 with a new validator
// after the underlying job changes, and a 304 again after an unrelated
// write that bumped the generation but not these bytes.
func TestETagRoundTrip(t *testing.T) {
	store := NewStore()
	if err := store.Put(revJob("live", 1), Summary{ID: "live"}); err != nil {
		t.Fatal(err)
	}
	ts := cacheTestServer(t, store, ServerOptions{})
	url := ts.URL + "/jobs/live/query?q=depth+%3D+0"

	code, etag1, body1 := getWithETag(t, url, "")
	if code != http.StatusOK || etag1 == "" {
		t.Fatalf("first GET: code=%d etag=%q", code, etag1)
	}
	if !bytes.Contains(body1, []byte(`"rev": "1"`)) {
		t.Fatalf("first GET body missing rev 1: %s", body1)
	}

	code, etag, body := getWithETag(t, url, etag1)
	if code != http.StatusNotModified || len(body) != 0 || etag != etag1 {
		t.Fatalf("revalidation: code=%d etag=%q body=%q", code, etag, body)
	}

	if err := store.Put(revJob("live", 2), Summary{ID: "live"}); err != nil {
		t.Fatal(err)
	}
	code, etag2, body2 := getWithETag(t, url, etag1)
	if code != http.StatusOK || etag2 == etag1 {
		t.Fatalf("after write: code=%d etag=%q (old %q)", code, etag2, etag1)
	}
	if !bytes.Contains(body2, []byte(`"rev": "2"`)) {
		t.Fatalf("after write body missing rev 2: %s", body2)
	}

	// A write to a different job bumps the generation but not these
	// bytes; the content-hash validator still answers 304.
	if err := store.Put(revJob("other", 9), Summary{ID: "other"}); err != nil {
		t.Fatal(err)
	}
	code, _, _ = getWithETag(t, url, etag2)
	if code != http.StatusNotModified {
		t.Fatalf("revalidation across unrelated write: code=%d, want 304", code)
	}
}

// TestResponseCacheByteEquivalence proves the tentpole's safety claim
// for the read path: with every cache enabled, responses are
// byte-identical (body and Content-Type) to a server with every cache
// disabled, on first hit and on repeat (cached) hits.
func TestResponseCacheByteEquivalence(t *testing.T) {
	store := NewStore()
	out := testOutput(t, "Giraph", "BFS")
	if err := store.Put(out.Job, summarize(JobRequest{Algorithm: "BFS"}, out)); err != nil {
		t.Fatal(err)
	}
	id := out.Job.ID

	cached := cacheTestServer(t, store, ServerOptions{})
	bare := cacheTestServer(t, store, ServerOptions{QueryCacheSize: -1, RespCacheSize: -1})

	paths := []string{
		"/jobs/" + id + "/archive",
		"/jobs/" + id + "/query?q=duration+%3E+0.001+order+by+duration+desc+limit+10",
		"/jobs/" + id + "/query?q=actor+~+%22Worker%22+and+depth+%3E%3D+2",
		"/jobs/" + id + "/query?mission=Superstep",
		"/jobs/" + id + "/viz/tree",
		"/jobs/" + id + "/viz/breakdown",
		"/jobs/" + id + "/viz/gantt",
		"/jobs/" + id + "/query?q=bogus+%3D", // parse error: 400 must match too
		"/jobs/missing/archive",              // 404 must match too
	}
	for _, p := range paths {
		var want []byte
		var wantCode int
		var wantType string
		for round := 0; round < 3; round++ {
			for _, ts := range []*httptest.Server{bare, cached} {
				resp, err := http.Get(ts.URL + p)
				if err != nil {
					t.Fatal(err)
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Fatal(err)
				}
				if want == nil {
					want, wantCode, wantType = body, resp.StatusCode, resp.Header.Get("Content-Type")
					continue
				}
				if resp.StatusCode != wantCode {
					t.Fatalf("%s round %d: code %d, want %d", p, round, resp.StatusCode, wantCode)
				}
				if resp.Header.Get("Content-Type") != wantType {
					t.Fatalf("%s round %d: Content-Type %q, want %q",
						p, round, resp.Header.Get("Content-Type"), wantType)
				}
				if !bytes.Equal(body, want) {
					t.Fatalf("%s round %d: cached body diverges from uncached", p, round)
				}
			}
		}
	}
}

// TestResponseCacheNoStaleReads is the invalidation proof under
// concurrency (run with -race): while a writer republishes a job with
// increasing revisions, every read that starts after revision r acked
// must observe revision >= r, on both the query and archive endpoints.
func TestResponseCacheNoStaleReads(t *testing.T) {
	store := NewStore()
	if err := store.Put(revJob("live", 0), Summary{ID: "live"}); err != nil {
		t.Fatal(err)
	}
	ts := cacheTestServer(t, store, ServerOptions{})

	const revisions = 150
	var acked atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for r := 1; r <= revisions; r++ {
			if err := store.Put(revJob("live", r), Summary{ID: "live"}); err != nil {
				t.Errorf("put rev %d: %v", r, err)
				return
			}
			acked.Store(int64(r))
		}
	}()

	readRev := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Error(err)
			return -1
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: code %d", path, resp.StatusCode)
			return -1
		}
		var doc struct {
			Operations []OperationView `json:"operations"`
			Jobs       []*archive.Job  `json:"jobs"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Error(err)
			return -1
		}
		var rev string
		switch {
		case len(doc.Operations) > 0:
			rev = doc.Operations[0].Infos["rev"]
		case len(doc.Jobs) > 0 && doc.Jobs[0].Root != nil:
			rev = doc.Jobs[0].Root.Infos["rev"]
		default:
			t.Errorf("%s: no operations in response", path)
			return -1
		}
		n, err := strconv.Atoi(rev)
		if err != nil {
			t.Errorf("%s: bad rev %q", path, rev)
			return -1
		}
		return n
	}

	for reader := 0; reader < 4; reader++ {
		wg.Add(1)
		go func(reader int) {
			defer wg.Done()
			paths := []string{"/jobs/live/query?q=depth+%3D+0", "/jobs/live/archive"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				floor := acked.Load()
				got := readRev(paths[i%len(paths)])
				if got >= 0 && int64(got) < floor {
					t.Errorf("reader %d: stale read: rev %d after rev %d acked", reader, got, floor)
					return
				}
			}
		}(reader)
	}
	wg.Wait()

	// The final read must see the last revision.
	if got := readRev("/jobs/live/query?q=depth+%3D+0"); got != revisions {
		t.Fatalf("final read: rev %d, want %d", got, revisions)
	}
}

// TestCacheMetricsExposed checks the /metrics families for both caches
// and the group-commit counters appear once traffic has flowed.
func TestCacheMetricsExposed(t *testing.T) {
	store := NewStore()
	if err := store.Put(revJob("live", 1), Summary{ID: "live"}); err != nil {
		t.Fatal(err)
	}
	ts := cacheTestServer(t, store, ServerOptions{})
	// Two spellings of the same query: distinct response-cache keys
	// (the raw request differs) but one normalized compiled query, so
	// the second spelling exercises a query-cache hit; then a repeat of
	// each spelling exercises response-cache hits without ever reaching
	// the parser again.
	urls := []string{
		ts.URL + "/jobs/live/query?q=depth+%3D+0",
		ts.URL + "/jobs/live/query?q=depth++%3D++0",
	}
	for round := 0; round < 2; round++ {
		for i, url := range urls {
			if code, _, _ := getWithETag(t, url, ""); code != http.StatusOK {
				t.Fatalf("GET %d/%d failed", round, i)
			}
		}
	}
	code, _, body := getWithETag(t, ts.URL+"/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{
		"granula_querycache_hits_total 1",
		"granula_querycache_misses_total 1",
		"granula_respcache_hits_total 2",
		"granula_respcache_misses_total 2",
		"granula_respcache_entries 2",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestResponseCacheLRUEviction fills the cache beyond capacity and
// checks eviction keeps it bounded while still serving correct bytes.
func TestResponseCacheLRUEviction(t *testing.T) {
	store := NewStore()
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("j%d", i)
		if err := store.Put(revJob(id, i), Summary{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	exec := NewExecutor(1, 1, store, nil)
	defer exec.Shutdown(context.Background())
	srv := NewServerWith(exec, store, nil, ServerOptions{RespCacheSize: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for round := 0; round < 2; round++ {
		for i := 0; i < 8; i++ {
			code, _, body := getWithETag(t, fmt.Sprintf("%s/jobs/j%d/archive", ts.URL, i), "")
			if code != http.StatusOK {
				t.Fatalf("j%d: code %d", i, code)
			}
			if !bytes.Contains(body, []byte(fmt.Sprintf(`"rev": "%d"`, i))) {
				t.Fatalf("j%d: wrong body", i)
			}
		}
	}
	st := srv.resp.Stats()
	if st.Size > 4 {
		t.Fatalf("cache size %d above capacity 4", st.Size)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions despite 8 keys in a 4-slot cache")
	}
}
