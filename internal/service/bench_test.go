package service

import (
	"testing"

	"repro/internal/archive"
)

// benchStored builds one moderately deep job and stores it, returning
// both the indexed entry and the raw job for the linear-scan baseline.
func benchStored(b *testing.B) (*StoredJob, *archive.Job, []string) {
	b.Helper()
	out := testOutput(b, "Giraph", "PageRank")
	s := NewStore()
	s.Put(out.Job, summarize(JobRequest{Algorithm: "PageRank"}, out))
	sj, _ := s.Get(out.Job.ID)
	missions := sj.Missions()
	if len(missions) < 5 {
		b.Fatalf("job too shallow for a meaningful benchmark: %v", missions)
	}
	return sj, out.Job, missions
}

// BenchmarkArchiveQueryIndexed measures repeated mission queries
// through the store's secondary index (DESIGN.md ablation item 6).
func BenchmarkArchiveQueryIndexed(b *testing.B) {
	sj, _, missions := benchStored(b)
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		for _, m := range missions {
			total += len(sj.ByMission(m))
		}
	}
	if total == 0 {
		b.Fatal("no operations matched")
	}
}

// BenchmarkArchiveQueryLinear is the baseline: the same queries
// answered by rescanning the operation tree each time (Job.FindAll, as
// the batch CLIs do).
func BenchmarkArchiveQueryLinear(b *testing.B) {
	_, job, missions := benchStored(b)
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		for _, m := range missions {
			total += len(job.FindAll(m))
		}
	}
	if total == 0 {
		b.Fatal("no operations matched")
	}
}

// BenchmarkArchivePathIndexed and ...PathLinear compare the path index
// against Job.Find's level-by-level descent.
func BenchmarkArchivePathIndexed(b *testing.B) {
	sj, _, _ := benchStored(b)
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total += len(sj.ByPath("GiraphJob/ProcessGraph/Superstep"))
	}
	if total == 0 {
		b.Fatal("no operations matched")
	}
}

func BenchmarkArchivePathLinear(b *testing.B) {
	_, job, _ := benchStored(b)
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		total += len(job.Find("GiraphJob", "ProcessGraph", "Superstep"))
	}
	if total == 0 {
		b.Fatal("no operations matched")
	}
}
