package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/archivedb"
	"repro/internal/faults"
)

func newTimeoutCtx(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

// chaosStack is one fully wired service instance under fault injection:
// injector, durable DB, store with a fast breaker, hardened executor,
// and HTTP server.
type chaosStack struct {
	inj     *faults.Injector
	db      *archivedb.DB
	store   *Store
	exec    *Executor
	metrics *Metrics
	ts      *httptest.Server
}

func startChaosStack(t *testing.T, dir string, cfg faults.Config) *chaosStack {
	t.Helper()
	inj := faults.New(cfg)
	db, err := archivedb.Open(dir, archivedb.Options{NoSync: true, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	metrics := NewMetrics()
	store, err := NewStoreWithOptions(db, StoreOptions{
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
		ProbeInterval:    10 * time.Millisecond,
		Metrics:          metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	exec := NewExecutorWith(4, 32, store, metrics, ExecutorOptions{
		Faults: inj,
		Retry:  RetryPolicy{Attempts: 3, Base: time.Millisecond, Max: 10 * time.Millisecond},
	})
	srv := NewServerWith(exec, store, metrics, ServerOptions{Faults: inj})
	s := &chaosStack{inj: inj, db: db, store: store, exec: exec, metrics: metrics,
		ts: httptest.NewServer(srv.Handler())}
	t.Cleanup(func() { s.stop(t) })
	return s
}

func (s *chaosStack) stop(t *testing.T) {
	t.Helper()
	if s.ts == nil {
		return
	}
	ctx, cancel := newTimeoutCtx(60 * time.Second)
	defer cancel()
	s.exec.Shutdown(ctx)
	s.ts.Close()
	s.store.Close()
	s.db.Close()
	s.ts = nil
}

// smallJob is a request sized so a chaos run finishes in seconds.
func smallJob(seed int64) JobRequest {
	return JobRequest{Platform: "Giraph", Algorithm: "BFS", Vertices: 120, Edges: 480, Seed: seed}
}

func postJSON(t *testing.T, url string, v any) (int, []byte, http.Header) {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body, resp.Header
}

func getStatus(t *testing.T, base, id string) JobState {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s: %s: %s", id, resp.Status, body)
	}
	var st JobState
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("GET /jobs/%s: %v: %s", id, err, body)
	}
	return st
}

func waitHTTPTerminal(t *testing.T, base, id string) JobState {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, base, id)
		switch st.Status {
		case StatusDone, StatusFailed, StatusCanceled:
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state", id)
	return JobState{}
}

// TestChaosStormAndRecovery is the headline chaos scenario: concurrent
// clients submit, poll, and query while storage appends and reads fail,
// tear, and lag, and the HTTP submit/query handlers error. The server
// must never crash, every job acked done must have a readable archive
// that also survives a restart, and after the fault source clears the
// breaker must close and new jobs must complete.
func TestChaosStormAndRecovery(t *testing.T) {
	dir := t.TempDir()
	s := startChaosStack(t, dir, faults.Config{
		Seed:    7,
		Latency: 200 * time.Microsecond,
		Kinds:   []faults.Kind{faults.KindError, faults.KindLatency, faults.KindTorn},
		Sites: map[string]float64{
			archivedb.SiteAppend: 0.35,
			archivedb.SiteRead:   0.05,
			SiteSubmit:           0.10,
			SiteQuery:            0.10,
		},
	})

	const clients, jobsPerClient = 3, 4
	var (
		mu  sync.Mutex
		ids []string
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for j := 0; j < jobsPerClient; j++ {
				req := smallJob(int64(c*100 + j))
				var id string
				for attempt := 0; attempt < 200; attempt++ {
					code, body, _ := postJSON(t, s.ts.URL+"/jobs", req)
					if code == http.StatusAccepted {
						var sub submitResponse
						if err := json.Unmarshal(body, &sub); err != nil {
							t.Errorf("bad 202 body: %v: %s", err, body)
							return
						}
						id = sub.ID
						break
					}
					// Injected handler faults (500), shed load (429), and
					// degraded mode (503) are all legitimate under chaos;
					// anything else is a bug.
					if code != http.StatusInternalServerError &&
						code != http.StatusTooManyRequests &&
						code != http.StatusServiceUnavailable {
						t.Errorf("submit: unexpected status %d: %s", code, body)
						return
					}
					time.Sleep(time.Duration(5+rng.Intn(20)) * time.Millisecond)
				}
				if id == "" {
					t.Errorf("client %d: submit never accepted", c)
					return
				}
				mu.Lock()
				ids = append(ids, id)
				mu.Unlock()
				st := waitHTTPTerminal(t, s.ts.URL, id)
				if st.Status == StatusDone {
					// Query the archive while faults are still firing;
					// injected read errors (500) are tolerated.
					resp, err := http.Get(s.ts.URL + "/jobs/" + id + "/query?mission=ProcessGraph")
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusInternalServerError {
						t.Errorf("query: unexpected status %d", resp.StatusCode)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// The fault source clears; the service must recover on its own.
	s.inj.Disarm()
	waitBreakerClosed(t, s.store)

	// A fresh submission must now complete end to end.
	recID := submitUntilAccepted(t, s.ts.URL, smallJob(999))
	if st := waitHTTPTerminal(t, s.ts.URL, recID); st.Status != StatusDone {
		t.Fatalf("post-recovery job is %s (%s), want done", st.Status, st.Error)
	}

	// Every job acked done has a readable archive, now that reads are
	// fault-free.
	var doneIDs []string
	for _, id := range append(ids, recID) {
		st := getStatus(t, s.ts.URL, id)
		if st.Status != StatusDone {
			continue
		}
		doneIDs = append(doneIDs, id)
		resp, err := http.Get(s.ts.URL + "/jobs/" + id + "/archive")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("done job %s has no archive: %s: %s", id, resp.Status, body)
		}
		a, err := archive.Load(bytes.NewReader(body))
		if err != nil || len(a.Jobs) != 1 {
			t.Fatalf("done job %s archive is unreadable: %v", id, err)
		}
	}
	if len(doneIDs) == 0 {
		t.Fatal("chaos storm completed zero jobs; the scenario tested nothing")
	}

	// Retries must have fired (appends failed at 35% with 3 attempts).
	retries, _, _ := s.metrics.Robustness()
	if retries == 0 {
		t.Error("no persistence retries recorded under a 35% append fault rate")
	}

	// No lost acked archive: restart over the same directory (no faults)
	// and require every done job to be restored.
	s.stop(t)
	db2, err := archivedb.Open(dir, archivedb.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	store2, err := NewStoreWithDB(db2)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	for _, id := range doneIDs {
		if _, ok := store2.Get(id); !ok {
			t.Fatalf("acked job %s lost across restart", id)
		}
	}
}

func submitUntilAccepted(t *testing.T, base string, req JobRequest) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, body, _ := postJSON(t, base+"/jobs", req)
		if code == http.StatusAccepted {
			var sub submitResponse
			if err := json.Unmarshal(body, &sub); err != nil {
				t.Fatalf("bad 202 body: %v: %s", err, body)
			}
			return sub.ID
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("submit never accepted")
	return ""
}

func waitBreakerClosed(t *testing.T, store *Store) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if store.BreakerState() == BreakerClosed {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("breaker did not close after faults cleared (state %v)", store.BreakerState())
}

// TestBreakerOpensAndRecoversOverHTTP drives the breaker through its
// full cycle deterministically: storage appends always fail, so one
// job's persist retries trip the breaker; the service reports degraded
// on /healthz and /metrics and sheds submits with 503 + Retry-After;
// after the faults clear, the background probe closes the breaker and
// submissions flow again — all observable through the HTTP API.
func TestBreakerOpensAndRecoversOverHTTP(t *testing.T) {
	s := startChaosStack(t, t.TempDir(), faults.Config{
		Seed:  1,
		Sites: map[string]float64{archivedb.SiteAppend: 1},
	})

	id := submitUntilAccepted(t, s.ts.URL, smallJob(1))
	st := waitHTTPTerminal(t, s.ts.URL, id)
	if st.Status != StatusFailed {
		t.Fatalf("job with unwritable storage is %s, want failed", st.Status)
	}
	if !strings.Contains(st.Error, "persist archive") {
		t.Fatalf("failure reason does not name persistence: %q", st.Error)
	}

	// The failed persist attempts tripped the breaker (threshold 3,
	// retry attempts 3). While the probe keeps failing, submissions are
	// shed with 503; poll because the breaker briefly half-opens around
	// each probe.
	sawShed := false
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		code, body, hdr := postJSON(t, s.ts.URL+"/jobs", smallJob(2))
		if code == http.StatusServiceUnavailable {
			if hdr.Get("Retry-After") == "" {
				t.Fatal("503 without Retry-After")
			}
			if !strings.Contains(string(body), "degraded") {
				t.Fatalf("503 body does not explain degradation: %s", body)
			}
			sawShed = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawShed {
		t.Fatal("degraded store never shed a submit with 503")
	}

	// /healthz reports degraded; /metrics reports a non-closed breaker.
	var health healthResponse
	code, body, _ := getBytes(t, s.ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz: %d", code)
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" || health.Breaker == "closed" {
		t.Fatalf("degraded service reports %+v", health)
	}
	_, metricsText, _ := getBytes(t, s.ts.URL+"/metrics")
	if !bytes.Contains(metricsText, []byte("granula_breaker_state")) {
		t.Fatalf("/metrics missing breaker gauge:\n%s", metricsText)
	}

	// Recovery: faults clear, the probe closes the breaker, a new job
	// runs to completion.
	s.inj.Disarm()
	waitBreakerClosed(t, s.store)
	recID := submitUntilAccepted(t, s.ts.URL, smallJob(3))
	if st := waitHTTPTerminal(t, s.ts.URL, recID); st.Status != StatusDone {
		t.Fatalf("post-recovery job is %s (%s), want done", st.Status, st.Error)
	}

	// The full open → half-open → closed cycle is visible in /metrics.
	_, metricsText, _ = getBytes(t, s.ts.URL+"/metrics")
	for _, state := range []string{"open", "half-open", "closed"} {
		marker := fmt.Sprintf("granula_breaker_transitions_total{state=%q}", state)
		line := metricLine(metricsText, marker)
		if line == "" || strings.HasSuffix(line, " 0") {
			t.Fatalf("breaker never transitioned to %s:\n%s", state, metricsText)
		}
	}
	if line := metricLine(metricsText, "granula_breaker_state"); !strings.HasSuffix(line, " 0") {
		t.Fatalf("recovered breaker gauge not closed: %q", line)
	}
	if line := metricLine(metricsText, "granula_shed_total"); line == "" || strings.HasSuffix(line, " 0") {
		t.Fatalf("shed counter did not move: %q", line)
	}
}

func getBytes(t *testing.T, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body, resp.Header
}

// metricLine returns the first exposition line starting with prefix.
func metricLine(text []byte, prefix string) string {
	for _, line := range strings.Split(string(text), "\n") {
		if strings.HasPrefix(line, prefix) && !strings.HasPrefix(line, "# ") {
			return line
		}
	}
	return ""
}

// TestChaosPanicRecoveredInWorker injects a panic into every run: the
// job must fail with the recovered stack in its state, the process must
// survive, and the same worker must complete the next job.
func TestChaosPanicRecoveredInWorker(t *testing.T) {
	inj := faults.New(faults.Config{
		Seed:  3,
		Kinds: []faults.Kind{faults.KindPanic},
		Sites: map[string]float64{SiteRun: 1},
	})
	metrics := NewMetrics()
	exec := NewExecutorWith(1, 4, NewStore(), metrics, ExecutorOptions{Faults: inj})
	defer func() {
		ctx, cancel := newTimeoutCtx(30 * time.Second)
		defer cancel()
		exec.Shutdown(ctx)
	}()

	id, err := exec.Submit(smallJob(1))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, exec, id)
	if st.Status != StatusFailed {
		t.Fatalf("panicking job is %s, want failed", st.Status)
	}
	if !strings.Contains(st.Error, "panicked") || !strings.Contains(st.Error, SiteRun) {
		t.Fatalf("failure reason does not describe the panic: %q", st.Error)
	}
	if !strings.Contains(st.Stack, "runIsolated") {
		t.Fatalf("job state has no usable stack:\n%s", st.Stack)
	}
	if _, panics, _ := metrics.Robustness(); panics == 0 {
		t.Fatal("recovered panic not counted")
	}

	// The worker survived the panic: it must run the next job.
	inj.Disarm()
	id2, err := exec.Submit(smallJob(2))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, exec, id2); st.Status != StatusDone {
		t.Fatalf("job after panic is %s (%s), want done", st.Status, st.Error)
	}
}

// TestChaosHandlerPanicIsolated injects a panic into the submit
// handler: the client gets a 500, the server keeps serving.
func TestChaosHandlerPanicIsolated(t *testing.T) {
	inj := faults.New(faults.Config{
		Seed:  5,
		Kinds: []faults.Kind{faults.KindPanic},
		Sites: map[string]float64{SiteSubmit: 1},
	})
	metrics := NewMetrics()
	store := NewStore()
	exec := NewExecutorWith(1, 4, store, metrics, ExecutorOptions{Faults: inj})
	defer func() {
		ctx, cancel := newTimeoutCtx(30 * time.Second)
		defer cancel()
		exec.Shutdown(ctx)
	}()
	ts := httptest.NewServer(NewServerWith(exec, store, metrics, ServerOptions{Faults: inj}).Handler())
	defer ts.Close()

	code, body, _ := postJSON(t, ts.URL+"/jobs", smallJob(1))
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking handler answered %d: %s", code, body)
	}
	if code, _, _ := getBytes(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("server dead after handler panic: %d", code)
	}
	if _, panics, _ := metrics.Robustness(); panics == 0 {
		t.Fatal("recovered handler panic not counted")
	}
}

// TestChaosDeadlineFreesHungWorker injects a hang into every run; a job
// with a small deadline must fail with a timeout reason and release its
// worker for the next job.
func TestChaosDeadlineFreesHungWorker(t *testing.T) {
	inj := faults.New(faults.Config{
		Seed:  9,
		Kinds: []faults.Kind{faults.KindHang},
		Sites: map[string]float64{SiteRun: 1},
	})
	exec := NewExecutorWith(1, 4, NewStore(), nil, ExecutorOptions{Faults: inj})
	defer func() {
		ctx, cancel := newTimeoutCtx(30 * time.Second)
		defer cancel()
		exec.Shutdown(ctx)
	}()

	req := smallJob(1)
	req.TimeoutSeconds = 0.05
	id, err := exec.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, exec, id)
	if st.Status != StatusFailed {
		t.Fatalf("hung job is %s, want failed", st.Status)
	}
	if !strings.Contains(st.Error, "timeout") || !strings.Contains(st.Error, "0.05s deadline") {
		t.Fatalf("failure reason is not a timeout: %q", st.Error)
	}

	// The single worker is free again: a fault-free job completes.
	inj.Disarm()
	id2, err := exec.Submit(smallJob(2))
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, exec, id2); st.Status != StatusDone {
		t.Fatalf("job after hung job is %s (%s), want done", st.Status, st.Error)
	}
}

// TestChaosDefaultTimeoutApplied: the executor's DefaultTimeout bounds
// jobs that carry no deadline of their own.
func TestChaosDefaultTimeoutApplied(t *testing.T) {
	inj := faults.New(faults.Config{
		Seed:  2,
		Kinds: []faults.Kind{faults.KindHang},
		Sites: map[string]float64{SiteRun: 1},
	})
	exec := NewExecutorWith(1, 4, NewStore(), nil, ExecutorOptions{
		Faults:         inj,
		DefaultTimeout: 50 * time.Millisecond,
	})
	defer func() {
		ctx, cancel := newTimeoutCtx(30 * time.Second)
		defer cancel()
		exec.Shutdown(ctx)
	}()
	id, err := exec.Submit(smallJob(1))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, exec, id)
	if st.Status != StatusFailed || !strings.Contains(st.Error, "timeout") {
		t.Fatalf("default deadline not applied: %s %q", st.Status, st.Error)
	}
}

// TestChaosCancelFreesQueueSlotUnderLoad is the admission-control
// regression test: with the single worker wedged, canceling a queued
// job must free its queue slot for a new submission immediately.
func TestChaosCancelFreesQueueSlotUnderLoad(t *testing.T) {
	inj := faults.New(faults.Config{
		Seed:  4,
		Kinds: []faults.Kind{faults.KindHang},
		Sites: map[string]float64{SiteRun: 1},
	})
	metrics := NewMetrics()
	store := NewStore()
	exec := NewExecutorWith(1, 2, store, metrics, ExecutorOptions{Faults: inj})
	ts := httptest.NewServer(NewServerWith(exec, store, metrics, ServerOptions{}).Handler())
	defer ts.Close()

	// First job occupies the worker (hangs until shutdown); wait for it
	// to leave the queue so the capacity math below is exact.
	runningID := submitUntilAccepted(t, ts.URL, smallJob(1))
	deadline := time.Now().Add(10 * time.Second)
	for getStatus(t, ts.URL, runningID).Status != StatusRunning {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Fill the queue (capacity 2), then overflow: 429 + Retry-After.
	q1 := submitUntilAccepted(t, ts.URL, smallJob(2))
	_ = submitUntilAccepted(t, ts.URL, smallJob(3))
	code, body, hdr := postJSON(t, ts.URL+"/jobs", smallJob(4))
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow submit answered %d: %s", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if _, _, shed := metrics.Robustness(); shed == 0 {
		t.Fatal("shed submit not counted")
	}

	// Cancel a queued job over HTTP; its slot must be free immediately —
	// the wedged worker can never reach it to skip it.
	reqDel, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+q1, nil)
	resp, err := http.DefaultClient.Do(reqDel)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel answered %d", resp.StatusCode)
	}
	code, body, _ = postJSON(t, ts.URL+"/jobs", smallJob(5))
	if code != http.StatusAccepted {
		t.Fatalf("submit after cancel answered %d (slot not freed): %s", code, body)
	}

	// Shutdown with a short drain: the hung job is aborted, nothing is
	// left queued or running.
	ctx, cancel := newTimeoutCtx(200 * time.Millisecond)
	defer cancel()
	exec.Shutdown(ctx)
	for _, st := range exec.States() {
		if st.Status == StatusQueued || st.Status == StatusRunning {
			t.Fatalf("job %s left %s after Shutdown", st.ID, st.Status)
		}
	}
}

// TestChaosShutdownDrainsUnderFaults: with storage appends failing half
// the time, Shutdown must still drain every job to a terminal state.
func TestChaosShutdownDrainsUnderFaults(t *testing.T) {
	dir := t.TempDir()
	inj := faults.New(faults.Config{
		Seed:  11,
		Kinds: []faults.Kind{faults.KindError, faults.KindTorn},
		Sites: map[string]float64{archivedb.SiteAppend: 0.5},
	})
	db, err := archivedb.Open(dir, archivedb.Options{NoSync: true, Injector: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	store, err := NewStoreWithOptions(db, StoreOptions{
		BreakerThreshold: 100, // keep the breaker out of this scenario
		ProbeInterval:    10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	exec := NewExecutorWith(2, 8, store, nil, ExecutorOptions{
		Faults: inj,
		Retry:  RetryPolicy{Attempts: 2, Base: time.Millisecond, Max: 5 * time.Millisecond},
	})
	var ids []string
	for i := 0; i < 6; i++ {
		id, err := exec.Submit(smallJob(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	ctx, cancel := newTimeoutCtx(60 * time.Second)
	defer cancel()
	if err := exec.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	done := 0
	for _, id := range ids {
		st, _ := exec.State(id)
		switch st.Status {
		case StatusDone:
			done++
		case StatusFailed:
			// acceptable: persistence lost the retry lottery
		default:
			t.Fatalf("job %s left %s after a clean drain", id, st.Status)
		}
	}
	if done == 0 {
		t.Fatal("no job survived a 50% append fault rate with retries; retry path is broken")
	}
}

// TestSubmitBodyTooLarge: oversized POST bodies are rejected with 413
// before they are buffered.
func TestSubmitBodyTooLarge(t *testing.T) {
	metrics := NewMetrics()
	store := NewStore()
	exec := NewExecutor(1, 4, store, metrics)
	defer func() {
		ctx, cancel := newTimeoutCtx(30 * time.Second)
		defer cancel()
		exec.Shutdown(ctx)
	}()
	ts := httptest.NewServer(NewServer(exec, store, metrics).Handler())
	defer ts.Close()

	huge := append([]byte(`{"platform":"`), bytes.Repeat([]byte("x"), maxSubmitBytes+1)...)
	huge = append(huge, []byte(`"}`)...)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit answered %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "exceeds") {
		t.Fatalf("413 body does not explain the limit: %s", body)
	}

	// /diff shares the cap.
	resp, err = http.Post(ts.URL+"/diff", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized diff answered %d", resp.StatusCode)
	}
}
