package service

import (
	"crypto/sha256"
	"encoding/hex"
	"net/http"
	"sync"
)

// RespCache is a bounded LRU of rendered HTTP responses for the
// read-only archive endpoints (/archive, /query, /viz). Entries are
// keyed on (store generation, request), where the generation is read
// before the handler touches any data: every acked write bumps the
// generation inside the store's publish critical section, so a response
// rendered concurrently with a write can only ever be filed under the
// old generation — which no reader that observed the write's ack will
// present. Invalidation is therefore O(1) (stale entries age out of the
// LRU) and a hit returns bytes identical to what the handler would
// render.
//
// Every 200 response carries a strong content-hash ETag. Because the
// tag hashes the body rather than the generation, a client revalidating
// with If-None-Match still gets 304 across writes that did not change
// the bytes it holds.
type RespCache struct {
	mu      sync.Mutex
	cap     int
	entries map[respKey]*respEntry
	// Intrusive LRU list: head is most recent, tail is next to evict.
	head, tail *respEntry

	hits        uint64
	misses      uint64
	notModified uint64
	evictions   uint64
}

type respKey struct {
	gen uint64
	req string // METHOD path?rawquery
}

type respEntry struct {
	key         respKey
	contentType string
	etag        string
	body        []byte
	prev, next  *respEntry
}

// NewRespCache returns a response cache holding at most capacity
// responses; capacity < 1 selects 512.
func NewRespCache(capacity int) *RespCache {
	if capacity < 1 {
		capacity = 512
	}
	return &RespCache{cap: capacity, entries: make(map[respKey]*respEntry)}
}

// RespCacheStats is a point-in-time snapshot of the cache counters.
type RespCacheStats struct {
	Hits        uint64
	Misses      uint64
	NotModified uint64
	Evictions   uint64
	Size        int
}

// Stats returns the lifetime counters and current size.
func (c *RespCache) Stats() RespCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return RespCacheStats{
		Hits: c.hits, Misses: c.misses, NotModified: c.notModified,
		Evictions: c.evictions, Size: len(c.entries),
	}
}

func (c *RespCache) get(gen uint64, req string) *respEntry {
	k := respKey{gen: gen, req: req}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.moveToFront(e)
	return e
}

func (c *RespCache) put(gen uint64, req, contentType, etag string, body []byte) {
	k := respKey{gen: gen, req: req}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		// A concurrent miss on the same key rendered the same bytes
		// (same generation, deterministic handlers); keep the first.
		c.moveToFront(e)
		return
	}
	e := &respEntry{key: k, contentType: contentType, etag: etag, body: body}
	c.entries[k] = e
	c.pushFront(e)
	if len(c.entries) > c.cap {
		c.evictTail()
	}
}

func (c *RespCache) countNotModified() {
	c.mu.Lock()
	c.notModified++
	c.mu.Unlock()
}

func (c *RespCache) pushFront(e *respEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *RespCache) moveToFront(e *respEntry) {
	if c.head == e {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if c.tail == e {
		c.tail = e.prev
	}
	c.pushFront(e)
}

func (c *RespCache) evictTail() {
	e := c.tail
	if e == nil {
		return
	}
	if e.prev != nil {
		e.prev.next = nil
	}
	c.tail = e.prev
	if c.head == e {
		c.head = nil
	}
	delete(c.entries, e.key)
	c.evictions++
}

// etagFor is the strong content-hash validator: quoted first 16 bytes
// of the body's SHA-256 in hex.
func etagFor(body []byte) string {
	sum := sha256.Sum256(body)
	return `"` + hex.EncodeToString(sum[:16]) + `"`
}

// bodyRecorder captures a handler's response so the cache middleware
// can hash, store, and replay it. Only the status and body are kept;
// Content-Type is read back from the shared header map.
type bodyRecorder struct {
	header http.Header
	status int
	body   []byte
}

func newBodyRecorder() *bodyRecorder {
	return &bodyRecorder{header: http.Header{}, status: http.StatusOK}
}

func (r *bodyRecorder) Header() http.Header { return r.header }

func (r *bodyRecorder) WriteHeader(code int) {
	if r.status == http.StatusOK {
		r.status = code
	}
}

func (r *bodyRecorder) Write(p []byte) (int, error) {
	r.body = append(r.body, p...)
	return len(p), nil
}

// cached wraps a read-only GET handler with the response cache. The
// store generation is read before the handler (or the cache) is
// consulted — see the RespCache doc comment for why that ordering makes
// a write invalidate every stale body. When the cache is disabled the
// handler runs bare, byte-identical by construction (this is what the
// equivalence tests pin).
func (s *Server) cached(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.resp == nil {
			h(w, r)
			return
		}
		gen := s.store.Generation()
		req := r.Method + " " + r.URL.Path + "?" + r.URL.RawQuery

		serve := func(contentType, etag string, body []byte) {
			if etag == r.Header.Get("If-None-Match") && etag != "" {
				// The client already holds these exact bytes; the tag is
				// a content hash, so this holds across generations too.
				s.resp.countNotModified()
				w.Header().Set("ETag", etag)
				w.WriteHeader(http.StatusNotModified)
				return
			}
			if contentType != "" {
				w.Header().Set("Content-Type", contentType)
			}
			w.Header().Set("ETag", etag)
			w.Write(body)
		}

		if e := s.resp.get(gen, req); e != nil {
			serve(e.contentType, e.etag, e.body)
			return
		}
		rec := newBodyRecorder()
		h(rec, r)
		if rec.header.Get(liveHeader) != "" {
			// The body was computed from a still-streaming job: its bytes
			// move without the store generation moving, so caching or
			// tagging it would pin stale data. Replay verbatim; once the
			// job seals and publishes, responses drop the marker and cache
			// normally under the bumped generation.
			for k, vs := range rec.header {
				if k == liveHeader {
					continue
				}
				w.Header()[k] = vs
			}
			w.WriteHeader(rec.status)
			w.Write(rec.body)
			return
		}
		if rec.status != http.StatusOK {
			// Errors are cheap to recompute and must not occupy slots;
			// replay them verbatim without a validator.
			for k, vs := range rec.header {
				w.Header()[k] = vs
			}
			w.WriteHeader(rec.status)
			w.Write(rec.body)
			return
		}
		contentType := rec.header.Get("Content-Type")
		etag := etagFor(rec.body)
		s.resp.put(gen, req, contentType, etag, rec.body)
		if etag == r.Header.Get("If-None-Match") {
			s.resp.countNotModified()
			w.Header().Set("ETag", etag)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		// The execution path replays every header the handler set —
		// auxiliary headers like X-Granula-Scanned describe this one
		// run. Cache hits go through serve and replay only
		// Content-Type and ETag: a hit executed nothing, so execution
		// detail would be a lie there.
		for k, vs := range rec.header {
			w.Header()[k] = vs
		}
		w.Header().Set("ETag", etag)
		w.Write(rec.body)
	}
}
