package service

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"
)

// FuzzJobRequest fuzzes the submit pipeline's pure half: JSON decode →
// validate → applyDefaults must never panic, must reject NaN/Inf and
// negative timeouts and negative sizes, and must leave any accepted
// request in a state the executor can run (positive sizes, a known
// graph kind, a deadline that converts to a non-negative Duration).
func FuzzJobRequest(f *testing.F) {
	seeds := []string{
		`{"platform":"Giraph","algorithm":"BFS"}`,
		`{"platform":"PowerGraph","algorithm":"PageRank","vertices":100,"edges":400,"timeoutSeconds":1.5}`,
		`{"platform":"OpenG","algorithm":"WCC","graphKind":"rmat","seed":-3,"iterations":7,"nodes":4}`,
		`{"platform":"Giraph","algorithm":"BFS","timeoutSeconds":-1}`,
		`{"platform":"Giraph","algorithm":"BFS","vertices":-5}`,
		`{"platform":"Giraph","algorithm":"BFS","timeoutSeconds":1e308}`,
		`{"platform":"Giraph","algorithm":"BFS","graphKind":"mesh"}`,
		`{"platform":"","algorithm":""}`,
		`{"id":"job-0001"}`,
		`{`,
		`[]`,
		`null`,
		`{"platform":"Giraph","algorithm":"BFS","vertices":9223372036854775807}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var req JobRequest
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return // malformed JSON is the decoder's problem, not ours
		}
		if err := req.validate(); err != nil {
			return // rejected; nothing further may run
		}
		// Accepted requests must satisfy the executor's invariants.
		if req.Platform == "" || req.Algorithm == "" {
			t.Fatalf("validate accepted an unnamed job: %+v", req)
		}
		if req.Vertices < 0 || req.Edges < 0 || req.Nodes < 0 || req.Iterations < 0 {
			t.Fatalf("validate accepted negative sizes: %+v", req)
		}
		if math.IsNaN(req.TimeoutSeconds) || math.IsInf(req.TimeoutSeconds, 0) || req.TimeoutSeconds < 0 {
			t.Fatalf("validate accepted a bad timeout: %v", req.TimeoutSeconds)
		}
		if d := time.Duration(req.TimeoutSeconds * float64(time.Second)); d < 0 {
			t.Fatalf("accepted timeout %v overflows time.Duration (%v)", req.TimeoutSeconds, d)
		}
		req.applyDefaults()
		if req.Vertices <= 0 || req.Edges <= 0 || req.Iterations <= 0 || req.Seed == 0 {
			t.Fatalf("applyDefaults left a zero field: %+v", req)
		}
		switch req.GraphKind {
		case "social", "rmat", "uniform":
		default:
			t.Fatalf("applyDefaults left unknown graph kind %q", req.GraphKind)
		}
	})
}
