package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/archivedb"
	"repro/internal/shard"
	"repro/internal/stream"
)

// hintStore opens a durable store over dir, failing the test on error.
func hintStore(t *testing.T, dir string) (*Store, *archivedb.DB) {
	t.Helper()
	db, err := archivedb.Open(dir, archivedb.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewStoreWithDB(db)
	if err != nil {
		t.Fatal(err)
	}
	return store, db
}

func hint(target, id string, version uint64) shard.HintRecord {
	return shard.HintRecord{
		Target: target, ID: id, Version: version,
		Payload: json.RawMessage(`{"v":` + strconv.FormatUint(version, 10) + `}`),
	}
}

// TestHintJournalSurvivesRestart is the property the sloppy quorum
// rests on: a hint acked into the journal is still there after a
// crash-restart, so the write it vouches for is eventually delivered.
func TestHintJournalSurvivesRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")

	store, db := hintStore(t, dir)
	for _, h := range []shard.HintRecord{
		hint("s2", "job-a", 3),
		hint("s2", "job-b", 1),
		hint("s3", "job-a", 3),
	} {
		if err := store.AppendHint(h); err != nil {
			t.Fatalf("AppendHint(%s/%s): %v", h.Target, h.ID, err)
		}
	}
	// Delivered before the crash: must NOT come back.
	if err := store.DeleteHint("s2", "job-b", 1); err != nil {
		t.Fatalf("DeleteHint: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	store, db = hintStore(t, dir)
	defer db.Close()
	if got := store.HintCount(); got != 2 {
		t.Fatalf("recovered HintCount = %d, want 2", got)
	}
	targets := store.HintTargets()
	if len(targets) != 2 || targets[0] != "s2" || targets[1] != "s3" {
		t.Fatalf("recovered targets = %v, want [s2 s3]", targets)
	}
	pend, err := store.PendingHints("s2")
	if err != nil {
		t.Fatal(err)
	}
	if len(pend) != 1 || pend[0].ID != "job-a" || pend[0].Version != 3 {
		t.Fatalf("recovered s2 hints = %+v", pend)
	}
}

// TestHintJournalVersionOrdering pins the supersede rules: a newer
// version replaces, an older one is dropped, and a delete for an
// already-superseded delivery keeps the newer journaled hint.
func TestHintJournalVersionOrdering(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	store, db := hintStore(t, dir)

	if err := store.AppendHint(hint("s2", "job-a", 5)); err != nil {
		t.Fatal(err)
	}
	// Stale append is a no-op.
	if err := store.AppendHint(hint("s2", "job-a", 2)); err != nil {
		t.Fatal(err)
	}
	pend, _ := store.PendingHints("s2")
	if len(pend) != 1 || pend[0].Version != 5 {
		t.Fatalf("after stale append: %+v, want single v5", pend)
	}
	// A delete acknowledging an older delivery keeps the newer hint.
	if err := store.DeleteHint("s2", "job-a", 2); err != nil {
		t.Fatal(err)
	}
	if store.HintCount() != 1 {
		t.Fatal("delete of an older delivery dropped a newer hint")
	}
	// ...including across a restart: the journaled record must still
	// be the v5 one, not a deleted key.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	store, db = hintStore(t, dir)
	defer db.Close()
	pend, _ = store.PendingHints("s2")
	if len(pend) != 1 || pend[0].Version != 5 {
		t.Fatalf("after restart: %+v, want single v5", pend)
	}
	// Delete at the journaled version clears it for good.
	if err := store.DeleteHint("s2", "job-a", 5); err != nil {
		t.Fatal(err)
	}
	if store.HintCount() != 0 {
		t.Fatalf("HintCount = %d after final delete", store.HintCount())
	}
}

// TestInternalHealthAndDigestEndpoints exercises the probe target and
// the anti-entropy exchange over real HTTP: health reports the shard's
// publish generation, and the digest decodes into the store's sorted
// (id, version) set.
func TestInternalHealthAndDigestEndpoints(t *testing.T) {
	store := NewStore()
	metrics := NewMetrics()
	exec := NewExecutor(2, 8, store, metrics)
	t.Cleanup(func() { exec.Shutdown(context.Background()) })
	srv := NewServerWith(exec, store, metrics, ServerOptions{ShardID: "s1"})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	idA := submitAndWait(t, ts.URL, JobRequest{Platform: "Giraph", Algorithm: "BFS"})
	idB := submitAndWait(t, ts.URL, JobRequest{Platform: "PowerGraph", Algorithm: "PageRank"})

	code, body := httpGet(t, ts.URL+shard.HealthPath)
	if code != http.StatusOK {
		t.Fatalf("health: %d: %s", code, body)
	}
	var h struct {
		ShardID    string `json:"shardId"`
		Status     string `json:"status"`
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("health body %s: %v", body, err)
	}
	if h.ShardID != "s1" || h.Status != "ok" || h.Generation < 2 {
		t.Fatalf("health = %+v", h)
	}

	code, body = httpGet(t, ts.URL+shard.DigestPath)
	if code != http.StatusOK {
		t.Fatalf("digest: %d: %s", code, body)
	}
	entries, err := shard.DecodeDigest(body)
	if err != nil {
		t.Fatalf("digest does not decode: %v: %s", err, body)
	}
	if len(entries) != 2 {
		t.Fatalf("digest entries = %+v, want 2", entries)
	}
	want := map[string]bool{idA: false, idB: false}
	for _, e := range entries {
		if _, ok := want[e.ID]; !ok || e.Version == 0 {
			t.Fatalf("unexpected digest entry %+v", e)
		}
		want[e.ID] = true
	}
	for id, seen := range want {
		if !seen {
			t.Fatalf("digest is missing %s: %+v", id, entries)
		}
	}
}

func pollWatch(t *testing.T, base, id, query, lastEventID string) (int, pollResponse, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/watch/"+id+"?poll=1"+query, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr pollResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatalf("bad poll body: %v", err)
		}
	}
	return resp.StatusCode, pr, resp.Header
}

// TestWatchLongPoll drives the long-poll fallback through a stream's
// life: immediate batches past a cursor, a parked poll released by new
// events, and the terminal sealed batch once the job archives.
func TestWatchLongPoll(t *testing.T) {
	ts, _ := streamStack(t, ServerOptions{})
	events := streamEventsFixture()
	if code, _, _, _ := postIngest(t, ts.URL, "jp1", events[:5]); code != http.StatusOK {
		t.Fatalf("ingest: %d", code)
	}

	// wait=0 answers immediately with everything past the cursor.
	code, pr, hdr := pollWatch(t, ts.URL, "jp1", "&wait=0", "")
	if code != http.StatusOK || hdr.Get(liveHeader) != "1" {
		t.Fatalf("first poll: %d live=%q", code, hdr.Get(liveHeader))
	}
	if pr.Count != 5 || pr.LastSeq != 5 || pr.Sealed || pr.State != "streaming" {
		t.Fatalf("first poll: %+v", pr)
	}

	// Cursor via ?from= — nothing new yet, empty batch, cursor holds.
	if _, pr, _ = pollWatch(t, ts.URL, "jp1", "&from=5&wait=0", ""); pr.Count != 0 || pr.LastSeq != 5 {
		t.Fatalf("caught-up poll: %+v", pr)
	}
	// Last-Event-ID is the same cursor, SSE-style.
	if _, pr, _ = pollWatch(t, ts.URL, "jp1", "&from=2&wait=0", "5"); pr.Count != 0 || pr.LastSeq != 5 {
		t.Fatalf("Last-Event-ID poll: %+v", pr)
	}

	// A parked poll is released by the next ingest batch, not its
	// timeout.
	type pollOut struct {
		pr      pollResponse
		elapsed time.Duration
	}
	done := make(chan pollOut, 1)
	go func() {
		start := time.Now()
		_, pr, _ := pollWatch(t, ts.URL, "jp1", "&from=5&wait=30s", "")
		done <- pollOut{pr, time.Since(start)}
	}()
	time.Sleep(50 * time.Millisecond)
	if code, _, _, _ := postIngest(t, ts.URL, "jp1", events[5:8]); code != http.StatusOK {
		t.Fatalf("release ingest: %d", code)
	}
	select {
	case out := <-done:
		if out.pr.Count != 3 || out.pr.LastSeq != 8 || out.pr.Sealed {
			t.Fatalf("released poll: %+v", out.pr)
		}
		if out.elapsed > 10*time.Second {
			t.Fatalf("parked poll waited %v; the wakeup did not fire", out.elapsed)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("parked poll never returned")
	}

	// Seal the stream; the job archives, and the poll loop gets a
	// terminal answer no matter how stale its cursor is.
	if code, _, _, _ := postIngest(t, ts.URL, "jp1", events); code != http.StatusOK {
		t.Fatalf("seal ingest: %d", code)
	}
	code, pr, _ = pollWatch(t, ts.URL, "jp1", "&from=8&wait=0", "")
	if code != http.StatusOK {
		t.Fatalf("terminal poll: %d", code)
	}
	if !pr.Sealed || pr.State != "archived" || pr.Count != 1 {
		t.Fatalf("terminal poll: %+v", pr)
	}
	if len(pr.Events) != 1 || pr.Events[0].Type != stream.TypeSeal || pr.Events[0].State != stream.StateDone {
		t.Fatalf("terminal events: %+v", pr.Events)
	}
}

// TestWatchLongPollErrors pins the rejection surface: bad cursors and
// waits are 400s, unknown jobs 404, and executor (non-streaming) jobs
// 409 so the client knows to use /jobs instead.
func TestWatchLongPollErrors(t *testing.T) {
	ts, _ := streamStack(t, ServerOptions{})

	for _, q := range []string{"&from=zzz", "&wait=badly", "&wait=-5s"} {
		if code, _, _ := pollWatch(t, ts.URL, "whatever", q, ""); code != http.StatusBadRequest {
			t.Fatalf("poll %q: %d, want 400", q, code)
		}
	}
	if code, _, _ := pollWatch(t, ts.URL, "nope", "&wait=0", "also-bad"); code != http.StatusBadRequest {
		t.Fatal("bad Last-Event-ID was not a 400")
	}
	if code, _, _ := pollWatch(t, ts.URL, "ghost", "&wait=0", ""); code != http.StatusNotFound {
		t.Fatal("unknown job was not a 404")
	}

	// An executor job that never streamed (here: one that failed on an
	// unknown platform, so it cannot archive) is a 409, pointing the
	// client at /jobs instead of the watch API.
	code, payload := httpPost(t, ts.URL+"/jobs", JobRequest{Platform: "NoSuch", Algorithm: "BFS"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", code, payload)
	}
	var sub submitResponse
	if err := json.Unmarshal(payload, &sub); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job never failed")
		}
		_, body := httpGet(t, ts.URL+"/jobs/"+sub.ID)
		var st JobState
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.Status == StatusFailed {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if code, _, _ := pollWatch(t, ts.URL, sub.ID, "&wait=0", ""); code != http.StatusConflict {
		t.Fatalf("executor job poll: %d, want 409", code)
	}
}

// TestRetryAfterJitter pins the backoff contract: every Retry-After
// the server emits is 1-3 seconds, and the value actually varies —
// a fixed constant would re-synchronize every backed-off client into
// the next thundering herd.
func TestRetryAfterJitter(t *testing.T) {
	store := NewStore()
	exec := NewExecutor(1, 4, store, nil)
	t.Cleanup(func() { exec.Shutdown(context.Background()) })
	srv := NewServer(exec, store, nil)

	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		rec := httptest.NewRecorder()
		srv.setRetryAfter(rec)
		secs, err := strconv.Atoi(rec.Header().Get("Retry-After"))
		if err != nil {
			t.Fatalf("Retry-After %q: %v", rec.Header().Get("Retry-After"), err)
		}
		if secs < 1 || secs > 3 {
			t.Fatalf("Retry-After = %d, want within [1,3]", secs)
		}
		seen[secs] = true
	}
	if len(seen) < 2 {
		t.Fatalf("200 draws produced a single value %v; jitter is not jittering", seen)
	}
}
