package service

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/archive"
	"repro/internal/datagen"
	"repro/internal/platforms"
)

// testOutput runs one small real job through the pipeline so store and
// index tests exercise genuine operation trees.
func testOutput(t testing.TB, platform, algorithm string) *platforms.Output {
	t.Helper()
	ds, err := datagen.Generate(datagen.Config{
		Kind: datagen.SocialNetwork, Vertices: 1500, Edges: 8000, Seed: 21, Directed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := platforms.Run(platforms.Spec{
		Platform:  platform,
		Algorithm: algorithm,
		Source:    datagen.PeripheralSource(ds.Graph),
		Dataset:   ds,
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestStorePutGet(t *testing.T) {
	out := testOutput(t, "Giraph", "BFS")
	s := NewStore()
	if s.Len() != 0 {
		t.Fatalf("new store has %d jobs", s.Len())
	}
	sum := summarize(JobRequest{Algorithm: "BFS"}, out)
	s.Put(out.Job, sum)
	if s.Len() != 1 {
		t.Fatalf("store has %d jobs, want 1", s.Len())
	}
	sj, ok := s.Get(out.Job.ID)
	if !ok {
		t.Fatalf("Get(%q) missing", out.Job.ID)
	}
	if sj.Summary.Platform != "Giraph" || sj.Summary.Operations == 0 {
		t.Fatalf("bad summary: %+v", sj.Summary)
	}
	if _, ok := s.Get("nope"); ok {
		t.Fatal("Get(nope) should miss")
	}
}

func TestStoreIndexesMatchLinearScan(t *testing.T) {
	out := testOutput(t, "Giraph", "BFS")
	s := NewStore()
	s.Put(out.Job, summarize(JobRequest{Algorithm: "BFS"}, out))
	sj, _ := s.Get(out.Job.ID)

	for _, mission := range sj.Missions() {
		want := out.Job.FindAll(mission)
		got := sj.ByMission(mission)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("ByMission(%q): indexed %d ops, linear %d", mission, len(got), len(want))
		}
	}

	// Every indexed actor entry matches a full-tree filter.
	for _, actor := range sj.Actors() {
		var want []*archive.Operation
		out.Job.Root.Walk(func(op *archive.Operation) {
			if op.Actor == actor {
				want = append(want, op)
			}
		})
		if got := sj.ByActor(actor); !reflect.DeepEqual(got, want) {
			t.Fatalf("ByActor(%q): indexed %d ops, linear %d", actor, len(got), len(want))
		}
	}

	// Path index agrees with Job.Find on a deep path.
	path := []string{"GiraphJob", "ProcessGraph", "Superstep"}
	want := out.Job.Find(path...)
	if len(want) == 0 {
		t.Fatal("expected supersteps in a Giraph BFS job")
	}
	got := sj.ByPath(strings.Join(path, "/"))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ByPath: indexed %d ops, Find %d", len(got), len(want))
	}
}

func TestStoreIDsSortedAndArchive(t *testing.T) {
	g := testOutput(t, "Giraph", "BFS")
	pg := testOutput(t, "PowerGraph", "BFS")
	s := NewStore()
	s.Put(pg.Job, summarize(JobRequest{Algorithm: "BFS"}, pg))
	s.Put(g.Job, summarize(JobRequest{Algorithm: "BFS"}, g))

	ids := s.IDs()
	if !sort.StringsAreSorted(ids) {
		t.Fatalf("IDs not sorted: %v", ids)
	}
	a := s.Archive()
	if len(a.Jobs) != 2 {
		t.Fatalf("archive has %d jobs, want 2", len(a.Jobs))
	}
	for i, id := range ids {
		if a.Jobs[i].ID != id {
			t.Fatalf("archive job %d = %s, want %s", i, a.Jobs[i].ID, id)
		}
	}
	if one := s.Archive(g.Job.ID); len(one.Jobs) != 1 || one.Jobs[0] != g.Job {
		t.Fatalf("Archive(%s) wrong", g.Job.ID)
	}
}

func TestStoreMissionsActorsSorted(t *testing.T) {
	out := testOutput(t, "PowerGraph", "BFS")
	s := NewStore()
	s.Put(out.Job, summarize(JobRequest{Algorithm: "BFS"}, out))
	sj, _ := s.Get(out.Job.ID)
	if m := sj.Missions(); !sort.StringsAreSorted(m) || len(m) == 0 {
		t.Fatalf("Missions bad: %v", m)
	}
	if a := sj.Actors(); !sort.StringsAreSorted(a) || len(a) == 0 {
		t.Fatalf("Actors bad: %v", a)
	}
}
