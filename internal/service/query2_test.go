package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"testing"

	"repro/internal/archive"
	"repro/internal/archivedb"
	"repro/internal/query"
	"repro/internal/shard"
)

// aggTestJob builds a small deterministic operation tree plus a
// matching summary. Varying i shifts durations, missions, and
// platforms so aggregates have real spread across jobs.
func aggTestJob(i int) (*archive.Job, Summary) {
	id := fmt.Sprintf("agg-%03d", i)
	platforms := []string{"Giraph", "PowerGraph", "OpenG"}
	end := float64(20 + i%7)
	root := &archive.Operation{
		ID: id + "-r", Mission: "Job", Actor: "Client", Start: 0, End: end,
		Children: []*archive.Operation{
			{ID: id + "-l", Mission: "LoadGraph", Actor: "Master", Start: 0, End: float64(5 + i%3)},
			{ID: id + "-p", Mission: "ProcessGraph", Actor: "Master", Start: float64(5 + i%3), End: end - 1,
				Children: []*archive.Operation{
					{ID: id + "-s0", Mission: "Superstep", Actor: fmt.Sprintf("Worker-%d", i%4), Start: 6, End: float64(9 + i%5)},
					{ID: id + "-s1", Mission: "Superstep", Actor: fmt.Sprintf("Worker-%d", (i+1)%4), Start: float64(9 + i%5), End: end - 2},
				}},
			{ID: id + "-c", Mission: "Cleanup", Actor: "Master", Start: end - 1, End: end},
		},
	}
	job := &archive.Job{ID: id, Platform: platforms[i%3], Root: root}
	sum := Summary{
		ID: id, Platform: platforms[i%3], Algorithm: []string{"BFS", "PageRank"}[i%2],
		Runtime: end, Supersteps: 2, Operations: 6,
	}
	return job, sum
}

func fillAggStore(t *testing.T, store *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		job, sum := aggTestJob(i)
		if err := store.Put(job, sum); err != nil {
			t.Fatal(err)
		}
	}
}

// oracleQuery2 computes the /query2 response the slow way: deserialize
// nothing, just tree-walk every in-memory job and fold partials in the
// canonical job-ID order. This is the byte-level contract the segment
// path must reproduce.
func oracleQuery2(t *testing.T, store *Store, raw string) []byte {
	t.Helper()
	q, err := query.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	var partials []query.JobPartial
	for _, id := range store.IDs() {
		sj, ok := store.Get(id)
		if !ok {
			continue
		}
		jp, err := q.AggregateTree(sj.Job, jobMeta(id, sj.Summary))
		if err != nil {
			t.Fatal(err)
		}
		partials = append(partials, jp)
	}
	resp, err := q.MergePartials(raw, "jobs", "", partials)
	if err != nil {
		t.Fatal(err)
	}
	body, err := query.RenderAggResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func getQuery2(t *testing.T, base, raw string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(base + shard.Query2Path + "?q=" + url.QueryEscape(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

// startAggServer wires a DB-backed store pre-filled with n jobs onto an
// httptest server.
func startAggServer(t *testing.T, dir string, n int) (*httptest.Server, *Store, *archivedb.DB) {
	t.Helper()
	db, err := archivedb.Open(dir, archivedb.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewStoreWithDB(db)
	if err != nil {
		t.Fatal(err)
	}
	fillAggStore(t, store, n)
	srv := NewServer(nil, store, nil)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		store.Close()
		db.Close()
	})
	return ts, store, db
}

// TestQuery2MatchesTreeWalkOracle: the segment fast path must produce
// byte-identical bodies to the deserialize-and-tree-walk oracle.
func TestQuery2MatchesTreeWalkOracle(t *testing.T) {
	ts, store, _ := startAggServer(t, t.TempDir(), 30)

	queries := []string{
		`from jobs group by mission`,
		`from jobs group by mission agg count, sum(duration), avg(duration), p95(duration)`,
		`from jobs where mission = Superstep group by actor agg count, max(duration)`,
		`from jobs where job.runtime > 22 group by job.platform agg count, max(job.runtime)`,
		`from jobs group by job.platform, job.algorithm agg count order by count desc`,
		`from jobs top 3 actor by sum(duration)`,
		`from jobs where depth >= 2 group by mission agg min(start), max(end)`,
	}
	for _, raw := range queries {
		want := oracleQuery2(t, store, raw)
		code, got, hdr := getQuery2(t, ts.URL, raw)
		if code != http.StatusOK {
			t.Fatalf("%q: %d: %s", raw, code, got)
		}
		if string(got) != string(want) {
			t.Fatalf("%q: segment path diverges from tree-walk oracle:\n%s\nvs\n%s", raw, got, want)
		}
		scanned, _ := strconv.Atoi(hdr.Get(shard.ScannedHeader))
		pruned, _ := strconv.Atoi(hdr.Get(shard.PrunedHeader))
		if scanned+pruned != 30 {
			t.Fatalf("%q: scanned %d + pruned %d != 30 jobs", raw, scanned, pruned)
		}
	}
}

// TestQuery2PrunedSegmentsNeverRead proves the zone maps do their job:
// a predicate no archived job can satisfy answers from segment tails
// alone — the counter for full segment reads does not move.
func TestQuery2PrunedSegmentsNeverRead(t *testing.T) {
	ts, store, db := startAggServer(t, t.TempDir(), 20)

	before := db.Stats()
	raw := `from jobs where start > 1000000 group by mission`
	code, body, hdr := getQuery2(t, ts.URL, raw)
	if code != http.StatusOK {
		t.Fatalf("%d: %s", code, body)
	}
	if want := oracleQuery2(t, store, raw); string(body) != string(want) {
		t.Fatalf("pruned response diverges from oracle:\n%s\nvs\n%s", body, want)
	}
	if hdr.Get(shard.PrunedHeader) != "20" {
		t.Fatalf("pruned header = %q, want 20", hdr.Get(shard.PrunedHeader))
	}
	after := db.Stats()
	if after.ColSegFullReads != before.ColSegFullReads {
		t.Fatalf("pruned query read %d segment bodies", after.ColSegFullReads-before.ColSegFullReads)
	}
	if after.ColSegTailReads < before.ColSegTailReads+20 {
		t.Fatalf("tail reads %d -> %d: zone maps not consulted per job", before.ColSegTailReads, after.ColSegTailReads)
	}
}

// TestQuery2CachedResponseByteIdentical: the second identical request
// is served from the response cache without touching storage, and the
// body is the same bytes.
func TestQuery2CachedResponseByteIdentical(t *testing.T) {
	ts, _, db := startAggServer(t, t.TempDir(), 10)

	raw := `from jobs group by mission agg count, sum(duration)`
	code, first, _ := getQuery2(t, ts.URL, raw)
	if code != http.StatusOK {
		t.Fatalf("%d: %s", code, first)
	}
	mid := db.Stats()
	code, second, _ := getQuery2(t, ts.URL, raw)
	if code != http.StatusOK {
		t.Fatalf("%d: %s", code, second)
	}
	if string(first) != string(second) {
		t.Fatalf("cached body differs:\n%s\nvs\n%s", second, first)
	}
	after := db.Stats()
	if after.ColSegTailReads != mid.ColSegTailReads || after.ColSegFullReads != mid.ColSegFullReads {
		t.Fatalf("second request touched storage: %+v vs %+v", after, mid)
	}
}

// TestQuery2LazyRebuild: a missing or corrupt segment falls back to the
// in-memory columns, answers correctly, and rewrites the sidecar.
func TestQuery2LazyRebuild(t *testing.T) {
	ts, store, db := startAggServer(t, t.TempDir(), 8)

	// One segment vanishes (pre-v2 archive); one is corrupted in place.
	if err := db.DeleteSegment("agg-002"); err != nil {
		t.Fatal(err)
	}
	if err := db.PutSegment("agg-005", []byte("not a segment")); err != nil {
		t.Fatal(err)
	}
	raw := `from jobs group by mission agg count, sum(duration), p50(duration)`
	want := oracleQuery2(t, store, raw)
	code, got, _ := getQuery2(t, ts.URL, raw)
	if code != http.StatusOK {
		t.Fatalf("%d: %s", code, got)
	}
	if string(got) != string(want) {
		t.Fatalf("rebuild path diverges from oracle:\n%s\nvs\n%s", got, want)
	}
	for _, id := range []string{"agg-002", "agg-005"} {
		blob, ok, err := db.GetSegment(id)
		if err != nil || !ok {
			t.Fatalf("segment %s not rebuilt: ok=%v err=%v", id, ok, err)
		}
		if _, _, err := query.DecodeSegment(blob); err != nil {
			t.Fatalf("rebuilt segment %s does not decode: %v", id, err)
		}
	}
}

// TestQuery2DeleteNoResurrect pins the ride-along bugfix end to end:
// deleting a job drops its segment, so cross-job aggregation excludes
// it immediately AND after a process restart (no resurrection from a
// stale sidecar file).
func TestQuery2DeleteNoResurrect(t *testing.T) {
	dir := t.TempDir()
	ts, store, db := startAggServer(t, dir, 6)

	raw := `from jobs group by job.platform agg count`
	if err := store.Delete("agg-001"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.GetSegment("agg-001"); ok {
		t.Fatal("deleted job's segment still on disk")
	}
	code, body, _ := getQuery2(t, ts.URL, raw)
	if code != http.StatusOK {
		t.Fatalf("%d: %s", code, body)
	}
	var resp query.AggResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Jobs != 5 {
		t.Fatalf("deleted job still aggregated: %d jobs, want 5", resp.Jobs)
	}
	if want := oracleQuery2(t, store, raw); string(body) != string(want) {
		t.Fatalf("post-delete body diverges from oracle:\n%s\nvs\n%s", body, want)
	}
	ts.Close()
	store.Close()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart over the same directory: the job must stay gone.
	db2, err := archivedb.Open(dir, archivedb.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	store2, err := NewStoreWithDB(db2)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(NewServer(nil, store2, nil).Handler())
	t.Cleanup(func() {
		ts2.Close()
		store2.Close()
		db2.Close()
	})
	code, body, _ = getQuery2(t, ts2.URL, raw)
	if code != http.StatusOK {
		t.Fatalf("after restart: %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Jobs != 5 {
		t.Fatalf("job resurrected after restart: %d jobs, want 5", resp.Jobs)
	}
	if _, ok, _ := db2.GetSegment("agg-001"); ok {
		t.Fatal("deleted job's segment reappeared after restart")
	}
}

// TestQuery2Validation: the endpoint only serves cross-job aggregates
// over summary fields; everything else gets a specific 400.
func TestQuery2Validation(t *testing.T) {
	ts, _, _ := startAggServer(t, t.TempDir(), 2)

	for _, tc := range []struct {
		raw  string
		code int
	}{
		{``, http.StatusBadRequest},                                              // missing q
		{`mission = Compute`, http.StatusBadRequest},                             // not an aggregate
		{`group by mission`, http.StatusBadRequest},                              // single-job scope
		{`from jobs where (`, http.StatusBadRequest},                             // parse error
		{`from jobs where info.K = 1 group by mission`, http.StatusBadRequest},   // needs ops
		{`from jobs group by mission agg max(derived.D)`, http.StatusBadRequest}, // needs ops
		{`from jobs group by mission`, http.StatusOK},
	} {
		code, body, _ := getQuery2(t, ts.URL, tc.raw)
		if code != tc.code {
			t.Errorf("%q: %d (want %d): %s", tc.raw, code, tc.code, body)
		}
	}
}

// TestSingleJobAggregateEndpoint: aggregate queries on /jobs/{id}/query
// run over that one job (and, unlike /query2, may use info./derived.
// because the in-memory columns carry operations).
func TestSingleJobAggregateEndpoint(t *testing.T) {
	store := NewStore()
	fillAggStore(t, store, 3)
	ts := httptest.NewServer(NewServer(nil, store, nil).Handler())
	t.Cleanup(ts.Close)

	raw := `group by mission agg count, sum(duration) order by sum(duration) desc`
	q, err := query.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	sj, _ := store.Get("agg-001")
	jp, err := q.AggregateTree(sj.Job, jobMeta("agg-001", sj.Summary))
	if err != nil {
		t.Fatal(err)
	}
	want, err := q.RenderAggregate(raw, "job", "agg-001", []query.JobPartial{jp})
	if err != nil {
		t.Fatal(err)
	}
	code, got := httpGet(t, ts.URL+"/jobs/agg-001/query?q="+url.QueryEscape(raw))
	if code != http.StatusOK {
		t.Fatalf("%d: %s", code, got)
	}
	if string(got) != string(want) {
		t.Fatalf("single-job aggregate diverges:\n%s\nvs\n%s", got, want)
	}

	// Cross-job scope is redirected to /query2.
	code, body := httpGet(t, ts.URL+"/jobs/agg-001/query?q="+url.QueryEscape(`from jobs group by mission`))
	if code != http.StatusBadRequest {
		t.Fatalf("from-jobs on single-job endpoint: %d: %s", code, body)
	}
}

// TestInternalQuery2Shape: the scatter-gather endpoint returns one
// partial per local job so the router can fold them canonically.
func TestInternalQuery2Shape(t *testing.T) {
	ts, _, _ := startAggServer(t, t.TempDir(), 4)

	raw := `from jobs group by mission agg count`
	resp, err := http.Get(ts.URL + shard.InternalQuery2Path + "?q=" + url.QueryEscape(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%d: %s", resp.StatusCode, body)
	}
	var out struct {
		Partials []query.JobPartial `json:"partials"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Partials) != 4 {
		t.Fatalf("%d partials, want 4", len(out.Partials))
	}
	for i, jp := range out.Partials {
		if jp.Job != fmt.Sprintf("agg-%03d", i) {
			t.Fatalf("partial %d is for %q", i, jp.Job)
		}
	}
}
