package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/archivedb"
)

// durableServer is one "process incarnation" of granula-serve over a
// data directory: DB, store, executor, HTTP server.
type durableServer struct {
	db   *archivedb.DB
	exec *Executor
	srv  *httptest.Server
}

func startDurableServer(t *testing.T, dir string) *durableServer {
	t.Helper()
	db, err := archivedb.Open(dir, archivedb.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewStoreWithDB(db)
	if err != nil {
		t.Fatal(err)
	}
	exec := NewExecutor(2, 16, store, nil)
	srv := NewServer(exec, store, nil)
	return &durableServer{db: db, exec: exec, srv: httptest.NewServer(srv.Handler())}
}

// stop shuts the incarnation down the way a real restart would: drain
// the executor, close the HTTP listener, close the DB.
func (ds *durableServer) stop(t *testing.T) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ds.exec.Shutdown(ctx)
	ds.srv.Close()
	if err := ds.db.Close(); err != nil {
		t.Fatal(err)
	}
}

func (ds *durableServer) get(t *testing.T, path string) []byte {
	t.Helper()
	resp, err := http.Get(ds.srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", path, resp.Status, body)
	}
	return body
}

// submitAndWait submits a job over HTTP and polls until it is done.
func (ds *durableServer) submitAndWait(t *testing.T, req JobRequest) string {
	t.Helper()
	buf, _ := json.Marshal(req)
	resp, err := http.Post(ds.srv.URL+"/jobs", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, body)
	}
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st JobState
		if err := json.Unmarshal(ds.get(t, "/jobs/"+sub.ID), &st); err != nil {
			t.Fatal(err)
		}
		switch st.Status {
		case StatusDone:
			return sub.ID
		case StatusFailed:
			t.Fatalf("job %s failed: %s", sub.ID, st.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", sub.ID)
	return ""
}

// TestRestartDurability is the PR's acceptance test: submit jobs via
// the HTTP API, stop the server, reopen against the same -data-dir,
// and require /archive and /query responses byte-identical to the
// pre-restart ones.
func TestRestartDurability(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	s1 := startDurableServer(t, dir)

	reqs := []JobRequest{
		{Platform: "Giraph", Algorithm: "PageRank", Vertices: 300, Edges: 1200},
		{Platform: "PowerGraph", Algorithm: "BFS", Vertices: 300, Edges: 1200},
		{Platform: "OpenG", Algorithm: "WCC", Vertices: 300, Edges: 1200},
	}
	var ids []string
	for _, r := range reqs {
		ids = append(ids, s1.submitAndWait(t, r))
	}

	paths := func(id string) []string {
		return []string{
			"/jobs/" + id + "/archive",
			"/jobs/" + id + "/query?mission=ProcessGraph",
			"/jobs/" + id + "/query?q=duration+%3E+0+order+by+duration+desc+limit+10",
			"/jobs/" + id + "/query?actor=Master",
		}
	}
	before := map[string][]byte{}
	for _, id := range ids {
		for _, p := range paths(id) {
			before[p] = s1.get(t, p)
		}
	}
	s1.stop(t)

	s2 := startDurableServer(t, dir)
	defer s2.stop(t)
	for _, id := range ids {
		for _, p := range paths(id) {
			after := s2.get(t, p)
			if !bytes.Equal(before[p], after) {
				t.Fatalf("restart changed %s:\nbefore: %d bytes\nafter:  %d bytes", p, len(before[p]), len(after))
			}
		}
	}
	// /healthz must report the restored archives.
	var health healthResponse
	if err := json.Unmarshal(s2.get(t, "/healthz"), &health); err != nil {
		t.Fatal(err)
	}
	if health.StoreJobs != len(ids) {
		t.Fatalf("restored store has %d jobs, want %d", health.StoreJobs, len(ids))
	}
	// /metrics must expose the storage family when durable.
	metrics := string(s2.get(t, "/metrics"))
	for _, want := range []string{"granula_storage_segments", "granula_storage_live_jobs", "granula_storage_wal_bytes"} {
		if !bytes.Contains([]byte(metrics), []byte(want)) {
			t.Fatalf("/metrics missing %s:\n%s", want, metrics)
		}
	}
}

// TestRestartDurabilityTornTail extends the acceptance test: after the
// server stops, the WAL tail is torn (truncated mid-record) and the
// snapshot removed, as a crash would leave them. Reopening must restore
// every fully-written job and serve its archive byte-identically.
func TestRestartDurabilityTornTail(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	s1 := startDurableServer(t, dir)
	id := s1.submitAndWait(t, JobRequest{Platform: "Giraph", Algorithm: "BFS", Vertices: 300, Edges: 1200})
	archiveBefore := s1.get(t, "/jobs/"+id+"/archive")
	s1.stop(t)

	// Tear the tail: append a partial frame (a plausible length prefix
	// with too few bytes behind it) to the newest segment, and corrupt
	// the snapshot so recovery exercises the full replay + truncation
	// path.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF, 0x00, 0x00, 0x00, 0xAB}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := os.WriteFile(filepath.Join(dir, "snapshot.json"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := startDurableServer(t, dir)
	defer s2.stop(t)
	archiveAfter := s2.get(t, "/jobs/"+id+"/archive")
	if !bytes.Equal(archiveBefore, archiveAfter) {
		t.Fatal("archive changed across a torn-tail recovery")
	}
	stats := s2.db.Stats()
	if stats.TruncatedBytes == 0 {
		t.Fatalf("recovery did not truncate the torn tail: %+v", stats)
	}
	if !stats.SnapshotDiscarded {
		t.Fatalf("corrupt snapshot was not discarded: %+v", stats)
	}
}

// TestPersistFailureFailsJob verifies the ack contract end to end: if
// the archive cannot be persisted, the job must report failed, not
// done.
func TestPersistFailureFailsJob(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	db, err := archivedb.Open(dir, archivedb.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewStoreWithDB(db)
	if err != nil {
		t.Fatal(err)
	}
	exec := NewExecutor(1, 4, store, nil)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		exec.Shutdown(ctx)
	}()
	// Close the DB out from under the store: the next Put must error.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	id, err := exec.Submit(JobRequest{Platform: "Giraph", Algorithm: "BFS", Vertices: 200, Edges: 800})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := exec.State(id)
		if !ok {
			t.Fatal("job vanished")
		}
		if st.Status == StatusFailed {
			if st.Error == "" {
				t.Fatal("failed job has no error")
			}
			return
		}
		if st.Status == StatusDone {
			t.Fatal("job acked done although its archive could not be persisted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job did not reach a terminal state")
}

// TestStoreWithNilDB covers the -data-dir="" degradation.
func TestStoreWithNilDB(t *testing.T) {
	s, err := NewStoreWithDB(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.DB() != nil || s.StorageStats() != nil {
		t.Fatal("nil-db store reports storage")
	}
	var buf bytes.Buffer
	NewMetrics().WritePrometheus(&buf, 0, 0, nil, BreakerClosed, nil)
	if bytes.Contains(buf.Bytes(), []byte("granula_storage_")) {
		t.Fatalf("in-memory metrics leak storage family:\n%s", buf.String())
	}
}

// TestStorageBenchSmall exercises the bench driver end to end.
func TestStorageBenchSmall(t *testing.T) {
	res, err := RunStorageBench(StorageBenchConfig{Jobs: 20, OpsPerJob: 16, Rewrites: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Appends != 40 || res.FinalJobs != 20 {
		t.Fatalf("bench counts wrong: %+v", res)
	}
	if res.ReclaimedBytes <= 0 {
		t.Fatalf("bench reclaimed nothing: %+v", res)
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
	_ = fmt.Sprintf("%+v", res)
}
