package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/archive"
	"repro/internal/faults"
	"repro/internal/query"
	"repro/internal/regression"
	"repro/internal/shard"
	"repro/internal/stream"
	"repro/internal/viz"
)

// maxSubmitBytes caps the POST /jobs and POST /diff request bodies; an
// oversized body is rejected with 413 before it is buffered.
const maxSubmitBytes = 1 << 20

// Fault-injection points on the HTTP layer.
const (
	// SiteSubmit is hit at the top of POST /jobs.
	SiteSubmit = "http.submit"
	// SiteQuery is hit at the top of GET /jobs/{id}/query.
	SiteQuery = "http.query"
)

// Server is the HTTP face of the service: it routes the JSON API over
// one executor, one store, and one metrics registry.
type Server struct {
	exec    *Executor
	store   *Store
	metrics *Metrics
	faults  *faults.Injector
	queries *query.Cache
	resp    *RespCache
	handler http.Handler

	shardID string
	cluster *shard.Map
	extra   func(io.Writer)

	// streams holds live (in-flight) jobs: externally ingested streams
	// and in-process jobs mirrored by the executor's sinks.
	streams   *stream.Manager
	heartbeat time.Duration

	// durableMu guards durable, the per-live-job high-water sequence
	// already persisted as stream batches; an ingest ack implies the
	// batch is at or below this mark.
	durableMu sync.Mutex
	durable   map[string]uint64

	// jitterMu guards jitter, the source behind Retry-After values.
	// Randomizing the hint spreads retries from shed clients over a
	// window instead of synchronizing them into a thundering herd one
	// second later.
	jitterMu sync.Mutex
	jitter   *rand.Rand
}

// ServerOptions tunes the server's robustness and caching behavior.
type ServerOptions struct {
	// Faults is the chaos injector threaded through the handlers; nil
	// injects nothing.
	Faults *faults.Injector
	// QueryCacheSize bounds the compiled-query LRU: 0 selects the
	// default capacity, < 0 disables the cache (every request re-parses,
	// used by equivalence tests).
	QueryCacheSize int
	// RespCacheSize bounds the HTTP response cache the same way: 0 for
	// the default capacity, < 0 to serve every request from the handler.
	RespCacheSize int
	// ShardID names this node in a cluster; empty means single-node.
	// It is echoed in /healthz and /cluster.
	ShardID string
	// Cluster is the shard map this node serves under; nil means
	// single-node. /cluster echoes it so operators can confirm every
	// node converged on the same map version.
	Cluster *shard.Map
	// ExtraMetrics, when set, is appended to the /metrics exposition
	// after the core families; the replication metrics ride here.
	ExtraMetrics func(io.Writer)
	// Streams is the live-job manager shared with the executor (so
	// in-process jobs stream their own supersteps); nil creates a
	// private manager with StreamConfig's bounds.
	Streams *stream.Manager
	// StreamConfig bounds the private manager created when Streams is
	// nil; ignored otherwise.
	StreamConfig stream.Config
	// WatchHeartbeat is the /watch SSE keep-alive comment interval;
	// 0 selects 15 s.
	WatchHeartbeat time.Duration
}

// NewServer wires the API routes. Metrics may be nil, in which case a
// fresh registry is created.
func NewServer(exec *Executor, store *Store, m *Metrics) *Server {
	return NewServerWith(exec, store, m, ServerOptions{})
}

// NewServerWith is NewServer with explicit robustness options.
func NewServerWith(exec *Executor, store *Store, m *Metrics, opts ServerOptions) *Server {
	if m == nil {
		m = NewMetrics()
	}
	s := &Server{
		exec: exec, store: store, metrics: m, faults: opts.Faults,
		shardID: opts.ShardID, cluster: opts.Cluster, extra: opts.ExtraMetrics,
		streams: opts.Streams, heartbeat: opts.WatchHeartbeat,
		durable: map[string]uint64{},
		jitter:  rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	if s.streams == nil {
		s.streams = stream.NewManager(opts.StreamConfig)
	}
	if s.heartbeat <= 0 {
		s.heartbeat = 15 * time.Second
	}
	if opts.QueryCacheSize >= 0 {
		s.queries = query.NewCache(opts.QueryCacheSize)
	}
	if opts.RespCacheSize >= 0 {
		s.resp = NewRespCache(opts.RespCacheSize)
	}
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(pattern, h))
	}
	route("POST /jobs", s.handleSubmit)
	route("GET /jobs", s.handleList)
	route("GET /jobs/{id}", s.handleStatus)
	route("DELETE /jobs/{id}", s.handleCancel)
	route("GET /jobs/{id}/archive", s.cached(s.handleArchive))
	route("GET /jobs/{id}/query", s.cached(s.handleQuery))
	route("GET "+shard.Query2Path, s.cached(s.handleQuery2))
	route("GET "+shard.InternalQuery2Path, s.handleInternalQuery2)
	route("GET /jobs/{id}/viz/{kind}", s.cached(s.handleViz))
	route("POST /ingest/{id}", s.handleIngest)
	route("GET /watch/{id}", s.handleWatch)
	route("POST /diff", s.handleDiff)
	route("GET /healthz", s.handleHealthz)
	route("GET /metrics", s.handleMetrics)
	route("POST "+shard.ReplicatePath, s.handleReplicate)
	route("GET "+shard.ExportPathPrefix+"{id}", s.handleExport)
	route("GET "+shard.ClusterPath, s.handleCluster)
	route("GET "+shard.HealthPath, s.handleInternalHealth)
	route("GET "+shard.DigestPath, s.handleDigest)
	s.handler = mux
	s.recoverStreams()
	return s
}

// Streams returns the live-job manager, for wiring the executor's
// in-process streaming sinks to the same manager /watch serves.
func (s *Server) Streams() *stream.Manager { return s.streams }

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// instrument records request latency under the route pattern and
// isolates handler panics: a panicking handler (from a bug or an
// injected fault) answers 500 instead of tearing down the connection,
// and the panic is counted so chaos runs can assert isolation worked.
// It also honors X-Granula-Deadline: a router (or client) propagating
// its absolute deadline gets a handler context that expires with it,
// so the shard stops working on answers nobody is waiting for.
func (s *Server) instrument(pattern string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hd := r.Header.Get(shard.DeadlineHeader); hd != "" {
			if ms, err := strconv.ParseInt(hd, 10, 64); err == nil && ms > 0 {
				ctx, cancel := context.WithDeadline(r.Context(), time.UnixMilli(ms))
				defer cancel()
				r = r.WithContext(ctx)
			}
		}
		start := time.Now()
		defer func() {
			if rec := recover(); rec != nil {
				s.metrics.CountPanicRecovered()
				// Best effort: if the handler already wrote headers this
				// write is a no-op on the status line, which is fine.
				writeError(w, http.StatusInternalServerError, "internal panic: %v", rec)
			}
			s.metrics.ObserveRequest(pattern, time.Since(start).Seconds())
		}()
		h(w, r)
	})
}

// setRetryAfter stamps a jittered Retry-After of 1-3 seconds. A fixed
// "1" would synchronize every shed client into a retry storm exactly
// one second later; the spread drains the herd over a window.
func (s *Server) setRetryAfter(w http.ResponseWriter) {
	s.jitterMu.Lock()
	secs := 1 + s.jitter.Intn(3)
	s.jitterMu.Unlock()
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// errorBody is the uniform JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// writeJSON writes v as indented JSON. encoding/json emits struct
// fields in declaration order and map keys sorted, and every slice the
// API returns is explicitly ordered, so responses are byte-stable.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

// submitResponse acknowledges a queued job.
type submitResponse struct {
	ID     string    `json:"id"`
	Status JobStatus `json:"status"`
}

// decodeBody decodes a JSON request body capped at maxSubmitBytes,
// distinguishing an oversized body (413) from malformed JSON (400).
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxSubmitBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return false
	}
	return true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if err := s.faults.Fail(SiteSubmit); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if s.store.ReadOnly() {
		// Degraded read-only mode: reads keep serving, submits are shed
		// until the breaker's probe confirms storage recovered.
		s.metrics.CountShed()
		s.setRetryAfter(w)
		writeError(w, http.StatusServiceUnavailable, "%v", ErrDegraded)
		return
	}
	var req JobRequest
	if !decodeBody(w, r, &req) {
		return
	}
	id, err := s.exec.Submit(req)
	if err == ErrQueueFull {
		s.setRetryAfter(w)
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{ID: id, Status: StatusQueued})
}

// listResponse enumerates every submitted job in submission order.
type listResponse struct {
	Count int        `json:"count"`
	Jobs  []JobState `json:"jobs"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	states := s.exec.States()
	writeJSON(w, http.StatusOK, listResponse{Count: len(states), Jobs: states})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.exec.State(id)
	if !ok {
		// The executor never saw this job, but the store may hold its
		// archive anyway: jobs replicated from another shard, and jobs
		// restored from the archive database after a restart, exist only
		// as archives. Synthesize the terminal state from the summary so
		// status survives primary failover and process restarts.
		if sj, stored := s.store.Get(id); stored {
			sum := sj.Summary
			writeJSON(w, http.StatusOK, JobState{
				ID:      id,
				Request: JobRequest{Platform: sum.Platform, Algorithm: sum.Algorithm, ID: id},
				Status:  StatusDone,
				Summary: &sum,
			})
			return
		}
		if lj, live := s.streams.Get(id); live {
			// An externally streamed job: no executor record, just the
			// growing stream. Expose its progress as a streaming state.
			events, completed, open := lj.Progress()
			platform, algorithm := lj.Meta()
			writeJSON(w, http.StatusOK, JobState{
				ID:      id,
				Request: JobRequest{Platform: platform, Algorithm: algorithm, ID: id},
				Status:  StatusStreaming,
				Stream: &StreamProgress{
					Events: events, CompletedOps: completed, OpenOps: open,
					LastSeq: lj.LastSeq(),
				},
			})
			return
		}
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.exec.State(id); !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	if !s.exec.Cancel(id) {
		writeError(w, http.StatusConflict, "job %q is no longer cancelable", id)
		return
	}
	st, _ := s.exec.State(id)
	writeJSON(w, http.StatusOK, st)
}

// parseQuery compiles a query string, through the compiled-query cache
// when one is configured.
func (s *Server) parseQuery(input string) (*query.Query, error) {
	if s.queries != nil {
		return s.queries.Parse(input)
	}
	return query.Parse(input)
}

// storedJob resolves a job ID to its archived result, writing the
// appropriate error (404 for unknown, 409 for not-yet-done) otherwise.
func (s *Server) storedJob(w http.ResponseWriter, id string) (*StoredJob, bool) {
	sj, ok := s.store.Get(id)
	if ok {
		return sj, true
	}
	if st, known := s.exec.State(id); known {
		writeError(w, http.StatusConflict, "job %q is %s, no archive yet", id, st.Status)
	} else {
		writeError(w, http.StatusNotFound, "no job %q", id)
	}
	return nil, false
}

func (s *Server) handleArchive(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sj, ok := s.storedJob(w, id)
	if !ok {
		return
	}
	a := archive.New()
	a.Jobs = append(a.Jobs, sj.Job)
	w.Header().Set("Content-Type", "application/json")
	a.Save(w)
}

// OperationView is the flat JSON projection of one operation.
type OperationView struct {
	ID       string            `json:"id"`
	Actor    string            `json:"actor"`
	Mission  string            `json:"mission"`
	Path     string            `json:"path"`
	Start    float64           `json:"start"`
	End      float64           `json:"end"`
	Duration float64           `json:"duration"`
	Infos    map[string]string `json:"infos,omitempty"`
	Derived  map[string]string `json:"derived,omitempty"`
}

func viewOps(ops []*archive.Operation) []OperationView {
	out := make([]OperationView, 0, len(ops))
	for _, op := range ops {
		out = append(out, OperationView{
			ID: op.ID, Actor: op.Actor, Mission: op.Mission, Path: PathKey(op),
			Start: op.Start, End: op.End, Duration: op.Duration(),
			Infos: op.Infos, Derived: op.Derived,
		})
	}
	return out
}

// queryResponse carries the operations matched by a query. The live
// fields are set only for queries answered from a still-streaming job
// (omitted on sealed archives, so archived responses are byte-stable
// across this feature).
type queryResponse struct {
	JobID      string          `json:"jobId"`
	Count      int             `json:"count"`
	Operations []OperationView `json:"operations"`
	Live       bool            `json:"live,omitempty"`
	LastSeq    uint64          `json:"lastSeq,omitempty"`
}

// handleQuery serves GET /jobs/{id}/query. Exactly one selector is
// required: ?q= runs the internal/query language over the tree;
// ?mission=, ?actor=, and ?path= hit the store's secondary indexes.
// A job that is still streaming (no archive yet) answers from its
// incremental columnar index over completed operations, marked live so
// the response cache never files the moving bytes.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if err := s.faults.Fail(SiteQuery); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	id := r.PathValue("id")
	sj, stored := s.store.Get(id)
	var live *stream.Job
	if !stored {
		if lj, ok := s.streams.Get(id); ok {
			live = lj
		} else if st, known := s.exec.State(id); known {
			writeError(w, http.StatusConflict, "job %q is %s, no archive yet", id, st.Status)
			return
		} else {
			writeError(w, http.StatusNotFound, "no job %q", id)
			return
		}
	}
	params := r.URL.Query()
	selectors := 0
	for _, k := range []string{"q", "mission", "actor", "path"} {
		if params.Has(k) {
			selectors++
		}
	}
	if selectors != 1 {
		writeError(w, http.StatusBadRequest,
			"need exactly one of q=, mission=, actor=, path= (got %d)", selectors)
		return
	}
	// The live watermark is read before the data: the stream may grow
	// while the response renders, so LastSeq is a lower bound on what
	// the operations reflect.
	var lastSeq uint64
	if live != nil {
		lastSeq = live.LastSeq()
	}
	var ops []*archive.Operation
	switch {
	case params.Has("q"):
		q, err := s.parseQuery(params.Get("q"))
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if q.IsAggregate() {
			s.handleJobAggregate(w, id, params.Get("q"), q, sj, live)
			return
		}
		switch {
		case live != nil:
			// Snapshot of the incremental index: completed operations in
			// completion order, race-free against concurrent ingest.
			ops = q.SelectColumns(live.Columns())
		case sj.Cols != nil:
			// Compiled evaluation over the columnar projection built at
			// Put time; returns exactly what q.Select(sj.Job) would.
			ops = q.SelectColumns(sj.Cols)
		default:
			ops = q.Select(sj.Job)
		}
	case params.Has("mission"):
		if live != nil {
			ops = live.Lookup("mission", params.Get("mission"))
		} else {
			ops = sj.ByMission(params.Get("mission"))
		}
	case params.Has("actor"):
		if live != nil {
			ops = live.Lookup("actor", params.Get("actor"))
		} else {
			ops = sj.ByActor(params.Get("actor"))
		}
	case params.Has("path"):
		if live != nil {
			ops = live.Lookup("path", params.Get("path"))
		} else {
			ops = sj.ByPath(params.Get("path"))
		}
	}
	resp := queryResponse{JobID: id, Count: len(ops), Operations: viewOps(ops)}
	if live != nil {
		resp.Live = true
		resp.LastSeq = lastSeq
		w.Header().Set(liveHeader, "1")
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleJobAggregate answers an aggregate ?q= on /jobs/{id}/query:
// the same v2 language scoped to one job. Runs over the job's
// in-memory columns — the operation details are at hand, so
// info./derived. group fields work here (unlike the segment-only
// /query2 path). Live jobs are refused: their summary (job.runtime
// and friends) does not exist until the job seals.
func (s *Server) handleJobAggregate(w http.ResponseWriter, id, raw string, q *query.Query, sj *StoredJob, live *stream.Job) {
	if q.FromJobs() {
		writeError(w, http.StatusBadRequest,
			"cross-job queries ('from jobs') are served by /query2, not /jobs/{id}/query")
		return
	}
	if live != nil {
		writeError(w, http.StatusConflict,
			"job %q is still streaming; aggregate queries need a sealed archive", id)
		return
	}
	var jp query.JobPartial
	var err error
	meta := jobMeta(id, sj.Summary)
	if sj.Cols != nil {
		jp, err = q.AggregateFrame(sj.Cols.Frame(meta))
	} else {
		jp, err = q.AggregateTree(sj.Job, meta)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	body, err := q.RenderAggregate(raw, "job", id, []query.JobPartial{jp})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

func (s *Server) handleViz(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sj, ok := s.storedJob(w, id)
	if !ok {
		return
	}
	switch kind := r.PathValue("kind"); kind {
	case "breakdown":
		w.Header().Set("Content-Type", "image/svg+xml")
		fmt.Fprint(w, viz.SVGBreakdown(sj.Job))
	case "cpu":
		w.Header().Set("Content-Type", "image/svg+xml")
		fmt.Fprint(w, viz.SVGCPUChart(sj.Job))
	case "gantt":
		w.Header().Set("Content-Type", "image/svg+xml")
		fmt.Fprint(w, viz.SVGWorkerGantt(sj.Job, 1, 0))
	case "tree":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, viz.OperationTree(sj.Job))
	case "report":
		a := archive.New()
		a.Jobs = append(a.Jobs, sj.Job)
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, viz.HTMLReport(a))
	default:
		writeError(w, http.StatusNotFound,
			"unknown viz kind %q (want breakdown, cpu, gantt, tree, report)", kind)
	}
}

// DiffRequest asks for a regression comparison between two stored jobs.
type DiffRequest struct {
	BaselineID string `json:"baselineId"`
	CurrentID  string `json:"currentId"`
	// Threshold is the relative duration change that counts as a
	// regression; 0 selects 0.10.
	Threshold float64 `json:"threshold,omitempty"`
	// MinSeconds ignores operations shorter than this in both runs;
	// 0 selects 0.05.
	MinSeconds float64 `json:"minSeconds,omitempty"`
}

// DiffFinding mirrors regression.Finding with JSON names.
type DiffFinding struct {
	Key      string  `json:"key"`
	Mission  string  `json:"mission"`
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	Change   float64 `json:"change"`
	Verdict  string  `json:"verdict"`
}

// DiffResponse is the serialized regression report.
type DiffResponse struct {
	JobID            string        `json:"jobId"`
	Pass             bool          `json:"pass"`
	BaselineMakespan float64       `json:"baselineMakespan"`
	CurrentMakespan  float64       `json:"currentMakespan"`
	MakespanChange   float64       `json:"makespanChange"`
	Findings         []DiffFinding `json:"findings"`
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	var req DiffRequest
	if !decodeBody(w, r, &req) {
		return
	}
	baseline, ok := s.storedJob(w, req.BaselineID)
	if !ok {
		return
	}
	current, ok := s.storedJob(w, req.CurrentID)
	if !ok {
		return
	}
	report, err := regression.Compare(baseline.Job, current.Job,
		regression.Thresholds{RelativeChange: req.Threshold, MinSeconds: req.MinSeconds})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := DiffResponse{
		JobID:            report.JobID,
		Pass:             report.Pass(),
		BaselineMakespan: report.BaselineMakespan,
		CurrentMakespan:  report.CurrentMakespan,
		MakespanChange:   report.MakespanChange,
		Findings:         make([]DiffFinding, 0, len(report.Findings)),
	}
	for _, f := range report.Findings {
		resp.Findings = append(resp.Findings, DiffFinding{
			Key: f.Key, Mission: f.Mission, Baseline: f.Baseline,
			Current: f.Current, Change: f.Change, Verdict: string(f.Verdict),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// healthResponse reports liveness plus coarse load and the persistence
// breaker state, so orchestrators can distinguish healthy from
// degraded-but-serving. Generation is the store's publish counter — the
// response-cache key — exposed so operators (and the router's /cluster
// view) can watch replicas converge after writes. The shard fields are
// omitted outside cluster mode.
type healthResponse struct {
	Status     string `json:"status"`
	Breaker    string `json:"breaker"`
	Jobs       int    `json:"jobs"`
	QueueDepth int    `json:"queueDepth"`
	StoreJobs  int    `json:"storeJobs"`
	Generation uint64 `json:"generation"`
	ShardID    string `json:"shardId,omitempty"`
	MapVersion uint64 `json:"mapVersion,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	breaker := s.store.BreakerState()
	status := "ok"
	if breaker != BreakerClosed {
		status = "degraded"
	}
	resp := healthResponse{
		Status:     status,
		Breaker:    breaker.String(),
		Jobs:       len(s.exec.States()),
		QueueDepth: s.exec.QueueDepth(),
		StoreJobs:  s.store.Len(),
		Generation: s.store.Generation(),
		ShardID:    s.shardID,
	}
	if s.cluster != nil {
		resp.MapVersion = s.cluster.Version
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w, s.exec.QueueDepth(), s.store.Len(), s.store.StorageStats(), s.store.BreakerState(), s.cacheStats())
	fmt.Fprintf(w, "# HELP granula_stream_live_jobs Jobs currently streaming (external ingest plus in-process mirrors).\n# TYPE granula_stream_live_jobs gauge\ngranula_stream_live_jobs %d\n", s.streams.Live())
	if s.extra != nil {
		s.extra(w)
	}
}

// replicateResponse acks an applied (or replayed) replica record.
type replicateResponse struct {
	ID      string `json:"id"`
	Version uint64 `json:"version"`
}

// handleReplicate serves the cluster-internal write path: another shard
// (or the router's read-repair) pushes a job's persisted bytes here.
// Application is idempotent by (ID, version), so retries and racing
// repairs are safe; the ack echoes the version now stored locally.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	var rec shard.ReplicaRecord
	if !decodeBody(w, r, &rec) {
		return
	}
	if rec.ID == "" || len(rec.Payload) == 0 {
		writeError(w, http.StatusBadRequest, "replica record needs an id and a payload")
		return
	}
	if err := s.store.ApplyReplica(rec.ID, rec.Version, rec.Payload); err != nil {
		if errors.Is(err, ErrDegraded) {
			s.setRetryAfter(w)
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, replicateResponse{ID: rec.ID, Version: s.store.Version(rec.ID)})
}

// handleExport serves the cluster-internal read side of replication:
// the exact persisted bytes plus version for one job, consumed by the
// router's read-repair to converge divergent replicas.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	payload, version, ok, err := s.store.Export(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	// Marshal compactly instead of via writeJSON: its indenting would
	// reformat the embedded payload, and read-repair must ship the
	// exact bytes the primary fsynced so replicas stay byte-identical.
	blob, err := json.Marshal(shard.ReplicaRecord{ID: id, Version: version, Payload: payload})
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(blob)
}

// handleInternalHealth serves the failure detector's probe target: a
// deliberately tiny, allocation-light answer so probing every 500 ms
// across a fleet costs nothing measurable. Any 2xx means alive — a
// degraded (read-only) shard still answers 200 here, because degraded
// is not dead and must not trigger promotion or hinted handoff.
func (s *Server) handleInternalHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.store.ReadOnly() {
		status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"shardId\":%q,\"status\":%q,\"generation\":%d}\n",
		s.shardID, status, s.store.Generation())
}

// handleDigest serves the anti-entropy exchange: this shard's full
// (jobID, version) digest, sorted, so a peer can spot divergence with
// one request and ship bytes only for records that differ.
func (s *Server) handleDigest(w http.ResponseWriter, r *http.Request) {
	buf, err := shard.EncodeDigest(s.store.Digest())
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(append(buf, '\n'))
}

// clusterInfo is the shard-side /cluster response; the router serves a
// richer view with live per-shard health on the same path.
type clusterInfo struct {
	Mode       string     `json:"mode"`
	ShardID    string     `json:"shardId,omitempty"`
	MapVersion uint64     `json:"mapVersion,omitempty"`
	Map        *shard.Map `json:"map,omitempty"`
	Generation uint64     `json:"generation"`
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	info := clusterInfo{Mode: "single", Generation: s.store.Generation()}
	if s.cluster != nil {
		info.Mode = "shard"
		info.ShardID = s.shardID
		info.MapVersion = s.cluster.Version
		info.Map = s.cluster
	}
	writeJSON(w, http.StatusOK, info)
}

// cacheStats samples the read-path caches for /metrics; nil when both
// are disabled.
func (s *Server) cacheStats() *CacheStats {
	if s.queries == nil && s.resp == nil {
		return nil
	}
	var cs CacheStats
	if s.queries != nil {
		cs.QueryHits, cs.QueryMisses, cs.QuerySize = s.queries.Stats()
	}
	if s.resp != nil {
		cs.Resp = s.resp.Stats()
	}
	return &cs
}
