package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// LoadTestConfig drives RunLoadTest.
type LoadTestConfig struct {
	// BaseURL is the serve endpoint, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Jobs is the total number of jobs to submit.
	Jobs int
	// Concurrency is the number of client goroutines; 0 selects 8.
	Concurrency int
	// Vertices/Edges size each job's graph; 0 selects 2000/10000.
	Vertices int64
	Edges    int64
	// Out receives progress lines; nil discards them.
	Out io.Writer
}

// LoadTestResult summarizes one load-test run.
type LoadTestResult struct {
	Jobs       int
	Done       int
	Failed     int
	Requests   int
	Wall       time.Duration
	JobsPerSec float64
	ReqPerSec  float64
	P50        time.Duration
	P95        time.Duration
	Max        time.Duration
}

// loadClient is one goroutine's view of the API plus shared counters.
type loadClient struct {
	cfg    LoadTestConfig
	client *http.Client

	mu        sync.Mutex
	latencies []time.Duration
	requests  int
	done      int
	failed    int
}

func (lc *loadClient) record(d time.Duration) {
	lc.mu.Lock()
	lc.latencies = append(lc.latencies, d)
	lc.requests++
	lc.mu.Unlock()
}

func (lc *loadClient) do(method, path string, body any) (*http.Response, []byte, error) {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return nil, nil, err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, lc.cfg.BaseURL+path, rd)
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	resp, err := lc.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	lc.record(time.Since(start))
	if err != nil {
		return resp, nil, err
	}
	return resp, payload, nil
}

// runJob submits one job, polls it to completion, then exercises the
// read endpoints (status, archive, indexed query, language query, viz,
// metrics) the way an interactive archive consumer would.
func (lc *loadClient) runJob(i int) error {
	platform := []string{"Giraph", "PowerGraph", "OpenG"}[i%3]
	algorithm := []string{"BFS", "PageRank", "WCC"}[i%3]
	req := JobRequest{
		Platform:  platform,
		Algorithm: algorithm,
		Vertices:  lc.cfg.Vertices,
		Edges:     lc.cfg.Edges,
	}
	var id string
	for {
		resp, payload, err := lc.do("POST", "/jobs", req)
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			time.Sleep(50 * time.Millisecond) // bounded queue pushed back
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			return fmt.Errorf("submit: %s: %s", resp.Status, payload)
		}
		var sub submitResponse
		if err := json.Unmarshal(payload, &sub); err != nil {
			return err
		}
		id = sub.ID
		break
	}

	for {
		resp, payload, err := lc.do("GET", "/jobs/"+id, nil)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %s: %s: %s", id, resp.Status, payload)
		}
		var st JobState
		if err := json.Unmarshal(payload, &st); err != nil {
			return err
		}
		if st.Status == StatusFailed {
			return fmt.Errorf("job %s failed: %s", id, st.Error)
		}
		if st.Status == StatusDone {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	reads := []string{
		"/jobs/" + id + "/archive",
		"/jobs/" + id + "/query?mission=ProcessGraph",
		"/jobs/" + id + "/query?q=" + "duration+%3E+0.5+order+by+duration+desc+limit+5",
		"/jobs/" + id + "/viz/breakdown",
		"/metrics",
	}
	for _, path := range reads {
		resp, payload, err := lc.do("GET", path, nil)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: %s: %s", path, resp.Status, payload)
		}
		if len(payload) == 0 {
			return fmt.Errorf("GET %s: empty body", path)
		}
	}
	return nil
}

// RunLoadTest hammers a running granula-serve instance with concurrent
// jobs and archive reads, and reports client-observed throughput and
// latency. It is the -loadtest mode of cmd/granula-serve.
func RunLoadTest(cfg LoadTestConfig) (*LoadTestResult, error) {
	if cfg.Jobs < 1 {
		cfg.Jobs = 1
	}
	if cfg.Concurrency < 1 {
		cfg.Concurrency = 8
	}
	if cfg.Out == nil {
		cfg.Out = io.Discard
	}
	lc := &loadClient{cfg: cfg, client: &http.Client{Timeout: 60 * time.Second}}

	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := lc.runJob(i); err != nil {
					fmt.Fprintf(cfg.Out, "[loadtest] job %d: %v\n", i, err)
					lc.mu.Lock()
					lc.failed++
					lc.mu.Unlock()
					continue
				}
				lc.mu.Lock()
				lc.done++
				n := lc.done
				lc.mu.Unlock()
				if n%10 == 0 {
					fmt.Fprintf(cfg.Out, "[loadtest] %d/%d jobs done\n", n, cfg.Jobs)
				}
			}
		}()
	}
	for i := 0; i < cfg.Jobs; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(start)

	lc.mu.Lock()
	defer lc.mu.Unlock()
	sort.Slice(lc.latencies, func(i, j int) bool { return lc.latencies[i] < lc.latencies[j] })
	res := &LoadTestResult{
		Jobs:     cfg.Jobs,
		Done:     lc.done,
		Failed:   lc.failed,
		Requests: lc.requests,
		Wall:     wall,
	}
	if wall > 0 {
		res.JobsPerSec = float64(lc.done) / wall.Seconds()
		res.ReqPerSec = float64(lc.requests) / wall.Seconds()
	}
	if n := len(lc.latencies); n > 0 {
		res.P50 = lc.latencies[n/2]
		res.P95 = lc.latencies[n*95/100]
		res.Max = lc.latencies[n-1]
	}
	return res, nil
}

// Render formats the result for terminals.
func (r *LoadTestResult) Render() string {
	return fmt.Sprintf(
		"loadtest: %d jobs (%d done, %d failed) in %.2fs — %.1f jobs/s, %.1f req/s over %d requests\n"+
			"request latency: p50 %s  p95 %s  max %s\n",
		r.Jobs, r.Done, r.Failed, r.Wall.Seconds(), r.JobsPerSec, r.ReqPerSec, r.Requests,
		r.P50, r.P95, r.Max)
}
