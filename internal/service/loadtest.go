package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/shard"
	"repro/internal/stream"
)

// LoadTestConfig drives RunLoadTest.
type LoadTestConfig struct {
	// BaseURL is the serve endpoint, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Jobs is the total number of jobs to submit.
	Jobs int
	// Concurrency is the number of client goroutines; 0 selects 8.
	Concurrency int
	// Vertices/Edges size each job's graph; 0 selects 2000/10000.
	Vertices int64
	Edges    int64
	// Nodes sizes each job's simulated cluster; 0 selects the default
	// 8-node model. Smaller models shift the per-job cost from CPU
	// toward commit latency, which cluster benches use to isolate the
	// sharding speedup from host CPU contention.
	Nodes int
	// ReadRatio in (0,1) switches to the mixed read/write workload: the
	// configured Jobs are still all submitted, and read requests are
	// interleaved so reads make up this fraction of operations — e.g.
	// 0.9 issues nine reads per submission, the archive-consumer shape
	// the response cache is built for. 0 keeps the legacy flow (each
	// job followed by one fixed read sweep).
	ReadRatio float64
	// QueryVariants is the number of distinct query strings the mixed
	// workload draws from (Zipf-distributed, so a few queries dominate
	// the way real dashboards do); 0 selects 16.
	QueryVariants int
	// Seed makes the mixed workload's operation shuffle and query draws
	// reproducible; 0 selects 1.
	Seed int64
	// StreamRatio in [0,1] routes that fraction of jobs through the live
	// streaming path instead of /jobs: the job's events are pushed in
	// batches through POST /ingest/{id} while a concurrent SSE tail on
	// GET /watch/{id} follows them, and the report gains ingest event
	// throughput plus the batch-send-to-frame tail latency.
	StreamRatio float64
	// StreamEvents is the synthetic event count per streamed job; 0
	// selects 256.
	StreamEvents int
	// Out receives progress lines; nil discards them.
	Out io.Writer
}

// LoadTestResult summarizes one load-test run.
type LoadTestResult struct {
	Jobs       int
	Done       int
	Failed     int
	Reads      int
	Requests   int
	Wall       time.Duration
	JobsPerSec float64
	ReqPerSec  float64
	P50        time.Duration
	P95        time.Duration
	P99        time.Duration
	Max        time.Duration
	// PerShard splits the latency distribution by the serving shard when
	// the target is a cluster router (responses carry shard.ShardHeader);
	// empty against a single node. Sorted by shard ID.
	PerShard []ShardLatency
	// Streaming-mode results (StreamRatio > 0).
	Streamed     int     // jobs driven through /ingest + /watch
	IngestEvents int     // events acked by /ingest
	IngestPerSec float64 // acked events per wall-clock second
	// Tail latency: batch send to SSE frame arrival on the concurrent
	// /watch tail.
	TailP50 time.Duration
	TailP99 time.Duration
	TailMax time.Duration
}

// ShardLatency is one shard's slice of a load test.
type ShardLatency struct {
	Shard    string
	Requests int
	P50      time.Duration
	P99      time.Duration
}

// loadClient is one goroutine's view of the API plus shared counters.
type loadClient struct {
	cfg    LoadTestConfig
	client *http.Client
	// tailClient carries the long-lived SSE connections; no overall
	// timeout, since a healthy tail stays open for the whole stream.
	tailClient *http.Client

	mu           sync.Mutex
	latencies    []time.Duration
	perShard     map[string][]time.Duration // latency by serving shard
	requests     int
	done         int
	failed       int
	reads        int
	doneIDs      []string // completed job IDs, the targets of mixed reads
	streamed     int
	ingestEvents int
	tailLat      []time.Duration
}

func (lc *loadClient) jobDone(id string) {
	lc.mu.Lock()
	lc.done++
	lc.doneIDs = append(lc.doneIDs, id)
	lc.mu.Unlock()
}

func (lc *loadClient) pickDoneID(rng *rand.Rand) string {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if len(lc.doneIDs) == 0 {
		return ""
	}
	return lc.doneIDs[rng.Intn(len(lc.doneIDs))]
}

func (lc *loadClient) record(d time.Duration, shardID string) {
	lc.mu.Lock()
	lc.latencies = append(lc.latencies, d)
	lc.requests++
	if shardID != "" {
		if lc.perShard == nil {
			lc.perShard = map[string][]time.Duration{}
		}
		lc.perShard[shardID] = append(lc.perShard[shardID], d)
	}
	lc.mu.Unlock()
}

func (lc *loadClient) do(method, path string, body any) (*http.Response, []byte, error) {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return nil, nil, err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, lc.cfg.BaseURL+path, rd)
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	resp, err := lc.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	lc.record(time.Since(start), resp.Header.Get(shard.ShardHeader))
	if err != nil {
		return resp, nil, err
	}
	return resp, payload, nil
}

// submitJob submits one job and polls it to completion, returning its
// ID.
func (lc *loadClient) submitJob(i int) (string, error) {
	platform := []string{"Giraph", "PowerGraph", "OpenG"}[i%3]
	algorithm := []string{"BFS", "PageRank", "WCC"}[i%3]
	req := JobRequest{
		Platform:  platform,
		Algorithm: algorithm,
		Vertices:  lc.cfg.Vertices,
		Edges:     lc.cfg.Edges,
		Nodes:     lc.cfg.Nodes,
	}
	var id string
	for {
		resp, payload, err := lc.do("POST", "/jobs", req)
		if err != nil {
			return "", err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			time.Sleep(50 * time.Millisecond) // bounded queue pushed back
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			return "", fmt.Errorf("submit: %s: %s", resp.Status, payload)
		}
		var sub submitResponse
		if err := json.Unmarshal(payload, &sub); err != nil {
			return "", err
		}
		id = sub.ID
		break
	}

	for {
		resp, payload, err := lc.do("GET", "/jobs/"+id, nil)
		if err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("status %s: %s: %s", id, resp.Status, payload)
		}
		var st JobState
		if err := json.Unmarshal(payload, &st); err != nil {
			return "", err
		}
		if st.Status == StatusFailed {
			return "", fmt.Errorf("job %s failed: %s", id, st.Error)
		}
		if st.Status == StatusDone {
			return id, nil
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// runJob submits one job, polls it to completion, then exercises the
// read endpoints (status, archive, indexed query, language query, viz,
// metrics) the way an interactive archive consumer would.
func (lc *loadClient) runJob(i int) error {
	id, err := lc.submitJob(i)
	if err != nil {
		return err
	}

	reads := []string{
		"/jobs/" + id + "/archive",
		"/jobs/" + id + "/query?mission=ProcessGraph",
		"/jobs/" + id + "/query?q=" + "duration+%3E+0.5+order+by+duration+desc+limit+5",
		"/jobs/" + id + "/viz/breakdown",
		"/metrics",
	}
	for _, path := range reads {
		resp, payload, err := lc.do("GET", path, nil)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: %s: %s", path, resp.Status, payload)
		}
		if len(payload) == 0 {
			return fmt.Errorf("GET %s: empty body", path)
		}
	}
	return nil
}

// syntheticStream builds a well-formed event stream for one synthetic
// job: a root op with sequential worker ops under it, env samples
// sprinkled in, sealed done. Sized to roughly `events` events.
func syntheticStream(events int) []stream.Event {
	if events < 8 {
		events = 8
	}
	out := []stream.Event{{Type: stream.TypeStart, Time: 0, Op: "root", Actor: "Client", Mission: "Job"}}
	t := 0.0
	for len(out) < events-2 {
		op := fmt.Sprintf("op-%d", len(out))
		t += 0.25
		out = append(out, stream.Event{
			Type: stream.TypeStart, Time: t, Op: op, Parent: "root",
			Actor: fmt.Sprintf("Worker-%d", len(out)%4), Mission: "Superstep",
		})
		t += 0.25
		out = append(out, stream.Event{Type: stream.TypeEnd, Time: t, Op: op})
		if len(out)%16 == 0 {
			out = append(out, stream.Event{Type: stream.TypeEnv, Time: t, Node: "node-0", Kind: "cpu", Used: 0.5})
		}
	}
	t += 0.25
	out = append(out, stream.Event{Type: stream.TypeEnd, Time: t, Op: "root"})
	out = append(out, stream.Event{Type: stream.TypeSeal, Time: t, Platform: "Giraph", Algorithm: "BFS", State: stream.StateDone})
	for i := range out {
		out[i].Seq = uint64(i + 1)
	}
	return out
}

// ingestBatch pushes one event batch through POST /ingest, retrying
// backpressure (429) and degraded storage (503) — replays are
// idempotent by the stream contract. The batch's send time is recorded
// under its last sequence number for the tail-latency join.
func (lc *loadClient) ingestBatch(id string, events []stream.Event, sentAt map[uint64]time.Time) error {
	body, err := stream.EncodeEvents(events)
	if err != nil {
		return err
	}
	last := events[len(events)-1].Seq
	for {
		sentAt[last] = time.Now()
		req, err := http.NewRequest("POST", lc.cfg.BaseURL+"/ingest/"+id, bytes.NewReader(body))
		if err != nil {
			return err
		}
		start := time.Now()
		resp, err := lc.client.Do(req)
		if err != nil {
			return err
		}
		payload, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		lc.record(time.Since(start), resp.Header.Get(shard.ShardHeader))
		if rerr != nil {
			return rerr
		}
		switch resp.StatusCode {
		case http.StatusOK:
			var ack ingestResponse
			if err := json.Unmarshal(payload, &ack); err != nil {
				return err
			}
			lc.mu.Lock()
			lc.ingestEvents += ack.Accepted
			lc.mu.Unlock()
			return nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			time.Sleep(50 * time.Millisecond)
		default:
			return fmt.Errorf("ingest %s: %s: %s", id, resp.Status, payload)
		}
	}
}

// tail follows one job's SSE stream until its seal frame, recording the
// arrival time of every frame ID. ready is closed once the stream is
// attached, so the caller can hold further ingest batches until frames
// will actually be observed live.
func (lc *loadClient) tail(id string, ready chan<- struct{}) (map[uint64]time.Time, error) {
	req, err := http.NewRequest("GET", lc.cfg.BaseURL+"/watch/"+id+"?from=0", nil)
	if err != nil {
		return nil, err
	}
	resp, err := lc.tailClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		payload, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("watch %s: %s: %s", id, resp.Status, payload)
	}
	close(ready)
	at := map[uint64]time.Time{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	sealed := false
	for sc.Scan() {
		line := sc.Text()
		if v, ok := strings.CutPrefix(line, "id: "); ok {
			if seq, perr := strconv.ParseUint(v, 10, 64); perr == nil {
				at[seq] = time.Now()
			}
		} else if v, ok := strings.CutPrefix(line, "event: "); ok && v == "seal" {
			sealed = true
		} else if line == "" && sealed {
			return at, nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sealed {
		return at, fmt.Errorf("watch %s: stream ended before seal", id)
	}
	return at, nil
}

// streamJob drives one job through the live path: the first batch opens
// the stream, a concurrent SSE tail follows it, the remaining batches
// are pushed through /ingest, and each batch's send-to-frame gap on the
// tail becomes a tail-latency sample.
func (lc *loadClient) streamJob(op int) error {
	id := fmt.Sprintf("stream-%06d", op)
	events := syntheticStream(lc.cfg.StreamEvents)
	const batch = 64

	sentAt := map[uint64]time.Time{}
	// The first batch opens the stream but always holds the seal (and at
	// least one event) back, so the job is still live when the tail
	// attaches and the remaining batches are observed as real SSE frames.
	n := min(batch, len(events)-1)
	if err := lc.ingestBatch(id, events[:n], sentAt); err != nil {
		return err
	}
	type tailOut struct {
		at  map[uint64]time.Time
		err error
	}
	tailCh := make(chan tailOut, 1)
	ready := make(chan struct{})
	go func() {
		at, err := lc.tail(id, ready)
		tailCh <- tailOut{at, err}
	}()
	select {
	case <-ready:
	case out := <-tailCh:
		if out.err != nil {
			return out.err
		}
	case <-time.After(30 * time.Second):
		return fmt.Errorf("stream %s: tail never attached", id)
	}
	for off := n; off < len(events); off += batch {
		if err := lc.ingestBatch(id, events[off:min(off+batch, len(events))], sentAt); err != nil {
			return err
		}
	}
	select {
	case out := <-tailCh:
		if out.err != nil {
			return out.err
		}
		lc.mu.Lock()
		for seq, t0 := range sentAt {
			if t1, ok := out.at[seq]; ok && t1.After(t0) {
				lc.tailLat = append(lc.tailLat, t1.Sub(t0))
			}
		}
		lc.streamed++
		lc.mu.Unlock()
	case <-time.After(60 * time.Second):
		return fmt.Errorf("stream %s: tail did not reach the seal", id)
	}
	return nil
}

// queryVariant builds the i-th distinct query-language string of the
// mixed workload. The variants cover the evaluator's dimensions
// (string, numeric, depth, info predicates; sorts; limits) while each
// staying byte-stable, so Zipf repeats of a variant hit both the
// compiled-query cache and the response cache.
func queryVariant(i int) string {
	switch i % 4 {
	case 0:
		return fmt.Sprintf("duration > 0.%03d order by duration desc limit %d", (i*37)%1000, 5+i%20)
	case 1:
		return fmt.Sprintf("actor ~ \"Worker\" and depth >= %d limit %d", i%5, 10+i%50)
	case 2:
		return fmt.Sprintf("mission = \"Superstep\" and start > 0.%02d order by start", i%100)
	default:
		return fmt.Sprintf("depth = %d or duration >= 0.%02d", i%6, (i*13)%100)
	}
}

// readOnce issues one mixed-workload read: a query-language request
// against a random completed job, with the query drawn Zipf-style from
// the variant pool.
func (lc *loadClient) readOnce(rng *rand.Rand, zipf *rand.Zipf, variants int) error {
	id := lc.pickDoneID(rng)
	if id == "" {
		return fmt.Errorf("no completed job to read")
	}
	q := queryVariant(int(zipf.Uint64()) % variants)
	path := "/jobs/" + id + "/query?q=" + url.QueryEscape(q)
	resp, payload, err := lc.do("GET", path, nil)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s: %s", path, resp.Status, payload)
	}
	lc.mu.Lock()
	lc.reads++
	lc.mu.Unlock()
	return nil
}

// RunLoadTest hammers a running granula-serve instance with concurrent
// jobs and archive reads, and reports client-observed throughput and
// latency. It is the -loadtest mode of cmd/granula-serve. With
// ReadRatio set the operation mix is mostly reads (see LoadTestConfig);
// otherwise every job performs one fixed read sweep after completion.
func RunLoadTest(cfg LoadTestConfig) (*LoadTestResult, error) {
	if cfg.Jobs < 1 {
		cfg.Jobs = 1
	}
	if cfg.Concurrency < 1 {
		cfg.Concurrency = 8
	}
	if cfg.QueryVariants < 1 {
		cfg.QueryVariants = 16
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.ReadRatio < 0 || cfg.ReadRatio >= 1 {
		return nil, fmt.Errorf("service: loadtest read ratio %v outside [0,1)", cfg.ReadRatio)
	}
	if cfg.StreamRatio < 0 || cfg.StreamRatio > 1 {
		return nil, fmt.Errorf("service: loadtest stream ratio %v outside [0,1]", cfg.StreamRatio)
	}
	if cfg.StreamEvents < 1 {
		cfg.StreamEvents = 256
	}
	if cfg.Out == nil {
		cfg.Out = io.Discard
	}
	lc := &loadClient{
		cfg:        cfg,
		client:     &http.Client{Timeout: 60 * time.Second},
		tailClient: &http.Client{},
	}

	// The top nStream job indices are driven through the streaming path;
	// in mixed mode job 0 stays a normal submission so early reads always
	// have a completed executor job to target.
	nStream := int(float64(cfg.Jobs)*cfg.StreamRatio + 0.5)
	if cfg.ReadRatio > 0 && nStream >= cfg.Jobs {
		nStream = cfg.Jobs - 1
	}
	if nStream > 0 {
		fmt.Fprintf(cfg.Out, "[loadtest] streaming %d/%d jobs through /ingest + /watch (%d events each)\n",
			nStream, cfg.Jobs, cfg.StreamEvents)
	}

	// The operation schedule: every job submission, plus — in mixed mode
	// — enough reads that they make up ReadRatio of all operations,
	// shuffled deterministically. op >= 0 is a submission of job op; -1
	// is a read.
	ops := make([]int, 0, cfg.Jobs)
	// In mixed mode job 0 is submitted synchronously before the
	// schedule starts, so early reads always have a completed target.
	firstScheduled := 0
	if cfg.ReadRatio > 0 {
		firstScheduled = 1
	}
	for i := firstScheduled; i < cfg.Jobs; i++ {
		ops = append(ops, i)
	}
	if cfg.ReadRatio > 0 {
		nReads := int(float64(cfg.Jobs)*cfg.ReadRatio/(1-cfg.ReadRatio) + 0.5)
		for i := 0; i < nReads; i++ {
			ops = append(ops, -1)
		}
		rand.New(rand.NewSource(cfg.Seed)).Shuffle(len(ops), func(i, j int) {
			ops[i], ops[j] = ops[j], ops[i]
		})
		fmt.Fprintf(cfg.Out, "[loadtest] mixed workload: %d submissions, %d reads (ratio %.2f), %d query variants\n",
			cfg.Jobs, nReads, cfg.ReadRatio, cfg.QueryVariants)
	}

	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w) + 1))
			zipf := rand.NewZipf(rng, 1.3, 1, uint64(cfg.QueryVariants-1))
			for op := range work {
				switch {
				case op < 0:
					if err := lc.readOnce(rng, zipf, cfg.QueryVariants); err != nil {
						fmt.Fprintf(cfg.Out, "[loadtest] read: %v\n", err)
						lc.mu.Lock()
						lc.failed++
						lc.mu.Unlock()
					}
				case op >= cfg.Jobs-nStream:
					if err := lc.streamJob(op); err != nil {
						fmt.Fprintf(cfg.Out, "[loadtest] stream job %d: %v\n", op, err)
						lc.mu.Lock()
						lc.failed++
						lc.mu.Unlock()
						continue
					}
					// The sealed stream is a normal archived job, so it
					// joins the mixed-read target pool.
					lc.jobDone(fmt.Sprintf("stream-%06d", op))
				case cfg.ReadRatio > 0:
					id, err := lc.submitJob(op)
					if err != nil {
						fmt.Fprintf(cfg.Out, "[loadtest] job %d: %v\n", op, err)
						lc.mu.Lock()
						lc.failed++
						lc.mu.Unlock()
						continue
					}
					lc.jobDone(id)
				default:
					if err := lc.runJob(op); err != nil {
						fmt.Fprintf(cfg.Out, "[loadtest] job %d: %v\n", op, err)
						lc.mu.Lock()
						lc.failed++
						lc.mu.Unlock()
						continue
					}
					lc.jobDone("")
					lc.mu.Lock()
					n := lc.done
					lc.mu.Unlock()
					if n%10 == 0 {
						fmt.Fprintf(cfg.Out, "[loadtest] %d/%d jobs done\n", n, cfg.Jobs)
					}
				}
			}
		}(w)
	}
	if cfg.ReadRatio > 0 {
		if id, err := lc.submitJob(0); err == nil {
			lc.jobDone(id)
		} else {
			fmt.Fprintf(cfg.Out, "[loadtest] seed job: %v\n", err)
			lc.mu.Lock()
			lc.failed++
			lc.mu.Unlock()
		}
	}
	for _, op := range ops {
		work <- op
	}
	close(work)
	wg.Wait()
	wall := time.Since(start)

	lc.mu.Lock()
	defer lc.mu.Unlock()
	sort.Slice(lc.latencies, func(i, j int) bool { return lc.latencies[i] < lc.latencies[j] })
	res := &LoadTestResult{
		Jobs:     cfg.Jobs,
		Done:     lc.done,
		Failed:   lc.failed,
		Reads:    lc.reads,
		Requests: lc.requests,
		Wall:     wall,
	}
	if wall > 0 {
		res.JobsPerSec = float64(lc.done) / wall.Seconds()
		res.ReqPerSec = float64(lc.requests) / wall.Seconds()
	}
	if n := len(lc.latencies); n > 0 {
		res.P50 = lc.latencies[n/2]
		res.P95 = lc.latencies[n*95/100]
		res.P99 = lc.latencies[n*99/100]
		res.Max = lc.latencies[n-1]
	}
	res.Streamed = lc.streamed
	res.IngestEvents = lc.ingestEvents
	if wall > 0 {
		res.IngestPerSec = float64(lc.ingestEvents) / wall.Seconds()
	}
	if n := len(lc.tailLat); n > 0 {
		sort.Slice(lc.tailLat, func(i, j int) bool { return lc.tailLat[i] < lc.tailLat[j] })
		res.TailP50 = lc.tailLat[n/2]
		res.TailP99 = lc.tailLat[n*99/100]
		res.TailMax = lc.tailLat[n-1]
	}
	shards := make([]string, 0, len(lc.perShard))
	for id := range lc.perShard {
		shards = append(shards, id)
	}
	sort.Strings(shards)
	for _, id := range shards {
		ds := lc.perShard[id]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		res.PerShard = append(res.PerShard, ShardLatency{
			Shard:    id,
			Requests: len(ds),
			P50:      ds[len(ds)/2],
			P99:      ds[len(ds)*99/100],
		})
	}
	return res, nil
}

// Render formats the result for terminals.
func (r *LoadTestResult) Render() string {
	out := fmt.Sprintf(
		"loadtest: %d jobs (%d done, %d failed) in %.2fs — %.1f jobs/s, %.1f req/s over %d requests\n",
		r.Jobs, r.Done, r.Failed, r.Wall.Seconds(), r.JobsPerSec, r.ReqPerSec, r.Requests)
	if r.Reads > 0 {
		out += fmt.Sprintf("reads: %d query requests\n", r.Reads)
	}
	if r.Streamed > 0 {
		out += fmt.Sprintf("streaming: %d jobs, %d events ingested (%.0f events/s), tail latency p50 %s  p99 %s  max %s\n",
			r.Streamed, r.IngestEvents, r.IngestPerSec, r.TailP50, r.TailP99, r.TailMax)
	}
	out += fmt.Sprintf("request latency: p50 %s  p95 %s  p99 %s  max %s\n",
		r.P50, r.P95, r.P99, r.Max)
	for _, s := range r.PerShard {
		out += fmt.Sprintf("  shard %s: %d requests  p50 %s  p99 %s\n",
			s.Shard, s.Requests, s.P50, s.P99)
	}
	return out
}
