package service

import (
	"strings"
	"testing"
	"time"

	"repro/internal/query"
)

// TestQueryVariantsParse guards the mixed workload against submitting
// malformed queries: every variant the Zipf draw can select must
// compile.
func TestQueryVariantsParse(t *testing.T) {
	for i := 0; i < 256; i++ {
		q := queryVariant(i)
		if _, err := query.Parse(q); err != nil {
			t.Fatalf("variant %d %q does not parse: %v", i, q, err)
		}
	}
	// Variants must actually be distinct, or the Zipf skew is meaningless.
	seen := map[string]bool{}
	for i := 0; i < 16; i++ {
		seen[queryVariant(i)] = true
	}
	if len(seen) != 16 {
		t.Fatalf("only %d distinct variants in the first 16", len(seen))
	}
}

func TestLoadTestResultRender(t *testing.T) {
	r := &LoadTestResult{
		Jobs: 4, Done: 4, Reads: 36, Requests: 60,
		Wall: 2 * time.Second, JobsPerSec: 2, ReqPerSec: 30,
		P50: time.Millisecond, P95: 2 * time.Millisecond,
		P99: 3 * time.Millisecond, Max: 4 * time.Millisecond,
	}
	out := r.Render()
	for _, want := range []string{"reads: 36", "p99 3ms", "p50 1ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestLoadTestRejectsBadReadRatio(t *testing.T) {
	for _, ratio := range []float64{-0.5, 1, 1.5} {
		if _, err := RunLoadTest(LoadTestConfig{Jobs: 1, ReadRatio: ratio}); err == nil {
			t.Fatalf("RunLoadTest accepted read ratio %v", ratio)
		}
	}
}
