package service

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/archive"
	"repro/internal/archivedb"
)

// StorageBenchConfig drives RunStorageBench, the -storagebench mode of
// cmd/granula-serve: a self-contained measurement of the archivedb
// engine's append throughput, reopen (recovery) time, and compaction
// reclamation, using synthetic but realistically shaped archive
// payloads.
type StorageBenchConfig struct {
	// Dir is the data directory; empty selects a temp directory that
	// is removed afterwards.
	Dir string
	// Jobs is the number of archives to append; 0 selects 1000.
	Jobs int
	// OpsPerJob sizes each synthetic operation tree; 0 selects 64.
	OpsPerJob int
	// Rewrites is how many times each job is re-Put to create garbage
	// for compaction; 0 selects 2.
	Rewrites int
	// SegmentSize overrides the engine default when > 0.
	SegmentSize int64
	// Sync enables fsync-per-append (the durable default); the bench
	// defaults to no-sync so it measures the engine, not the disk.
	Sync bool
	// Out receives progress lines; nil discards them.
	Out io.Writer
}

// StorageBenchResult reports one bench run.
type StorageBenchResult struct {
	Jobs         int
	PayloadBytes int // size of one encoded payload
	Appends      int

	AppendWall    time.Duration
	AppendsPerSec float64
	AppendMBps    float64

	WALBytesBeforeCompact int64
	CompactWall           time.Duration
	ReclaimedBytes        int64
	WALBytesAfterCompact  int64

	ReopenWall      time.Duration
	ReplayedRecords int
	SnapshotRecords int
	FinalJobs       int
}

// benchJob builds a deterministic synthetic archive job whose shape
// (root → supersteps → per-worker leaves) matches what the platform
// harness emits, so payload encode/decode costs are representative.
func benchJob(id string, ops int) *archive.Job {
	root := &archive.Operation{
		ID: id + "-root", Actor: "Master", Mission: "GiraphJob",
		Start: 0, End: float64(ops),
		Infos: map[string]string{"dataset": "bench", "algorithm": "PageRank"},
	}
	for i := 0; len(flatten(root)) < ops; i++ {
		ss := &archive.Operation{
			ID: fmt.Sprintf("%s-ss-%d", id, i), Actor: "Master", Mission: "Superstep",
			Start: float64(i), End: float64(i + 1),
			Infos: map[string]string{"superstep": fmt.Sprintf("%d", i)},
		}
		for w := 0; w < 7; w++ {
			ss.Children = append(ss.Children, &archive.Operation{
				ID: fmt.Sprintf("%s-ss-%d-w-%d", id, i, w), Actor: fmt.Sprintf("Worker%d", w),
				Mission: "ProcessPartition",
				Start:   float64(i), End: float64(i) + 0.9,
				Infos: map[string]string{"messages": "12345", "vertices": "250"},
			})
		}
		root.Children = append(root.Children, ss)
	}
	return &archive.Job{ID: id, Platform: "Giraph", Root: root}
}

func flatten(op *archive.Operation) []*archive.Operation {
	var out []*archive.Operation
	op.Walk(func(o *archive.Operation) { out = append(out, o) })
	return out
}

// RunStorageBench measures append, compaction, and reopen performance
// of the storage engine, in that order, over one data directory.
func RunStorageBench(cfg StorageBenchConfig) (*StorageBenchResult, error) {
	if cfg.Jobs <= 0 {
		cfg.Jobs = 1000
	}
	if cfg.OpsPerJob <= 0 {
		cfg.OpsPerJob = 64
	}
	if cfg.Rewrites <= 0 {
		cfg.Rewrites = 2
	}
	if cfg.Out == nil {
		cfg.Out = io.Discard
	}
	dir := cfg.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "granula-storagebench-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	// Background compaction is disabled so each phase measures exactly
	// one thing: phase 1 pure appends, phase 2 one explicit compaction.
	opts := archivedb.Options{NoSync: !cfg.Sync, SegmentSize: cfg.SegmentSize, NoBackground: true}

	db, err := archivedb.Open(dir, opts)
	if err != nil {
		return nil, err
	}

	res := &StorageBenchResult{Jobs: cfg.Jobs}

	// Phase 1: append throughput. Every job is Put Rewrites+1 times;
	// the re-Puts double as the garbage generator for phase 2.
	job := benchJob("bench", cfg.OpsPerJob)
	sum := Summary{ID: "bench", Platform: "Giraph", Algorithm: "PageRank", Runtime: 1}
	payload, err := json.Marshal(persistedJob{Summary: sum, Job: job})
	if err != nil {
		db.Close()
		return nil, err
	}
	res.PayloadBytes = len(payload)
	meta := archivedb.IndexMeta{
		Missions: []string{"GiraphJob", "ProcessPartition", "Superstep"},
		Actors:   []string{"Master", "Worker0"},
		Paths:    []string{"GiraphJob", "GiraphJob/Superstep"},
	}
	fmt.Fprintf(cfg.Out, "[storagebench] appending %d jobs × %d writes (%d-byte payloads, sync=%v)\n",
		cfg.Jobs, cfg.Rewrites+1, res.PayloadBytes, cfg.Sync)
	start := time.Now()
	for round := 0; round <= cfg.Rewrites; round++ {
		for i := 0; i < cfg.Jobs; i++ {
			if err := db.Put(fmt.Sprintf("job-%06d", i), payload, meta); err != nil {
				db.Close()
				return nil, err
			}
			res.Appends++
		}
	}
	res.AppendWall = time.Since(start)
	if s := res.AppendWall.Seconds(); s > 0 {
		res.AppendsPerSec = float64(res.Appends) / s
		res.AppendMBps = float64(res.Appends) * float64(res.PayloadBytes) / s / (1 << 20)
	}

	// Phase 2: compaction. The rewrites above left all but the last
	// round as garbage.
	res.WALBytesBeforeCompact = db.Stats().WALBytes
	start = time.Now()
	if err := db.Compact(); err != nil {
		db.Close()
		return nil, err
	}
	res.CompactWall = time.Since(start)
	st := db.Stats()
	res.ReclaimedBytes = st.ReclaimedBytes
	res.WALBytesAfterCompact = st.WALBytes
	if err := db.Close(); err != nil {
		return nil, err
	}

	// Phase 3a: reopen with the snapshot Close just wrote.
	start = time.Now()
	db2, err := archivedb.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	snapOpen := time.Since(start)
	snapStats := db2.Stats()
	res.SnapshotRecords = snapStats.RecoveredFromSnapshot
	res.FinalJobs = db2.Len()
	if err := db2.Close(); err != nil {
		return nil, err
	}

	// Phase 3b: reopen with the snapshot removed — the full-WAL-replay
	// recovery path, the worst case after a crash.
	os.Remove(dir + "/snapshot.json")
	start = time.Now()
	db3, err := archivedb.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	res.ReopenWall = time.Since(start)
	res.ReplayedRecords = db3.Stats().RecoveredRecords
	if db3.Len() != res.FinalJobs {
		db3.Close()
		return nil, fmt.Errorf("storagebench: replay recovered %d jobs, snapshot recovered %d",
			db3.Len(), res.FinalJobs)
	}
	if err := db3.Close(); err != nil {
		return nil, err
	}
	fmt.Fprintf(cfg.Out, "[storagebench] snapshot reopen %s, replay reopen %s\n", snapOpen, res.ReopenWall)
	return res, nil
}

// Render formats the result for terminals.
func (r *StorageBenchResult) Render() string {
	return fmt.Sprintf(
		"storagebench: %d appends of %d-byte archives in %.2fs — %.0f appends/s, %.1f MiB/s\n"+
			"compaction: %s, reclaimed %.1f MiB (%.1f → %.1f MiB WAL)\n"+
			"recovery: full replay of %d records in %s (%d live jobs)\n",
		r.Appends, r.PayloadBytes, r.AppendWall.Seconds(), r.AppendsPerSec, r.AppendMBps,
		r.CompactWall, float64(r.ReclaimedBytes)/(1<<20),
		float64(r.WALBytesBeforeCompact)/(1<<20), float64(r.WALBytesAfterCompact)/(1<<20),
		r.ReplayedRecords, r.ReopenWall, r.FinalJobs)
}
