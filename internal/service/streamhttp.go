package service

import (
	"bytes"
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/archive"
	"repro/internal/metrics"
	"repro/internal/stream"
)

// Fault-injection points on the streaming layer.
const (
	// SiteIngest is hit at the top of POST /ingest/{id}.
	SiteIngest = "http.ingest"
	// SiteWatch is hit at the top of GET /watch/{id}.
	SiteWatch = "http.watch"
)

// liveHeader marks a response computed from a still-streaming job. The
// response-cache middleware refuses to file marked bodies: a live job's
// bytes change between requests without the store generation moving, so
// caching them would serve stale data. Once the job seals and its
// archive is published, responses lose the marker and cache normally
// under the bumped generation.
const liveHeader = "X-Granula-Live"

// maxIngestBytes caps one POST /ingest batch body (JSON lines).
const maxIngestBytes = 4 << 20

// ingestResponse acknowledges one ingest batch. State is "streaming"
// while the job is live, "sealed" when a non-done seal retired the
// stream without an archive, and "archived" once the sealed archive is
// durable and published.
type ingestResponse struct {
	JobID      string `json:"jobId"`
	Accepted   int    `json:"accepted"`
	Duplicates int    `json:"duplicates"`
	LastSeq    uint64 `json:"lastSeq"`
	State      string `json:"state"`
}

// StreamProgress is the status view of a live streamed job.
type StreamProgress struct {
	Events       int    `json:"events"`
	CompletedOps int    `json:"completedOps"`
	OpenOps      int    `json:"openOps"`
	LastSeq      uint64 `json:"lastSeq"`
}

// handleIngest serves POST /ingest/{id}: one batch of JSON-lines events
// for an in-flight job. The contract is append-only and idempotent —
// events at or below the accepted sequence are skipped, a gap is
// rejected with 409 plus the expected sequence, and the 200 ack is sent
// only after the accepted events are durable in the WAL (so a crash
// after an ack never loses them). Backpressure (full per-job buffer or
// too many live jobs) answers 429 + Retry-After.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if err := s.faults.Fail(SiteIngest); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	id := r.PathValue("id")
	r.Body = http.MaxBytesReader(w, r.Body, maxIngestBytes)
	events, err := stream.DecodeEvents(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if _, liveNow := s.streams.Get(id); !liveNow {
		if _, archived := s.store.Get(id); archived {
			// The stream was sealed and published; a client replaying its
			// last acked batch (e.g. the ack was lost) gets a terminal
			// success instead of a confusing gap error.
			writeJSON(w, http.StatusOK, ingestResponse{
				JobID: id, Duplicates: len(events), State: "archived",
			})
			return
		}
	}
	res, err := s.streams.Ingest(id, events)
	if err != nil {
		s.metrics.CountIngestRejected()
		var gap *stream.GapError
		switch {
		case errors.As(err, &gap):
			w.Header().Set("X-Granula-Expected-Seq", strconv.FormatUint(gap.Expected, 10))
			writeError(w, http.StatusConflict, "%v", err)
		case errors.Is(err, stream.ErrSealed):
			writeError(w, http.StatusConflict, "%v", err)
		case errors.Is(err, stream.ErrOverflow), errors.Is(err, stream.ErrTooManyJobs):
			s.metrics.CountShed()
			s.setRetryAfter(w)
			writeError(w, http.StatusTooManyRequests, "%v", err)
		default:
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	if res.LastSeq > 0 {
		if err := s.persistStreamTail(id); err != nil {
			// The events are applied in memory but not durable, so the
			// batch is NOT acked; the client's retry replays it (a no-op
			// in memory) and re-attempts the persist.
			s.setRetryAfter(w)
			writeError(w, http.StatusServiceUnavailable, "persist stream batch: %v", err)
			return
		}
	}
	s.metrics.CountIngestBatch(res.Accepted)
	state := "streaming"
	if j, ok := s.streams.Get(id); ok {
		if sealed, _ := j.Sealed(); sealed {
			st, ferr := s.finalizeStream(id, j)
			if ferr != nil {
				if errors.Is(ferr, ErrDegraded) {
					s.setRetryAfter(w)
					writeError(w, http.StatusServiceUnavailable, "%v", ferr)
				} else {
					// The stream cannot assemble into a valid archive;
					// retire it so the client is not stuck retrying.
					s.dropStream(id)
					writeError(w, http.StatusUnprocessableEntity, "seal rejected: %v", ferr)
				}
				return
			}
			state = st
		}
	}
	writeJSON(w, http.StatusOK, ingestResponse{
		JobID: id, Accepted: res.Accepted, Duplicates: res.Duplicates,
		LastSeq: res.LastSeq, State: state,
	})
}

// persistStreamTail makes every accepted event of a live job durable up
// to its current high-water mark, appending one stream-batch WAL record
// covering (durable, lastSeq]. Concurrent callers may persist
// overlapping tails under different keys; recovery replay is idempotent
// so overlap is harmless.
func (s *Server) persistStreamTail(id string) error {
	s.durableMu.Lock()
	have := s.durable[id]
	s.durableMu.Unlock()
	j, ok := s.streams.Get(id)
	if !ok {
		return nil
	}
	evs := j.EventsAfter(have)
	if len(evs) == 0 {
		return nil
	}
	last := evs[len(evs)-1].Seq
	payload, err := stream.EncodeEvents(evs)
	if err != nil {
		return err
	}
	if err := s.store.AppendStreamBatch(id, last, payload); err != nil {
		return err
	}
	s.durableMu.Lock()
	if s.durable[id] < last {
		s.durable[id] = last
	}
	s.durableMu.Unlock()
	return nil
}

// finalizeStream retires a sealed live job. A done seal assembles the
// stream into an archive through the batch pipeline and publishes it
// (write-through, so once Put returns the archive is durable and the
// redundant stream batches can go); failed/canceled seals retire the
// stream without an archive. Returns the terminal ingest state.
func (s *Server) finalizeStream(id string, j *stream.Job) (string, error) {
	_, sealState := j.Sealed()
	if sealState == stream.StateDone {
		job, err := j.BuildArchive()
		if err != nil {
			return "", err
		}
		_, algorithm := j.Meta()
		if err := s.store.Put(job, streamSummary(job, algorithm)); err != nil {
			return "", err
		}
		s.dropStream(id)
		return "archived", nil
	}
	s.dropStream(id)
	return "sealed", nil
}

// dropStream removes a job's live state, its durable stream batches,
// and its durability bookkeeping.
func (s *Server) dropStream(id string) {
	s.store.DeleteStreamBatches(id)
	s.streams.Remove(id)
	s.durableMu.Lock()
	delete(s.durable, id)
	s.durableMu.Unlock()
}

// streamSummary condenses an externally streamed archive into the
// status summary. Unlike executor jobs there is no platforms.Output to
// read, so the counts come from the assembled tree and the breakdown
// from the domain annotation (zero for free-form trees the model does
// not cover).
func streamSummary(job *archive.Job, algorithm string) Summary {
	sum := Summary{ID: job.ID, Platform: job.Platform, Algorithm: algorithm}
	if job.Root != nil {
		job.Root.Walk(func(op *archive.Operation) {
			sum.Operations++
			if op.Mission == "Superstep" {
				sum.Supersteps++
			}
		})
		sum.Runtime = job.Root.Duration()
	}
	if bd, err := metrics.AnnotateDomainBreakdown(job); err == nil {
		sum.SetupPercent = bd.SetupPercent()
		sum.IOPercent = bd.IOPercent()
		sum.ProcessingPercent = bd.ProcessingPercent()
	}
	return sum
}

// recoverStreams replays the acked ingest batches found in the WAL at
// startup: jobs whose archive already exists drop their now-redundant
// batches; everything else is folded back into live jobs (re-tailable
// and re-ingestable exactly where the stream left off), and jobs that
// were sealed but not yet published complete their publish. Corrupt or
// stale batch sets are discarded — they were never acked as archives.
func (s *Server) recoverStreams() {
	batches := s.store.RecoveredStreamBatches()
	if len(batches) == 0 {
		return
	}
	// Batches arrive sorted by (job, lastSeq); walk one job at a time.
	for i := 0; i < len(batches); {
		id := batches[i].JobID
		jEnd := i
		for jEnd < len(batches) && batches[jEnd].JobID == id {
			jEnd++
		}
		group := batches[i:jEnd]
		i = jEnd

		if _, archived := s.store.Get(id); archived {
			s.store.DeleteStreamBatches(id)
			continue
		}
		replayOK := true
		for _, b := range group {
			events, err := stream.DecodeEvents(bytes.NewReader(b.Payload))
			if err != nil {
				replayOK = false
				break
			}
			if _, err := s.streams.Ingest(id, events); err != nil {
				replayOK = false
				break
			}
		}
		j, live := s.streams.Get(id)
		if !replayOK || !live {
			s.dropStream(id)
			continue
		}
		s.durableMu.Lock()
		s.durable[id] = j.LastSeq()
		s.durableMu.Unlock()
		if sealed, _ := j.Sealed(); sealed {
			// Crash landed between the seal's durability and the archive
			// publish; finish the publish now. A failure leaves the job
			// live and sealed, retried on the client's next ingest.
			s.finalizeStream(id, j) //nolint:errcheck
		}
	}
}

// pollResponse is one long-poll batch: the events past the client's
// cursor (raw, not windowed), the new cursor to pass back as ?from=,
// and whether the stream has sealed (sealed + an empty batch means the
// client has everything and can stop polling).
type pollResponse struct {
	JobID   string         `json:"jobId"`
	Count   int            `json:"count"`
	Events  []stream.Event `json:"events"`
	LastSeq uint64         `json:"lastSeq"`
	Sealed  bool           `json:"sealed"`
	State   string         `json:"state"`
}

// defaultPollWait bounds how long a long-poll request parks waiting for
// new events before answering an empty batch.
const defaultPollWait = 10 * time.Second

// handleWatchPoll serves GET /watch/{id}?poll=1: the long-poll
// fallback to the SSE tail. The client passes its cursor via ?from=
// (or Last-Event-ID, same as SSE) and gets back every event after it;
// with nothing new yet the request parks up to ?wait= (default 10 s,
// capped at 60) and answers an empty batch on timeout, which the
// client just re-polls. Already-archived jobs answer a terminal sealed
// batch immediately.
func (s *Server) handleWatchPoll(w http.ResponseWriter, r *http.Request, id string) {
	var from uint64
	if lei := r.Header.Get("Last-Event-ID"); lei != "" {
		v, err := strconv.ParseUint(lei, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad Last-Event-ID %q", lei)
			return
		}
		from = v
	} else if fq := r.URL.Query().Get("from"); fq != "" {
		v, err := strconv.ParseUint(fq, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad from %q", fq)
			return
		}
		from = v
	}
	wait := defaultPollWait
	if wq := r.URL.Query().Get("wait"); wq != "" {
		d, err := time.ParseDuration(wq)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad wait %q: %v", wq, err)
			return
		}
		if d < 0 {
			writeError(w, http.StatusBadRequest, "wait must not be negative")
			return
		}
		if d > time.Minute {
			d = time.Minute
		}
		wait = d
	}

	live, ok := s.streams.Get(id)
	if !ok {
		if sj, archived := s.store.Get(id); archived {
			// Terminal answer: the job sealed and published before this
			// poll; hand the client the same closing fact the SSE tail
			// would, so its loop terminates.
			s.metrics.CountWatch()
			writeJSON(w, http.StatusOK, pollResponse{
				JobID: id, Count: 1, Events: []stream.Event{{
					Type: stream.TypeSeal, Time: sj.Summary.Runtime,
					Platform: sj.Summary.Platform, Algorithm: sj.Summary.Algorithm,
					State: stream.StateDone,
				}}, Sealed: true, State: "archived",
			})
			return
		}
		if st, known := s.exec.State(id); known {
			writeError(w, http.StatusConflict, "job %q is %s, not streaming", id, st.Status)
		} else {
			writeError(w, http.StatusNotFound, "no job %q", id)
		}
		return
	}

	s.metrics.CountWatch()
	sub := live.Subscribe()
	defer live.Unsubscribe(sub)
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		evs := live.EventsAfter(from)
		sealed, _ := live.Sealed()
		if len(evs) > 0 || sealed || wait == 0 {
			lastSeq := from
			if len(evs) > 0 {
				lastSeq = evs[len(evs)-1].Seq
			}
			if evs == nil {
				evs = []stream.Event{}
			}
			state := "streaming"
			if sealed {
				state = "sealed"
			}
			w.Header().Set(liveHeader, "1")
			writeJSON(w, http.StatusOK, pollResponse{
				JobID: id, Count: len(evs), Events: evs,
				LastSeq: lastSeq, Sealed: sealed, State: state,
			})
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-deadline.C:
			w.Header().Set(liveHeader, "1")
			writeJSON(w, http.StatusOK, pollResponse{
				JobID: id, Events: []stream.Event{}, LastSeq: from, State: "streaming",
			})
			return
		case <-sub:
		}
	}
}

// handleWatch serves GET /watch/{id}: a Server-Sent-Events tail of a
// live job's stream. Frame IDs carry the event sequence number, so a
// dropped client resumes exactly with Last-Event-ID (or ?from=seq).
// With ?window=1s the tail switches to windowed aggregation: one frame
// per closed event-time window carrying op counts and per-mission phase
// durations, whose frame ID is the last folded sequence (resume works
// the same way). Idle connections get comment heartbeats. Watching an
// already archived job yields a single seal frame.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	if err := s.faults.Fail(SiteWatch); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	id := r.PathValue("id")
	if r.URL.Query().Get("poll") == "1" {
		// Long-poll fallback for clients (and intermediaries) that cannot
		// hold an SSE stream open: one buffered JSON batch per request.
		s.handleWatchPoll(w, r, id)
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}

	var width float64
	if wq := r.URL.Query().Get("window"); wq != "" {
		d, err := time.ParseDuration(wq)
		if err != nil {
			// Also accept a bare float in seconds.
			secs, ferr := strconv.ParseFloat(wq, 64)
			if ferr != nil {
				writeError(w, http.StatusBadRequest, "bad window %q: %v", wq, err)
				return
			}
			d = time.Duration(secs * float64(time.Second))
		}
		if d <= 0 {
			writeError(w, http.StatusBadRequest, "window must be positive")
			return
		}
		width = d.Seconds()
	}
	var from uint64
	if lei := r.Header.Get("Last-Event-ID"); lei != "" {
		v, err := strconv.ParseUint(lei, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad Last-Event-ID %q", lei)
			return
		}
		from = v
	} else if fq := r.URL.Query().Get("from"); fq != "" {
		v, err := strconv.ParseUint(fq, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad from %q", fq)
			return
		}
		from = v
	}

	sseHeaders := func() {
		h := w.Header()
		h.Set("Content-Type", "text/event-stream")
		h.Set("Cache-Control", "no-store")
		h.Set("Connection", "keep-alive")
		h.Set(liveHeader, "1")
	}

	live, ok := s.streams.Get(id)
	if !ok {
		if sj, archived := s.store.Get(id); archived {
			// The job already sealed and published; answer the tail's only
			// remaining fact so late watchers terminate cleanly.
			s.metrics.CountWatch()
			sseHeaders()
			w.WriteHeader(http.StatusOK)
			stream.WriteFrame(w, 0, "seal", stream.Event{ //nolint:errcheck
				Type: stream.TypeSeal, Time: sj.Summary.Runtime,
				Platform: sj.Summary.Platform, Algorithm: sj.Summary.Algorithm,
				State: stream.StateDone,
			})
			return
		}
		if st, known := s.exec.State(id); known {
			writeError(w, http.StatusConflict, "job %q is %s, not streaming", id, st.Status)
		} else {
			writeError(w, http.StatusNotFound, "no job %q", id)
		}
		return
	}

	s.metrics.CountWatch()
	sseHeaders()
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	sub := live.Subscribe()
	defer live.Unsubscribe(sub)
	var agg *stream.WindowAgg
	if width > 0 {
		agg = stream.NewWindowAgg(width)
	}
	hb := time.NewTicker(s.heartbeat)
	defer hb.Stop()
	cursor := from
	for {
		evs := live.EventsAfter(cursor)
		for _, e := range evs {
			cursor = e.Seq
			if agg == nil {
				if err := stream.WriteFrame(w, e.Seq, stream.EventFrameName(e), e); err != nil {
					return
				}
				continue
			}
			for _, win := range agg.Feed(e) {
				if err := stream.WriteFrame(w, win.LastSeq, "window", win); err != nil {
					return
				}
			}
			if e.Type == stream.TypeSeal {
				if win := agg.Flush(); win != nil {
					if err := stream.WriteFrame(w, win.LastSeq, "window", *win); err != nil {
						return
					}
				}
				if err := stream.WriteFrame(w, e.Seq, "seal", e); err != nil {
					return
				}
			}
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
		if sealed, _ := live.Sealed(); sealed && cursor >= live.LastSeq() {
			return
		}
		if cur, stillLive := s.streams.Get(id); !stillLive || cur != live {
			// Removed (archived or abandoned) with nothing left to send.
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-sub:
		case <-hb.C:
			if err := stream.WriteHeartbeat(w); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}
