package service

import (
	"context"
	"testing"
	"time"
)

// smallRequest is a fast-running request for executor tests.
func smallRequest(platform, algorithm string) JobRequest {
	return JobRequest{
		Platform: platform, Algorithm: algorithm,
		Vertices: 1500, Edges: 8000, Seed: 21,
	}
}

func waitTerminal(t *testing.T, e *Executor, id string) JobState {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := e.State(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		switch st.Status {
		case StatusDone, StatusFailed, StatusCanceled:
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobState{}
}

func TestExecutorRunsJob(t *testing.T) {
	store := NewStore()
	e := NewExecutor(2, 8, store, nil)
	defer e.Shutdown(context.Background())

	id, err := e.Submit(smallRequest("Giraph", "BFS"))
	if err != nil {
		t.Fatal(err)
	}
	if id != "job-0001" {
		t.Fatalf("assigned ID %q, want job-0001", id)
	}
	st := waitTerminal(t, e, id)
	if st.Status != StatusDone {
		t.Fatalf("status %s (%s), want done", st.Status, st.Error)
	}
	if st.Summary == nil || st.Summary.Runtime <= 0 || st.Summary.Operations == 0 {
		t.Fatalf("bad summary: %+v", st.Summary)
	}
	if _, ok := store.Get(id); !ok {
		t.Fatalf("done job %s not in store", id)
	}
	// Defaults are recorded on the request.
	if st.Request.GraphKind != "social" || st.Request.Iterations != 10 {
		t.Fatalf("defaults not applied: %+v", st.Request)
	}
}

func TestExecutorRecordsFailure(t *testing.T) {
	e := NewExecutor(1, 4, NewStore(), nil)
	defer e.Shutdown(context.Background())

	id, err := e.Submit(smallRequest("NoSuchPlatform", "BFS"))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, e, id)
	if st.Status != StatusFailed || st.Error == "" {
		t.Fatalf("status %s error %q, want failed with message", st.Status, st.Error)
	}
}

func TestExecutorValidatesRequests(t *testing.T) {
	e := NewExecutor(1, 4, NewStore(), nil)
	defer e.Shutdown(context.Background())

	bad := []JobRequest{
		{},
		{Platform: "Giraph"},
		{Platform: "Giraph", Algorithm: "BFS", GraphKind: "nope"},
		{Platform: "Giraph", Algorithm: "BFS", Vertices: -1},
	}
	for i, req := range bad {
		if _, err := e.Submit(req); err == nil {
			t.Fatalf("case %d: bad request accepted", i)
		}
	}
	// Duplicate IDs are rejected.
	req := smallRequest("Giraph", "BFS")
	req.ID = "dup"
	if _, err := e.Submit(req); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(req); err == nil {
		t.Fatal("duplicate job ID accepted")
	}
}

func TestExecutorQueueBound(t *testing.T) {
	// Zero workers is clamped to one; stall it with a big job so the
	// 1-slot queue fills.
	e := NewExecutor(1, 1, NewStore(), nil)
	defer e.Shutdown(context.Background())

	big := JobRequest{Platform: "Giraph", Algorithm: "PageRank", Vertices: 60_000, Edges: 300_000}
	if _, err := e.Submit(big); err != nil {
		t.Fatal(err)
	}
	// Fill the queue, then expect ErrQueueFull. The first submit may
	// be picked up immediately, so allow one extra.
	full := false
	for i := 0; i < 3; i++ {
		if _, err := e.Submit(smallRequest("Giraph", "BFS")); err == ErrQueueFull {
			full = true
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !full {
		t.Fatal("queue never reported full")
	}
}

func TestExecutorCancelQueued(t *testing.T) {
	e := NewExecutor(1, 8, NewStore(), nil)
	defer e.Shutdown(context.Background())

	// Occupy the single worker, then queue a victim.
	if _, err := e.Submit(JobRequest{Platform: "Giraph", Algorithm: "PageRank", Vertices: 60_000, Edges: 300_000}); err != nil {
		t.Fatal(err)
	}
	victim, err := e.Submit(smallRequest("Giraph", "BFS"))
	if err != nil {
		t.Fatal(err)
	}
	if !e.Cancel(victim) {
		st, _ := e.State(victim)
		t.Fatalf("could not cancel queued job (status %s)", st.Status)
	}
	st := waitTerminal(t, e, victim)
	if st.Status != StatusCanceled {
		t.Fatalf("status %s, want canceled", st.Status)
	}
	if e.Cancel(victim) {
		t.Fatal("cancel of a canceled job should fail")
	}
	if e.Cancel("ghost") {
		t.Fatal("cancel of an unknown job should fail")
	}
}

func TestExecutorShutdownDrains(t *testing.T) {
	store := NewStore()
	e := NewExecutor(2, 16, store, nil)

	var ids []string
	for i := 0; i < 6; i++ {
		id, err := e.Submit(smallRequest([]string{"Giraph", "PowerGraph", "OpenG"}[i%3], "BFS"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		st, _ := e.State(id)
		if st.Status != StatusDone {
			t.Fatalf("after drain, job %s is %s (%s)", id, st.Status, st.Error)
		}
	}
	if store.Len() != len(ids) {
		t.Fatalf("store has %d jobs after drain, want %d", store.Len(), len(ids))
	}
	// Submissions after shutdown are refused; double shutdown is a no-op.
	if _, err := e.Submit(smallRequest("Giraph", "BFS")); err == nil {
		t.Fatal("submit after shutdown accepted")
	}
	if err := e.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestExecutorShutdownDeadlineCancelsQueued(t *testing.T) {
	e := NewExecutor(1, 16, NewStore(), nil)

	// One slow job holds the worker; the rest wait in the queue.
	if _, err := e.Submit(JobRequest{Platform: "Giraph", Algorithm: "PageRank", Vertices: 60_000, Edges: 300_000}); err != nil {
		t.Fatal(err)
	}
	var queued []string
	for i := 0; i < 4; i++ {
		id, err := e.Submit(smallRequest("Giraph", "BFS"))
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := e.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	canceled := 0
	for _, id := range queued {
		if st, _ := e.State(id); st.Status == StatusCanceled {
			canceled++
		}
	}
	if canceled == 0 {
		t.Fatal("expired drain should cancel at least one queued job")
	}
}

func TestExecutorStatesOrder(t *testing.T) {
	e := NewExecutor(2, 16, NewStore(), nil)
	defer e.Shutdown(context.Background())
	for i := 0; i < 4; i++ {
		if _, err := e.Submit(smallRequest("OpenG", "BFS")); err != nil {
			t.Fatal(err)
		}
	}
	states := e.States()
	if len(states) != 4 {
		t.Fatalf("States returned %d, want 4", len(states))
	}
	for i, st := range states {
		if want := []string{"job-0001", "job-0002", "job-0003", "job-0004"}[i]; st.ID != want {
			t.Fatalf("states[%d] = %s, want %s", i, st.ID, want)
		}
	}
}
