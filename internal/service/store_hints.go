package service

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/archivedb"
	"repro/internal/shard"
)

// hintKeyPrefix namespaces the archivedb records that journal hinted
// handoff: replica writes that missed their target and count toward
// the sloppy write quorum as durable hints. Like streamKeyPrefix, '~'
// keeps the namespace disjoint from every job ID the API accepts, so
// hints ride the same WAL (and the same group commit, fsync, and
// recovery path) as the archives they carry.
const hintKeyPrefix = "~hint/"

// hintKey builds the archivedb key for one journaled hint. Target
// shard IDs cannot contain '/' (ParseNodes rejects them in URLs form
// "id=url" and IDs are plain tokens), so the first slash after the
// prefix splits target from job ID even when the job ID itself has
// slashes.
func hintKey(target, id string) string {
	return hintKeyPrefix + target + "/" + id
}

// parseHintKey inverts hintKey.
func parseHintKey(key string) (target, id string, ok bool) {
	rest := strings.TrimPrefix(key, hintKeyPrefix)
	if rest == key {
		return "", "", false
	}
	i := strings.Index(rest, "/")
	if i <= 0 || i == len(rest)-1 {
		return "", "", false
	}
	return rest[:i], rest[i+1:], true
}

// AppendHint journals one missed replica write durably, implementing
// shard.HintJournal. The hint takes the same breaker-guarded WAL write
// path as archives — an acked hint survives a crash, which is what
// lets it count toward the write quorum. A hint for the same
// (target, id) is superseded when the new version is equal or newer;
// an older version is silently dropped (the journal already holds a
// strictly better hint).
func (s *Store) AppendHint(rec shard.HintRecord) error {
	buf, err := shard.EncodeHintRecord(rec)
	if err != nil {
		return err
	}
	s.mu.RLock()
	cur, have := s.hints[rec.Target][rec.ID]
	s.mu.RUnlock()
	if have && cur.Version > rec.Version {
		return nil
	}
	if s.db != nil {
		if !s.breaker.Allow() {
			return ErrDegraded
		}
		if err := s.db.Put(hintKey(rec.Target, rec.ID), buf, archivedb.IndexMeta{}); err != nil {
			s.breaker.Failure()
			return err
		}
		s.breaker.Success()
	}
	s.mu.Lock()
	if s.hints[rec.Target] == nil {
		s.hints[rec.Target] = map[string]shard.HintRecord{}
	}
	if old, ok := s.hints[rec.Target][rec.ID]; !ok || old.Version <= rec.Version {
		s.hints[rec.Target][rec.ID] = rec
	}
	s.mu.Unlock()
	return nil
}

// HintTargets lists the peers with pending hints, sorted.
func (s *Store) HintTargets() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.hints))
	for t, m := range s.hints {
		if len(m) > 0 {
			out = append(out, t)
		}
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// PendingHints returns the journaled hints for one target, sorted by
// job ID so replay order is deterministic.
func (s *Store) PendingHints(target string) ([]shard.HintRecord, error) {
	s.mu.RLock()
	out := make([]shard.HintRecord, 0, len(s.hints[target]))
	for _, rec := range s.hints[target] {
		out = append(out, rec)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// DeleteHint removes a delivered hint. A journaled version newer than
// the delivered one is kept — it still needs replaying.
func (s *Store) DeleteHint(target, id string, version uint64) error {
	s.mu.Lock()
	cur, have := s.hints[target][id]
	if have && cur.Version > version {
		s.mu.Unlock()
		return nil
	}
	if have {
		delete(s.hints[target], id)
		if len(s.hints[target]) == 0 {
			delete(s.hints, target)
		}
	}
	s.mu.Unlock()
	if !have || s.db == nil {
		return nil
	}
	return s.db.Delete(hintKey(target, id))
}

// HintCount returns the total pending hints across targets.
func (s *Store) HintCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, m := range s.hints {
		n += len(m)
	}
	return n
}

// Digest returns the store's (jobID, version) set sorted by ID,
// implementing shard.LocalReplicaStore for the anti-entropy sweep.
func (s *Store) Digest() []shard.DigestEntry {
	s.mu.RLock()
	out := make([]shard.DigestEntry, 0, len(s.versions))
	for id, v := range s.versions {
		if v == 0 {
			v = 1
		}
		out = append(out, shard.DigestEntry{ID: id, Version: v})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ExportRecord returns the exact persisted bytes for one job as a
// replica record, implementing shard.LocalReplicaStore.
func (s *Store) ExportRecord(id string) (shard.ReplicaRecord, bool, error) {
	payload, version, ok, err := s.Export(id)
	if err != nil || !ok {
		return shard.ReplicaRecord{}, ok, err
	}
	return shard.ReplicaRecord{ID: id, Version: version, Payload: payload}, true, nil
}

// ApplyRecord applies a record idempotently by (ID, version),
// implementing shard.LocalReplicaStore.
func (s *Store) ApplyRecord(rec shard.ReplicaRecord) error {
	if rec.ID == "" || len(rec.Payload) == 0 {
		return fmt.Errorf("service: apply record: missing id or payload")
	}
	return s.ApplyReplica(rec.ID, rec.Version, rec.Payload)
}
