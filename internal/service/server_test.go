package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestServer wires a full service stack on an httptest server.
func newTestServer(t *testing.T, workers, queueCap int) (*httptest.Server, *Executor, *Store) {
	t.Helper()
	store := NewStore()
	metrics := NewMetrics()
	exec := NewExecutor(workers, queueCap, store, metrics)
	srv := NewServer(exec, store, metrics)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		exec.Shutdown(context.Background())
	})
	return ts, exec, store
}

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func httpPost(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, payload
}

// submitAndWait submits a request over HTTP and polls until done.
func submitAndWait(t *testing.T, base string, req JobRequest) string {
	t.Helper()
	code, payload := httpPost(t, base+"/jobs", req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", code, payload)
	}
	var sub submitResponse
	if err := json.Unmarshal(payload, &sub); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, payload := httpGet(t, base+"/jobs/"+sub.ID)
		if code != http.StatusOK {
			t.Fatalf("status: %d: %s", code, payload)
		}
		var st JobState
		if err := json.Unmarshal(payload, &st); err != nil {
			t.Fatal(err)
		}
		if st.Status == StatusDone {
			return sub.ID
		}
		if st.Status == StatusFailed || st.Status == StatusCanceled {
			t.Fatalf("job %s: %s (%s)", sub.ID, st.Status, st.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", sub.ID)
	return ""
}

// TestServerConcurrentJobs is the acceptance-criteria test: ≥8 jobs
// submitted concurrently through the HTTP API, executed by a bounded
// pool, all archived and queryable. Run under -race it also proves the
// store and executor are race-clean.
func TestServerConcurrentJobs(t *testing.T) {
	ts, _, store := newTestServer(t, 4, 32)

	const n = 10
	var wg sync.WaitGroup
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := smallRequest([]string{"Giraph", "PowerGraph", "OpenG"}[i%3], "BFS")
			req.ID = fmt.Sprintf("conc-%02d", i)
			ids[i] = submitAndWait(t, ts.URL, req)
		}(i)
	}
	wg.Wait()

	if store.Len() != n {
		t.Fatalf("store has %d jobs, want %d", store.Len(), n)
	}
	for _, id := range ids {
		code, payload := httpGet(t, ts.URL+"/jobs/"+id+"/query?mission=ProcessGraph")
		if code != http.StatusOK {
			t.Fatalf("query %s: %d: %s", id, code, payload)
		}
		var qr queryResponse
		if err := json.Unmarshal(payload, &qr); err != nil {
			t.Fatal(err)
		}
		if qr.Count == 0 {
			t.Fatalf("job %s has no ProcessGraph operation", id)
		}
	}
	// The list endpoint sees all of them, in submission order.
	code, payload := httpGet(t, ts.URL+"/jobs")
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	var list listResponse
	if err := json.Unmarshal(payload, &list); err != nil {
		t.Fatal(err)
	}
	if list.Count != n {
		t.Fatalf("list has %d jobs, want %d", list.Count, n)
	}
}

func TestServerDeterministicResponses(t *testing.T) {
	ts, _, _ := newTestServer(t, 2, 8)
	id := submitAndWait(t, ts.URL, smallRequest("Giraph", "BFS"))

	for _, path := range []string{
		"/jobs/" + id,
		"/jobs/" + id + "/archive",
		"/jobs/" + id + "/query?mission=Compute",
		"/jobs/" + id + "/query?q=duration+>+0.1+order+by+duration+desc+limit+10",
		"/jobs",
	} {
		_, first := httpGet(t, ts.URL+path)
		_, second := httpGet(t, ts.URL+path)
		if !bytes.Equal(first, second) {
			t.Fatalf("GET %s is not byte-stable across calls", path)
		}
	}

	// The same spec on a fresh service yields the identical archive:
	// the simulation, the store, and the JSON encoding are all
	// deterministic.
	ts2, _, _ := newTestServer(t, 2, 8)
	id2 := submitAndWait(t, ts2.URL, smallRequest("Giraph", "BFS"))
	_, a1 := httpGet(t, ts.URL+"/jobs/"+id+"/archive")
	_, a2 := httpGet(t, ts2.URL+"/jobs/"+id2+"/archive")
	// Neutralize the assigned job IDs, which depend on submission order.
	b1 := strings.ReplaceAll(string(a1), id, "X")
	b2 := strings.ReplaceAll(string(a2), id2, "X")
	if b1 != b2 {
		t.Fatal("identical specs produced different archives across service instances")
	}
}

func TestServerQueryEndpoints(t *testing.T) {
	ts, _, store := newTestServer(t, 2, 8)
	id := submitAndWait(t, ts.URL, smallRequest("Giraph", "BFS"))
	sj, _ := store.Get(id)

	// Indexed selectors agree with the query language.
	code, payload := httpGet(t, ts.URL+"/jobs/"+id+"/query?q=mission+=+Superstep")
	if code != http.StatusOK {
		t.Fatalf("q: %d: %s", code, payload)
	}
	var viaQ queryResponse
	json.Unmarshal(payload, &viaQ)
	_, payload = httpGet(t, ts.URL+"/jobs/"+id+"/query?mission=Superstep")
	var viaIndex queryResponse
	json.Unmarshal(payload, &viaIndex)
	if viaQ.Count == 0 || viaQ.Count != viaIndex.Count {
		t.Fatalf("q found %d supersteps, index found %d", viaQ.Count, viaIndex.Count)
	}

	// Path selector.
	_, payload = httpGet(t, ts.URL+"/jobs/"+id+"/query?path=GiraphJob/ProcessGraph/Superstep")
	var viaPath queryResponse
	json.Unmarshal(payload, &viaPath)
	if viaPath.Count != viaIndex.Count {
		t.Fatalf("path found %d, mission found %d", viaPath.Count, viaIndex.Count)
	}

	// Actor selector returns that actor's ops.
	actors := sj.Actors()
	if len(actors) == 0 {
		t.Fatal("no actors")
	}
	_, payload = httpGet(t, ts.URL+"/jobs/"+id+"/query?actor="+actors[0])
	var viaActor queryResponse
	json.Unmarshal(payload, &viaActor)
	if viaActor.Count != len(sj.ByActor(actors[0])) {
		t.Fatalf("actor query returned %d, index has %d", viaActor.Count, len(sj.ByActor(actors[0])))
	}

	// Operation views carry paths and durations.
	if op := viaPath.Operations[0]; op.Path != "GiraphJob/ProcessGraph/Superstep" || op.Duration <= 0 {
		t.Fatalf("bad operation view: %+v", op)
	}

	// Selector errors.
	if code, _ := httpGet(t, ts.URL+"/jobs/"+id+"/query"); code != http.StatusBadRequest {
		t.Fatalf("no selector: %d, want 400", code)
	}
	if code, _ := httpGet(t, ts.URL+"/jobs/"+id+"/query?mission=A&actor=B"); code != http.StatusBadRequest {
		t.Fatalf("two selectors: %d, want 400", code)
	}
	if code, _ := httpGet(t, ts.URL+"/jobs/"+id+"/query?q=bogus+%3D%3D"); code != http.StatusBadRequest {
		t.Fatalf("bad query: %d, want 400", code)
	}
}

func TestServerVizEndpoints(t *testing.T) {
	ts, _, _ := newTestServer(t, 2, 8)
	id := submitAndWait(t, ts.URL, smallRequest("Giraph", "BFS"))

	cases := []struct {
		kind, contentType, marker string
	}{
		{"breakdown", "image/svg+xml", "<svg"},
		{"cpu", "image/svg+xml", "<svg"},
		{"gantt", "image/svg+xml", "<svg"},
		{"tree", "text/plain", "GiraphJob"},
		{"report", "text/html", "<html"},
	}
	for _, c := range cases {
		resp, err := http.Get(ts.URL + "/jobs/" + id + "/viz/" + c.kind)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("viz/%s: %d", c.kind, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, c.contentType) {
			t.Fatalf("viz/%s content type %q, want prefix %q", c.kind, ct, c.contentType)
		}
		if !strings.Contains(string(body), c.marker) {
			t.Fatalf("viz/%s lacks %q", c.kind, c.marker)
		}
	}
	if code, _ := httpGet(t, ts.URL+"/jobs/"+id+"/viz/nope"); code != http.StatusNotFound {
		t.Fatal("unknown viz kind should 404")
	}
}

func TestServerDiff(t *testing.T) {
	ts, _, _ := newTestServer(t, 2, 8)
	// Same graph, different worker counts — a real performance delta.
	base := smallRequest("Giraph", "BFS")
	base.ID = "baseline"
	cur := smallRequest("Giraph", "BFS")
	cur.ID = "current"
	cur.Nodes = 2
	submitAndWait(t, ts.URL, base)
	submitAndWait(t, ts.URL, cur)

	code, payload := httpPost(t, ts.URL+"/diff", DiffRequest{BaselineID: "baseline", CurrentID: "current"})
	if code != http.StatusOK {
		t.Fatalf("diff: %d: %s", code, payload)
	}
	var dr DiffResponse
	if err := json.Unmarshal(payload, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.JobID != "current" || dr.BaselineMakespan <= 0 || dr.CurrentMakespan <= 0 {
		t.Fatalf("bad diff response: %+v", dr)
	}
	// Halving the cluster must move the makespan and produce findings.
	if dr.MakespanChange == 0 || len(dr.Findings) == 0 {
		t.Fatalf("2-node vs 8-node run produced no findings: %+v", dr)
	}

	// A job diffed against itself passes clean.
	code, payload = httpPost(t, ts.URL+"/diff", DiffRequest{BaselineID: "baseline", CurrentID: "baseline"})
	if code != http.StatusOK {
		t.Fatalf("self-diff: %d", code)
	}
	json.Unmarshal(payload, &dr)
	if !dr.Pass || len(dr.Findings) != 0 {
		t.Fatalf("self-diff should pass clean: %+v", dr)
	}

	// Unknown job IDs 404.
	if code, _ := httpPost(t, ts.URL+"/diff", DiffRequest{BaselineID: "baseline", CurrentID: "ghost"}); code != http.StatusNotFound {
		t.Fatalf("diff against ghost: %d, want 404", code)
	}
}

func TestServerErrorsAndHealth(t *testing.T) {
	ts, _, _ := newTestServer(t, 1, 4)

	if code, _ := httpGet(t, ts.URL+"/jobs/ghost"); code != http.StatusNotFound {
		t.Fatal("unknown job should 404")
	}
	if code, _ := httpGet(t, ts.URL+"/jobs/ghost/archive"); code != http.StatusNotFound {
		t.Fatal("unknown archive should 404")
	}
	code, payload := httpPost(t, ts.URL+"/jobs", JobRequest{Platform: "Giraph"})
	if code != http.StatusBadRequest {
		t.Fatalf("invalid submit: %d: %s", code, payload)
	}
	// Unknown fields are rejected (catches client typos).
	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"platform":"Giraph","algorithm":"BFS","wat":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %d, want 400", resp.StatusCode)
	}

	// An archive requested before completion is a 409, not a 404.
	slow := JobRequest{Platform: "Giraph", Algorithm: "PageRank", Vertices: 60_000, Edges: 300_000, ID: "slow"}
	if code, payload := httpPost(t, ts.URL+"/jobs", slow); code != http.StatusAccepted {
		t.Fatalf("submit slow: %d: %s", code, payload)
	}
	if code, _ := httpGet(t, ts.URL+"/jobs/slow/archive"); code != http.StatusConflict {
		t.Fatal("archive of unfinished job should 409")
	}

	code, payload = httpGet(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	var h healthResponse
	if err := json.Unmarshal(payload, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Jobs == 0 {
		t.Fatalf("bad health: %+v", h)
	}
}

func TestServerMetrics(t *testing.T) {
	ts, _, _ := newTestServer(t, 2, 8)
	submitAndWait(t, ts.URL, smallRequest("OpenG", "BFS"))

	code, payload := httpGet(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	text := string(payload)
	for _, want := range []string{
		"# TYPE granula_http_request_duration_seconds histogram",
		`granula_http_request_duration_seconds_bucket{route="POST /jobs",le="+Inf"} 1`,
		`granula_http_request_duration_seconds_count{route="POST /jobs"} 1`,
		`granula_executor_jobs_total{state="done"} 1`,
		"# TYPE granula_executor_queue_depth gauge",
		"granula_executor_queue_depth 0",
		"granula_store_jobs 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output lacks %q:\n%s", want, text)
		}
	}
	// Histogram buckets are cumulative: the +Inf bucket equals the count.
	if !strings.Contains(text, `_count{route="GET /jobs/{id}"}`) {
		t.Fatalf("metrics lack per-route status histogram:\n%s", text)
	}
}

func TestServerCancelEndpoint(t *testing.T) {
	ts, _, _ := newTestServer(t, 1, 8)
	// Hold the worker, then cancel a queued job over HTTP.
	if code, payload := httpPost(t, ts.URL+"/jobs",
		JobRequest{Platform: "Giraph", Algorithm: "PageRank", Vertices: 60_000, Edges: 300_000, ID: "holder"}); code != http.StatusAccepted {
		t.Fatalf("submit holder: %d: %s", code, payload)
	}
	if code, payload := httpPost(t, ts.URL+"/jobs", smallRequest("Giraph", "BFS")); code != http.StatusAccepted {
		t.Fatalf("submit victim: %d: %s", code, payload)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/job-0002", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d: %s", resp.StatusCode, payload)
	}
	var st JobState
	if err := json.Unmarshal(payload, &st); err != nil {
		t.Fatal(err)
	}
	if st.Status != StatusCanceled {
		t.Fatalf("status %s, want canceled", st.Status)
	}
	// Canceling an unknown job 404s.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/jobs/ghost", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel ghost: %d, want 404", resp.StatusCode)
	}
}

func TestLoadTestDriver(t *testing.T) {
	ts, _, _ := newTestServer(t, 4, 32)
	res, err := RunLoadTest(LoadTestConfig{
		BaseURL:     ts.URL,
		Jobs:        9,
		Concurrency: 3,
		Vertices:    1500,
		Edges:       8000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Done != 9 || res.Failed != 0 {
		t.Fatalf("loadtest: %+v", res)
	}
	if res.Requests < 9*6 { // submit + ≥1 poll + 5 reads per job
		t.Fatalf("loadtest made only %d requests", res.Requests)
	}
	if !strings.Contains(res.Render(), "jobs/s") {
		t.Fatalf("render: %s", res.Render())
	}
}
