package service

import (
	"sync"
	"time"
)

// BreakerState is the archive-persistence circuit breaker's state.
type BreakerState int

// Breaker states, ordered by severity so the Prometheus gauge is
// monotone in "how degraded is the store".
const (
	// BreakerClosed is normal operation: every persist goes to disk.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen admits trial operations after the cooldown; one
	// success closes the breaker, one failure re-opens it.
	BreakerHalfOpen
	// BreakerOpen is degraded read-only mode: persists are refused
	// without touching storage, reads keep serving from the in-memory
	// cache, and submits are shed with 503.
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	default:
		return "closed"
	}
}

// Breaker is a consecutive-failure circuit breaker. It trips open after
// Threshold consecutive failures, refuses work while open, and after
// Cooldown lets a trial through (half-open) — either a caller's real
// operation via Allow or the store's background probe via TryProbe.
// A trial success closes the breaker; a trial failure re-opens it and
// restarts the cooldown. It is safe for concurrent use.
type Breaker struct {
	mu       sync.Mutex
	state    BreakerState
	fails    int
	openedAt time.Time

	threshold int
	cooldown  time.Duration
	now       func() time.Time
	// onTransition observes every state change (metrics); called with
	// the new state while the breaker lock is held, so it must not call
	// back into the breaker.
	onTransition func(BreakerState)
}

// NewBreaker returns a closed breaker. threshold < 1 selects 5;
// cooldown <= 0 selects 5 s. onTransition may be nil.
func NewBreaker(threshold int, cooldown time.Duration, onTransition func(BreakerState)) *Breaker {
	if threshold < 1 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &Breaker{
		threshold:    threshold,
		cooldown:     cooldown,
		now:          time.Now,
		onTransition: onTransition,
	}
}

func (b *Breaker) transitionLocked(to BreakerState) {
	if b.state == to {
		return
	}
	b.state = to
	if to == BreakerOpen {
		b.openedAt = b.now()
	}
	if b.onTransition != nil {
		b.onTransition(to)
	}
}

// State returns the current state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow reports whether an operation may proceed. Closed and half-open
// admit; open admits only once the cooldown has elapsed, in which case
// the breaker moves to half-open and the operation is the trial.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.transitionLocked(BreakerHalfOpen)
		return true
	default:
		return true
	}
}

// TryProbe reports whether a background recovery probe should run now:
// only when the breaker is open and the cooldown has elapsed. It moves
// the breaker to half-open; the caller must report the probe's outcome
// via Success or Failure.
func (b *Breaker) TryProbe() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen || b.now().Sub(b.openedAt) < b.cooldown {
		return false
	}
	b.transitionLocked(BreakerHalfOpen)
	return true
}

// Success records a successful operation: the failure streak resets and
// a half-open (or open) breaker closes.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.transitionLocked(BreakerClosed)
}

// Failure records a failed operation: a half-open trial failure
// re-opens immediately; a closed breaker opens once the consecutive
// failure count reaches the threshold.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	switch b.state {
	case BreakerHalfOpen:
		b.transitionLocked(BreakerOpen)
	case BreakerClosed:
		if b.fails >= b.threshold {
			b.transitionLocked(BreakerOpen)
		}
	case BreakerOpen:
		b.openedAt = b.now() // restart the cooldown
	}
}
