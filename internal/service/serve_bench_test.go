package service

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/archivedb"
	"repro/internal/query"
)

// TestEmitServeBenchJSON measures the three hot paths this layer
// optimizes — repeated query serving (compiled-query cache + columnar
// evaluation vs parse + tree walk), columnar vs tree Select, and
// group-commit append throughput at 1 vs 8 writers — and writes the
// numbers as JSON when BENCH_SERVE_OUT names a path. CI uploads the
// file as the BENCH_serve artifact; EXPERIMENTS.md quotes it.
func TestEmitServeBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_SERVE_OUT")
	if path == "" {
		t.Skip("BENCH_SERVE_OUT not set")
	}

	out := testOutput(t, "Giraph", "BFS")
	job := out.Job
	cols := query.BuildColumns(job)
	const qstr = `actor ~ "Worker" and duration > 0.0001 order by duration desc limit 10`

	timePer := func(n int, f func()) float64 {
		f() // warm
		start := time.Now()
		for i := 0; i < n; i++ {
			f()
		}
		return float64(time.Since(start).Nanoseconds()) / float64(n)
	}

	type pair struct {
		BaselineNsOp float64 `json:"baseline_ns_op"`
		FastNsOp     float64 `json:"fast_ns_op"`
		Speedup      float64 `json:"speedup"`
	}

	// 1. Repeated-query serving: parse + tree walk per request vs
	// cached compile + columnar evaluation.
	const reqN = 2000
	uncached := timePer(reqN, func() {
		q, err := query.Parse(qstr)
		if err != nil {
			t.Fatal(err)
		}
		q.Select(job)
	})
	cache := query.NewCache(64)
	cached := timePer(reqN, func() {
		q, err := cache.Parse(qstr)
		if err != nil {
			t.Fatal(err)
		}
		q.SelectColumns(cols)
	})

	// 2. Columnar vs tree evaluation of one precompiled query.
	q, err := query.Parse(qstr)
	if err != nil {
		t.Fatal(err)
	}
	tree := timePer(reqN, func() { q.Select(job) })
	columnar := timePer(reqN, func() { q.SelectColumns(cols) })

	// 3. Durable append throughput, 1 vs 8 writers sharing fsyncs.
	payload := make([]byte, 256)
	appendOps := func(writers, records int) float64 {
		db, err := archivedb.Open(t.TempDir(), archivedb.Options{
			SegmentSize: 1 << 30, SnapshotEvery: -1, NoBackground: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		var wg sync.WaitGroup
		start := time.Now()
		per := records / writers
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if err := db.Put(fmt.Sprintf("w%d-%d", w, i), payload, archivedb.IndexMeta{}); err != nil {
						t.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		return float64(per*writers) / time.Since(start).Seconds()
	}
	const appendN = 2000
	ops1 := appendOps(1, appendN)
	ops8 := appendOps(8, appendN)

	report := struct {
		RepeatedQuery  pair `json:"repeated_query"`
		ColumnarSelect pair `json:"columnar_select"`
		GroupCommit    struct {
			Writers1OpsPerSec float64 `json:"writers1_ops_per_sec"`
			Writers8OpsPerSec float64 `json:"writers8_ops_per_sec"`
			Speedup           float64 `json:"speedup"`
		} `json:"group_commit"`
	}{
		RepeatedQuery:  pair{BaselineNsOp: uncached, FastNsOp: cached, Speedup: uncached / cached},
		ColumnarSelect: pair{BaselineNsOp: tree, FastNsOp: columnar, Speedup: tree / columnar},
	}
	report.GroupCommit.Writers1OpsPerSec = ops1
	report.GroupCommit.Writers8OpsPerSec = ops8
	report.GroupCommit.Speedup = ops8 / ops1

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s\n%s", path, data)
}
