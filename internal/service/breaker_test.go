package service

import (
	"testing"
	"time"
)

// fakeBreaker returns a breaker on a fake clock; advance moves time.
func fakeBreaker(threshold int, cooldown time.Duration, onTransition func(BreakerState)) (b *Breaker, advance func(time.Duration)) {
	now := time.Unix(1000, 0)
	b = NewBreaker(threshold, cooldown, onTransition)
	b.now = func() time.Time { return now }
	return b, func(d time.Duration) { now = now.Add(d) }
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	b, advance := fakeBreaker(3, time.Second, nil)
	if b.State() != BreakerClosed {
		t.Fatalf("new breaker is %v", b.State())
	}
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatalf("breaker tripped below threshold: %v", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused work")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("breaker did not trip at threshold: %v", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted work before cooldown")
	}
	advance(time.Second)
	if !b.Allow() {
		t.Fatal("open breaker refused the trial after cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("post-cooldown Allow left breaker %v, want half-open", b.State())
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("trial success left breaker %v, want closed", b.State())
	}
	// The failure streak must have reset: two failures stay closed.
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("failure streak survived a success")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, advance := fakeBreaker(1, time.Second, nil)
	b.Failure()
	advance(time.Second)
	if !b.Allow() {
		t.Fatal("no trial after cooldown")
	}
	b.Failure() // the trial fails
	if b.State() != BreakerOpen {
		t.Fatalf("failed trial left breaker %v, want open", b.State())
	}
	// The cooldown restarted at the trial failure.
	advance(time.Second / 2)
	if b.Allow() {
		t.Fatal("breaker admitted work half way into the restarted cooldown")
	}
	advance(time.Second / 2)
	if !b.Allow() {
		t.Fatal("breaker refused the next trial after the restarted cooldown")
	}
}

func TestBreakerFailureWhileOpenRestartsCooldown(t *testing.T) {
	b, advance := fakeBreaker(1, time.Second, nil)
	b.Failure()
	advance(800 * time.Millisecond)
	b.Failure() // e.g. a shedding caller reporting late
	advance(800 * time.Millisecond)
	if b.Allow() {
		t.Fatal("cooldown was not restarted by the open-state failure")
	}
}

func TestBreakerTryProbe(t *testing.T) {
	b, advance := fakeBreaker(1, time.Second, nil)
	if b.TryProbe() {
		t.Fatal("closed breaker offered a probe")
	}
	b.Failure()
	if b.TryProbe() {
		t.Fatal("probe offered before cooldown")
	}
	advance(time.Second)
	if !b.TryProbe() {
		t.Fatal("no probe after cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("TryProbe left breaker %v, want half-open", b.State())
	}
	if b.TryProbe() {
		t.Fatal("half-open breaker offered a second concurrent probe")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("probe success left breaker %v, want closed", b.State())
	}
}

func TestBreakerTransitionsObserved(t *testing.T) {
	var seen []BreakerState
	b, advance := fakeBreaker(2, time.Second, func(s BreakerState) { seen = append(seen, s) })
	b.Failure()
	b.Failure() // -> open
	advance(time.Second)
	b.Allow()   // -> half-open
	b.Failure() // -> open
	advance(time.Second)
	b.TryProbe() // -> half-open
	b.Success()  // -> closed
	want := []BreakerState{BreakerOpen, BreakerHalfOpen, BreakerOpen, BreakerHalfOpen, BreakerClosed}
	if len(seen) != len(want) {
		t.Fatalf("transitions %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transition %d is %v, want %v (all: %v)", i, seen[i], want[i], seen)
		}
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(0, 0, nil)
	for i := 0; i < 4; i++ {
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatal("default threshold is below 5")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("default threshold is above 5")
	}
}

func TestBreakerStateStrings(t *testing.T) {
	if BreakerClosed.String() != "closed" || BreakerHalfOpen.String() != "half-open" || BreakerOpen.String() != "open" {
		t.Fatal("breaker state names changed; /metrics and /healthz consumers depend on them")
	}
}
