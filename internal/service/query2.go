package service

// Analytical query engine v2 surface: GET /query2 executes cross-job
// aggregate queries ("from jobs where ... group by ...") over the
// store's on-disk columnar segments without materializing archive.Job
// trees. Per job the engine reads only the segment's stats footer
// first; if the query's zone maps prove no row can match, the body is
// never touched (the archivedb ColSegTailReads/ColSegFullReads
// counters make that observable). GET /internal/query2 returns the
// raw per-job partials for the router's scatter-gather — the merge is
// the same canonical fold either way, so a routed response is
// byte-identical to a single-node one.
//
// /query2 responses are cached under the store generation like every
// other read. The X-Granula-Scanned/Pruned headers describe one
// actual execution, so they appear only when the handler runs (cache
// misses); a cache hit executed nothing and carries neither.

import (
	"net/http"
	"strconv"

	"repro/internal/query"
	"repro/internal/shard"
)

// aggQuery parses and validates a v2 aggregate query from ?q=,
// writing the HTTP error itself when the query is unusable.
func (s *Server) aggQuery(w http.ResponseWriter, r *http.Request) (*query.Query, string, bool) {
	raw := r.URL.Query().Get("q")
	if raw == "" {
		writeError(w, http.StatusBadRequest, "need a q= query parameter")
		return nil, "", false
	}
	q, err := s.parseQuery(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return nil, "", false
	}
	if !q.IsAggregate() || !q.FromJobs() {
		writeError(w, http.StatusBadRequest,
			"query2 needs a cross-job aggregate query: from jobs [where ...] group by ... (or top k ... by ...)")
		return nil, "", false
	}
	if q.NeedsOps() {
		writeError(w, http.StatusBadRequest,
			"info./derived. fields require operation details not stored in columnar segments; use /jobs/{id}/query")
		return nil, "", false
	}
	return q, raw, true
}

// localPartials computes one partial aggregate per stored job, using
// the segment fast path (tail read -> zone-map prune -> body decode)
// and falling back to the in-memory columns when a segment is
// missing, stale, or corrupt (pre-v2 archives, crash before rebuild).
func (s *Server) localPartials(q *query.Query) ([]query.JobPartial, error) {
	ids := s.store.IDs()
	partials := make([]query.JobPartial, 0, len(ids))
	for _, id := range ids {
		jp, ok, err := s.partialForJob(q, id)
		if err != nil {
			return nil, err
		}
		if ok {
			partials = append(partials, jp)
		}
	}
	return partials, nil
}

// partialForJob aggregates one job. ok is false when the job vanished
// between listing and reading (a concurrent delete) — it simply
// contributes nothing, exactly as if the listing had run later.
func (s *Server) partialForJob(q *query.Query, id string) (query.JobPartial, bool, error) {
	version := s.store.Version(id)
	if db := s.store.db; db != nil && version != 0 {
		// Stats footer first: a pruned segment costs one small tail
		// read and its column blocks are never touched.
		if tail, size, ok, err := db.GetSegmentTail(id, query.SegmentTailHint); err == nil && ok {
			st, serr := query.DecodeSegmentStats(tail, size)
			if serr == query.ErrSegmentTail {
				// Footer larger than the hint window (pathological
				// symbol inventory); fall back to a full read.
				if blob, ok2, err2 := db.GetSegment(id); err2 == nil && ok2 {
					if f, fst, derr := query.DecodeSegment(blob); derr == nil && fst.JobVersion == version {
						jp, aerr := q.AggregateFrame(f)
						return jp, aerr == nil, aerr
					}
				}
			} else if serr == nil && st.FormatVersion == query.SegmentVersion && st.JobVersion == version {
				if q.PruneAgainst(st) {
					return query.PrunedPartial(id), true, nil
				}
				if blob, ok2, err2 := db.GetSegment(id); err2 == nil && ok2 {
					if f, fst, derr := query.DecodeSegment(blob); derr == nil && fst.JobVersion == version {
						jp, aerr := q.AggregateFrame(f)
						return jp, aerr == nil, aerr
					}
				}
			}
		}
	}
	// Lazy rebuild: no usable segment, so aggregate the in-memory
	// columns and persist a fresh segment for the next query.
	sj, ok := s.store.Get(id)
	if !ok {
		return query.JobPartial{}, false, nil
	}
	s.store.writeSegment(id, sj, version)
	jp, err := q.AggregateFrame(sj.Cols.Frame(jobMeta(id, sj.Summary)))
	return jp, err == nil, err
}

// handleQuery2 serves GET /query2: cross-job aggregation over
// columnar segments, merged with the canonical fold and rendered
// byte-deterministically.
func (s *Server) handleQuery2(w http.ResponseWriter, r *http.Request) {
	if err := s.faults.Fail(SiteQuery); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	q, raw, ok := s.aggQuery(w, r)
	if !ok {
		return
	}
	partials, err := s.localPartials(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp, err := q.MergePartials(raw, "jobs", "", partials)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	body, err := query.RenderAggResponse(resp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.metrics.CountQuery2(resp.Scanned, resp.Pruned)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(shard.ScannedHeader, strconv.Itoa(resp.Scanned))
	w.Header().Set(shard.PrunedHeader, strconv.Itoa(resp.Pruned))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// internalQuery2Response is the scatter-gather wire format: one
// partial per local job, pre-sorted by the store's ID order. The
// router concatenates partials from every shard and re-merges; the
// merge sorts and dedupes, so shard arrival order cannot matter.
type internalQuery2Response struct {
	Shard    string             `json:"shard,omitempty"`
	Partials []query.JobPartial `json:"partials"`
}

// handleInternalQuery2 serves GET /internal/query2 for the router.
func (s *Server) handleInternalQuery2(w http.ResponseWriter, r *http.Request) {
	q, _, ok := s.aggQuery(w, r)
	if !ok {
		return
	}
	partials, err := s.localPartials(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	scanned, pruned := 0, 0
	for _, jp := range partials {
		if jp.Pruned {
			pruned++
		} else {
			scanned++
		}
	}
	s.metrics.CountQuery2(scanned, pruned)
	w.Header().Set(shard.ScannedHeader, strconv.Itoa(scanned))
	w.Header().Set(shard.PrunedHeader, strconv.Itoa(pruned))
	writeJSON(w, http.StatusOK, internalQuery2Response{Shard: s.shardID, Partials: partials})
}
