package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/archive"
	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/envmon"
	"repro/internal/faults"
	"repro/internal/platforms"
	"repro/internal/stream"
	"repro/internal/trace"
)

// JobStatus is the lifecycle state of a submitted job.
type JobStatus string

// Job lifecycle states.
const (
	StatusQueued   JobStatus = "queued"
	StatusRunning  JobStatus = "running"
	StatusDone     JobStatus = "done"
	StatusFailed   JobStatus = "failed"
	StatusCanceled JobStatus = "canceled"
	// StatusStreaming is reported for jobs the executor does not know:
	// externally run jobs whose events arrive through POST /ingest and
	// which have not sealed yet.
	StatusStreaming JobStatus = "streaming"
)

// SiteRun is the fault-injection point on the executor's run path,
// hit once per job before the simulation starts.
const SiteRun = "executor.run"

// maxTimeoutSeconds bounds JobRequest.TimeoutSeconds (about 11 days).
const maxTimeoutSeconds = 1e6

// JobRequest describes one simulation to run. Zero fields select the
// documented defaults, which are filled in at submission time so the
// recorded request (and hence the status JSON) is self-describing.
type JobRequest struct {
	// Platform is Giraph, PowerGraph, or OpenG.
	Platform string `json:"platform"`
	// Algorithm is BFS, SSSP, PageRank, WCC, CDLP, or LCC (platform
	// permitting).
	Algorithm string `json:"algorithm"`
	// GraphKind is social, rmat, or uniform; default social.
	GraphKind string `json:"graphKind,omitempty"`
	// Vertices and Edges size the generated graph; defaults 2000/10000.
	Vertices int64 `json:"vertices,omitempty"`
	Edges    int64 `json:"edges,omitempty"`
	// Seed seeds dataset generation; default 42.
	Seed int64 `json:"seed,omitempty"`
	// Iterations bounds fixed-iteration algorithms; default 10.
	Iterations int `json:"iterations,omitempty"`
	// Nodes sizes the simulated cluster; default the 8-node DAS5 model.
	Nodes int `json:"nodes,omitempty"`
	// TimeoutSeconds bounds the job's wall-clock run time; past it the
	// simulation is interrupted and the job fails with a timeout
	// reason. 0 selects the executor's default (no limit unless the
	// executor was configured with one).
	TimeoutSeconds float64 `json:"timeoutSeconds,omitempty"`
	// ID names the job; default "job-<seq>".
	ID string `json:"id,omitempty"`
}

func (r *JobRequest) applyDefaults() {
	if r.GraphKind == "" {
		r.GraphKind = "social"
	}
	if r.Vertices == 0 {
		r.Vertices = 2000
	}
	if r.Edges == 0 {
		r.Edges = 10_000
	}
	if r.Seed == 0 {
		r.Seed = 42
	}
	if r.Iterations == 0 {
		r.Iterations = 10
	}
}

func (r *JobRequest) validate() error {
	if r.Platform == "" {
		return fmt.Errorf("service: job request needs a platform")
	}
	if r.Algorithm == "" {
		return fmt.Errorf("service: job request needs an algorithm")
	}
	if r.Vertices < 0 || r.Edges < 0 || r.Nodes < 0 || r.Iterations < 0 {
		return fmt.Errorf("service: job request sizes must be non-negative")
	}
	if math.IsNaN(r.TimeoutSeconds) || math.IsInf(r.TimeoutSeconds, 0) || r.TimeoutSeconds < 0 {
		return fmt.Errorf("service: job timeout must be a non-negative finite number of seconds")
	}
	if r.TimeoutSeconds > maxTimeoutSeconds {
		// Larger values would overflow time.Duration when the deadline is
		// armed; nothing legitimate runs for days anyway.
		return fmt.Errorf("service: job timeout must be at most %g seconds", float64(maxTimeoutSeconds))
	}
	switch r.GraphKind {
	case "", "social", "rmat", "uniform":
	default:
		return fmt.Errorf("service: unknown graph kind %q", r.GraphKind)
	}
	return nil
}

// JobState is the externally visible record of a submitted job.
type JobState struct {
	ID      string     `json:"id"`
	Request JobRequest `json:"request"`
	Status  JobStatus  `json:"status"`
	Error   string     `json:"error,omitempty"`
	// Stack holds the goroutine stack of a recovered panic when the job
	// failed by panicking, so a crashing simulation is debuggable from
	// the job state instead of taking the process down.
	Stack string `json:"stack,omitempty"`
	// Summary is present once the job is done.
	Summary *Summary `json:"summary,omitempty"`
	// Stream is present for live streamed jobs (status "streaming").
	Stream *StreamProgress `json:"stream,omitempty"`
}

// RetryPolicy bounds the executor's retries around archive persistence:
// Attempts total tries, with exponential backoff from Base capped at
// Max, plus jitter. The zero value selects 3 attempts, 25 ms base,
// 1 s cap.
type RetryPolicy struct {
	Attempts int
	Base     time.Duration
	Max      time.Duration
}

func (p RetryPolicy) normalized() RetryPolicy {
	if p.Attempts < 1 {
		p.Attempts = 3
	}
	if p.Base <= 0 {
		p.Base = 25 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = time.Second
	}
	return p
}

// ExecutorOptions tunes the executor's robustness behavior; the zero
// value selects the defaults.
type ExecutorOptions struct {
	// Faults is the chaos injector threaded through the run path; nil
	// injects nothing.
	Faults *faults.Injector
	// Retry bounds persistence retries.
	Retry RetryPolicy
	// DefaultTimeout applies to jobs that do not set TimeoutSeconds;
	// 0 leaves them unbounded.
	DefaultTimeout time.Duration
	// JitterSeed seeds backoff jitter (0 selects 1), so tests get a
	// reproducible retry schedule.
	JitterSeed int64
	// HostParallelism is the per-job host goroutine budget for the
	// simulation engines. 0 divides runtime.NumCPU() across the worker
	// pool (so concurrent jobs never oversubscribe the host); results
	// are byte-identical for every value.
	HostParallelism int
	// Replicator, when set, is the cluster write fan-out: after a job's
	// archive is durable locally, the executor blocks on it until the
	// write quorum acks, and only then marks the job done. A quorum
	// failure fails the job — the client never saw done, so the
	// durability contract ("done implies W copies") holds. nil means
	// single-node operation.
	Replicator JobReplicator
	// Streams, when set, receives every job's platform-log records and
	// environment samples live as the simulation emits them, so /watch
	// can tail in-process jobs the same way it tails external ones. The
	// manager should be shared with the server.
	Streams *stream.Manager
}

// JobReplicator is the executor's hook into cluster replication,
// implemented by shard.Replicator: push one durable job (its exact
// persisted bytes, tagged with its write version) to its replica set
// and return once the write quorum is met.
type JobReplicator interface {
	ReplicateJob(ctx context.Context, id string, version uint64, payload []byte) error
}

// Executor is the bounded job pool: a fixed number of workers drain a
// bounded queue of submitted requests, run them through the platforms
// harness, and publish results to the archive store. Workers are
// hardened: a panicking job fails with its stack recorded instead of
// crashing the process, a job past its deadline has its simulation
// interrupted and its worker freed, and persistence is retried with
// backoff before the job fails.
type Executor struct {
	store   *Store
	metrics *Metrics
	faults  *faults.Injector
	retry   RetryPolicy
	defTO   time.Duration
	jobPar  int // per-job engine host parallelism
	repl    JobReplicator
	streams *stream.Manager

	// ctx is canceled when a shutdown deadline expires, aborting every
	// in-flight simulation through its per-job context.
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	cond     *sync.Cond // signaled when pending grows or intake closes
	pending  []string   // queued job IDs, FIFO; bounded by queueCap
	queueCap int
	states   map[string]*JobState
	order    []string
	seq      int
	closed   bool

	rngMu sync.Mutex
	rng   *rand.Rand // backoff jitter

	dsMu     sync.Mutex
	datasets map[datasetKey]*datagen.Dataset
}

type datasetKey struct {
	kind     string
	vertices int64
	edges    int64
	seed     int64
}

// NewExecutor starts a pool of workers over a queue of the given
// capacity with default robustness options. Metrics may be nil.
func NewExecutor(workers, queueCap int, store *Store, m *Metrics) *Executor {
	return NewExecutorWith(workers, queueCap, store, m, ExecutorOptions{})
}

// NewExecutorWith is NewExecutor with explicit robustness options.
func NewExecutorWith(workers, queueCap int, store *Store, m *Metrics, opts ExecutorOptions) *Executor {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	seed := opts.JitterSeed
	if seed == 0 {
		seed = 1
	}
	jobPar := opts.HostParallelism
	if jobPar <= 0 {
		// Cap workers × per-job pool at the host's cores so concurrent
		// jobs don't oversubscribe it. Parallelism never changes results,
		// only wall-clock speed.
		jobPar = runtime.NumCPU() / workers
		if jobPar < 1 {
			jobPar = 1
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &Executor{
		store:    store,
		metrics:  m,
		faults:   opts.Faults,
		retry:    opts.Retry.normalized(),
		defTO:    opts.DefaultTimeout,
		jobPar:   jobPar,
		repl:     opts.Replicator,
		streams:  opts.Streams,
		ctx:      ctx,
		cancel:   cancel,
		queueCap: queueCap,
		states:   map[string]*JobState{},
		rng:      rand.New(rand.NewSource(seed)),
		datasets: map[datasetKey]*datagen.Dataset{},
	}
	e.cond = sync.NewCond(&e.mu)
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	return e
}

// ErrQueueFull is returned by Submit when the bounded queue is at
// capacity; HTTP maps it to 429.
var ErrQueueFull = fmt.Errorf("service: job queue is full")

// Submit validates and enqueues a request, returning the assigned job
// ID. It never blocks: a full queue sheds the submission with
// ErrQueueFull so the caller stays responsive under overload.
func (e *Executor) Submit(req JobRequest) (string, error) {
	if err := req.validate(); err != nil {
		return "", err
	}
	req.applyDefaults()
	if req.TimeoutSeconds == 0 && e.defTO > 0 {
		req.TimeoutSeconds = e.defTO.Seconds()
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return "", fmt.Errorf("service: executor is shut down")
	}
	if len(e.pending) >= e.queueCap {
		e.mu.Unlock()
		e.metrics.CountShed()
		return "", ErrQueueFull
	}
	e.seq++
	if req.ID == "" {
		req.ID = fmt.Sprintf("job-%04d", e.seq)
	}
	if _, dup := e.states[req.ID]; dup {
		e.mu.Unlock()
		return "", fmt.Errorf("service: duplicate job ID %q", req.ID)
	}
	st := &JobState{ID: req.ID, Request: req, Status: StatusQueued}
	e.states[req.ID] = st
	e.order = append(e.order, req.ID)
	e.pending = append(e.pending, req.ID)
	e.cond.Signal()
	e.mu.Unlock()
	return req.ID, nil
}

// State returns a copy of one job's state.
func (e *Executor) State(id string) (JobState, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.states[id]
	if !ok {
		return JobState{}, false
	}
	return *st, true
}

// States returns copies of every job state in submission order.
func (e *Executor) States() []JobState {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]JobState, 0, len(e.order))
	for _, id := range e.order {
		out = append(out, *e.states[id])
	}
	return out
}

// QueueDepth reports the number of jobs waiting for a worker.
func (e *Executor) QueueDepth() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.pending)
}

// Cancel marks a queued job canceled and removes it from the queue, so
// its slot is free for new submissions immediately (not only once a
// worker reaches and skips it). Running jobs cannot be canceled through
// this path; Cancel reports whether the job was still cancelable.
func (e *Executor) Cancel(id string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.states[id]
	if !ok || st.Status != StatusQueued {
		return false
	}
	st.Status = StatusCanceled
	for i, qid := range e.pending {
		if qid == id {
			e.pending = append(e.pending[:i], e.pending[i+1:]...)
			break
		}
	}
	return true
}

// Shutdown stops intake and drains the queue: queued and in-flight jobs
// keep running until done or until ctx expires, at which point the
// remaining queued jobs are marked canceled, in-flight simulations are
// interrupted through their job contexts, and Shutdown returns
// ctx.Err() once the workers have exited. No job is ever left in the
// queued or running state after Shutdown returns.
func (e *Executor) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()

	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		e.mu.Lock()
		for _, id := range e.pending {
			if st := e.states[id]; st.Status == StatusQueued {
				st.Status = StatusCanceled
				st.Error = "canceled: shutdown drain expired"
			}
		}
		e.pending = nil
		e.cond.Broadcast()
		e.mu.Unlock()
		e.cancel() // abort in-flight simulations
		<-done
		return ctx.Err()
	}
}

// next blocks until a job is available or intake is closed and drained.
func (e *Executor) next() (string, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.pending) == 0 && !e.closed {
		e.cond.Wait()
	}
	if len(e.pending) == 0 {
		return "", false
	}
	id := e.pending[0]
	e.pending = e.pending[1:]
	return id, true
}

func (e *Executor) worker() {
	defer e.wg.Done()
	for {
		id, ok := e.next()
		if !ok {
			return
		}
		if !e.setRunning(id) {
			continue // canceled between dequeue and start
		}
		e.process(id)
	}
}

// process runs one job end to end: simulation (with panic isolation and
// a deadline) then persistence (with retry). Terminal status mapping:
// deadline overrun or real failure → failed; shutdown abort → canceled.
func (e *Executor) process(id string) {
	e.mu.Lock()
	req := e.states[id].Request
	e.mu.Unlock()

	if e.streams != nil {
		// The live stream is retired whenever the job reaches a terminal
		// state: on success the archive is already published (watchers and
		// /query switch to it seamlessly), on failure the seal written by
		// run() is the last frame watchers drain from their held job.
		defer e.streams.Remove(id)
	}

	ctx := e.ctx
	var cancel context.CancelFunc
	if req.TimeoutSeconds > 0 {
		ctx, cancel = context.WithTimeout(e.ctx, time.Duration(req.TimeoutSeconds*float64(time.Second)))
	} else {
		ctx, cancel = context.WithCancel(e.ctx)
	}
	defer cancel()

	sum, job, stack, err := e.runIsolated(ctx, id, req)
	if err != nil {
		e.finishErr(id, req, stack, err)
		return
	}
	if err := e.persist(ctx, job, sum); err != nil {
		// A job is only "done" once its archive is durable: if the
		// write-through store cannot persist it even with retries, the
		// job fails rather than acking a result a restart would lose.
		e.finishErr(id, req, "", fmt.Errorf("persist archive: %w", err))
		return
	}
	if e.repl != nil {
		// Cluster mode: "done" additionally means the write quorum holds
		// the archive, so losing this shard cannot lose an acked job.
		if err := e.replicate(ctx, id); err != nil {
			e.finishErr(id, req, "", fmt.Errorf("replicate archive: %w", err))
			return
		}
	}
	e.setDone(id, sum)
}

// replicate pushes a freshly persisted job to its replica set and waits
// for the write quorum.
func (e *Executor) replicate(ctx context.Context, id string) error {
	payload, version, ok, err := e.store.Export(id)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("service: job %q vanished before replication", id)
	}
	return e.repl.ReplicateJob(ctx, id, version, payload)
}

// runIsolated runs the simulation with panic isolation: a panicking job
// (or injected panic) becomes an error with the recovered stack instead
// of crashing the process.
func (e *Executor) runIsolated(ctx context.Context, id string, req JobRequest) (sum Summary, job *archive.Job, stack string, err error) {
	defer func() {
		if r := recover(); r != nil {
			stack = string(debug.Stack())
			err = fmt.Errorf("service: job panicked: %v", r)
			e.metrics.CountPanicRecovered()
		}
	}()
	if ferr := e.faults.FailCtx(ctx, SiteRun); ferr != nil {
		return Summary{}, nil, "", ferr
	}
	sum, job, err = e.run(ctx, id, req)
	return sum, job, "", err
}

// finishErr records a terminal non-done state: shutdown aborts land as
// canceled, deadline overruns as failed with an explicit timeout
// reason, everything else as failed with the error.
func (e *Executor) finishErr(id string, req JobRequest, stack string, err error) {
	if e.ctx.Err() != nil {
		e.setAborted(id, fmt.Errorf("canceled: shutdown aborted the job: %v", err))
		return
	}
	if errors.Is(err, context.DeadlineExceeded) {
		err = fmt.Errorf("timeout: job exceeded its %gs deadline: %w", req.TimeoutSeconds, err)
	}
	e.setFailed(id, err, stack)
}

// backoff returns the sleep before retry attempt (1-based): exponential
// from the policy base, capped, plus uniform jitter of up to one base.
func (e *Executor) backoff(attempt int) time.Duration {
	d := e.retry.Base << (attempt - 1)
	if d > e.retry.Max || d <= 0 {
		d = e.retry.Max
	}
	e.rngMu.Lock()
	j := time.Duration(e.rng.Int63n(int64(e.retry.Base) + 1))
	e.rngMu.Unlock()
	return d + j
}

// persist stores the finished job, retrying transient failures with
// exponential backoff and jitter. It gives up early when the store
// reports degraded mode (the breaker is open; retrying cannot help) or
// when the job's context expires mid-backoff.
func (e *Executor) persist(ctx context.Context, job *archive.Job, sum Summary) error {
	var last error
	for attempt := 1; attempt <= e.retry.Attempts; attempt++ {
		if attempt > 1 {
			e.metrics.CountRetry()
			select {
			case <-time.After(e.backoff(attempt - 1)):
			case <-ctx.Done():
				return fmt.Errorf("retry abandoned (%v): %w", ctx.Err(), last)
			}
		}
		err := e.store.Put(job, sum)
		if err == nil {
			return nil
		}
		last = err
		if errors.Is(err, ErrDegraded) {
			return err
		}
	}
	return fmt.Errorf("after %d attempts: %w", e.retry.Attempts, last)
}

func (e *Executor) setRunning(id string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.states[id]
	if st.Status != StatusQueued {
		return false
	}
	st.Status = StatusRunning
	e.metrics.JobStarted()
	return true
}

// setAborted marks a running job canceled (shutdown abort).
func (e *Executor) setAborted(id string, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.states[id]
	st.Status = StatusCanceled
	st.Error = err.Error()
	e.metrics.JobFinished(false)
}

func (e *Executor) setFailed(id string, err error, stack string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.states[id]
	st.Status = StatusFailed
	st.Error = err.Error()
	st.Stack = stack
	e.metrics.JobFinished(false)
}

func (e *Executor) setDone(id string, sum Summary) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.states[id]
	st.Status = StatusDone
	s := sum
	st.Summary = &s
	e.metrics.JobFinished(true)
}

// dataset returns the generated dataset for a request, cached by
// (kind, vertices, edges, seed) so concurrent jobs over the same graph
// generate it once.
func (e *Executor) dataset(req JobRequest) (*datagen.Dataset, error) {
	key := datasetKey{kind: req.GraphKind, vertices: req.Vertices, edges: req.Edges, seed: req.Seed}
	e.dsMu.Lock()
	defer e.dsMu.Unlock()
	if ds, ok := e.datasets[key]; ok {
		return ds, nil
	}
	var kind datagen.Kind
	switch req.GraphKind {
	case "social":
		kind = datagen.SocialNetwork
	case "rmat":
		kind = datagen.RMAT
	case "uniform":
		kind = datagen.Uniform
	}
	ds, err := datagen.Generate(datagen.Config{
		Kind: kind, Vertices: req.Vertices, Edges: req.Edges,
		Seed: req.Seed, Directed: true,
	})
	if err != nil {
		return nil, err
	}
	e.datasets[key] = ds
	return ds, nil
}

func (e *Executor) run(ctx context.Context, id string, req JobRequest) (Summary, *archive.Job, error) {
	ds, err := e.dataset(req)
	if err != nil {
		return Summary{}, nil, err
	}
	spec := platforms.Spec{
		Platform:        req.Platform,
		Algorithm:       req.Algorithm,
		Source:          datagen.PeripheralSource(ds.Graph),
		Iterations:      req.Iterations,
		Dataset:         ds,
		JobID:           id,
		HostParallelism: e.jobPar,
	}
	if req.Nodes > 0 {
		cfg := platforms.DAS5Config()
		cfg.Nodes = req.Nodes
		spec.Cluster = cfg
	}
	var lj *stream.Job
	if e.streams != nil {
		// Mirror the simulation into a live stream so /watch can tail the
		// job while it runs. Failure to open (slot exhaustion, or an
		// external stream squatting on the ID) only loses liveness, never
		// the job itself.
		if j, jerr := e.streams.OpenInternal(id); jerr == nil {
			lj = j
			spec.RecordSink = func(r trace.Record) { lj.PublishRecord(r) }  //nolint:errcheck
			spec.SampleSink = func(s envmon.Sample) { lj.PublishSample(s) } //nolint:errcheck
		}
	}
	out, err := platforms.RunContext(ctx, spec)
	if err != nil {
		if lj != nil {
			state := stream.StateFailed
			if e.ctx.Err() != nil {
				state = stream.StateCanceled
			}
			lj.Seal(req.Platform, req.Algorithm, state, 0) //nolint:errcheck
		}
		return Summary{}, nil, err
	}
	if lj != nil {
		lj.Seal(out.Job.Platform, req.Algorithm, stream.StateDone, out.Runtime) //nolint:errcheck
	}
	return summarize(req, out), out.Job, nil
}

func summarize(req JobRequest, out *platforms.Output) Summary {
	ops := 0
	if out.Job.Root != nil {
		out.Job.Root.Walk(func(*archive.Operation) { ops++ })
	}
	sum := Summary{
		ID:                out.Job.ID,
		Platform:          out.Job.Platform,
		Algorithm:         req.Algorithm,
		Runtime:           out.Runtime,
		Supersteps:        out.Supersteps,
		Operations:        ops,
		SetupPercent:      out.Breakdown.SetupPercent(),
		IOPercent:         out.Breakdown.IOPercent(),
		ProcessingPercent: out.Breakdown.ProcessingPercent(),
		ReplicationFactor: out.ReplicationFactor,
	}
	for _, me := range out.ModelErrors {
		sum.ModelErrors = append(sum.ModelErrors, fmt.Sprintf("%v", me))
	}
	return sum
}

// ClusterDefaults exposes the default cluster model so callers (and
// docs) can report what Nodes=0 means.
func ClusterDefaults() cluster.Config { return platforms.DAS5Config() }
