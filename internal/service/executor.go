package service

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/archive"
	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/platforms"
)

// JobStatus is the lifecycle state of a submitted job.
type JobStatus string

// Job lifecycle states.
const (
	StatusQueued   JobStatus = "queued"
	StatusRunning  JobStatus = "running"
	StatusDone     JobStatus = "done"
	StatusFailed   JobStatus = "failed"
	StatusCanceled JobStatus = "canceled"
)

// JobRequest describes one simulation to run. Zero fields select the
// documented defaults, which are filled in at submission time so the
// recorded request (and hence the status JSON) is self-describing.
type JobRequest struct {
	// Platform is Giraph, PowerGraph, or OpenG.
	Platform string `json:"platform"`
	// Algorithm is BFS, SSSP, PageRank, WCC, CDLP, or LCC (platform
	// permitting).
	Algorithm string `json:"algorithm"`
	// GraphKind is social, rmat, or uniform; default social.
	GraphKind string `json:"graphKind,omitempty"`
	// Vertices and Edges size the generated graph; defaults 2000/10000.
	Vertices int64 `json:"vertices,omitempty"`
	Edges    int64 `json:"edges,omitempty"`
	// Seed seeds dataset generation; default 42.
	Seed int64 `json:"seed,omitempty"`
	// Iterations bounds fixed-iteration algorithms; default 10.
	Iterations int `json:"iterations,omitempty"`
	// Nodes sizes the simulated cluster; default the 8-node DAS5 model.
	Nodes int `json:"nodes,omitempty"`
	// ID names the job; default "job-<seq>".
	ID string `json:"id,omitempty"`
}

func (r *JobRequest) applyDefaults() {
	if r.GraphKind == "" {
		r.GraphKind = "social"
	}
	if r.Vertices == 0 {
		r.Vertices = 2000
	}
	if r.Edges == 0 {
		r.Edges = 10_000
	}
	if r.Seed == 0 {
		r.Seed = 42
	}
	if r.Iterations == 0 {
		r.Iterations = 10
	}
}

func (r *JobRequest) validate() error {
	if r.Platform == "" {
		return fmt.Errorf("service: job request needs a platform")
	}
	if r.Algorithm == "" {
		return fmt.Errorf("service: job request needs an algorithm")
	}
	if r.Vertices < 0 || r.Edges < 0 || r.Nodes < 0 || r.Iterations < 0 {
		return fmt.Errorf("service: job request sizes must be non-negative")
	}
	switch r.GraphKind {
	case "", "social", "rmat", "uniform":
	default:
		return fmt.Errorf("service: unknown graph kind %q", r.GraphKind)
	}
	return nil
}

// JobState is the externally visible record of a submitted job.
type JobState struct {
	ID      string     `json:"id"`
	Request JobRequest `json:"request"`
	Status  JobStatus  `json:"status"`
	Error   string     `json:"error,omitempty"`
	// Summary is present once the job is done.
	Summary *Summary `json:"summary,omitempty"`
}

// Executor is the bounded job pool: a fixed number of workers drain a
// bounded queue of submitted requests, run them through the platforms
// harness, and publish results to the archive store.
type Executor struct {
	store   *Store
	metrics *Metrics

	queue  chan string
	wg     sync.WaitGroup
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	states map[string]*JobState
	order  []string
	seq    int
	closed bool

	dsMu     sync.Mutex
	datasets map[datasetKey]*datagen.Dataset
}

type datasetKey struct {
	kind     string
	vertices int64
	edges    int64
	seed     int64
}

// NewExecutor starts a pool of workers over a queue of the given
// capacity. Metrics may be nil.
func NewExecutor(workers, queueCap int, store *Store, m *Metrics) *Executor {
	if workers < 1 {
		workers = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &Executor{
		store:    store,
		metrics:  m,
		queue:    make(chan string, queueCap),
		ctx:      ctx,
		cancel:   cancel,
		states:   map[string]*JobState{},
		datasets: map[datasetKey]*datagen.Dataset{},
	}
	e.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go e.worker()
	}
	return e
}

// ErrQueueFull is returned by Submit when the bounded queue is at
// capacity; HTTP maps it to 429.
var ErrQueueFull = fmt.Errorf("service: job queue is full")

// Submit validates and enqueues a request, returning the assigned job
// ID. It never blocks: a full queue is an error the caller can surface.
func (e *Executor) Submit(req JobRequest) (string, error) {
	if err := req.validate(); err != nil {
		return "", err
	}
	req.applyDefaults()

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return "", fmt.Errorf("service: executor is shut down")
	}
	e.seq++
	if req.ID == "" {
		req.ID = fmt.Sprintf("job-%04d", e.seq)
	}
	if _, dup := e.states[req.ID]; dup {
		e.mu.Unlock()
		return "", fmt.Errorf("service: duplicate job ID %q", req.ID)
	}
	st := &JobState{ID: req.ID, Request: req, Status: StatusQueued}
	e.states[req.ID] = st
	e.order = append(e.order, req.ID)
	e.mu.Unlock()

	select {
	case e.queue <- req.ID:
		return req.ID, nil
	default:
		e.mu.Lock()
		delete(e.states, req.ID)
		e.order = e.order[:len(e.order)-1]
		e.mu.Unlock()
		return "", ErrQueueFull
	}
}

// State returns a copy of one job's state.
func (e *Executor) State(id string) (JobState, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.states[id]
	if !ok {
		return JobState{}, false
	}
	return *st, true
}

// States returns copies of every job state in submission order.
func (e *Executor) States() []JobState {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]JobState, 0, len(e.order))
	for _, id := range e.order {
		out = append(out, *e.states[id])
	}
	return out
}

// QueueDepth reports the number of jobs waiting for a worker.
func (e *Executor) QueueDepth() int { return len(e.queue) }

// Cancel marks a queued job canceled so workers skip it. Running jobs
// cannot be interrupted (the simulation kernel is not preemptible);
// Cancel reports whether the job was still cancelable.
func (e *Executor) Cancel(id string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.states[id]
	if !ok || st.Status != StatusQueued {
		return false
	}
	st.Status = StatusCanceled
	return true
}

// Shutdown stops intake and drains the queue: queued and in-flight jobs
// keep running until done or until ctx expires, at which point the
// remaining queued jobs are marked canceled and Shutdown returns
// ctx.Err() after in-flight jobs finish.
func (e *Executor) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	close(e.queue)

	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		e.cancel() // workers skip the rest of the queue
		<-done
		return ctx.Err()
	}
}

func (e *Executor) worker() {
	defer e.wg.Done()
	for id := range e.queue {
		if e.ctx.Err() != nil {
			e.setCanceled(id)
			continue
		}
		if !e.setRunning(id) {
			continue // canceled while queued
		}
		sum, job, err := e.run(id)
		if err != nil {
			e.setFailed(id, err)
			continue
		}
		// A job is only "done" once its archive is durable: if the
		// write-through store cannot persist it, the job fails rather
		// than acking a result a restart would lose.
		if err := e.store.Put(job, sum); err != nil {
			e.setFailed(id, fmt.Errorf("persist archive: %w", err))
			continue
		}
		e.setDone(id, sum)
	}
}

func (e *Executor) setRunning(id string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.states[id]
	if st.Status != StatusQueued {
		return false
	}
	st.Status = StatusRunning
	if e.metrics != nil {
		e.metrics.JobStarted()
	}
	return true
}

func (e *Executor) setCanceled(id string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if st := e.states[id]; st.Status == StatusQueued {
		st.Status = StatusCanceled
	}
}

func (e *Executor) setFailed(id string, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.states[id]
	st.Status = StatusFailed
	st.Error = err.Error()
	if e.metrics != nil {
		e.metrics.JobFinished(false)
	}
}

func (e *Executor) setDone(id string, sum Summary) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.states[id]
	st.Status = StatusDone
	s := sum
	st.Summary = &s
	if e.metrics != nil {
		e.metrics.JobFinished(true)
	}
}

// dataset returns the generated dataset for a request, cached by
// (kind, vertices, edges, seed) so concurrent jobs over the same graph
// generate it once.
func (e *Executor) dataset(req JobRequest) (*datagen.Dataset, error) {
	key := datasetKey{kind: req.GraphKind, vertices: req.Vertices, edges: req.Edges, seed: req.Seed}
	e.dsMu.Lock()
	defer e.dsMu.Unlock()
	if ds, ok := e.datasets[key]; ok {
		return ds, nil
	}
	var kind datagen.Kind
	switch req.GraphKind {
	case "social":
		kind = datagen.SocialNetwork
	case "rmat":
		kind = datagen.RMAT
	case "uniform":
		kind = datagen.Uniform
	}
	ds, err := datagen.Generate(datagen.Config{
		Kind: kind, Vertices: req.Vertices, Edges: req.Edges,
		Seed: req.Seed, Directed: true,
	})
	if err != nil {
		return nil, err
	}
	e.datasets[key] = ds
	return ds, nil
}

func (e *Executor) run(id string) (Summary, *archive.Job, error) {
	e.mu.Lock()
	req := e.states[id].Request
	e.mu.Unlock()

	ds, err := e.dataset(req)
	if err != nil {
		return Summary{}, nil, err
	}
	spec := platforms.Spec{
		Platform:   req.Platform,
		Algorithm:  req.Algorithm,
		Source:     datagen.PeripheralSource(ds.Graph),
		Iterations: req.Iterations,
		Dataset:    ds,
		JobID:      id,
	}
	if req.Nodes > 0 {
		cfg := platforms.DAS5Config()
		cfg.Nodes = req.Nodes
		spec.Cluster = cfg
	}
	out, err := platforms.Run(spec)
	if err != nil {
		return Summary{}, nil, err
	}
	return summarize(req, out), out.Job, nil
}

func summarize(req JobRequest, out *platforms.Output) Summary {
	ops := 0
	if out.Job.Root != nil {
		out.Job.Root.Walk(func(*archive.Operation) { ops++ })
	}
	sum := Summary{
		ID:                out.Job.ID,
		Platform:          out.Job.Platform,
		Algorithm:         req.Algorithm,
		Runtime:           out.Runtime,
		Supersteps:        out.Supersteps,
		Operations:        ops,
		SetupPercent:      out.Breakdown.SetupPercent(),
		IOPercent:         out.Breakdown.IOPercent(),
		ProcessingPercent: out.Breakdown.ProcessingPercent(),
		ReplicationFactor: out.ReplicationFactor,
	}
	for _, me := range out.ModelErrors {
		sum.ModelErrors = append(sum.ModelErrors, fmt.Sprintf("%v", me))
	}
	return sum
}

// ClusterDefaults exposes the default cluster model so callers (and
// docs) can report what Nodes=0 means.
func ClusterDefaults() cluster.Config { return platforms.DAS5Config() }
