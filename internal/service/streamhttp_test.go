package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/archivedb"
	"repro/internal/datagen"
	"repro/internal/envmon"
	"repro/internal/platforms"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/trace"
)

// streamStack wires a service stack with live streaming enabled.
func streamStack(t *testing.T, opts ServerOptions) (*httptest.Server, *Store) {
	t.Helper()
	store := NewStore()
	metrics := NewMetrics()
	exec := NewExecutor(1, 4, store, metrics)
	srv := NewServerWith(exec, store, metrics, opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		exec.Shutdown(context.Background())
	})
	return ts, store
}

// streamEventsFixture is a well-formed event stream for a tiny job:
// root with two sequential children, one info, one env sample, sealed
// done at t=6.
func streamEventsFixture() []stream.Event {
	return []stream.Event{
		{Seq: 1, Type: stream.TypeStart, Time: 0, Op: "op-1", Actor: "Client", Mission: "Job"},
		{Seq: 2, Type: stream.TypeStart, Time: 1, Op: "op-2", Parent: "op-1", Actor: "Worker-0", Mission: "Load"},
		{Seq: 3, Type: stream.TypeInfo, Time: 1.5, Op: "op-2", Key: "Bytes", Value: "1000"},
		{Seq: 4, Type: stream.TypeEnd, Time: 2, Op: "op-2"},
		{Seq: 5, Type: stream.TypeEnv, Time: 2, Node: "node-0", Kind: "cpu", Used: 1.5},
		{Seq: 6, Type: stream.TypeStart, Time: 2, Op: "op-3", Parent: "op-1", Actor: "Worker-1", Mission: "Compute"},
		{Seq: 7, Type: stream.TypeEnd, Time: 5, Op: "op-3"},
		{Seq: 8, Type: stream.TypeEnd, Time: 6, Op: "op-1"},
		{Seq: 9, Type: stream.TypeSeal, Time: 6, Platform: "Giraph", Algorithm: "BFS", State: stream.StateDone},
	}
}

func postIngest(t *testing.T, base, id string, events []stream.Event) (int, ingestResponse, []byte, http.Header) {
	t.Helper()
	body, err := stream.EncodeEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/ingest/"+id, "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	var ack ingestResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(payload, &ack); err != nil {
			t.Fatalf("bad ingest ack: %v: %s", err, payload)
		}
	}
	return resp.StatusCode, ack, payload, resp.Header
}

func TestIngestLifecycle(t *testing.T) {
	ts, store := streamStack(t, ServerOptions{})
	events := streamEventsFixture()

	code, ack, _, _ := postIngest(t, ts.URL, "j1", events[:5])
	if code != http.StatusOK {
		t.Fatalf("first batch: %d", code)
	}
	if ack.Accepted != 5 || ack.LastSeq != 5 || ack.State != "streaming" {
		t.Fatalf("first ack: %+v", ack)
	}

	// Replaying the acked prefix plus the rest is idempotent and seals.
	code, ack, _, _ = postIngest(t, ts.URL, "j1", events)
	if code != http.StatusOK {
		t.Fatalf("seal batch: %d", code)
	}
	if ack.Accepted != 4 || ack.Duplicates != 5 || ack.LastSeq != 9 || ack.State != "archived" {
		t.Fatalf("seal ack: %+v", ack)
	}

	sj, ok := store.Get("j1")
	if !ok {
		t.Fatal("sealed job not in store")
	}
	if sj.Summary.Platform != "Giraph" || sj.Summary.Algorithm != "BFS" || sj.Summary.Operations != 3 {
		t.Fatalf("stored summary: %+v", sj.Summary)
	}
	if sj.Summary.Runtime != 6 {
		t.Fatalf("runtime = %v, want 6", sj.Summary.Runtime)
	}

	if code, body, _ := getBytes(t, ts.URL+"/jobs/j1/archive"); code != http.StatusOK || !bytes.Contains(body, []byte("op-3")) {
		t.Fatalf("archive after seal: %d: %s", code, body)
	}

	// A full replay after archiving gets a terminal success, not a gap.
	code, ack, _, _ = postIngest(t, ts.URL, "j1", events)
	if code != http.StatusOK || ack.State != "archived" || ack.Accepted != 0 {
		t.Fatalf("post-archive replay: %d %+v", code, ack)
	}
}

func TestIngestErrors(t *testing.T) {
	ts, _ := streamStack(t, ServerOptions{})
	events := streamEventsFixture()

	// A gap answers 409 with the expected next sequence.
	if _, _, _, _ = postIngest(t, ts.URL, "g1", events[:2]); true {
		code, _, body, hdr := postIngest(t, ts.URL, "g1", events[3:5])
		if code != http.StatusConflict {
			t.Fatalf("gap: %d: %s", code, body)
		}
		if hdr.Get("X-Granula-Expected-Seq") != "3" {
			t.Fatalf("expected-seq header = %q", hdr.Get("X-Granula-Expected-Seq"))
		}
	}

	// Malformed lines answer 400.
	resp, err := http.Post(ts.URL+"/ingest/g2", "application/x-ndjson", strings.NewReader("{not json}\n"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed: %d: %s", resp.StatusCode, body)
	}

	// A tree-invalid batch answers 400 and leaves state untouched.
	bad := []stream.Event{{Seq: 3, Type: stream.TypeEnd, Time: 2, Op: "nope"}}
	if code, _, body, _ := postIngest(t, ts.URL, "g1", bad); code != http.StatusBadRequest {
		t.Fatalf("invalid batch: %d: %s", code, body)
	}
	if code, ack, _, _ := postIngest(t, ts.URL, "g1", events); code != http.StatusOK || ack.State != "archived" {
		t.Fatalf("valid continuation after rejects: %d %+v", code, ack)
	}
}

func TestIngestBackpressure(t *testing.T) {
	ts, _ := streamStack(t, ServerOptions{StreamConfig: stream.Config{MaxLiveJobs: 1, MaxEventsPerJob: 6}})
	events := streamEventsFixture()

	if code, _, _, _ := postIngest(t, ts.URL, "b1", events[:4]); code != http.StatusOK {
		t.Fatalf("open b1: %d", code)
	}
	// Second live job exceeds MaxLiveJobs.
	code, _, body, hdr := postIngest(t, ts.URL, "b2", events[:2])
	if code != http.StatusTooManyRequests {
		t.Fatalf("live-job overflow: %d: %s", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Growing b1 past MaxEventsPerJob sheds too.
	if code, _, _, _ := postIngest(t, ts.URL, "b1", events[:8]); code != http.StatusTooManyRequests {
		t.Fatalf("event overflow: %d", code)
	}
}

func TestStatusStreaming(t *testing.T) {
	ts, _ := streamStack(t, ServerOptions{})
	events := streamEventsFixture()
	postIngest(t, ts.URL, "s1", events[:5])

	st := getStatus(t, ts.URL, "s1")
	if st.Status != StatusStreaming {
		t.Fatalf("status = %q, want streaming", st.Status)
	}
	if st.Stream == nil || st.Stream.LastSeq != 5 || st.Stream.Events != 5 ||
		st.Stream.CompletedOps != 1 || st.Stream.OpenOps != 1 {
		t.Fatalf("stream progress: %+v", st.Stream)
	}
	if st.Request.Platform != "" {
		// The platform arrives with the seal; until then it is unknown.
		t.Fatalf("platform before seal: %q", st.Request.Platform)
	}

	postIngest(t, ts.URL, "s1", events)
	st = getStatus(t, ts.URL, "s1")
	if st.Status != StatusDone || st.Summary == nil {
		t.Fatalf("archived status: %+v", st)
	}
}

// TestQueryLiveAndCacheBypass pins satellite (a): responses computed
// from a live job are never cached (no stale bytes, no ETag), and the
// sealed archive re-enters the response cache under a fresh generation
// with a strong ETag.
func TestQueryLiveAndCacheBypass(t *testing.T) {
	ts, _ := streamStack(t, ServerOptions{})
	events := streamEventsFixture()
	q := "/jobs/q1/query?q=" + url.QueryEscape(`duration >= 0 order by start`)

	postIngest(t, ts.URL, "q1", events[:4]) // op-2 completed
	code, body1, hdr1 := getBytes(t, ts.URL+q)
	if code != http.StatusOK {
		t.Fatalf("live query: %d: %s", code, body1)
	}
	if hdr1.Get("ETag") != "" {
		t.Fatalf("live response carries ETag %q", hdr1.Get("ETag"))
	}
	var r1 queryResponse
	if err := json.Unmarshal(body1, &r1); err != nil {
		t.Fatal(err)
	}
	if !r1.Live || r1.LastSeq != 4 || r1.Count != 1 {
		t.Fatalf("live response: live=%v lastSeq=%d count=%d", r1.Live, r1.LastSeq, r1.Count)
	}

	// More events arrive without any store write: a cached body would now
	// be stale. The same URL must reflect them.
	postIngest(t, ts.URL, "q1", events[:7]) // op-3 completed too
	_, body2, _ := getBytes(t, ts.URL+q)
	var r2 queryResponse
	if err := json.Unmarshal(body2, &r2); err != nil {
		t.Fatal(err)
	}
	if r2.Count != 2 || r2.LastSeq != 7 {
		t.Fatalf("stale live response after growth: count=%d lastSeq=%d", r2.Count, r2.LastSeq)
	}

	// Seal: the archive is published, responses turn cacheable with a
	// fresh ETag, and revalidation 304s.
	postIngest(t, ts.URL, "q1", events)
	code, body3, hdr3 := getBytes(t, ts.URL+q)
	if code != http.StatusOK || hdr3.Get("ETag") == "" {
		t.Fatalf("sealed query: %d etag=%q", code, hdr3.Get("ETag"))
	}
	var r3 queryResponse
	if err := json.Unmarshal(body3, &r3); err != nil {
		t.Fatal(err)
	}
	if r3.Live || r3.LastSeq != 0 || r3.Count != 3 {
		t.Fatalf("sealed response: live=%v lastSeq=%d count=%d", r3.Live, r3.LastSeq, r3.Count)
	}
	req, _ := http.NewRequest("GET", ts.URL+q, nil)
	req.Header.Set("If-None-Match", hdr3.Get("ETag"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation after seal: %d", resp.StatusCode)
	}

	// The live mission-indexed path behaves the same way.
	postIngest(t, ts.URL, "q2", events[:4])
	if _, body, hdr := getBytes(t, ts.URL+"/jobs/q2/query?mission=Load"); hdr.Get("ETag") != "" || !bytes.Contains(body, []byte("op-2")) {
		t.Fatalf("live mission query: etag=%q body=%s", hdr.Get("ETag"), body)
	}
}

// watchCollect tails /watch/{id} until the stream closes and returns
// the raw SSE text.
func watchCollect(t *testing.T, base, id, extra string, lastEventID string) string {
	t.Helper()
	req, err := http.NewRequest("GET", base+"/watch/"+id+extra, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	client := &http.Client{} // no timeout: the server closes at seal
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch %s: %d: %s", id, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("watch content type %q", ct)
	}
	return string(body)
}

func TestWatchTailAndResume(t *testing.T) {
	ts, _ := streamStack(t, ServerOptions{WatchHeartbeat: 50 * time.Millisecond})
	events := streamEventsFixture()
	postIngest(t, ts.URL, "w1", events[:5])

	// Seal arrives while the tail is open; the server then closes it.
	go func() {
		time.Sleep(150 * time.Millisecond)
		body, _ := stream.EncodeEvents(events)
		resp, err := http.Post(ts.URL+"/ingest/w1", "application/x-ndjson", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	}()
	text := watchCollect(t, ts.URL, "w1", "", "")
	for _, want := range []string{"id: 1\nevent: op\n", "id: 5\nevent: env\n", "id: 9\nevent: seal\n", ": heartbeat"} {
		if !strings.Contains(text, want) {
			t.Fatalf("tail missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, `"op":"op-1"`) {
		t.Fatalf("frame data missing op-1:\n%s", text)
	}

	// Resume from seq 7 via Last-Event-ID on the archived job replays
	// nothing; a fresh tail of the archived job gets one seal frame.
	text = watchCollect(t, ts.URL, "w1", "", "7")
	if strings.Contains(text, "id: 1\n") || !strings.Contains(text, "event: seal") {
		t.Fatalf("archived tail:\n%s", text)
	}
}

func TestWatchResumeMidStream(t *testing.T) {
	ts, _ := streamStack(t, ServerOptions{})
	events := streamEventsFixture()
	postIngest(t, ts.URL, "w2", events[:6])
	go func() {
		time.Sleep(100 * time.Millisecond)
		body, _ := stream.EncodeEvents(events)
		resp, err := http.Post(ts.URL+"/ingest/w2", "application/x-ndjson", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	}()
	text := watchCollect(t, ts.URL, "w2", "?from=4", "")
	if strings.Contains(text, "id: 2\n") || strings.Contains(text, "id: 4\n") {
		t.Fatalf("resume replayed acked frames:\n%s", text)
	}
	for _, want := range []string{"id: 5\n", "id: 9\nevent: seal\n"} {
		if !strings.Contains(text, want) {
			t.Fatalf("resume missing %q:\n%s", want, text)
		}
	}
}

func TestWatchWindowedAggregation(t *testing.T) {
	ts, _ := streamStack(t, ServerOptions{})
	events := streamEventsFixture()
	postIngest(t, ts.URL, "w3", events[:5])
	go func() {
		time.Sleep(100 * time.Millisecond)
		body, _ := stream.EncodeEvents(events)
		resp, err := http.Post(ts.URL+"/ingest/w3", "application/x-ndjson", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	}()
	text := watchCollect(t, ts.URL, "w3", "?window=2s", "")
	if !strings.Contains(text, "event: window\n") {
		t.Fatalf("no window frames:\n%s", text)
	}
	if !strings.Contains(text, `"phases":{"Load":1}`) {
		t.Fatalf("window 0 lacks Load phase duration:\n%s", text)
	}
	if !strings.Contains(text, "event: seal\n") {
		t.Fatalf("windowed tail lacks final seal:\n%s", text)
	}
}

func TestWatchUnknownAndExecutorJobs(t *testing.T) {
	ts, _ := streamStack(t, ServerOptions{})
	if code, _, _ := getBytes(t, ts.URL+"/watch/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown watch: %d", code)
	}
}

// TestHTTPStreamedSealEquivalence is the HTTP half of the
// seal-equivalence oracle: a job streamed through /ingest and sealed
// must serve byte-identical /archive and /query responses — including
// the strong ETag — to the same job run by the executor's batch path.
func TestHTTPStreamedSealEquivalence(t *testing.T) {
	req := JobRequest{Platform: "Giraph", Algorithm: "BFS", Vertices: 300, Edges: 900, ID: "eq-job"}

	// Server A: the batch path.
	storeA := NewStore()
	metricsA := NewMetrics()
	execA := NewExecutorWith(1, 4, storeA, metricsA, ExecutorOptions{HostParallelism: 1})
	tsA := httptest.NewServer(NewServerWith(execA, storeA, metricsA, ServerOptions{}).Handler())
	defer tsA.Close()
	defer execA.Shutdown(context.Background())
	if id := submitUntilAccepted(t, tsA.URL, req); id != "eq-job" {
		t.Fatalf("submit id %q", id)
	}
	if st := waitHTTPTerminal(t, tsA.URL, "eq-job"); st.Status != StatusDone {
		t.Fatalf("batch job: %+v", st)
	}

	// Capture the identical simulation's live records, exactly as an
	// external runner would emit them.
	ds, err := datagen.Generate(datagen.Config{
		Kind: datagen.SocialNetwork, Vertices: 300, Edges: 900, Seed: 42, Directed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var events []stream.Event
	push := func(e stream.Event) {
		mu.Lock()
		e.Seq = uint64(len(events) + 1)
		events = append(events, e)
		mu.Unlock()
	}
	out, err := platforms.Run(platforms.Spec{
		Platform:        "Giraph",
		Algorithm:       "BFS",
		Source:          datagen.PeripheralSource(ds.Graph),
		Iterations:      10,
		Dataset:         ds,
		JobID:           "eq-job",
		HostParallelism: 1,
		RecordSink: func(r trace.Record) {
			push(stream.Event{Type: string(r.Event), Time: r.Time, Op: r.Op, Parent: r.Parent,
				Actor: r.Actor, Mission: r.Mission, Key: r.Key, Value: r.Value})
		},
		SampleSink: func(s envmon.Sample) {
			push(stream.Event{Type: stream.TypeEnv, Time: s.Time, Node: s.Node, Kind: s.Kind, Used: s.Used})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	push(stream.Event{Type: stream.TypeSeal, Time: out.Runtime, Platform: "Giraph", Algorithm: "BFS", State: stream.StateDone})

	// Server B: the same job arrives purely through /ingest, in batches.
	tsB, _ := streamStack(t, ServerOptions{})
	for off := 0; off < len(events); off += 64 {
		end := min(off+64, len(events))
		if code, _, body, _ := postIngest(t, tsB.URL, "eq-job", events[off:end]); code != http.StatusOK {
			t.Fatalf("ingest batch at %d: %d: %s", off, code, body)
		}
	}

	paths := []string{
		"/jobs/eq-job/archive",
		"/jobs/eq-job/query?q=" + url.QueryEscape(`mission = "Superstep" order by start`),
		"/jobs/eq-job/query?mission=ProcessGraph",
	}
	for _, p := range paths {
		codeA, bodyA, hdrA := getBytes(t, tsA.URL+p)
		codeB, bodyB, hdrB := getBytes(t, tsB.URL+p)
		if codeA != http.StatusOK || codeB != http.StatusOK {
			t.Fatalf("%s: batch %d streamed %d", p, codeA, codeB)
		}
		if !bytes.Equal(bodyA, bodyB) {
			t.Fatalf("%s: streamed bytes differ from batch (%d vs %d bytes)", p, len(bodyB), len(bodyA))
		}
		if hdrA.Get("ETag") == "" || hdrA.Get("ETag") != hdrB.Get("ETag") {
			t.Fatalf("%s: ETag %q vs %q", p, hdrA.Get("ETag"), hdrB.Get("ETag"))
		}
	}
}

// TestStreamRestartRecovery is the chaos half: acked ingest batches
// survive a hard restart — the live job resumes exactly where it was,
// tails replay the recovered events, and the stream still seals into
// the archive.
func TestStreamRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	events := streamEventsFixture()

	open := func() (*httptest.Server, *Store, *archivedb.DB, *Executor) {
		db, err := archivedb.Open(dir, archivedb.Options{})
		if err != nil {
			t.Fatal(err)
		}
		metrics := NewMetrics()
		store, err := NewStoreWithOptions(db, StoreOptions{Metrics: metrics})
		if err != nil {
			t.Fatal(err)
		}
		exec := NewExecutor(1, 4, store, metrics)
		ts := httptest.NewServer(NewServerWith(exec, store, metrics, ServerOptions{}).Handler())
		return ts, store, db, exec
	}
	kill := func(ts *httptest.Server, store *Store, db *archivedb.DB, exec *Executor) {
		ts.Close()
		ctx, cancel := newTimeoutCtx(10 * time.Second)
		defer cancel()
		exec.Shutdown(ctx)
		store.Close()
		db.Close()
	}

	ts1, store1, db1, exec1 := open()
	if code, ack, _, _ := postIngest(t, ts1.URL, "r1", events[:3]); code != http.StatusOK || ack.LastSeq != 3 {
		t.Fatalf("batch 1: %d %+v", code, ack)
	}
	if code, ack, _, _ := postIngest(t, ts1.URL, "r1", events[:6]); code != http.StatusOK || ack.LastSeq != 6 {
		t.Fatalf("batch 2: %d %+v", code, ack)
	}
	kill(ts1, store1, db1, exec1) // crash mid-stream, after two acks

	ts2, store2, db2, exec2 := open()
	st := getStatus(t, ts2.URL, "r1")
	if st.Status != StatusStreaming || st.Stream == nil || st.Stream.LastSeq != 6 {
		t.Fatalf("recovered status: %+v", st)
	}
	// The recovered tail replays every acked event.
	go func() {
		time.Sleep(100 * time.Millisecond)
		body, _ := stream.EncodeEvents(events)
		resp, err := http.Post(ts2.URL+"/ingest/r1", "application/x-ndjson", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
	}()
	text := watchCollect(t, ts2.URL, "r1", "", "")
	for _, want := range []string{"id: 1\n", "id: 6\n", "id: 9\nevent: seal\n"} {
		if !strings.Contains(text, want) {
			t.Fatalf("recovered tail missing %q:\n%s", want, text)
		}
	}
	// The watch closes on the seal frame, which the ingest handler
	// publishes just before it archives the job — give the put a moment.
	archived := false
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if _, ok := store2.Get("r1"); ok {
			archived = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !archived {
		t.Fatal("sealed job not archived after recovery")
	}
	kill(ts2, store2, db2, exec2) // restart again: archived job back, stream batches gone

	ts3, store3, db3, exec3 := open()
	defer kill(ts3, store3, db3, exec3)
	if _, ok := store3.Get("r1"); !ok {
		t.Fatal("archive lost across second restart")
	}
	if st := getStatus(t, ts3.URL, "r1"); st.Status != StatusDone {
		t.Fatalf("status after second restart: %+v", st)
	}
	if n := len(store3.RecoveredStreamBatches()); n != 0 {
		t.Fatalf("%d stale stream batches survived archiving", n)
	}
}

func TestStoreStreamBatchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := archivedb.Open(dir, archivedb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	store, err := NewStoreWithOptions(db, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []struct {
		id   string
		seq  uint64
		data string
	}{{"j1", 4, "a"}, {"j1", 9, "b"}, {"j2", 3, "c"}} {
		if err := store.AppendStreamBatch(b.id, b.seq, []byte(b.data)); err != nil {
			t.Fatal(err)
		}
	}
	store.Close()
	db.Close()

	db2, err := archivedb.Open(dir, archivedb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	store2, err := NewStoreWithOptions(db2, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := store2.RecoveredStreamBatches()
	if len(got) != 3 {
		t.Fatalf("recovered %d batches, want 3: %+v", len(got), got)
	}
	want := []StreamBatch{
		{JobID: "j1", LastSeq: 4, Payload: []byte("a")},
		{JobID: "j1", LastSeq: 9, Payload: []byte("b")},
		{JobID: "j2", LastSeq: 3, Payload: []byte("c")},
	}
	for i, w := range want {
		g := got[i]
		if g.JobID != w.JobID || g.LastSeq != w.LastSeq || !bytes.Equal(g.Payload, w.Payload) {
			t.Fatalf("batch %d = %+v, want %+v", i, g, w)
		}
	}
	if err := store2.DeleteStreamBatches("j1"); err != nil {
		t.Fatal(err)
	}
	store2.Close()
	db2.Close()

	db3, err := archivedb.Open(dir, archivedb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	store3, err := NewStoreWithOptions(db3, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		store3.Close()
		db3.Close()
	}()
	got = store3.RecoveredStreamBatches()
	if len(got) != 1 || got[0].JobID != "j2" {
		t.Fatalf("after delete: %+v", got)
	}
}

// TestExecutorJobsStreamLive pins the in-process emitter hooks: a job
// run by the executor streams its own supersteps, so /watch tails it
// and ends with a seal frame once it completes.
func TestExecutorJobsStreamLive(t *testing.T) {
	streams := stream.NewManager(stream.Config{})
	store := NewStore()
	metrics := NewMetrics()
	exec := NewExecutorWith(1, 4, store, metrics, ExecutorOptions{Streams: streams, HostParallelism: 1})
	ts := httptest.NewServer(NewServerWith(exec, store, metrics, ServerOptions{Streams: streams}).Handler())
	defer ts.Close()
	defer exec.Shutdown(context.Background())

	id := submitUntilAccepted(t, ts.URL, JobRequest{Platform: "Giraph", Algorithm: "BFS", Vertices: 300, Edges: 900})

	// Attach whenever possible: before the run opens the stream the
	// watch answers 409 (queued) — poll through it. Whether the tail
	// catches the job live or already archived, it must end in a seal.
	deadline := time.Now().Add(30 * time.Second)
	var text string
	for {
		req, _ := http.NewRequest("GET", ts.URL+"/watch/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			text = string(body)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watch never attached: %d: %s", resp.StatusCode, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(text, "event: seal") {
		t.Fatalf("executor tail lacks seal:\n%s", text)
	}
	if st := waitHTTPTerminal(t, ts.URL, id); st.Status != StatusDone {
		t.Fatalf("job: %+v", st)
	}
	if streams.Live() != 0 {
		t.Fatalf("%d live jobs leaked after completion", streams.Live())
	}
	if code, _, _ := getBytes(t, ts.URL+"/jobs/"+id+"/archive"); code != http.StatusOK {
		t.Fatalf("archive: %d", code)
	}
}

// TestLoadTestStreamingMode smokes satellite (d): the loadtest's
// -stream-ratio path drives /ingest with concurrent /watch tails and
// reports ingest throughput and tail latency.
func TestLoadTestStreamingMode(t *testing.T) {
	ts, _ := streamStack(t, ServerOptions{})
	res, err := RunLoadTest(LoadTestConfig{
		BaseURL:      ts.URL,
		Jobs:         3,
		Concurrency:  3,
		StreamRatio:  1,
		StreamEvents: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.Streamed != 3 {
		t.Fatalf("streaming loadtest: %+v", res)
	}
	if res.IngestEvents == 0 || res.TailMax == 0 {
		t.Fatalf("missing streaming stats: %+v", res)
	}
	if !strings.Contains(res.Render(), "streaming:") {
		t.Fatalf("render lacks streaming line:\n%s", res.Render())
	}
}

func TestStreamMetricsExposed(t *testing.T) {
	ts, _ := streamStack(t, ServerOptions{})
	events := streamEventsFixture()
	postIngest(t, ts.URL, "m1", events[:5])
	postIngest(t, ts.URL, "m1", events[3:5]) // pure replay still counts a batch

	_, body, _ := getBytes(t, ts.URL+"/metrics")
	for _, want := range []string{
		"granula_stream_ingest_batches_total 2",
		"granula_stream_ingest_events_total 5",
		"granula_stream_live_jobs 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestEmitStreamBenchJSON writes BENCH_stream.json — ingest throughput
// at 1/8/64 concurrent writers and the incremental-index speedup over
// per-event rebuilds — when BENCH_STREAM_OUT names the output path. CI
// runs it to archive the numbers; without the env var it is a no-op
// skip.
func TestEmitStreamBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_STREAM_OUT")
	if path == "" {
		t.Skip("BENCH_STREAM_OUT not set")
	}
	ts, _ := streamStack(t, ServerOptions{StreamConfig: stream.Config{MaxLiveJobs: 128}})

	type ingestPoint struct {
		Writers   int     `json:"writers"`
		Events    int     `json:"events"`
		EventsSec float64 `json:"events_per_sec"`
	}
	var ingest []ingestPoint
	for _, writers := range []int{1, 8, 64} {
		events := syntheticStream(512)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				id := fmt.Sprintf("bench-%d-%d", writers, w)
				for off := 0; off < len(events); off += 256 {
					body, _ := stream.EncodeEvents(events[off:min(off+256, len(events))])
					for {
						resp, err := http.Post(ts.URL+"/ingest/"+id, "application/x-ndjson", bytes.NewReader(body))
						if err != nil {
							t.Error(err)
							return
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if resp.StatusCode == http.StatusOK {
							break
						}
						if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode != http.StatusServiceUnavailable {
							t.Errorf("ingest: %d", resp.StatusCode)
							return
						}
						time.Sleep(10 * time.Millisecond)
					}
				}
			}(w)
		}
		wg.Wait()
		total := writers * len(events)
		ingest = append(ingest, ingestPoint{
			Writers: writers, Events: total,
			EventsSec: float64(total) / time.Since(start).Seconds(),
		})
	}

	// Incremental index vs per-event rebuild: appending one completed
	// operation and snapshotting must beat rebuilding the whole columnar
	// index from the growing archive each time.
	const ops = 2000
	root := &archive.Operation{ID: "root", Actor: "Client", Mission: "Job", Start: 0, End: ops}
	children := make([]*archive.Operation, ops)
	for i := range children {
		children[i] = &archive.Operation{
			ID: fmt.Sprintf("op-%d", i), Actor: "Worker", Mission: "Superstep",
			Start: float64(i), End: float64(i) + 0.5,
		}
	}
	startInc := time.Now()
	ac := query.NewAppendColumns()
	ac.Append(root, 0)
	for _, op := range children {
		ac.Append(op, 1)
		_ = ac.Snapshot()
	}
	incremental := time.Since(startInc)

	startRe := time.Now()
	for i := range children {
		root.Children = children[:i+1]
		_ = query.BuildColumns(&archive.Job{ID: "bench", Root: root})
	}
	rebuild := time.Since(startRe)

	report := struct {
		Ingest        []ingestPoint `json:"ingest"`
		IndexOps      int           `json:"index_ops"`
		IncrementalMs float64       `json:"incremental_ms"`
		RebuildMs     float64       `json:"rebuild_ms"`
		IndexSpeedup  float64       `json:"index_speedup"`
		HostNote      string        `json:"host_note"`
	}{
		Ingest: ingest, IndexOps: ops,
		IncrementalMs: float64(incremental.Microseconds()) / 1000,
		RebuildMs:     float64(rebuild.Microseconds()) / 1000,
		IndexSpeedup:  rebuild.Seconds() / incremental.Seconds(),
		HostNote:      fmt.Sprintf("GOMAXPROCS=%d", runtime.GOMAXPROCS(0)),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s\n%s", path, data)
}
