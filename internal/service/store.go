// Package service implements granula-serve: the long-running serving
// layer over the Granula pipeline. It owns a bounded job executor pool
// that runs (platform, algorithm, graph) simulations concurrently, an
// in-memory archive store with secondary indexes over operation path,
// actor, and mission (DESIGN.md ablation item 6: indexed vs. linear
// scan), and a JSON HTTP API that exposes submission, status, archive
// retrieval, the query language, visualization, and regression diffs.
//
// The store and executor are safe for concurrent use; every JSON
// response is deterministic (sorted keys and slices) so serve output is
// diff-stable across runs, matching the repo's determinism guarantee.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/archive"
	"repro/internal/archivedb"
	"repro/internal/query"
	"repro/internal/shard"
)

// Summary is the condensed result of one analyzed job, suitable for a
// status response without shipping the whole operation tree.
type Summary struct {
	ID                string   `json:"id"`
	Platform          string   `json:"platform"`
	Algorithm         string   `json:"algorithm"`
	Runtime           float64  `json:"runtime"`
	Supersteps        int      `json:"supersteps"`
	Operations        int      `json:"operations"`
	SetupPercent      float64  `json:"setupPercent"`
	IOPercent         float64  `json:"ioPercent"`
	ProcessingPercent float64  `json:"processingPercent"`
	ReplicationFactor float64  `json:"replicationFactor,omitempty"`
	ModelErrors       []string `json:"modelErrors,omitempty"`
}

// StoredJob is one archived job plus its secondary indexes. The indexes
// are built once at Put time, after which the operation tree is treated
// as immutable; repeated queries then hit a map lookup instead of
// rescanning the tree. Cols is the columnar projection of the operation
// tree that query.SelectColumns evaluates against, built at the same
// time under the same immutability assumption.
type StoredJob struct {
	Job     *archive.Job
	Summary Summary
	Cols    *query.Columns

	byMission map[string][]*archive.Operation
	byActor   map[string][]*archive.Operation
	byPath    map[string][]*archive.Operation
}

// PathKey is the index key for an operation's mission path from the
// root, e.g. "GiraphJob/ProcessGraph/Superstep".
func PathKey(op *archive.Operation) string {
	return strings.Join(op.Path(), "/")
}

func indexJob(job *archive.Job, sum Summary) *StoredJob {
	sj := &StoredJob{
		Job:       job,
		Summary:   sum,
		byMission: map[string][]*archive.Operation{},
		byActor:   map[string][]*archive.Operation{},
		byPath:    map[string][]*archive.Operation{},
	}
	sj.Cols = query.BuildColumns(job)
	if job.Root != nil {
		job.Root.Walk(func(op *archive.Operation) {
			sj.byMission[op.Mission] = append(sj.byMission[op.Mission], op)
			sj.byActor[op.Actor] = append(sj.byActor[op.Actor], op)
			sj.byPath[PathKey(op)] = append(sj.byPath[PathKey(op)], op)
		})
	}
	return sj
}

// ByMission returns every operation with the given mission in
// depth-first order, equivalent to Job.FindAll without the rescan.
func (sj *StoredJob) ByMission(mission string) []*archive.Operation {
	return sj.byMission[mission]
}

// ByActor returns every operation executed by the given actor, in
// depth-first order.
func (sj *StoredJob) ByActor(actor string) []*archive.Operation {
	return sj.byActor[actor]
}

// ByPath returns the operations whose mission path from the root equals
// the given "A/B/C" key, equivalent to Job.Find without the descent.
func (sj *StoredJob) ByPath(path string) []*archive.Operation {
	return sj.byPath[path]
}

// Missions returns the distinct missions present in the job, sorted.
func (sj *StoredJob) Missions() []string {
	out := make([]string, 0, len(sj.byMission))
	for m := range sj.byMission {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Actors returns the distinct actors present in the job, sorted.
func (sj *StoredJob) Actors() []string {
	out := make([]string, 0, len(sj.byActor))
	for a := range sj.byActor {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Paths returns the distinct mission paths present in the job, sorted.
func (sj *StoredJob) Paths() []string {
	out := make([]string, 0, len(sj.byPath))
	for p := range sj.byPath {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// indexMeta projects the job's secondary-index keys into the form
// archivedb persists next to each record.
func (sj *StoredJob) indexMeta() archivedb.IndexMeta {
	return archivedb.IndexMeta{
		Missions: sj.Missions(),
		Actors:   sj.Actors(),
		Paths:    sj.Paths(),
	}
}

// persistedJob is the archivedb payload schema: the serving summary
// plus the full performance archive of one job. encoding/json emits
// struct fields in declaration order and map keys sorted, so the bytes
// are deterministic for a given job. Version orders replicated writes
// of the same ID: a replica at version >= v treats an incoming v as a
// replay and acks without rewriting. Records persisted before versions
// existed carry 0 and are read back as version 1.
type persistedJob struct {
	Summary Summary      `json:"summary"`
	Job     *archive.Job `json:"job"`
	Version uint64       `json:"version,omitempty"`
}

// ErrDegraded is returned by Put while the persistence circuit breaker
// is open: the store is in degraded read-only mode — reads and queries
// keep serving from the in-memory cache, but nothing new is accepted
// until a probe confirms storage has recovered. HTTP maps it to 503.
var ErrDegraded = errors.New("service: archive storage degraded (circuit breaker open), store is read-only")

// StoreOptions tunes the durability circuit breaker of a store with a
// backing database; the zero value selects the defaults. Stores without
// a database have no breaker (there is no storage to fail).
type StoreOptions struct {
	// BreakerThreshold is the consecutive persist failures that trip
	// the store into degraded read-only mode; < 1 selects 5.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before a
	// trial is allowed; <= 0 selects 5 s.
	BreakerCooldown time.Duration
	// ProbeInterval is the background recovery-probe period; <= 0
	// selects 500 ms.
	ProbeInterval time.Duration
	// Metrics observes breaker transitions; may be nil.
	Metrics *Metrics
}

// Store is the performance-archive store: completed jobs keyed by job
// ID, each with its secondary indexes. Without a database it is purely
// in-memory (a restart loses everything); with one it is a
// write-through cache — Put persists to the WAL before publishing to
// readers, and opening a store over an existing database restores
// every archived job. A circuit breaker guards persistence: after
// repeated failures the store trips to degraded read-only mode and a
// background probe re-closes the breaker once storage recovers. It is
// safe for concurrent readers and writers.
type Store struct {
	mu       sync.RWMutex
	jobs     map[string]*StoredJob
	versions map[string]uint64
	db       *archivedb.DB

	// streamKeys tracks, per live streamed job, the archivedb keys of
	// its acked ingest batches so sealing can delete them in one sweep.
	streamKeys map[string][]string
	// hints is the in-memory view of the hinted-handoff journal
	// (target -> job ID -> newest hint), mirrored to archivedb under
	// hintKeyPrefix when there is one; see store_hints.go.
	hints map[string]map[string]shard.HintRecord
	// recoveredStream holds the stream batches found during warm-up,
	// sorted by (job, lastSeq); the server replays them at startup.
	recoveredStream []StreamBatch

	// generation counts publishes. It is bumped inside the same critical
	// section that makes a job visible, before the Put acks, so a
	// response computed before a write can only ever be cached under a
	// generation no post-ack reader observes — that is the entire
	// invalidation story of the HTTP response cache.
	generation uint64

	breaker   *Breaker
	probeStop chan struct{}
	probeDone chan struct{}
	closeOnce sync.Once
}

// NewStore returns an empty in-memory store with no durability.
func NewStore() *Store {
	return &Store{
		jobs:       map[string]*StoredJob{},
		versions:   map[string]uint64{},
		streamKeys: map[string][]string{},
		hints:      map[string]map[string]shard.HintRecord{},
	}
}

// NewStoreWithDB returns a store backed by db with default breaker
// options, warmed with every job already persisted in it. A nil db
// degrades to NewStore.
func NewStoreWithDB(db *archivedb.DB) (*Store, error) {
	return NewStoreWithOptions(db, StoreOptions{})
}

// NewStoreWithOptions is NewStoreWithDB with explicit breaker tuning.
func NewStoreWithOptions(db *archivedb.DB, opts StoreOptions) (*Store, error) {
	s := NewStore()
	s.db = db
	if db == nil {
		return s, nil
	}
	s.breaker = NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown, func(to BreakerState) {
		opts.Metrics.BreakerTransition(to)
	})
	interval := opts.ProbeInterval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	s.probeStop = make(chan struct{})
	s.probeDone = make(chan struct{})
	go s.probeLoop(interval)
	for _, id := range db.IDs() {
		payload, ok, err := db.Get(id)
		if err != nil {
			return nil, fmt.Errorf("service: load job %q: %w", id, err)
		}
		if !ok {
			continue
		}
		if target, hintID, isHint := parseHintKey(id); isHint {
			// Journaled hinted-handoff records from before the last
			// shutdown: restore them for the drainer. A hint that fails
			// validation is dropped — the anti-entropy sweep converges the
			// replica it would have repaired.
			rec, err := shard.DecodeHintRecord(payload)
			if err != nil || rec.Target != target || rec.ID != hintID {
				continue
			}
			if s.hints[target] == nil {
				s.hints[target] = map[string]shard.HintRecord{}
			}
			if old, ok := s.hints[target][hintID]; !ok || old.Version <= rec.Version {
				s.hints[target][hintID] = rec
			}
			continue
		}
		if jobID, lastSeq, isStream := parseStreamKey(id); isStream {
			// Acked ingest batches of jobs that were still streaming at
			// the last shutdown. They are not archives; surface them for
			// the serving layer to replay (or discard, if the job was
			// sealed) instead of decoding them as jobs.
			s.streamKeys[jobID] = append(s.streamKeys[jobID], id)
			s.recoveredStream = append(s.recoveredStream, StreamBatch{
				JobID: jobID, LastSeq: lastSeq, Payload: payload,
			})
			continue
		}
		var pj persistedJob
		if err := json.Unmarshal(payload, &pj); err != nil {
			return nil, fmt.Errorf("service: decode job %q: %w", id, err)
		}
		if pj.Job == nil {
			return nil, fmt.Errorf("service: job %q persisted without an archive", id)
		}
		archive.New().Add(pj.Job) // restore parent links and child order
		s.jobs[id] = indexJob(pj.Job, pj.Summary)
		if pj.Version == 0 {
			pj.Version = 1
		}
		s.versions[id] = pj.Version
	}
	sort.Slice(s.recoveredStream, func(i, j int) bool {
		a, b := s.recoveredStream[i], s.recoveredStream[j]
		if a.JobID != b.JobID {
			return a.JobID < b.JobID
		}
		return a.LastSeq < b.LastSeq
	})
	return s, nil
}

// probeLoop is the breaker's recovery path: while the store is
// degraded, it periodically appends a real probe record to the engine —
// the same write path a Put takes — half-opening the breaker and
// closing it on the first success. Without traffic the store would
// otherwise stay read-only forever (submits are shed while degraded, so
// no Put would ever arrive to act as the trial).
func (s *Store) probeLoop(interval time.Duration) {
	defer close(s.probeDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.probeStop:
			return
		case <-t.C:
			if !s.breaker.TryProbe() {
				continue
			}
			if err := s.db.Probe(); err != nil {
				s.breaker.Failure()
			} else {
				s.breaker.Success()
			}
		}
	}
}

// Close stops the background recovery probe. It does not close the
// backing database (the store does not own it). Safe to call multiple
// times; a store without a database has nothing to stop.
func (s *Store) Close() {
	s.closeOnce.Do(func() {
		if s.probeStop != nil {
			close(s.probeStop)
			<-s.probeDone
		}
	})
}

// BreakerState returns the persistence breaker's state; stores without
// a database report closed.
func (s *Store) BreakerState() BreakerState {
	if s.breaker == nil {
		return BreakerClosed
	}
	return s.breaker.State()
}

// ReadOnly reports whether the store is in degraded read-only mode
// (breaker open): reads serve from cache, submits should be shed.
func (s *Store) ReadOnly() bool { return s.BreakerState() == BreakerOpen }

// DB returns the backing database, or nil for an in-memory store.
func (s *Store) DB() *archivedb.DB { return s.db }

// StorageStats returns the backing engine's stats, or nil when the
// store is in-memory.
func (s *Store) StorageStats() *archivedb.Stats {
	if s.db == nil {
		return nil
	}
	st := s.db.Stats()
	return &st
}

// jobMeta projects a stored job's summary into the job.* fields the v2
// query language exposes, keyed by the store key (which is also the
// segment key and the partial's job ID).
func jobMeta(id string, sum Summary) query.JobMeta {
	return query.JobMeta{
		ID:         id,
		Platform:   sum.Platform,
		Algorithm:  sum.Algorithm,
		Runtime:    sum.Runtime,
		Supersteps: sum.Supersteps,
		Operations: sum.Operations,
	}
}

// writeSegment encodes and stores the job's columnar segment. Best
// effort by design: the segment is derived data — a missing or stale
// segment is rebuilt lazily from the in-memory columns on the next
// aggregate query — so a failure here must not fail the Put that
// carries the durable record.
func (s *Store) writeSegment(id string, sj *StoredJob, version uint64) {
	if s.db == nil {
		return
	}
	blob, err := query.EncodeSegment(sj.Cols.Frame(jobMeta(id, sj.Summary)), version)
	if err != nil {
		return
	}
	_ = s.db.PutSegment(id, blob)
}

// Put indexes and stores a completed job under its summary ID. Adding
// the job to a throwaway archive first restores parent links and child
// ordering, so path keys are correct for jobs fresh out of the harness
// (Load-ed archives are already linked; relinking is idempotent).
//
// With a backing database the job is persisted before it becomes
// visible to readers; an error means the job is neither durable nor
// published. While the breaker is open Put fails fast with ErrDegraded
// without touching storage; every real persistence outcome feeds the
// breaker.
func (s *Store) Put(job *archive.Job, sum Summary) error {
	archive.New().Add(job)
	sj := indexJob(job, sum)
	s.mu.RLock()
	version := s.versions[sum.ID] + 1
	s.mu.RUnlock()
	if s.db != nil {
		payload, err := json.Marshal(persistedJob{Summary: sum, Job: job, Version: version})
		if err != nil {
			return fmt.Errorf("service: encode job %q: %w", sum.ID, err)
		}
		if !s.breaker.Allow() {
			return ErrDegraded
		}
		if err := s.db.Put(sum.ID, payload, sj.indexMeta()); err != nil {
			s.breaker.Failure()
			return err
		}
		s.breaker.Success()
		s.writeSegment(sum.ID, sj, version)
	}
	s.mu.Lock()
	s.jobs[sum.ID] = sj
	s.versions[sum.ID] = version
	s.generation++
	s.mu.Unlock()
	return nil
}

// Delete removes a job from the store: the in-memory entry, the
// durable record, and its columnar segment, in that order of
// authority. The publish generation bumps so every cached response
// that could still mention the job is invalidated.
func (s *Store) Delete(id string) error {
	if s.db != nil {
		if err := s.db.Delete(id); err != nil {
			return err
		}
	}
	s.mu.Lock()
	delete(s.jobs, id)
	delete(s.versions, id)
	s.generation++
	s.mu.Unlock()
	return nil
}

// Version returns the stored job's write version (0 when unknown).
func (s *Store) Version(id string) uint64 {
	s.mu.RLock()
	v := s.versions[id]
	s.mu.RUnlock()
	return v
}

// Export returns the replication payload for a stored job: the exact
// persistedJob bytes (from the backing database when there is one, so
// replicas receive what the primary fsynced) plus its version. It feeds
// both the write-path replication fan-out and the router's read-repair.
func (s *Store) Export(id string) (payload []byte, version uint64, ok bool, err error) {
	s.mu.RLock()
	sj, have := s.jobs[id]
	version = s.versions[id]
	s.mu.RUnlock()
	if !have {
		return nil, 0, false, nil
	}
	if s.db != nil {
		payload, have, err = s.db.Get(id)
		if err != nil {
			return nil, 0, false, fmt.Errorf("service: export job %q: %w", id, err)
		}
		if have {
			return payload, version, true, nil
		}
	}
	payload, err = json.Marshal(persistedJob{Summary: sj.Summary, Job: sj.Job, Version: version})
	if err != nil {
		return nil, 0, false, fmt.Errorf("service: export job %q: %w", id, err)
	}
	return payload, version, true, nil
}

// ApplyReplica applies one replicated write: the exact payload bytes
// another shard persisted for this job, tagged with its version. It is
// idempotent — a version at or below the local one is a replay and
// succeeds without writing — so replication retries and read-repair can
// push the same record any number of times. The raw bytes go to the
// backing database unchanged, keeping every replica byte-identical to
// the primary; the decoded job is published to readers under the same
// generation rules as Put.
func (s *Store) ApplyReplica(id string, version uint64, payload []byte) error {
	if version == 0 {
		version = 1
	}
	s.mu.RLock()
	cur := s.versions[id]
	s.mu.RUnlock()
	if cur >= version {
		return nil
	}
	var pj persistedJob
	if err := json.Unmarshal(payload, &pj); err != nil {
		return fmt.Errorf("service: decode replica %q: %w", id, err)
	}
	if pj.Job == nil {
		return fmt.Errorf("service: replica %q has no archive", id)
	}
	archive.New().Add(pj.Job)
	sj := indexJob(pj.Job, pj.Summary)
	if s.db != nil {
		if !s.breaker.Allow() {
			return ErrDegraded
		}
		if err := s.db.Put(id, payload, sj.indexMeta()); err != nil {
			s.breaker.Failure()
			return err
		}
		s.breaker.Success()
		s.writeSegment(id, sj, version)
	}
	s.mu.Lock()
	if s.versions[id] < version {
		s.jobs[id] = sj
		s.versions[id] = version
		s.generation++
	}
	s.mu.Unlock()
	return nil
}

// Generation returns the store's publish counter. It changes on every
// write that becomes visible to readers; response caches key on it so a
// write invalidates every cached body in O(1).
func (s *Store) Generation() uint64 {
	s.mu.RLock()
	g := s.generation
	s.mu.RUnlock()
	return g
}

// Get returns the stored job with the given ID.
func (s *Store) Get(id string) (*StoredJob, bool) {
	s.mu.RLock()
	sj, ok := s.jobs[id]
	s.mu.RUnlock()
	return sj, ok
}

// Len returns the number of stored jobs.
func (s *Store) Len() int {
	s.mu.RLock()
	n := len(s.jobs)
	s.mu.RUnlock()
	return n
}

// IDs returns the stored job IDs, sorted.
func (s *Store) IDs() []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		out = append(out, id)
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// streamKeyPrefix namespaces the archivedb records that hold acked
// ingest batches of in-flight streamed jobs. '~' sorts after every
// printable job-ID character and the prefix never collides with a job
// ID the API accepts, so stream records and archives share one WAL
// without ambiguity; warm-up routes on the prefix.
const streamKeyPrefix = "~stream/"

// StreamBatch is one durable acked ingest batch: the encoded events of
// a live streamed job up to LastSeq, recovered at startup so a restart
// never loses an acked batch.
type StreamBatch struct {
	JobID   string
	LastSeq uint64
	Payload []byte
}

// streamBatchKey builds the archivedb key for one acked batch. The
// fixed-width sequence suffix makes lexicographic key order equal
// replay order.
func streamBatchKey(jobID string, lastSeq uint64) string {
	return fmt.Sprintf("%s%s/%020d", streamKeyPrefix, jobID, lastSeq)
}

// parseStreamKey inverts streamBatchKey. The job ID may itself contain
// slashes, so the sequence is split off at the last one.
func parseStreamKey(key string) (jobID string, lastSeq uint64, ok bool) {
	rest := strings.TrimPrefix(key, streamKeyPrefix)
	if rest == key {
		return "", 0, false
	}
	i := strings.LastIndex(rest, "/")
	if i < 0 {
		return "", 0, false
	}
	seq, err := strconv.ParseUint(rest[i+1:], 10, 64)
	if err != nil {
		return "", 0, false
	}
	return rest[:i], seq, true
}

// AppendStreamBatch persists one acked ingest batch through the same
// WAL group-commit path archives take: the caller acks the batch to the
// client only after this returns, so "202 accepted" means the events
// survive a crash. In-memory stores (no database) ack immediately —
// they advertise no durability for archives either. The breaker guards
// the write exactly as it guards Put.
func (s *Store) AppendStreamBatch(jobID string, lastSeq uint64, payload []byte) error {
	if s.db == nil {
		return nil
	}
	if !s.breaker.Allow() {
		return ErrDegraded
	}
	key := streamBatchKey(jobID, lastSeq)
	if err := s.db.Put(key, payload, archivedb.IndexMeta{}); err != nil {
		s.breaker.Failure()
		return err
	}
	s.breaker.Success()
	s.mu.Lock()
	s.streamKeys[jobID] = append(s.streamKeys[jobID], key)
	s.mu.Unlock()
	return nil
}

// RecoveredStreamBatches returns the acked ingest batches found when
// the store was opened over an existing database, sorted by
// (job, lastSeq) — replay order. The serving layer folds them back into
// live jobs at startup.
func (s *Store) RecoveredStreamBatches() []StreamBatch {
	s.mu.RLock()
	out := make([]StreamBatch, len(s.recoveredStream))
	copy(out, s.recoveredStream)
	s.mu.RUnlock()
	return out
}

// DeleteStreamBatches removes every durable ingest batch of a job,
// called once the sealed archive itself is durable (the batches are
// then redundant) or when a recovered job's archive already exists.
// Best effort: a delete failure leaves an orphan batch that the next
// startup discards the same way.
func (s *Store) DeleteStreamBatches(jobID string) error {
	s.mu.Lock()
	keys := s.streamKeys[jobID]
	delete(s.streamKeys, jobID)
	s.mu.Unlock()
	if s.db == nil {
		return nil
	}
	var first error
	for _, k := range keys {
		if err := s.db.Delete(k); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Archive assembles the stored jobs (sorted by ID) into one archive,
// the same format cmd/granula writes to disk.
func (s *Store) Archive(ids ...string) *archive.Archive {
	if len(ids) == 0 {
		ids = s.IDs()
	}
	a := archive.New()
	for _, id := range ids {
		if sj, ok := s.Get(id); ok {
			a.Jobs = append(a.Jobs, sj.Job)
		}
	}
	return a
}
