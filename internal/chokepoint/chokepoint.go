// Package chokepoint implements the choke-point analysis the paper lists
// as Granula's next step: given an archived job, find where the time
// actually goes and why. Three analyses run over the operation tree and
// the environment samples:
//
//   - the blocking chain: the sequence of operations that, at every
//     instant, gate the job's completion (in a BSP job, the straggler at
//     each barrier), aggregated per mission into a critical-path profile;
//   - imbalance detection: task-parallel sibling operations whose
//     durations diverge (workers idling at barriers);
//   - resource characterization: for each domain operation, whether it is
//     CPU-saturated, partially busy, or idle (latency-bound) — the
//     distinction that separates "needs tuning" from "needs redesign".
//
// The output is a ranked list of choke-points with quantified impact and
// actionable descriptions.
package chokepoint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/archive"
)

// Options tunes the analysis.
type Options struct {
	// CPUCapacity is the cluster's total CPU capacity in cpu-seconds per
	// second (nodes × cores); 0 disables saturation classification.
	CPUCapacity float64
	// DiskCapacity is the per-node local-disk bandwidth in bytes/second;
	// 0 disables disk-saturation classification.
	DiskCapacity float64
	// SharedFSCapacity is the shared filesystem server's aggregate
	// bandwidth in bytes/second; 0 disables its classification.
	SharedFSCapacity float64
	// SampleInterval is the environment monitor period backing the job's
	// samples; 0 selects 1.
	SampleInterval float64
	// ImbalanceThreshold flags sibling groups whose max/mean duration
	// exceeds it; 0 selects 1.25.
	ImbalanceThreshold float64
	// MinImpactSeconds drops findings affecting less than this much
	// makespan; 0 selects 1% of the makespan.
	MinImpactSeconds float64
}

// Segment is one stretch of the blocking chain: between Start and End,
// the named operation gated the job's completion.
type Segment struct {
	Op    *archive.Operation
	Start float64
	End   float64
}

// Duration returns the segment length.
func (s Segment) Duration() float64 { return s.End - s.Start }

// MissionShare aggregates blocking-chain time per mission.
type MissionShare struct {
	Mission string
	Seconds float64
	Percent float64
}

// Kind classifies a choke-point finding.
type Kind string

// Finding kinds.
const (
	KindDominant     Kind = "dominant-operation"
	KindImbalance    Kind = "imbalance"
	KindIdle         Kind = "latency-bound"
	KindSaturation   Kind = "cpu-saturated"
	KindDiskBound    Kind = "disk-saturated"
	KindSharedFSHot  Kind = "sharedfs-saturated"
	KindSingleLoader Kind = "single-node-hotspot"
)

// Finding is one ranked choke-point.
type Finding struct {
	Kind Kind
	// Mission names the affected operation type.
	Mission string
	// ImpactSeconds estimates how much makespan the choke-point accounts
	// for.
	ImpactSeconds float64
	// ImpactPercent is ImpactSeconds over the job makespan.
	ImpactPercent float64
	// Detail is a human-readable diagnosis.
	Detail string
}

// Report is a completed analysis.
type Report struct {
	JobID    string
	Makespan float64
	// Chain is the job's blocking chain at the finest archived level.
	Chain []Segment
	// ByMission is the chain aggregated per mission, largest first.
	ByMission []MissionShare
	// Findings are the ranked choke-points, largest impact first.
	Findings []Finding
}

// Analyze runs all analyses over the job.
func Analyze(job *archive.Job, opts Options) (*Report, error) {
	if job.Root == nil {
		return nil, fmt.Errorf("chokepoint: job %s has no operations", job.ID)
	}
	if opts.ImbalanceThreshold <= 0 {
		opts.ImbalanceThreshold = 1.25
	}
	if opts.SampleInterval <= 0 {
		opts.SampleInterval = 1
	}
	makespan := job.Root.Duration()
	if opts.MinImpactSeconds <= 0 {
		opts.MinImpactSeconds = makespan / 100
	}
	r := &Report{JobID: job.ID, Makespan: makespan}
	r.Chain = blockingChain(job.Root, job.Root.Start, job.Root.End)

	shares := map[string]float64{}
	for _, seg := range r.Chain {
		shares[seg.Op.Mission] += seg.Duration()
	}
	for mission, secs := range shares {
		share := MissionShare{Mission: mission, Seconds: secs}
		if makespan > 0 {
			share.Percent = 100 * secs / makespan
		}
		r.ByMission = append(r.ByMission, share)
	}
	sort.Slice(r.ByMission, func(i, j int) bool {
		if r.ByMission[i].Seconds != r.ByMission[j].Seconds {
			return r.ByMission[i].Seconds > r.ByMission[j].Seconds
		}
		return r.ByMission[i].Mission < r.ByMission[j].Mission
	})

	r.Findings = append(r.Findings, dominantFindings(r, opts)...)
	r.Findings = append(r.Findings, imbalanceFindings(job, opts)...)
	r.Findings = append(r.Findings, resourceFindings(job, opts)...)
	r.Findings = append(r.Findings, ioFindings(job, opts)...)
	// Rank by impact; drop noise.
	kept := r.Findings[:0]
	for _, f := range r.Findings {
		if f.ImpactSeconds >= opts.MinImpactSeconds {
			kept = append(kept, f)
		}
	}
	r.Findings = kept
	sort.SliceStable(r.Findings, func(i, j int) bool {
		return r.Findings[i].ImpactSeconds > r.Findings[j].ImpactSeconds
	})
	return r, nil
}

// blockingChain computes, within [from, to] of op's interval, the
// sequence of descendants gating completion: at every instant, among the
// children active at that instant, the one finishing last is the blocker
// (in barrier-synchronized systems the straggler determines progress);
// time covered by no child is attributed to op itself.
func blockingChain(op *archive.Operation, from, to float64) []Segment {
	var out []Segment
	t := from
	children := op.Children
	for t < to {
		// The active child with the latest end blocks; ties by ID for
		// determinism.
		var blocker *archive.Operation
		for _, c := range children {
			if c.Start <= t && c.End > t {
				if blocker == nil || c.End > blocker.End ||
					(c.End == blocker.End && c.ID < blocker.ID) {
					blocker = c
				}
			}
		}
		if blocker == nil {
			// Self time until the next child starts (or the window ends).
			next := to
			for _, c := range children {
				if c.Start > t && c.Start < next {
					next = c.Start
				}
			}
			out = append(out, Segment{Op: op, Start: t, End: next})
			t = next
			continue
		}
		end := blocker.End
		if end > to {
			end = to
		}
		out = append(out, blockingChain(blocker, t, end)...)
		t = end
	}
	return out
}

func dominantFindings(r *Report, opts Options) []Finding {
	var out []Finding
	for _, share := range r.ByMission {
		if share.Percent < 20 {
			continue
		}
		out = append(out, Finding{
			Kind:          KindDominant,
			Mission:       share.Mission,
			ImpactSeconds: share.Seconds,
			ImpactPercent: share.Percent,
			Detail: fmt.Sprintf("%s operations gate %.1f%% of the job's completion (%.2fs of %.2fs)",
				share.Mission, share.Percent, share.Seconds, r.Makespan),
		})
	}
	return out
}

// imbalanceFindings flags task-parallel sibling groups (same mission,
// same parent, distinct actors) whose max duration exceeds the mean by
// the threshold. The impact is the straggler's excess over the mean —
// the time the other actors spent waiting.
func imbalanceFindings(job *archive.Job, opts Options) []Finding {
	impact := map[string]float64{}
	worst := map[string]float64{}
	job.Root.Walk(func(op *archive.Operation) {
		groups := map[string][]*archive.Operation{}
		for _, c := range op.Children {
			groups[c.Mission] = append(groups[c.Mission], c)
		}
		for mission, ops := range groups {
			if len(ops) < 2 {
				continue
			}
			actors := map[string]bool{}
			var sum, max float64
			for _, o := range ops {
				actors[o.Actor] = true
				sum += o.Duration()
				if o.Duration() > max {
					max = o.Duration()
				}
			}
			if len(actors) < 2 {
				continue // repeats of one actor, not task parallelism
			}
			mean := sum / float64(len(ops))
			if mean <= 0 || max/mean < opts.ImbalanceThreshold {
				continue
			}
			impact[mission] += max - mean
			if max/mean > worst[mission] {
				worst[mission] = max / mean
			}
		}
	})
	var out []Finding
	for mission, secs := range impact {
		f := Finding{
			Kind:          KindImbalance,
			Mission:       mission,
			ImpactSeconds: secs,
			Detail: fmt.Sprintf("%s is imbalanced across actors (worst straggler %.2fx the mean); "+
				"peers idle ~%.2fs at synchronization points", mission, worst[mission], secs),
		}
		if job.Root.Duration() > 0 {
			f.ImpactPercent = 100 * secs / job.Root.Duration()
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Mission < out[j].Mission })
	return out
}

// resourceFindings classifies each domain-level operation by its CPU
// profile: idle (latency-bound) or saturated.
func resourceFindings(job *archive.Job, opts Options) []Finding {
	if len(job.EnvSamples) == 0 {
		return nil
	}
	var out []Finding
	for _, op := range job.Root.Children {
		if op.Duration() <= 0 {
			continue
		}
		var used float64
		for _, s := range job.EnvSamples {
			if s.IsCPU() && s.Time > op.Start && s.Time <= op.End {
				used += s.Used
			}
		}
		rate := used / op.Duration()
		f := Finding{Mission: op.Mission, ImpactSeconds: op.Duration()}
		if job.Root.Duration() > 0 {
			f.ImpactPercent = 100 * op.Duration() / job.Root.Duration()
		}
		switch {
		case opts.CPUCapacity > 0 && rate >= 0.85*opts.CPUCapacity:
			f.Kind = KindSaturation
			f.Detail = fmt.Sprintf("%s runs CPU-saturated (%.1f of %.1f cpu-s/s): compute-bound — "+
				"more cores or cheaper per-unit work would help", op.Mission, rate, opts.CPUCapacity)
		case opts.CPUCapacity > 0 && rate <= 0.05*opts.CPUCapacity:
			f.Kind = KindIdle
			f.Detail = fmt.Sprintf("%s leaves the CPU idle (%.1f of %.1f cpu-s/s): latency-bound — "+
				"look at coordination, provisioning, or I/O waits", op.Mission, rate, opts.CPUCapacity)
		default:
			continue
		}
		out = append(out, f)
	}
	return out
}

// ioFindings classifies each domain-level operation's I/O profile from
// the disk and shared-filesystem samples: shared-FS saturation (the
// classic NFS bottleneck), and single-node hotspots where one node does
// nearly all the disk or CPU work while the others idle — the paper's
// PowerGraph loading diagnosis.
func ioFindings(job *archive.Job, opts Options) []Finding {
	if len(job.EnvSamples) == 0 {
		return nil
	}
	var out []Finding
	for _, op := range job.Root.Children {
		if op.Duration() <= 0 {
			continue
		}
		var sharedBytes float64
		perNodeCPU := map[string]float64{}
		for _, s := range job.EnvSamples {
			if s.Time <= op.Start || s.Time > op.End {
				continue
			}
			switch {
			case s.Node == "sharedfs" && s.Kind == "disk":
				sharedBytes += s.Used
			case s.IsCPU() && s.Node != "sharedfs":
				perNodeCPU[s.Node] += s.Used
			}
		}
		impact := op.Duration()
		pct := 0.0
		if job.Root.Duration() > 0 {
			pct = 100 * impact / job.Root.Duration()
		}
		if opts.SharedFSCapacity > 0 {
			rate := sharedBytes / op.Duration()
			if rate >= 0.7*opts.SharedFSCapacity {
				out = append(out, Finding{
					Kind: KindSharedFSHot, Mission: op.Mission,
					ImpactSeconds: impact, ImpactPercent: pct,
					Detail: fmt.Sprintf("%s keeps the shared filesystem at %.0f%% of its bandwidth "+
						"(%.2e of %.2e B/s): a central storage bottleneck",
						op.Mission, 100*rate/opts.SharedFSCapacity, rate, opts.SharedFSCapacity),
				})
			}
		}
		// Single-node hotspot: one node does >60% of the CPU work during
		// a long operation with at least 3 nodes reporting.
		if len(perNodeCPU) >= 3 {
			var total, max float64
			var hot string
			for n, v := range perNodeCPU {
				total += v
				if v > max {
					max, hot = v, n
				}
			}
			if total > 0 && max/total > 0.6 && pct >= 20 {
				out = append(out, Finding{
					Kind: KindSingleLoader, Mission: op.Mission,
					ImpactSeconds: impact, ImpactPercent: pct,
					Detail: fmt.Sprintf("%s runs almost entirely on %s (%.0f%% of all CPU during the "+
						"operation) while the other %d nodes idle — parallelize this stage",
						op.Mission, hot, 100*max/total, len(perNodeCPU)-1),
				})
			}
		}
	}
	return out
}

// Render formats the report for terminals.
func (r *Report) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Choke-point analysis of %s (makespan %.2fs)\n", r.JobID, r.Makespan)
	fmt.Fprintf(&sb, "\nBlocking-chain profile (who gates completion):\n")
	for _, s := range r.ByMission {
		fmt.Fprintf(&sb, "  %-20s %8.2fs  %5.1f%%\n", s.Mission, s.Seconds, s.Percent)
	}
	fmt.Fprintf(&sb, "\nRanked choke-points:\n")
	if len(r.Findings) == 0 {
		sb.WriteString("  none above the impact threshold\n")
	}
	for i, f := range r.Findings {
		fmt.Fprintf(&sb, "  %d. [%s] %s — impact %.2fs (%.1f%%)\n     %s\n",
			i+1, f.Kind, f.Mission, f.ImpactSeconds, f.ImpactPercent, f.Detail)
	}
	return sb.String()
}
