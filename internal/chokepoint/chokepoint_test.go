package chokepoint

import (
	"math"
	"strings"
	"testing"

	"repro/internal/archive"
)

// buildJob constructs a job with a known blocking structure:
//
//	Job [0,20]
//	├── Startup [0,4]                      (leaf, idle)
//	├── LoadGraph [4,10]
//	│   ├── LocalLoad w0 [4,9]
//	│   └── LocalLoad w1 [4,10]            (straggler: blocks 4..10)
//	├── ProcessGraph [10,18]
//	│   ├── Superstep [10,14]
//	│   │   ├── Local w0 [10,12]
//	│   │   └── Local w1 [10,14]           (straggler)
//	│   └── Superstep [14,18]
//	│       ├── Local w0 [14,18]           (straggler)
//	│       └── Local w1 [14,15]
//	└── Cleanup [18,20]
func buildJob() *archive.Job {
	j := &archive.Job{
		ID: "cp", Platform: "Giraph",
		Root: &archive.Operation{
			ID: "r", Mission: "GiraphJob", Start: 0, End: 20,
			Children: []*archive.Operation{
				{ID: "s", Mission: "Startup", Start: 0, End: 4},
				{ID: "l", Mission: "LoadGraph", Start: 4, End: 10, Children: []*archive.Operation{
					{ID: "l0", Mission: "LocalLoad", Actor: "W-0", Start: 4, End: 9},
					{ID: "l1", Mission: "LocalLoad", Actor: "W-1", Start: 4, End: 10},
				}},
				{ID: "p", Mission: "ProcessGraph", Start: 10, End: 18, Children: []*archive.Operation{
					{ID: "ss0", Mission: "Superstep", Start: 10, End: 14, Children: []*archive.Operation{
						{ID: "c00", Mission: "Local", Actor: "W-0", Start: 10, End: 12},
						{ID: "c01", Mission: "Local", Actor: "W-1", Start: 10, End: 14},
					}},
					{ID: "ss1", Mission: "Superstep", Start: 14, End: 18, Children: []*archive.Operation{
						{ID: "c10", Mission: "Local", Actor: "W-0", Start: 14, End: 18},
						{ID: "c11", Mission: "Local", Actor: "W-1", Start: 14, End: 15},
					}},
				}},
				{ID: "c", Mission: "Cleanup", Start: 18, End: 20},
			},
		},
		EnvSamples: []archive.EnvSample{
			// Samples cover 2-second intervals. Startup idle; LoadGraph
			// busy (16 cpu-s per 2 s = 8 of 8 capacity); Process half.
			{Time: 2, Node: "n0", Kind: "cpu", Used: 0},
			{Time: 6, Node: "n0", Kind: "cpu", Used: 16}, {Time: 8, Node: "n0", Kind: "cpu", Used: 16}, {Time: 10, Node: "n0", Kind: "cpu", Used: 16},
			{Time: 12, Node: "n0", Kind: "cpu", Used: 8}, {Time: 14, Node: "n0", Kind: "cpu", Used: 8},
			{Time: 16, Node: "n0", Kind: "cpu", Used: 8}, {Time: 18, Node: "n0", Kind: "cpu", Used: 8},
			{Time: 20, Node: "n0", Kind: "cpu", Used: 0},
		},
	}
	return j
}

func TestBlockingChainCoversMakespan(t *testing.T) {
	job := buildJob()
	r, err := Analyze(job, Options{CPUCapacity: 8, SampleInterval: 2})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	last := 0.0
	for _, seg := range r.Chain {
		if seg.Start < last-1e-9 {
			t.Fatalf("chain overlaps at %v", seg.Start)
		}
		if seg.Duration() < 0 {
			t.Fatalf("negative segment %+v", seg)
		}
		last = seg.End
		total += seg.Duration()
	}
	if math.Abs(total-20) > 1e-9 {
		t.Fatalf("chain covers %.2fs, want 20", total)
	}
}

func TestBlockingChainPicksStragglers(t *testing.T) {
	job := buildJob()
	r, err := Analyze(job, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Expected blockers: Startup(0-4), LocalLoad w1 (4-10), Local w1
	// (10-14), Local w0 (14-18), Cleanup (18-20).
	wantIDs := []string{"s", "l1", "c01", "c10", "c"}
	if len(r.Chain) != len(wantIDs) {
		t.Fatalf("chain = %d segments, want %d: %+v", len(r.Chain), len(wantIDs), r.Chain)
	}
	for i, want := range wantIDs {
		if r.Chain[i].Op.ID != want {
			t.Fatalf("segment %d is %s, want %s", i, r.Chain[i].Op.ID, want)
		}
	}
}

func TestMissionSharesSorted(t *testing.T) {
	job := buildJob()
	r, err := Analyze(job, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Local blocks 8s, LocalLoad 6s, Startup 4s, Cleanup 2s.
	if r.ByMission[0].Mission != "Local" || math.Abs(r.ByMission[0].Seconds-8) > 1e-9 {
		t.Fatalf("top mission = %+v", r.ByMission[0])
	}
	sum := 0.0
	for _, s := range r.ByMission {
		sum += s.Percent
	}
	if math.Abs(sum-100) > 1e-6 {
		t.Fatalf("percentages sum to %v", sum)
	}
}

func TestImbalanceDetected(t *testing.T) {
	job := buildJob()
	r, err := Analyze(job, Options{ImbalanceThreshold: 1.2, MinImpactSeconds: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	var found *Finding
	for i := range r.Findings {
		if r.Findings[i].Kind == KindImbalance && r.Findings[i].Mission == "Local" {
			found = &r.Findings[i]
		}
	}
	if found == nil {
		t.Fatalf("no imbalance finding for Local: %+v", r.Findings)
	}
	// Superstep 0: max 4, mean 3 -> +1s. Superstep 1: max 4, mean 2.5 -> +1.5s.
	if math.Abs(found.ImpactSeconds-2.5) > 1e-9 {
		t.Fatalf("imbalance impact = %v, want 2.5", found.ImpactSeconds)
	}
}

func TestResourceClassification(t *testing.T) {
	job := buildJob()
	r, err := Analyze(job, Options{CPUCapacity: 8, SampleInterval: 2, MinImpactSeconds: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]Kind{}
	for _, f := range r.Findings {
		if f.Kind == KindIdle || f.Kind == KindSaturation {
			kinds[f.Mission] = f.Kind
		}
	}
	if kinds["Startup"] != KindIdle {
		t.Fatalf("Startup classified %v, want idle", kinds["Startup"])
	}
	if kinds["LoadGraph"] != KindSaturation {
		t.Fatalf("LoadGraph classified %v, want saturated", kinds["LoadGraph"])
	}
	if _, ok := kinds["ProcessGraph"]; ok {
		t.Fatal("half-busy ProcessGraph should not be classified")
	}
}

func TestFindingsRankedAndFiltered(t *testing.T) {
	job := buildJob()
	r, err := Analyze(job, Options{CPUCapacity: 8, MinImpactSeconds: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(r.Findings); i++ {
		if r.Findings[i].ImpactSeconds > r.Findings[i-1].ImpactSeconds {
			t.Fatal("findings not ranked by impact")
		}
	}
	for _, f := range r.Findings {
		if f.ImpactSeconds < 3 {
			t.Fatalf("finding below threshold kept: %+v", f)
		}
	}
}

func TestRenderMentionsEverything(t *testing.T) {
	job := buildJob()
	r, err := Analyze(job, Options{CPUCapacity: 8, MinImpactSeconds: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	for _, want := range []string{"Choke-point analysis", "Blocking-chain", "Ranked choke-points", "LoadGraph"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(&archive.Job{ID: "x"}, Options{}); err == nil {
		t.Fatal("expected error for empty job")
	}
}

func TestSelfTimeAttribution(t *testing.T) {
	// A parent with a gap between children: the gap is the parent's own
	// blocking time.
	job := &archive.Job{
		ID: "gap",
		Root: &archive.Operation{
			ID: "r", Mission: "Job", Start: 0, End: 10,
			Children: []*archive.Operation{
				{ID: "a", Mission: "A", Start: 0, End: 3},
				{ID: "b", Mission: "B", Start: 7, End: 10},
			},
		},
	}
	r, err := Analyze(job, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var selfTime float64
	for _, seg := range r.Chain {
		if seg.Op.ID == "r" {
			selfTime += seg.Duration()
		}
	}
	if math.Abs(selfTime-4) > 1e-9 {
		t.Fatalf("self time = %v, want 4 (the 3..7 gap)", selfTime)
	}
}
