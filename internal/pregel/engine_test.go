package pregel

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/dfs"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/yarn"
	"repro/internal/zookeeper"
)

// bfs is a minimal test vertex program (min-distance propagation).
type bfs struct{ source graph.VertexID }

func (b bfs) Compute(ctx *Context, msgs []float64) {
	if ctx.Superstep() == 0 {
		if ctx.ID() == b.source {
			ctx.SetValue(0)
			ctx.SendToAllNeighbors(1)
		}
		ctx.VoteToHalt()
		return
	}
	best := ctx.Value()
	for _, m := range msgs {
		if m < best {
			best = m
		}
	}
	if best < ctx.Value() {
		ctx.SetValue(best)
		ctx.SendToAllNeighbors(best + 1)
	}
	ctx.VoteToHalt()
}

// refBFS is an independent sequential BFS for verification.
func refBFS(g *graph.Graph, src graph.VertexID) []float64 {
	dist := make([]float64, g.NumVertices())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	queue := []graph.VertexID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.OutNeighbors(v) {
			if math.IsInf(dist[w], 1) {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

type testEnv struct {
	eng  *sim.Engine
	c    *cluster.Cluster
	deps Deps
	log  *trace.Log
	em   *trace.Emitter
}

func newTestEnv(t *testing.T, ds *datagen.Dataset, workScale float64) *testEnv {
	t.Helper()
	eng := sim.NewEngine()
	c := cluster.New(eng, cluster.Config{
		Nodes:             4,
		CoresPerNode:      8,
		DiskBandwidth:     200e6,
		NICBandwidth:      500e6,
		NetLatency:        1e-4,
		SharedFSBandwidth: 300e6,
		NodeNamePrefix:    "node",
		NodeNameStart:     100,
	})
	h := dfs.NewHDFS(c, dfs.HDFSConfig{BlockSize: 1 << 20, Replication: 2, NameNodeLatency: 0.001})
	deps := Deps{
		Cluster:    c,
		RM:         yarn.NewResourceManager(c, yarn.Config{SubmitLatency: 0.5, AllocLatency: 0.05, LaunchLatency: 0.5, LaunchCPUSeconds: 0.2, ReleaseLatency: 0.2}),
		HDFS:       h,
		ZK:         zookeeper.NewService(c.Node(0), zookeeper.DefaultConfig()),
		InputPath:  "/input/" + ds.Name,
		OutputPath: "/output",
	}
	if err := StageInput(h, deps.InputPath, ds, workScale); err != nil {
		t.Fatal(err)
	}
	log := trace.NewLog()
	em := trace.NewEmitter(log, "test-job", eng.Now)
	return &testEnv{eng: eng, c: c, deps: deps, log: log, em: em}
}

func testDataset(t *testing.T) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Generate(datagen.Config{
		Kind: datagen.SocialNetwork, Vertices: 2000, Edges: 10000, Seed: 11, Directed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func testJobConfig(workers int) Config {
	return Config{
		Workers:        workers,
		ComputeThreads: 4,
		ParseThreads:   8,
		Combiner:       MinCombiner{},
		MaxSupersteps:  100,
		WorkScale:      1,
		Costs:          DefaultCostModel(),
	}
}

// runJob executes a job to completion and returns the result.
func runJob(t *testing.T, env *testEnv, cfg Config, prog Program, ds *datagen.Dataset) *Result {
	t.Helper()
	var result *Result
	var jobErr error
	env.eng.Spawn("client", func(p *sim.Proc) {
		result, jobErr = RunJob(p, env.deps, cfg, prog, ds, env.em)
	})
	if err := env.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if jobErr != nil {
		t.Fatal(jobErr)
	}
	if env.eng.LiveProcs() != 0 {
		t.Fatalf("leaked %d processes after job", env.eng.LiveProcs())
	}
	return result
}

func TestBFSMatchesReference(t *testing.T) {
	ds := testDataset(t)
	env := newTestEnv(t, ds, 1)
	res := runJob(t, env, testJobConfig(4), bfs{source: 0}, ds)
	want := refBFS(ds.Graph, 0)
	for v := range want {
		if res.Values[v] != want[v] {
			t.Fatalf("vertex %d: distance %v, want %v", v, res.Values[v], want[v])
		}
	}
	if res.Supersteps < 2 {
		t.Fatalf("supersteps = %d, want >= 2", res.Supersteps)
	}
	if res.Runtime <= 0 {
		t.Fatal("runtime not positive")
	}
	if res.MessagesSent <= 0 {
		t.Fatal("no messages recorded")
	}
}

func TestBFSResultIndependentOfWorkerCount(t *testing.T) {
	ds := testDataset(t)
	var prev []float64
	for _, workers := range []int{1, 2, 4} {
		env := newTestEnv(t, ds, 1)
		res := runJob(t, env, testJobConfig(workers), bfs{source: 0}, ds)
		if prev != nil {
			for v := range prev {
				if res.Values[v] != prev[v] {
					t.Fatalf("workers=%d: vertex %d differs", workers, v)
				}
			}
		}
		prev = res.Values
	}
}

func TestCombinerReducesWireMessages(t *testing.T) {
	ds := testDataset(t)
	envA := newTestEnv(t, ds, 1)
	cfgA := testJobConfig(4)
	resCombined := runJob(t, envA, cfgA, bfs{source: 0}, ds)

	envB := newTestEnv(t, ds, 1)
	cfgB := testJobConfig(4)
	cfgB.Combiner = nil
	resPlain := runJob(t, envB, cfgB, bfs{source: 0}, ds)

	if resCombined.MessagesSent >= resPlain.MessagesSent {
		t.Fatalf("combined wire messages %d not below uncombined %d",
			resCombined.MessagesSent, resPlain.MessagesSent)
	}
	// Results must agree regardless.
	for v := range resPlain.Values {
		if resPlain.Values[v] != resCombined.Values[v] {
			t.Fatalf("vertex %d differs with/without combiner", v)
		}
	}
}

func TestTraceTreeWellFormed(t *testing.T) {
	ds := testDataset(t)
	env := newTestEnv(t, ds, 1)
	runJob(t, env, testJobConfig(4), bfs{source: 0}, ds)

	recs := env.log.Records()
	if len(recs) == 0 {
		t.Fatal("no trace records")
	}
	started := map[string]trace.Record{}
	ended := map[string]float64{}
	var roots int
	for _, r := range recs {
		switch r.Event {
		case trace.EventStart:
			if _, dup := started[r.Op]; dup {
				t.Fatalf("duplicate start for %s", r.Op)
			}
			started[r.Op] = r
			if r.Parent == "" {
				roots++
			} else if _, ok := started[r.Parent]; !ok {
				t.Fatalf("op %s starts before its parent %s", r.Op, r.Parent)
			}
		case trace.EventEnd:
			if _, ok := started[r.Op]; !ok {
				t.Fatalf("end without start for %s", r.Op)
			}
			if _, dup := ended[r.Op]; dup {
				t.Fatalf("duplicate end for %s", r.Op)
			}
			ended[r.Op] = r.Time
		}
	}
	if roots != 1 {
		t.Fatalf("roots = %d, want 1", roots)
	}
	if len(started) != len(ended) {
		t.Fatalf("%d started ops but %d ended", len(started), len(ended))
	}
	// Every op must fit within its parent's interval.
	for id, s := range started {
		if s.Parent == "" {
			continue
		}
		ps := started[s.Parent]
		if s.Time < ps.Time-1e-9 || ended[id] > ended[s.Parent]+1e-9 {
			t.Fatalf("op %s (%s) [%v,%v] outside parent %s [%v,%v]",
				id, s.Mission, s.Time, ended[id], ps.Mission, ps.Time, ended[s.Parent])
		}
	}
	// The five domain-level operations must be present in order.
	var missions []string
	rootID := ""
	for _, r := range recs {
		if r.Event == trace.EventStart && r.Parent == "" {
			rootID = r.Op
		}
	}
	for _, r := range recs {
		if r.Event == trace.EventStart && r.Parent == rootID {
			missions = append(missions, r.Mission)
		}
	}
	want := []string{"Startup", "LoadGraph", "ProcessGraph", "OffloadGraph", "Cleanup"}
	if len(missions) != len(want) {
		t.Fatalf("domain missions = %v, want %v", missions, want)
	}
	for i := range want {
		if missions[i] != want[i] {
			t.Fatalf("domain missions = %v, want %v", missions, want)
		}
	}
}

func TestSuperstepOpsPerWorker(t *testing.T) {
	ds := testDataset(t)
	env := newTestEnv(t, ds, 1)
	res := runJob(t, env, testJobConfig(4), bfs{source: 0}, ds)

	// Count LocalSuperstep ops: one per worker per superstep.
	var localSupersteps int
	for _, r := range env.log.Records() {
		if r.Event == trace.EventStart && r.Mission == "LocalSuperstep" {
			localSupersteps++
		}
	}
	if localSupersteps != 4*res.Supersteps {
		t.Fatalf("LocalSuperstep ops = %d, want %d", localSupersteps, 4*res.Supersteps)
	}
	// Each LocalSuperstep has PreStep, Compute, Message, PostStep.
	counts := map[string]int{}
	for _, r := range env.log.Records() {
		if r.Event == trace.EventStart {
			counts[r.Mission]++
		}
	}
	for _, m := range []string{"PreStep", "Compute", "Message", "PostStep"} {
		if counts[m] != localSupersteps {
			t.Fatalf("%s ops = %d, want %d", m, counts[m], localSupersteps)
		}
	}
}

func TestWorkScaleStretchesRuntime(t *testing.T) {
	ds := testDataset(t)
	env1 := newTestEnv(t, ds, 1)
	res1 := runJob(t, env1, testJobConfig(4), bfs{source: 0}, ds)

	cfg := testJobConfig(4)
	cfg.WorkScale = 50
	env2 := newTestEnv(t, ds, 50)
	res50 := runJob(t, env2, cfg, bfs{source: 0}, ds)

	if res50.Runtime <= res1.Runtime {
		t.Fatalf("scaled runtime %v not above unscaled %v", res50.Runtime, res1.Runtime)
	}
	// Results are scale-invariant.
	for v := range res1.Values {
		if res1.Values[v] != res50.Values[v] {
			t.Fatalf("vertex %d value differs under scaling", v)
		}
	}
}

func TestRunJobValidation(t *testing.T) {
	ds := testDataset(t)
	env := newTestEnv(t, ds, 1)
	bad := []Config{
		{}, // all zero
		func() Config { c := testJobConfig(4); c.WorkScale = 0; return c }(),
		func() Config { c := testJobConfig(4); c.MaxSupersteps = 0; return c }(),
		func() Config { c := testJobConfig(4); c.ComputeThreads = 0; return c }(),
		func() Config {
			c := testJobConfig(4)
			c.Partitioner = graph.NewHashPartitioner(3) // mismatch with workers
			return c
		}(),
	}
	env.eng.Spawn("client", func(p *sim.Proc) {
		for i, cfg := range bad {
			if _, err := RunJob(p, env.deps, cfg, bfs{}, ds, env.em); err == nil {
				t.Errorf("config %d: expected error", i)
			}
		}
		// Missing input.
		deps := env.deps
		deps.InputPath = "/does-not-exist"
		if _, err := RunJob(p, deps, testJobConfig(4), bfs{}, ds, env.em); err == nil {
			t.Error("expected error for missing input")
		}
	})
	if err := env.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestOutputWrittenToHDFS(t *testing.T) {
	ds := testDataset(t)
	env := newTestEnv(t, ds, 1)
	runJob(t, env, testJobConfig(4), bfs{source: 0}, ds)
	files := env.deps.HDFS.Files()
	outputs := 0
	for _, f := range files {
		if len(f) > 8 && f[:8] == "/output/" {
			outputs++
		}
	}
	if outputs != 4 {
		t.Fatalf("output parts = %d, want 4 (one per worker)", outputs)
	}
}

func TestDeterministicRuntime(t *testing.T) {
	ds := testDataset(t)
	run := func() float64 {
		env := newTestEnv(t, ds, 1)
		return runJob(t, env, testJobConfig(4), bfs{source: 0}, ds).Runtime
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("runtimes differ across identical runs: %v vs %v", a, b)
	}
}
