package pregel

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/trace"
)

// traceFingerprint renders every trace record — timestamps, ops, actors,
// missions, info pairs — into one string. Two runs are equivalent only if
// their fingerprints match byte for byte.
func traceFingerprint(log *trace.Log) string {
	var sb strings.Builder
	for _, r := range log.Records() {
		fmt.Fprintf(&sb, "%.9f|%s|%s|%s|%s|%s|%s|%s|%s\n",
			r.Time, r.Job, r.Op, r.Parent, r.Actor, r.Mission, r.Event, r.Key, r.Value)
	}
	return sb.String()
}

// poolSizes is the table from the issue: serial, two, four, and the
// host's actual core count.
func poolSizes() []int {
	sizes := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		sizes = append(sizes, n)
	}
	return sizes
}

// fpAgg aggregates a vertex-dependent float each superstep. Floating-point
// addition is not associative, so the aggregate detects any change in the
// order worker contributions are reduced.
type fpAgg struct{ rounds int }

func (f fpAgg) Compute(ctx *Context, msgs []float64) {
	if ctx.Superstep() < f.rounds {
		ctx.Aggregate("mass", 1.0/(float64(ctx.ID())+1.7))
		ctx.SetValue(ctx.AggregatedValue("mass"))
		return
	}
	ctx.SetValue(ctx.AggregatedValue("mass"))
	ctx.VoteToHalt()
}

// TestParallelMatchesSerialExactly runs the same job at every pool size
// and requires the serial run's result *and* full trace to be reproduced
// exactly — values, counters, simulated timestamps, everything.
func TestParallelMatchesSerialExactly(t *testing.T) {
	ds := testDataset(t)
	programs := []struct {
		name string
		prog Program
	}{
		{"bfs", bfs{source: 0}},
		{"fp-aggregate", fpAgg{rounds: 4}},
	}
	for _, pc := range programs {
		t.Run(pc.name, func(t *testing.T) {
			var baseRes *Result
			var baseTrace string
			for _, par := range poolSizes() {
				env := newTestEnv(t, ds, 1)
				cfg := testJobConfig(4)
				cfg.HostParallelism = par
				if pc.name == "fp-aggregate" {
					cfg.Combiner = nil
				}
				res := runJob(t, env, cfg, pc.prog, ds)
				tr := traceFingerprint(env.log)
				if baseRes == nil {
					baseRes, baseTrace = res, tr
					continue
				}
				if !reflect.DeepEqual(res, baseRes) {
					t.Fatalf("parallelism=%d: result differs from serial:\n got %+v\nwant %+v", par, res, baseRes)
				}
				if tr != baseTrace {
					t.Fatalf("parallelism=%d: trace differs from serial (lengths %d vs %d)",
						par, len(tr), len(baseTrace))
				}
			}
		})
	}
}

// TestParallelZeroDefaultsToNumCPU checks the config contract: 0 means
// "use every host core", and it still matches the serial run.
func TestParallelZeroDefaultsToNumCPU(t *testing.T) {
	ds := testDataset(t)

	envSerial := newTestEnv(t, ds, 1)
	cfgSerial := testJobConfig(4)
	cfgSerial.HostParallelism = 1
	resSerial := runJob(t, envSerial, cfgSerial, bfs{source: 0}, ds)

	envAuto := newTestEnv(t, ds, 1)
	cfgAuto := testJobConfig(4)
	cfgAuto.HostParallelism = 0
	resAuto := runJob(t, envAuto, cfgAuto, bfs{source: 0}, ds)

	if !reflect.DeepEqual(resSerial, resAuto) {
		t.Fatalf("HostParallelism=0 result differs from serial:\n got %+v\nwant %+v", resAuto, resSerial)
	}
	if a, b := traceFingerprint(envSerial.log), traceFingerprint(envAuto.log); a != b {
		t.Fatal("HostParallelism=0 trace differs from serial")
	}
}
