package pregel

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/dfs"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/yarn"
	"repro/internal/zookeeper"
)

// Deps are the platform's substrate services.
type Deps struct {
	Cluster *cluster.Cluster
	RM      *yarn.ResourceManager
	HDFS    *dfs.HDFS
	ZK      *zookeeper.Service
	// InputPath is the HDFS path of the edge-list input; it must exist
	// (use StageInput) before RunJob.
	InputPath string
	// OutputPath is the HDFS output path for OffloadGraph.
	OutputPath string
}

// StageInput registers the dataset's (scaled) edge-list file in HDFS
// without charging job time, mirroring a dataset uploaded before the
// measured run.
func StageInput(h *dfs.HDFS, path string, ds *datagen.Dataset, workScale float64) error {
	size := int64(float64(ds.SizeBytes()) * workScale)
	return h.Create(path, size)
}

// RunJob executes program over the dataset on the simulated platform,
// blocking the calling process until the job completes. Platform-log
// records are emitted through em following the Giraph performance model.
func RunJob(p *sim.Proc, deps Deps, cfg Config, program Program, ds *datagen.Dataset, em *trace.Emitter) (*Result, error) {
	if err := validate(deps, cfg); err != nil {
		return nil, err
	}
	part := cfg.Partitioner
	if part == nil {
		part = graph.NewHashPartitioner(cfg.Workers)
	}
	if part.K() != cfg.Workers {
		return nil, fmt.Errorf("pregel: partitioner has %d partitions for %d workers", part.K(), cfg.Workers)
	}
	j := &job{
		p:              p,
		eng:            p.Engine(),
		deps:           deps,
		cfg:            cfg,
		program:        program,
		ds:             ds,
		em:             em,
		js:             newJobState(ds.Graph, part, cfg.Workers, cfg.Combiner, sim.NewHostPool(cfg.HostParallelism)),
		checkpointedAt: -1,
	}
	return j.run()
}

func validate(deps Deps, cfg Config) error {
	if cfg.Workers <= 0 {
		return fmt.Errorf("pregel: workers must be positive, got %d", cfg.Workers)
	}
	if cfg.WorkScale <= 0 {
		return fmt.Errorf("pregel: work scale must be positive, got %g", cfg.WorkScale)
	}
	if cfg.MaxSupersteps <= 0 {
		return fmt.Errorf("pregel: max supersteps must be positive, got %d", cfg.MaxSupersteps)
	}
	if cfg.ComputeThreads <= 0 || cfg.ParseThreads <= 0 {
		return fmt.Errorf("pregel: thread counts must be positive")
	}
	if cfg.CheckpointInterval < 0 {
		return fmt.Errorf("pregel: negative checkpoint interval")
	}
	if cfg.FailAtSuperstep > 0 {
		if cfg.CheckpointInterval <= 0 {
			return fmt.Errorf("pregel: failure injection requires checkpointing")
		}
		if cfg.FailWorker < 0 || cfg.FailWorker >= cfg.Workers {
			return fmt.Errorf("pregel: fail worker %d out of range", cfg.FailWorker)
		}
	}
	if deps.Cluster == nil || deps.RM == nil || deps.HDFS == nil || deps.ZK == nil {
		return fmt.Errorf("pregel: missing substrate dependency")
	}
	if !deps.HDFS.Exists(deps.InputPath) {
		return fmt.Errorf("pregel: input %q not staged in HDFS", deps.InputPath)
	}
	return nil
}

// worker is one launched Giraph worker: its container, its command
// mailbox, and its zookeeper session.
type worker struct {
	id        int
	container *yarn.Container
	node      *cluster.Node
	cmds      *sim.Mailbox[workerCmd]
	zk        *zookeeper.Session
	proc      *sim.Proc
}

type workerCmd struct {
	kind string // "load", "superstep", "offload", "shutdown"
	step int
	op   trace.OpRef // parent operation for the command's trace records
	done *sim.Event
	// barrier is the per-superstep double barrier shared by the step.
	barrier *zookeeper.DoubleBarrier
}

type job struct {
	p       *sim.Proc
	eng     *sim.Engine
	deps    Deps
	cfg     Config
	program Program
	ds      *datagen.Dataset
	em      *trace.Emitter
	js      *jobState

	app      *yarn.Application
	workers  []*worker
	splits   []dfs.Split
	masterZK *zookeeper.Session
	err      error // first worker-side error

	// Checkpoint/recovery state.
	lastCheckpoint int
	checkpointedAt int // last superstep actually checkpointed; -1 for none
	snapshot       *stateSnapshot
	failed         bool
	// replayed counts supersteps re-executed after a recovery.
	replayed int
}

func (j *job) fail(err error) {
	if j.err == nil && err != nil {
		j.err = err
	}
}

func (j *job) run() (*Result, error) {
	start := j.p.Now()
	root := j.em.Start(trace.Root, "GiraphClient", "GiraphJob")
	j.em.Info(root, "Dataset", j.ds.Name)
	j.em.Info(root, "Workers", fmt.Sprint(j.cfg.Workers))

	j.startup(root)
	if j.err == nil {
		j.loadGraph(root)
	}
	var supersteps int
	if j.err == nil {
		supersteps = j.processGraph(root)
	}
	if j.err == nil {
		j.offloadGraph(root)
	}
	j.cleanup(root)
	j.em.End(root)
	if j.err != nil {
		return nil, j.err
	}
	return &Result{
		Values:             j.js.values,
		Supersteps:         supersteps,
		MessagesSent:       j.js.totalWireMessages,
		EdgesLoaded:        j.ds.Graph.NumArcs(),
		ReplayedSupersteps: j.replayed,
		Runtime:            j.p.Now() - start,
	}, nil
}

// startup implements Startup = JobStartup + LaunchWorkers.
func (j *job) startup(root trace.OpRef) {
	op := j.em.Start(root, "GiraphClient", "Startup")
	defer j.em.End(op)

	jobStartup := j.em.Start(op, "GiraphClient", "JobStartup")
	j.app = j.deps.RM.Submit(j.p, "giraph")
	containers, err := j.app.AllocateContainers(j.p, j.cfg.Workers, j.cfg.ComputeThreads)
	if err != nil {
		j.fail(err)
		j.em.End(jobStartup)
		return
	}
	j.em.End(jobStartup)

	launch := j.em.Start(op, "GiraphMaster", "LaunchWorkers")
	ready := make([]*sim.Event, j.cfg.Workers)
	for i := 0; i < j.cfg.Workers; i++ {
		w := &worker{
			id:        i,
			container: containers[i],
			node:      containers[i].Node,
			cmds:      sim.NewMailbox[workerCmd](j.eng),
		}
		j.workers = append(j.workers, w)
		ready[i] = sim.NewEvent(j.eng)
		readyEv := ready[i]
		w.proc = containers[i].Launch(j.p, fmt.Sprintf("giraph-worker-%d", i), func(wp *sim.Proc) {
			local := j.em.Start(launch, w.actor(), "LocalStartup")
			w.zk = j.deps.ZK.Connect(wp, w.actor())
			// Worker registration znode.
			_ = w.zk.Create(wp, fmt.Sprintf("/giraph-w%d", w.id), nil)
			j.em.End(local)
			readyEv.Fire()
			j.workerLoop(wp, w)
		})
	}
	for _, ev := range ready {
		ev.Wait(j.p)
	}
	j.masterZK = j.deps.ZK.Connect(j.p, "GiraphMaster")
	j.em.End(launch)
}

func (w *worker) actor() string { return fmt.Sprintf("GiraphWorker-%d", w.id) }

// workerLoop serves master commands until shutdown.
func (j *job) workerLoop(wp *sim.Proc, w *worker) {
	for {
		cmd := w.cmds.Get(wp)
		switch cmd.kind {
		case "load":
			j.workerLoad(wp, w, cmd)
		case "superstep":
			j.workerSuperstep(wp, w, cmd)
		case "offload":
			j.workerOffload(wp, w, cmd)
		case "checkpoint":
			j.workerCheckpoint(wp, w, cmd)
		case "restore":
			j.workerRestore(wp, w, cmd)
		case "die":
			// Simulated crash: no shutdown cost, no session close.
			cmd.done.Fire()
			return
		case "shutdown":
			wp.Sleep(j.cfg.Costs.WorkerShutdownSeconds)
			w.zk.Close(wp)
			cmd.done.Fire()
			return
		}
		cmd.done.Fire()
	}
}

// broadcast sends a command to every worker and waits for completion.
func (j *job) broadcast(kind string, step int, op trace.OpRef, barrier func(i int) *zookeeper.DoubleBarrier) {
	events := make([]*sim.Event, len(j.workers))
	for i, w := range j.workers {
		events[i] = sim.NewEvent(j.eng)
		cmd := workerCmd{kind: kind, step: step, op: op, done: events[i]}
		if barrier != nil {
			cmd.barrier = barrier(i)
		}
		w.cmds.Put(cmd)
	}
	for _, ev := range events {
		ev.Wait(j.p)
	}
}

// loadGraph implements LoadGraph: per-worker LocalLoad → LoadHdfsData,
// then parse, shuffle, and build.
func (j *job) loadGraph(root trace.OpRef) {
	op := j.em.Start(root, "GiraphMaster", "LoadGraph")
	defer j.em.End(op)
	splits, err := j.deps.HDFS.Splits(j.deps.InputPath, j.cfg.Workers)
	if err != nil {
		j.fail(err)
		return
	}
	j.splits = splits
	j.broadcast("load", 0, op, nil)
}

func (j *job) workerLoad(wp *sim.Proc, w *worker, cmd workerCmd) {
	c := j.cfg.Costs
	local := j.em.Start(cmd.op, w.actor(), "LocalLoad")
	defer j.em.End(local)

	split := j.splits[w.id]
	hdfsOp := j.em.Start(local, w.actor(), "LoadHdfsData")
	localBytes, err := j.deps.HDFS.ReadSplit(wp, w.node, split)
	if err != nil {
		j.fail(err)
		j.em.End(hdfsOp)
		return
	}
	j.em.Infof(hdfsOp, "BytesRead", "%d", split.Length)
	j.em.Infof(hdfsOp, "BytesLocal", "%d", localBytes)
	j.em.End(hdfsOp)

	// Parse the split: CPU-intensive, highly parallel (Figure 6's
	// LoadGraph saturation). Split bytes are already at scale.
	parseCPU := float64(split.Length) * c.ParseCPUPerByte
	w.node.ExecParallel(wp, parseCPU, j.cfg.ParseThreads)

	// Shuffle: the split holds an arbitrary 1/W slice of the edge list;
	// (W-1)/W of parsed vertices belong to other workers and cross the
	// network.
	totalEdges := float64(j.ds.Graph.NumArcs()) * j.cfg.WorkScale
	edgesInSplit := totalEdges / float64(j.cfg.Workers)
	remote := edgesInSplit * float64(j.cfg.Workers-1) / float64(j.cfg.Workers)
	perPeer := remote / float64(j.cfg.Workers-1)
	for _, other := range j.workers {
		if other.id == w.id {
			continue
		}
		j.deps.Cluster.Transfer(wp, w.node, other.node, perPeer*c.ShuffleBytesPerEdge)
	}

	// Build local stores for the edges this worker owns (actual count
	// from the real partition, scaled).
	ownedArcs := j.js.ownedArcs[w.id]
	buildCPU := float64(ownedArcs) * j.cfg.WorkScale * c.BuildCPUPerEdge
	w.node.ExecParallel(wp, buildCPU, j.cfg.ParseThreads)
	j.em.Infof(local, "EdgesOwned", "%d", ownedArcs)
}

// processGraph implements ProcessGraph: the superstep loop, with optional
// checkpointing and failure recovery.
func (j *job) processGraph(root trace.OpRef) int {
	op := j.em.Start(root, "GiraphMaster", "ProcessGraph")
	defer j.em.End(op)
	steps := 0
	for steps < j.cfg.MaxSupersteps {
		if j.cfg.CheckpointInterval > 0 && steps%j.cfg.CheckpointInterval == 0 &&
			steps != j.checkpointedAt {
			j.checkpoint(op, steps)
		}
		if j.cfg.FailAtSuperstep > 0 && steps == j.cfg.FailAtSuperstep && !j.failed {
			j.failed = true
			j.replayed += steps - j.lastCheckpoint
			steps = j.recoverWorker(op)
			continue
		}
		stepOp := j.em.Start(op, "GiraphMaster", "Superstep")
		j.em.Infof(stepOp, "Superstep", "%d", steps)
		barriers := make([]*zookeeper.DoubleBarrier, len(j.workers))
		path := fmt.Sprintf("/superstep-%d", steps)
		for i, w := range j.workers {
			barriers[i] = zookeeper.NewDoubleBarrier(w.zk, path, len(j.workers), fmt.Sprintf("w%d", i))
		}
		j.broadcast("superstep", steps, stepOp, func(i int) *zookeeper.DoubleBarrier { return barriers[i] })

		// Master: advance BSP state and decide termination.
		sync := j.em.Start(stepOp, "GiraphMaster", "SyncZookeeper")
		j.masterSync()
		j.em.End(sync)
		delivered, active := j.js.swapBuffers()
		j.em.End(stepOp)
		steps++
		if delivered == 0 && active == 0 {
			break
		}
		if j.err != nil {
			break
		}
	}
	return steps
}

// checkpoint writes a recovery checkpoint: every worker persists its
// owned state to HDFS, and the master snapshots the semantic BSP state so
// a later recovery can replay from here.
func (j *job) checkpoint(processOp trace.OpRef, steps int) {
	ckOp := j.em.Start(processOp, "GiraphMaster", "Checkpoint")
	j.em.Infof(ckOp, "Superstep", "%d", steps)
	j.broadcast("checkpoint", steps, ckOp, nil)
	j.snapshot = j.js.snapshot()
	j.lastCheckpoint = steps
	j.checkpointedAt = steps
	j.em.End(ckOp)
}

// checkpointPath names a worker's checkpoint file for a superstep.
func (j *job) checkpointPath(workerID, step int) string {
	return fmt.Sprintf("/checkpoints/%s/step-%04d/part-%03d", j.em.Job(), step, workerID)
}

func (j *job) workerCheckpoint(wp *sim.Proc, w *worker, cmd workerCmd) {
	local := j.em.Start(cmd.op, w.actor(), "LocalCheckpoint")
	defer j.em.End(local)
	owned := j.ownedVertices(w.id)
	bytes := int64(float64(owned) * j.cfg.WorkScale * j.cfg.Costs.CheckpointBytesPerVertex)
	path := j.checkpointPath(w.id, cmd.step)
	if err := j.deps.HDFS.Write(wp, w.node, path, bytes); err != nil {
		j.fail(err)
		return
	}
	j.em.Infof(local, "BytesWritten", "%d", bytes)
}

// recoverWorker handles an injected worker crash: detect, restart the
// container, restore the last checkpoint everywhere, and resume from it.
// It returns the superstep to resume at.
func (j *job) recoverWorker(processOp trace.OpRef) int {
	c := j.cfg.Costs
	rec := j.em.Start(processOp, "GiraphMaster", "RecoverWorker")
	j.em.Infof(rec, "Worker", "%d", j.cfg.FailWorker)
	j.em.Infof(rec, "ResumeSuperstep", "%d", j.lastCheckpoint)

	det := j.em.Start(rec, "GiraphMaster", "DetectFailure")
	j.p.Sleep(c.RecoveryDetectSeconds)
	j.em.End(det)

	// The crashed worker's process unwinds without a clean shutdown.
	old := j.workers[j.cfg.FailWorker]
	dead := sim.NewEvent(j.eng)
	old.cmds.Put(workerCmd{kind: "die", done: dead})
	dead.Wait(j.p)

	restart := j.em.Start(rec, "GiraphMaster", "RestartWorker")
	containers, err := j.app.AllocateContainers(j.p, 1, j.cfg.ComputeThreads)
	if err != nil {
		j.fail(err)
		j.em.End(restart)
		j.em.End(rec)
		return j.lastCheckpoint
	}
	w := &worker{
		id:        j.cfg.FailWorker,
		container: containers[0],
		node:      containers[0].Node,
		cmds:      sim.NewMailbox[workerCmd](j.eng),
	}
	ready := sim.NewEvent(j.eng)
	w.proc = containers[0].Launch(j.p, fmt.Sprintf("giraph-worker-%d-r", w.id), func(wp *sim.Proc) {
		local := j.em.Start(restart, w.actor(), "LocalStartup")
		w.zk = j.deps.ZK.Connect(wp, w.actor())
		_ = w.zk.Create(wp, fmt.Sprintf("/giraph-w%d-r", w.id), nil)
		j.em.End(local)
		ready.Fire()
		j.workerLoop(wp, w)
	})
	ready.Wait(j.p)
	j.workers[j.cfg.FailWorker] = w
	j.em.End(restart)

	rst := j.em.Start(rec, "GiraphMaster", "RestoreCheckpoint")
	j.broadcast("restore", j.lastCheckpoint, rst, nil)
	if j.snapshot != nil {
		j.js.restore(j.snapshot)
	}
	j.em.End(rst)
	j.em.End(rec)
	return j.lastCheckpoint
}

func (j *job) workerRestore(wp *sim.Proc, w *worker, cmd workerCmd) {
	local := j.em.Start(cmd.op, w.actor(), "LocalRestore")
	defer j.em.End(local)
	path := j.checkpointPath(w.id, cmd.step)
	splits, err := j.deps.HDFS.Splits(path, 1)
	if err != nil {
		j.fail(err)
		return
	}
	if _, err := j.deps.HDFS.ReadSplit(wp, w.node, splits[0]); err != nil {
		j.fail(err)
	}
}

// ownedVertices counts the vertices partitioned to a worker.
func (j *job) ownedVertices(workerID int) int64 {
	return int64(len(j.js.ownedLists[workerID]))
}

// masterSync models the master's coordination work at the superstep
// boundary: aggregator collection and superstep state in ZooKeeper.
func (j *job) masterSync() {
	path := fmt.Sprintf("/master-sync-%d", j.js.superstep)
	_ = j.masterZK.Create(j.p, path, nil)
	_ = j.masterZK.Delete(j.p, path)
}

// workerSuperstep implements LocalSuperstep = PreStep + Compute + Message
// + PostStep for one worker.
func (j *job) workerSuperstep(wp *sim.Proc, w *worker, cmd workerCmd) {
	c := j.cfg.Costs
	local := j.em.Start(cmd.op, w.actor(), "LocalSuperstep")
	defer j.em.End(local)

	// PreStep: enter the superstep barrier — every worker must arrive
	// before compute begins (Giraph's superstep start synchronization).
	pre := j.em.Start(local, w.actor(), "PreStep")
	if err := cmd.barrier.Enter(wp); err != nil {
		j.fail(err)
	}
	j.em.End(pre)

	// Compute: run the vertex program over owned active vertices. The
	// semantic execution is instantaneous in simulated time; the measured
	// work is then charged to the node's CPU. The first worker to reach
	// this point computes every worker's shard on the host pool (see
	// prepareSuperstep); the rest just read their prepared counters.
	comp := j.em.Start(local, w.actor(), "Compute")
	j.js.prepareSuperstep(j.program, cmd.step)
	if j.js.sendErr != nil {
		// A vertex program violated the engine contract; fail this job
		// (every worker observes the same first error) and finish the
		// superstep's bookkeeping so the barrier protocol stays intact.
		j.fail(j.js.sendErr)
	}
	vertices := j.js.vertexCount[w.id]
	sent := j.js.sendCount[w.id]
	received := j.js.recvCount[w.id]
	cpu := (float64(vertices)*c.ComputeCPUPerVertex +
		float64(sent+received)*c.ComputeCPUPerMessage) * j.cfg.WorkScale
	w.node.ExecParallel(wp, cpu, j.cfg.ComputeThreads)
	j.em.Infof(comp, "Vertices", "%d", vertices)
	j.em.Infof(comp, "MessagesSent", "%d", sent)
	j.em.Infof(comp, "MessagesReceived", "%d", received)
	j.em.End(comp)

	// Message: flush combined messages to peer workers.
	msgOp := j.em.Start(local, w.actor(), "Message")
	for d, other := range j.workers {
		wire := j.js.wireCount[w.id][d]
		if wire == 0 || other.id == w.id {
			continue
		}
		j.deps.Cluster.Transfer(wp, w.node, other.node, float64(wire)*j.cfg.WorkScale*c.MessageBytes)
	}
	j.em.End(msgOp)

	// PostStep: leave the barrier — wait for all workers to finish.
	post := j.em.Start(local, w.actor(), "PostStep")
	if err := cmd.barrier.Leave(wp); err != nil {
		j.fail(err)
	}
	j.em.End(post)
}

// offloadGraph implements OffloadGraph: per-worker LocalOffload →
// OffloadHdfsData.
func (j *job) offloadGraph(root trace.OpRef) {
	op := j.em.Start(root, "GiraphMaster", "OffloadGraph")
	defer j.em.End(op)
	j.broadcast("offload", 0, op, nil)
}

func (j *job) workerOffload(wp *sim.Proc, w *worker, cmd workerCmd) {
	local := j.em.Start(cmd.op, w.actor(), "LocalOffload")
	defer j.em.End(local)
	owned := j.ownedVertices(w.id)
	bytes := int64(float64(owned) * j.cfg.WorkScale * j.cfg.Costs.OutputBytesPerVertex)
	hdfsOp := j.em.Start(local, w.actor(), "OffloadHdfsData")
	path := fmt.Sprintf("%s/part-%05d-%s", j.deps.OutputPath, w.id, j.em.Job())
	if err := j.deps.HDFS.Write(wp, w.node, path, bytes); err != nil {
		j.fail(err)
	}
	j.em.Infof(hdfsOp, "BytesWritten", "%d", bytes)
	j.em.End(hdfsOp)
}

// cleanup implements Cleanup = JobCleanup → AbortWorkers, ClientCleanup,
// ServerCleanup, ZkCleanup.
func (j *job) cleanup(root trace.OpRef) {
	c := j.cfg.Costs
	op := j.em.Start(root, "GiraphClient", "Cleanup")
	defer j.em.End(op)
	jc := j.em.Start(op, "GiraphClient", "JobCleanup")

	abort := j.em.Start(jc, "GiraphMaster", "AbortWorkers")
	events := make([]*sim.Event, len(j.workers))
	for i, w := range j.workers {
		events[i] = sim.NewEvent(j.eng)
		w.cmds.Put(workerCmd{kind: "shutdown", done: events[i]})
	}
	for _, ev := range events {
		ev.Wait(j.p)
	}
	j.em.End(abort)

	cc := j.em.Start(jc, "GiraphClient", "ClientCleanup")
	j.p.Sleep(c.ClientCleanupSeconds)
	j.em.End(cc)

	sc := j.em.Start(jc, "GiraphClient", "ServerCleanup")
	if j.app != nil {
		j.app.Release(j.p)
	}
	j.p.Sleep(c.ServerCleanupSeconds)
	j.em.End(sc)

	zc := j.em.Start(jc, "GiraphClient", "ZkCleanup")
	se := j.deps.ZK.Connect(j.p, "GiraphClient")
	for i := range j.workers {
		_ = se.Delete(j.p, fmt.Sprintf("/giraph-w%d", i))
	}
	se.Close(j.p)
	if j.masterZK != nil {
		j.masterZK.Close(j.p)
	}
	j.p.Sleep(c.ZkCleanupSeconds)
	j.em.End(zc)

	j.em.End(jc)
}
