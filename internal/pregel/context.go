package pregel

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// Context is the view a vertex program gets of one vertex during one
// Compute call. It exposes Pregel's full vertex API: value access,
// messaging, halting, topology, and aggregators.
type Context struct {
	js        *jobState
	worker    int
	vertex    graph.VertexID
	superstep int
}

// ID returns the vertex ID.
func (c *Context) ID() graph.VertexID { return c.vertex }

// Superstep returns the current superstep number, starting at 0.
func (c *Context) Superstep() int { return c.superstep }

// NumVertices returns the graph's vertex count.
func (c *Context) NumVertices() int64 { return c.js.g.NumVertices() }

// NumEdges returns the graph's arc count.
func (c *Context) NumEdges() int64 { return c.js.g.NumArcs() }

// Value returns the vertex's current value.
func (c *Context) Value() float64 { return c.js.values[c.vertex] }

// SetValue replaces the vertex's value.
func (c *Context) SetValue(v float64) { c.js.values[c.vertex] = v }

// OutDegree returns the vertex's out-degree.
func (c *Context) OutDegree() int64 { return c.js.g.OutDegree(c.vertex) }

// OutNeighbors returns the vertex's out-neighbors; the slice must not be
// modified.
func (c *Context) OutNeighbors() []graph.VertexID {
	return c.js.g.OutNeighbors(c.vertex)
}

// SendTo sends msg to vertex dst, delivered in the next superstep.
func (c *Context) SendTo(dst graph.VertexID, msg float64) {
	c.js.send(c.worker, dst, msg)
}

// SendToAllNeighbors sends msg along every out-edge.
func (c *Context) SendToAllNeighbors(msg float64) {
	for _, dst := range c.js.g.OutNeighbors(c.vertex) {
		c.js.send(c.worker, dst, msg)
	}
}

// VoteToHalt deactivates the vertex; an incoming message reactivates it.
func (c *Context) VoteToHalt() { c.js.halted[c.vertex] = true }

// Aggregate contributes v to the named aggregator for the next superstep.
// Aggregators are commutative reductions; the operator is fixed at
// registration time via RegisterAggregator on the job config... registered
// implicitly on first use with a sum semantics unless declared.
func (c *Context) Aggregate(name string, v float64) {
	c.js.aggregateNext(name, v)
}

// AggregatedValue returns the named aggregator's value from the previous
// superstep, or 0 if absent.
func (c *Context) AggregatedValue(name string) float64 {
	return c.js.aggCur[name]
}

// jobState is the shared in-memory state of a running job. The simulation
// kernel is cooperative (one process at a time), so no locking is needed;
// BSP double-buffering keeps superstep semantics exact.
type jobState struct {
	g      *graph.Graph
	owner  []int // vertex -> worker
	values []float64
	halted []bool

	// inboxCur is read during the current superstep; message delivery
	// appends to inboxNext.
	inboxCur  [][]float64
	inboxNext [][]float64

	combiner Combiner
	// lastSender tags, per destination vertex, the (worker, superstep)
	// that last combined into inboxNext[v], so combined wire messages can
	// be counted per sending worker.
	lastSenderWorker []int
	lastSenderStep   []int
	superstep        int

	aggCur, aggNext map[string]float64

	// Per-superstep, per-worker work counters, reset each superstep.
	vertexCount  []int64   // Compute invocations
	sendCount    []int64   // messages passed to send (pre-combining)
	wireCount    [][]int64 // [from][toWorker] combined messages
	deliveredCnt int64     // messages delivered into inboxNext this superstep

	totalWireMessages int64
}

func newJobState(g *graph.Graph, part graph.Partitioner, workers int, combiner Combiner) *jobState {
	n := g.NumVertices()
	js := &jobState{
		g:                g,
		owner:            make([]int, n),
		values:           make([]float64, n),
		halted:           make([]bool, n),
		inboxCur:         make([][]float64, n),
		inboxNext:        make([][]float64, n),
		combiner:         combiner,
		lastSenderWorker: make([]int, n),
		lastSenderStep:   make([]int, n),
		aggCur:           map[string]float64{},
		aggNext:          map[string]float64{},
		vertexCount:      make([]int64, workers),
		sendCount:        make([]int64, workers),
		wireCount:        make([][]int64, workers),
	}
	for i := range js.lastSenderStep {
		js.lastSenderStep[i] = -1
		js.lastSenderWorker[i] = -1
	}
	for w := 0; w < workers; w++ {
		js.wireCount[w] = make([]int64, workers)
	}
	for v := int64(0); v < n; v++ {
		js.owner[v] = part.Partition(graph.VertexID(v))
	}
	for v := range js.values {
		js.values[v] = math.Inf(1)
	}
	return js
}

// send delivers a message from a vertex on worker from to vertex dst,
// applying sender-side combining when a combiner is configured.
func (js *jobState) send(from int, dst graph.VertexID, msg float64) {
	if dst < 0 || int64(dst) >= js.g.NumVertices() {
		panic(fmt.Sprintf("pregel: message to unknown vertex %d", dst))
	}
	js.sendCount[from]++
	toWorker := js.owner[dst]
	if js.combiner != nil {
		// Within one superstep, all of worker `from`'s messages to dst are
		// contiguous, so a change of (worker, superstep) tag marks a new
		// combined wire message.
		if js.lastSenderWorker[dst] == from && js.lastSenderStep[dst] == js.superstep {
			last := len(js.inboxNext[dst]) - 1
			js.inboxNext[dst][last] = js.combiner.Combine(js.inboxNext[dst][last], msg)
			return
		}
		js.lastSenderWorker[dst] = from
		js.lastSenderStep[dst] = js.superstep
	}
	js.inboxNext[dst] = append(js.inboxNext[dst], msg)
	js.wireCount[from][toWorker]++
	js.deliveredCnt++
	js.totalWireMessages++
}

// aggregateNext adds v into the named aggregator for the next superstep.
func (js *jobState) aggregateNext(name string, v float64) {
	js.aggNext[name] += v
}

// stateSnapshot is a checkpoint of the BSP state taken before a superstep
// executes, sufficient to replay the computation from that superstep.
type stateSnapshot struct {
	values    []float64
	halted    []bool
	inboxCur  [][]float64
	aggCur    map[string]float64
	superstep int
}

// snapshot deep-copies the restartable state.
func (js *jobState) snapshot() *stateSnapshot {
	s := &stateSnapshot{
		values:    append([]float64(nil), js.values...),
		halted:    append([]bool(nil), js.halted...),
		inboxCur:  make([][]float64, len(js.inboxCur)),
		aggCur:    map[string]float64{},
		superstep: js.superstep,
	}
	for v, msgs := range js.inboxCur {
		if len(msgs) > 0 {
			s.inboxCur[v] = append([]float64(nil), msgs...)
		}
	}
	for k, v := range js.aggCur {
		s.aggCur[k] = v
	}
	return s
}

// restore rolls the BSP state back to a snapshot, discarding everything
// computed since: values, halt flags, pending messages, aggregators, and
// in-flight next-superstep buffers.
func (js *jobState) restore(s *stateSnapshot) {
	copy(js.values, s.values)
	copy(js.halted, s.halted)
	for v := range js.inboxCur {
		js.inboxCur[v] = js.inboxCur[v][:0]
		js.inboxCur[v] = append(js.inboxCur[v], s.inboxCur[v]...)
		js.inboxNext[v] = js.inboxNext[v][:0]
	}
	js.aggCur = map[string]float64{}
	for k, v := range s.aggCur {
		js.aggCur[k] = v
	}
	for k := range js.aggNext {
		delete(js.aggNext, k)
	}
	for v := range js.lastSenderStep {
		js.lastSenderStep[v] = -1
		js.lastSenderWorker[v] = -1
	}
	for w := range js.vertexCount {
		js.vertexCount[w] = 0
		js.sendCount[w] = 0
		for d := range js.wireCount[w] {
			js.wireCount[w][d] = 0
		}
	}
	js.deliveredCnt = 0
	js.superstep = s.superstep
}

// swapBuffers advances BSP state at the superstep barrier: next-inboxes
// become current, aggregators rotate, per-superstep counters reset. It
// returns the number of messages that will be delivered and the number of
// vertices that remain active.
func (js *jobState) swapBuffers() (delivered int64, active int64) {
	delivered = js.deliveredCnt
	js.inboxCur, js.inboxNext = js.inboxNext, js.inboxCur
	for v := range js.inboxNext {
		js.inboxNext[v] = js.inboxNext[v][:0]
	}
	js.aggCur, js.aggNext = js.aggNext, js.aggCur
	for k := range js.aggNext {
		delete(js.aggNext, k)
	}
	for v := range js.halted {
		if !js.halted[v] {
			active++
		}
	}
	for w := range js.vertexCount {
		js.vertexCount[w] = 0
		js.sendCount[w] = 0
		for d := range js.wireCount[w] {
			js.wireCount[w][d] = 0
		}
	}
	js.deliveredCnt = 0
	js.superstep++
	return delivered, active
}
