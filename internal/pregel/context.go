package pregel

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/sim"
)

// Context is the view a vertex program gets of one vertex during one
// Compute call. It exposes Pregel's full vertex API: value access,
// messaging, halting, topology, and aggregators.
//
// Compute calls for different workers may run on different host
// goroutines (see jobState.prepareSuperstep), so every mutation a Context
// performs lands either on state owned exclusively by this vertex's
// worker (values, halt flags, inboxes of owned vertices) or in the
// worker's private outbox, which the engine merges in worker-index order
// at the superstep barrier.
type Context struct {
	js        *jobState
	out       *workerOutbox
	worker    int
	vertex    graph.VertexID
	superstep int
}

// ID returns the vertex ID.
func (c *Context) ID() graph.VertexID { return c.vertex }

// Superstep returns the current superstep number, starting at 0.
func (c *Context) Superstep() int { return c.superstep }

// NumVertices returns the graph's vertex count.
func (c *Context) NumVertices() int64 { return c.js.g.NumVertices() }

// NumEdges returns the graph's arc count.
func (c *Context) NumEdges() int64 { return c.js.g.NumArcs() }

// Value returns the vertex's current value.
func (c *Context) Value() float64 { return c.js.values[c.vertex] }

// SetValue replaces the vertex's value.
func (c *Context) SetValue(v float64) { c.js.values[c.vertex] = v }

// OutDegree returns the vertex's out-degree.
func (c *Context) OutDegree() int64 { return c.js.g.OutDegree(c.vertex) }

// OutNeighbors returns the vertex's out-neighbors; the slice must not be
// modified.
func (c *Context) OutNeighbors() []graph.VertexID {
	return c.js.g.OutNeighbors(c.vertex)
}

// SendTo sends msg to vertex dst, delivered in the next superstep.
func (c *Context) SendTo(dst graph.VertexID, msg float64) {
	c.js.sendShard(c.out, c.worker, dst, msg)
}

// SendToAllNeighbors sends msg along every out-edge.
func (c *Context) SendToAllNeighbors(msg float64) {
	for _, dst := range c.js.g.OutNeighbors(c.vertex) {
		c.js.sendShard(c.out, c.worker, dst, msg)
	}
}

// VoteToHalt deactivates the vertex; an incoming message reactivates it.
func (c *Context) VoteToHalt() { c.js.halted[c.vertex] = true }

// Aggregate contributes v to the named aggregator for the next superstep.
// Aggregators are commutative reductions; the operator is fixed at
// registration time via RegisterAggregator on the job config... registered
// implicitly on first use with a sum semantics unless declared.
func (c *Context) Aggregate(name string, v float64) {
	// Recorded as an ordered (name, value) pair and replayed at the merge
	// barrier, so the floating-point reduction order is exactly the serial
	// engine's regardless of host parallelism.
	c.out.aggNames = append(c.out.aggNames, name)
	c.out.aggVals = append(c.out.aggVals, v)
}

// AggregatedValue returns the named aggregator's value from the previous
// superstep, or 0 if absent.
func (c *Context) AggregatedValue(name string) float64 {
	return c.js.aggCur[name]
}

// jobState is the shared in-memory state of a running job. The simulation
// kernel is cooperative (one process at a time), so the superstep barrier
// structure needs no locking; within one superstep the semantic compute is
// fanned across a HostPool, with every fork writing only worker-private
// state and every merge running in fixed worker-index order so the result
// is byte-identical for any pool size (see prepareSuperstep).
type jobState struct {
	g      *graph.Graph
	owner  []int // vertex -> worker
	values []float64
	halted []bool

	// inboxCur is read during the current superstep; message delivery
	// appends to inboxNext at the merge barrier.
	inboxCur  [][]float64
	inboxNext [][]float64

	combiner  Combiner
	superstep int

	aggCur, aggNext map[string]float64

	// Host-parallel superstep compute. outboxes[w] is worker w's private
	// buffer for one superstep; shardLastEpoch/shardLastIdx implement
	// sender-side combining per (worker, destination) without touching
	// shared state: a row is only ever written by its own worker's fork.
	hostPool       *sim.HostPool
	outboxes       []*workerOutbox
	shardLastEpoch [][]int64 // [from][dst] -> epoch of the combined entry
	shardLastIdx   [][]int64 // [from][dst] -> index into outbox vals
	sendEpoch      int64     // bumped once per prepareSuperstep, never reused
	preparedStep   int       // superstep the outboxes currently hold; -1 none

	// Per-superstep, per-worker work counters, reset each superstep.
	vertexCount  []int64   // Compute invocations
	sendCount    []int64   // messages passed to send (pre-combining)
	recvCount    []int64   // messages delivered to the worker's vertices
	wireCount    [][]int64 // [from][toWorker] combined messages
	deliveredCnt int64     // messages delivered into inboxNext this superstep

	totalWireMessages int64
}

// workerOutbox buffers one worker's superstep effects until the merge
// barrier: outgoing messages in send order, aggregator contributions in
// call order, and the work counters the trace reports per worker.
type workerOutbox struct {
	epoch    int64
	dsts     []graph.VertexID
	vals     []float64
	aggNames []string
	aggVals  []float64
	wire     []int64 // per destination worker, combined messages
	sent     int64   // pre-combining sends
	vertices int64   // Compute invocations
	received int64   // messages read from inboxCur
}

func (o *workerOutbox) reset(epoch int64) {
	o.epoch = epoch
	o.dsts = o.dsts[:0]
	o.vals = o.vals[:0]
	o.aggNames = o.aggNames[:0]
	o.aggVals = o.aggVals[:0]
	for d := range o.wire {
		o.wire[d] = 0
	}
	o.sent, o.vertices, o.received = 0, 0, 0
}

func newJobState(g *graph.Graph, part graph.Partitioner, workers int, combiner Combiner, pool *sim.HostPool) *jobState {
	n := g.NumVertices()
	js := &jobState{
		g:              g,
		owner:          make([]int, n),
		values:         make([]float64, n),
		halted:         make([]bool, n),
		inboxCur:       make([][]float64, n),
		inboxNext:      make([][]float64, n),
		combiner:       combiner,
		aggCur:         map[string]float64{},
		aggNext:        map[string]float64{},
		hostPool:       pool,
		outboxes:       make([]*workerOutbox, workers),
		shardLastEpoch: make([][]int64, workers),
		shardLastIdx:   make([][]int64, workers),
		preparedStep:   -1,
		vertexCount:    make([]int64, workers),
		sendCount:      make([]int64, workers),
		recvCount:      make([]int64, workers),
		wireCount:      make([][]int64, workers),
	}
	for w := 0; w < workers; w++ {
		js.wireCount[w] = make([]int64, workers)
		js.outboxes[w] = &workerOutbox{wire: make([]int64, workers)}
		js.shardLastEpoch[w] = make([]int64, n)
		js.shardLastIdx[w] = make([]int64, n)
	}
	for v := int64(0); v < n; v++ {
		js.owner[v] = part.Partition(graph.VertexID(v))
	}
	for v := range js.values {
		js.values[v] = math.Inf(1)
	}
	return js
}

// sendShard records a message from a vertex on worker from into the
// worker's private outbox, applying sender-side combining when a combiner
// is configured. Within one superstep all of a worker's messages to dst
// collapse into one combined wire message, exactly as in the serial
// engine where each worker's sends to a destination were contiguous.
func (js *jobState) sendShard(out *workerOutbox, from int, dst graph.VertexID, msg float64) {
	if dst < 0 || int64(dst) >= js.g.NumVertices() {
		panic(fmt.Sprintf("pregel: message to unknown vertex %d", dst))
	}
	out.sent++
	if js.combiner != nil {
		if js.shardLastEpoch[from][dst] == out.epoch {
			i := js.shardLastIdx[from][dst]
			out.vals[i] = js.combiner.Combine(out.vals[i], msg)
			return
		}
		js.shardLastEpoch[from][dst] = out.epoch
		js.shardLastIdx[from][dst] = int64(len(out.vals))
	}
	out.dsts = append(out.dsts, dst)
	out.vals = append(out.vals, msg)
	out.wire[js.owner[dst]]++
}

// computeShard runs the vertex program over one worker's owned active
// vertices, recording every effect either in worker-owned state (values,
// halt flags) or in the worker's private outbox. It runs on a host pool
// goroutine; it must not touch any other worker's state.
func (js *jobState) computeShard(program Program, w, step int) {
	out := js.outboxes[w]
	out.reset(js.sendEpoch)
	n := js.g.NumVertices()
	for v := int64(0); v < n; v++ {
		if js.owner[v] != w {
			continue
		}
		inbox := js.inboxCur[v]
		if js.halted[v] && len(inbox) == 0 {
			continue
		}
		js.halted[v] = false
		ctx := Context{js: js, out: out, worker: w, vertex: graph.VertexID(v), superstep: step}
		program.Compute(&ctx, inbox)
		out.vertices++
		out.received += int64(len(inbox))
	}
}

// prepareSuperstep runs the semantic compute of every worker for one
// superstep, fanned across the host pool, then merges the private
// outboxes in fixed worker-index order. The first worker process to reach
// its Compute phase triggers it; the others find the step already
// prepared. Because each fork writes only private state and the merge
// order is fixed, message order, combining, aggregator floating-point
// reduction order, and every counter are identical for any pool size —
// including the serial pool, which reproduces the old engine exactly.
func (js *jobState) prepareSuperstep(program Program, step int) {
	if js.preparedStep == step {
		return
	}
	js.preparedStep = step
	js.sendEpoch++
	js.hostPool.ForkJoin(len(js.outboxes), func(w int) {
		js.computeShard(program, w, step)
	})
	for from, out := range js.outboxes {
		for i, dst := range out.dsts {
			js.inboxNext[dst] = append(js.inboxNext[dst], out.vals[i])
		}
		for i, name := range out.aggNames {
			js.aggNext[name] += out.aggVals[i]
		}
		js.vertexCount[from] = out.vertices
		js.sendCount[from] = out.sent
		js.recvCount[from] = out.received
		copy(js.wireCount[from], out.wire)
		wire := int64(len(out.dsts))
		js.deliveredCnt += wire
		js.totalWireMessages += wire
	}
}

// stateSnapshot is a checkpoint of the BSP state taken before a superstep
// executes, sufficient to replay the computation from that superstep.
type stateSnapshot struct {
	values    []float64
	halted    []bool
	inboxCur  [][]float64
	aggCur    map[string]float64
	superstep int
}

// snapshot deep-copies the restartable state.
func (js *jobState) snapshot() *stateSnapshot {
	s := &stateSnapshot{
		values:    append([]float64(nil), js.values...),
		halted:    append([]bool(nil), js.halted...),
		inboxCur:  make([][]float64, len(js.inboxCur)),
		aggCur:    map[string]float64{},
		superstep: js.superstep,
	}
	for v, msgs := range js.inboxCur {
		if len(msgs) > 0 {
			s.inboxCur[v] = append([]float64(nil), msgs...)
		}
	}
	for k, v := range js.aggCur {
		s.aggCur[k] = v
	}
	return s
}

// restore rolls the BSP state back to a snapshot, discarding everything
// computed since: values, halt flags, pending messages, aggregators, and
// in-flight next-superstep buffers.
func (js *jobState) restore(s *stateSnapshot) {
	copy(js.values, s.values)
	copy(js.halted, s.halted)
	for v := range js.inboxCur {
		js.inboxCur[v] = js.inboxCur[v][:0]
		js.inboxCur[v] = append(js.inboxCur[v], s.inboxCur[v]...)
		js.inboxNext[v] = js.inboxNext[v][:0]
	}
	js.aggCur = map[string]float64{}
	for k, v := range s.aggCur {
		js.aggCur[k] = v
	}
	for k := range js.aggNext {
		delete(js.aggNext, k)
	}
	for w := range js.vertexCount {
		js.vertexCount[w] = 0
		js.sendCount[w] = 0
		js.recvCount[w] = 0
		for d := range js.wireCount[w] {
			js.wireCount[w][d] = 0
		}
	}
	js.deliveredCnt = 0
	js.superstep = s.superstep
	// The restored superstep must be recomputed even though a prepare ran
	// for it before the crash; sendEpoch is monotonic, so stale combining
	// tags from that earlier run can never match a future epoch.
	js.preparedStep = -1
}

// swapBuffers advances BSP state at the superstep barrier: next-inboxes
// become current, aggregators rotate, per-superstep counters reset. It
// returns the number of messages that will be delivered and the number of
// vertices that remain active.
func (js *jobState) swapBuffers() (delivered int64, active int64) {
	delivered = js.deliveredCnt
	js.inboxCur, js.inboxNext = js.inboxNext, js.inboxCur
	for v := range js.inboxNext {
		js.inboxNext[v] = js.inboxNext[v][:0]
	}
	js.aggCur, js.aggNext = js.aggNext, js.aggCur
	for k := range js.aggNext {
		delete(js.aggNext, k)
	}
	for v := range js.halted {
		if !js.halted[v] {
			active++
		}
	}
	for w := range js.vertexCount {
		js.vertexCount[w] = 0
		js.sendCount[w] = 0
		js.recvCount[w] = 0
		for d := range js.wireCount[w] {
			js.wireCount[w][d] = 0
		}
	}
	js.deliveredCnt = 0
	js.superstep++
	return delivered, active
}
