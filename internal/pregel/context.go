package pregel

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/sim"
)

// Context is the view a vertex program gets of one vertex during one
// Compute call. It exposes Pregel's full vertex API: value access,
// messaging, halting, topology, and aggregators.
//
// Compute calls for different workers may run on different host
// goroutines (see jobState.prepareSuperstep), so every mutation a Context
// performs lands either on state owned exclusively by this vertex's
// worker (values, halt flags) or in the worker's private outbox, which
// the engine merges in worker-index order at the superstep barrier.
//
// Each worker owns one long-lived Context embedded in its outbox; the
// engine repoints vertex/superstep between Compute calls so the hot loop
// performs no per-vertex allocation.
type Context struct {
	js        *jobState
	out       *workerOutbox
	worker    int
	vertex    graph.VertexID
	superstep int
}

// ID returns the vertex ID.
func (c *Context) ID() graph.VertexID { return c.vertex }

// Superstep returns the current superstep number, starting at 0.
func (c *Context) Superstep() int { return c.superstep }

// NumVertices returns the graph's vertex count.
func (c *Context) NumVertices() int64 { return c.js.g.NumVertices() }

// NumEdges returns the graph's arc count.
func (c *Context) NumEdges() int64 { return c.js.g.NumArcs() }

// Value returns the vertex's current value.
func (c *Context) Value() float64 { return c.js.values[c.vertex] }

// SetValue replaces the vertex's value.
func (c *Context) SetValue(v float64) { c.js.values[c.vertex] = v }

// OutDegree returns the vertex's out-degree.
func (c *Context) OutDegree() int64 { return c.js.g.OutDegree(c.vertex) }

// OutNeighbors returns the vertex's out-neighbors; the slice must not be
// modified.
func (c *Context) OutNeighbors() []graph.VertexID {
	return c.js.g.OutNeighbors(c.vertex)
}

// SendTo sends msg to vertex dst, delivered in the next superstep. A dst
// outside [0, NumVertices) is a vertex-program bug; it fails the job with
// a VertexProgramError at the superstep barrier instead of panicking the
// whole engine, so one misbehaving program cannot take down the process.
func (c *Context) SendTo(dst graph.VertexID, msg float64) {
	if dst < 0 || int64(dst) >= c.js.g.NumVertices() {
		if c.out.sendErr == nil {
			c.out.sendErr = &VertexProgramError{
				Superstep: c.superstep,
				Vertex:    c.vertex,
				Problem:   fmt.Sprintf("SendTo(%d) outside [0,%d)", dst, c.js.g.NumVertices()),
			}
		}
		return
	}
	c.js.sendShard(c.out, dst, msg)
}

// SendToAllNeighbors sends msg along every out-edge.
func (c *Context) SendToAllNeighbors(msg float64) {
	for _, dst := range c.js.g.OutNeighbors(c.vertex) {
		c.js.sendShard(c.out, dst, msg)
	}
}

// VoteToHalt deactivates the vertex; an incoming message reactivates it.
func (c *Context) VoteToHalt() { c.js.halted[c.vertex] = true }

// Aggregate contributes v to the named aggregator for the next superstep.
// Aggregators are commutative reductions; the operator is fixed at
// registration time via RegisterAggregator on the job config... registered
// implicitly on first use with a sum semantics unless declared.
func (c *Context) Aggregate(name string, v float64) {
	// Recorded as an ordered (name, value) pair and replayed at the merge
	// barrier, so the floating-point reduction order is exactly the serial
	// engine's regardless of host parallelism.
	c.out.aggNames = append(c.out.aggNames, name)
	c.out.aggVals = append(c.out.aggVals, v)
}

// AggregatedValue returns the named aggregator's value from the previous
// superstep, or 0 if absent.
func (c *Context) AggregatedValue(name string) float64 {
	return c.js.aggCur[name]
}

// VertexProgramError reports a vertex program violating the engine API
// contract (e.g. sending to a nonexistent vertex). It fails the job it
// occurred in — a per-job conformance error, mirroring core.CheckJob's
// error model — rather than panicking the shared process.
type VertexProgramError struct {
	Superstep int
	Vertex    graph.VertexID
	Problem   string
}

func (e *VertexProgramError) Error() string {
	return fmt.Sprintf("pregel: vertex program error at superstep %d, vertex %d: %s",
		e.Superstep, e.Vertex, e.Problem)
}

// msgArena is one superstep's delivered messages in a flat preallocated
// layout: vertex v's inbox is vals[off[v] : off[v]+cnt[v]]. Two arenas
// double-buffer the BSP message state (current and next superstep); the
// next arena is rebuilt at each merge barrier by a count → prefix-sum →
// fill pass over the worker outboxes in worker-index order, which
// reproduces exactly the per-vertex message order of the historical
// per-vertex append slices. The backing arrays are reused across
// supersteps, so steady-state delivery allocates nothing.
type msgArena struct {
	off  []int64
	cnt  []int32
	vals []float64
}

func newMsgArena(n int64) *msgArena {
	return &msgArena{off: make([]int64, n), cnt: make([]int32, n)}
}

// msgs returns v's inbox slice (nil when empty). The slice aliases arena
// storage; a vertex program may mutate it in place during its own Compute
// call (each region is read by exactly one vertex per superstep).
func (a *msgArena) msgs(v graph.VertexID) []float64 {
	c := a.cnt[v]
	if c == 0 {
		return nil
	}
	o := a.off[v]
	return a.vals[o : o+int64(c)]
}

// deliver rebuilds the arena from the outboxes' pending messages,
// preserving worker-index order then per-worker send order.
func (a *msgArena) deliver(outboxes []*workerOutbox) {
	for v := range a.cnt {
		a.cnt[v] = 0
	}
	total := 0
	for _, out := range outboxes {
		total += len(out.dsts)
		for _, dst := range out.dsts {
			a.cnt[dst]++
		}
	}
	var off int64
	for v := range a.off {
		a.off[v] = off
		off += int64(a.cnt[v])
	}
	if cap(a.vals) < total {
		a.vals = make([]float64, total)
	} else {
		a.vals = a.vals[:total]
	}
	for v := range a.cnt {
		a.cnt[v] = 0 // reuse as fill cursor, restored by the fill itself
	}
	for _, out := range outboxes {
		for i, dst := range out.dsts {
			a.vals[a.off[dst]+int64(a.cnt[dst])] = out.vals[i]
			a.cnt[dst]++
		}
	}
}

// clone deep-copies the arena (for checkpoints).
func (a *msgArena) clone() *msgArena {
	return &msgArena{
		off:  append([]int64(nil), a.off...),
		cnt:  append([]int32(nil), a.cnt...),
		vals: append([]float64(nil), a.vals...),
	}
}

// copyFrom overwrites the arena with b's contents, reusing capacity.
func (a *msgArena) copyFrom(b *msgArena) {
	a.off = append(a.off[:0], b.off...)
	a.cnt = append(a.cnt[:0], b.cnt...)
	a.vals = append(a.vals[:0], b.vals...)
}

// clear empties the arena (cnt is authoritative; off may go stale).
func (a *msgArena) clear() {
	for v := range a.cnt {
		a.cnt[v] = 0
	}
	a.vals = a.vals[:0]
}

// jobState is the shared in-memory state of a running job. The simulation
// kernel is cooperative (one process at a time), so the superstep barrier
// structure needs no locking; within one superstep the semantic compute is
// fanned across a HostPool, with every fork writing only worker-private
// state and every merge running in fixed worker-index order so the result
// is byte-identical for any pool size (see prepareSuperstep).
type jobState struct {
	g      *graph.Graph
	owner  []int // vertex -> worker
	values []float64
	halted []bool

	// ownedLists[w] is worker w's owned vertices in ascending ID order —
	// the iteration order of the old full-scan-and-filter loop, without
	// the scan. ownedArcs[w] is the matching out-arc total.
	ownedLists [][]graph.VertexID
	ownedArcs  []int64

	// arenaCur is read during the current superstep; the merge barrier
	// rebuilds arenaNext from the worker outboxes.
	arenaCur  *msgArena
	arenaNext *msgArena

	combiner  Combiner
	superstep int

	aggCur, aggNext map[string]float64

	// Host-parallel superstep compute. outboxes[w] is worker w's private
	// buffer for one superstep, including its sender-side combining tags:
	// every row is only ever written by its own worker's fork.
	hostPool     *sim.HostPool
	outboxes     []*workerOutbox
	sendEpoch    int32 // bumped once per prepareSuperstep, never reused
	preparedStep int   // superstep the outboxes currently hold; -1 none

	// Parameters of the superstep being prepared, read by the persistent
	// fork function (shardFn) so the fan-out allocates no fresh closure.
	prog     Program
	prepStep int
	shardFn  func(int)

	// sendErr is the first vertex-program error observed, merged in
	// worker-index order at the barrier — deterministic across pool sizes.
	sendErr error

	// Per-superstep, per-worker work counters, reset each superstep.
	vertexCount  []int64   // Compute invocations
	sendCount    []int64   // messages passed to send (pre-combining)
	recvCount    []int64   // messages delivered to the worker's vertices
	wireCount    [][]int64 // [from][toWorker] combined messages
	deliveredCnt int64     // messages delivered into the next arena this superstep

	totalWireMessages int64
}

// workerOutbox buffers one worker's superstep effects until the merge
// barrier: outgoing messages in send order, aggregator contributions in
// call order, and the work counters the trace reports per worker. It also
// embeds the worker's reusable Context so Compute calls never allocate.
type workerOutbox struct {
	ctx      Context
	epoch    int32
	dsts     []graph.VertexID
	vals     []float64
	aggNames []string
	aggVals  []float64
	wire     []int64 // per destination worker, combined messages
	sent     int64   // pre-combining sends
	vertices int64   // Compute invocations
	received int64   // messages read from the current arena
	sendErr  error   // first API-contract violation this superstep

	// lastEpoch/lastIdx implement sender-side combining per destination:
	// a dst whose tag matches the current epoch already has a combined
	// entry at vals[lastIdx[dst]]. Allocated only when the job has a
	// combiner; int32 suffices because epochs count supersteps and idx
	// indexes one worker's sends within one superstep.
	lastEpoch []int32
	lastIdx   []int32
}

func (o *workerOutbox) reset(epoch int32) {
	o.epoch = epoch
	o.dsts = o.dsts[:0]
	o.vals = o.vals[:0]
	o.aggNames = o.aggNames[:0]
	o.aggVals = o.aggVals[:0]
	for d := range o.wire {
		o.wire[d] = 0
	}
	o.sent, o.vertices, o.received = 0, 0, 0
	o.sendErr = nil
}

func newJobState(g *graph.Graph, part graph.Partitioner, workers int, combiner Combiner, pool *sim.HostPool) *jobState {
	n := g.NumVertices()
	js := &jobState{
		g:            g,
		owner:        make([]int, n),
		values:       make([]float64, n),
		halted:       make([]bool, n),
		ownedLists:   make([][]graph.VertexID, workers),
		ownedArcs:    make([]int64, workers),
		arenaCur:     newMsgArena(n),
		arenaNext:    newMsgArena(n),
		combiner:     combiner,
		aggCur:       map[string]float64{},
		aggNext:      map[string]float64{},
		hostPool:     pool,
		outboxes:     make([]*workerOutbox, workers),
		preparedStep: -1,
		vertexCount:  make([]int64, workers),
		sendCount:    make([]int64, workers),
		recvCount:    make([]int64, workers),
		wireCount:    make([][]int64, workers),
	}
	for w := 0; w < workers; w++ {
		js.wireCount[w] = make([]int64, workers)
		js.outboxes[w] = &workerOutbox{wire: make([]int64, workers)}
		js.outboxes[w].ctx = Context{js: js, out: js.outboxes[w], worker: w}
		if combiner != nil {
			js.outboxes[w].lastEpoch = make([]int32, n)
			js.outboxes[w].lastIdx = make([]int32, n)
		}
	}
	for v := int64(0); v < n; v++ {
		w := part.Partition(graph.VertexID(v))
		js.owner[v] = w
		js.ownedLists[w] = append(js.ownedLists[w], graph.VertexID(v))
		js.ownedArcs[w] += g.OutDegree(graph.VertexID(v))
	}
	for v := range js.values {
		js.values[v] = math.Inf(1)
	}
	js.shardFn = js.computeShard
	return js
}

// sendShard records a message into the sending worker's private outbox,
// applying sender-side combining when a combiner is configured. Within
// one superstep all of a worker's messages to dst collapse into one
// combined wire message, exactly as in the serial engine where each
// worker's sends to a destination were contiguous. Callers must have
// validated dst (see Context.SendTo).
func (js *jobState) sendShard(out *workerOutbox, dst graph.VertexID, msg float64) {
	out.sent++
	if js.combiner != nil {
		if out.lastEpoch[dst] == out.epoch {
			i := out.lastIdx[dst]
			out.vals[i] = js.combiner.Combine(out.vals[i], msg)
			return
		}
		out.lastEpoch[dst] = out.epoch
		out.lastIdx[dst] = int32(len(out.vals))
	}
	out.dsts = append(out.dsts, dst)
	out.vals = append(out.vals, msg)
	out.wire[js.owner[dst]]++
}

// computeShard runs the vertex program over one worker's owned active
// vertices, recording every effect either in worker-owned state (values,
// halt flags) or in the worker's private outbox. It runs on a host pool
// goroutine; it must not touch any other worker's state. The program and
// superstep come from jobState fields set by prepareSuperstep before the
// fork, so this function itself is the pool's persistent work function.
func (js *jobState) computeShard(w int) {
	program, step := js.prog, js.prepStep
	out := js.outboxes[w]
	out.reset(js.sendEpoch)
	out.ctx.superstep = step
	for _, v := range js.ownedLists[w] {
		inbox := js.arenaCur.msgs(v)
		if js.halted[v] && len(inbox) == 0 {
			continue
		}
		js.halted[v] = false
		out.ctx.vertex = v
		program.Compute(&out.ctx, inbox)
		out.vertices++
		out.received += int64(len(inbox))
	}
}

// prepareSuperstep runs the semantic compute of every worker for one
// superstep, fanned across the host pool, then merges the private
// outboxes in fixed worker-index order. The first worker process to reach
// its Compute phase triggers it; the others find the step already
// prepared. Because each fork writes only private state and the merge
// order is fixed, message order, combining, aggregator floating-point
// reduction order, and every counter are identical for any pool size —
// including the serial pool, which reproduces the old engine exactly.
func (js *jobState) prepareSuperstep(program Program, step int) {
	if js.preparedStep == step {
		return
	}
	js.preparedStep = step
	js.sendEpoch++
	js.prog, js.prepStep = program, step
	js.hostPool.ForkJoin(len(js.outboxes), js.shardFn)
	js.prog = nil
	for from, out := range js.outboxes {
		if out.sendErr != nil && js.sendErr == nil {
			js.sendErr = out.sendErr
		}
		for i, name := range out.aggNames {
			js.aggNext[name] += out.aggVals[i]
		}
		js.vertexCount[from] = out.vertices
		js.sendCount[from] = out.sent
		js.recvCount[from] = out.received
		copy(js.wireCount[from], out.wire)
		wire := int64(len(out.dsts))
		js.deliveredCnt += wire
		js.totalWireMessages += wire
	}
	js.arenaNext.deliver(js.outboxes)
}

// stateSnapshot is a checkpoint of the BSP state taken before a superstep
// executes, sufficient to replay the computation from that superstep.
type stateSnapshot struct {
	values    []float64
	halted    []bool
	inbox     *msgArena
	aggCur    map[string]float64
	superstep int
}

// snapshot deep-copies the restartable state.
func (js *jobState) snapshot() *stateSnapshot {
	s := &stateSnapshot{
		values:    append([]float64(nil), js.values...),
		halted:    append([]bool(nil), js.halted...),
		inbox:     js.arenaCur.clone(),
		aggCur:    map[string]float64{},
		superstep: js.superstep,
	}
	for k, v := range js.aggCur {
		s.aggCur[k] = v
	}
	return s
}

// restore rolls the BSP state back to a snapshot, discarding everything
// computed since: values, halt flags, pending messages, aggregators, and
// in-flight next-superstep buffers.
func (js *jobState) restore(s *stateSnapshot) {
	copy(js.values, s.values)
	copy(js.halted, s.halted)
	js.arenaCur.copyFrom(s.inbox)
	js.arenaNext.clear()
	js.aggCur = map[string]float64{}
	for k, v := range s.aggCur {
		js.aggCur[k] = v
	}
	for k := range js.aggNext {
		delete(js.aggNext, k)
	}
	for w := range js.vertexCount {
		js.vertexCount[w] = 0
		js.sendCount[w] = 0
		js.recvCount[w] = 0
		for d := range js.wireCount[w] {
			js.wireCount[w][d] = 0
		}
	}
	js.deliveredCnt = 0
	js.superstep = s.superstep
	// The restored superstep must be recomputed even though a prepare ran
	// for it before the crash; sendEpoch is monotonic, so stale combining
	// tags from that earlier run can never match a future epoch.
	js.preparedStep = -1
}

// swapBuffers advances BSP state at the superstep barrier: the next arena
// becomes current, aggregators rotate, per-superstep counters reset. It
// returns the number of messages that will be delivered and the number of
// vertices that remain active.
func (js *jobState) swapBuffers() (delivered int64, active int64) {
	delivered = js.deliveredCnt
	js.arenaCur, js.arenaNext = js.arenaNext, js.arenaCur
	js.aggCur, js.aggNext = js.aggNext, js.aggCur
	for k := range js.aggNext {
		delete(js.aggNext, k)
	}
	for v := range js.halted {
		if !js.halted[v] {
			active++
		}
	}
	for w := range js.vertexCount {
		js.vertexCount[w] = 0
		js.sendCount[w] = 0
		js.recvCount[w] = 0
		for d := range js.wireCount[w] {
			js.wireCount[w][d] = 0
		}
	}
	js.deliveredCnt = 0
	js.superstep++
	return delivered, active
}
