package pregel

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

func TestCheckpointingEmitsOpsAndCostsTime(t *testing.T) {
	ds := testDataset(t)

	envPlain := newTestEnv(t, ds, 1)
	plain := runJob(t, envPlain, testJobConfig(4), bfs{source: 0}, ds)

	envCk := newTestEnv(t, ds, 1)
	cfg := testJobConfig(4)
	cfg.CheckpointInterval = 2
	ck := runJob(t, envCk, cfg, bfs{source: 0}, ds)

	// Same algorithm output.
	for v := range plain.Values {
		if plain.Values[v] != ck.Values[v] {
			t.Fatalf("vertex %d differs with checkpointing", v)
		}
	}
	// Checkpointing costs time.
	if ck.Runtime <= plain.Runtime {
		t.Fatalf("checkpointed runtime %.2fs not above plain %.2fs", ck.Runtime, plain.Runtime)
	}
	// One Checkpoint op per eligible superstep, each with one
	// LocalCheckpoint per worker.
	counts := map[string]int{}
	for _, r := range envCk.log.Records() {
		if r.Event == trace.EventStart {
			counts[r.Mission]++
		}
	}
	wantCk := (ck.Supersteps + 1) / 2 // supersteps 0,2,4,...
	if counts["Checkpoint"] != wantCk {
		t.Fatalf("Checkpoint ops = %d, want %d (supersteps %d)", counts["Checkpoint"], wantCk, ck.Supersteps)
	}
	if counts["LocalCheckpoint"] != wantCk*4 {
		t.Fatalf("LocalCheckpoint ops = %d, want %d", counts["LocalCheckpoint"], wantCk*4)
	}
	// Checkpoint files landed in HDFS.
	ckFiles := 0
	for _, f := range envCk.deps.HDFS.Files() {
		if strings.HasPrefix(f, "/checkpoints/") {
			ckFiles++
		}
	}
	if ckFiles != wantCk*4 {
		t.Fatalf("checkpoint files = %d, want %d", ckFiles, wantCk*4)
	}
}

func TestFailureRecoveryProducesCorrectResult(t *testing.T) {
	ds := testDataset(t)

	envPlain := newTestEnv(t, ds, 1)
	plain := runJob(t, envPlain, testJobConfig(4), bfs{source: 0}, ds)

	envFail := newTestEnv(t, ds, 1)
	cfg := testJobConfig(4)
	cfg.CheckpointInterval = 2
	cfg.FailWorker = 1
	cfg.FailAtSuperstep = 3
	failed := runJob(t, envFail, cfg, bfs{source: 0}, ds)

	// Recovery must not change the algorithm's output.
	for v := range plain.Values {
		if plain.Values[v] != failed.Values[v] {
			t.Fatalf("vertex %d differs after failure recovery", v)
		}
	}
	// The failed run replays supersteps 2..3 and pays recovery latency.
	if failed.ReplayedSupersteps != 1 {
		t.Fatalf("replayed = %d, want 1 (checkpoint at 2, failure at 3)", failed.ReplayedSupersteps)
	}
	if failed.Runtime <= plain.Runtime {
		t.Fatalf("failed-run runtime %.2fs not above plain %.2fs", failed.Runtime, plain.Runtime)
	}
	// The recovery operations appear in the trace, once each.
	counts := map[string]int{}
	for _, r := range envFail.log.Records() {
		if r.Event == trace.EventStart {
			counts[r.Mission]++
		}
	}
	for _, m := range []string{"RecoverWorker", "DetectFailure", "RestartWorker", "RestoreCheckpoint"} {
		if counts[m] != 1 {
			t.Fatalf("%s ops = %d, want 1", m, counts[m])
		}
	}
	if counts["LocalRestore"] != 4 {
		t.Fatalf("LocalRestore ops = %d, want 4", counts["LocalRestore"])
	}
	// No leaked processes despite the crash-and-restart.
	if envFail.eng.LiveProcs() != 0 {
		t.Fatalf("leaked %d processes", envFail.eng.LiveProcs())
	}
}

func TestRecoveredJobStillConformsStructurally(t *testing.T) {
	ds := testDataset(t)
	env := newTestEnv(t, ds, 1)
	cfg := testJobConfig(4)
	cfg.CheckpointInterval = 2
	cfg.FailWorker = 0
	cfg.FailAtSuperstep = 2
	runJob(t, env, cfg, bfs{source: 0}, ds)

	// Structural sanity of the trace (starts/ends matched, children
	// within parents) must survive the recovery path.
	started := map[string]trace.Record{}
	ended := map[string]float64{}
	for _, r := range env.log.Records() {
		switch r.Event {
		case trace.EventStart:
			started[r.Op] = r
		case trace.EventEnd:
			ended[r.Op] = r.Time
		}
	}
	if len(started) != len(ended) {
		t.Fatalf("%d starts vs %d ends", len(started), len(ended))
	}
	for id, s := range started {
		if s.Parent == "" {
			continue
		}
		ps, ok := started[s.Parent]
		if !ok {
			t.Fatalf("op %s has unknown parent", id)
		}
		if s.Time < ps.Time-1e-9 || ended[id] > ended[s.Parent]+1e-9 {
			t.Fatalf("op %s (%s) outside parent %s", id, s.Mission, ps.Mission)
		}
	}
}

func TestFailureInjectionValidation(t *testing.T) {
	ds := testDataset(t)
	cases := []Config{
		func() Config {
			c := testJobConfig(4)
			c.FailAtSuperstep = 2 // no checkpointing
			return c
		}(),
		func() Config {
			c := testJobConfig(4)
			c.CheckpointInterval = 2
			c.FailAtSuperstep = 2
			c.FailWorker = 9 // out of range
			return c
		}(),
		func() Config {
			c := testJobConfig(4)
			c.CheckpointInterval = -1
			return c
		}(),
	}
	env2 := newTestEnv(t, ds, 1)
	env2.eng.Spawn("client", func(p *sim.Proc) {
		for i, cfg := range cases {
			if _, err := RunJob(p, env2.deps, cfg, bfs{}, ds, env2.em); err == nil {
				t.Errorf("case %d: expected error", i)
			}
		}
	})
	if err := env2.eng.Run(); err != nil {
		t.Fatal(err)
	}
}
