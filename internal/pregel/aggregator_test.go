package pregel

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
)

// counter is a program that uses the aggregator API directly: in each
// superstep every vertex contributes 1 to the "active" aggregator, and in
// the next superstep reads the previous total. It runs a fixed number of
// rounds and stores the last observed aggregate as its value.
type counter struct {
	rounds int
}

func (c counter) Compute(ctx *Context, msgs []float64) {
	if ctx.Superstep() < c.rounds {
		ctx.Aggregate("active", 1)
		ctx.SetValue(ctx.AggregatedValue("active"))
		return // stay active
	}
	ctx.SetValue(ctx.AggregatedValue("active"))
	ctx.VoteToHalt()
}

func TestAggregatorsAcrossSupersteps(t *testing.T) {
	ds := testDataset(t)
	env := newTestEnv(t, ds, 1)
	res := runJob(t, env, testJobConfig(4), counter{rounds: 3}, ds)

	n := float64(ds.Graph.NumVertices())
	// At superstep 0, AggregatedValue is 0 (nothing aggregated yet).
	// At supersteps 1..3, it is n (every vertex contributed last round).
	// The final value read at superstep 3 must be n.
	for v, val := range res.Values {
		if val != n {
			t.Fatalf("vertex %d read aggregate %v, want %v", v, val, n)
		}
	}
	if res.Supersteps != 4 {
		t.Fatalf("supersteps = %d, want 4", res.Supersteps)
	}
}

// echoDegree exercises OutDegree/OutNeighbors/NumVertices/NumEdges from
// the context.
type echoDegree struct{}

func (echoDegree) Compute(ctx *Context, msgs []float64) {
	if ctx.Superstep() == 0 {
		if int64(len(ctx.OutNeighbors())) != ctx.OutDegree() {
			panic("neighbor count disagrees with degree")
		}
		if ctx.NumVertices() <= 0 || ctx.NumEdges() <= 0 {
			panic("graph size accessors broken")
		}
		ctx.SetValue(float64(ctx.OutDegree()))
	}
	ctx.VoteToHalt()
}

func TestContextTopologyAccessors(t *testing.T) {
	ds := testDataset(t)
	env := newTestEnv(t, ds, 1)
	res := runJob(t, env, testJobConfig(2), echoDegree{}, ds)
	for v := int64(0); v < ds.Graph.NumVertices(); v++ {
		if res.Values[v] != float64(ds.Graph.OutDegree(graphVertex(v))) {
			t.Fatalf("vertex %d degree = %v, want %d", v, res.Values[v], ds.Graph.OutDegree(graphVertex(v)))
		}
	}
}

// badSend exercises the engine's send validation.
type badSend struct{}

func (badSend) Compute(ctx *Context, msgs []float64) {
	ctx.SendTo(-1, 0)
}

func TestSendToUnknownVertexFails(t *testing.T) {
	ds := testDataset(t)
	env := newTestEnv(t, ds, 1)
	var jobErr error
	env.eng.Spawn("client", func(p *sim.Proc) {
		_, jobErr = RunJob(p, env.deps, testJobConfig(2), badSend{}, ds, env.em)
	})
	err := env.eng.Run()
	// The panic inside the vertex program surfaces as a simulation fault.
	if err == nil && jobErr == nil {
		t.Fatal("expected a failure for message to unknown vertex")
	}
}

func graphVertex(v int64) graph.VertexID { return graph.VertexID(v) }
