// Package pregel implements a Giraph-like vertex-centric BSP
// graph-processing platform on the simulated cluster: YARN-deployed
// master and workers, HDFS input with locality-aware splits, ZooKeeper
// barrier synchronization, and iterative supersteps with sender-side
// message combining. Algorithms execute for real — vertex values, message
// traffic, and the active-vertex frontier all come from running the actual
// program on the actual graph — while durations are charged to the
// simulated clock through a calibrated cost model.
//
// Every job emits Granula platform-log records (package trace) following
// the 4-level Giraph performance model of the paper's Figure 4:
//
//	GiraphJob
//	├── Startup:      JobStartup, LaunchWorkers (per-worker LocalStartup)
//	├── LoadGraph:    per-worker LocalLoad → LoadHdfsData
//	├── ProcessGraph: Superstep-k → per-worker LocalSuperstep →
//	│                 PreStep, Compute, Message, PostStep (+ SyncZookeeper)
//	├── OffloadGraph: per-worker LocalOffload → OffloadHdfsData
//	└── Cleanup:      JobCleanup → AbortWorkers, ClientCleanup,
//	                  ServerCleanup, ZkCleanup
package pregel

import (
	"repro/internal/graph"
)

// Program is a vertex program in the Pregel model. Compute is called in
// every superstep for every vertex that is active or has incoming
// messages.
type Program interface {
	Compute(ctx *Context, msgs []float64)
}

// Combiner merges two messages destined for the same vertex. Giraph
// applies combiners on the sending worker, reducing network traffic.
type Combiner interface {
	Combine(a, b float64) float64
}

// MinCombiner keeps the minimum message — the natural combiner for BFS,
// SSSP, and WCC.
type MinCombiner struct{}

// Combine implements Combiner.
func (MinCombiner) Combine(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// SumCombiner adds messages — the natural combiner for PageRank.
type SumCombiner struct{}

// Combine implements Combiner.
func (SumCombiner) Combine(a, b float64) float64 { return a + b }

// CostModel maps counted work to simulated seconds and bytes. The values
// are per unit of *scaled* work: measured counts are multiplied by
// Config.WorkScale first, so one set of constants serves graphs of any
// size.
type CostModel struct {
	// ParseCPUPerByte is worker CPU per input byte during LoadGraph
	// (line splitting, integer parsing, object creation — the
	// CPU-intensive loading the paper observes in Figure 6).
	ParseCPUPerByte float64
	// BuildCPUPerEdge is worker CPU per local edge to build in-memory
	// vertex/edge stores.
	BuildCPUPerEdge float64
	// ShuffleBytesPerEdge is the wire size of one edge during load-time
	// vertex distribution.
	ShuffleBytesPerEdge float64
	// ComputeCPUPerVertex is CPU per vertex Compute invocation.
	ComputeCPUPerVertex float64
	// ComputeCPUPerMessage is CPU per message sent or received.
	ComputeCPUPerMessage float64
	// MessageBytes is the wire size of one (combined) message.
	MessageBytes float64
	// OutputBytesPerVertex is the HDFS output size per vertex at offload.
	OutputBytesPerVertex float64
	// CheckpointBytesPerVertex is the HDFS checkpoint size per owned
	// vertex (value + halted flag + pending messages).
	CheckpointBytesPerVertex float64
	// RecoveryDetectSeconds is the master's failure-detection latency
	// (missed heartbeats before declaring a worker dead).
	RecoveryDetectSeconds float64
	// WorkerShutdownSeconds is the per-worker teardown latency.
	WorkerShutdownSeconds float64
	// ClientCleanupSeconds and ServerCleanupSeconds are fixed cleanup
	// latencies (client-side temp/state removal, Yarn application-master
	// teardown).
	ClientCleanupSeconds float64
	ServerCleanupSeconds float64
	// ZkCleanupSeconds is the coordination-state removal latency.
	ZkCleanupSeconds float64
}

// DefaultCostModel returns constants calibrated for a JVM platform; see
// internal/platforms for the paper-scale calibration.
func DefaultCostModel() CostModel {
	return CostModel{
		ParseCPUPerByte:          60e-9,
		BuildCPUPerEdge:          150e-9,
		ShuffleBytesPerEdge:      16,
		ComputeCPUPerVertex:      250e-9,
		ComputeCPUPerMessage:     120e-9,
		MessageBytes:             16,
		OutputBytesPerVertex:     16,
		CheckpointBytesPerVertex: 24,
		RecoveryDetectSeconds:    2.0,
		WorkerShutdownSeconds:    0.3,
		ClientCleanupSeconds:     1.0,
		ServerCleanupSeconds:     1.5,
		ZkCleanupSeconds:         0.5,
	}
}

// Config parameterizes a job.
type Config struct {
	// Workers is the number of worker containers (one per node works
	// best, as in the paper's deployment).
	Workers int
	// ComputeThreads is each worker's compute parallelism.
	ComputeThreads int
	// ParseThreads is each worker's input-parsing parallelism. Giraph
	// parses splits with many threads, which is why LoadGraph saturates
	// the CPU in Figure 6.
	ParseThreads int
	// Partitioner assigns vertices to workers; nil selects hash
	// partitioning over Workers partitions.
	Partitioner graph.Partitioner
	// Combiner optionally combines messages at the sender.
	Combiner Combiner
	// MaxSupersteps caps the superstep loop as a safety net.
	MaxSupersteps int
	// WorkScale multiplies all work-derived costs, mapping the
	// laptop-sized input graph to the paper-scale dataset (dg1000). 1
	// simulates the input graph at face value.
	WorkScale float64
	// HostParallelism bounds how many host (OS-level) goroutines execute
	// the semantic per-worker compute of one superstep concurrently. It
	// changes only wall-clock speed, never results: archives are
	// byte-identical for every value. 0 selects runtime.NumCPU(); 1 is
	// the serial engine.
	HostParallelism int
	// Costs is the platform cost model.
	Costs CostModel

	// CheckpointInterval makes workers write a recovery checkpoint to
	// HDFS before every k-th superstep (Giraph's fault-tolerance
	// mechanism); 0 disables checkpointing.
	CheckpointInterval int
	// FailWorker and FailAtSuperstep inject a worker crash at the start
	// of the given superstep, for failure-diagnosis studies: the master
	// detects the failure, restarts the worker's container, restores the
	// last checkpoint, and replays the lost supersteps. Requires
	// CheckpointInterval > 0. FailAtSuperstep 0 (the default) disables
	// injection.
	FailWorker      int
	FailAtSuperstep int
}

// DefaultConfig returns an 8-worker configuration matching the paper's
// deployment (one worker per node).
func DefaultConfig() Config {
	return Config{
		Workers:        8,
		ComputeThreads: 8,
		ParseThreads:   24,
		MaxSupersteps:  200,
		WorkScale:      1,
		Costs:          DefaultCostModel(),
	}
}

// Result carries a completed job's algorithm output and summary counters.
type Result struct {
	// Values is the final vertex value array.
	Values []float64
	// Supersteps is the number of supersteps executed.
	Supersteps int
	// MessagesSent counts combined messages put on the wire.
	MessagesSent int64
	// EdgesLoaded counts arcs loaded across workers.
	EdgesLoaded int64
	// ReplayedSupersteps counts supersteps re-executed after failure
	// recovery (0 on a clean run).
	ReplayedSupersteps int
	// Runtime is the job's makespan in simulated seconds.
	Runtime float64
}
