package pregel

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/sim"
)

// chatter is an always-active vertex program: every superstep each vertex
// folds its inbox and re-broadcasts, so every superstep exercises the full
// compute → combine → deliver path with no convergence.
type chatter struct{}

func (chatter) Compute(ctx *Context, msgs []float64) {
	sum := 0.0
	for _, m := range msgs {
		sum += m
	}
	ctx.SetValue(sum)
	ctx.SendToAllNeighbors(1)
}

func kernelGraph(t testing.TB) *graph.Graph {
	t.Helper()
	ds, err := datagen.Generate(datagen.Config{
		Kind: datagen.SocialNetwork, Vertices: 2000, Edges: 10000, Seed: 11, Directed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds.Graph
}

// maxSuperstepAllocs is the steady-state allocation budget for one full
// superstep (prepareSuperstep + swapBuffers) at host parallelism 1. The
// only remaining allocations are sim.HostPool.ForkJoin's bookkeeping (its
// per-call panic-capture slice and wrapper closure); the message arena,
// outboxes, owned lists, and worker Contexts are all preallocated and
// reused. At parallelism > 1 the fork additionally spins up its worker
// goroutines, hence the larger parallel budget.
const (
	maxSuperstepAllocs         = 4
	maxSuperstepAllocsParallel = 16
)

func TestSuperstepKernelAllocs(t *testing.T) {
	g := kernelGraph(t)
	for _, tc := range []struct {
		name     string
		par      int
		combiner Combiner
		budget   float64
	}{
		{"serial-combined", 1, MinCombiner{}, maxSuperstepAllocs},
		{"serial-uncombined", 1, nil, maxSuperstepAllocs},
		{"parallel-combined", 4, MinCombiner{}, maxSuperstepAllocsParallel},
	} {
		t.Run(tc.name, func(t *testing.T) {
			js := newJobState(g, graph.NewHashPartitioner(4), 4, tc.combiner, sim.NewHostPool(tc.par))
			step := 0
			drive := func() {
				js.prepareSuperstep(chatter{}, step)
				js.swapBuffers()
				step++
			}
			// Let buffers grow to steady-state capacity first.
			for i := 0; i < 4; i++ {
				drive()
			}
			allocs := testing.AllocsPerRun(20, drive)
			t.Logf("allocs/superstep = %v", allocs)
			if allocs > tc.budget {
				t.Errorf("steady-state superstep allocates %v times, budget %v", allocs, tc.budget)
			}
		})
	}
}

// BenchmarkSuperstepKernel measures one steady-state superstep of the
// message kernel alone (no simulation, no tracing): compute + combine +
// arena delivery + buffer swap. CI archives ns/superstep and
// allocs/superstep from this benchmark in BENCH_kernels.json.
func BenchmarkSuperstepKernel(b *testing.B) {
	g := kernelGraph(b)
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallelism-%d", par), func(b *testing.B) {
			js := newJobState(g, graph.NewHashPartitioner(4), 4, MinCombiner{}, sim.NewHostPool(par))
			step := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				js.prepareSuperstep(chatter{}, step)
				js.swapBuffers()
				step++
			}
		})
	}
}

// TestArenaMatchesAppendOrder pins the arena delivery order to the
// historical per-vertex append order: worker-index order, then each
// worker's send order.
func TestArenaMatchesAppendOrder(t *testing.T) {
	g := kernelGraph(t)
	js := newJobState(g, graph.NewHashPartitioner(4), 4, nil, sim.NewHostPool(1))
	js.prepareSuperstep(chatter{}, 0)

	// Reference delivery: plain appends over outboxes in worker order.
	want := make([][]float64, g.NumVertices())
	for _, out := range js.outboxes {
		for i, dst := range out.dsts {
			want[dst] = append(want[dst], out.vals[i])
		}
	}
	js.swapBuffers()
	for v := int64(0); v < g.NumVertices(); v++ {
		got := js.arenaCur.msgs(graph.VertexID(v))
		if len(got) != len(want[v]) {
			t.Fatalf("vertex %d: %d messages, want %d", v, len(got), len(want[v]))
		}
		for i := range got {
			if got[i] != want[v][i] {
				t.Fatalf("vertex %d message %d: %v, want %v", v, i, got[i], want[v][i])
			}
		}
	}
}

// misbehaving sends to a vertex that does not exist on superstep 1.
type misbehaving struct{ rogue graph.VertexID }

func (m misbehaving) Compute(ctx *Context, msgs []float64) {
	if ctx.Superstep() == 0 {
		ctx.SendToAllNeighbors(1)
		return
	}
	if ctx.ID() == m.rogue {
		ctx.SendTo(graph.VertexID(ctx.NumVertices())+7, 1)
	}
	ctx.VoteToHalt()
}

// TestMisbehavingProgramFailsJobNotEngine is the regression test for the
// out-of-range SendTo: the job must return a VertexProgramError instead of
// panicking the engine, and the simulation must wind down cleanly.
func TestMisbehavingProgramFailsJobNotEngine(t *testing.T) {
	ds := testDataset(t)
	for _, par := range []int{1, 4} {
		env := newTestEnv(t, ds, 1)
		cfg := testJobConfig(4)
		cfg.HostParallelism = par
		var jobErr error
		env.eng.Spawn("client", func(p *sim.Proc) {
			_, jobErr = RunJob(p, env.deps, cfg, misbehaving{rogue: 3}, ds, env.em)
		})
		if err := env.eng.Run(); err != nil {
			t.Fatalf("par=%d: engine failed: %v", par, err)
		}
		if env.eng.LiveProcs() != 0 {
			t.Fatalf("par=%d: leaked %d processes after failed job", par, env.eng.LiveProcs())
		}
		var vpe *VertexProgramError
		if jobErr == nil {
			t.Fatalf("par=%d: job succeeded despite out-of-range SendTo", par)
		}
		if !errors.As(jobErr, &vpe) {
			t.Fatalf("par=%d: error %v is not a VertexProgramError", par, jobErr)
		}
		if vpe.Vertex != 3 || vpe.Superstep != 1 {
			t.Fatalf("par=%d: error %+v, want vertex 3 at superstep 1", par, vpe)
		}
	}
}
