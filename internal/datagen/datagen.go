// Package datagen generates synthetic graphs with the structural
// properties that drive the behaviours studied in the Granula paper. It is
// the stand-in for the LDBC Datagen datasets (the paper's dg1000, a social
// network with 1.03 billion vertices and edges): since the real generator
// and dataset are unavailable here, we synthesize graphs with a power-law
// degree distribution (Chung–Lu with Zipf weights), plus R-MAT and uniform
// generators for comparison and testing. All generators are deterministic
// for a given seed.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Kind selects a generator family.
type Kind int

const (
	// SocialNetwork is a Chung–Lu graph with Zipf-distributed expected
	// degrees: skewed like real social networks (and like LDBC Datagen
	// output), producing the workload imbalance visible in Figure 8.
	SocialNetwork Kind = iota
	// RMAT is the recursive-matrix generator (Graph500-style).
	RMAT
	// Uniform is an Erdős–Rényi-style G(n,m) graph.
	Uniform
)

func (k Kind) String() string {
	switch k {
	case SocialNetwork:
		return "social-network"
	case RMAT:
		return "rmat"
	case Uniform:
		return "uniform"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config parameterizes graph generation.
type Config struct {
	Kind      Kind
	Vertices  int64
	Edges     int64
	Seed      int64
	Directed  bool
	ZipfS     float64 // Zipf exponent for SocialNetwork; default 1.3
	RMATProbs [4]float64
	// Locality, for SocialNetwork, is the fraction of edges drawn inside
	// a local community window instead of globally by degree weight.
	// Social networks mix both: hubs attract global edges, but most
	// friendships are local. Locality > 0 raises the graph's effective
	// diameter, giving BFS the multi-hop frontier curve real Datagen
	// graphs show. 0 (default) is pure Chung–Lu.
	Locality float64
	// LocalWindow is the community window radius for local edges;
	// 0 selects Vertices/100.
	LocalWindow int64
	// Name labels the dataset in logs and archives (e.g. "dg1000").
	Name string
}

// Dataset is a generated graph plus the metadata the platforms need to
// "load" it: its name and its on-disk encoding size.
type Dataset struct {
	Name     string
	Graph    *graph.Graph
	Edges    []graph.Edge
	Directed bool
	// EdgeBytes is the size of one encoded edge in the simulated on-disk
	// edge-list format (two decimal vertex IDs plus separators).
	EdgeBytes int64
}

// SizeBytes returns the simulated on-disk size of the edge-list file.
func (d *Dataset) SizeBytes() int64 {
	return int64(len(d.Edges)) * d.EdgeBytes
}

// DefaultEdgeBytes is the simulated encoding size per edge: two ~9-digit
// decimal IDs, a space and a newline.
const DefaultEdgeBytes = 20

// Generate produces a dataset from cfg.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.Vertices <= 0 {
		return nil, fmt.Errorf("datagen: vertices must be positive, got %d", cfg.Vertices)
	}
	if cfg.Edges < 0 {
		return nil, fmt.Errorf("datagen: negative edge count %d", cfg.Edges)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var edges []graph.Edge
	switch cfg.Kind {
	case SocialNetwork:
		s := cfg.ZipfS
		if s == 0 {
			s = 1.3
		}
		if s <= 1 {
			return nil, fmt.Errorf("datagen: Zipf exponent must be > 1, got %g", s)
		}
		if cfg.Locality < 0 || cfg.Locality > 1 {
			return nil, fmt.Errorf("datagen: locality must be in [0,1], got %g", cfg.Locality)
		}
		window := cfg.LocalWindow
		if window == 0 {
			window = cfg.Vertices / 100
		}
		if window < 1 {
			window = 1
		}
		edges = socialNetwork(rng, cfg.Vertices, cfg.Edges, s, cfg.Locality, window)
	case RMAT:
		probs := cfg.RMATProbs
		if probs == ([4]float64{}) {
			probs = [4]float64{0.57, 0.19, 0.19, 0.05}
		}
		sum := probs[0] + probs[1] + probs[2] + probs[3]
		if math.Abs(sum-1) > 1e-9 {
			return nil, fmt.Errorf("datagen: RMAT probabilities sum to %g, want 1", sum)
		}
		edges = rmat(rng, cfg.Vertices, cfg.Edges, probs)
	case Uniform:
		edges = uniform(rng, cfg.Vertices, cfg.Edges)
	default:
		return nil, fmt.Errorf("datagen: unknown kind %v", cfg.Kind)
	}
	g, err := graph.FromEdges(cfg.Vertices, edges, cfg.Directed)
	if err != nil {
		return nil, err
	}
	name := cfg.Name
	if name == "" {
		name = fmt.Sprintf("%s-n%d-m%d", cfg.Kind, cfg.Vertices, cfg.Edges)
	}
	return &Dataset{
		Name:      name,
		Graph:     g,
		Edges:     edges,
		Directed:  cfg.Directed,
		EdgeBytes: DefaultEdgeBytes,
	}, nil
}

// socialNetwork samples m edges: a (1-locality) fraction Chung–Lu style
// with endpoint probabilities proportional to Zipf(s) weights (vertex v
// has weight (v+1)^-s, so low IDs are hubs), and a locality fraction
// connecting uniformly-chosen vertices to neighbors within the community
// window around them.
func socialNetwork(rng *rand.Rand, n, m int64, s, locality float64, window int64) []graph.Edge {
	weights := make([]float64, n)
	for v := int64(0); v < n; v++ {
		weights[v] = math.Pow(float64(v+1), -s)
	}
	sampler := NewAlias(weights, rng)
	edges := make([]graph.Edge, 0, m)
	for int64(len(edges)) < m {
		var u, v graph.VertexID
		if rng.Float64() < locality {
			u = graph.VertexID(rng.Int63n(n))
			// Offset in [-window, window], zero excluded below via the
			// self-loop check; wraps around the community ring.
			off := rng.Int63n(2*window+1) - window
			v = graph.VertexID(((int64(u)+off)%n + n) % n)
		} else {
			u = graph.VertexID(sampler.Sample())
			v = graph.VertexID(sampler.Sample())
		}
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{Src: u, Dst: v})
	}
	return edges
}

// rmat generates m edges by recursive quadrant descent over the adjacency
// matrix. The vertex count is rounded up to a power of two internally;
// out-of-range endpoints are re-sampled.
func rmat(rng *rand.Rand, n, m int64, probs [4]float64) []graph.Edge {
	levels := 0
	for int64(1)<<levels < n {
		levels++
	}
	edges := make([]graph.Edge, 0, m)
	for int64(len(edges)) < m {
		var u, v int64
		for l := 0; l < levels; l++ {
			r := rng.Float64()
			switch {
			case r < probs[0]:
				// top-left: no bits set
			case r < probs[0]+probs[1]:
				v |= 1 << l
			case r < probs[0]+probs[1]+probs[2]:
				u |= 1 << l
			default:
				u |= 1 << l
				v |= 1 << l
			}
		}
		if u >= n || v >= n || u == v {
			continue
		}
		edges = append(edges, graph.Edge{Src: graph.VertexID(u), Dst: graph.VertexID(v)})
	}
	return edges
}

// uniform samples m edges uniformly, rejecting self-loops.
func uniform(rng *rand.Rand, n, m int64) []graph.Edge {
	edges := make([]graph.Edge, 0, m)
	for int64(len(edges)) < m {
		u := graph.VertexID(rng.Int63n(n))
		v := graph.VertexID(rng.Int63n(n))
		if u == v && n > 1 {
			continue
		}
		edges = append(edges, graph.Edge{Src: u, Dst: v})
	}
	return edges
}

// DG1000Shaped returns the configuration we use as the laptop-scale
// stand-in for the paper's dg1000 dataset: a directed social-network graph
// whose degree skew mirrors an LDBC Datagen friendship network. The
// platform cost models scale work on this graph up to dg1000-scale
// simulated seconds (see internal/platforms).
func DG1000Shaped(seed int64) Config {
	return Config{
		Kind:        SocialNetwork,
		Vertices:    200_000,
		Edges:       1_000_000,
		Seed:        seed,
		Directed:    true,
		ZipfS:       1.3,
		Locality:    0.85,
		LocalWindow: 600,
		Name:        "dg1000",
	}
}

// PeripheralSource returns a deterministic low-degree vertex suitable as a
// BFS/SSSP source: the first vertex at or after the 3/4 point of the ID
// space with out-degree in [1, 4]. High-ID vertices have the smallest Zipf
// weights, so this picks an "ordinary user" far from the hubs — matching
// how Graphalytics sources produce multi-hop frontier curves. It falls
// back to vertex 0 if no such vertex exists.
func PeripheralSource(g *graph.Graph) graph.VertexID {
	n := g.NumVertices()
	for v := n * 3 / 4; v < n; v++ {
		d := g.OutDegree(graph.VertexID(v))
		if d >= 1 && d <= 4 {
			return graph.VertexID(v)
		}
	}
	return 0
}
