package datagen

import "math/rand"

// Alias is Walker/Vose alias-method sampler: O(n) construction, O(1)
// sampling from an arbitrary discrete distribution. It backs the Chung–Lu
// generator, where every edge endpoint is drawn from the Zipf weight
// vector.
type Alias struct {
	prob  []float64
	alias []int
	rng   *rand.Rand
}

// NewAlias builds a sampler over the given non-negative weights, which
// need not be normalized. At least one weight must be positive.
func NewAlias(weights []float64, rng *rand.Rand) *Alias {
	n := len(weights)
	if n == 0 {
		panic("datagen: empty weight vector")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("datagen: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("datagen: all weights zero")
	}
	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int, n),
		rng:   rng,
	}
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
	}
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, p := range scaled {
		if p < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a
}

// Sample draws one index from the distribution.
func (a *Alias) Sample() int {
	i := a.rng.Intn(len(a.prob))
	if a.rng.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}
