package datagen

import (
	"math/rand"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Kind: SocialNetwork, Vertices: 500, Edges: 2000, Seed: 42, Directed: true}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Edges) != len(b.Edges) {
		t.Fatalf("edge counts differ: %d vs %d", len(a.Edges), len(b.Edges))
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a.Edges[i], b.Edges[i])
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	base := Config{Kind: SocialNetwork, Vertices: 500, Edges: 2000, Directed: true}
	c1, c2 := base, base
	c1.Seed, c2.Seed = 1, 2
	a, _ := Generate(c1)
	b, _ := Generate(c2)
	same := true
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestSocialNetworkIsSkewed(t *testing.T) {
	d, err := Generate(Config{Kind: SocialNetwork, Vertices: 5000, Edges: 50000, Seed: 7, Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	st := d.Graph.OutDegreeStats()
	if st.Skew < 10 {
		t.Fatalf("social network skew = %.1f, want >= 10 (power-law hubs)", st.Skew)
	}
	uni, err := Generate(Config{Kind: Uniform, Vertices: 5000, Edges: 50000, Seed: 7, Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	ust := uni.Graph.OutDegreeStats()
	if st.Skew <= ust.Skew {
		t.Fatalf("social skew %.1f not above uniform skew %.1f", st.Skew, ust.Skew)
	}
}

func TestRMATGenerates(t *testing.T) {
	d, err := Generate(Config{Kind: RMAT, Vertices: 1024, Edges: 8192, Seed: 3, Directed: true})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(d.Edges)) != 8192 {
		t.Fatalf("edges = %d, want 8192", len(d.Edges))
	}
	st := d.Graph.OutDegreeStats()
	if st.Skew < 3 {
		t.Fatalf("RMAT skew = %.1f, want noticeable skew", st.Skew)
	}
}

func TestRMATRejectsBadProbs(t *testing.T) {
	_, err := Generate(Config{
		Kind: RMAT, Vertices: 64, Edges: 100, Seed: 1,
		RMATProbs: [4]float64{0.5, 0.5, 0.5, 0.5},
	})
	if err == nil {
		t.Fatal("expected error for probabilities not summing to 1")
	}
}

func TestUniformEdgesInRange(t *testing.T) {
	d, err := Generate(Config{Kind: Uniform, Vertices: 100, Edges: 1000, Seed: 5, Directed: false})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range d.Edges {
		if e.Src < 0 || e.Src >= 100 || e.Dst < 0 || e.Dst >= 100 {
			t.Fatalf("edge out of range: %v", e)
		}
		if e.Src == e.Dst {
			t.Fatalf("self loop generated: %v", e)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{Kind: Uniform, Vertices: 0, Edges: 10}); err == nil {
		t.Fatal("expected error for zero vertices")
	}
	if _, err := Generate(Config{Kind: Uniform, Vertices: 10, Edges: -1}); err == nil {
		t.Fatal("expected error for negative edges")
	}
	if _, err := Generate(Config{Kind: Kind(99), Vertices: 10, Edges: 1}); err == nil {
		t.Fatal("expected error for unknown kind")
	}
	if _, err := Generate(Config{Kind: SocialNetwork, Vertices: 10, Edges: 1, ZipfS: 0.5}); err == nil {
		t.Fatal("expected error for Zipf exponent <= 1")
	}
}

func TestDatasetSizeBytes(t *testing.T) {
	d, err := Generate(Config{Kind: Uniform, Vertices: 10, Edges: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.SizeBytes() != 100*DefaultEdgeBytes {
		t.Fatalf("SizeBytes = %d, want %d", d.SizeBytes(), 100*DefaultEdgeBytes)
	}
}

func TestDatasetDefaultName(t *testing.T) {
	d, err := Generate(Config{Kind: Uniform, Vertices: 10, Edges: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "uniform-n10-m5" {
		t.Fatalf("Name = %q", d.Name)
	}
	named, err := Generate(Config{Kind: Uniform, Vertices: 10, Edges: 5, Seed: 1, Name: "custom"})
	if err != nil {
		t.Fatal(err)
	}
	if named.Name != "custom" {
		t.Fatalf("Name = %q, want custom", named.Name)
	}
}

func TestDG1000ShapedConfig(t *testing.T) {
	cfg := DG1000Shaped(1)
	if cfg.Name != "dg1000" || !cfg.Directed || cfg.Kind != SocialNetwork {
		t.Fatalf("unexpected dg1000 config: %+v", cfg)
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	weights := []float64{1, 2, 4, 8}
	a := NewAlias(weights, rng)
	counts := make([]int, 4)
	const trials = 200000
	for i := 0; i < trials; i++ {
		counts[a.Sample()]++
	}
	total := 15.0
	for i, w := range weights {
		want := w / total
		got := float64(counts[i]) / trials
		if got < want*0.9 || got > want*1.1 {
			t.Fatalf("index %d: frequency %.4f, want ~%.4f", i, got, want)
		}
	}
}

func TestAliasPanicsOnBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, weights := range [][]float64{nil, {0, 0}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for weights %v", weights)
				}
			}()
			NewAlias(weights, rng)
		}()
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{SocialNetwork: "social-network", RMAT: "rmat", Uniform: "uniform"}
	for k, want := range cases {
		if k.String() != want {
			t.Fatalf("%v.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if Kind(42).String() == "" {
		t.Fatal("unknown kind should stringify")
	}
}
