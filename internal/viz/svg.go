package viz

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/archive"
)

// This file renders the figure families as standalone SVG documents.
// Everything is plain stdlib string building; colors follow a fixed
// palette keyed by mission.

var missionColors = map[string]string{
	"Startup":      "#8c8c8c",
	"Cleanup":      "#bdbdbd",
	"LoadGraph":    "#e6873c",
	"OffloadGraph": "#e8b23c",
	"ProcessGraph": "#4d8edc",
	"PreStep":      "#c9c9c9",
	"Compute":      "#68b7dc",
	"Message":      "#4d8edc",
	"PostStep":     "#9a9a9a",
	"Gather":       "#68b7dc",
	"Apply":        "#4d8edc",
	"Scatter":      "#9a9a9a",
}

func colorFor(mission string) string {
	if c, ok := missionColors[mission]; ok {
		return c
	}
	return "#cccccc"
}

func svgHeader(sb *strings.Builder, w, h int, title string) {
	fmt.Fprintf(sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, w, h, w, h)
	sb.WriteString("\n")
	fmt.Fprintf(sb, `<rect width="%d" height="%d" fill="white"/>`, w, h)
	sb.WriteString("\n")
	fmt.Fprintf(sb, `<text x="10" y="18" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`, escape(title))
	sb.WriteString("\n")
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// SVGBreakdown renders the domain-level decomposition as a horizontal
// stacked bar (Figure 5's form).
func SVGBreakdown(job *archive.Job) string {
	const w, h = 720, 120
	var sb strings.Builder
	svgHeader(&sb, w, h, fmt.Sprintf("Job decomposition — %s (%s)", job.ID, job.Platform))
	if job.Root == nil || job.Root.Duration() <= 0 {
		sb.WriteString("</svg>\n")
		return sb.String()
	}
	total := job.Root.Duration()
	x := 20.0
	barW := float64(w - 40)
	y, barH := 40, 30
	for _, child := range job.Root.Children {
		frac := child.Duration() / total
		width := frac * barW
		fmt.Fprintf(&sb, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s"><title>%s: %.2fs (%.1f%%)</title></rect>`,
			x, y, width, barH, colorFor(child.Mission), escape(child.Mission), child.Duration(), 100*frac)
		sb.WriteString("\n")
		if frac > 0.06 {
			fmt.Fprintf(&sb, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="10" fill="black">%s</text>`,
				x+2, y+barH+14, escape(child.Mission))
			sb.WriteString("\n")
		}
		x += width
	}
	fmt.Fprintf(&sb, `<text x="20" y="%d" font-family="sans-serif" font-size="11">total %.2fs</text>`, h-10, total)
	sb.WriteString("\n</svg>\n")
	return sb.String()
}

// SVGBreakdownComparison renders several jobs' domain-level decompositions
// as aligned percentage bars — the composite form of the paper's Figure 5,
// which shows Giraph and PowerGraph side by side.
func SVGBreakdownComparison(jobs []*archive.Job) string {
	const w = 720
	const rowH, top = 64, 30
	h := top + rowH*len(jobs) + 20
	var sb strings.Builder
	svgHeader(&sb, w, h, "Job decomposition comparison (percent of each job's makespan)")
	for ji, job := range jobs {
		y := top + ji*rowH
		if job.Root == nil || job.Root.Duration() <= 0 {
			continue
		}
		total := job.Root.Duration()
		fmt.Fprintf(&sb, `<text x="20" y="%d" font-family="sans-serif" font-size="11">%s (%s) — %.2fs</text>`,
			y+12, escape(job.ID), escape(job.Platform), total)
		sb.WriteString("\n")
		x := 20.0
		barW := float64(w - 40)
		for _, child := range job.Root.Children {
			frac := child.Duration() / total
			width := frac * barW
			fmt.Fprintf(&sb, `<rect x="%.1f" y="%d" width="%.1f" height="24" fill="%s"><title>%s: %.2fs (%.1f%%)</title></rect>`,
				x, y+18, width, colorFor(child.Mission), escape(child.Mission), child.Duration(), 100*frac)
			sb.WriteString("\n")
			x += width
		}
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

// SVGCPUChart renders per-node CPU usage over time as a stacked area
// chart with domain-operation bands (Figures 6-7's form).
func SVGCPUChart(job *archive.Job) string {
	const w, h = 760, 320
	const left, right, top, bottom = 50, 20, 30, 40
	plotW, plotH := float64(w-left-right), float64(h-top-bottom)
	var sb strings.Builder
	svgHeader(&sb, w, h, fmt.Sprintf("CPU utilization — %s (%s)", job.ID, job.Platform))
	nodes, times, values := CPUSeries(job)
	if len(times) == 0 {
		sb.WriteString("</svg>\n")
		return sb.String()
	}
	tMax := times[len(times)-1]
	// Stacked cumulative series.
	stack := make([][]float64, len(nodes)+1)
	stack[0] = make([]float64, len(times))
	peak := 0.0
	for ni, n := range nodes {
		stack[ni+1] = make([]float64, len(times))
		for ti := range times {
			stack[ni+1][ti] = stack[ni][ti] + values[n][ti]
			if stack[ni+1][ti] > peak {
				peak = stack[ni+1][ti]
			}
		}
	}
	if peak == 0 {
		peak = 1
	}
	xAt := func(t float64) float64 { return left + t/tMax*plotW }
	yAt := func(v float64) float64 { return top + plotH - v/peak*plotH }

	// Domain bands.
	for _, child := range job.Root.Children {
		fmt.Fprintf(&sb, `<rect x="%.1f" y="%d" width="%.1f" height="%.1f" fill="%s" opacity="0.15"><title>%s</title></rect>`,
			xAt(child.Start), top, xAt(child.End)-xAt(child.Start), plotH, colorFor(child.Mission), escape(child.Mission))
		sb.WriteString("\n")
	}
	// One band per node, stacked.
	palette := []string{"#4d8edc", "#e6873c", "#5cb85c", "#d9534f", "#9b59b6", "#f0ad4e", "#38b6b6", "#7f8c8d"}
	for ni, n := range nodes {
		var path strings.Builder
		for ti, t := range times {
			cmd := "L"
			if ti == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.1f,%.1f ", cmd, xAt(t), yAt(stack[ni+1][ti]))
		}
		for ti := len(times) - 1; ti >= 0; ti-- {
			fmt.Fprintf(&path, "L%.1f,%.1f ", xAt(times[ti]), yAt(stack[ni][ti]))
		}
		path.WriteString("Z")
		fmt.Fprintf(&sb, `<path d="%s" fill="%s" opacity="0.85"><title>%s</title></path>`,
			path.String(), palette[ni%len(palette)], escape(n))
		sb.WriteString("\n")
	}
	// Axes.
	fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`, left, top+plotH, left+plotW, top+plotH)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%.1f" stroke="black"/>`, left, top, left, top+plotH)
	fmt.Fprintf(&sb, `<text x="%d" y="%d" font-family="sans-serif" font-size="10">0</text>`, left, h-bottom+14)
	fmt.Fprintf(&sb, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="10">%.1fs</text>`, left+plotW-30, h-bottom+14, tMax)
	fmt.Fprintf(&sb, `<text x="4" y="%d" font-family="sans-serif" font-size="10">%.1f</text>`, top+10, peak)
	fmt.Fprintf(&sb, `<text x="4" y="%.1f" font-family="sans-serif" font-size="10">CPU/s</text>`, top+plotH/2)
	sb.WriteString("\n</svg>\n")
	return sb.String()
}

// SVGWorkerGantt renders the per-worker superstep Gantt chart (Figure 8's
// form) over the [from, to] superstep window (pass from > to for all).
func SVGWorkerGantt(job *archive.Job, from, to int) string {
	steps := job.Find(job.Root.Mission, "ProcessGraph", "Superstep")
	local := "LocalSuperstep"
	if len(steps) == 0 {
		steps = job.Find(job.Root.Mission, "ProcessGraph", "Iteration")
		local = "LocalIteration"
	}
	var sb strings.Builder
	if len(steps) == 0 {
		svgHeader(&sb, 400, 60, "no supersteps")
		sb.WriteString("</svg>\n")
		return sb.String()
	}
	if from > to {
		from, to = 0, len(steps)-1
	}
	if from < 0 {
		from = 0
	}
	if to >= len(steps) {
		to = len(steps) - 1
	}
	steps = steps[from : to+1]
	window0, window1 := steps[0].Start, steps[len(steps)-1].End
	span := window1 - window0

	laneOps := map[string][]*archive.Operation{}
	for _, step := range steps {
		for _, l := range step.ChildrenByMission(local) {
			laneOps[l.Actor] = append(laneOps[l.Actor], l)
		}
	}
	workers := make([]string, 0, len(laneOps))
	for wkr := range laneOps {
		workers = append(workers, wkr)
	}
	sort.Strings(workers)

	const left, right, top, laneH, gap = 140, 20, 30, 22, 6
	w := 860
	h := top + len(workers)*(laneH+gap) + 40
	plotW := float64(w - left - right)
	svgHeader(&sb, w, h, fmt.Sprintf("Worker supersteps %d..%d — %s (%s)", from, to, job.ID, job.Platform))
	xAt := func(t float64) float64 { return left + (t-window0)/span*plotW }
	for wi, wkr := range workers {
		y := top + wi*(laneH+gap)
		fmt.Fprintf(&sb, `<text x="6" y="%d" font-family="sans-serif" font-size="11">%s</text>`, y+laneH-6, escape(wkr))
		sb.WriteString("\n")
		for _, l := range laneOps[wkr] {
			for _, phase := range l.Children {
				x0, x1 := xAt(phase.Start), xAt(phase.End)
				if x1-x0 < 0.5 {
					x1 = x0 + 0.5
				}
				fmt.Fprintf(&sb, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s"><title>%s %s: %.3fs</title></rect>`,
					x0, y, x1-x0, laneH, colorFor(phase.Mission), escape(wkr), escape(phase.Mission), phase.Duration())
				sb.WriteString("\n")
			}
		}
	}
	fmt.Fprintf(&sb, `<text x="%d" y="%d" font-family="sans-serif" font-size="10">%.2fs window</text>`, left, h-10, span)
	sb.WriteString("\n</svg>\n")
	return sb.String()
}
