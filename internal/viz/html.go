package viz

import (
	"fmt"
	"html"
	"sort"
	"strings"

	"repro/internal/archive"
)

// HTMLReport renders a self-contained report for an archive: per job, the
// decomposition bar, the CPU chart, the worker Gantt, and the operation
// table with recorded and derived infos. The output needs no external
// assets, so a report can be shared as a single file — Granula's
// result-sharing goal.
func HTMLReport(a *archive.Archive) string {
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	sb.WriteString("<title>Granula performance report</title>\n<style>\n")
	sb.WriteString(`body { font-family: sans-serif; margin: 24px; }
h1 { font-size: 20px; } h2 { font-size: 16px; margin-top: 32px; }
table { border-collapse: collapse; font-size: 12px; margin: 8px 0; }
td, th { border: 1px solid #ccc; padding: 3px 8px; text-align: left; }
tr:nth-child(even) { background: #f7f7f7; }
.op-indent { color: #999; }
`)
	sb.WriteString("</style></head><body>\n")
	sb.WriteString("<h1>Granula performance report</h1>\n")
	fmt.Fprintf(&sb, "<p>%d job(s) in archive (format v%d).</p>\n", len(a.Jobs), a.Version)
	for _, job := range a.Jobs {
		fmt.Fprintf(&sb, "<h2>Job %s — %s</h2>\n", html.EscapeString(job.ID), html.EscapeString(job.Platform))
		sb.WriteString(SVGBreakdown(job))
		if len(job.EnvSamples) > 0 {
			sb.WriteString(SVGCPUChart(job))
		}
		sb.WriteString(SVGWorkerGantt(job, 1, 0))
		sb.WriteString(operationTable(job))
	}
	sb.WriteString("</body></html>\n")
	return sb.String()
}

func operationTable(job *archive.Job) string {
	var sb strings.Builder
	sb.WriteString("<table>\n<tr><th>Operation</th><th>Actor</th><th>Start</th><th>Duration</th><th>Infos</th><th>Derived</th></tr>\n")
	if job.Root == nil {
		sb.WriteString("</table>\n")
		return sb.String()
	}
	var walk func(op *archive.Operation, depth int)
	walk = func(op *archive.Operation, depth int) {
		indent := strings.Repeat("&nbsp;&nbsp;", depth)
		fmt.Fprintf(&sb, "<tr><td>%s%s</td><td>%s</td><td>%.3f</td><td>%.3f</td><td>%s</td><td>%s</td></tr>\n",
			indent, html.EscapeString(op.Mission), html.EscapeString(op.Actor),
			op.Start, op.Duration(), kvList(op.Infos), kvList(op.Derived))
		for _, c := range op.Children {
			walk(c, depth+1)
		}
	}
	walk(job.Root, 0)
	sb.WriteString("</table>\n")
	return sb.String()
}

func kvList(m map[string]string) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, html.EscapeString(k)+"="+html.EscapeString(m[k]))
	}
	return strings.Join(parts, "<br>")
}
